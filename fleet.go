package browsix

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fs"
	"repro/internal/snapshot"
)

// Fleet parallelism: many kernels serving many workloads at hardware
// speed. Every Sim is single-threaded by design — determinism comes from
// the one-event-at-a-time virtual clock — so the way to use the host's
// cores is not to thread a Sim but to run N independent Sims at once.
// Fleet does exactly that: it boots one Instance per job on a bounded
// pool of host workers (default GOMAXPROCS), shares a single page-pool
// arena between them (the only cross-shard structure; see
// fs.PagePool), and collects per-instance results plus aggregate
// statistics.
//
// The contract is the differential test's: a job's output — stdout,
// stderr, exit code, and the instance's virtual clock — is bit-identical
// whether the fleet runs with 1 worker or GOMAXPROCS. Parallelism
// changes wall-clock time and nothing else. That holds because the
// instances share no mutable state except the arena, and the arena's
// per-attachment quotas make each shard's allocation behaviour
// independent of its neighbours.

// Job describes one fleet workload: an Instance is booted with Config
// (its page pool redirected to the fleet's shared arena), staged by
// Setup, then driven either by launching Spec (Run nil) or by the Run
// callback (arbitrary workloads: interactive terminals, servers,
// multi-process builds).
type Job struct {
	// Name labels the job in results (it need not be unique).
	Name string
	// Config boots the job's Instance. PagePool and PagePoolQuota are
	// overwritten by the fleet; everything else is the job's own.
	Config Config
	// Setup stages the instance (InstallBase, case-study staging, ...).
	// Optional; runs before the workload.
	Setup func(*Instance)
	// Spec is the process to run when Run is nil. Its stdout/stderr are
	// captured into the JobResult unless the Spec carries its own sinks.
	Spec Spec
	// Run, when non-nil, drives the workload instead of Spec and returns
	// what the result should carry.
	Run func(*Instance) JobOutput
}

// JobOutput is the workload-visible outcome of one job.
type JobOutput struct {
	Code   int
	Stdout []byte
	Stderr []byte
}

// JobResult is one job's outcome. Results are indexed by submission
// order, independent of which worker ran the job or when it finished.
type JobResult struct {
	Index int
	Name  string
	JobOutput
	// VirtualNs is the instance's virtual clock at completion — the
	// deterministic signature the serial-vs-parallel differential
	// compares bit-for-bit.
	VirtualNs int64
	// Err reports a launch failure, a deadlocked wait, or a recovered
	// panic from Setup/Run. The job's other fields are best-effort.
	Err error
}

// FleetStats aggregates a Run.
type FleetStats struct {
	Jobs       int
	Workers    int
	PoolSlots  int // shared arena capacity
	QuotaSlots int // per-instance slot quota

	WallNs         int64   // host wall-clock for the whole fleet
	VirtualNs      int64   // sum of per-instance virtual clocks
	SessionsPerSec float64 // Jobs / wall seconds

	// Kernel counters summed across instances (each read after its
	// worker finished the job, so the sums are exact, not sampled).
	AsyncSyscalls int64
	SyncSyscalls  int64
	RingNotifies  int64
	GrantedBytes  int64
	LeaseGrants   int64
	LeaseReturns  int64
	// Write direction of the zero-copy data plane: payload bytes adopted
	// by reference, and staging slots still leased after each instance
	// quiesced (any non-zero count is a leak — a crashed guest's frozen
	// slots would stay charged to the shared arena).
	WriteGrantedBytes int64
	StagedSlotsLeaked int64

	// Checkpoint/fork subsystem: images captured (the warmup), processes
	// booted as copy-on-write clones, and first-write COW faults.
	SnapshotCaptures int64
	CloneBoots       int64
	CowFaults        int64
	// SnapshotLeak is the fleet-wide COW pin balance check: nil when
	// every image page came back to exactly its base pin after the last
	// job quiesced; otherwise it names the leaking image and page.
	SnapshotLeak error
}

// Fleet runs batches of independent deterministic Instances across host
// cores. The zero value is ready to use: GOMAXPROCS workers, a shared
// arena sized workers x the private-pool quota.
type Fleet struct {
	// Workers bounds host parallelism; <= 0 means GOMAXPROCS(0).
	Workers int
	// QuotaSlots is each instance's page-pool quota; <= 0 means
	// fs.DefaultPoolSlots (the private pool's capacity), which keeps
	// every instance bit-identical to a serial private-pool run.
	QuotaSlots int
	// PoolSlots sizes the shared arena; <= 0 means Workers*QuotaSlots,
	// enough that no shard's allocation ever waits on a neighbour.
	PoolSlots int
	// OnBoot, when non-nil, is called on the worker goroutine right
	// after each job's Instance boots (before Setup) — the observation
	// hook live stats pollers and the counters-under-fleet tests use.
	// It may run concurrently with other jobs' hooks.
	OnBoot func(index int, in *Instance)
	// SnapshotWarmup, when non-nil, turns on fork-style spawning for the
	// whole fleet: before any job runs, one scratch instance boots
	// against the shared arena, runs each warmup command once so every
	// runtime it touches captures its post-boot image, and the resulting
	// registry — pages in the shared arena, one copy fleet-wide — is
	// sealed and attached to every job's Instance. Sealing before the
	// jobs run keeps the differential contract: each shard's virtual
	// clock depends only on the sealed content, never on which shard
	// booted a runtime first.
	SnapshotWarmup *SnapshotWarmup
}

// SnapshotWarmup configures Fleet snapshot pre-warming.
type SnapshotWarmup struct {
	// Setup stages the scratch instance (typically the same staging the
	// jobs use, e.g. InstallBase).
	Setup func(*Instance)
	// Cmds run once each on the scratch instance; every runtime they
	// boot captures an image.
	Cmds []string
	// Quota is the arena slot quota for captured image pages (<= 0:
	// DefaultSnapshotSlots).
	Quota int
}

// Run executes jobs on the worker pool and returns per-job results
// (indexed by submission order) plus aggregate statistics. It blocks
// until every job finishes.
func (fl *Fleet) Run(jobs []Job) ([]JobResult, FleetStats) {
	workers := fl.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	quota := fl.QuotaSlots
	if quota <= 0 {
		quota = fs.DefaultPoolSlots
	}
	slots := fl.PoolSlots
	if slots <= 0 {
		slots = workers * quota
	}
	pool := fs.NewPagePool(slots)
	var reg *snapshot.Registry
	if fl.SnapshotWarmup != nil {
		reg = fl.prewarmSnapshots(pool, quota)
	}

	results := make([]JobResult, len(jobs))
	var agg fleetAgg
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = fl.runJob(i, &jobs[i], pool, quota, reg, &agg)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start)

	stats := FleetStats{
		Jobs:       len(jobs),
		Workers:    workers,
		PoolSlots:  slots,
		QuotaSlots: quota,
		WallNs:     wall.Nanoseconds(),
		VirtualNs:  agg.virtualNs.Load(),

		AsyncSyscalls: agg.async.Load(),
		SyncSyscalls:  agg.sync.Load(),
		RingNotifies:  agg.ringNotifies.Load(),
		GrantedBytes:  agg.grantedBytes.Load(),
		LeaseGrants:   agg.leaseGrants.Load(),
		LeaseReturns:  agg.leaseReturns.Load(),

		WriteGrantedBytes: agg.writeGrantedBytes.Load(),
		StagedSlotsLeaked: agg.stagedSlotsLeaked.Load(),

		SnapshotCaptures: agg.snapCaptures.Load(),
		CloneBoots:       agg.cloneBoots.Load(),
	}
	if reg != nil {
		stats.CowFaults = reg.Stats().CowFaults.Load()
		stats.SnapshotLeak = reg.VerifyBalanced()
	}
	if s := wall.Seconds(); s > 0 {
		stats.SessionsPerSec = float64(len(jobs)) / s
	}
	return results, stats
}

// RunFleet runs jobs with a default Fleet (GOMAXPROCS workers).
func RunFleet(jobs []Job) ([]JobResult, FleetStats) {
	return (&Fleet{}).Run(jobs)
}

// fleetAgg accumulates cross-instance statistics. Atomics: workers add
// their finished job's counters concurrently.
type fleetAgg struct {
	virtualNs         atomic.Int64
	async             atomic.Int64
	sync              atomic.Int64
	ringNotifies      atomic.Int64
	grantedBytes      atomic.Int64
	leaseGrants       atomic.Int64
	leaseReturns      atomic.Int64
	writeGrantedBytes atomic.Int64
	stagedSlotsLeaked atomic.Int64
	snapCaptures      atomic.Int64
	cloneBoots        atomic.Int64
}

// prewarmSnapshots runs the fleet's snapshot warmup on the calling
// goroutine (serially, before any worker starts) and returns the sealed
// registry every job will share.
func (fl *Fleet) prewarmSnapshots(pool *fs.PagePool, quota int) *snapshot.Registry {
	w := fl.SnapshotWarmup
	reg := snapshot.NewRegistry()
	sq := w.Quota
	if sq <= 0 {
		sq = DefaultSnapshotSlots
	}
	reg.SetStore(pool.ImageStore(sq))
	in := Boot(Config{PagePool: pool, PagePoolQuota: quota, Snapshots: reg})
	if w.Setup != nil {
		w.Setup(in)
	}
	for _, c := range w.Cmds {
		in.RunCommand(c)
	}
	in.VFS.FlushCaches()
	reg.Seal()
	return reg
}

// runJob boots, stages, and drives one job on the calling worker
// goroutine. The Instance lives entirely on this goroutine; the shared
// arena is the only structure it touches concurrently with other shards.
func (fl *Fleet) runJob(i int, job *Job, pool *fs.PagePool, quota int, reg *snapshot.Registry, agg *fleetAgg) (res JobResult) {
	res.Index, res.Name = i, job.Name
	var in *Instance
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("fleet job %d (%s): panic: %v", i, job.Name, r)
		}
		if in == nil {
			return
		}
		res.VirtualNs = in.Now()
		// Drop this shard's cached pages so its arena slots return for
		// the next tenant. Slots still leased by a live process stay
		// frozen (bytes intact) until the lease returns — jobs that
		// start servers should stop them before returning.
		in.VFS.FlushCaches()
		agg.virtualNs.Add(res.VirtualNs)
		agg.async.Add(in.Kernel.AsyncSyscalls.Load())
		agg.sync.Add(in.Kernel.SyncSyscalls.Load())
		agg.ringNotifies.Add(in.Kernel.RingNotifies.Load())
		agg.grantedBytes.Add(in.Kernel.GrantedBytes.Load())
		agg.leaseGrants.Add(in.Kernel.LeaseGrants.Load())
		agg.leaseReturns.Add(in.Kernel.LeaseReturns.Load())
		agg.writeGrantedBytes.Add(in.Kernel.WriteGrantedBytes.Load())
		agg.stagedSlotsLeaked.Add(int64(in.VFS.WriteStagedSlots()))
		agg.snapCaptures.Add(in.Kernel.SnapshotCaptures.Load())
		agg.cloneBoots.Add(in.Kernel.CloneBoots.Load())
	}()

	cfg := job.Config
	cfg.PagePool = pool
	cfg.PagePoolQuota = quota
	if cfg.Snapshots == nil {
		cfg.Snapshots = reg
	}
	in = Boot(cfg)
	if fl.OnBoot != nil {
		fl.OnBoot(i, in)
	}
	if job.Setup != nil {
		job.Setup(in)
	}
	if job.Run != nil {
		res.JobOutput = job.Run(in)
		return res
	}

	spec := job.Spec
	var outBuf, errBuf bytes.Buffer
	if spec.Stdout == nil {
		spec.Stdout = &outBuf
	}
	if spec.Stderr == nil {
		spec.Stderr = &errBuf
	}
	p, err := in.Start(spec)
	if err != nil {
		res.Err = err
		res.Code = 127
		return res
	}
	code, werr := p.Wait()
	if werr != nil {
		res.Err = werr
	}
	res.Code = code
	res.Stdout = outBuf.Bytes()
	res.Stderr = errBuf.Bytes()
	return res
}
