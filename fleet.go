package browsix

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fs"
	"repro/internal/snapshot"
)

// Fleet parallelism: many kernels serving many workloads at hardware
// speed. Every Sim is single-threaded by design — determinism comes from
// the one-event-at-a-time virtual clock — so the way to use the host's
// cores is not to thread a Sim but to run N independent Sims at once.
// Fleet does exactly that: it boots one Instance per job on a bounded
// pool of host workers (default GOMAXPROCS), shares a single page-pool
// arena between them (the only cross-shard structure; see
// fs.PagePool), and collects per-instance results plus aggregate
// statistics.
//
// The contract is the differential test's: a job's output — stdout,
// stderr, exit code, and the instance's virtual clock — is bit-identical
// whether the fleet runs with 1 worker or GOMAXPROCS. Parallelism
// changes wall-clock time and nothing else. That holds because the
// instances share no mutable state except the arena, and the arena's
// per-attachment quotas make each shard's allocation behaviour
// independent of its neighbours.

// Job describes one fleet workload: an Instance is booted with Config
// (its page pool redirected to the fleet's shared arena), staged by
// Setup, then driven either by launching Spec (Run nil) or by the Run
// callback (arbitrary workloads: interactive terminals, servers,
// multi-process builds).
type Job struct {
	// Name labels the job in results (it need not be unique).
	Name string
	// Config boots the job's Instance. PagePool and PagePoolQuota are
	// overwritten by the fleet; everything else is the job's own.
	Config Config
	// Setup stages the instance (InstallBase, case-study staging, ...).
	// Optional; runs before the workload.
	Setup func(*Instance)
	// Spec is the process to run when Run is nil. Its stdout/stderr are
	// captured into the JobResult unless the Spec carries its own sinks.
	Spec Spec
	// Run, when non-nil, drives the workload instead of Spec and returns
	// what the result should carry.
	Run func(*Instance) JobOutput
}

// JobOutput is the workload-visible outcome of one job.
type JobOutput struct {
	Code   int
	Stdout []byte
	Stderr []byte
}

// JobResult is one job's outcome. Results are indexed by submission
// order, independent of which worker ran the job or when it finished.
type JobResult struct {
	Index int
	Name  string
	JobOutput
	// VirtualNs is the instance's virtual clock at completion — the
	// deterministic signature the serial-vs-parallel differential
	// compares bit-for-bit.
	VirtualNs int64
	// Err reports a launch failure, a deadlocked wait, or a recovered
	// panic from Setup/Run. The job's other fields are best-effort.
	Err error
}

// FleetStats aggregates a Run.
type FleetStats struct {
	Jobs       int
	Workers    int
	PoolSlots  int // shared arena capacity
	QuotaSlots int // per-instance slot quota

	WallNs         int64   // host wall-clock for the whole fleet
	VirtualNs      int64   // sum of per-instance virtual clocks
	SessionsPerSec float64 // Jobs / wall seconds

	// Kernel counters summed across instances (each read after its
	// worker finished the job, so the sums are exact, not sampled).
	AsyncSyscalls int64
	SyncSyscalls  int64
	RingNotifies  int64
	GrantedBytes  int64
	LeaseGrants   int64
	LeaseReturns  int64
	// Write direction of the zero-copy data plane: payload bytes adopted
	// by reference, and staging slots still leased after each instance
	// quiesced (any non-zero count is a leak — a crashed guest's frozen
	// slots would stay charged to the shared arena).
	WriteGrantedBytes int64
	StagedSlotsLeaked int64

	// Checkpoint/fork subsystem: images captured (the warmup), processes
	// booted as copy-on-write clones, and first-write COW faults.
	SnapshotCaptures int64
	CloneBoots       int64
	CowFaults        int64
	// SnapshotLeak is the fleet-wide COW pin balance check: nil when
	// every image page came back to exactly its base pin after the last
	// job quiesced; otherwise it names the leaking image and page.
	SnapshotLeak error

	// Content-addressed dedup across the batch: index hits and
	// dedup-eligible stores summed over every job, the mean resident
	// page count per job at completion (sampled just before each job's
	// caches flush), and the derived sharing factor — logical page
	// fills per physical slot fill, stores/(stores-hits); 1.0 means no
	// page was ever shared.
	DedupHits      int64
	DedupStores    int64
	PagesPerTenant float64
	DedupFactor    float64
}

// Fleet runs batches of independent deterministic Instances across host
// cores. The zero value is ready to use: GOMAXPROCS workers, a shared
// arena sized workers x the private-pool quota.
type Fleet struct {
	// Workers bounds host parallelism; <= 0 means GOMAXPROCS(0).
	Workers int
	// QuotaSlots is each instance's page-pool quota; <= 0 means
	// fs.DefaultPoolSlots (the private pool's capacity), which keeps
	// every instance bit-identical to a serial private-pool run.
	QuotaSlots int
	// PoolSlots sizes the shared arena; <= 0 means Workers*QuotaSlots,
	// enough that no shard's allocation ever waits on a neighbour.
	PoolSlots int
	// OnBoot, when non-nil, is called on the worker goroutine right
	// after each job's Instance boots (before Setup) — the observation
	// hook live stats pollers and the counters-under-fleet tests use.
	// It may run concurrently with other jobs' hooks.
	OnBoot func(index int, in *Instance)
	// SnapshotWarmup, when non-nil, turns on fork-style spawning for the
	// whole fleet: before any job runs, one scratch instance boots
	// against the shared arena, runs each warmup command once so every
	// runtime it touches captures its post-boot image, and the resulting
	// registry — pages in the shared arena, one copy fleet-wide — is
	// sealed and attached to every job's Instance. Sealing before the
	// jobs run keeps the differential contract: each shard's virtual
	// clock depends only on the sealed content, never on which shard
	// booted a runtime first.
	SnapshotWarmup *SnapshotWarmup
}

// SnapshotWarmup configures Fleet snapshot pre-warming.
type SnapshotWarmup struct {
	// Setup stages the scratch instance (typically the same staging the
	// jobs use, e.g. InstallBase).
	Setup func(*Instance)
	// Cmds run once each on the scratch instance; every runtime they
	// boot captures an image.
	Cmds []string
	// Quota is the arena slot quota for captured image pages (<= 0:
	// DefaultSnapshotSlots).
	Quota int
}

// Run executes jobs on the worker pool and returns per-job results
// (indexed by submission order) plus aggregate statistics. It blocks
// until every job finishes.
func (fl *Fleet) Run(jobs []Job) ([]JobResult, FleetStats) {
	workers := fl.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	quota := fl.QuotaSlots
	if quota <= 0 {
		quota = fs.DefaultPoolSlots
	}
	slots := fl.PoolSlots
	if slots <= 0 {
		slots = workers * quota
	}
	pool := fs.NewPagePool(slots)
	var reg *snapshot.Registry
	if fl.SnapshotWarmup != nil {
		reg = fl.prewarmSnapshots(pool, quota)
	}

	results := make([]JobResult, len(jobs))
	var agg fleetAgg
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = fl.runJob(i, &jobs[i], pool, quota, reg, &agg)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start)

	stats := FleetStats{
		Jobs:       len(jobs),
		Workers:    workers,
		PoolSlots:  slots,
		QuotaSlots: quota,
		WallNs:     wall.Nanoseconds(),
		VirtualNs:  agg.virtualNs.Load(),

		AsyncSyscalls: agg.async.Load(),
		SyncSyscalls:  agg.sync.Load(),
		RingNotifies:  agg.ringNotifies.Load(),
		GrantedBytes:  agg.grantedBytes.Load(),
		LeaseGrants:   agg.leaseGrants.Load(),
		LeaseReturns:  agg.leaseReturns.Load(),

		WriteGrantedBytes: agg.writeGrantedBytes.Load(),
		StagedSlotsLeaked: agg.stagedSlotsLeaked.Load(),

		SnapshotCaptures: agg.snapCaptures.Load(),
		CloneBoots:       agg.cloneBoots.Load(),
	}
	stats.DedupHits = agg.dedupHits.Load()
	stats.DedupStores = agg.dedupStores.Load()
	if len(jobs) > 0 {
		stats.PagesPerTenant = float64(agg.cachedPages.Load()) / float64(len(jobs))
	}
	stats.DedupFactor = dedupFactor(stats.DedupStores, stats.DedupHits)
	if reg != nil {
		stats.CowFaults = reg.Stats().CowFaults.Load()
		stats.SnapshotLeak = reg.VerifyBalanced()
	}
	if s := wall.Seconds(); s > 0 {
		stats.SessionsPerSec = float64(len(jobs)) / s
	}
	return results, stats
}

// dedupFactor derives logical-fills-per-physical-fill from store/hit
// counters: every store is a logical fill, every non-hit store filled a
// slot. 1.0 when nothing was ever shared (or nothing stored).
func dedupFactor(stores, hits int64) float64 {
	if fills := stores - hits; fills > 0 {
		return float64(stores) / float64(fills)
	}
	return 1
}

// RunFleet runs jobs with a default Fleet (GOMAXPROCS workers).
func RunFleet(jobs []Job) ([]JobResult, FleetStats) {
	return (&Fleet{}).Run(jobs)
}

// fleetAgg accumulates cross-instance statistics. Atomics: workers add
// their finished job's counters concurrently.
type fleetAgg struct {
	virtualNs         atomic.Int64
	async             atomic.Int64
	sync              atomic.Int64
	ringNotifies      atomic.Int64
	grantedBytes      atomic.Int64
	leaseGrants       atomic.Int64
	leaseReturns      atomic.Int64
	writeGrantedBytes atomic.Int64
	stagedSlotsLeaked atomic.Int64
	snapCaptures      atomic.Int64
	cloneBoots        atomic.Int64
	cachedPages       atomic.Int64
	dedupHits         atomic.Int64
	dedupStores       atomic.Int64
}

// prewarmSnapshots runs the fleet's snapshot warmup on the calling
// goroutine (serially, before any worker starts) and returns the sealed
// registry every job will share.
func (fl *Fleet) prewarmSnapshots(pool *fs.PagePool, quota int) *snapshot.Registry {
	w := fl.SnapshotWarmup
	reg := snapshot.NewRegistry()
	sq := w.Quota
	if sq <= 0 {
		sq = DefaultSnapshotSlots
	}
	reg.SetStore(pool.ImageStore(sq))
	in := Boot(Config{PagePool: pool, PagePoolQuota: quota, Snapshots: reg})
	if w.Setup != nil {
		w.Setup(in)
	}
	for _, c := range w.Cmds {
		in.RunCommand(c)
	}
	in.VFS.FlushCaches()
	reg.Seal()
	return reg
}

// ---------------------------------------------------------------------------
// Tenant-scale load harness: N RESIDENT instances on one arena.
// ---------------------------------------------------------------------------

// TenantLoad describes a tenant-scale run: boot Tenants long-lived
// Instances against one shared arena (sharded across the fleet's
// workers), run each tenant's workload, and keep every tenant RESIDENT —
// unlike Run's jobs, caches are not flushed per job — so the sampled
// statistics measure what an N-tenant fleet actually holds: aggregate
// pages per tenant, the dedup factor of the content-addressed tier, and
// fairness across tenants under arena pressure.
type TenantLoad struct {
	// Tenants is the instance count (hundreds to thousands).
	Tenants int
	// Config boots each tenant (pool fields overwritten by the fleet).
	Config Config
	// Setup stages tenant i (mount the shared tree, install binaries).
	Setup func(i int, in *Instance)
	// Workload drives tenant i once; the tenant then idles resident.
	Workload func(i int, in *Instance)
	// DisableDedup turns the content-addressed tier off for every
	// tenant — the before/after ablation of EXPERIMENTS.md.
	DisableDedup bool
}

// TenantStats is the resident-fleet report card.
type TenantStats struct {
	Tenants    int
	Workers    int
	PoolSlots  int
	QuotaSlots int
	WallNs     int64
	VirtualNs  int64 // summed over tenants

	// Sampled while every tenant is resident.
	LogicalPages  int64 // sum of per-tenant resident cached pages
	PrivatePages  int64 // resident pages in private slots
	SharedSlots   int64 // distinct dedup-index slots resident
	SharedRefs    int64 // outstanding references to those slots
	DedupHits     int64 // index hits across all tenants
	ArenaBytes    int64 // physical arena bytes in use (all attachments)
	PhysicalPages int64 // SharedSlots + PrivatePages

	// PagesPerTenant is PHYSICAL pages divided by tenants — the
	// headline number: with perfect sharing of one hot tree it
	// approaches pages(tree)/N. DedupFactor is SharedRefs/SharedSlots
	// (1 when nothing is shared). Fairness is Jain's index over
	// per-tenant resident page counts: 1.0 = perfectly even.
	PagesPerTenant float64
	DedupFactor    float64
	Fairness       float64
	MinTenantPages int64
	MaxTenantPages int64

	// Teardown checks (after every tenant's caches flush).
	LeaseGrants  int64
	LeaseReturns int64
	PinnedSlots  int   // should be 0: no leaked leases
	SnapshotLeak error // COW pin ledger when a warmup registry was used
}

// RunTenants boots load.Tenants resident Instances sharded over the
// fleet's workers (tenant i runs on worker i%workers; each worker boots
// and drives its tenants serially, so per-tenant behaviour is
// deterministic), samples fleet-wide statistics while all tenants are
// resident, then tears everything down and verifies the lease and pin
// ledgers. SnapshotWarmup, if set, pre-warms and seals a registry
// exactly as Run does — snapshot heap pages land in the same
// content-addressed index as fs pages.
func (fl *Fleet) RunTenants(load TenantLoad) TenantStats {
	n := load.Tenants
	if n <= 0 {
		n = 1
	}
	workers := fl.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	quota := fl.QuotaSlots
	if quota <= 0 {
		quota = fs.DefaultPoolSlots
	}
	slots := fl.PoolSlots
	if slots <= 0 {
		slots = workers * quota
	}
	pool := fs.NewPagePool(slots)
	var reg *snapshot.Registry
	if fl.SnapshotWarmup != nil {
		reg = fl.prewarmSnapshots(pool, quota)
	}

	instances := make([]*Instance, n)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				cfg := load.Config
				cfg.PagePool = pool
				cfg.PagePoolQuota = quota
				if cfg.Snapshots == nil {
					cfg.Snapshots = reg
				}
				in := Boot(cfg)
				if load.DisableDedup {
					in.VFS.SetDedup(false)
				}
				if load.Setup != nil {
					load.Setup(i, in)
				}
				if load.Workload != nil {
					load.Workload(i, in)
				}
				instances[i] = in
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	// Every tenant is resident and quiesced: sample the fleet.
	st := TenantStats{
		Tenants:    n,
		Workers:    workers,
		PoolSlots:  slots,
		QuotaSlots: quota,
		WallNs:     wall.Nanoseconds(),
	}
	perTenant := make([]int64, n)
	for i, in := range instances {
		cs := in.VFS.CacheStats()
		perTenant[i] = cs.CachedPages
		st.LogicalPages += cs.CachedPages
		st.PrivatePages += cs.CachedPages - cs.DedupPages
		st.VirtualNs += in.Now()
		st.LeaseGrants += in.Kernel.LeaseGrants.Load()
		st.LeaseReturns += in.Kernel.LeaseReturns.Load()
	}
	entries, refs, hits := pool.DedupStats()
	st.SharedSlots, st.SharedRefs, st.DedupHits = entries, refs, hits
	st.ArenaBytes = int64(pool.Slots()-pool.FreeSlots()) * fs.PageSize
	st.PhysicalPages = st.SharedSlots + st.PrivatePages
	st.PagesPerTenant = float64(st.PhysicalPages) / float64(n)
	if entries > 0 {
		st.DedupFactor = float64(refs) / float64(entries)
	} else {
		st.DedupFactor = 1
	}
	st.Fairness, st.MinTenantPages, st.MaxTenantPages = jainIndex(perTenant)

	// Teardown: flush every tenant (the workers are gone; the caller
	// goroutine is the sole accessor), then audit the ledgers.
	for _, in := range instances {
		in.VFS.FlushCaches()
	}
	if reg != nil {
		st.SnapshotLeak = reg.VerifyBalanced()
	}
	// With no warmup registry this must be 0 (no leaked leases). A live
	// registry legitimately holds one base pin per image page — its
	// balance is what SnapshotLeak audits.
	st.PinnedSlots = pool.PinnedSlots()
	return st
}

// jainIndex computes Jain's fairness index (sum x)^2 / (n * sum x^2)
// over per-tenant resident page counts, plus the min and max.
func jainIndex(xs []int64) (float64, int64, int64) {
	if len(xs) == 0 {
		return 1, 0, 0
	}
	var sum, sumSq float64
	min, max := xs[0], xs[0]
	for _, x := range xs {
		f := float64(x)
		sum += f
		sumSq += f * f
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if sumSq == 0 {
		return 1, min, max
	}
	return sum * sum / (float64(len(xs)) * sumSq), min, max
}

// runJob boots, stages, and drives one job on the calling worker
// goroutine. The Instance lives entirely on this goroutine; the shared
// arena is the only structure it touches concurrently with other shards.
func (fl *Fleet) runJob(i int, job *Job, pool *fs.PagePool, quota int, reg *snapshot.Registry, agg *fleetAgg) (res JobResult) {
	res.Index, res.Name = i, job.Name
	var in *Instance
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("fleet job %d (%s): panic: %v", i, job.Name, r)
		}
		if in == nil {
			return
		}
		res.VirtualNs = in.Now()
		// Sample resident-cache stats BEFORE the flush below empties
		// them: PagesPerTenant measures what the job held at completion.
		cs := in.VFS.CacheStats()
		agg.cachedPages.Add(cs.CachedPages)
		agg.dedupHits.Add(cs.DedupHits)
		agg.dedupStores.Add(cs.DedupStores)
		// Drop this shard's cached pages so its arena slots return for
		// the next tenant. Slots still leased by a live process stay
		// frozen (bytes intact) until the lease returns — jobs that
		// start servers should stop them before returning.
		in.VFS.FlushCaches()
		agg.virtualNs.Add(res.VirtualNs)
		agg.async.Add(in.Kernel.AsyncSyscalls.Load())
		agg.sync.Add(in.Kernel.SyncSyscalls.Load())
		agg.ringNotifies.Add(in.Kernel.RingNotifies.Load())
		agg.grantedBytes.Add(in.Kernel.GrantedBytes.Load())
		agg.leaseGrants.Add(in.Kernel.LeaseGrants.Load())
		agg.leaseReturns.Add(in.Kernel.LeaseReturns.Load())
		agg.writeGrantedBytes.Add(in.Kernel.WriteGrantedBytes.Load())
		agg.stagedSlotsLeaked.Add(int64(in.VFS.WriteStagedSlots()))
		agg.snapCaptures.Add(in.Kernel.SnapshotCaptures.Load())
		agg.cloneBoots.Add(in.Kernel.CloneBoots.Load())
	}()

	cfg := job.Config
	cfg.PagePool = pool
	cfg.PagePoolQuota = quota
	if cfg.Snapshots == nil {
		cfg.Snapshots = reg
	}
	in = Boot(cfg)
	if fl.OnBoot != nil {
		fl.OnBoot(i, in)
	}
	if job.Setup != nil {
		job.Setup(in)
	}
	if job.Run != nil {
		res.JobOutput = job.Run(in)
		return res
	}

	spec := job.Spec
	var outBuf, errBuf bytes.Buffer
	if spec.Stdout == nil {
		spec.Stdout = &outBuf
	}
	if spec.Stderr == nil {
		spec.Stderr = &errBuf
	}
	p, err := in.Start(spec)
	if err != nil {
		res.Err = err
		res.Code = 127
		return res
	}
	code, werr := p.Wait()
	if werr != nil {
		res.Err = werr
	}
	res.Code = code
	res.Stdout = outBuf.Bytes()
	res.Stderr = errBuf.Bytes()
	return res
}
