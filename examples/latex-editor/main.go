// latex-editor reproduces the paper's flagship case study (§2): a
// browser-only LaTeX editor. "Build PDF" runs GNU Make in a Browsix
// process; make forks pdflatex and bibtex; the TeX programs read packages
// and fonts from a TeX Live tree mounted over HTTP with lazy fetching;
// the finished PDF is read back out of the shared file system. A second
// build is a no-op (make: up to date), an edit triggers an incremental
// rebuild, and a cancel sends SIGKILL.
package main

import (
	"fmt"
	"log"
	"strings"

	browsix "repro"
	"repro/internal/abi"
	"repro/internal/tex"
)

func main() {
	inst := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inst)

	docTex, docBib := tex.SampleDocument()
	httpfs := browsix.InstallTexProject(inst, tex.DefaultTree(), browsix.TexSync, docTex, docBib)
	tree := tex.BuildTree(tex.DefaultTree())
	fmt.Printf("TeX Live mirror: %d files staged server-side\n", len(tree))

	// --- Build PDF (the button's callback, Figure 4's kernel.system) ---
	fmt.Println("\n[user clicks Build PDF]")
	start := inst.Now()
	code, buildLog := inst.BuildPDF()
	elapsed := inst.Now() - start
	if code != 0 {
		// The editor shows the captured output so the user can debug
		// their markup.
		log.Fatalf("build failed (%d):\n%s", code, buildLog)
	}
	for _, line := range strings.Split(strings.TrimSpace(buildLog), "\n") {
		fmt.Println("  make |", line)
	}
	pdf, err := inst.FS().ReadFile("proj/main.pdf")
	if err != nil {
		log.Fatalf("reading PDF: %v", err)
	}
	fmt.Printf("built main.pdf: %d bytes in %.2f virtual s\n", len(pdf), float64(elapsed)/1e9)
	fmt.Printf("lazy loading: fetched %d of %d files (%.1f KB) over HTTP\n",
		httpfs.FetchCount, len(tree), float64(httpfs.BytesFetched)/1024)

	// --- Rebuild without edits: cached + up to date -------------------
	fmt.Println("\n[user clicks Build PDF again]")
	before := httpfs.FetchCount
	code, buildLog = inst.BuildPDF()
	fmt.Printf("  exit=%d, %q, new fetches: %d\n", code,
		strings.TrimSpace(buildLog), httpfs.FetchCount-before)

	// --- Edit and rebuild ---------------------------------------------
	fmt.Println("\n[user edits main.tex, rebuilds]")
	fsys := inst.FS()
	src, _ := fsys.ReadFile("proj/main.tex")
	fsys.WriteFile("proj/main.tex", append(src, []byte("\nA freshly added paragraph.\n")...), 0o644)
	code, _ = inst.BuildPDF()
	pdf2, _ := fsys.ReadFile("proj/main.pdf")
	fmt.Printf("  exit=%d, PDF grew %d -> %d bytes\n", code, len(pdf), len(pdf2))

	// --- Cancel: signal the build's process handle --------------------
	fmt.Println("\n[user clicks Build, then Cancel]")
	fsys.WriteFile("proj/main.tex", append(src, []byte("\nAnother edit forces work.\n")...), 0o644)
	build, err := inst.Start(browsix.Spec{Argv: []string{"/usr/bin/make"}, Dir: "/proj"})
	if err != nil {
		log.Fatalf("start build: %v", err)
	}
	// Let the build get under way, then cancel it.
	inst.RunUntil(func() bool {
		for _, task := range inst.Kernel.Tasks() {
			if strings.Contains(task.Path, "pdflatex") {
				return true
			}
		}
		return build.Exited()
	})
	if !build.Exited() {
		if serr := build.Signal(abi.SIGKILL); serr != nil {
			log.Fatalf("cancel: %v", serr)
		}
	}
	cancelled, _ := build.Wait()
	fmt.Printf("  build cancelled, exit code %d (128+SIGKILL)\n", cancelled)
}
