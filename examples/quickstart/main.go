// Quickstart: boot a Browsix instance, stage a file, run a Unix pipeline
// through the in-browser kernel, and read the results back — the minimum
// end-to-end trip through the public API.
package main

import (
	"fmt"
	"log"

	browsix "repro"
	"repro/internal/abi"
)

func main() {
	// Boot the "browser page": main-thread kernel + empty file system.
	inst := browsix.Boot(browsix.Config{})
	// Stage the standard image: the paper's coreutils (Node runtime)
	// and dash (Emscripten/Emterpreter runtime) on the PATH.
	browsix.InstallBase(inst)

	// Stage some input through the web-app file API.
	if err := inst.WriteFile("/data/fruit.txt",
		[]byte("banana\napple\ncherry\napple pie\n")); err != abi.OK {
		log.Fatalf("staging: %v", err)
	}

	// The paper's flagship interaction (§5.1.2): compose processes with
	// pipes, through a real shell, all "in the browser".
	res := inst.RunCommand("cat /data/fruit.txt | grep apple | sort | tee /data/apples.txt | wc -l")
	if res.Code != 0 {
		log.Fatalf("pipeline failed (%d): %s", res.Code, res.Stderr)
	}
	fmt.Printf("pipeline stdout: %s", res.Stdout)
	fmt.Printf("pipeline took %.2f virtual ms across %d processes\n",
		float64(res.Elapsed)/1e6, 5)

	out, _ := inst.ReadFile("/data/apples.txt")
	fmt.Printf("apples.txt:\n%s", out)

	// Processes, signals, syscalls — the kernel keeps score.
	fmt.Printf("async syscalls handled: %d\n", inst.Kernel.AsyncSyscalls)
}
