// Quickstart: boot a Browsix instance, stage a file through the io/fs
// facade, run a Unix pipeline via a process handle, and read the results
// back — the minimum end-to-end trip through the public API.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	browsix "repro"
)

func main() {
	// Boot the "browser page": main-thread kernel + empty file system.
	inst := browsix.Boot(browsix.Config{})
	// Stage the standard image: the paper's coreutils (Node runtime)
	// and dash (Emscripten/Emterpreter runtime) on the PATH.
	browsix.InstallBase(inst)

	// Stage some input through the Go-native file-system facade: an
	// io/fs.FS (plus write extensions) over the kernel's VFS.
	fsys := inst.FS()
	if err := fsys.MkdirAll("data", 0o755); err != nil {
		log.Fatalf("mkdir: %v", err)
	}
	if err := fsys.WriteFile("data/fruit.txt",
		[]byte("banana\napple\ncherry\napple pie\n"), 0o644); err != nil {
		log.Fatalf("staging: %v", err)
	}

	// The paper's flagship interaction (§5.1.2): compose processes with
	// pipes, through a real shell, all "in the browser". Start returns a
	// live process handle; its stdout stream and Wait drive the
	// deterministic simulation on demand.
	start := inst.Now()
	p, err := inst.Start(browsix.Spec{
		Argv:  []string{"/bin/sh", "-c", "cat /data/fruit.txt | grep apple | sort | tee /data/apples.txt | wc -l"},
		Stdin: strings.NewReader(""), // explicit empty stdin
	})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	out, _ := io.ReadAll(p.Stdout())
	code, err := p.Wait()
	if err != nil {
		log.Fatalf("wait: %v", err)
	}
	if code != 0 {
		errOut, _ := io.ReadAll(p.Stderr())
		log.Fatalf("pipeline failed (%d): %s", code, errOut)
	}
	fmt.Printf("pipeline stdout: %s", out)
	fmt.Printf("pipeline took %.2f virtual ms across %d processes\n",
		float64(inst.Now()-start)/1e6, 5)

	// Read results back with plain io/fs calls.
	apples, _ := fsys.ReadFile("data/apples.txt")
	fmt.Printf("apples.txt:\n%s", apples)
	matches, _ := fsys.Glob("data/*.txt")
	fmt.Printf("staged files: %v\n", matches)

	// Processes, signals, syscalls — the kernel keeps score.
	fmt.Printf("async syscalls handled: %d\n", inst.Kernel.AsyncSyscalls.Load())
}
