package main

import (
	"strings"
	"testing"

	browsix "repro"
	"repro/internal/abi"
)

// Smoke test replicating the quickstart flow (boot → InstallBase → stage
// a file → shell pipeline → read results back) with assertions, so the
// example's end-to-end path is exercised by `go test`.
func TestQuickstartFlow(t *testing.T) {
	inst := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inst)

	if err := inst.WriteFile("/data/fruit.txt",
		[]byte("banana\napple\ncherry\napple pie\n")); err != abi.OK {
		t.Fatalf("staging: %v", err)
	}

	res := inst.RunCommand("cat /data/fruit.txt | grep apple | sort | tee /data/apples.txt | wc -l")
	if res.Code != 0 {
		t.Fatalf("pipeline exited %d: %s", res.Code, res.Stderr)
	}
	if got := strings.TrimSpace(string(res.Stdout)); got != "2" {
		t.Fatalf("wc -l printed %q, want 2", got)
	}

	out, err := inst.ReadFile("/data/apples.txt")
	if err != abi.OK || string(out) != "apple\napple pie\n" {
		t.Fatalf("apples.txt = %q (%v)", out, err)
	}

	if inst.Kernel.AsyncSyscalls == 0 {
		t.Fatal("no async syscalls recorded for the Node coreutils")
	}
}
