package main

import (
	"errors"
	"io"
	"io/fs"
	"strings"
	"testing"

	browsix "repro"
)

// Smoke test replicating the quickstart flow (boot → InstallBase → stage
// through the io/fs facade → Start a shell pipeline → read results back)
// with assertions, so the example's end-to-end path is exercised by
// `go test`.
func TestQuickstartFlow(t *testing.T) {
	inst := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inst)

	fsys := inst.FS()
	if err := fsys.MkdirAll("data", 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := fsys.WriteFile("data/fruit.txt",
		[]byte("banana\napple\ncherry\napple pie\n"), 0o644); err != nil {
		t.Fatalf("staging: %v", err)
	}

	p, err := inst.Start(browsix.Spec{
		Argv:  []string{"/bin/sh", "-c", "cat /data/fruit.txt | grep apple | sort | tee /data/apples.txt | wc -l"},
		Stdin: strings.NewReader(""),
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	out, rerr := io.ReadAll(p.Stdout())
	if rerr != nil {
		t.Fatalf("stdout: %v", rerr)
	}
	code, werr := p.Wait()
	if werr != nil || code != 0 {
		t.Fatalf("pipeline exited %d (%v)", code, werr)
	}
	if got := strings.TrimSpace(string(out)); got != "2" {
		t.Fatalf("wc -l printed %q, want 2", got)
	}

	apples, err := fsys.ReadFile("data/apples.txt")
	if err != nil || string(apples) != "apple\napple pie\n" {
		t.Fatalf("apples.txt = %q (%v)", apples, err)
	}

	// The facade is a real io/fs.FS: stdlib helpers work against it.
	matches, err := fs.Glob(fsys, "data/*.txt")
	if err != nil || len(matches) != 2 {
		t.Fatalf("glob = %v (%v)", matches, err)
	}
	if _, err := fsys.ReadFile("data/missing.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}

	if inst.Kernel.AsyncSyscalls.Load() == 0 {
		t.Fatal("no async syscalls recorded for the Node coreutils")
	}
}
