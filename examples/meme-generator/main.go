// meme-generator reproduces §5.1.1: a client/server meme creator whose
// unmodified Go server runs either on a remote host or inside Browsix.
// The web app routes requests dynamically — offline or powerful device →
// in-browser server; otherwise → the cloud — and keeps working with the
// network unplugged.
package main

import (
	"encoding/json"
	"fmt"

	browsix "repro"
	"repro/internal/meme"
)

func main() {
	inst := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inst)
	browsix.InstallMeme(inst, 50_000_000) // the "EC2" twin: 50ms RTT

	// Launch the GopherJS-compiled server as a Browsix process and wait
	// for the §4.1 socket notification instead of polling.
	pid := inst.StartMemeServer()
	fmt.Printf("meme-server running in-browser as pid %d\n", pid)

	// List templates via the XHR-like API (kernel sockets + HTTP/1.1).
	resp := inst.FetchSync("GET", meme.Port, "/api/templates", nil)
	var names []string
	json.Unmarshal(resp.Body, &names)
	fmt.Printf("templates (in-browser, status %d): %v\n", resp.Status, names)

	body, _ := json.Marshal(meme.GenRequest{
		Template: "doge", Top: "MUCH UNIX", Bottom: "VERY BROWSER",
	})

	// Online, on a laptop (a "powerful device"): policy says in-browser.
	route := inst.MemeRoute(true)
	t0 := inst.Now()
	img := inst.GenerateMeme(route, body)
	fmt.Printf("desktop route=%s -> %s in %.1f virtual ms\n",
		route, meme.DescribeImage(img.Body), float64(inst.Now()-t0)/1e6)

	// Online, on a weak device: policy says cloud.
	route = inst.MemeRoute(false)
	t0 = inst.Now()
	img = inst.GenerateMeme(route, body)
	fmt.Printf("mobile  route=%s -> %s in %.1f virtual ms\n",
		route, meme.DescribeImage(img.Body), float64(inst.Now()-t0)/1e6)

	// Unplug the network: the same app keeps working.
	inst.Net.Offline = true
	route = inst.MemeRoute(false)
	t0 = inst.Now()
	img = inst.GenerateMeme(route, body)
	fmt.Printf("offline route=%s -> %s in %.1f virtual ms (status %d)\n",
		route, meme.DescribeImage(img.Body), float64(inst.Now()-t0)/1e6, img.Status)

	// The comparison of §5.2: a cheap request is *faster* in-browser
	// than across the network.
	inst.Net.Offline = false
	t0 = inst.Now()
	inst.FetchSync("GET", meme.Port, "/api/templates", nil)
	local := inst.Now() - t0
	t0 = inst.Now()
	inst.FetchRemoteSync(browsix.MemeHostName, "GET", "/api/templates", nil)
	remote := inst.Now() - t0
	fmt.Printf("template list: in-browsix %.1fms vs remote %.1fms (%.1fx)\n",
		float64(local)/1e6, float64(remote)/1e6, float64(remote)/float64(local))
}
