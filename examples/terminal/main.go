// terminal reproduces §5.1.2: an in-browser Unix terminal running dash
// (compiled, in the paper, with Browsix-enhanced Emscripten). The session
// below exercises pipes, redirection, globbing, background jobs, shell
// state, and the Node-runtime utilities on the PATH — all as Browsix
// processes.
package main

import (
	"fmt"
	"strings"

	browsix "repro"
)

func main() {
	inst := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inst)
	inst.FS().WriteFile("home/notes.txt", []byte("apple\nbanana\napple pie\ncherry\n"), 0o644)

	// The terminal is an interactive process handle underneath:
	// Start(Spec{Interactive: true}) keeps stdin open and Exec types
	// into it line by line.
	term := inst.NewTerminal()
	fmt.Printf("browsix terminal — dash running as Browsix pid %d\n", term.Process().Pid)

	session := []string{
		"echo hello from dash",
		"cat /etc/motd",
		"cd /home",
		"pwd",
		"cat notes.txt | grep apple > apples.txt",
		"cat apples.txt",
		"ls /home",
		"echo *.txt",
		"sha1sum notes.txt apples.txt",
		"seq 4 | sort -r | head -n 2",
		"echo background > bg.txt &",
		"wait",
		"cat bg.txt",
		"X=browsix; echo \"dollar works: $X ($(wc -l < notes.txt) lines)\"",
		"false || echo fallback ran",
	}
	for _, cmd := range session {
		out := term.Exec(cmd)
		fmt.Printf("$ %s\n", cmd)
		if out != "" {
			fmt.Print(indent(out))
		}
	}
	code := term.Close()
	fmt.Printf("(shell exited %d; %d processes were spawned this session)\n",
		code, inst.Kernel.SyscallCount["spawn"])
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
