package core

import "repro/internal/abi"

// This file implements SYS_poll: level-triggered readiness over socket
// and pipe descriptors, the multiplexing primitive the event-driven
// HTTP server (internal/httpx) is built on. Readiness is evaluated
// against kernel state directly — a listener is readable when its
// backlog is non-empty, a connection when its receive pipe holds bytes
// or EOF, writable while its send pipe has space — and parked pollers
// are re-scanned whenever any of those facts can change (pipe pumps,
// backlog pushes, closes), which the pipes announce through their
// onState hook and the socket code by calling pollKick directly.

// pollWaiter is one parked SYS_poll: the querying task, its staged
// Pollfd set (revents filled in place on completion), and the
// continuation that writes results back and replies.
type pollWaiter struct {
	t    *Task
	fds  []abi.Pollfd
	done bool
	cb   func(n int, err abi.Errno)
}

// pollReadiness computes the full readiness bitmap for one descriptor.
// Regular files and directories are always ready both ways (as in
// poll(2)); the interesting cases are sockets and pipe ends.
func pollReadiness(d *Desc) uint32 {
	var r uint32
	switch f := d.file.(type) {
	case *Socket:
		switch f.state {
		case sockListening:
			if len(f.backlog) > 0 {
				r |= abi.POLLIN
			}
		case sockConnected:
			if f.in.size > 0 || f.in.writeClosed {
				r |= abi.POLLIN
			}
			if f.in.writeClosed {
				r |= abi.POLLHUP
			}
			if f.out.readClosed {
				r |= abi.POLLERR
			} else if f.out.size < PipeCap && len(f.out.writeWaiters) == 0 {
				r |= abi.POLLOUT
			}
		case sockClosed:
			r |= abi.POLLHUP
		}
	case *pipeEnd:
		if f.reader {
			if f.p.size > 0 || f.p.writeClosed {
				r |= abi.POLLIN
			}
			if f.p.writeClosed {
				r |= abi.POLLHUP
			}
		} else {
			if f.p.readClosed {
				r |= abi.POLLERR
			} else if f.p.size < PipeCap && len(f.p.writeWaiters) == 0 {
				r |= abi.POLLOUT
			}
		}
	default:
		r |= abi.POLLIN | abi.POLLOUT
	}
	return r
}

// pollScan fills revents for every record and returns the ready count.
// POLLERR/POLLHUP/POLLNVAL report regardless of the requested events.
func pollScan(t *Task, fds []abi.Pollfd) int {
	ready := 0
	for i := range fds {
		fds[i].Revents = 0
		d, err := t.lookFd(int(fds[i].Fd))
		if err != abi.OK {
			fds[i].Revents = abi.POLLNVAL
			ready++
			continue
		}
		r := pollReadiness(d) & (fds[i].Events | abi.POLLERR | abi.POLLHUP | abi.POLLNVAL)
		if r != 0 {
			fds[i].Revents = r
			ready++
		}
	}
	return ready
}

// doPoll evaluates readiness now and either answers immediately (any fd
// ready, or a zero timeout) or parks until a kick or the virtual-time
// timeout. timeoutNs < 0 blocks indefinitely; 0 is a pure status probe;
// > 0 arms a timer that completes the poll with zero ready fds.
func (k *Kernel) doPoll(t *Task, fds []abi.Pollfd, timeoutNs int64, cb func(n int, err abi.Errno)) {
	if n := pollScan(t, fds); n > 0 || timeoutNs == 0 {
		cb(n, abi.OK)
		return
	}
	w := &pollWaiter{t: t, fds: fds, cb: cb}
	k.pollParked = append(k.pollParked, w)
	if timeoutNs > 0 {
		k.Sys.Main.SetTimeout(timeoutNs, func() {
			if w.done {
				return
			}
			w.done = true
			k.reapPollWaiter(w)
			for i := range w.fds {
				w.fds[i].Revents = 0
			}
			w.cb(0, abi.OK)
		})
	}
}

// pollKick re-scans every parked poller against current kernel state,
// completing those with something to report. It is level-triggered and
// idempotent: redundant kicks cost one slice check when nothing is
// parked. Completions can re-enter (the woken server issues reads that
// move pipe state inline), so re-entrant kicks coalesce into another
// pass of the outer loop instead of recursing.
func (k *Kernel) pollKick() {
	if k.pollKicking {
		k.pollAgain = true
		return
	}
	if len(k.pollParked) == 0 {
		return
	}
	k.pollKicking = true
	for {
		k.pollAgain = false
		rem := k.pollParked[:0]
		for _, w := range k.pollParked {
			if w.done {
				continue
			}
			if n := pollScan(w.t, w.fds); n > 0 {
				w.done = true
				w.cb(n, abi.OK)
				continue
			}
			rem = append(rem, w)
		}
		// Clear the dropped tail so completed waiters don't linger
		// reachable behind len(rem).
		tail := k.pollParked[len(rem):]
		for i := range tail {
			tail[i] = nil
		}
		k.pollParked = rem
		if !k.pollAgain {
			break
		}
	}
	k.pollKicking = false
}

// reapPollWaiter unlinks one completed waiter so timed-out polls don't
// linger in the parked set until the next kick happens to scan it.
func (k *Kernel) reapPollWaiter(w *pollWaiter) {
	for i, pw := range k.pollParked {
		if pw == w {
			last := len(k.pollParked) - 1
			copy(k.pollParked[i:], k.pollParked[i+1:])
			k.pollParked[last] = nil
			k.pollParked = k.pollParked[:last]
			return
		}
	}
}

// dropPollWaiters discards parked polls belonging to an exiting task —
// there is no runtime left to deliver a completion to.
func (k *Kernel) dropPollWaiters(t *Task) {
	rem := k.pollParked[:0]
	for _, w := range k.pollParked {
		if w.t == t {
			w.done = true
			continue
		}
		rem = append(rem, w)
	}
	tail := k.pollParked[len(rem):]
	for i := range tail {
		tail[i] = nil
	}
	k.pollParked = rem
}
