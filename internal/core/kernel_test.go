package core_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/posix"
	"repro/internal/rt"
	"repro/internal/sched"
)

// Test programs, registered once. They play the role of the compiled-to-JS
// binaries the paper runs.
func init() {
	posix.Register(&posix.Program{Name: "t-echo", Main: func(p posix.Proc) int {
		posix.WriteString(p, abi.Stdout, strings.Join(p.Args()[1:], " ")+"\n")
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-cat", Main: func(p posix.Proc) int {
		posix.CopyFd(p, abi.Stdout, abi.Stdin)
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-fail", Main: func(p posix.Proc) int {
		posix.WriteString(p, abi.Stderr, "boom\n")
		return 42
	}})
	posix.Register(&posix.Program{Name: "t-fsops", Main: func(p posix.Proc) int {
		if err := p.Mkdir("/work", 0o755); err != abi.OK {
			return 1
		}
		if err := posix.WriteFile(p, "/work/a.txt", []byte("alpha"), 0o644); err != abi.OK {
			return 2
		}
		if err := p.Rename("/work/a.txt", "/work/b.txt"); err != abi.OK {
			return 3
		}
		b, err := posix.ReadFile(p, "/work/b.txt")
		if err != abi.OK || string(b) != "alpha" {
			return 4
		}
		st, err := p.Stat("/work/b.txt")
		if err != abi.OK || st.Size != 5 {
			return 5
		}
		if _, err := p.Stat("/work/missing"); err != abi.ENOENT {
			return 6
		}
		ents, err := p.Getdents(mustOpen(p, "/work"))
		if err != abi.OK || len(ents) != 1 || ents[0].Name != "b.txt" {
			return 7
		}
		if err := p.Unlink("/work/b.txt"); err != abi.OK {
			return 8
		}
		if err := p.Rmdir("/work"); err != abi.OK {
			return 9
		}
		cwd, _ := p.Getcwd()
		posix.Fprintf(p, abi.Stdout, "fsok cwd=%s runtime=%s\n", cwd, p.RuntimeName())
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-spawner", Main: func(p posix.Proc) int {
		pid, err := p.Spawn("/usr/bin/t-echo", []string{"t-echo", "from", "child"}, p.Environ(), nil)
		if err != abi.OK {
			return 1
		}
		wpid, status, err := p.Wait4(pid, 0)
		if err != abi.OK || wpid != pid {
			return 2
		}
		posix.Fprintf(p, abi.Stdout, "child=%d code=%d\n", pid, abi.WEXITSTATUS(status))
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-pipeline", Main: func(p posix.Proc) int {
		// echo | cat, wired with pipes and fd inheritance.
		r, w, err := p.Pipe()
		if err != abi.OK {
			return 1
		}
		p1, err := p.Spawn("/usr/bin/t-echo", []string{"t-echo", "through", "pipe"}, nil, []int{0, w, 2})
		if err != abi.OK {
			return 2
		}
		p2, err := p.Spawn("/usr/bin/t-cat", []string{"t-cat"}, nil, []int{r, 1, 2})
		if err != abi.OK {
			return 3
		}
		p.Close(r)
		p.Close(w)
		p.Wait4(p1, 0)
		p.Wait4(p2, 0)
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-sigwait", Main: func(p posix.Proc) int {
		p.Signal(abi.SIGTERM, func(sig int) {
			posix.WriteString(p, abi.Stdout, "caught SIGTERM\n")
			p.Exit(3)
		})
		posix.WriteString(p, abi.Stdout, "ready\n")
		// Block forever on a pipe that never produces data.
		r, _, _ := p.Pipe()
		p.Read(r, 1)
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-server", Main: func(p posix.Proc) int {
		fd, _ := p.Socket()
		if err := p.Bind(fd, 8080); err != abi.OK {
			return 1
		}
		if err := p.Listen(fd, 5); err != abi.OK {
			return 2
		}
		conn, err := p.Accept(fd)
		if err != abi.OK {
			return 3
		}
		req, _ := p.Read(conn, 1024)
		posix.WriteAll(p, conn, []byte("pong:"+string(req)))
		p.Close(conn)
		p.Close(fd)
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-client", Main: func(p posix.Proc) int {
		fd, _ := p.Socket()
		if err := p.Connect(fd, 8080); err != abi.OK {
			return 1
		}
		posix.WriteAll(p, fd, []byte("ping"))
		resp, _ := p.Read(fd, 1024)
		posix.WriteString(p, abi.Stdout, string(resp)+"\n")
		p.Close(fd)
		return 0
	}})
	posix.Register(&posix.Program{
		Name: "t-forker",
		Main: func(p posix.Proc) int {
			pid, err := p.Fork("after-fork", []byte("forked-state"))
			if err != abi.OK {
				posix.Fprintf(p, abi.Stdout, "fork failed: %v\n", err)
				return 1
			}
			wpid, status, werr := p.Wait4(pid, 0)
			if werr != abi.OK || wpid != pid {
				return 2
			}
			posix.Fprintf(p, abi.Stdout, "parent: child=%d code=%d\n", pid, abi.WEXITSTATUS(status))
			return 0
		},
		ResumeFork: func(p posix.Proc, mem []byte, label string) int {
			posix.WriteFile(p, "/fork-evidence.txt", []byte(label+":"+string(mem)), 0o644)
			return 7
		},
	})
	posix.Register(&posix.Program{Name: "t-execer", Main: func(p posix.Proc) int {
		err := p.Exec("/usr/bin/t-echo", []string{"t-echo", "post-exec"}, p.Environ())
		// Only reached on failure.
		posix.Fprintf(p, abi.Stderr, "exec failed: %v\n", err)
		return 1
	}})
	posix.Register(&posix.Program{Name: "t-zombie-child", Main: func(p posix.Proc) int {
		return 5
	}})
	posix.Register(&posix.Program{Name: "t-fileops2", Main: func(p posix.Proc) int {
		// llseek + pread/pwrite.
		fd, err := p.Open("/f2", abi.O_RDWR|abi.O_CREAT, 0o644)
		if err != abi.OK {
			return 1
		}
		if _, err := p.Write(fd, []byte("0123456789")); err != abi.OK {
			return 2
		}
		if off, err := p.Seek(fd, 2, abi.SEEK_SET); err != abi.OK || off != 2 {
			return 3
		}
		if b, err := p.Read(fd, 3); err != abi.OK || string(b) != "234" {
			return 4
		}
		if off, err := p.Seek(fd, -2, abi.SEEK_END); err != abi.OK || off != 8 {
			return 5
		}
		if _, err := p.Pwrite(fd, []byte("XY"), 4); err != abi.OK {
			return 6
		}
		if b, err := p.Pread(fd, 2, 4); err != abi.OK || string(b) != "XY" {
			return 7
		}
		// ftruncate.
		if err := p.Ftruncate(fd, 5); err != abi.OK {
			return 8
		}
		if st, err := p.Fstat(fd); err != abi.OK || st.Size != 5 {
			return 9
		}
		p.Close(fd)
		// dup2: writes through the duplicate land in the same file with a
		// shared offset.
		fd2, _ := p.Open("/dup.txt", abi.O_WRONLY|abi.O_CREAT, 0o644)
		if err := p.Dup2(fd2, 9); err != abi.OK {
			return 10
		}
		p.Write(fd2, []byte("via-orig "))
		p.Write(9, []byte("via-dup"))
		p.Close(fd2)
		p.Close(9)
		if b, err := posix.ReadFile(p, "/dup.txt"); err != abi.OK || string(b) != "via-orig via-dup" {
			return 11
		}
		// symlink/readlink + rename.
		if err := p.Symlink("/dup.txt", "/link"); err != abi.OK {
			return 12
		}
		if target, err := p.Readlink("/link"); err != abi.OK || target != "/dup.txt" {
			return 13
		}
		if b, err := posix.ReadFile(p, "/link"); err != abi.OK || string(b) != "via-orig via-dup" {
			return 14
		}
		if err := p.Rename("/dup.txt", "/renamed.txt"); err != abi.OK {
			return 15
		}
		if _, err := p.Stat("/renamed.txt"); err != abi.OK {
			return 16
		}
		// O_APPEND honours end-of-file on every write.
		afd, _ := p.Open("/renamed.txt", abi.O_WRONLY|abi.O_APPEND, 0)
		p.Write(afd, []byte("+app"))
		p.Close(afd)
		if b, _ := posix.ReadFile(p, "/renamed.txt"); string(b) != "via-orig via-dup+app" {
			return 17
		}
		posix.WriteString(p, abi.Stdout, "fileops2 ok\n")
		return 0
	}})
	posix.Register(&posix.Program{Name: "t-reaper", Main: func(p posix.Proc) int {
		pid, _ := p.Spawn("/usr/bin/t-zombie-child", []string{"t-zombie-child"}, nil, nil)
		// Child exits quickly; give it time by spinning on WNOHANG until
		// it reaps (exercises the zombie state).
		for i := 0; i < 1000; i++ {
			wpid, status, err := p.Wait4(pid, abi.WNOHANG)
			if err != abi.OK {
				return 1
			}
			if wpid == pid {
				posix.Fprintf(p, abi.Stdout, "reaped=%d code=%d tries>0=%v\n",
					wpid, abi.WEXITSTATUS(status), i > 0)
				return 0
			}
			p.CPU(1000_000) // 1ms of spinning
		}
		return 2
	}})
}

func mustOpen(p posix.Proc, path string) int {
	fd, err := p.Open(path, abi.O_RDONLY, 0)
	if err != abi.OK {
		p.Exit(100)
	}
	return fd
}

// world is a booted Browsix instance for tests.
type world struct {
	sim *sched.Sim
	sys *browser.System
	k   *core.Kernel
	fs  *fs.FileSystem
}

func boot(t testing.TB) *world {
	t.Helper()
	sim := sched.New()
	sim.MaxSteps = 5_000_000
	sys := browser.NewSystem(sim, browser.Chrome())
	clock := func() int64 { return sim.Now() }
	root := fs.NewMemFS(clock)
	fsys := fs.NewFileSystem(root, clock)
	k := core.NewKernel(sys, fsys, rt.Loader(sys))
	w := &world{sim: sim, sys: sys, k: k, fs: fsys}
	w.mkdirAll(t, "/usr/bin")
	w.mkdirAll(t, "/bin")
	for _, prog := range []string{"t-echo", "t-cat", "t-fail", "t-fsops", "t-spawner",
		"t-pipeline", "t-sigwait", "t-server", "t-client", "t-execer",
		"t-zombie-child", "t-reaper", "t-fileops2"} {
		w.install(t, "/usr/bin/"+prog, prog, rt.NodeKind)
	}
	w.install(t, "/usr/bin/t-forker", "t-forker", rt.EmAsyncKind)
	return w
}

func (w *world) mkdirAll(t testing.TB, p string) {
	t.Helper()
	w.fs.MkdirAll(p, 0o755, func(err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("mkdirall %s: %v", p, err)
		}
	})
}

func (w *world) install(t testing.TB, path, prog string, kind rt.Kind) {
	t.Helper()
	// Small artifact size keeps unit-test sims fast; benchmarks use
	// realistic sizes.
	data := posix.Executable(prog, string(kind), 4096)
	w.fs.WriteFile(path, data, 0o755, func(err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("install %s: %v", path, err)
		}
	})
}

// run launches a command line via kernel.System and drives the simulation
// until it exits, returning exit code and captured output.
func (w *world) run(t testing.TB, cmdline string) (int, string, string) {
	t.Helper()
	var stdout, stderr []byte
	code := -1
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sys.Main.Now(), func() {
		w.k.System(cmdline,
			func(pid, c int) { code = c; done = true },
			func(b []byte) { stdout = append(stdout, b...) },
			func(b []byte) { stderr = append(stderr, b...) })
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatalf("System(%q) never exited; blocked ctxs: %v\n%s", cmdline, w.sim.BlockedCtxs(), w.sim.Dump())
	}
	// Let output pumps drain.
	w.sim.Run()
	return code, string(stdout), string(stderr)
}

func TestSystemRunsEcho(t *testing.T) {
	w := boot(t)
	code, out, _ := w.run(t, "/usr/bin/t-echo hello browsix")
	if code != 0 || out != "hello browsix\n" {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestExitCodeAndStderr(t *testing.T) {
	w := boot(t)
	code, out, errOut := w.run(t, "/usr/bin/t-fail")
	if code != 42 {
		t.Fatalf("code=%d, want 42", code)
	}
	if out != "" || errOut != "boom\n" {
		t.Fatalf("out=%q err=%q", out, errOut)
	}
}

func TestFileSyscallsAsyncRuntime(t *testing.T) {
	w := boot(t)
	code, out, _ := w.run(t, "/usr/bin/t-fsops")
	if code != 0 {
		t.Fatalf("t-fsops exit=%d out=%q", code, out)
	}
	if !strings.Contains(out, "fsok cwd=/ runtime=node") {
		t.Fatalf("out=%q", out)
	}
	if w.k.AsyncSyscalls.Load() == 0 || w.k.SyncSyscalls.Load() != 0 {
		t.Fatalf("async=%d sync=%d", w.k.AsyncSyscalls.Load(), w.k.SyncSyscalls.Load())
	}
}

func TestFileSyscallsSyncRuntime(t *testing.T) {
	w := boot(t)
	w.install(t, "/usr/bin/t-fsops-sync", "t-fsops", rt.EmSyncKind)
	code, out, _ := w.run(t, "/usr/bin/t-fsops-sync")
	if code != 0 {
		t.Fatalf("sync t-fsops exit=%d out=%q", code, out)
	}
	if !strings.Contains(out, "runtime=em-sync") {
		t.Fatalf("out=%q", out)
	}
	if w.k.SyncSyscalls.Load() == 0 {
		t.Fatal("no synchronous syscalls recorded")
	}
}

func TestFileOps2BothTransports(t *testing.T) {
	w := boot(t)
	code, out, errOut := w.run(t, "/usr/bin/t-fileops2")
	if code != 0 || out != "fileops2 ok\n" {
		t.Fatalf("async: code=%d out=%q err=%q", code, out, errOut)
	}
	// Same program on the synchronous transport (fresh world: the files
	// it creates must not collide).
	w2 := boot(t)
	w2.install(t, "/usr/bin/t-fileops2-sync", "t-fileops2", rt.EmSyncKind)
	code, out, errOut = w2.run(t, "/usr/bin/t-fileops2-sync")
	if code != 0 || out != "fileops2 ok\n" {
		t.Fatalf("sync: code=%d out=%q err=%q", code, out, errOut)
	}
}

func TestSpawnAndWait4(t *testing.T) {
	w := boot(t)
	code, out, _ := w.run(t, "/usr/bin/t-spawner")
	if code != 0 || !strings.Contains(out, "code=0") {
		t.Fatalf("code=%d out=%q", code, out)
	}
	// The child's stdout was inherited, so its output appears too.
	if !strings.Contains(out, "from child\n") {
		t.Fatalf("child stdout missing: %q", out)
	}
}

func TestPipelineThroughPipes(t *testing.T) {
	w := boot(t)
	code, out, _ := w.run(t, "/usr/bin/t-pipeline")
	if code != 0 || !strings.Contains(out, "through pipe\n") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestZombieReaping(t *testing.T) {
	w := boot(t)
	code, out, _ := w.run(t, "/usr/bin/t-reaper")
	if code != 0 || !strings.Contains(out, "code=5") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestSignalHandlerAndKill(t *testing.T) {
	w := boot(t)
	var stdout []byte
	code := -1
	var pid int
	done := false
	w.sim.Post(w.sys.Main.Sched(), 0, func() {
		w.k.System("/usr/bin/t-sigwait",
			func(p, c int) { code = c; done = true },
			func(b []byte) { stdout = append(stdout, b...) },
			nil)
	})
	w.sim.RunUntil(func() bool { return strings.Contains(string(stdout), "ready\n") })
	// Find the process and signal it, as the LaTeX editor's cancel
	// button does.
	for _, task := range w.k.Tasks() {
		if strings.Contains(task.Path, "t-sigwait") {
			pid = task.Pid
		}
	}
	if pid == 0 {
		t.Fatal("t-sigwait task not found")
	}
	w.sim.Post(w.sys.Main.Sched(), w.sys.Main.Now(), func() {
		if err := w.k.Kill(pid, abi.SIGTERM); err != abi.OK {
			t.Errorf("kill: %v", err)
		}
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatalf("process never exited after SIGTERM\n%s", w.sim.Dump())
	}
	if code != 3 || !strings.Contains(string(stdout), "caught SIGTERM") {
		t.Fatalf("code=%d out=%q", code, stdout)
	}
}

func TestSIGKILLUncatchable(t *testing.T) {
	w := boot(t)
	var stdout []byte
	code := -1
	done := false
	w.sim.Post(w.sys.Main.Sched(), 0, func() {
		w.k.System("/usr/bin/t-sigwait",
			func(p, c int) { code = c; done = true },
			func(b []byte) { stdout = append(stdout, b...) }, nil)
	})
	w.sim.RunUntil(func() bool { return strings.Contains(string(stdout), "ready\n") })
	var pid int
	for _, task := range w.k.Tasks() {
		if strings.Contains(task.Path, "t-sigwait") {
			pid = task.Pid
		}
	}
	w.sim.Post(w.sys.Main.Sched(), w.sys.Main.Now(), func() {
		w.k.Kill(pid, abi.SIGKILL)
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatal("process survived SIGKILL")
	}
	if code != 128+abi.SIGKILL {
		t.Fatalf("code=%d, want %d", code, 128+abi.SIGKILL)
	}
	if strings.Contains(string(stdout), "caught") {
		t.Fatal("SIGKILL was caught — must be uncatchable")
	}
}

func TestSocketsClientServer(t *testing.T) {
	w := boot(t)
	serverCode, clientCode := -1, -1
	var clientOut []byte
	notified := false
	w.sim.Post(w.sys.Main.Sched(), 0, func() {
		w.k.OnPortListen(8080, func(port int) { notified = true })
		w.k.System("/usr/bin/t-server", func(p, c int) { serverCode = c }, nil, nil)
	})
	// Start the client only after the socket notification fires —
	// exactly the pattern §4.1 describes.
	w.sim.RunUntil(func() bool { return notified })
	w.sim.Post(w.sys.Main.Sched(), w.sys.Main.Now(), func() {
		w.k.System("/usr/bin/t-client", func(p, c int) { clientCode = c },
			func(b []byte) { clientOut = append(clientOut, b...) }, nil)
	})
	if !w.sim.RunUntil(func() bool { return serverCode >= 0 && clientCode >= 0 }) {
		t.Fatalf("client/server did not finish\n%s", w.sim.Dump())
	}
	if serverCode != 0 || clientCode != 0 {
		t.Fatalf("server=%d client=%d", serverCode, clientCode)
	}
	if string(clientOut) != "pong:ping\n" {
		t.Fatalf("client out=%q", clientOut)
	}
}

func TestForkEmscriptenAsync(t *testing.T) {
	w := boot(t)
	code, out, _ := w.run(t, "/usr/bin/t-forker")
	if code != 0 {
		t.Fatalf("t-forker exit=%d out=%q", code, out)
	}
	if !strings.Contains(out, "code=7") {
		t.Fatalf("parent did not reap forked child correctly: %q", out)
	}
	var evidence []byte
	w.fs.ReadFile("/fork-evidence.txt", func(b []byte, err abi.Errno) { evidence = b })
	if string(evidence) != "after-fork:forked-state" {
		t.Fatalf("fork snapshot not delivered to child: %q", evidence)
	}
}

func TestForkRefusedOnNonEmscriptenRuntimes(t *testing.T) {
	w := boot(t)
	w.install(t, "/usr/bin/t-forker-node", "t-forker", rt.NodeKind)
	code, out, _ := w.run(t, "/usr/bin/t-forker-node")
	if code != 1 || !strings.Contains(out, "fork failed: ENOSYS") {
		t.Fatalf("fork under node runtime: code=%d out=%q (want ENOSYS failure)", code, out)
	}
}

func TestExecReplacesImage(t *testing.T) {
	w := boot(t)
	code, out, errOut := w.run(t, "/usr/bin/t-execer")
	if code != 0 || out != "post-exec\n" || errOut != "" {
		t.Fatalf("code=%d out=%q err=%q", code, out, errOut)
	}
}

func TestShebangExecution(t *testing.T) {
	w := boot(t)
	script := []byte("#!/usr/bin/t-echo\nthis line is data, not code\n")
	w.fs.WriteFile("/usr/bin/myscript", script, 0o755, func(abi.Errno) {})
	code, out, _ := w.run(t, "/usr/bin/myscript arg1")
	if code != 0 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	// execve semantics: interpreter receives script path then the args.
	if !strings.Contains(out, "/usr/bin/myscript") || !strings.Contains(out, "arg1") {
		t.Fatalf("shebang argv wrong: %q", out)
	}
}

func TestSpawnENOENT(t *testing.T) {
	w := boot(t)
	code, _, _ := w.run(t, "/usr/bin/no-such-binary")
	if code != 127 {
		t.Fatalf("code=%d, want 127", code)
	}
}

func TestSyscallCountsTracked(t *testing.T) {
	w := boot(t)
	w.run(t, "/usr/bin/t-fsops")
	if w.k.SyscallCount["open"] == 0 || w.k.SyscallCount["exit"] == 0 {
		t.Fatalf("syscall accounting missing entries: %v", w.k.SyscallCount)
	}
}

func TestKernelSystemMetacharsUseShell(t *testing.T) {
	w := boot(t)
	// No /bin/sh installed in this world yet: the command must fail
	// with 127 because System routes metachar command lines to the shell.
	code, _, _ := w.run(t, "/usr/bin/t-echo a | /usr/bin/t-cat")
	if code != 127 {
		t.Fatalf("code=%d, want 127 (no /bin/sh staged)", code)
	}
}

func TestTaskDiagnostics(t *testing.T) {
	w := boot(t)
	var stdout []byte
	w.sim.Post(w.sys.Main.Sched(), 0, func() {
		w.k.System("/usr/bin/t-sigwait", func(p, c int) {},
			func(b []byte) { stdout = append(stdout, b...) }, nil)
	})
	w.sim.RunUntil(func() bool { return strings.Contains(string(stdout), "ready") })
	tasks := w.k.Tasks()
	if len(tasks) != 1 {
		t.Fatalf("tasks=%d, want 1", len(tasks))
	}
	task := tasks[0]
	if task.StateName() != "R" || task.Pid == 0 {
		t.Fatalf("task state=%s pid=%d", task.StateName(), task.Pid)
	}
	if got := task.FdPath(1); !strings.Contains(got, "pipe") {
		t.Fatalf("fd1 path=%q", got)
	}
	// Clean up.
	w.sim.Post(w.sys.Main.Sched(), w.sys.Main.Now(), func() { w.k.Kill(task.Pid, abi.SIGKILL) })
	w.sim.Run()
}

func TestHostBaselineRunsSamePrograms(t *testing.T) {
	// The same registered program runs under the native host runtime —
	// the property Figure 9's baselines depend on.
	sim := sched.New()
	sim.MaxSteps = 1_000_000
	clock := func() int64 { return sim.Now() }
	fsys := fs.NewFileSystem(fs.NewMemFS(clock), clock)
	res := rt.RunHost(sim, fsys, rt.NativeKind, []string{"t-fsops"}, nil, "/")
	if res.Code != 0 {
		t.Fatalf("host t-fsops exit=%d stderr=%s", res.Code, res.Stderr)
	}
	if !strings.Contains(string(res.Stdout), "runtime=native") {
		t.Fatalf("stdout=%q", res.Stdout)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestBrowsixSlowerThanNative(t *testing.T) {
	// Sanity-check the cost model's *shape*: the same program must be
	// substantially slower under Browsix than under the native host.
	sim := sched.New()
	sim.MaxSteps = 1_000_000
	clock := func() int64 { return sim.Now() }
	fsys := fs.NewFileSystem(fs.NewMemFS(clock), clock)
	native := rt.RunHost(sim, fsys, rt.NativeKind, []string{"t-fsops"}, nil, "/")

	w := boot(t)
	start := w.sys.Main.Now()
	_, _, _ = w.run(t, "/usr/bin/t-fsops")
	browsix := w.sys.Main.Now() - start
	if browsix < 10*native.Elapsed {
		t.Fatalf("browsix=%d native=%d: expected >=10x overhead", browsix, native.Elapsed)
	}
}

func TestPipeBackpressure(t *testing.T) {
	// A writer into a full pipe must block until the reader drains it —
	// the backpressure §6 wants from postMessage.
	p := core.NewPipe()
	writeDone := false
	big := make([]byte, core.PipeCap+100)
	var r1 []byte
	p.Write(big, func(n int, err abi.Errno) { writeDone = true })
	if writeDone {
		t.Fatal("oversized write completed without a reader")
	}
	p.Read(200, func(b []byte, err abi.Errno) { r1 = b })
	if len(r1) != 200 {
		t.Fatalf("read %d bytes", len(r1))
	}
	if !writeDone {
		t.Fatal("write still blocked after drain")
	}
}

func TestPipeEOFAndEPIPE(t *testing.T) {
	r, w := core.NewPipePair()
	d := core.NewDesc(r, abi.O_RDONLY, "r")
	dw := core.NewDesc(w, abi.O_WRONLY, "w")
	var eof bool
	w.Close(func(abi.Errno) {})
	r.Read(d, 10, func(b []byte, err abi.Errno) { eof = err == abi.OK && len(b) == 0 })
	if !eof {
		t.Fatal("no EOF after writer close")
	}
	// EPIPE on write after reader closes.
	r2, w2 := core.NewPipePair()
	r2.Close(func(abi.Errno) {})
	var gotErr abi.Errno
	w2.Write(dw, []byte("x"), func(n int, err abi.Errno) { gotErr = err })
	if gotErr != abi.EPIPE {
		t.Fatalf("err=%v, want EPIPE", gotErr)
	}
}
