package core

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/sched"
)

// Guest-supplied iovecs outside the registered heap must fail the call
// with EFAULT — never panic the kernel.
func TestVectoredRejectsOutOfRangeIovecs(t *testing.T) {
	sim := sched.New()
	sys := browser.NewSystem(sim, browser.Chrome())
	k := NewKernel(sys, nil, nil)
	task := &Task{k: k, heap: browser.NewSAB(4096)}
	_, w := NewPipePair()
	d := NewDesc(w, abi.O_WRONLY, "w")

	bad := [][]abi.Iovec{
		{{Ptr: 4090, Len: 100}},                  // runs past the heap
		{{Ptr: -8, Len: 16}},                     // negative pointer
		{{Ptr: 0, Len: -1}},                      // negative length
		{{Ptr: 1 << 40, Len: 16}},                // pointer past the heap
		{{Ptr: 16, Len: 1 << 62}},                // length overflows any sum
		{{Ptr: (1 << 63) - 9, Len: 16}},          // Ptr+Len wraps negative
		{{Ptr: 0, Len: 16}, {Ptr: 4096, Len: 1}}, // second iovec bad
	}
	for i, iovs := range bad {
		var got abi.Errno = -1
		k.doWritev(task, d, iovs, func(ret int64, err abi.Errno) { got = err })
		if got != abi.EFAULT {
			t.Errorf("writev case %d: err=%v, want EFAULT", i, got)
		}
		got = -1
		rd, _ := NewPipePair()
		dr := NewDesc(rd, abi.O_RDONLY, "r")
		k.doReadv(task, dr, iovs, func(ret int64, err abi.Errno) { got = err })
		if got != abi.EFAULT {
			t.Errorf("readv case %d: err=%v, want EFAULT", i, got)
		}
	}

	// A task with no registered heap fails cleanly too.
	bare := &Task{k: k}
	var got abi.Errno = -1
	k.doWritev(bare, d, []abi.Iovec{{Ptr: 0, Len: 8}}, func(ret int64, err abi.Errno) { got = err })
	if got != abi.EFAULT {
		t.Errorf("heapless writev: err=%v, want EFAULT", got)
	}
}
