package core

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

// Kernel side of the zero-copy write path and the batched grant-read
// dispatch — the data-plane complement of synccall.go's readg handler.
//
// Write direction: wgalloc leases the calling process *empty* page-pool
// slots; the process stages payload bytes into them through its own
// arena mapping and submits (slot, off, len) references with writeg.
// The kernel never touches the payload: an fs-backed descriptor adopts
// the referenced bytes in place as dirty write-back extents, and a pipe
// buffers them as slot-backed segments the reader can drain by grant.
// Everything else — write-back off, scalar transport, DisableZeroCopy*,
// a refusing handle — falls back to one kernel copy out of the arena,
// byte-identical with the classic write path.
//
// Read direction: a drained doorbell carrying a run of readg frames
// against one descriptor becomes a single vectored cache pass whose
// grant list is split back across the frames — 64 sequential reads cost
// one ReadRef and one wake instead of 64.

// Caps on write-grant staging: slots leased per wgalloc call, and total
// staging slots a task may hold at once (a runaway staging allocator
// must exhaust its own quota, not the shared arena). The per-call cap
// equals the per-task cap so a bulk writer can restore a full staging
// window with the one wgalloc frame that rides its writeg doorbell.
const (
	maxWgallocSlots  = 64
	maxStagedPerTask = 64
)

// writeGrantOK reports whether the task negotiated the mappings the
// zero-copy write path rides on.
func (k *Kernel) writeGrantOK(t *Task) bool {
	return t.pool && t.ring != nil && !k.DisableZeroCopy && !k.DisableZeroCopyWrite
}

// doWgalloc services the write-grant allocation doorbell: lease up to n
// empty staging slots to the task and describe them in the grant-reply
// area at grantPtr. Fewer than n (possibly zero) slots is a clean
// answer — the guest degrades to the copy path for this write, not an
// error. ENOSYS tells the guest to stop asking for good.
func (k *Kernel) doWgalloc(t *Task, n int, grantPtr int64, done func(int64, abi.Errno)) {
	if !k.writeGrantOK(t) {
		done(-1, abi.ENOSYS)
		return
	}
	if n <= 0 || n > maxWgallocSlots || grantPtr < 0 {
		done(-1, abi.EINVAL)
		return
	}
	if room := maxStagedPerTask - len(t.wstaged); n > room {
		n = room
	}
	var slots []int
	if n > 0 {
		slots = k.FS.AllocWriteSlots(n)
	}
	grants := make([]abi.PageGrant, len(slots))
	for i, slot := range slots {
		if t.leases == nil {
			t.leases = map[int]int{}
		}
		if t.wstaged == nil {
			t.wstaged = map[int]bool{}
		}
		t.leases[slot]++
		t.wstaged[slot] = true
		k.LeaseGrants.Add(1)
		grants[i] = abi.PageGrant{
			Slot: uint32(slot), Len: fs.PageSize,
			Off: int64(slot) * fs.PageSize,
		}
	}
	buf := make([]byte, abi.GrantAreaSize(len(grants)))
	abi.PackGrantReply(buf, abi.GrantMapped, grants)
	t.heapWrite(grantPtr, buf)
	done(int64(len(grants)), abi.OK)
}

// doWriteg services a write-by-reference: refs name staged payload
// bytes in slots the task holds write-staging leases on. The referenced
// bytes are adopted without copying when the descriptor supports it;
// otherwise one copy out of the arena re-creates the classic write.
func (k *Kernel) doWriteg(t *Task, fd int, refs []fs.SlotRef, done func(int64, abi.Errno)) {
	if !k.writeGrantOK(t) {
		done(-1, abi.ENOSYS)
		return
	}
	d, err := t.lookFd(fd)
	if err != abi.OK {
		done(-1, err)
		return
	}
	var total int64
	for _, r := range refs {
		if !k.FS.ValidSlotRef(r) || !t.wstaged[r.Slot] {
			done(-1, abi.EINVAL)
			return
		}
		total += int64(r.Len)
	}
	if total == 0 {
		done(0, abi.OK)
		return
	}

	// The copy fallback: assemble the payload out of the arena (one
	// kernel copy, charged like a heap crossing) and run the classic
	// owned-buffer write — byte-identical with the adoption paths.
	fallback := func() {
		buf := make([]byte, 0, total)
		for _, r := range refs {
			buf = append(buf, k.FS.SlotBytes(r)...)
		}
		k.Sys.Sim.Charge(int64(float64(total) * k.CPU.SyncByteNs))
		k.WriteCopiedBytes.Add(total)
		writeMoved(d, buf, func(n int, werr abi.Errno) {
			done(int64(n), werr)
		})
	}

	if pe, ok := d.file.(*pipeEnd); ok {
		// Pipe adoption: each reference becomes a slot-backed segment
		// holding one adopter pin, with lease/release closures over the
		// pool so later splits and read grants stay accounted.
		segs := make([]pipeSeg, len(refs))
		for i, r := range refs {
			slot := r.Slot
			k.FS.PinPage(slot)
			segs[i] = pipeSeg{
				data: k.FS.SlotBytes(r),
				slot: slot,
				off:  int64(slot)*fs.PageSize + int64(r.Off),
				owner: &segOwner{
					pieces:  1,
					lease:   func() { k.FS.LeasePage(slot) },
					release: func() { k.FS.UnpinPage(slot) },
				},
			}
		}
		k.WriteGrantedBytes.Add(total)
		pe.WriteSlotSegs(segs, func(n int, werr abi.Errno) {
			done(int64(n), werr)
		})
		return
	}
	if f, ok := d.file.(*fsFile); ok {
		f.WriteSlots(d, refs, func(n int, werr abi.Errno) {
			if werr == abi.OK {
				k.WriteGrantedBytes.Add(int64(n))
			}
			done(int64(n), werr)
		}, fallback)
		return
	}
	fallback()
}

// dispatchReadgRun answers a run of same-fd readg frames with a single
// vectored cache pass: one ReadRef for the union of the requests, its
// grant list split back across the frames in order. Any precondition
// the single-frame path would have enforced falls back to per-frame
// dispatch, so the batched path can only ever change how many cache
// passes and wakes a run costs — never its bytes.
func (k *Kernel) dispatchReadgRun(t *Task, run []pendingCall, done func(uint32, int64, abi.Errno)) {
	fallback := func() {
		for _, c := range run {
			c := c
			k.dispatchCall(t, c.trap, c.args, func(ret int64, err abi.Errno) {
				done(c.seq, ret, err)
			})
		}
	}
	if !(t.pool && t.ring != nil && !k.DisableZeroCopy) {
		fallback()
		return
	}
	arg := func(c pendingCall, i int) int64 {
		if i < len(c.args) {
			return c.args[i]
		}
		return 0
	}
	d, err := t.lookFd(int(arg(run[0], 0)))
	if err != abi.OK {
		fallback()
		return
	}
	// Pipes are excluded: a short grant on a pipe means "no more
	// buffered right now", and only per-frame dispatch can park the
	// remaining frames instead of answering them with a spurious EOF.
	if _, isFS := d.file.(*fsFile); !isFS {
		fallback()
		return
	}
	rf, ok := d.file.(refReader)
	if !ok {
		fallback()
		return
	}
	wants := make([]int, len(run))
	mgs := make([]int, len(run))
	var totalWant, maxGrants int
	for i, c := range run {
		bufLen, mg, want := int(arg(c, 2)), int(arg(c, 4)), int(arg(c, 5))
		if want <= 0 {
			want = bufLen
		}
		if bufLen < 0 || want <= 0 || mg <= 0 || mg > 4096 {
			fallback()
			return
		}
		wants[i] = want
		mgs[i] = mg
		totalWant += want
		maxGrants += mg
	}
	if maxGrants > 4096 {
		maxGrants = 4096
	}
	refs, ok := rf.ReadRef(d, totalWant, maxGrants)
	if !ok {
		fallback()
		return
	}
	k.BatchedGrantReads.Add(int64(len(run) - 1))

	// Split the union's grant list across the frames in order. A ref
	// straddling a frame boundary is carved in two, the tail piece
	// taking a fresh lease so grants and returns stay balanced. Frames
	// past the granted bytes answer as clean EOF (empty mapped reply);
	// a frame whose grant area fills early answers short, and the
	// stream stays intact because the next frame continues where the
	// short one stopped.
	ri := 0
	for i, c := range run {
		want := wants[i]
		var grants []abi.PageGrant
		var granted int64
		for want > 0 && ri < len(refs) && len(grants) < mgs[i] {
			r := refs[ri]
			take := r.Len
			if take > want {
				take = want
			}
			if t.leases == nil {
				t.leases = map[int]int{}
			}
			t.leases[r.Slot]++
			grants = append(grants, abi.PageGrant{
				Slot: uint32(r.Slot), Len: uint32(take),
				Off: r.Off, Gen: r.Gen,
			})
			granted += int64(take)
			want -= take
			if take == r.Len {
				ri++
			} else {
				// The remainder becomes a second live lease on the
				// same slot, granted to a later frame.
				refs[ri].Off += int64(take)
				refs[ri].Len -= take
				k.FS.LeasePage(r.Slot)
			}
		}
		k.LeaseGrants.Add(int64(len(grants)))
		k.GrantedBytes.Add(granted)
		buf := make([]byte, abi.GrantAreaSize(len(grants)))
		abi.PackGrantReply(buf, abi.GrantMapped, grants)
		t.heapWrite(arg(c, 3), buf)
		done(c.seq, granted, abi.OK)
	}
	// Every frame's area full with refs left over (possible only with
	// degenerate caller-chosen grant areas): return the stranded leases
	// and rewind the descriptor so no byte is granted to nobody.
	for ; ri < len(refs); ri++ {
		r := refs[ri]
		k.FS.UnleasePage(r.Slot)
		d.off -= int64(r.Len)
	}
}
