package core

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/snapshot"
)

// taskState tracks a process through its lifecycle. Browsix had to
// implement the zombie state so wait4 could reap children that exited
// before being waited on (§3.3).
type taskState int

const (
	taskRunning taskState = iota
	taskZombie
)

// Task is the kernel's per-process structure (§3.3): "each BROWSIX process
// has an associated task structure that lives in the kernel that contains
// its process ID, parent's process ID, Web Worker object, current working
// directory, and map of open file descriptors."
type Task struct {
	k *Kernel

	Pid       int
	ParentPid int
	worker    *browser.Worker
	state     taskState

	Path string // executable path
	Args []string
	Env  []string
	cwd  string

	files  map[int]*Desc
	status int // exit status (valid once zombie)

	children map[int]*Task
	waiters  []waitReq

	// sigActions: signal number -> action (default if absent).
	sigActions map[int]sigAction

	// Synchronous-syscall personality (§3.2): the process's heap and the
	// two offsets it registered — where return values go and which cell
	// to wake.
	heap    *browser.SAB
	retOff  int
	waitOff int

	// ring is the task's upgraded syscall transport (nil until the
	// process negotiates it with the "ring" registration call).
	ring *taskRing

	// pool is set once the process has mapped the kernel's page-cache
	// arena (the "pagepool" registration call); leases tracks its
	// outstanding page leases (pool slot -> grant count), so exit and
	// exec can reclaim what the image never returned.
	pool   bool
	leases map[int]int

	// wstaged marks the task's outstanding write-staging leases (slots
	// handed out by wgalloc and not yet unleased). They live in leases
	// too — exit reclaim is shared — but the separate set enforces the
	// per-task staging cap and lets unlease keep the count honest.
	wstaged map[int]bool

	// onExit callbacks registered by the kernel API (kernel.system).
	onExit []func(status int)

	startTime int64

	// Snapshot lifecycle (internal/snapshot). script holds the
	// executable's bytes on a first boot that was asked to capture
	// ("snapcap" pending); snapImage/snapTracker are set on clone boots:
	// the immutable image this task shares pages with and the per-page
	// COW/soft-dirty bitmap whose remaining pins exit reclaim returns.
	script      []byte
	snapImage   *snapshot.Image
	snapTracker *snapshot.Tracker
}

type sigAction int

const (
	sigDefault sigAction = iota
	sigCatch
	sigIgnore
)

type waitReq struct {
	pid int // -1 = any child
	cb  func(pid, status int, err abi.Errno)
}

// Cwd returns the task's current working directory.
func (t *Task) Cwd() string { return t.cwd }

// State strings for diagnostics and the terminal's ps.
func (t *Task) StateName() string {
	if t.state == taskZombie {
		return "Z"
	}
	return "R"
}

// Status returns the wait4-style exit status (valid once a zombie).
func (t *Task) Status() int { return t.status }

// Worker exposes the task's Web Worker (tests and diagnostics).
func (t *Task) Worker() *browser.Worker { return t.worker }

// HasHeap reports whether the task has registered a synchronous-syscall
// heap (diagnostics; a live checkpoint of a heap-less task dumps only
// its fd/env/cwd template).
func (t *Task) HasHeap() bool { return t.heap != nil }

// allocFd returns the lowest unused descriptor number, as Unix does.
func (t *Task) allocFd() int {
	for fd := 0; ; fd++ {
		if _, used := t.files[fd]; !used {
			return fd
		}
	}
}

// installFd places a descriptor entry at the lowest free slot.
func (t *Task) installFd(d *Desc) int {
	fd := t.allocFd()
	t.files[fd] = d
	return fd
}

// lookFd resolves a descriptor number.
func (t *Task) lookFd(fd int) (*Desc, abi.Errno) {
	d, ok := t.files[int(fd)]
	if !ok {
		return nil, abi.EBADF
	}
	return d, abi.OK
}

// closeFd removes and unreferences a descriptor.
func (t *Task) closeFd(fd int, cb func(abi.Errno)) {
	d, ok := t.files[fd]
	if !ok {
		cb(abi.EBADF)
		return
	}
	delete(t.files, fd)
	d.Unref(cb)
}

// Fds lists open descriptor numbers in order (diagnostics).
func (t *Task) Fds() []int {
	out := make([]int, 0, len(t.files))
	for fd := range t.files {
		out = append(out, fd)
	}
	sort.Ints(out)
	return out
}

// FdPath returns the diagnostic path of an open descriptor.
func (t *Task) FdPath(fd int) string {
	if d, ok := t.files[fd]; ok {
		return d.path
	}
	return ""
}
