// Package core implements the Browsix kernel (§3 of the paper): the
// component that lives in the main JavaScript context alongside the web
// application and mediates between processes (Web Workers) and the Unix
// subsystems — the shared file system, pipes, sockets, task structures and
// signals.
//
// Because it runs on the browser's main thread, the kernel can never
// block: every operation is continuation-passing style. Processes reach it
// two ways, mirroring §3.2:
//
//   - asynchronous system calls: a postMessage carrying {id, name, args},
//     answered by a postMessage carrying the results (all arguments
//     structured-cloned — no shared memory);
//   - synchronous system calls: the process registers its heap (a
//     SharedArrayBuffer) once, then sends small integer arguments;
//     results and bulk data are written directly into the process's heap
//     and the process is woken via Atomics.notify.
package core

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

// File is an open kernel object: a regular file, directory, pipe end, or
// socket. All I/O is continuation-passing (the kernel cannot block).
// Sequential reads/writes go through the owning descriptor so dup'd
// descriptors share an offset, as on Unix.
type File interface {
	// Read reads up to n bytes at the descriptor's offset, advancing it.
	Read(d *Desc, n int, cb func([]byte, abi.Errno))
	// Write writes data at the descriptor's offset, advancing it.
	Write(d *Desc, data []byte, cb func(int, abi.Errno))
	// Pread/Pwrite are positional and do not move the offset.
	Pread(off int64, n int, cb func([]byte, abi.Errno))
	Pwrite(off int64, data []byte, cb func(int, abi.Errno))
	// Seek repositions the descriptor offset.
	Seek(d *Desc, off int64, whence int, cb func(int64, abi.Errno))
	// Stat describes the object.
	Stat(cb func(abi.Stat, abi.Errno))
	// Getdents streams directory entries if this is a directory: each
	// call returns the next chunk (at most abi.DirentChunk entries) from
	// the descriptor's cursor; an empty result marks the end. Large
	// directories are never materialized into one reply.
	Getdents(d *Desc, cb func([]abi.Dirent, abi.Errno))
	// Truncate resizes if this is a regular file.
	Truncate(size int64, cb func(abi.Errno))
	// Close releases the object (called once, when the last descriptor
	// referencing it goes away).
	Close(cb func(abi.Errno))
}

// Desc is a file descriptor table entry. Child processes inherit
// descriptor entries by reference (refs counts the referencing tables),
// so inherited descriptors share their offset — standard Unix semantics,
// and the reference counting the paper describes in §3.6.
type Desc struct {
	file  File
	off   int64
	flags int
	refs  int
	path  string // diagnostic: path for fs files, "pipe:[n]" etc.
}

// NewDesc wraps a File in a descriptor entry with one reference.
func NewDesc(f File, flags int, path string) *Desc {
	return &Desc{file: f, flags: flags, refs: 1, path: path}
}

// File returns the underlying kernel object.
func (d *Desc) File() File { return d.file }

// Path returns the descriptor's diagnostic path.
func (d *Desc) Path() string { return d.path }

// Ref adds a reference (descriptor inherited or dup'd).
func (d *Desc) Ref() { d.refs++ }

// Unref drops a reference, closing the file when it reaches zero.
func (d *Desc) Unref(cb func(abi.Errno)) {
	d.refs--
	if d.refs > 0 {
		cb(abi.OK)
		return
	}
	d.file.Close(cb)
}

// ---------------------------------------------------------------------------
// Regular files (backed by the shared BrowserFS instance, §3.6: "BROWSIX
// implements system calls that operate on paths as method calls to the
// kernel's BrowserFS instance").
// ---------------------------------------------------------------------------

type fsFile struct {
	h      fs.FileHandle
	append bool
}

// newFSFile wraps a BrowserFS handle.
func newFSFile(h fs.FileHandle, flags int) *fsFile {
	return &fsFile{h: h, append: flags&abi.O_APPEND != 0}
}

func (f *fsFile) Read(d *Desc, n int, cb func([]byte, abi.Errno)) {
	f.h.Pread(d.off, n, func(b []byte, err abi.Errno) {
		if err == abi.OK {
			d.off += int64(len(b))
		}
		cb(b, err)
	})
}

// writePos resolves the descriptor's write offset — O_APPEND seeks to
// EOF first — then runs the write; the scalar and vectored paths share
// this positioning protocol.
func (f *fsFile) writePos(d *Desc, write func(off int64), fail func(abi.Errno)) {
	if !f.append {
		write(d.off)
		return
	}
	f.h.Stat(func(st abi.Stat, err abi.Errno) {
		if err != abi.OK {
			fail(err)
			return
		}
		d.off = st.Size
		write(d.off)
	})
}

func (f *fsFile) Write(d *Desc, data []byte, cb func(int, abi.Errno)) {
	f.writePos(d, func(off int64) {
		f.h.Pwrite(off, data, func(n int, err abi.Errno) {
			if err == abi.OK {
				d.off += int64(n)
			}
			cb(n, err)
		})
	}, func(err abi.Errno) { cb(0, err) })
}

// WriteSlots is the zero-copy write entry: adopt staged arena slots as
// dirty state at the descriptor's write position. When the handle cannot
// adopt (write-back off, write-through backend) fallback runs instead
// and no completion is delivered — the caller re-submits through the
// copy path. Positioning errors (an O_APPEND stat failure) complete
// through cb like any write.
func (f *fsFile) WriteSlots(d *Desc, refs []fs.SlotRef, cb func(int, abi.Errno), fallback func()) {
	sw, ok := f.h.(fs.SlotWriter)
	if !ok {
		fallback()
		return
	}
	f.writePos(d, func(off int64) {
		n, ok := sw.PwriteSlots(off, refs)
		if !ok {
			fallback()
			return
		}
		d.off += int64(n)
		cb(n, abi.OK)
	}, func(err abi.Errno) { cb(0, err) })
}

func (f *fsFile) Pread(off int64, n int, cb func([]byte, abi.Errno)) { f.h.Pread(off, n, cb) }
func (f *fsFile) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	f.h.Pwrite(off, data, cb)
}

// ReadRef implements refReader: answer the read with pinned page-cache
// references when the storage layer has every byte resident — the
// zero-copy path. The descriptor offset advances over the granted bytes
// exactly as Read would; a refusal leaves it untouched so the caller's
// copy-path fallback reads the same range.
func (f *fsFile) ReadRef(d *Desc, n, max int) ([]fs.PageRef, bool) {
	rr, ok := f.h.(fs.RefReader)
	if !ok {
		return nil, false
	}
	refs, ok := rr.PreadRef(d.off, n, max)
	if !ok {
		return nil, false
	}
	for _, r := range refs {
		d.off += int64(r.Len)
	}
	return refs, true
}

// Readv implements vectoredReader: the gather happens in the storage
// layer (page cache or backend) and comes back as segments, which the
// kernel scatters straight into the process heap — no coalescing buffer.
func (f *fsFile) Readv(d *Desc, total int, cb func([][]byte, abi.Errno)) {
	f.h.Preadv(d.off, []int{total}, func(segs [][]byte, err abi.Errno) {
		if err == abi.OK {
			for _, s := range segs {
				d.off += int64(len(s))
			}
		}
		cb(segs, err)
	})
}

// Writev implements vectoredWriter: the iovec segments the transport
// carried into the kernel reach the file handle in one vectored call.
func (f *fsFile) Writev(d *Desc, bufs [][]byte, cb func(int, abi.Errno)) {
	f.writePos(d, func(off int64) {
		f.h.Pwritev(off, bufs, func(n int, err abi.Errno) {
			if err == abi.OK {
				d.off += int64(n)
			}
			cb(n, err)
		})
	}, func(err abi.Errno) { cb(0, err) })
}

func (f *fsFile) Seek(d *Desc, off int64, whence int, cb func(int64, abi.Errno)) {
	switch whence {
	case abi.SEEK_SET:
		if off < 0 {
			cb(0, abi.EINVAL)
			return
		}
		d.off = off
		cb(d.off, abi.OK)
	case abi.SEEK_CUR:
		if d.off+off < 0 {
			cb(0, abi.EINVAL)
			return
		}
		d.off += off
		cb(d.off, abi.OK)
	case abi.SEEK_END:
		f.h.Stat(func(st abi.Stat, err abi.Errno) {
			if err != abi.OK {
				cb(0, err)
				return
			}
			if st.Size+off < 0 {
				cb(0, abi.EINVAL)
				return
			}
			d.off = st.Size + off
			cb(d.off, abi.OK)
		})
	default:
		cb(0, abi.EINVAL)
	}
}

func (f *fsFile) Stat(cb func(abi.Stat, abi.Errno))                  { f.h.Stat(cb) }
func (f *fsFile) Getdents(d *Desc, cb func([]abi.Dirent, abi.Errno)) { cb(nil, abi.ENOTDIR) }
func (f *fsFile) Truncate(size int64, cb func(abi.Errno))            { f.h.Truncate(size, cb) }
func (f *fsFile) Close(cb func(abi.Errno))                           { f.h.Close(cb) }

// Sync implements the optional fsync extension: the write-back barrier —
// every buffered write for this file is on the backend before cb fires.
func (f *fsFile) Sync(cb func(abi.Errno)) {
	if s, ok := f.h.(fs.Syncer); ok {
		s.Sync(cb)
		return
	}
	cb(abi.OK)
}

// syncerFile is the optional File extension behind the fsync syscall.
type syncerFile interface {
	Sync(cb func(abi.Errno))
}

// syncFile runs an fsync barrier on any kernel object: files flush their
// write-back state; objects with no buffered state (pipes, sockets,
// directories) succeed immediately, as fsync on them does on Unix.
func syncFile(f File, cb func(abi.Errno)) {
	if s, ok := f.(syncerFile); ok {
		s.Sync(cb)
		return
	}
	cb(abi.OK)
}

// ---------------------------------------------------------------------------
// Directories. Opening a directory yields a dirFile whose Getdents lists it
// via the kernel's BrowserFS instance.
// ---------------------------------------------------------------------------

type dirFile struct {
	fs   *fs.FileSystem
	path string
}

func (f *dirFile) Read(d *Desc, n int, cb func([]byte, abi.Errno)) { cb(nil, abi.EISDIR) }
func (f *dirFile) Write(d *Desc, b []byte, cb func(int, abi.Errno)) {
	cb(0, abi.EISDIR)
}
func (f *dirFile) Pread(off int64, n int, cb func([]byte, abi.Errno)) { cb(nil, abi.EISDIR) }
func (f *dirFile) Pwrite(off int64, b []byte, cb func(int, abi.Errno)) {
	cb(0, abi.EISDIR)
}
func (f *dirFile) Truncate(s int64, cb func(abi.Errno)) { cb(abi.EISDIR) }

// Seek supports rewinddir: SEEK_SET repositions the getdents cursor.
func (f *dirFile) Seek(d *Desc, off int64, w int, cb func(int64, abi.Errno)) {
	if w == abi.SEEK_SET && off >= 0 {
		d.off = off
	}
	cb(d.off, abi.OK)
}
func (f *dirFile) Stat(cb func(abi.Stat, abi.Errno)) { f.fs.Stat(f.path, cb) }

// Getdents streams the listing in DirentChunk-sized pieces using the
// descriptor offset as the entry cursor — a TeX Live directory of 10⁵
// names costs 10⁵/DirentChunk replies, not one reply of 10⁵ records.
// The listing itself comes from the VFS readdir cache, so continuation
// calls against an unchanged directory never re-hit a backend. Entries
// are index-addressed against the current (sorted) listing; mutations
// between chunks may skip or repeat names, the POSIX-sanctioned
// getdents weak ordering.
func (f *dirFile) Getdents(d *Desc, cb func([]abi.Dirent, abi.Errno)) {
	f.fs.Readdir(f.path, func(ents []abi.Dirent, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		off := int(d.off)
		if off >= len(ents) {
			cb(nil, abi.OK)
			return
		}
		end := off + abi.DirentChunk
		if end > len(ents) {
			end = len(ents)
		}
		d.off = int64(end)
		cb(ents[off:end], abi.OK)
	})
}
func (f *dirFile) Close(cb func(abi.Errno)) { cb(abi.OK) }
