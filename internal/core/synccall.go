package core

import (
	"strings"

	"repro/internal/abi"
	"repro/internal/fs"
)

// Synchronous system-call transport (§3.2). Arguments are "just integers
// and integer offsets (representing pointers) into the shared memory
// array". String arguments arrive as (ptr, len) pairs; output buffers as
// (ptr, len). For calls like pread, "data is copied directly from the
// filesystem, pipe or socket into the process's heap, avoiding a
// potentially large allocation and extra copy".
//
// Completion protocol: the kernel writes ret (int64) at the task's
// registered retOff and errno (int32) at retOff+8, stores 1 into the wake
// cell, and Atomics.notify's it. The process zeroes the wake cell before
// each call and Atomics.wait's on it.

// heapStr reads a (ptr,len) string argument out of the task's heap.
func (t *Task) heapStr(ptr, n int64) string {
	k := t.k
	k.Sys.Sim.Charge(int64(float64(n) * k.CPU.SyncByteNs))
	b := t.heap.Bytes()
	return string(b[ptr : ptr+n])
}

// heapBytes copies a (ptr,len) buffer out of the task's heap.
func (t *Task) heapBytes(ptr, n int64) []byte {
	k := t.k
	k.Sys.Sim.Charge(int64(float64(n) * k.CPU.SyncByteNs))
	out := make([]byte, n)
	copy(out, t.heap.Bytes()[ptr:ptr+n])
	return out
}

// heapWrite copies data into the task's heap at ptr.
func (t *Task) heapWrite(ptr int64, data []byte) {
	k := t.k
	k.Sys.Sim.Charge(int64(float64(len(data)) * k.CPU.SyncByteNs))
	copy(t.heap.Bytes()[ptr:], data)
	t.heap.MarkDirty(int(ptr), len(data))
}

// syncReply completes a synchronous call: results into the heap, then
// wake the blocked worker thread.
func (k *Kernel) syncReply(t *Task, ret int64, err abi.Errno) {
	if t.heap == nil || t.state == taskZombie {
		return
	}
	b := t.heap.Bytes()
	le := leAt(b, t.retOff)
	le.putU64(uint64(ret))
	leAt(b, t.retOff+8).putU32(uint32(int32(err)))
	t.heap.Store32(t.waitOff, 1)
	k.Sys.FutexNotify(t.heap, t.waitOff, 1)
}

// little-endian cursor helpers (avoiding binary.Write allocations).
type leCursor struct {
	b   []byte
	off int
}

func leAt(b []byte, off int) leCursor { return leCursor{b, off} }

func (c leCursor) putU32(v uint32) {
	c.b[c.off] = byte(v)
	c.b[c.off+1] = byte(v >> 8)
	c.b[c.off+2] = byte(v >> 16)
	c.b[c.off+3] = byte(v >> 24)
}

func (c leCursor) putU64(v uint64) {
	c.putU32(uint32(v))
	leCursor{c.b, c.off + 4}.putU32(uint32(v >> 32))
}

// dispatchSync decodes and executes a synchronous system call, completing
// it through the wake-cell reply protocol. It routes through the same
// batch entry point as the ring transport — with batch size 1 — so the
// scalar path can never diverge from a drained doorbell's behaviour.
func (k *Kernel) dispatchSync(t *Task, trap int, a []int64) {
	if t.heap == nil {
		return // no personality registered; nothing to wake
	}
	k.dispatchBatch(t, []pendingCall{{trap: trap, args: a}}, func(_ uint32, ret int64, err abi.Errno) {
		k.syncReply(t, ret, err)
	})
}

// dispatchCall decodes and executes a heap-addressed system call. It is
// transport-independent: the scalar sync path and the ring transport both
// feed it, differing only in how done delivers the completion (wake-cell
// store vs reply-ring frame).
func (k *Kernel) dispatchCall(t *Task, trap int, a []int64, done func(int64, abi.Errno)) {
	arg := func(i int) int64 {
		if i < len(a) {
			return a[i]
		}
		return 0
	}

	switch trap {
	case abi.SYS_open:
		k.doOpen(t, t.heapStr(arg(0), arg(1)), int(arg(2)), uint32(arg(3)), func(fd int, err abi.Errno) {
			done(int64(fd), err)
		})
	case abi.SYS_close:
		t.closeFd(int(arg(0)), func(err abi.Errno) { done(0, err) })
	case abi.SYS_read:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		ptr := arg(1)
		d.file.Read(d, int(arg(2)), func(data []byte, err abi.Errno) {
			if err == abi.OK {
				t.heapWrite(ptr, data)
				k.ReadCopiedBytes.Add(int64(len(data)))
			}
			done(int64(len(data)), err)
		})
	case abi.SYS_readg:
		// Read-with-grant: the zero-copy read path's single kernel entry.
		// A warm page-cache hit on the ring transport answers with pinned
		// page leases; everything else — cold pages, pipes, the scalar
		// transport, DisableZeroCopy — falls through to the copy path
		// below, producing byte-identical results with one payload copy.
		//
		// Args: fd, bufPtr, bufLen (the caller's staging buffer — the
		// copy fallback's cap), grantPtr, maxGrants, wantN (the full
		// request). wantN may far exceed bufLen: grants are not bounded
		// by the caller's staging region, so a warm multi-megabyte read
		// is one crossing where the copy path must loop — the structural
		// win of the mapping. A cold oversized read degrades to a short
		// (bufLen) result, which POSIX read permits.
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		bufPtr, bufLen, grantPtr, maxGrants := arg(1), int(arg(2)), arg(3), int(arg(4))
		want := int(arg(5))
		if want <= 0 {
			want = bufLen
		}
		if bufLen < 0 || want < 0 || maxGrants < 0 || maxGrants > 4096 {
			done(-1, abi.EINVAL)
			return
		}
		resolve := func() {
			if t.pool && t.ring != nil && !k.DisableZeroCopy {
				if rf, ok := d.file.(refReader); ok {
					if refs, ok := rf.ReadRef(d, want, maxGrants); ok {
						k.LeaseGrants.Add(int64(len(refs)))
						grants := make([]abi.PageGrant, len(refs))
						var granted int64
						for i, r := range refs {
							if t.leases == nil {
								t.leases = map[int]int{}
							}
							t.leases[r.Slot]++
							grants[i] = abi.PageGrant{
								Slot: uint32(r.Slot), Len: uint32(r.Len),
								Off: r.Off, Gen: r.Gen,
							}
							granted += int64(r.Len)
						}
						k.GrantedBytes.Add(granted)
						buf := make([]byte, abi.GrantAreaSize(len(grants)))
						abi.PackGrantReply(buf, abi.GrantMapped, grants)
						t.heapWrite(grantPtr, buf)
						done(granted, abi.OK)
						return
					}
				}
			}
			readGather(d, bufLen, func(segs [][]byte, rerr abi.Errno) {
				if rerr != abi.OK {
					done(-1, rerr)
					return
				}
				var hdr [abi.GrantHdrSize]byte
				abi.PackGrantReply(hdr[:], abi.GrantCopied, nil)
				t.heapWrite(grantPtr, hdr[:])
				var total int64
				for _, s := range segs {
					t.heapWrite(bufPtr+total, s)
					total += int64(len(s))
				}
				k.ReadCopiedBytes.Add(total)
				done(total, abi.OK)
			})
		}
		// A readg against an empty pipe parks a grant-capable notify
		// instead of resolving now: ReadRef refuses an empty pipe, and
		// falling straight to readGather would park a copying splice —
		// every byte of a lockstep pipeline (the reader usually blocks
		// first) would then cross by copy. Parking the *resolution* keeps
		// the grant attempt first once data arrives.
		if pe, ok := d.file.(*pipeEnd); ok && pe.reader {
			pe.p.readNotify(resolve)
			return
		}
		resolve()
	case abi.SYS_unlease:
		// Lease reclaim: return page leases taken by earlier readg
		// grants. ret counts the leases actually returned; unknown slots
		// are ignored (a lease can also have been reclaimed by exit).
		ptr, cnt := arg(0), arg(1)
		if cnt < 0 || cnt > 4096 {
			done(-1, abi.EINVAL)
			return
		}
		slots := abi.UnpackSlots(t.heapBytes(ptr, cnt*4), int(cnt))
		var freed int64
		for _, s := range slots {
			slot := int(s)
			if t.leases[slot] == 0 {
				continue
			}
			t.leases[slot]--
			if t.leases[slot] == 0 {
				delete(t.leases, slot)
			}
			// A write-staging lease retires on its first return: the fs
			// side releases staging ownership then too, so later writeg
			// references to the slot must already be refused.
			delete(t.wstaged, slot)
			k.FS.UnleasePage(slot)
			k.LeaseReturns.Add(1)
			freed++
		}
		done(freed, abi.OK)
	case abi.SYS_write:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		// heapBytes returns a fresh copy, so ownership can transfer to
		// the file (zero-copy into pipes).
		data := t.heapBytes(arg(1), arg(2))
		k.WriteCopiedBytes.Add(int64(len(data)))
		writeMoved(d, data, func(n int, err abi.Errno) {
			done(int64(n), err)
		})
	case abi.SYS_wgalloc:
		// Write-grant allocation: lease empty staging slots for the
		// zero-copy write path. Args: count, grantPtr.
		k.doWgalloc(t, int(arg(0)), arg(1), done)
	case abi.SYS_writeg:
		// Write-by-reference: payload already staged in leased slots;
		// only the 12-byte references cross the heap. Args: fd, refPtr,
		// refCnt.
		cnt := arg(2)
		if cnt <= 0 || cnt > 1024 {
			done(-1, abi.EINVAL)
			return
		}
		wrefs := abi.UnpackWriteRefs(t.heapBytes(arg(1), cnt*abi.WriteRefSize), int(cnt))
		refs := make([]fs.SlotRef, len(wrefs))
		for i, r := range wrefs {
			refs[i] = fs.SlotRef{Slot: int(r.Slot), Off: int(r.Off), Len: int(r.Len)}
		}
		k.doWriteg(t, int(arg(0)), refs, done)
	case abi.SYS_readv:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		cnt, ivp := arg(2), arg(1)
		if cnt <= 0 || cnt > 1024 {
			done(-1, abi.EINVAL)
			return
		}
		// Overflow-safe bounds test: cnt is capped, so the subtraction
		// can't wrap the way ivp+cnt*IovecSize could.
		if ivp < 0 || ivp > int64(t.heap.Len())-cnt*abi.IovecSize {
			done(-1, abi.EFAULT)
			return
		}
		k.doReadv(t, d, abi.UnpackIovecs(t.heapBytes(ivp, cnt*abi.IovecSize), int(cnt)), done)
	case abi.SYS_writev:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		cnt, ivp := arg(2), arg(1)
		if cnt <= 0 || cnt > 1024 {
			done(-1, abi.EINVAL)
			return
		}
		if ivp < 0 || ivp > int64(t.heap.Len())-cnt*abi.IovecSize {
			done(-1, abi.EFAULT)
			return
		}
		k.doWritev(t, d, abi.UnpackIovecs(t.heapBytes(ivp, cnt*abi.IovecSize), int(cnt)), done)
	case abi.SYS_pread:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		ptr := arg(1)
		d.file.Pread(arg(3), int(arg(2)), func(data []byte, err abi.Errno) {
			if err == abi.OK {
				t.heapWrite(ptr, data)
				k.ReadCopiedBytes.Add(int64(len(data)))
			}
			done(int64(len(data)), err)
		})
	case abi.SYS_pwrite:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		pdata := t.heapBytes(arg(1), arg(2))
		k.WriteCopiedBytes.Add(int64(len(pdata)))
		d.file.Pwrite(arg(3), pdata, func(n int, err abi.Errno) {
			done(int64(n), err)
		})
	case abi.SYS_llseek:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		d.file.Seek(d, arg(1), int(arg(2)), func(off int64, err abi.Errno) { done(off, err) })
	case abi.SYS_ftruncate:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		d.file.Truncate(arg(1), func(err abi.Errno) { done(0, err) })
	case abi.SYS_fsync:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		syncFile(d.file, func(err abi.Errno) { done(0, err) })
	case abi.SYS_stat, abi.SYS_lstat:
		statPtr := arg(2)
		cb := func(st abi.Stat, err abi.Errno) {
			if err == abi.OK {
				var buf [abi.StatSize]byte
				abi.PackStat(buf[:], st)
				t.heapWrite(statPtr, buf[:])
			}
			done(0, err)
		}
		p := t.abs(t.heapStr(arg(0), arg(1)))
		if trap == abi.SYS_stat {
			k.FS.Stat(p, cb)
		} else {
			k.FS.Lstat(p, cb)
		}
	case abi.SYS_fstat:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		statPtr := arg(1)
		d.file.Stat(func(st abi.Stat, err abi.Errno) {
			if err == abi.OK {
				var buf [abi.StatSize]byte
				abi.PackStat(buf[:], st)
				t.heapWrite(statPtr, buf[:])
			}
			done(0, err)
		})
	case abi.SYS_access:
		k.FS.Access(t.abs(t.heapStr(arg(0), arg(1))), int(arg(2)), func(err abi.Errno) { done(0, err) })
	case abi.SYS_readlink:
		bufPtr, bufLen := arg(2), arg(3)
		if bufLen < 0 {
			done(-1, abi.EINVAL)
			return
		}
		k.FS.Readlink(t.abs(t.heapStr(arg(0), arg(1))), func(target string, err abi.Errno) {
			if err != abi.OK {
				done(-1, err)
				return
			}
			b := []byte(target)
			if int64(len(b)) > bufLen {
				b = b[:bufLen]
			}
			t.heapWrite(bufPtr, b)
			done(int64(len(b)), abi.OK)
		})
	case abi.SYS_utimes:
		k.FS.Utimes(t.abs(t.heapStr(arg(0), arg(1))), arg(2), arg(3), func(err abi.Errno) { done(0, err) })
	case abi.SYS_unlink:
		k.FS.Unlink(t.abs(t.heapStr(arg(0), arg(1))), func(err abi.Errno) { done(0, err) })
	case abi.SYS_mkdir:
		k.FS.Mkdir(t.abs(t.heapStr(arg(0), arg(1))), uint32(arg(2)), func(err abi.Errno) { done(0, err) })
	case abi.SYS_rmdir:
		k.FS.Rmdir(t.abs(t.heapStr(arg(0), arg(1))), func(err abi.Errno) { done(0, err) })
	case abi.SYS_symlink:
		target := t.heapStr(arg(0), arg(1))
		k.FS.Symlink(target, t.abs(t.heapStr(arg(2), arg(3))), func(err abi.Errno) { done(0, err) })
	case abi.SYS_rename:
		k.FS.Rename(t.abs(t.heapStr(arg(0), arg(1))), t.abs(t.heapStr(arg(2), arg(3))), func(err abi.Errno) { done(0, err) })
	case abi.SYS_getdents:
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		bufPtr, bufLen := arg(1), arg(2)
		if bufLen < 0 {
			done(-1, abi.EINVAL)
			return
		}
		d.file.Getdents(d, func(ents []abi.Dirent, err abi.Errno) {
			if err != abi.OK {
				done(-1, err)
				return
			}
			buf := make([]byte, bufLen)
			n, consumed := abi.PackDirents(buf, ents)
			if consumed == 0 && len(ents) > 0 {
				// Buffer too small for even one record: an empty result
				// would read as end-of-directory (silent truncation).
				// Rewind the cursor and fail, as Linux getdents does.
				d.off -= int64(len(ents))
				done(-1, abi.EINVAL)
				return
			}
			if consumed < len(ents) {
				// The guest's buffer was smaller than the chunk: hand the
				// unpacked tail back to the directory cursor so the next
				// getdents continues there.
				d.off -= int64(len(ents) - consumed)
			}
			t.heapWrite(bufPtr, buf[:n])
			done(int64(n), abi.OK)
		})
	case abi.SYS_dup2:
		done(arg(1), k.doDup2(t, int(arg(0)), int(arg(1))))
	case abi.SYS_pipe2:
		rfd, wfd := k.doPipe2(t)
		fdsPtr := arg(0)
		var buf [8]byte
		leAt(buf[:], 0).putU32(uint32(rfd))
		leAt(buf[:], 4).putU32(uint32(wfd))
		t.heapWrite(fdsPtr, buf[:])
		done(0, abi.OK)
	case abi.SYS_spawn:
		path := t.heapStr(arg(0), arg(1))
		argv := splitNul(t.heapStr(arg(2), arg(3)))
		env := splitNul(t.heapStr(arg(4), arg(5)))
		var files []int
		if n := arg(7); n > 0 {
			raw := t.heapBytes(arg(6), n*4)
			for i := int64(0); i < n; i++ {
				files = append(files, int(int32(uint32(raw[i*4])|uint32(raw[i*4+1])<<8|uint32(raw[i*4+2])<<16|uint32(raw[i*4+3])<<24)))
			}
		}
		k.doSpawn(t, path, argv, env, files, func(pid int, err abi.Errno) {
			done(int64(pid), err)
		})
	case abi.SYS_fork:
		// "fork is not compatible with synchronous system calls, as
		// there is no way to re-wind or jump to a particular call stack
		// in the child Web Worker" (§3.2).
		done(-1, abi.ENOSYS)
	case abi.SYS_exec:
		path := t.heapStr(arg(0), arg(1))
		argv := splitNul(t.heapStr(arg(2), arg(3)))
		env := splitNul(t.heapStr(arg(4), arg(5)))
		k.doExec(t, path, argv, env, func(err abi.Errno) { done(-1, err) })
	case abi.SYS_wait4:
		statusPtr := arg(1)
		k.doWait4(t, int(arg(0)), int(arg(2)), func(pid, status int, err abi.Errno) {
			if err == abi.OK && statusPtr != 0 {
				var buf [4]byte
				leAt(buf[:], 0).putU32(uint32(int32(status)))
				t.heapWrite(statusPtr, buf[:])
			}
			done(int64(pid), err)
		})
	case abi.SYS_exit:
		k.doExit(t, int(arg(0)))
	case abi.SYS_kill:
		done(0, k.doKill(int(arg(0)), int(arg(1))))
	case abi.SYS_signal:
		done(0, k.doSignalAction(t, int(arg(0)), int(arg(1))))
	case abi.SYS_getpid:
		done(int64(t.Pid), abi.OK)
	case abi.SYS_getppid:
		done(int64(t.ParentPid), abi.OK)
	case abi.SYS_getcwd:
		b := []byte(t.cwd)
		if int64(len(b)) > arg(1) {
			done(-1, abi.ERANGE)
			return
		}
		t.heapWrite(arg(0), b)
		done(int64(len(b)), abi.OK)
	case abi.SYS_chdir:
		k.doChdir(t, t.heapStr(arg(0), arg(1)), func(err abi.Errno) { done(0, err) })
	case abi.SYS_socket:
		done(int64(t.installFd(NewDesc(k.NewSocket(), abi.O_RDWR, "socket:"))), abi.OK)
	case abi.SYS_bind:
		s, err := t.sockFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		done(0, k.BindSocket(s, int(arg(1))))
	case abi.SYS_listen:
		s, err := t.sockFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		done(0, k.ListenSocket(s, int(arg(1))))
	case abi.SYS_accept:
		// accept4-shaped: arg(1) carries flags. O_NONBLOCK there (or on
		// the listener descriptor) makes the accept non-blocking, and the
		// flag is inherited by the new connection's descriptor — so an
		// event loop drains a whole backlog without a blocking edge.
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		s, ok := d.file.(*Socket)
		if !ok {
			done(-1, abi.ENOTSOCK)
			return
		}
		connFlags := abi.O_RDWR | int(arg(1))&abi.O_NONBLOCK
		nonblock := d.flags&abi.O_NONBLOCK != 0 || int(arg(1))&abi.O_NONBLOCK != 0
		k.AcceptSocket(s, nonblock, func(conn *Socket, err abi.Errno) {
			if err != abi.OK {
				done(-1, err)
				return
			}
			done(int64(t.installFd(NewDesc(conn, connFlags, "socket:conn"))), abi.OK)
		})
	case abi.SYS_connect:
		s, err := t.sockFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		k.ConnectSocket(s, int(arg(1)), func(err abi.Errno) { done(0, err) })
	case abi.SYS_getsockname:
		s, err := t.sockFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		done(int64(s.port), abi.OK)
	case abi.SYS_poll:
		// Args: pollfd array ptr, nfds, timeout ns (-1 block, 0 probe).
		// The kernel rewrites the staged array's revents in place and
		// returns the ready count.
		ptr, nfds, timeout := arg(0), arg(1), arg(2)
		if nfds < 0 || nfds > 4096 ||
			ptr < 0 || ptr > int64(t.heap.Len())-nfds*abi.PollfdSize {
			done(-1, abi.EINVAL)
			return
		}
		fds := abi.UnpackPollfds(t.heapBytes(ptr, nfds*abi.PollfdSize), int(nfds))
		k.doPoll(t, fds, timeout, func(n int, err abi.Errno) {
			if err == abi.OK {
				buf := make([]byte, len(fds)*abi.PollfdSize)
				abi.PackPollfds(buf, fds)
				t.heapWrite(ptr, buf)
			}
			done(int64(n), err)
		})
	case abi.SYS_setfl:
		// fcntl F_SETFL subset: only O_NONBLOCK is honored.
		d, err := t.lookFd(int(arg(0)))
		if err != abi.OK {
			done(-1, err)
			return
		}
		d.flags = d.flags&^abi.O_NONBLOCK | int(arg(1))&abi.O_NONBLOCK
		done(0, abi.OK)
	default:
		done(-1, abi.ENOSYS)
	}
}

// splitNul splits a NUL-separated packed string list.
func splitNul(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(s, "\x00"), "\x00")
}
