package core

import (
	"fmt"

	"repro/internal/abi"
)

// PipeCap is the pipe buffer capacity, matching the traditional 64 KiB.
const PipeCap = 64 * 1024

// Pipe implements §3.4: an in-memory buffer with a read-side wait queue
// (readers with no data get their continuation enqueued, invoked when data
// is written) and write-side backpressure (writers into a full buffer wait
// until the pipe is drained) — the discipline §6 laments plain postMessage
// lacks.
type Pipe struct {
	id          int
	buf         []byte
	readWaiters []pipeRead
	writeWaiter *pipeWrite
	readClosed  bool
	writeClosed bool

	// onWriterBlocked lets the kernel observe backpressure in tests.
	onReadable func()
}

type pipeRead struct {
	n  int
	cb func([]byte, abi.Errno)
}

type pipeWrite struct {
	data []byte
	done int
	cb   func(int, abi.Errno)
}

var pipeSeq int

// NewPipe creates an empty pipe.
func NewPipe() *Pipe {
	pipeSeq++
	return &Pipe{id: pipeSeq}
}

// read delivers up to n bytes, or queues the continuation when the pipe is
// empty. At EOF (writer closed, buffer drained) it delivers an empty slice.
func (p *Pipe) read(n int, cb func([]byte, abi.Errno)) {
	if len(p.buf) == 0 {
		if p.writeClosed {
			cb(nil, abi.OK) // EOF
			return
		}
		p.readWaiters = append(p.readWaiters, pipeRead{n: n, cb: cb})
		return
	}
	if n > len(p.buf) {
		n = len(p.buf)
	}
	out := make([]byte, n)
	copy(out, p.buf)
	p.buf = p.buf[n:]
	p.pumpWriter()
	cb(out, abi.OK)
}

// write appends data, blocking (queuing the continuation) when the buffer
// is full. Writes complete only when every byte is buffered, so pipeline
// stages see classic blocking-write semantics.
func (p *Pipe) write(data []byte, cb func(int, abi.Errno)) {
	if p.readClosed {
		cb(0, abi.EPIPE)
		return
	}
	if p.writeWaiter != nil {
		// A single writer at a time keeps semantics simple; Browsix
		// pipelines have one writer per pipe end.
		cb(0, abi.EAGAIN)
		return
	}
	w := &pipeWrite{data: data, cb: cb}
	p.writeWaiter = w
	p.pumpWriter()
	p.pumpReaders()
}

// pumpWriter moves pending write bytes into the buffer as space allows.
func (p *Pipe) pumpWriter() {
	w := p.writeWaiter
	if w == nil {
		return
	}
	if p.readClosed {
		p.writeWaiter = nil
		w.cb(w.done, abi.EPIPE)
		return
	}
	space := PipeCap - len(p.buf)
	if space > 0 && w.done < len(w.data) {
		take := len(w.data) - w.done
		if take > space {
			take = space
		}
		p.buf = append(p.buf, w.data[w.done:w.done+take]...)
		w.done += take
	}
	if w.done == len(w.data) {
		p.writeWaiter = nil
		w.cb(w.done, abi.OK)
	}
	p.pumpReaders()
}

// pumpReaders satisfies queued readers from the buffer.
func (p *Pipe) pumpReaders() {
	for len(p.readWaiters) > 0 {
		if len(p.buf) == 0 {
			if p.writeClosed {
				// Drain EOF to all waiters.
				ws := p.readWaiters
				p.readWaiters = nil
				for _, r := range ws {
					r.cb(nil, abi.OK)
				}
			}
			return
		}
		r := p.readWaiters[0]
		p.readWaiters = p.readWaiters[1:]
		n := r.n
		if n > len(p.buf) {
			n = len(p.buf)
		}
		out := make([]byte, n)
		copy(out, p.buf)
		p.buf = p.buf[n:]
		p.pumpWriter()
		r.cb(out, abi.OK)
	}
}

// closeWrite marks the writer side closed: queued readers drain then see
// EOF.
func (p *Pipe) closeWrite() {
	p.writeClosed = true
	p.pumpReaders()
}

// closeRead marks the reader side closed: pending and future writes fail
// with EPIPE (the kernel also raises SIGPIPE, as Unix does).
func (p *Pipe) closeRead() {
	p.readClosed = true
	p.buf = nil
	if w := p.writeWaiter; w != nil {
		p.writeWaiter = nil
		w.cb(w.done, abi.EPIPE)
	}
}

// Buffered returns the bytes currently queued (diagnostics).
func (p *Pipe) Buffered() int { return len(p.buf) }

// Read is the exported read for kernel-side consumers (System's output
// pumps, the web app's XHR path, tests).
func (p *Pipe) Read(n int, cb func([]byte, abi.Errno)) { p.read(n, cb) }

// Write is the exported write for kernel-side producers.
func (p *Pipe) Write(data []byte, cb func(int, abi.Errno)) { p.write(data, cb) }

// CloseRead closes the reader side (future writes fail with EPIPE).
func (p *Pipe) CloseRead() { p.closeRead() }

// CloseWrite closes the writer side (readers drain then see EOF).
func (p *Pipe) CloseWrite() { p.closeWrite() }

// ---------------------------------------------------------------------------
// Pipe ends as kernel Files.
// ---------------------------------------------------------------------------

// pipeEnd is one end of a pipe exposed as a descriptor. sigPipe, when
// non-nil, is invoked on EPIPE so the kernel can deliver SIGPIPE to the
// writing process.
type pipeEnd struct {
	p       *Pipe
	reader  bool
	sigPipe func()
}

// NewPipePair returns connected (read end, write end) kernel files.
func NewPipePair() (File, File) {
	p := NewPipe()
	return &pipeEnd{p: p, reader: true}, &pipeEnd{p: p, reader: false}
}

func (e *pipeEnd) Read(d *Desc, n int, cb func([]byte, abi.Errno)) {
	if !e.reader {
		cb(nil, abi.EBADF)
		return
	}
	e.p.read(n, cb)
}

func (e *pipeEnd) Write(d *Desc, data []byte, cb func(int, abi.Errno)) {
	if e.reader {
		cb(0, abi.EBADF)
		return
	}
	e.p.write(data, func(n int, err abi.Errno) {
		if err == abi.EPIPE && e.sigPipe != nil {
			e.sigPipe()
		}
		cb(n, err)
	})
}

func (e *pipeEnd) Pread(off int64, n int, cb func([]byte, abi.Errno)) { cb(nil, abi.ESPIPE) }
func (e *pipeEnd) Pwrite(off int64, b []byte, cb func(int, abi.Errno)) {
	cb(0, abi.ESPIPE)
}
func (e *pipeEnd) Seek(d *Desc, off int64, w int, cb func(int64, abi.Errno)) {
	cb(0, abi.ESPIPE)
}
func (e *pipeEnd) Stat(cb func(abi.Stat, abi.Errno)) {
	cb(abi.Stat{Mode: abi.S_IFIFO | 0o600, Size: int64(e.p.Buffered()), Nlink: 1}, abi.OK)
}
func (e *pipeEnd) Getdents(cb func([]abi.Dirent, abi.Errno)) { cb(nil, abi.ENOTDIR) }
func (e *pipeEnd) Truncate(s int64, cb func(abi.Errno))      { cb(abi.EINVAL) }

func (e *pipeEnd) Close(cb func(abi.Errno)) {
	if e.reader {
		e.p.closeRead()
	} else {
		e.p.closeWrite()
	}
	cb(abi.OK)
}

func (e *pipeEnd) String() string {
	dir := "w"
	if e.reader {
		dir = "r"
	}
	return fmt.Sprintf("pipe:[%d%s]", e.p.id, dir)
}
