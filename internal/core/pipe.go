package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/abi"
	"repro/internal/fs"
)

// PipeCap is the pipe buffer capacity, matching the traditional 64 KiB.
const PipeCap = 64 * 1024

// Pipe implements §3.4: an in-memory buffer with a read-side wait queue
// (readers with no data get their continuation enqueued, invoked when data
// is written) and write-side backpressure (writers into a full buffer wait
// until the pipe is drained) — the discipline §6 laments plain postMessage
// lacks.
//
// Internally the buffer is a FIFO queue of owned byte segments rather than
// one flat slice. The scalar Read/Write API behaves exactly as before
// (Write copies the caller's bytes in; Read returns min(n, Buffered())
// bytes), but the owned-segment representation enables the zero-copy fast
// path the ring transport uses: WriteOwned moves caller-owned buffers into
// the queue without copying, and Splice moves whole segments out to the
// reader — so a shell pipeline's payload is copied once (into the
// destination heap) instead of at every pipe crossing.
type Pipe struct {
	id           int
	segs         []pipeSeg // owned buffers, FIFO
	size         int       // total buffered bytes across segs
	readWaiters  []pipeRead
	writeWaiters []*pipeWrite
	readClosed   bool
	writeClosed  bool

	// onReadable lets the kernel observe backpressure in tests.
	onReadable func()

	// onState, when set (kernel-owned pipes: socket halves, pipe2
	// pairs), fires after any readiness transition — data buffered,
	// space freed, either side closed — so parked SYS_poll waiters
	// re-evaluate level-triggered readiness (poll.go).
	onState func()
}

// stateChanged fires the poll hook; safe to call redundantly (the
// kernel's kick is level-triggered and O(1) when nothing is parked).
func (p *Pipe) stateChanged() {
	if p.onState != nil {
		p.onState()
	}
}

// pipeSeg is one buffered segment. Plain segments (slot < 0) own their
// bytes outright. Slot-backed segments alias the shared page-pool arena
// — adopted from a zero-copy writeg submission — and carry the owner
// record that returns the pipe's pin when the last piece of the adopted
// reference leaves. Slot-backed bytes leave the pipe either as page
// grants (ReadRef, zero-copy) or as fresh copies (takeBytes/takeSegs):
// handing out the arena alias itself would let a consumer keep reading
// a slot after its pins drop and the pool recycles it.
type pipeSeg struct {
	data  []byte
	slot  int   // backing pool slot for adopted segments, else -1
	off   int64 // arena byte offset of data[0] (slot-backed only)
	owner *segOwner
}

// segOwner tracks one adopted writeg reference across pipe splits:
// pieces counts the live pieces carved from it (buffered or still held
// by a parked writer); when the last piece leaves the pipe, release
// returns the pipe's adopter pin. lease takes one extra lease-accounted
// pin — used when a piece leaves as a read grant, so the reader's later
// unlease stays balanced against pages granted.
type segOwner struct {
	pieces  int
	lease   func()
	release func()
}

// done retires one piece; safe on nil (plain segments).
func (o *segOwner) done() {
	if o == nil {
		return
	}
	if o.pieces--; o.pieces == 0 {
		o.release()
	}
}

// pipeRead is a parked reader: exactly one of cb (scalar), spliceCB
// (vectored, owned-segment), or notify (grant-capable readg, see
// readNotify) is set.
type pipeRead struct {
	n        int
	cb       func([]byte, abi.Errno)
	spliceCB func([][]byte, abi.Errno)
	notify   func()
}

// pipeWrite is a parked writer. segs holds the bytes still to transfer;
// owned writers hand their buffers over without copying.
type pipeWrite struct {
	segs  []pipeSeg
	done  int
	owned bool
	cb    func(int, abi.Errno)
}

// pipeSeq is process-wide: ids only need to be unique for diagnostics
// (pipe:[N] names), and an atomic keeps concurrent Instances race-free.
var pipeSeq atomic.Int64

// NewPipe creates an empty pipe.
func NewPipe() *Pipe {
	return &Pipe{id: int(pipeSeq.Add(1))}
}

// takeBytes removes and returns min(n, size) bytes as one slice. When a
// plain head segment alone satisfies the request the slice is handed
// over without copying (the pipe owns plain segments outright, so
// ownership transfers to the reader); reads spanning segments — and any
// slot-backed bytes, which the reader must not alias — gather into a
// fresh buffer.
func (p *Pipe) takeBytes(n int) []byte {
	if n > p.size {
		n = p.size
	}
	if n == 0 {
		return nil
	}
	if s := &p.segs[0]; s.owner == nil && len(s.data) >= n {
		// Full slice expression: the handed-out slice's capacity stops
		// at n, so a reader growing it can never reach bytes the pipe
		// still buffers in s.data[n:].
		out := s.data[:n:n]
		if len(s.data) == n {
			p.segs = p.segs[1:]
		} else {
			s.data = s.data[n:]
		}
		p.size -= n
		return out
	}
	out := make([]byte, 0, n)
	for n > 0 {
		s := &p.segs[0]
		take := len(s.data)
		if take > n {
			take = n
		}
		out = append(out, s.data[:take]...)
		if take == len(s.data) {
			s.owner.done()
			p.segs = p.segs[1:]
		} else {
			s.data = s.data[take:]
			s.off += int64(take)
		}
		p.size -= take
		n -= take
	}
	return out
}

// takeSegs removes up to max bytes as whole owned segments, splitting
// only the final segment — plain segments move without copying, with
// split pieces capacity-capped so the reader's slice can never grow
// into bytes the pipe still buffers. Slot-backed segments leave as
// fresh copies: their arena bytes may be recycled once the pipe's pin
// drops, and the caller keeps the result indefinitely.
func (p *Pipe) takeSegs(max int) [][]byte {
	if max > p.size {
		max = p.size
	}
	var out [][]byte
	n := max
	for n > 0 {
		s := &p.segs[0]
		if len(s.data) <= n {
			b := s.data
			if s.owner != nil {
				b = append([]byte(nil), b...)
				s.owner.done()
			}
			out = append(out, b)
			p.segs = p.segs[1:]
			p.size -= len(b)
			n -= len(b)
		} else {
			b := s.data[:n:n]
			if s.owner != nil {
				b = append([]byte(nil), s.data[:n]...)
			}
			out = append(out, b)
			s.data = s.data[n:]
			s.off += int64(n)
			p.size -= n
			n = 0
		}
	}
	return out
}

// read delivers up to n bytes, or queues the continuation when the pipe is
// empty. At EOF (writer closed, buffer drained) it delivers an empty slice.
func (p *Pipe) read(n int, cb func([]byte, abi.Errno)) {
	if p.size == 0 {
		if p.writeClosed {
			cb(nil, abi.OK) // EOF
			return
		}
		p.readWaiters = append(p.readWaiters, pipeRead{n: n, cb: cb})
		return
	}
	out := p.takeBytes(n)
	p.pumpWriter()
	cb(out, abi.OK)
}

// readNotify runs fn as soon as the pipe has data or EOF — immediately
// when either holds, otherwise parked in FIFO order with ordinary
// readers. A readg against an empty pipe parks here instead of falling
// to the copy path up front: when fn fires, the caller re-attempts the
// grant answer (ReadRef) against the now-buffered head and only then
// falls back to a copying read — both complete inline at that point, so
// blocking never forfeits the zero-copy path.
func (p *Pipe) readNotify(fn func()) {
	if p.size > 0 || p.writeClosed {
		fn()
		return
	}
	p.readWaiters = append(p.readWaiters, pipeRead{notify: fn})
}

// splice delivers up to max buffered bytes as owned segments without
// copying, queuing the continuation when the pipe is empty. EOF delivers a
// nil segment list.
func (p *Pipe) splice(max int, cb func([][]byte, abi.Errno)) {
	if p.size == 0 {
		if p.writeClosed {
			cb(nil, abi.OK) // EOF
			return
		}
		p.readWaiters = append(p.readWaiters, pipeRead{n: max, spliceCB: cb})
		return
	}
	out := p.takeSegs(max)
	p.pumpWriter()
	cb(out, abi.OK)
}

// write appends a copy of data, blocking (queuing the continuation) when
// the buffer is full. Writes complete only when every byte is buffered, so
// pipeline stages see classic blocking-write semantics.
func (p *Pipe) write(data []byte, cb func(int, abi.Errno)) {
	p.enqueueWrite([][]byte{data}, false, cb)
}

// writeOwned transfers ownership of bufs into the pipe — the caller must
// not touch them afterwards. Backpressure matches write: the continuation
// fires once every byte is buffered.
func (p *Pipe) writeOwned(bufs [][]byte, cb func(int, abi.Errno)) {
	p.enqueueWrite(bufs, true, cb)
}

func (p *Pipe) enqueueWrite(bufs [][]byte, owned bool, cb func(int, abi.Errno)) {
	segs := make([]pipeSeg, 0, len(bufs))
	for _, b := range bufs {
		if len(b) > 0 {
			segs = append(segs, pipeSeg{data: b, slot: -1})
		}
	}
	p.enqueueSegs(segs, owned, cb)
}

// writeSlotSegs transfers adopted (arena-aliased) segments into the
// pipe: the zero-copy writeg entry. Each segment's owner record arrives
// armed by the kernel with the pin-management closures; backpressure
// and EPIPE semantics match writeOwned.
func (p *Pipe) writeSlotSegs(segs []pipeSeg, cb func(int, abi.Errno)) {
	p.enqueueSegs(segs, true, cb)
}

func (p *Pipe) enqueueSegs(segs []pipeSeg, owned bool, cb func(int, abi.Errno)) {
	if p.readClosed || p.writeClosed {
		// readClosed: classic EPIPE. writeClosed: the write side already
		// delivered EOF (CloseWrite); accepting more data would smuggle
		// bytes past the EOF the reader was promised — only kernel-held
		// ends (a Console whose stdin was closed) can reach this. Either
		// way adopted segments never enter the pipe, so their pieces
		// retire here.
		for i := range segs {
			segs[i].owner.done()
		}
		cb(0, abi.EPIPE)
		return
	}
	// Writers queue FIFO, so several outstanding writes (the ring
	// transport batches them) complete in order as space frees up.
	p.writeWaiters = append(p.writeWaiters, &pipeWrite{segs: segs, owned: owned, cb: cb})
	p.pumpWriter()
}

// pumpWriter moves pending write bytes into the segment queue as space
// allows, completing writers in FIFO order. Owned segments move by
// reference; scalar writes copy once here.
func (p *Pipe) pumpWriter() {
	if len(p.writeWaiters) == 0 {
		// Nothing queued; don't re-enter pumpReaders. The caller may
		// still have drained bytes (read paths land here), so announce
		// the possible space-freed transition to parked pollers.
		p.stateChanged()
		return
	}
	for len(p.writeWaiters) > 0 {
		w := p.writeWaiters[0]
		if p.readClosed {
			p.writeWaiters = p.writeWaiters[1:]
			for i := range w.segs {
				w.segs[i].owner.done()
			}
			w.cb(w.done, abi.EPIPE)
			continue
		}
		space := PipeCap - p.size
		for space > 0 && len(w.segs) > 0 {
			s := &w.segs[0]
			take := len(s.data)
			if take > space {
				take = space
			}
			if w.owned {
				// Capacity-capped so a reader who later receives this
				// piece whole can't grow it into the unsent remainder.
				p.segs = append(p.segs, pipeSeg{
					data: s.data[:take:take], slot: s.slot, off: s.off, owner: s.owner,
				})
				if take < len(s.data) {
					// The reference now lives as two pieces: the buffered
					// prefix and the writer-held remainder.
					if s.owner != nil {
						s.owner.pieces++
					}
				}
			} else {
				cp := make([]byte, take)
				copy(cp, s.data[:take])
				p.segs = append(p.segs, pipeSeg{data: cp, slot: -1})
			}
			p.size += take
			w.done += take
			space -= take
			if take == len(s.data) {
				w.segs = w.segs[1:]
			} else {
				s.data = s.data[take:]
				s.off += int64(take)
			}
		}
		if len(w.segs) > 0 {
			break // blocked on space until a reader drains
		}
		p.writeWaiters = p.writeWaiters[1:]
		w.cb(w.done, abi.OK)
	}
	p.pumpReaders()
	p.stateChanged()
}

// pumpReaders satisfies queued readers (scalar and splice alike, in FIFO
// order) from the segment queue.
func (p *Pipe) pumpReaders() {
	for len(p.readWaiters) > 0 {
		if p.size == 0 {
			if p.writeClosed {
				// Drain EOF to all waiters.
				ws := p.readWaiters
				p.readWaiters = nil
				for _, r := range ws {
					if r.notify != nil {
						r.notify() // sees EOF inline
					} else if r.spliceCB != nil {
						r.spliceCB(nil, abi.OK)
					} else {
						r.cb(nil, abi.OK)
					}
				}
			}
			return
		}
		r := p.readWaiters[0]
		p.readWaiters = p.readWaiters[1:]
		if r.notify != nil {
			// The callee consumes (grant or copy) inline; the loop re-checks
			// size at the top for the next waiter.
			r.notify()
		} else if r.spliceCB != nil {
			out := p.takeSegs(r.n)
			p.pumpWriter()
			r.spliceCB(out, abi.OK)
		} else {
			out := p.takeBytes(r.n)
			p.pumpWriter()
			r.cb(out, abi.OK)
		}
	}
}

// closeWrite marks the writer side closed: queued readers drain then see
// EOF.
func (p *Pipe) closeWrite() {
	p.writeClosed = true
	p.pumpReaders()
	p.stateChanged()
}

// closeRead marks the reader side closed: pending and future writes fail
// with EPIPE (the kernel also raises SIGPIPE, as Unix does).
func (p *Pipe) closeRead() {
	p.readClosed = true
	for i := range p.segs {
		p.segs[i].owner.done()
	}
	p.segs = nil
	p.size = 0
	ws := p.writeWaiters
	p.writeWaiters = nil
	for _, w := range ws {
		for i := range w.segs {
			w.segs[i].owner.done()
		}
		w.cb(w.done, abi.EPIPE)
	}
	p.stateChanged()
}

// writeNB is the non-blocking write: buffer what fits right now and
// report it, or EAGAIN when the pipe is full (or earlier blocking
// writers are still queued — jumping them would reorder the stream).
// O_NONBLOCK socket writes land here; the bounded buffer is what gives
// each connection backpressure under load.
func (p *Pipe) writeNB(data []byte) (int, abi.Errno) {
	if p.readClosed || p.writeClosed {
		return 0, abi.EPIPE
	}
	space := PipeCap - p.size
	if space <= 0 || len(p.writeWaiters) > 0 {
		return 0, abi.EAGAIN
	}
	take := len(data)
	if take > space {
		take = space
	}
	cp := make([]byte, take)
	copy(cp, data[:take])
	p.segs = append(p.segs, pipeSeg{data: cp, slot: -1})
	p.size += take
	p.pumpReaders()
	p.stateChanged()
	return take, abi.OK
}

// Buffered returns the bytes currently queued (diagnostics).
func (p *Pipe) Buffered() int { return p.size }

// Read is the exported read for kernel-side consumers (System's output
// pumps, the web app's XHR path, tests).
func (p *Pipe) Read(n int, cb func([]byte, abi.Errno)) { p.read(n, cb) }

// Write is the exported write for kernel-side producers.
func (p *Pipe) Write(data []byte, cb func(int, abi.Errno)) { p.write(data, cb) }

// WriteOwned is the exported zero-copy write: ownership of bufs moves to
// the pipe, which will hand the same backing arrays to splicing readers.
func (p *Pipe) WriteOwned(bufs [][]byte, cb func(int, abi.Errno)) { p.writeOwned(bufs, cb) }

// Splice is the exported zero-copy read: up to max bytes leave the pipe as
// whole owned segments.
func (p *Pipe) Splice(max int, cb func([][]byte, abi.Errno)) { p.splice(max, cb) }

// CloseRead closes the reader side (future writes fail with EPIPE).
func (p *Pipe) CloseRead() { p.closeRead() }

// CloseWrite closes the writer side (readers drain then see EOF).
func (p *Pipe) CloseWrite() { p.closeWrite() }

// ---------------------------------------------------------------------------
// Pipe ends as kernel Files.
// ---------------------------------------------------------------------------

// pipeEnd is one end of a pipe exposed as a descriptor. sigPipe, when
// non-nil, is invoked on EPIPE so the kernel can deliver SIGPIPE to the
// writing process.
type pipeEnd struct {
	p       *Pipe
	reader  bool
	sigPipe func()
}

// NewPipePair returns connected (read end, write end) kernel files.
func NewPipePair() (File, File) {
	p := NewPipe()
	return &pipeEnd{p: p, reader: true}, &pipeEnd{p: p, reader: false}
}

func (e *pipeEnd) Read(d *Desc, n int, cb func([]byte, abi.Errno)) {
	if !e.reader {
		cb(nil, abi.EBADF)
		return
	}
	e.p.read(n, cb)
}

func (e *pipeEnd) Write(d *Desc, data []byte, cb func(int, abi.Errno)) {
	if e.reader {
		cb(0, abi.EBADF)
		return
	}
	e.p.write(data, func(n int, err abi.Errno) {
		if err == abi.EPIPE && e.sigPipe != nil {
			e.sigPipe()
		}
		cb(n, err)
	})
}

// Writev is the vectored, zero-copy write: the kernel hands over buffers
// it owns (decoded from a process heap or a cloned message) and the pipe
// keeps them instead of copying.
func (e *pipeEnd) Writev(d *Desc, bufs [][]byte, cb func(int, abi.Errno)) {
	if e.reader {
		cb(0, abi.EBADF)
		return
	}
	e.p.writeOwned(bufs, func(n int, err abi.Errno) {
		if err == abi.EPIPE && e.sigPipe != nil {
			e.sigPipe()
		}
		cb(n, err)
	})
}

// WriteSlotSegs is the zero-copy writeg entry for a pipe write end:
// fully-formed arena-aliased segments (owner records armed by the
// kernel) enter the buffer by reference.
func (e *pipeEnd) WriteSlotSegs(segs []pipeSeg, cb func(int, abi.Errno)) {
	if e.reader {
		for i := range segs {
			segs[i].owner.done()
		}
		cb(0, abi.EBADF)
		return
	}
	e.p.writeSlotSegs(segs, func(n int, err abi.Errno) {
		if err == abi.EPIPE && e.sigPipe != nil {
			e.sigPipe()
		}
		cb(n, err)
	})
}

// ReadRef answers a readg against the pipe: consecutive slot-backed
// head segments leave as page grants — adopted writeg bytes cross the
// pipe without a copy. Any other head (plain heap segment, empty pipe,
// EOF) refuses, and the caller's fallback — splice plus one copy into
// the reader's heap — keeps the blocking and EOF semantics. Granted
// pieces are consumed: each takes a fresh lease-accounted pin for the
// reader before the pipe's own piece retires.
func (e *pipeEnd) ReadRef(d *Desc, n, max int) ([]fs.PageRef, bool) {
	if !e.reader || e.p.size == 0 || len(e.p.segs) == 0 || e.p.segs[0].owner == nil {
		return nil, false
	}
	p := e.p
	var refs []fs.PageRef
	for n > 0 && len(p.segs) > 0 && len(refs) < max {
		s := &p.segs[0]
		if s.owner == nil {
			break
		}
		take := len(s.data)
		if take > n {
			take = n
		}
		s.owner.lease()
		refs = append(refs, fs.PageRef{Slot: s.slot, Off: s.off, Len: take})
		if take == len(s.data) {
			s.owner.done()
			p.segs = p.segs[1:]
		} else {
			s.data = s.data[take:]
			s.off += int64(take)
		}
		p.size -= take
		n -= take
	}
	p.pumpWriter()
	return refs, true
}

// Splice moves up to max buffered bytes out as owned segments (the
// vectored-read fast path).
func (e *pipeEnd) Splice(d *Desc, max int, cb func([][]byte, abi.Errno)) {
	if !e.reader {
		cb(nil, abi.EBADF)
		return
	}
	e.p.splice(max, cb)
}

func (e *pipeEnd) Pread(off int64, n int, cb func([]byte, abi.Errno)) { cb(nil, abi.ESPIPE) }
func (e *pipeEnd) Pwrite(off int64, b []byte, cb func(int, abi.Errno)) {
	cb(0, abi.ESPIPE)
}
func (e *pipeEnd) Seek(d *Desc, off int64, w int, cb func(int64, abi.Errno)) {
	cb(0, abi.ESPIPE)
}
func (e *pipeEnd) Stat(cb func(abi.Stat, abi.Errno)) {
	cb(abi.Stat{Mode: abi.S_IFIFO | 0o600, Size: int64(e.p.Buffered()), Nlink: 1}, abi.OK)
}
func (e *pipeEnd) Getdents(d *Desc, cb func([]abi.Dirent, abi.Errno)) { cb(nil, abi.ENOTDIR) }
func (e *pipeEnd) Truncate(s int64, cb func(abi.Errno))               { cb(abi.EINVAL) }

func (e *pipeEnd) Close(cb func(abi.Errno)) {
	if e.reader {
		e.p.closeRead()
	} else {
		e.p.closeWrite()
	}
	cb(abi.OK)
}

func (e *pipeEnd) String() string {
	dir := "w"
	if e.reader {
		dir = "r"
	}
	return fmt.Sprintf("pipe:[%d%s]", e.p.id, dir)
}
