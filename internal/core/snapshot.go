package core

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/snapshot"
)

// Kernel side of the checkpoint/fork subsystem (internal/snapshot).
//
// Capture: a first boot of a runtime whose registry is still unsealed is
// asked (init["snapcap"]) to call "snapcap" once negotiation settles; the
// kernel freezes the task's heap into arena pages plus its fd/env/cwd
// template and registers the image under the executable path.
//
// Clone: a later Spawn of the same path skips the object-URL eval of the
// full artifact (a tiny stub script boots the worker), ships the image
// and a COW tracker by reference in the init message, and answers the
// worker's single "restore" call in place of the three-round-trip
// personality/ring/pagepool negotiation.
//
// Checkpoint: CheckpointLive walks the same soft-dirty bitmap in
// iterative pre-copy rounds — bounded work per main-thread event while
// the guest keeps running — and a short final stop-copy, livecore's
// design expressed in events instead of signal-stopped threads.

// snapStubScriptSize is the boot stub served for clone boots in place of
// the full executable artifact: enough script to start the runtime shim,
// a small constant script-eval charge instead of megabytes.
const snapStubScriptSize = 4096

// Pre-copy tuning: at most precopyPagesPerEvent pages copy per
// main-thread event (the guest runs between events), for at most
// precopyMaxRounds rounds; a round whose dirty residue is at most
// precopyFinalDelta pages stops the guest for the final delta.
const (
	precopyPagesPerEvent = 64
	precopyMaxRounds     = 4
	precopyFinalDelta    = 16
)

// stubURL returns (and caches) the clone-boot stub object URL for path.
func (k *Kernel) stubURL(path string) string {
	if u, ok := k.stubURLs[path]; ok {
		return u
	}
	u := k.Sys.CreateObjectURL(make([]byte, snapStubScriptSize))
	k.stubURLs[path] = u
	return u
}

// fdInfos snapshots a task's open-descriptor table for an image or dump.
func (k *Kernel) fdInfos(t *Task) []snapshot.FdInfo {
	fds := t.Fds()
	out := make([]snapshot.FdInfo, 0, len(fds))
	for _, fd := range fds {
		out = append(out, snapshot.FdInfo{Fd: fd, Path: t.FdPath(fd)})
	}
	return out
}

// releaseTaskSnapshot returns a task's snapshot references: every image
// pin its tracker still holds (pages it exited without writing) comes
// back to the shared arena. Runs on exit and on exec, next to the page
// lease reclaim, and is idempotent.
func (k *Kernel) releaseTaskSnapshot(t *Task) {
	if t.snapTracker != nil {
		t.snapTracker.ReleaseShared()
	}
	t.snapTracker = nil
	t.snapImage = nil
	t.script = nil
}

// doSnapcap handles the "snapcap" registration call: freeze the calling
// task's post-boot state as its executable's snapshot image.
func (k *Kernel) doSnapcap(t *Task, ringOK, poolOK bool, scratchTop int64, reply func(...browser.Value)) {
	if k.Snapshots == nil || k.DisableSnapshots || k.Snapshots.Sealed() || t.script == nil {
		reply(int64(-1), errv(abi.ENOSYS))
		return
	}
	img := snapshot.NewImage(t.Path, t.script)
	t.script = nil
	img.Env = append([]string(nil), t.Env...)
	img.Cwd = t.cwd
	img.Fds = k.fdInfos(t)
	if t.heap != nil {
		// Freezing the heap is one kernel-side pass over it.
		k.Sys.Sim.Charge(int64(float64(t.heap.Len()) * k.CPU.SyncByteNs))
		img.RingOK, img.PoolOK, img.ScratchTop = ringOK, poolOK, scratchTop
		img.SetHeap(k.Snapshots.Store(), t.heap.Bytes())
	}
	if !k.Snapshots.Register(img) {
		img.Release()
		reply(int64(-1), errv(abi.EAGAIN))
		return
	}
	k.SnapshotCaptures.Add(1)
	reply(int64(0), errv(abi.OK))
}

// doRestore handles a clone boot's combined "restore" registration:
// personality (heap + offsets), ring regions, and the page-pool mapping
// land in one round trip, because the restored heap bytes already hold
// the layout the image's capture negotiated. Reply layout:
// [ret, errno, ringAccepted, poolAccepted, poolSAB?].
func (k *Kernel) doRestore(t *Task, a []browser.Value, argInt func(int) int64, reply func(...browser.Value)) {
	sab, _ := a[0].(*browser.SAB)
	if sab == nil || t.snapImage == nil {
		reply(int64(-1), errv(abi.EINVAL))
		return
	}
	t.heap = sab
	t.retOff = int(argInt(1))
	t.waitOff = int(argInt(2))
	ringAccepted := int64(0)
	if argInt(3) != 0 {
		if err := k.registerRing(t, argInt(4), argInt(5), argInt(6), argInt(7)); err == abi.OK {
			ringAccepted = 1
		}
	}
	if argInt(8) != 0 && !k.DisableZeroCopy && t.ring != nil {
		t.pool = true
		reply(int64(0), errv(abi.OK), ringAccepted, int64(1), k.pagePoolSAB())
		return
	}
	reply(int64(0), errv(abi.OK), ringAccepted, int64(0))
}

// CheckpointLive checkpoints a running guest with bounded pause: the
// memory image assembles over iterative pre-copy rounds — each
// main-thread event copies at most precopyPagesPerEvent pages, and the
// guest keeps running between events, its writes caught by the soft-dirty
// bitmap — until the dirty residue is small (or the round budget is
// spent), when one final stop-the-guest event copies the delta. The
// callback receives the finished Dump; PauseNs is the virtual length of
// that final event.
func (k *Kernel) CheckpointLive(pid int, cb func(*snapshot.Dump, abi.Errno)) {
	t := k.tasks[pid]
	if t == nil {
		cb(nil, abi.ESRCH)
		return
	}
	d := &snapshot.Dump{
		Pid:  t.Pid,
		Path: t.Path,
		Args: append([]string(nil), t.Args...),
		Env:  append([]string(nil), t.Env...),
		Cwd:  t.cwd,
		Fds:  k.fdInfos(t),
	}
	if t.heap == nil {
		// No registered heap (async transport): the fd/env/cwd template
		// is the whole checkpoint, done in this one event.
		cb(d, abi.OK)
		return
	}
	heap := t.heap
	hlen := heap.Len()
	d.HeapLen = hlen
	d.Mem = make([]byte, hlen)
	npages := (hlen + snapshot.PageSize - 1) / snapshot.PageSize

	tr := t.snapTracker
	if tr == nil || tr.NumPages() < npages {
		// Cold-booted guest: attach a dirty-only tracker for the
		// duration (it stays installed; soft-dirty marking is cheap and
		// a later checkpoint reuses it through the heap's hook).
		tr = snapshot.NewTracker(nil, npages)
		heap.SetDirtyTracker(tr)
	}

	// copyPages moves pages into the dump and charges the kernel for the
	// pass; the returned charge is the event's virtual copy cost.
	copyPages := func(pages []int) int64 {
		hb := heap.Bytes()
		var bytes int64
		for _, p := range pages {
			lo := p * snapshot.PageSize
			hi := lo + snapshot.PageSize
			if hi > hlen {
				hi = hlen
			}
			copy(d.Mem[lo:hi], hb[lo:hi])
			bytes += int64(hi - lo)
		}
		ns := int64(float64(bytes) * k.CPU.SyncByteNs)
		k.Sys.Sim.Charge(ns)
		return ns
	}

	finish := func() {
		// Final stop-copy, one event: whatever is still soft-dirty plus
		// the pages written through retained views that bypass the write
		// barriers (the wake/ret page, the ring regions) — those must
		// always re-copy, and doing them here keeps the image of the
		// pause consistent.
		final := map[int]bool{0: true}
		if r := t.ring; r != nil {
			markRange := func(off, n int64) {
				for p := int(off / snapshot.PageSize); p <= int((off+n-1)/snapshot.PageSize); p++ {
					if p >= 0 && p < npages {
						final[p] = true
					}
				}
			}
			markRange(r.reqOff, r.reqLen)
			markRange(r.repOff, r.repLen)
		}
		for _, p := range tr.DirtyPages() {
			final[p] = true
		}
		tr.ClearDirty()
		pages := make([]int, 0, len(final))
		for p := range final {
			pages = append(pages, p)
		}
		sort.Ints(pages)
		d.FinalPages = len(pages)
		d.PauseNs = copyPages(pages)
		cb(d, abi.OK)
	}

	var round func(n int, work []int)
	round = func(n int, work []int) {
		d.Rounds = n
		i := 0
		var step func()
		step = func() {
			chunk := work[i:]
			if len(chunk) > precopyPagesPerEvent {
				chunk = chunk[:precopyPagesPerEvent]
			}
			copyPages(chunk)
			d.PrecopyPages += len(chunk)
			i += len(chunk)
			if i < len(work) {
				// Yield the main thread: the guest runs, we resume with
				// the next chunk on a fresh event.
				k.Sys.Main.SetTimeout(0, step)
				return
			}
			if n >= precopyMaxRounds || tr.DirtyCount() <= precopyFinalDelta {
				finish()
				return
			}
			next := tr.DirtyPages()
			tr.ClearDirty()
			k.Sys.Main.SetTimeout(0, func() { round(n+1, next) })
		}
		step()
	}

	// Round 1 copies everything; later rounds only what went dirty while
	// the previous round was live.
	tr.ClearDirty()
	all := make([]int, npages)
	for p := range all {
		all[p] = p
	}
	round(1, all)
}
