package core_test

import (
	"bytes"
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
)

// Pipe edge cases and the zero-copy (owned-segment) path, exercised
// directly against the kernel object.

func TestPipeWriteAfterCloseReadEPIPE(t *testing.T) {
	p := core.NewPipe()
	p.CloseRead()
	var gotN = -1
	var gotErr abi.Errno
	p.Write([]byte("doomed"), func(n int, err abi.Errno) { gotN, gotErr = n, err })
	if gotErr != abi.EPIPE || gotN != 0 {
		t.Fatalf("write after close-read: n=%d err=%v, want 0/EPIPE", gotN, gotErr)
	}
	// The owned path fails the same way.
	gotN, gotErr = -1, abi.OK
	p.WriteOwned([][]byte{[]byte("also doomed")}, func(n int, err abi.Errno) { gotN, gotErr = n, err })
	if gotErr != abi.EPIPE || gotN != 0 {
		t.Fatalf("owned write after close-read: n=%d err=%v, want 0/EPIPE", gotN, gotErr)
	}
	// A writer blocked mid-transfer gets EPIPE with its partial count.
	p2 := core.NewPipe()
	big := make([]byte, core.PipeCap+1000)
	done := false
	p2.Write(big, func(n int, err abi.Errno) {
		done = true
		if err != abi.EPIPE || n != core.PipeCap {
			t.Fatalf("blocked writer after close-read: n=%d err=%v, want %d/EPIPE", n, err, core.PipeCap)
		}
	})
	if done {
		t.Fatal("oversized write completed with no reader")
	}
	p2.CloseRead()
	if !done {
		t.Fatal("blocked writer not failed by close-read")
	}
}

func TestPipeReadAfterCloseWriteDrainsThenEOF(t *testing.T) {
	p := core.NewPipe()
	p.Write([]byte("residue"), func(int, abi.Errno) {})
	p.CloseWrite()
	// Buffered bytes must still drain (in two partial reads), then EOF.
	var got []byte
	read := func(n int) []byte {
		var out []byte
		called := false
		p.Read(n, func(b []byte, err abi.Errno) {
			called = true
			if err != abi.OK {
				t.Fatalf("read err %v", err)
			}
			out = b
		})
		if !called {
			t.Fatal("read did not complete synchronously on buffered pipe")
		}
		return out
	}
	got = append(got, read(3)...)
	got = append(got, read(100)...)
	if string(got) != "residue" {
		t.Fatalf("drained %q, want %q", got, "residue")
	}
	if b := read(10); len(b) != 0 {
		t.Fatalf("expected EOF, got %q", b)
	}
	// Splice sees EOF the same way.
	eof := false
	p.Splice(10, func(segs [][]byte, err abi.Errno) { eof = err == abi.OK && len(segs) == 0 })
	if !eof {
		t.Fatal("splice after EOF did not report EOF")
	}
}

func TestPipeMultiReaderFairness(t *testing.T) {
	// Parked readers are served FIFO: each of three readers gets one of
	// three writes, in arrival order.
	p := core.NewPipe()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		p.Read(4, func(b []byte, err abi.Errno) {
			if err != abi.OK {
				t.Fatalf("reader %d err %v", i, err)
			}
			order = append(order, i)
		})
	}
	p.Write([]byte("aaaa"), func(int, abi.Errno) {})
	p.Write([]byte("bbbb"), func(int, abi.Errno) {})
	p.Write([]byte("cccc"), func(int, abi.Errno) {})
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("reader completion order %v, want [0 1 2]", order)
	}
	// Mixed scalar and splice waiters keep FIFO order too.
	p2 := core.NewPipe()
	var kinds []string
	p2.Read(2, func([]byte, abi.Errno) { kinds = append(kinds, "scalar") })
	p2.Splice(2, func([][]byte, abi.Errno) { kinds = append(kinds, "splice") })
	p2.Read(2, func([]byte, abi.Errno) { kinds = append(kinds, "scalar2") })
	p2.Write([]byte("123456"), func(int, abi.Errno) {})
	if len(kinds) != 3 || kinds[0] != "scalar" || kinds[1] != "splice" || kinds[2] != "scalar2" {
		t.Fatalf("waiter service order %v", kinds)
	}
}

func TestPipeBufferedAccountingPartialReads(t *testing.T) {
	p := core.NewPipe()
	p.Write(bytes.Repeat([]byte("x"), 1000), func(int, abi.Errno) {})
	p.WriteOwned([][]byte{bytes.Repeat([]byte("y"), 500), bytes.Repeat([]byte("z"), 500)}, func(int, abi.Errno) {})
	if p.Buffered() != 2000 {
		t.Fatalf("Buffered=%d, want 2000", p.Buffered())
	}
	p.Read(300, func(b []byte, err abi.Errno) {
		if len(b) != 300 {
			t.Fatalf("partial read returned %d", len(b))
		}
	})
	if p.Buffered() != 1700 {
		t.Fatalf("Buffered=%d after 300-byte read, want 1700", p.Buffered())
	}
	// A read crossing the scalar/owned segment boundary gathers across
	// segments and keeps the count right.
	p.Read(900, func(b []byte, err abi.Errno) {
		if len(b) != 900 || b[699] != 'x' || b[700] != 'y' {
			t.Fatalf("cross-segment read: len=%d [699]=%c [700]=%c", len(b), b[699], b[700])
		}
	})
	if p.Buffered() != 800 {
		t.Fatalf("Buffered=%d, want 800", p.Buffered())
	}
	p.Splice(10_000, func(segs [][]byte, err abi.Errno) {
		var n int
		for _, s := range segs {
			n += len(s)
		}
		if n != 800 {
			t.Fatalf("splice drained %d, want 800", n)
		}
	})
	if p.Buffered() != 0 {
		t.Fatalf("Buffered=%d after full splice, want 0", p.Buffered())
	}
}

func TestPipeOwnedSegmentsMoveWithoutCopy(t *testing.T) {
	// The zero-copy contract: a spliced-out segment is the same backing
	// array WriteOwned put in.
	p := core.NewPipe()
	seg := []byte("owned-segment")
	p.WriteOwned([][]byte{seg}, func(n int, err abi.Errno) {
		if n != len(seg) || err != abi.OK {
			t.Fatalf("owned write n=%d err=%v", n, err)
		}
	})
	p.Splice(64, func(segs [][]byte, err abi.Errno) {
		if len(segs) != 1 {
			t.Fatalf("splice returned %d segments", len(segs))
		}
		if &segs[0][0] != &seg[0] {
			t.Fatal("splice copied the owned segment instead of moving it")
		}
	})
}

func TestPipeSpliceSplitDoesNotAliasRetainedBytes(t *testing.T) {
	// When Splice splits a segment, the piece handed out must not let
	// the reader reach the bytes the pipe still buffers: growing the
	// received slice has to reallocate (capacity is capped at the split).
	p := core.NewPipe()
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	p.WriteOwned([][]byte{buf}, func(int, abi.Errno) {})
	var got [][]byte
	p.Splice(40, func(segs [][]byte, err abi.Errno) { got = segs })
	if len(got) != 1 || len(got[0]) != 40 {
		t.Fatalf("splice returned %d segs, first len %d", len(got), len(got[0]))
	}
	if cap(got[0]) != 40 {
		t.Fatalf("split segment capacity %d leaks into retained bytes", cap(got[0]))
	}
	_ = append(got[0], 0xFF, 0xFF) // must reallocate, not clobber
	p.Read(100, func(b []byte, err abi.Errno) {
		if len(b) != 60 {
			t.Fatalf("retained %d bytes, want 60", len(b))
		}
		for i, v := range b {
			if v != byte(40+i) {
				t.Fatalf("retained byte %d corrupted: %d", i, v)
			}
		}
	})
}

func TestPipeScalarAndVectoredAgree(t *testing.T) {
	// Differential: the same payload pushed through the scalar path and
	// the owned/splice path arrives byte-identical, chunking aside.
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	drive := func(owned bool) []byte {
		p := core.NewPipe()
		var out []byte
		// Writer: 64 KiB chunks (pipe capacity), queued up front; the
		// pipe's backpressure interleaves them with the reader.
		for off := 0; off < len(payload); off += 64 * 1024 {
			chunk := payload[off : off+64*1024]
			if owned {
				cp := make([]byte, len(chunk))
				copy(cp, chunk)
				p.WriteOwned([][]byte{cp[:16*1024], cp[16*1024 : 32*1024], cp[32*1024:]}, func(int, abi.Errno) {})
			} else {
				p.Write(chunk, func(int, abi.Errno) {})
			}
		}
		done := false
		var loop func()
		loop = func() {
			if owned {
				p.Splice(64*1024, func(segs [][]byte, err abi.Errno) {
					if err != abi.OK {
						t.Fatalf("splice err %v", err)
					}
					if len(segs) == 0 {
						done = true
						return
					}
					for _, s := range segs {
						out = append(out, s...)
					}
					loop()
				})
			} else {
				p.Read(64*1024, func(b []byte, err abi.Errno) {
					if err != abi.OK {
						t.Fatalf("read err %v", err)
					}
					if len(b) == 0 {
						done = true
						return
					}
					out = append(out, b...)
					loop()
				})
			}
		}
		loop()
		p.CloseWrite()
		if !done {
			// The final EOF read parks until close; pump once more.
			p.Read(1, func([]byte, abi.Errno) {})
		}
		return out
	}
	scalar := drive(false)
	vectored := drive(true)
	if !bytes.Equal(scalar, payload) {
		t.Fatal("scalar path corrupted the payload")
	}
	if !bytes.Equal(vectored, payload) {
		t.Fatal("vectored path corrupted the payload")
	}
}

func TestPipeQueuedWritersCompleteFIFO(t *testing.T) {
	// Several outstanding writes (as the ring transport batches them)
	// complete in order as the reader drains.
	p := core.NewPipe()
	var completed []int
	half := bytes.Repeat([]byte("a"), core.PipeCap/2)
	for i := 0; i < 4; i++ {
		i := i
		p.Write(half, func(n int, err abi.Errno) {
			if err != abi.OK || n != len(half) {
				t.Fatalf("write %d: n=%d err=%v", i, n, err)
			}
			completed = append(completed, i)
		})
	}
	// Two fit immediately; the rest complete as we read.
	if len(completed) != 2 {
		t.Fatalf("%d writes completed before any read, want 2", len(completed))
	}
	for p.Buffered() > 0 {
		p.Read(core.PipeCap, func([]byte, abi.Errno) {})
	}
	if len(completed) != 4 {
		t.Fatalf("%d writes completed after drain, want 4", len(completed))
	}
	for i, v := range completed {
		if i != v {
			t.Fatalf("completion order %v, want FIFO", completed)
		}
	}
}
