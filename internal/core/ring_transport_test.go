package core_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/posix"
	"repro/internal/rt"
)

// A program that exercises the vectored syscalls over files and pipes;
// its output must be byte-identical on every transport.
func init() {
	posix.Register(&posix.Program{Name: "t-vectored", Main: func(p posix.Proc) int {
		fd, err := p.Open("/vec.txt", abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, 0o644)
		if err != abi.OK {
			return 1
		}
		n, err := p.Writev(fd, [][]byte{[]byte("alpha-"), []byte("beta-"), []byte("gamma")})
		if err != abi.OK || n != 16 {
			return 2
		}
		p.Close(fd)

		fd, err = p.Open("/vec.txt", abi.O_RDONLY, 0)
		if err != abi.OK {
			return 3
		}
		segs, err := p.Readv(fd, []int{4, 4, 64})
		if err != abi.OK {
			return 4
		}
		var all []byte
		for _, s := range segs {
			all = append(all, s...)
		}
		p.Close(fd)
		posix.Fprintf(p, abi.Stdout, "file n=%d data=%s\n", n, all)

		// Vectored round trip through a pipe (the splice fast path).
		r, w, perr := p.Pipe()
		if perr != abi.OK {
			return 5
		}
		if _, err := p.Writev(w, [][]byte{[]byte("ring"), []byte("-"), []byte("pipe")}); err != abi.OK {
			return 6
		}
		psegs, err := p.Readv(r, []int{2, 2, 64})
		if err != abi.OK {
			return 7
		}
		var pall []byte
		for _, s := range psegs {
			pall = append(pall, s...)
		}
		posix.Fprintf(p, abi.Stdout, "pipe data=%s\n", pall)
		p.Close(r)
		p.Close(w)
		return 0
	}})
}

func init() {
	// Writes a buffer larger than the em-sync scratch region (1 MiB heap
	// minus rings): the runtime must chunk it, not overflow.
	posix.Register(&posix.Program{Name: "t-bigwrite", Main: func(p posix.Proc) int {
		big := make([]byte, (1<<20)+(1<<19))
		for i := range big {
			big[i] = byte(i * 7)
		}
		fd, err := p.Open("/big.out", abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, 0o644)
		if err != abi.OK {
			return 1
		}
		n, err := p.Write(fd, big)
		if err != abi.OK || n != len(big) {
			return 2
		}
		p.Close(fd)
		st, err := p.Stat("/big.out")
		if err != abi.OK || st.Size != int64(len(big)) {
			return 3
		}
		posix.Fprintf(p, abi.Stdout, "big=%d\n", st.Size)
		return 0
	}})
}

// TestOversizedSyncWriteChunks: a write larger than the shared heap's
// scratch region must complete (in pieces) on both sync paths instead of
// overflowing the staging area.
func TestOversizedSyncWriteChunks(t *testing.T) {
	for _, disable := range []bool{false, true} {
		w := boot(t)
		w.k.DisableRing = disable
		w.install(t, "/usr/bin/t-bigwrite", "t-bigwrite", rt.EmSyncKind)
		code, out, errOut := w.run(t, "/usr/bin/t-bigwrite")
		if code != 0 || out != "big=1572864\n" {
			t.Fatalf("disableRing=%v: exit=%d out=%q err=%q", disable, code, out, errOut)
		}
	}
}

// TestVectoredTransportsAgree is the differential proof that the scalar
// sync path, the ring transport, and the async transport produce
// byte-identical results for the same program.
func TestVectoredTransportsAgree(t *testing.T) {
	type cfg struct {
		name    string
		kind    rt.Kind
		disable bool
	}
	cases := []cfg{
		{"async-node", rt.NodeKind, false},
		{"sync-scalar", rt.EmSyncKind, true},
		{"sync-ring", rt.EmSyncKind, false},
		{"wasm-ring", rt.WasmKind, false},
	}
	outputs := map[string]string{}
	for _, c := range cases {
		w := boot(t)
		w.k.DisableRing = c.disable
		w.install(t, "/usr/bin/t-vec", "t-vectored", c.kind)
		code, out, errOut := w.run(t, "/usr/bin/t-vec")
		if code != 0 {
			t.Fatalf("%s: t-vectored exited %d (stderr %q)", c.name, code, errOut)
		}
		outputs[c.name] = out
		switch c.name {
		case "sync-ring":
			if w.k.RingSyscalls.Load() == 0 {
				t.Errorf("%s: ring transport negotiated but unused", c.name)
			}
			if w.k.RingBatchedCalls.Load() == 0 {
				t.Errorf("%s: writev fan-out produced no batched dispatches", c.name)
			}
		case "sync-scalar":
			if w.k.RingSyscalls.Load() != 0 {
				t.Errorf("%s: DisableRing kernel still saw ring calls", c.name)
			}
			if w.k.SyncSyscalls.Load() == 0 {
				t.Errorf("%s: scalar fallback made no sync calls", c.name)
			}
		}
	}
	want := "file n=16 data=alpha-beta-gamma\npipe data=ring-pipe\n"
	for name, out := range outputs {
		if out != want {
			t.Errorf("%s output %q, want %q", name, out, want)
		}
	}
}

// TestRingFallsBackWhenRefused checks an existing sync program keeps
// working — on the scalar path — against a kernel that refuses rings.
func TestRingFallsBackWhenRefused(t *testing.T) {
	w := boot(t)
	w.k.DisableRing = true
	w.install(t, "/usr/bin/t-fsops-sync", "t-fsops", rt.EmSyncKind)
	code, out, _ := w.run(t, "/usr/bin/t-fsops-sync")
	if code != 0 {
		t.Fatalf("exit=%d out=%q", code, out)
	}
	if w.k.SyncSyscalls.Load() == 0 || w.k.RingSyscalls.Load() != 0 {
		t.Fatalf("sync=%d ring=%d, want scalar-only traffic", w.k.SyncSyscalls.Load(), w.k.RingSyscalls.Load())
	}
}
