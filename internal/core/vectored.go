package core

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

// Vectored, zero-copy I/O (the data-plane half of the ring-transport
// redesign). Kernel objects may implement either optional interface to
// move whole owned buffers instead of copying per call; files that don't
// get a safe scalar fallback, so every File keeps working unchanged.

// vectoredWriter is implemented by files that can take ownership of the
// buffers handed to them (pipes). The kernel only passes buffers it owns —
// bytes freshly decoded from a process heap or a cloned message.
type vectoredWriter interface {
	Writev(d *Desc, bufs [][]byte, cb func(int, abi.Errno))
}

// splicer is implemented by files that can surrender buffered data as
// owned segments without copying (pipes).
type splicer interface {
	Splice(d *Desc, max int, cb func([][]byte, abi.Errno))
}

// vectoredReader is implemented by files whose storage can gather
// directly into segments (fs-backed files via FileHandle.Preadv), so a
// readv needs no kernel-side coalescing buffer.
type vectoredReader interface {
	Readv(d *Desc, total int, cb func([][]byte, abi.Errno))
}

// refReader is implemented by files whose storage can answer a read
// with pinned page-cache references instead of payload bytes (fs-backed
// files over the shared page pool) — the zero-copy read path. A refusal
// must leave the descriptor offset untouched.
type refReader interface {
	ReadRef(d *Desc, n, max int) ([]fs.PageRef, bool)
}

// writeMoved writes one kernel-owned buffer to a file, transferring
// ownership when the file supports it (the zero-copy pipe path) and
// copying via the scalar Write otherwise.
func writeMoved(d *Desc, buf []byte, cb func(int, abi.Errno)) {
	if vw, ok := d.file.(vectoredWriter); ok {
		vw.Writev(d, [][]byte{buf}, cb)
		return
	}
	d.file.Write(d, buf, cb)
}

// readGather reads up to total bytes from a file as a segment list with a
// single blocking point — POSIX readv semantics: block until some data (or
// EOF), then return whatever is immediately available, never waiting for
// the full count. Pipes splice owned segments out; other files fall back
// to one scalar Read.
func readGather(d *Desc, total int, cb func([][]byte, abi.Errno)) {
	if sp, ok := d.file.(splicer); ok {
		sp.Splice(d, total, cb)
		return
	}
	if vr, ok := d.file.(vectoredReader); ok {
		vr.Readv(d, total, cb)
		return
	}
	d.file.Read(d, total, func(data []byte, err abi.Errno) {
		if err != abi.OK || len(data) == 0 {
			cb(nil, err)
			return
		}
		cb([][]byte{data}, abi.OK)
	})
}

// checkIovecs validates guest-supplied iovecs against the task's heap —
// an out-of-range pointer must fail the call, not panic the kernel.
func (t *Task) checkIovecs(iovs []abi.Iovec) abi.Errno {
	if t.heap == nil {
		return abi.EFAULT
	}
	hlen := int64(t.heap.Len())
	for _, iov := range iovs {
		// Ptr > hlen-Len rather than Ptr+Len > hlen: the sum can
		// overflow for a hostile pointer; the subtraction cannot once
		// Len is known to be in [0, hlen].
		if iov.Ptr < 0 || iov.Len < 0 || iov.Len > hlen || iov.Ptr > hlen-iov.Len {
			return abi.EFAULT
		}
	}
	return abi.OK
}

// doReadv performs the readv system call against heap-addressed iovecs:
// gather from the file (zero-copy for pipes), then scatter exactly once
// into the process heap.
func (k *Kernel) doReadv(t *Task, d *Desc, iovs []abi.Iovec, done func(int64, abi.Errno)) {
	if err := t.checkIovecs(iovs); err != abi.OK {
		done(-1, err)
		return
	}
	total := 0
	for _, iov := range iovs {
		total += int(iov.Len)
	}
	if total == 0 {
		done(0, abi.OK)
		return
	}
	readGather(d, total, func(segs [][]byte, err abi.Errno) {
		if err != abi.OK {
			done(-1, err)
			return
		}
		n := t.scatterHeap(iovs, segs)
		k.ReadCopiedBytes.Add(int64(n))
		done(int64(n), abi.OK)
	})
}

// scatterHeap copies gathered segments into the iovec targets in order,
// returning bytes written. This is the single per-byte copy (and charge)
// of the vectored read path.
func (t *Task) scatterHeap(iovs []abi.Iovec, segs [][]byte) int {
	n := 0
	iv := 0
	used := 0 // bytes already scattered into iovs[iv]
	for _, seg := range segs {
		for len(seg) > 0 && iv < len(iovs) {
			space := int(iovs[iv].Len) - used
			if space == 0 {
				iv++
				used = 0
				continue
			}
			take := len(seg)
			if take > space {
				take = space
			}
			t.heapWrite(iovs[iv].Ptr+int64(used), seg[:take])
			seg = seg[take:]
			used += take
			n += take
		}
	}
	return n
}

// doWritev performs the writev system call: gather each iovec out of the
// heap (one copy — the buffers then belong to the kernel), and hand the
// owned buffers to the file, in one call for vectored writers or
// sequentially otherwise.
func (k *Kernel) doWritev(t *Task, d *Desc, iovs []abi.Iovec, done func(int64, abi.Errno)) {
	if err := t.checkIovecs(iovs); err != abi.OK {
		done(-1, err)
		return
	}
	bufs := make([][]byte, 0, len(iovs))
	for _, iov := range iovs {
		if iov.Len > 0 {
			bufs = append(bufs, t.heapBytes(iov.Ptr, iov.Len))
			k.WriteCopiedBytes.Add(iov.Len)
		}
	}
	writevBufs(d, bufs, done)
}

// writevBufs writes kernel-owned buffers to a file, preferring the
// ownership-transfer path.
func writevBufs(d *Desc, bufs [][]byte, done func(int64, abi.Errno)) {
	if len(bufs) == 0 {
		done(0, abi.OK)
		return
	}
	if vw, ok := d.file.(vectoredWriter); ok {
		vw.Writev(d, bufs, func(n int, err abi.Errno) {
			if err != abi.OK && n == 0 {
				done(-1, err)
				return
			}
			done(int64(n), abi.OK)
		})
		return
	}
	var total int64
	var loop func(i int)
	loop = func(i int) {
		if i == len(bufs) {
			done(total, abi.OK)
			return
		}
		d.file.Write(d, bufs[i], func(n int, err abi.Errno) {
			total += int64(n)
			if err != abi.OK {
				if total > 0 {
					done(total, abi.OK) // partial writev succeeded
				} else {
					done(-1, err)
				}
				return
			}
			loop(i + 1)
		})
	}
	loop(0)
}
