package core
