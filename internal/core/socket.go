package core

import (
	"fmt"

	"repro/internal/abi"
)

// This file implements §3.5: a subset of the BSD/POSIX socket API with
// SOCK_STREAM (TCP) sockets connecting Browsix processes — and the
// kernel-side client endpoints that let the web application itself talk
// HTTP to in-Browsix servers (§4.1's XMLHttpRequest-like interface).
//
// A connection is a pair of pipes (one per direction): sockets are
// "sequenced, reliable, bi-directional streams".

// sockState tracks a socket descriptor's lifecycle.
type sockState int

const (
	sockFresh sockState = iota
	sockBound
	sockListening
	sockConnected
	sockClosed
)

// Socket is a kernel socket object.
type Socket struct {
	k     *Kernel
	state sockState
	port  int

	// Listening state.
	backlog       []*Socket // established, not yet accepted
	backlogMax    int
	acceptWaiters []func(*Socket, abi.Errno)

	// Connected state.
	in  *Pipe // bytes we read
	out *Pipe // bytes we write
}

func (s *Socket) String() string { return fmt.Sprintf("socket:[port=%d state=%d]", s.port, s.state) }

// Read/Write on a connected socket are pipe operations. A descriptor
// opened (or fcntl'd) with O_NONBLOCK never parks: an empty receive
// buffer reads EAGAIN, a full send buffer writes what fits or EAGAIN —
// the readiness edge SYS_poll reports.
func (s *Socket) Read(d *Desc, n int, cb func([]byte, abi.Errno)) {
	if s.state != sockConnected {
		cb(nil, abi.ENOTCONN)
		return
	}
	if d != nil && d.flags&abi.O_NONBLOCK != 0 && s.in.size == 0 && !s.in.writeClosed {
		cb(nil, abi.EAGAIN)
		return
	}
	s.in.read(n, cb)
}

func (s *Socket) Write(d *Desc, data []byte, cb func(int, abi.Errno)) {
	if s.state != sockConnected {
		cb(0, abi.ENOTCONN)
		return
	}
	if d != nil && d.flags&abi.O_NONBLOCK != 0 {
		n, err := s.out.writeNB(data)
		cb(n, err)
		return
	}
	s.out.write(data, cb)
}

func (s *Socket) Pread(off int64, n int, cb func([]byte, abi.Errno)) { cb(nil, abi.ESPIPE) }
func (s *Socket) Pwrite(off int64, b []byte, cb func(int, abi.Errno)) {
	cb(0, abi.ESPIPE)
}
func (s *Socket) Seek(d *Desc, off int64, w int, cb func(int64, abi.Errno)) {
	cb(0, abi.ESPIPE)
}
func (s *Socket) Stat(cb func(abi.Stat, abi.Errno)) {
	cb(abi.Stat{Mode: abi.S_IFSOCK | 0o600, Nlink: 1}, abi.OK)
}
func (s *Socket) Getdents(d *Desc, cb func([]abi.Dirent, abi.Errno)) { cb(nil, abi.ENOTDIR) }
func (s *Socket) Truncate(sz int64, cb func(abi.Errno))              { cb(abi.EINVAL) }

// Close tears the socket down: a listener stops accepting (pending
// connects are refused), a connected socket half-closes its peer.
func (s *Socket) Close(cb func(abi.Errno)) {
	switch s.state {
	case sockListening:
		delete(s.k.ports, s.port)
		for _, w := range s.acceptWaiters {
			w(nil, abi.EINVAL)
		}
		s.acceptWaiters = nil
		for _, c := range s.backlog {
			c.in.closeRead()
			c.out.closeWrite()
		}
		s.backlog = nil
	case sockConnected:
		s.in.closeRead()
		s.out.closeWrite()
	case sockBound:
		// A bound-but-not-listening port is released.
		if s.k.ports[s.port] == s {
			delete(s.k.ports, s.port)
		}
	}
	s.state = sockClosed
	s.k.pollKick()
	cb(abi.OK)
}

// ---------------------------------------------------------------------------
// Kernel socket-subsystem operations.
// ---------------------------------------------------------------------------

// NewSocket creates an unbound stream socket.
func (k *Kernel) NewSocket() *Socket { return &Socket{k: k, state: sockFresh} }

// BindSocket binds a socket to a local port; port 0 picks an ephemeral one.
func (k *Kernel) BindSocket(s *Socket, port int) abi.Errno {
	if s.state != sockFresh {
		return abi.EINVAL
	}
	if port == 0 {
		port = k.nextEphemeral
		for k.ports[port] != nil {
			port++
		}
		k.nextEphemeral = port + 1
	}
	if k.ports[port] != nil {
		return abi.EADDRINUSE
	}
	k.ports[port] = s
	s.port = port
	s.state = sockBound
	return abi.OK
}

// ListenSocket moves a bound socket to listening and fires any
// port-listen notifications registered by the web application (§4.1:
// "socket notifications let applications register a callback to be
// invoked when a process has started listening on a particular port").
func (k *Kernel) ListenSocket(s *Socket, backlog int) abi.Errno {
	if s.state != sockBound {
		return abi.EINVAL
	}
	if backlog <= 0 {
		backlog = 8
	}
	s.backlogMax = backlog
	s.state = sockListening
	if ws := k.portWatchers[s.port]; len(ws) > 0 {
		delete(k.portWatchers, s.port)
		for _, w := range ws {
			w(s.port)
		}
	}
	return abi.OK
}

// AcceptSocket dequeues an established connection, or parks the
// continuation until one arrives. With nonblock set (the listener
// descriptor carries O_NONBLOCK, or the accept itself asked for it) an
// empty backlog answers EAGAIN instead of parking — the event-loop
// server drains the backlog to EAGAIN after poll reports the listener
// readable.
func (k *Kernel) AcceptSocket(s *Socket, nonblock bool, cb func(*Socket, abi.Errno)) {
	if s.state != sockListening {
		cb(nil, abi.EINVAL)
		return
	}
	if len(s.backlog) > 0 {
		c := s.backlog[0]
		s.backlog = s.backlog[1:]
		cb(c, abi.OK)
		return
	}
	if nonblock {
		cb(nil, abi.EAGAIN)
		return
	}
	s.acceptWaiters = append(s.acceptWaiters, cb)
}

// ConnectSocket connects a fresh socket to a listening port. Like TCP, the
// three-way handshake completes as soon as the listener queues the
// connection; accept() happens later.
func (k *Kernel) ConnectSocket(s *Socket, port int, cb func(abi.Errno)) {
	if s.state == sockConnected {
		cb(abi.EISCONN)
		return
	}
	if s.state != sockFresh && s.state != sockBound {
		cb(abi.EINVAL)
		return
	}
	l := k.ports[port]
	if l == nil || l.state != sockListening {
		cb(abi.ECONNREFUSED)
		return
	}
	if len(l.backlog) >= l.backlogMax && len(l.acceptWaiters) == 0 {
		cb(abi.ECONNREFUSED)
		return
	}
	a, b := NewPipe(), NewPipe()
	a.onState, b.onState = k.pollKick, k.pollKick
	s.in, s.out = a, b
	s.state = sockConnected
	peer := &Socket{k: k, state: sockConnected, port: port, in: b, out: a}
	if len(l.acceptWaiters) > 0 {
		w := l.acceptWaiters[0]
		l.acceptWaiters = l.acceptWaiters[1:]
		cb(abi.OK)
		w(peer, abi.OK)
		return
	}
	l.backlog = append(l.backlog, peer)
	k.pollKick()
	cb(abi.OK)
}

// OnPortListen registers a callback fired when some process starts
// listening on port. If the port is already listening the callback fires
// immediately. This is the Browsix socket-notification API that saves web
// applications from polling.
func (k *Kernel) OnPortListen(port int, cb func(port int)) {
	if l := k.ports[port]; l != nil && l.state == sockListening {
		cb(port)
		return
	}
	k.portWatchers[port] = append(k.portWatchers[port], cb)
}

// ---------------------------------------------------------------------------
// Kernel-side connections (the web application's XHR path).
// ---------------------------------------------------------------------------

// KernelConn is a kernel-held endpoint of a connection to an in-Browsix
// socket server. The web-application-facing XHR API is built on it.
type KernelConn struct {
	sock *Socket
}

// Connect opens a kernel-side connection to a listening Browsix port.
func (k *Kernel) Connect(port int, cb func(*KernelConn, abi.Errno)) {
	s := k.NewSocket()
	k.ConnectSocket(s, port, func(err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		cb(&KernelConn{sock: s}, abi.OK)
	})
}

// Read reads up to n bytes (empty slice at EOF).
func (c *KernelConn) Read(n int, cb func([]byte, abi.Errno)) { c.sock.in.read(n, cb) }

// Write writes data.
func (c *KernelConn) Write(data []byte, cb func(int, abi.Errno)) { c.sock.out.write(data, cb) }

// Close closes the connection.
func (c *KernelConn) Close() { c.sock.Close(func(abi.Errno) {}) }
