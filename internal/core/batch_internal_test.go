package core

import (
	"fmt"
	"testing"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/fs"
	"repro/internal/sched"
)

// ringWorld builds a kernel plus a synthetic ring-registered task — no
// worker, no runtime — so tests and benchmarks can push raw call frames
// into the request ring and observe exactly what one doorbell drain does.
type ringWorld struct {
	sim  *sched.Sim
	sys  *browser.System
	k    *Kernel
	fsys *fs.FileSystem
	task *Task
}

const ringWorldHeap = 1 << 20
const ringWorldRing = 16 * 1024

func newRingWorld(t testing.TB) *ringWorld {
	sim := sched.New()
	sys := browser.NewSystem(sim, browser.Chrome())
	clock := func() int64 { return sim.Now() }
	fsys := fs.NewFileSystem(fs.NewMemFS(clock), clock)
	k := NewKernel(sys, fsys, nil)
	task := &Task{
		k:       k,
		Pid:     1,
		cwd:     "/",
		files:   map[int]*Desc{},
		heap:    browser.NewSAB(ringWorldHeap),
		retOff:  8,
		waitOff: 0,
	}
	k.tasks[1] = task
	reqOff := int64(ringWorldHeap - 2*ringWorldRing)
	repOff := int64(ringWorldHeap - ringWorldRing)
	if err := k.registerRing(task, reqOff, ringWorldRing, repOff, ringWorldRing); err != abi.OK {
		t.Fatalf("registerRing: %v", err)
	}
	task.ring.req.Reset()
	task.ring.rep.Reset()
	return &ringWorld{sim: sim, sys: sys, k: k, fsys: fsys, task: task}
}

// stageStatFrames writes paths + stat buffers into the heap scratch area
// and pushes one SYS_stat frame per path into the request ring.
func (w *ringWorld) stageStatFrames(t testing.TB, paths []string) []int64 {
	heap := w.task.heap.Bytes()
	ptr := int64(64)
	statPtrs := make([]int64, len(paths))
	for i, p := range paths {
		copy(heap[ptr:], p)
		pp, pn := ptr, int64(len(p))
		ptr += (pn + 7) &^ 7
		statPtrs[i] = ptr
		ptr += abi.StatSize
		if !w.task.ring.req.PushCall(uint32(i), abi.SYS_stat, []int64{pp, pn, statPtrs[i]}) {
			t.Fatalf("request ring full at frame %d", i)
		}
	}
	return statPtrs
}

// drain rings the doorbell inside a simulator event and runs it down.
func (w *ringWorld) drain(t testing.TB) {
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		w.k.drainRing(w.task)
		done = true
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatalf("drain never completed")
	}
}

// TestStatStormSingleNotify is the acceptance guard for the batched
// drain: a doorbell carrying N stat frames produces exactly ONE process
// notify, every frame resolves through the fs batch entry point, and
// every reply lands with the right per-path result.
func TestStatStormSingleNotify(t *testing.T) {
	w := newRingWorld(t)
	const n = 100
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/f%03d", i)
		var werr abi.Errno = -1
		w.fsys.WriteFile(paths[i], make([]byte, i+1), 0o644, func(err abi.Errno) { werr = err })
		if werr != abi.OK {
			t.Fatalf("stage %s: %v", paths[i], werr)
		}
	}
	statPtrs := w.stageStatFrames(t, paths)

	notifiesBefore := w.k.RingNotifies.Load()
	w.drain(t)
	if got := w.k.RingNotifies.Load() - notifiesBefore; got != 1 {
		t.Fatalf("drained %d stat frames with %d notifies, want exactly 1", n, got)
	}
	if w.k.FSBatchedCalls.Load() != n {
		t.Fatalf("FSBatchedCalls = %d, want %d (whole storm through the batch entry)", w.k.FSBatchedCalls.Load(), n)
	}

	// Every reply present, in the reply ring, with correct stat payloads.
	heap := w.task.heap.Bytes()
	got := 0
	for {
		seq, ret, errno, ok := w.task.ring.rep.PopReply()
		if !ok {
			break
		}
		if ret != 0 || errno != abi.OK {
			t.Fatalf("frame %d: ret=%d errno=%v", seq, ret, errno)
		}
		st := abi.UnpackStat(heap[statPtrs[seq] : statPtrs[seq]+abi.StatSize])
		if st.Size != int64(seq)+1 {
			t.Fatalf("frame %d: size %d, want %d", seq, st.Size, seq+1)
		}
		got++
	}
	if got != n {
		t.Fatalf("popped %d replies, want %d", got, n)
	}
}

// TestBatchedDispatchMatchesFrameByFrame proves the ablation flag
// changes nothing observable: same replies, same stat payloads, still
// one notify (reply batching predates fs batching) — only the fs-level
// batch counter differs.
func TestBatchedDispatchMatchesFrameByFrame(t *testing.T) {
	type result struct {
		notifies int64
		batched  int64
		replies  map[uint32]abi.Stat
	}
	run := func(disable bool) result {
		w := newRingWorld(t)
		w.k.DisableFSBatch = disable
		const n = 32
		paths := make([]string, n)
		for i := range paths {
			paths[i] = fmt.Sprintf("/x%02d", i)
			w.fsys.WriteFile(paths[i], make([]byte, 100+i), 0o644, func(abi.Errno) {})
		}
		statPtrs := w.stageStatFrames(t, paths)
		w.drain(t)
		heap := w.task.heap.Bytes()
		res := result{notifies: w.k.RingNotifies.Load(), batched: w.k.FSBatchedCalls.Load(), replies: map[uint32]abi.Stat{}}
		for {
			seq, _, errno, ok := w.task.ring.rep.PopReply()
			if !ok {
				break
			}
			if errno != abi.OK {
				t.Fatalf("frame %d: %v", seq, errno)
			}
			st := abi.UnpackStat(heap[statPtrs[seq] : statPtrs[seq]+abi.StatSize])
			st.Ino = 0 // the global inode counter differs across worlds
			res.replies[seq] = st
		}
		return res
	}
	batched, scalar := run(false), run(true)
	if batched.notifies != 1 || scalar.notifies != 1 {
		t.Fatalf("notifies: batched=%d scalar=%d, want 1 and 1", batched.notifies, scalar.notifies)
	}
	if batched.batched == 0 || scalar.batched != 0 {
		t.Fatalf("FSBatchedCalls: batched=%d scalar=%d", batched.batched, scalar.batched)
	}
	if len(batched.replies) != len(scalar.replies) {
		t.Fatalf("reply counts differ: %d vs %d", len(batched.replies), len(scalar.replies))
	}
	for seq, st := range batched.replies {
		if scalar.replies[seq] != st {
			t.Fatalf("frame %d differs: batched %+v scalar %+v", seq, st, scalar.replies[seq])
		}
	}
}

// TestBatchMixedRunSplits: non-metadata frames interleaved in a drain
// split the stat runs but everything still completes with one notify.
func TestBatchMixedRunSplits(t *testing.T) {
	w := newRingWorld(t)
	w.fsys.WriteFile("/a", []byte("aa"), 0o644, func(abi.Errno) {})
	w.fsys.WriteFile("/b", []byte("bbb"), 0o644, func(abi.Errno) {})
	heap := w.task.heap.Bytes()
	stage := func(ptr int64, s string) (int64, int64) {
		copy(heap[ptr:], s)
		return ptr, int64(len(s))
	}
	pa, na := stage(64, "/a")
	pb, nb := stage(128, "/b")
	sp1, sp2 := int64(256), int64(512)
	r := w.task.ring.req
	r.PushCall(0, abi.SYS_stat, []int64{pa, na, sp1})
	r.PushCall(1, abi.SYS_getpid, nil) // splits the run
	r.PushCall(2, abi.SYS_stat, []int64{pb, nb, sp2})
	before := w.k.RingNotifies.Load()
	w.drain(t)
	if got := w.k.RingNotifies.Load() - before; got != 1 {
		t.Fatalf("notifies = %d, want 1", got)
	}
	want := map[uint32]int64{0: 0, 1: 1, 2: 0} // getpid returns pid 1
	seen := 0
	for {
		seq, ret, errno, ok := w.task.ring.rep.PopReply()
		if !ok {
			break
		}
		if errno != abi.OK || ret != want[seq] {
			t.Fatalf("frame %d: ret=%d errno=%v", seq, ret, errno)
		}
		seen++
	}
	if seen != 3 {
		t.Fatalf("replies = %d, want 3", seen)
	}
	if a := abi.UnpackStat(heap[sp1 : sp1+abi.StatSize]); a.Size != 2 {
		t.Fatalf("/a size %d", a.Size)
	}
	if b := abi.UnpackStat(heap[sp2 : sp2+abi.StatSize]); b.Size != 3 {
		t.Fatalf("/b size %d", b.Size)
	}
}

// BenchmarkBatchedStatStorm drains a doorbell of stat frames — the
// `ls -l`/make probe storm — batched (one dentry-cache pass per drain)
// vs frame-by-frame (one pass per frame). Reported metrics: notifies
// per storm and fs cache passes per storm.
func BenchmarkBatchedStatStorm(b *testing.B) {
	const n = 256
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"batched", false},
		{"frame-by-frame", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			w := newRingWorld(b)
			w.k.DisableFSBatch = cfg.disable
			paths := make([]string, n)
			for i := range paths {
				paths[i] = fmt.Sprintf("/bench/f%03d", i)
			}
			var merr abi.Errno = -1
			w.fsys.MkdirAll("/bench", 0o755, func(err abi.Errno) { merr = err })
			if merr != abi.OK {
				b.Fatalf("mkdir: %v", merr)
			}
			for _, p := range paths {
				w.fsys.WriteFile(p, []byte("x"), 0o644, func(abi.Errno) {})
			}
			notifies0 := w.k.RingNotifies.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.stageStatFrames(b, paths)
				w.drain(b)
				for {
					if _, _, _, ok := w.task.ring.rep.PopReply(); !ok {
						break
					}
				}
			}
			b.StopTimer()
			stats := w.fsys.CacheStats()
			b.ReportMetric(float64(w.k.RingNotifies.Load()-notifies0)/float64(b.N), "notifies/storm")
			b.ReportMetric(float64(stats.StatBatches)/float64(b.N), "batchpasses/storm")
			b.ReportMetric(float64(n), "frames/storm")
		})
	}
}
