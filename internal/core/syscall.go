package core

import (
	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/fs"
)

// This file is the kernel's system-call dispatcher: the asynchronous path
// (postMessage with cloned arguments, continuation-style replies) and the
// synchronous path (integer arguments; bulk data moved directly between
// the kernel and the process's SharedArrayBuffer heap; completion via
// Atomics.notify) — §3.2 of the paper.

// onWorkerMessage handles every message a process sends the kernel.
func (k *Kernel) onWorkerMessage(t *Task, w *browser.Worker, v browser.Value) {
	if t.state == taskZombie || t.worker != w {
		return // stale message from a replaced or exited image
	}
	m, ok := v.(map[string]browser.Value)
	if !ok {
		return
	}
	switch browser.GetString(m, "type") {
	case "syscall":
		k.AsyncSyscalls.Add(1)
		k.Sys.Sim.Charge(k.CPU.SyscallNs)
		id := browser.GetInt(m, "id")
		name := browser.GetString(m, "name")
		k.SyscallCount[name]++
		k.dispatchAsync(t, name, browser.GetArray(m, "args"), func(ret ...browser.Value) {
			if t.worker != w || w.Terminated() {
				return
			}
			w.PostMessage(map[string]browser.Value{
				"type": "reply",
				"id":   id,
				"ret":  ret,
			})
		})
	case "sync":
		k.SyncSyscalls.Add(1)
		k.Sys.Sim.Charge(k.CPU.SyscallNs)
		trap := int(browser.GetInt(m, "trap"))
		k.SyscallCount[abi.SyscallName(trap)]++
		args := browser.GetArray(m, "args")
		ia := make([]int64, len(args))
		for i := range args {
			switch x := args[i].(type) {
			case int64:
				ia[i] = x
			case int:
				ia[i] = int64(x)
			case float64:
				ia[i] = int64(x)
			}
		}
		k.dispatchSync(t, trap, ia)
	case "ringbell":
		// Ring-transport doorbell: any number of call frames may be
		// queued behind this one message. Per-call kernel CPU is charged
		// inside the drain; the doorbell itself already paid the
		// postMessage cost.
		k.drainRing(t)
	}
}

// abs resolves a process-relative path against the task's cwd,
// preserving trailing-slash semantics (fs.Abs).
func (t *Task) abs(p string) string { return fs.Abs(t.cwd, p) }

// ---------------------------------------------------------------------------
// Transport-independent operations.
// ---------------------------------------------------------------------------

func (k *Kernel) doOpen(t *Task, p string, flags int, mode uint32, cb func(int, abi.Errno)) {
	ap := t.abs(p)
	k.FS.Stat(ap, func(st abi.Stat, serr abi.Errno) {
		if serr == abi.OK && st.IsDir() {
			if flags&abi.O_ACCMODE != abi.O_RDONLY {
				cb(-1, abi.EISDIR)
				return
			}
			cb(t.installFd(NewDesc(&dirFile{fs: k.FS, path: ap}, flags, ap)), abi.OK)
			return
		}
		if flags&abi.O_DIRECTORY != 0 {
			if serr != abi.OK {
				cb(-1, serr)
			} else {
				cb(-1, abi.ENOTDIR)
			}
			return
		}
		k.FS.Open(ap, flags, mode, func(h fs.FileHandle, err abi.Errno) {
			if err != abi.OK {
				cb(-1, err)
				return
			}
			cb(t.installFd(NewDesc(newFSFile(h, flags), flags, ap)), abi.OK)
		})
	})
}

func (k *Kernel) doPipe2(t *Task) (int, int) {
	r, w := NewPipePair()
	// SIGPIPE goes to the writing process, as on Unix.
	w.(*pipeEnd).sigPipe = func() { k.signalTask(t, abi.SIGPIPE) }
	r.(*pipeEnd).p.onState = k.pollKick
	rfd := t.installFd(NewDesc(r, abi.O_RDONLY, r.(*pipeEnd).String()))
	wfd := t.installFd(NewDesc(w, abi.O_WRONLY, w.(*pipeEnd).String()))
	return rfd, wfd
}

func (k *Kernel) doDup2(t *Task, oldfd, newfd int) abi.Errno {
	d, err := t.lookFd(oldfd)
	if err != abi.OK {
		return err
	}
	if oldfd == newfd {
		return abi.OK
	}
	if _, exists := t.files[newfd]; exists {
		t.closeFd(newfd, func(abi.Errno) {})
	}
	d.Ref()
	t.files[newfd] = d
	return abi.OK
}

func (k *Kernel) doChdir(t *Task, p string, cb func(abi.Errno)) {
	// Store the walker-resolved canonical path, not a lexical cleaning:
	// with symlinks in play the two can name different directories.
	k.FS.Resolve(t.abs(p), func(rp string, st abi.Stat, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		if !st.IsDir() {
			cb(abi.ENOTDIR)
			return
		}
		t.cwd = rp
		cb(abi.OK)
	})
}

// sockFd fetches a descriptor that must be a socket.
func (t *Task) sockFd(fd int) (*Socket, abi.Errno) {
	d, err := t.lookFd(fd)
	if err != abi.OK {
		return nil, err
	}
	s, ok := d.file.(*Socket)
	if !ok {
		return nil, abi.ENOTSOCK
	}
	return s, abi.OK
}

// ---------------------------------------------------------------------------
// Asynchronous dispatch.
// ---------------------------------------------------------------------------

func errv(err abi.Errno) int64 { return int64(err) }

// dispatchAsync decodes cloned-argument system calls and encodes replies
// as [ret, errno, extra...] arrays.
func (k *Kernel) dispatchAsync(t *Task, name string, a []browser.Value, reply func(...browser.Value)) {
	argStr := func(i int) string {
		if i < len(a) {
			s, _ := a[i].(string)
			return s
		}
		return ""
	}
	argInt := func(i int) int64 {
		if i < len(a) {
			switch x := a[i].(type) {
			case int64:
				return x
			case int:
				return int64(x)
			case float64:
				return int64(x)
			}
		}
		return 0
	}
	argBytes := func(i int) []byte {
		if i < len(a) {
			b, _ := a[i].([]byte)
			return b
		}
		return nil
	}
	argStrs := func(i int) []string {
		if i < len(a) {
			if arr, ok := a[i].([]browser.Value); ok {
				return browser.Strings(arr)
			}
		}
		return nil
	}
	argInts := func(i int) []int {
		var out []int
		if i < len(a) {
			if arr, ok := a[i].([]browser.Value); ok {
				for _, v := range arr {
					switch x := v.(type) {
					case int64:
						out = append(out, int(x))
					case int:
						out = append(out, x)
					case float64:
						out = append(out, int(x))
					}
				}
			}
		}
		return out
	}

	switch name {
	case "personality":
		// Sync-syscall registration (§3.2): heap + return-value offset
		// + wake offset.
		sab, _ := a[0].(*browser.SAB)
		if sab == nil {
			reply(int64(-1), errv(abi.EINVAL))
			return
		}
		t.heap = sab
		t.retOff = int(argInt(1))
		t.waitOff = int(argInt(2))
		reply(int64(0), errv(abi.OK))

	case "ring":
		// Ring-transport negotiation (after personality): request and
		// reply ring regions inside the registered heap.
		err := k.registerRing(t, argInt(0), argInt(1), argInt(2), argInt(3))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		reply(int64(0), errv(abi.OK))

	case "pagepool":
		// Page-pool negotiation (after the ring): the kernel shares its
		// page-cache arena as a SharedArrayBuffer, and the process may
		// issue readg calls answered with page grants against it.
		// Refusal leaves the process on the copy path.
		if k.DisableZeroCopy || t.heap == nil || t.ring == nil {
			reply(int64(-1), errv(abi.ENOSYS))
			return
		}
		t.pool = true
		reply(int64(0), errv(abi.OK), k.pagePoolSAB())

	case "snapcap":
		// Post-boot snapshot capture (internal/snapshot): the process
		// reports its negotiated transport state and the kernel freezes
		// its heap and fd/env/cwd template as the runtime's image.
		k.doSnapcap(t, argInt(0) != 0, argInt(1) != 0, argInt(2), reply)

	case "restore":
		// Clone-boot restore: one combined registration replacing the
		// personality + ring + pagepool negotiation round trips.
		k.doRestore(t, a, argInt, reply)

	case "open":
		k.doOpen(t, argStr(0), int(argInt(1)), uint32(argInt(2)), func(fd int, err abi.Errno) {
			reply(int64(fd), errv(err))
		})
	case "close":
		t.closeFd(int(argInt(0)), func(err abi.Errno) { reply(int64(0), errv(err)) })
	case "read":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.file.Read(d, int(argInt(1)), func(data []byte, err abi.Errno) {
			reply(int64(len(data)), errv(err), data)
		})
	case "write":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		// The cloned message's buffer is uniquely ours, so ownership can
		// transfer to the file (zero-copy into pipes).
		writeMoved(d, argBytes(1), func(n int, err abi.Errno) {
			reply(int64(n), errv(err))
		})
	case "readv":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		lens := argInts(1)
		if len(lens) > 1024 {
			reply(int64(-1), errv(abi.EINVAL))
			return
		}
		total := 0
		for _, n := range lens {
			if n < 0 {
				reply(int64(-1), errv(abi.EINVAL))
				return
			}
			total += n
		}
		readGather(d, total, func(segs [][]byte, rerr abi.Errno) {
			if rerr != abi.OK {
				reply(int64(-1), errv(rerr))
				return
			}
			arr := make([]browser.Value, len(segs))
			var n int64
			for i, s := range segs {
				arr[i] = s
				n += int64(len(s))
			}
			reply(n, errv(abi.OK), arr)
		})
	case "writev":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		var bufs [][]byte
		if 1 < len(a) {
			if arr, ok := a[1].([]browser.Value); ok {
				for _, v := range arr {
					if b, ok := v.([]byte); ok && len(b) > 0 {
						bufs = append(bufs, b)
					}
				}
			}
		}
		writevBufs(d, bufs, func(n int64, werr abi.Errno) {
			reply(n, errv(werr))
		})
	case "pread":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.file.Pread(argInt(2), int(argInt(1)), func(data []byte, err abi.Errno) {
			reply(int64(len(data)), errv(err), data)
		})
	case "pwrite":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.file.Pwrite(argInt(2), argBytes(1), func(n int, err abi.Errno) {
			reply(int64(n), errv(err))
		})
	case "llseek":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.file.Seek(d, argInt(1), int(argInt(2)), func(off int64, err abi.Errno) {
			reply(off, errv(err))
		})
	case "ftruncate":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.file.Truncate(argInt(1), func(err abi.Errno) { reply(int64(0), errv(err)) })
	case "fsync":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		syncFile(d.file, func(err abi.Errno) { reply(int64(0), errv(err)) })
	case "fstat":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.file.Stat(func(st abi.Stat, err abi.Errno) {
			reply(int64(0), errv(err), statValue(st))
		})
	case "stat":
		k.FS.Stat(t.abs(argStr(0)), func(st abi.Stat, err abi.Errno) {
			reply(int64(0), errv(err), statValue(st))
		})
	case "lstat":
		k.FS.Lstat(t.abs(argStr(0)), func(st abi.Stat, err abi.Errno) {
			reply(int64(0), errv(err), statValue(st))
		})
	case "access":
		k.FS.Access(t.abs(argStr(0)), int(argInt(1)), func(err abi.Errno) {
			reply(int64(0), errv(err))
		})
	case "readlink":
		k.FS.Readlink(t.abs(argStr(0)), func(target string, err abi.Errno) {
			reply(int64(len(target)), errv(err), target)
		})
	case "utimes":
		k.FS.Utimes(t.abs(argStr(0)), argInt(1), argInt(2), func(err abi.Errno) {
			reply(int64(0), errv(err))
		})
	case "unlink":
		k.FS.Unlink(t.abs(argStr(0)), func(err abi.Errno) { reply(int64(0), errv(err)) })
	case "rmdir":
		k.FS.Rmdir(t.abs(argStr(0)), func(err abi.Errno) { reply(int64(0), errv(err)) })
	case "mkdir":
		k.FS.Mkdir(t.abs(argStr(0)), uint32(argInt(1)), func(err abi.Errno) {
			reply(int64(0), errv(err))
		})
	case "rename":
		k.FS.Rename(t.abs(argStr(0)), t.abs(argStr(1)), func(err abi.Errno) {
			reply(int64(0), errv(err))
		})
	case "symlink":
		k.FS.Symlink(argStr(0), t.abs(argStr(1)), func(err abi.Errno) {
			reply(int64(0), errv(err))
		})
	case "getdents", "readdir":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.file.Getdents(d, func(ents []abi.Dirent, err abi.Errno) {
			arr := make([]browser.Value, len(ents))
			for i, e := range ents {
				m := abi.DirentToMap(e)
				vm := make(map[string]browser.Value, len(m))
				for kk, vv := range m {
					vm[kk] = vv
				}
				arr[i] = vm
			}
			reply(int64(len(ents)), errv(err), arr)
		})
	case "dup2":
		err := k.doDup2(t, int(argInt(0)), int(argInt(1)))
		reply(argInt(1), errv(err))
	case "pipe2":
		rfd, wfd := k.doPipe2(t)
		reply(int64(0), errv(abi.OK), int64(rfd), int64(wfd))
	case "spawn":
		k.doSpawn(t, argStr(0), argStrs(1), argStrs(2), argInts(3), func(pid int, err abi.Errno) {
			reply(int64(pid), errv(err))
		})
	case "fork":
		img := &ForkImage{Mem: argBytes(0), Label: argStr(1)}
		k.doFork(t, img, func(pid int, err abi.Errno) {
			reply(int64(pid), errv(err))
		})
	case "exec":
		k.doExec(t, argStr(0), argStrs(1), argStrs(2), func(err abi.Errno) {
			// Only failures produce a reply; on success the old image
			// is gone.
			reply(int64(-1), errv(err))
		})
	case "wait4":
		k.doWait4(t, int(argInt(0)), int(argInt(1)), func(pid, status int, err abi.Errno) {
			reply(int64(pid), errv(err), int64(status))
		})
	case "exit":
		k.doExit(t, int(argInt(0)))
	case "kill":
		reply(int64(0), errv(k.doKill(int(argInt(0)), int(argInt(1)))))
	case "signal":
		reply(int64(0), errv(k.doSignalAction(t, int(argInt(0)), int(argInt(1)))))
	case "getpid":
		reply(int64(t.Pid), errv(abi.OK))
	case "getppid":
		reply(int64(t.ParentPid), errv(abi.OK))
	case "getcwd":
		reply(int64(len(t.cwd)), errv(abi.OK), t.cwd)
	case "chdir":
		k.doChdir(t, argStr(0), func(err abi.Errno) { reply(int64(0), errv(err)) })

	case "socket":
		fd := t.installFd(NewDesc(k.NewSocket(), abi.O_RDWR, "socket:"))
		reply(int64(fd), errv(abi.OK))
	case "bind":
		s, err := t.sockFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		reply(int64(0), errv(k.BindSocket(s, int(argInt(1)))))
	case "listen":
		s, err := t.sockFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		reply(int64(0), errv(k.ListenSocket(s, int(argInt(1)))))
	case "accept":
		// Optional second arg carries accept4-style flags: O_NONBLOCK
		// makes this accept non-blocking and marks the new connection.
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		s, ok := d.file.(*Socket)
		if !ok {
			reply(int64(-1), errv(abi.ENOTSOCK))
			return
		}
		connFlags := abi.O_RDWR | int(argInt(1))&abi.O_NONBLOCK
		nonblock := d.flags&abi.O_NONBLOCK != 0 || int(argInt(1))&abi.O_NONBLOCK != 0
		k.AcceptSocket(s, nonblock, func(conn *Socket, err abi.Errno) {
			if err != abi.OK {
				reply(int64(-1), errv(err))
				return
			}
			fd := t.installFd(NewDesc(conn, connFlags, "socket:conn"))
			reply(int64(fd), errv(abi.OK))
		})
	case "connect":
		s, err := t.sockFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		k.ConnectSocket(s, int(argInt(1)), func(err abi.Errno) {
			reply(int64(0), errv(err))
		})
	case "getsockname":
		s, err := t.sockFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		reply(int64(s.port), errv(abi.OK))
	case "poll":
		// Args: flat [fd0, events0, fd1, events1, ...] array + timeout
		// ns. Reply extra: flat [revents0, revents1, ...] array.
		raw := argInts(0)
		if len(raw)%2 != 0 || len(raw)/2 > 4096 {
			reply(int64(-1), errv(abi.EINVAL))
			return
		}
		fds := make([]abi.Pollfd, len(raw)/2)
		for i := range fds {
			fds[i] = abi.Pollfd{Fd: int32(raw[2*i]), Events: uint32(raw[2*i+1])}
		}
		k.doPoll(t, fds, argInt(1), func(n int, err abi.Errno) {
			rev := make([]browser.Value, len(fds))
			for i := range fds {
				rev[i] = int64(fds[i].Revents)
			}
			reply(int64(n), errv(err), rev)
		})
	case "setfl":
		d, err := t.lookFd(int(argInt(0)))
		if err != abi.OK {
			reply(int64(-1), errv(err))
			return
		}
		d.flags = d.flags&^abi.O_NONBLOCK | int(argInt(1))&abi.O_NONBLOCK
		reply(int64(0), errv(abi.OK))

	default:
		reply(int64(-1), errv(abi.ENOSYS))
	}
}

// SyscallTable returns the implemented system calls grouped by class —
// the contents of Figure 3 plus the extensions this reproduction adds
// (marked by the caller as needed).
func SyscallTable() map[string][]string {
	return map[string][]string{
		"Process Management": {"fork", "spawn", "exec", "pipe2", "wait4", "exit", "kill", "signal"},
		"Process Metadata":   {"chdir", "getcwd", "getpid", "getppid"},
		"Sockets":            {"socket", "bind", "getsockname", "listen", "accept", "connect", "poll", "setfl"},
		"Directory IO":       {"readdir", "getdents", "rmdir", "mkdir"},
		"File IO":            {"open", "close", "read", "write", "readv", "writev", "unlink", "llseek", "pread", "pwrite", "dup2", "ftruncate", "fsync", "rename", "symlink"},
		"File Metadata":      {"access", "fstat", "lstat", "stat", "readlink", "utimes"},
	}
}

// statValue converts a Stat into a message object.
func statValue(st abi.Stat) map[string]browser.Value {
	m := abi.StatToMap(st)
	vm := make(map[string]browser.Value, len(m))
	for k, v := range m {
		vm[k] = v
	}
	return vm
}
