package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/abi"
	_ "repro/internal/coreutils" // registers ls for TestLsOverBigDirectory
	"repro/internal/posix"
	"repro/internal/rt"
)

// t-bigdir creates a directory larger than one getdents chunk and
// proves the streaming contract: every call returns at most
// abi.DirentChunk entries, the chunks concatenate to the full listing
// with no duplicates, and rewinddir (seek 0) restarts the stream.
func init() {
	posix.Register(&posix.Program{Name: "t-bigdir", Main: func(p posix.Proc) int {
		const n = 300 // > 2 chunks of 128
		if err := p.Mkdir("/big", 0o755); err != abi.OK {
			return 1
		}
		for i := 0; i < n; i++ {
			fd, err := p.Open(fmt.Sprintf("/big/f%04d", i), abi.O_WRONLY|abi.O_CREAT, 0o644)
			if err != abi.OK {
				return 2
			}
			p.Close(fd)
		}
		fd, err := p.Open("/big", abi.O_RDONLY|abi.O_DIRECTORY, 0)
		if err != abi.OK {
			return 3
		}
		chunks := 0
		seen := map[string]bool{}
		for {
			ents, err := p.Getdents(fd)
			if err != abi.OK {
				return 4
			}
			if len(ents) == 0 {
				break
			}
			if len(ents) > abi.DirentChunk {
				return 5 // chunk bound violated
			}
			chunks++
			for _, e := range ents {
				if seen[e.Name] {
					return 6 // duplicate across chunks
				}
				seen[e.Name] = true
			}
		}
		// Rewind and drain again via the helper.
		if _, err := p.Seek(fd, 0, abi.SEEK_SET); err != abi.OK {
			return 7
		}
		again, rerr := posix.ReadDir(p, fd)
		p.Close(fd)
		if rerr != abi.OK {
			return 8
		}
		posix.Fprintf(p, abi.Stdout, "entries=%d chunks=%d rewind=%d\n", len(seen), chunks, len(again))
		return 0
	}})
}

// TestGetdentsStreamsLargeDirectories runs the streaming proof on all
// three transports: identical results, chunked delivery.
func TestGetdentsStreamsLargeDirectories(t *testing.T) {
	want := "entries=300 chunks=3 rewind=300\n"
	for _, c := range []struct {
		name        string
		kind        rt.Kind
		disableRing bool
	}{
		{"async-node", rt.NodeKind, false},
		{"sync-scalar", rt.EmSyncKind, true},
		{"sync-ring", rt.EmSyncKind, false},
	} {
		w := boot(t)
		w.k.DisableRing = c.disableRing
		w.install(t, "/usr/bin/t-bigdir", "t-bigdir", c.kind)
		code, out, errOut := w.run(t, "/usr/bin/t-bigdir")
		if code != 0 {
			t.Fatalf("%s: exited %d (stderr %q)", c.name, code, errOut)
		}
		if out != want {
			t.Errorf("%s: %q, want %q", c.name, out, want)
		}
	}
}

// TestLsOverBigDirectory: the `ls` utility (ReadDir + batched lstat
// storm) lists a multi-chunk directory completely and in order.
func TestLsOverBigDirectory(t *testing.T) {
	w := boot(t)
	w.install(t, "/usr/bin/ls", "ls", rt.EmSyncKind)
	w.mkdirAll(t, "/lots")
	for i := 0; i < 200; i++ {
		w.fs.WriteFile(fmt.Sprintf("/lots/e%03d", i), []byte("x"), 0o644, func(abi.Errno) {})
	}
	code, out, errOut := w.run(t, "ls -l /lots")
	if code != 0 {
		t.Fatalf("ls exited %d (stderr %q)", code, errOut)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 200 {
		t.Fatalf("ls printed %d lines, want 200", len(lines))
	}
	if !strings.HasSuffix(lines[0], "e000") || !strings.HasSuffix(lines[199], "e199") {
		t.Fatalf("ordering broken: first=%q last=%q", lines[0], lines[199])
	}
	// The -l stat storm must have travelled the fs batch entry point
	// (ring doorbell -> DispatchBatch -> FS.StatBatch).
	if w.k.FSBatchedCalls.Load() < 200 {
		t.Fatalf("FSBatchedCalls = %d, want >= 200 (ls -l storm batched)", w.k.FSBatchedCalls.Load())
	}
}
