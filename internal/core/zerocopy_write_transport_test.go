package core_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/abi"
	"repro/internal/posix"
	"repro/internal/rt"
)

// Zero-copy write path + batched grant reads: copied-bytes guards in
// both directions, the single-notify batched read doorbell, the
// write-path differential across transports and ablations, and the
// headline benchmarks.

// vfsContent reads a path through the VFS from the host side (memfs
// completes inline) — what a fresh reader would see.
func vfsContent(t testing.TB, w *world, p string) []byte {
	t.Helper()
	var out []byte
	ok := false
	w.fs.ReadFile(p, func(b []byte, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("read %s: %v", p, err)
		}
		out, ok = b, true
	})
	if !ok {
		t.Fatalf("read %s did not complete inline", p)
	}
	return out
}

func init() {
	// t-zcwseq: sequential chunked writes to a fresh file. Prints
	// NOTHING — the host verifies the bytes through the VFS, so the
	// copied-bytes ledger sees only the data plane.
	posix.Register(&posix.Program{Name: "t-zcwseq", Main: func(p posix.Proc) int {
		path := p.Args()[1]
		chunks, _ := strconv.Atoi(p.Args()[2])
		chunkLen, _ := strconv.Atoi(p.Args()[3])
		fd, err := p.Open(path, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, 0o644)
		if err != abi.OK {
			return 1
		}
		for i := 0; i < chunks; i++ {
			b := zcPattern(byte(i), chunkLen)
			n, werr := p.Write(fd, b)
			if werr != abi.OK || n != len(b) {
				return 2
			}
		}
		if p.Close(fd) != abi.OK {
			return 3
		}
		return 0
	}})

	// t-zccat: cat a file to stdout in fixed chunks (no report line).
	posix.Register(&posix.Program{Name: "t-zccat", Main: func(p posix.Proc) int {
		fd, err := p.Open(p.Args()[1], abi.O_RDONLY, 0)
		if err != abi.OK {
			return 1
		}
		for {
			b, rerr := p.Read(fd, 8192)
			if rerr != abi.OK {
				return 2
			}
			if len(b) == 0 {
				break
			}
			off := 0
			for off < len(b) {
				n, werr := p.Write(abi.Stdout, b[off:])
				if werr != abi.OK || n <= 0 {
					return 3
				}
				off += n
			}
		}
		p.Close(fd)
		return 0
	}})

	// t-zcwcv: count and hash stdin to EOF, verify against args, exit
	// code is the report (no write outside the pipe).
	posix.Register(&posix.Program{Name: "t-zcwcv", Main: func(p posix.Proc) int {
		wantN, _ := strconv.Atoi(p.Args()[1])
		wantH, _ := strconv.Atoi(p.Args()[2])
		total, sum := 0, 0
		for {
			b, err := p.Read(abi.Stdin, 8192)
			if err != abi.OK {
				return 4
			}
			if len(b) == 0 {
				break
			}
			total += len(b)
			sum = zcHash(sum, b)
		}
		if total != wantN || sum != wantH {
			return 7
		}
		return 0
	}})

	// t-zcpipe: cat <file> | wc, wired with an anonymous pipe; both ends
	// verify, the parent prints nothing and folds the children's exit
	// codes into its own.
	posix.Register(&posix.Program{Name: "t-zcpipe", Main: func(p posix.Proc) int {
		path, wantN, wantH := p.Args()[1], p.Args()[2], p.Args()[3]
		r, w, err := p.Pipe()
		if err != abi.OK {
			return 1
		}
		p1, err := p.Spawn("/usr/bin/t-zccat", []string{"t-zccat", path}, nil, []int{0, w, 2})
		if err != abi.OK {
			return 2
		}
		p2, err := p.Spawn("/usr/bin/t-zcwcv", []string{"t-zcwcv", wantN, wantH}, nil, []int{r, 1, 2})
		if err != abi.OK {
			return 3
		}
		p.Close(r)
		p.Close(w)
		_, st1, _ := p.Wait4(p1, 0)
		_, st2, _ := p.Wait4(p2, 0)
		if c := abi.WEXITSTATUS(st1); c != 0 {
			return 10 + c
		}
		if c := abi.WEXITSTATUS(st2); c != 0 {
			return 20 + c
		}
		return 0
	}})

	// t-zcwmix: a mixed write workload — append storm, overwrite patch,
	// dup2 over a staging descriptor, fsync, pipe loopback — ending in a
	// self-read report. Byte-identical output is the differential's
	// contract across transports and ablations.
	posix.Register(&posix.Program{Name: "t-zcwmix", Main: func(p posix.Proc) int {
		// 1. Append storm.
		fd, err := p.Open("/data/f", abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, 0o644)
		if err != abi.OK {
			return 1
		}
		for i := 0; i < 120; i++ {
			line := []byte(fmt.Sprintf("storm line %04d with some padding padding padding\n", i))
			if n, werr := p.Write(fd, line); werr != abi.OK || n != len(line) {
				return 2
			}
		}
		// 2. Overwrite patch through a second descriptor + fsync.
		fd2, err := p.Open("/data/f", abi.O_WRONLY, 0)
		if err != abi.OK {
			return 3
		}
		if _, werr := p.Pwrite(fd2, []byte("<<PATCHED>>"), 4096); werr != abi.OK {
			return 4
		}
		if p.Fsync(fd2) != abi.OK {
			return 5
		}
		// 3. dup2 over a descriptor holding staging slots: its leases
		// must return, and writes through the duped fd keep working.
		if p.Dup2(fd, fd2) != abi.OK {
			return 6
		}
		if n, werr := p.Write(fd2, []byte("tail after dup2\n")); werr != abi.OK || n <= 0 {
			return 7
		}
		p.Close(fd2)
		p.Close(fd)
		// 4. Pipe loopback inside one process (stays under the pipe
		// capacity so the single thread cannot deadlock).
		r, w, err := p.Pipe()
		if err != abi.OK {
			return 8
		}
		loop := zcPattern(9, 4096)
		if n, werr := p.Write(w, loop); werr != abi.OK || n != len(loop) {
			return 9
		}
		back, rerr := readN(p, r, len(loop))
		if rerr != abi.OK {
			return 10
		}
		p.Close(w)
		p.Close(r)
		// 5. Report: re-read the file and print sizes and hashes.
		rfd, err := p.Open("/data/f", abi.O_RDONLY, 0)
		if err != abi.OK {
			return 11
		}
		all, rerr := readN(p, rfd, 1<<20)
		if rerr != abi.OK {
			return 12
		}
		p.Close(rfd)
		posix.Fprintf(p, abi.Stdout, "file n=%d hash=%d pipe n=%d hash=%d\n",
			len(all), zcHash(0, all), len(back), zcHash(0, back))
		return 0
	}})

	// t-zcrbatch: after an in-process warm-up read, re-read the file
	// `repeats` times either through the batched grant-read entry point
	// or as one plain read per frame, and verify every pass agrees with
	// the warm-up. Exit code is the report; repeats amortize boot cost
	// out of the benchmark's steady-state measurement.
	posix.Register(&posix.Program{Name: "t-zcrbatch", Main: func(p posix.Proc) int {
		path, mode := p.Args()[1], p.Args()[2]
		frames, _ := strconv.Atoi(p.Args()[3])
		chunk, _ := strconv.Atoi(p.Args()[4])
		repeats, _ := strconv.Atoi(p.Args()[5])
		st, err := p.Stat(path)
		if err != abi.OK {
			return 1
		}
		size := int(st.Size)
		fd, err := p.Open(path, abi.O_RDONLY, 0)
		if err != abi.OK {
			return 2
		}
		warm, rerr := readN(p, fd, size)
		if rerr != abi.OK || len(warm) != size {
			return 3
		}
		wantHash := zcHash(0, warm)
		for pass := 0; pass < repeats; pass++ {
			if _, err := p.Seek(fd, 0, abi.SEEK_SET); err != abi.OK {
				return 4
			}
			var got []byte
			if mode == "batch" {
				rb, ok := p.(interface {
					ReadBatch(fd, chunk, frames int) ([]byte, abi.Errno)
				})
				if !ok {
					return 8
				}
				got, rerr = rb.ReadBatch(fd, chunk, frames)
				if rerr != abi.OK {
					return 5
				}
			} else {
				for i := 0; i < frames; i++ {
					b, rerr := p.Read(fd, chunk)
					if rerr != abi.OK {
						return 5
					}
					if len(b) == 0 {
						break
					}
					got = append(got, b...)
				}
			}
			if len(got) != size || zcHash(0, got) != wantHash {
				return 6
			}
		}
		p.Close(fd)
		return 0
	}})
}

// TestZeroCopyWarmWriteZeroCopiedBytes is the write-direction acceptance
// guard: a sequential write workload over the ring transport with
// write-back on moves ZERO payload bytes through kernel copies — every
// byte is staged by the guest and adopted by reference — and the append
// storm reaches the backend as ONE vectored write.
func TestZeroCopyWarmWriteZeroCopiedBytes(t *testing.T) {
	w := boot(t)
	w.fs.SetWriteBack(true)
	w.mkdirAll(t, "/data")
	w.install(t, "/usr/bin/t-zcwseq", "t-zcwseq", rt.EmSyncKind)

	const chunks, chunkLen = 150, 1000
	flushesBefore := w.fs.CacheStats().FlushWrites
	code, out, errOut := w.run(t, fmt.Sprintf("/usr/bin/t-zcwseq /data/out.bin %d %d", chunks, chunkLen))
	if code != 0 {
		t.Fatalf("t-zcwseq exited %d (%q %q)", code, out, errOut)
	}
	if got := w.k.WriteCopiedBytes.Load(); got != 0 {
		t.Fatalf("sequential staged writes copied %d payload bytes through the kernel, want 0", got)
	}
	if got := w.k.WriteGrantedBytes.Load(); got != chunks*chunkLen {
		t.Fatalf("WriteGrantedBytes = %d, want %d", got, chunks*chunkLen)
	}
	if d := w.fs.CacheStats().FlushWrites - flushesBefore; d != 1 {
		t.Fatalf("append storm flushed as %d vectored backend writes, want 1", d)
	}
	// The bytes are right, end to end.
	want := make([]byte, 0, chunks*chunkLen)
	for i := 0; i < chunks; i++ {
		want = append(want, zcPattern(byte(i), chunkLen)...)
	}
	got := vfsContent(t, w, "/data/out.bin")
	if string(got) != string(want) {
		t.Fatalf("written content differs (%d vs %d bytes)", len(got), len(want))
	}
	// And the lease ledger balances: staging slots all came back.
	if w.k.LeaseGrants.Load() == 0 {
		t.Fatalf("no staging leases taken — the zero-copy write path never engaged")
	}
	if g, r := w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load(); g != r {
		t.Fatalf("leases leaked: %d granted, %d returned", g, r)
	}
	if w.fs.WriteStagedSlots() != 0 {
		t.Fatalf("%d write-staging slots still leased after exit", w.fs.WriteStagedSlots())
	}
	if pins := w.fs.CacheStats().PinnedPages; pins != 0 {
		t.Fatalf("%d pool pages still pinned after flush + exit", pins)
	}
}

// TestZeroCopyPipelineBothDirectionsZeroCopied: a warm `cat | wc`
// moves every payload byte by grant — file to cat by page lease, cat to
// wc by staged-slot adoption and pipe grants — with zero kernel copies
// in either direction.
func TestZeroCopyPipelineBothDirectionsZeroCopied(t *testing.T) {
	content := zcPattern(7, 256*1024)
	w := boot(t)
	w.fs.SetWriteBack(true)
	mountRO(t, w, map[string][]byte{"/pipe.bin": content})
	for _, prog := range []string{"t-zcpipe", "t-zccat", "t-zcwcv"} {
		w.install(t, "/usr/bin/"+prog, prog, rt.EmSyncKind)
	}
	cmd := fmt.Sprintf("/usr/bin/t-zcpipe /ro/pipe.bin %d %d", len(content), zcHash(0, content))

	// Cold run: the file enters the page cache through the copy path.
	code, out, errOut := w.run(t, cmd)
	if code != 0 {
		t.Fatalf("cold pipeline exited %d (%q %q)", code, out, errOut)
	}
	rc, wc := w.k.ReadCopiedBytes.Load(), w.k.WriteCopiedBytes.Load()

	// Warm run: both directions fully granted.
	code, out, errOut = w.run(t, cmd)
	if code != 0 {
		t.Fatalf("warm pipeline exited %d (%q %q)", code, out, errOut)
	}
	if d := w.k.ReadCopiedBytes.Load() - rc; d != 0 {
		t.Fatalf("warm pipeline copied %d bytes kernel->process, want 0", d)
	}
	if d := w.k.WriteCopiedBytes.Load() - wc; d != 0 {
		t.Fatalf("warm pipeline copied %d bytes process->kernel, want 0", d)
	}
	if w.k.WriteGrantedBytes.Load() < int64(2*len(content)) {
		t.Fatalf("WriteGrantedBytes = %d, want >= %d (two full pipe passes)",
			w.k.WriteGrantedBytes.Load(), 2*len(content))
	}
	if g, r := w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load(); g != r {
		t.Fatalf("leases leaked: %d granted, %d returned", g, r)
	}
	if pins := w.fs.CacheStats().PinnedPages; pins != 0 {
		t.Fatalf("%d pool pages still pinned after exit", pins)
	}
}

// TestZeroCopyWriteDifferential runs the mixed write workload on the
// async, scalar and ring transports, each with the zero-copy write path
// on and off and write-back on and off: all twelve outputs must be
// byte-identical, and the ring configurations must balance their lease
// ledger exactly.
func TestZeroCopyWriteDifferential(t *testing.T) {
	outputs := map[string]string{}
	for _, c := range []struct {
		name        string
		kind        rt.Kind
		disableRing bool
	}{
		{"async-node", rt.NodeKind, false},
		{"sync-scalar", rt.EmSyncKind, true},
		{"sync-ring", rt.EmSyncKind, false},
	} {
		for _, disableZCW := range []bool{false, true} {
			for _, writeBack := range []bool{true, false} {
				name := fmt.Sprintf("%s zcw=%v wb=%v", c.name, !disableZCW, writeBack)
				w := boot(t)
				w.k.DisableRing = c.disableRing
				w.k.DisableZeroCopyWrite = disableZCW
				w.fs.SetWriteBack(writeBack)
				w.mkdirAll(t, "/data")
				w.install(t, "/usr/bin/t-zcwmix", "t-zcwmix", c.kind)
				code, out, errOut := w.run(t, "/usr/bin/t-zcwmix")
				if code != 0 {
					t.Fatalf("%s: exited %d (stdout %q stderr %q)", name, code, out, errOut)
				}
				outputs[name] = out
				if c.name == "sync-ring" && !disableZCW && writeBack {
					if w.k.WriteGrantedBytes.Load() == 0 {
						t.Errorf("%s: no bytes adopted by reference — write-grant path unused", name)
					}
				}
				if g, r := w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load(); g != r {
					t.Errorf("%s: leases leaked (%d granted, %d returned)", name, g, r)
				}
				if w.fs.WriteStagedSlots() != 0 {
					t.Errorf("%s: %d staging slots leaked", name, w.fs.WriteStagedSlots())
				}
				if pins := w.fs.CacheStats().PinnedPages; pins != 0 {
					t.Errorf("%s: %d pages still pinned", name, pins)
				}
			}
		}
	}
	var want string
	for _, out := range outputs {
		want = out
		break
	}
	for name, out := range outputs {
		if out != want {
			t.Errorf("%s diverges:\n%q\nvs\n%q", name, out, want)
		}
	}
}

// TestZeroCopyWriteDeterministicClock: repeat runs of the same ring
// configuration land on the same virtual clock — the staged write path
// is as deterministic as everything else.
func TestZeroCopyWriteDeterministicClock(t *testing.T) {
	elapsed := func() int64 {
		w := boot(t)
		w.fs.SetWriteBack(true)
		w.mkdirAll(t, "/data")
		w.install(t, "/usr/bin/t-zcwmix", "t-zcwmix", rt.EmSyncKind)
		t0 := w.sim.Now()
		code, out, errOut := w.run(t, "/usr/bin/t-zcwmix")
		if code != 0 {
			t.Fatalf("t-zcwmix exited %d (%q %q)", code, out, errOut)
		}
		return w.sim.Now() - t0
	}
	a, b := elapsed(), elapsed()
	if a != b {
		t.Fatalf("virtual clocks diverged between identical runs: %d vs %d ns", a, b)
	}
}

// TestBatchedGrantReadSingleNotify: a 64-frame same-fd read run pushed
// through one doorbell resolves with one vectored cache pass (63 frames
// batched) and dramatically fewer wakes than frame-at-a-time reads.
func TestBatchedGrantReadSingleNotify(t *testing.T) {
	const frames, chunk = 64, 4096
	content := zcPattern(8, frames*chunk)
	run := func(mode string) *world {
		w := boot(t)
		mountRO(t, w, map[string][]byte{"/batch.bin": content})
		w.install(t, "/usr/bin/t-zcrbatch", "t-zcrbatch", rt.EmSyncKind)
		code, out, errOut := w.run(t,
			fmt.Sprintf("/usr/bin/t-zcrbatch /ro/batch.bin %s %d %d 1", mode, frames, chunk))
		if code != 0 {
			t.Fatalf("t-zcrbatch %s exited %d (%q %q)", mode, code, out, errOut)
		}
		if g, r := w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load(); g != r {
			t.Fatalf("%s: leases leaked (%d granted, %d returned)", mode, g, r)
		}
		if pins := w.fs.CacheStats().PinnedPages; pins != 0 {
			t.Fatalf("%s: %d pages still pinned", mode, pins)
		}
		return w
	}
	wb := run("batch")
	if got := wb.k.BatchedGrantReads.Load(); got < frames-1 {
		t.Fatalf("BatchedGrantReads = %d, want >= %d (one vectored pass for the run)", got, frames-1)
	}
	ws := run("seq")
	if wb.k.RingNotifies.Load()+int64(frames)-4 > ws.k.RingNotifies.Load() {
		t.Fatalf("batched run woke %d times vs sequential %d — the doorbell was not answered once",
			wb.k.RingNotifies.Load(), ws.k.RingNotifies.Load())
	}
}

// zcwBenchRun writes passes x size bytes sequentially in a fresh world
// and reports the virtual time the run took.
func zcwBenchRun(t testing.TB, disableZCW bool, chunks, chunkLen int) int64 {
	w := boot(t)
	w.k.DisableZeroCopyWrite = disableZCW
	w.fs.SetWriteBack(true)
	w.mkdirAll(t, "/data")
	w.install(t, "/usr/bin/t-zcwseq", "t-zcwseq", rt.EmSyncKind)
	t0 := w.sim.Now()
	code, out, errOut := w.run(t, fmt.Sprintf("/usr/bin/t-zcwseq /data/out.bin %d %d", chunks, chunkLen))
	if code != 0 {
		t.Fatalf("t-zcwseq exited %d (%q %q)", code, out, errOut)
	}
	return w.sim.Now() - t0
}

// BenchmarkZeroCopyWrite reports sequential-write throughput (virtual
// MB/s) of the staged-grant path against the copy path. Bulk-sized
// chunks: steady state the staged path costs one doorbell per write
// (the replenishing wgalloc rides the writeg batch) and moves no bytes
// through the kernel, so the per-byte crossing charge is the margin.
// A zero-chunk run of the same program is subtracted to isolate the
// write phase from boot/spawn (exact — the clock is deterministic).
func BenchmarkZeroCopyWrite(b *testing.B) {
	const chunks, chunkLen = 10, 786432
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"grant", false},
		{"copy", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var bytes, elapsed int64
			for i := 0; i < b.N; i++ {
				base := zcwBenchRun(b, cfg.disable, 0, chunkLen)
				elapsed += zcwBenchRun(b, cfg.disable, chunks, chunkLen) - base
				bytes += chunks * chunkLen
			}
			if elapsed > 0 {
				b.ReportMetric(float64(bytes)/(float64(elapsed)/1e9)/1e6, "virtMB/s")
			}
		})
	}
}

// BenchmarkBatchedGrantRead reports the batched grant-read run against
// frame-at-a-time reads of the same warm file (virtual MB/s). Several
// passes per process amortize boot out of the steady-state number.
func BenchmarkBatchedGrantRead(b *testing.B) {
	const frames, chunk, repeats = 64, 4096, 6
	content := zcPattern(8, frames*chunk)
	for _, mode := range []string{"batch", "seq"} {
		b.Run(mode, func(b *testing.B) {
			var bytes, elapsed int64
			for i := 0; i < b.N; i++ {
				w := boot(b)
				mountRO(b, w, map[string][]byte{"/batch.bin": content})
				w.install(b, "/usr/bin/t-zcrbatch", "t-zcrbatch", rt.EmSyncKind)
				t0 := w.sim.Now()
				code, out, errOut := w.run(b,
					fmt.Sprintf("/usr/bin/t-zcrbatch /ro/batch.bin %s %d %d %d", mode, frames, chunk, repeats))
				if code != 0 {
					b.Fatalf("t-zcrbatch exited %d (%q %q)", code, out, errOut)
				}
				elapsed += w.sim.Now() - t0
				bytes += repeats * frames * chunk
			}
			if elapsed > 0 {
				b.ReportMetric(float64(bytes)/(float64(elapsed)/1e9)/1e6, "virtMB/s")
			}
		})
	}
}
