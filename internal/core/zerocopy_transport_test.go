package core_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/abi"
	"repro/internal/fs"
	"repro/internal/posix"
	"repro/internal/rt"
)

// Zero-copy read path: copied-bytes guard, throughput guard + benchmark,
// and the lease-revocation differential across transports.

// zcPattern fills n bytes deterministically, seeded by tag.
func zcPattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(tag)*31 + i*7)
	}
	return b
}

// mountRO stages files on a read-only (page-cacheable) memfs at /ro.
func mountRO(t testing.TB, w *world, files map[string][]byte) {
	clock := func() int64 { return w.sim.Now() }
	img := fs.NewMemFS(clock)
	stage := fs.NewFileSystem(img, clock)
	for p, data := range files {
		var werr abi.Errno = -1
		stage.WriteFile(p, data, 0o644, func(err abi.Errno) { werr = err })
		if werr != abi.OK {
			t.Fatalf("stage %s: %v", p, werr)
		}
	}
	img.SetReadOnly()
	w.fs.Mount("/ro", img)
}

// mountOverlay stages files on the lower layer of an overlay at /ov —
// page-cacheable AND mutable, which is what the revocation races need.
func mountOverlay(t testing.TB, w *world, files map[string][]byte) {
	clock := func() int64 { return w.sim.Now() }
	lower := fs.NewMemFS(clock)
	stage := fs.NewFileSystem(lower, clock)
	for p, data := range files {
		var werr abi.Errno = -1
		stage.WriteFile(p, data, 0o644, func(err abi.Errno) { werr = err })
		if werr != abi.OK {
			t.Fatalf("stage %s: %v", p, werr)
		}
	}
	lower.SetReadOnly()
	upper := fs.NewMemFS(clock)
	w.fs.Mount("/ov", fs.NewOverlayFS(upper, lower))
}

func zcHash(sum int, b []byte) int {
	for _, c := range b {
		sum = (sum*131 + int(c)) % 1000003
	}
	return sum
}

// readN accumulates exactly n bytes (or to EOF) so short reads cannot
// make transports diverge.
func readN(p posix.Proc, fd, n int) ([]byte, abi.Errno) {
	var out []byte
	for len(out) < n {
		b, err := p.Read(fd, n-len(out))
		if err != abi.OK {
			return out, err
		}
		if len(b) == 0 {
			break
		}
		out = append(out, b...)
	}
	return out, abi.OK
}

func init() {
	// t-zcread: sequential chunked read of a file, hash printed.
	posix.Register(&posix.Program{Name: "t-zcread", Main: func(p posix.Proc) int {
		path := p.Args()[1]
		fd, err := p.Open(path, abi.O_RDONLY, 0)
		if err != abi.OK {
			return 1
		}
		total, sum := 0, 0
		for {
			b, rerr := p.Read(fd, 64*1024)
			if rerr != abi.OK {
				return 2
			}
			if len(b) == 0 {
				break
			}
			sum = zcHash(sum, b)
			total += len(b)
		}
		p.Close(fd)
		posix.Fprintf(p, abi.Stdout, "read=%d hash=%d\n", total, sum)
		return 0
	}})

	// t-zcbench: one cold pass, then N warm whole-file reads (one big
	// read request per pass — one crossing on the grant path).
	posix.Register(&posix.Program{Name: "t-zcbench", Main: func(p posix.Proc) int {
		path := p.Args()[1]
		passes, _ := strconv.Atoi(p.Args()[2])
		st, err := p.Stat(path)
		if err != abi.OK {
			return 1
		}
		size := int(st.Size)
		fd, err := p.Open(path, abi.O_RDONLY, 0)
		if err != abi.OK {
			return 2
		}
		var sum, total int
		for i := 0; i <= passes; i++ { // pass 0 is the cold warm-up
			if _, err := p.Seek(fd, 0, abi.SEEK_SET); err != abi.OK {
				return 3
			}
			b, rerr := readN(p, fd, size)
			if rerr != abi.OK || len(b) != size {
				return 4
			}
			if i > 0 {
				sum = zcHash(sum, b)
				total += len(b)
			}
		}
		p.Close(fd)
		posix.Fprintf(p, abi.Stdout, "bench read=%d hash=%d\n", total, sum)
		return 0
	}})
}

// TestZeroCopyWarmReadZeroCopiedBytes is the acceptance guard: a warm
// cached read via the ring transport performs ZERO per-byte kernel
// copies — the whole file is served as page grants — and every lease is
// back by process exit.
func TestZeroCopyWarmReadZeroCopiedBytes(t *testing.T) {
	w := boot(t)
	content := zcPattern(1, 1<<20+100)
	mountRO(t, w, map[string][]byte{"/big.bin": content})
	w.install(t, "/usr/bin/t-zcread", "t-zcread", rt.EmSyncKind)

	code, cold, _ := w.run(t, "/usr/bin/t-zcread /ro/big.bin")
	if code != 0 {
		t.Fatalf("cold run exited %d", code)
	}
	if w.k.ReadCopiedBytes.Load() == 0 {
		t.Fatalf("cold run copied no bytes — miss path broken?")
	}
	copied, grants := w.k.ReadCopiedBytes.Load(), w.k.LeaseGrants.Load()

	code, warm, _ := w.run(t, "/usr/bin/t-zcread /ro/big.bin")
	if code != 0 {
		t.Fatalf("warm run exited %d", code)
	}
	if warm != cold {
		t.Fatalf("warm output %q differs from cold %q", warm, cold)
	}
	if d := w.k.ReadCopiedBytes.Load() - copied; d != 0 {
		t.Fatalf("warm cached read copied %d payload bytes, want 0 (grant path)", d)
	}
	if w.k.LeaseGrants.Load() == grants {
		t.Fatalf("warm run took no page leases — grant path unused")
	}
	if w.k.GrantedBytes.Load() < int64(len(content)) {
		t.Fatalf("GrantedBytes = %d, want >= %d", w.k.GrantedBytes.Load(), len(content))
	}
	if w.k.LeaseGrants.Load() != w.k.LeaseReturns.Load() {
		t.Fatalf("leases leaked: %d granted, %d returned", w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load())
	}
	if pins := w.fs.CacheStats().PinnedPages; pins != 0 {
		t.Fatalf("%d pool pages still pinned after exit", pins)
	}
}

// zcBenchRun executes t-zcbench in a fresh world and reports the bytes
// read warm and the virtual time the whole run took.
func zcBenchRun(t testing.TB, disableZeroCopy bool, passes int) (bytes int64, elapsed int64) {
	sizeBytes := int64(4<<20 + 100)
	w := boot(t)
	w.k.DisableZeroCopy = disableZeroCopy
	mountRO(t, w, map[string][]byte{"/big.bin": zcPattern(2, int(sizeBytes))})
	w.install(t, "/usr/bin/t-zcbench", "t-zcbench", rt.EmSyncKind)
	t0 := w.sim.Now()
	code, out, errOut := w.run(t, fmt.Sprintf("/usr/bin/t-zcbench /ro/big.bin %d", passes))
	if code != 0 {
		t.Fatalf("t-zcbench exited %d (%q %q)", code, out, errOut)
	}
	return sizeBytes * int64(passes), w.sim.Now() - t0
}

// TestZeroCopyWarmReadThroughput pins the acceptance bar: warm whole-
// file reads through the grant path are at least 2x faster (virtual
// time) than the same reads through the copy path.
func TestZeroCopyWarmReadThroughput(t *testing.T) {
	const passes = 100
	_, grantNs := zcBenchRun(t, false, passes)
	_, copyNs := zcBenchRun(t, true, passes)
	if copyNs < 2*grantNs {
		t.Fatalf("warm-read speedup %.2fx (grant %d ns, copy %d ns), want >= 2x",
			float64(copyNs)/float64(grantNs), grantNs, copyNs)
	}
}

// t-lease exercises every revocation race with leases outstanding:
// stale-fd bypass after unlink, truncate and rename under a lease, and a
// write-back flush overlapping leased pages. Output must be identical on
// every transport and write-back configuration.
func init() {
	posix.Register(&posix.Program{Name: "t-lease", Main: func(p posix.Proc) int {
		report := func(tag string, b []byte, err abi.Errno) {
			posix.Fprintf(p, abi.Stdout, "%s n=%d hash=%d err=%d\n", tag, len(b), zcHash(0, b), int(err))
		}
		// warmOpen opens path read-only and pre-reads n bytes so the
		// pages are resident: the reads that follow are served as page
		// grants on the ring transport — the leases the races need.
		warmOpen := func(path string, n int) (int, abi.Errno) {
			fd, err := p.Open(path, abi.O_RDONLY, 0)
			if err != abi.OK {
				return -1, err
			}
			if _, err := readN(p, fd, n); err != abi.OK {
				return -1, err
			}
			if _, err := p.Seek(fd, 0, abi.SEEK_SET); err != abi.OK {
				return -1, err
			}
			return fd, abi.OK
		}

		// 1. unlink while leases are outstanding: the stale fd keeps
		// reading the OLD file through its own backend handle.
		fdA, err := warmOpen("/ov/f", 48*1024)
		if err != abi.OK {
			return 1
		}
		a1, err := readN(p, fdA, 32*1024)
		report("unlink.before", a1, err)
		if err := p.Unlink("/ov/f"); err != abi.OK {
			return 2
		}
		a2, err := readN(p, fdA, 16*1024)
		report("unlink.stale", a2, err)
		// Recreate the name with different bytes; a fresh fd sees them.
		if err := posix.WriteFile(p, "/ov/f", []byte("reborn contents of /ov/f"), 0o644); err != abi.OK {
			return 3
		}
		fdB, err := p.Open("/ov/f", abi.O_RDONLY, 0)
		if err != abi.OK {
			return 4
		}
		b1, err := readN(p, fdB, 64*1024)
		report("unlink.fresh", b1, err)
		p.Close(fdB)
		// Seek the stale fd home (returns its leases) and re-read: still
		// the old file.
		if _, err := p.Seek(fdA, 0, abi.SEEK_SET); err != abi.OK {
			return 5
		}
		a3, err := readN(p, fdA, 16*1024)
		report("unlink.reseek", a3, err)
		p.Close(fdA)

		// 2. truncate while a lease is outstanding.
		fdC, err := warmOpen("/ov/g", 16*1024)
		if err != abi.OK {
			return 6
		}
		c1, err := readN(p, fdC, 16*1024)
		report("trunc.before", c1, err)
		fdW, err := p.Open("/ov/g", abi.O_WRONLY, 0)
		if err != abi.OK {
			return 7
		}
		if err := p.Ftruncate(fdW, 100); err != abi.OK {
			return 8
		}
		p.Close(fdW)
		c2, err := readN(p, fdC, 16*1024)
		report("trunc.stale", c2, err)
		p.Close(fdC)
		fdC2, err := p.Open("/ov/g", abi.O_RDONLY, 0)
		if err != abi.OK {
			return 9
		}
		c3, err := readN(p, fdC2, 64*1024)
		report("trunc.fresh", c3, err)
		p.Close(fdC2)

		// 3. rename while a lease is outstanding.
		fdD, err := warmOpen("/ov/h", 16*1024)
		if err != abi.OK {
			return 10
		}
		d1, err := readN(p, fdD, 16*1024)
		report("rename.before", d1, err)
		if err := p.Rename("/ov/h", "/ov/h2"); err != abi.OK {
			return 11
		}
		d2, err := readN(p, fdD, 16*1024)
		report("rename.stale", d2, err)
		p.Close(fdD)
		st, serr := p.Stat("/ov/h2")
		posix.Fprintf(p, abi.Stdout, "rename.dst size=%d err=%d\n", st.Size, int(serr))

		// 4. write-back flush overlapping leased pages: take leases,
		// then write+fsync through another fd (dirty extents force the
		// leased pages to detach-and-freeze before coalescing), then
		// read the file fresh.
		fdE, err := warmOpen("/ov/k", 32*1024)
		if err != abi.OK {
			return 12
		}
		e1, err := readN(p, fdE, 32*1024)
		report("flush.before", e1, err)
		fdF, err := p.Open("/ov/k", abi.O_WRONLY, 0)
		if err != abi.OK {
			return 13
		}
		if _, err := p.Pwrite(fdF, []byte("PATCHED-WHILE-LEASED"), 4096); err != abi.OK {
			return 14
		}
		if err := p.Fsync(fdF); err != abi.OK {
			return 15
		}
		p.Close(fdF)
		p.Close(fdE) // returns the leases taken before the overlap
		fdE2, err := p.Open("/ov/k", abi.O_RDONLY, 0)
		if err != abi.OK {
			return 16
		}
		e2, err := readN(p, fdE2, 64*1024)
		report("flush.fresh", e2, err)
		p.Close(fdE2)
		return 0
	}})
}

// TestLeaseRevocationAcrossTransports runs t-lease on the async, scalar
// and ring transports, each with write-back on and off: all six outputs
// must be byte-identical, the ring configurations must actually have
// taken leases, and no lease may survive the process.
func TestLeaseRevocationAcrossTransports(t *testing.T) {
	files := map[string][]byte{
		"/f": zcPattern(3, 64*1024),
		"/g": zcPattern(4, 48*1024),
		"/h": zcPattern(5, 48*1024),
		"/k": zcPattern(6, 64*1024),
	}
	outputs := map[string]string{}
	for _, c := range []struct {
		name        string
		kind        rt.Kind
		disableRing bool
	}{
		{"async-node", rt.NodeKind, false},
		{"sync-scalar", rt.EmSyncKind, true},
		{"sync-ring", rt.EmSyncKind, false},
	} {
		for _, writeBack := range []bool{true, false} {
			name := fmt.Sprintf("%s wb=%v", c.name, writeBack)
			w := boot(t)
			w.k.DisableRing = c.disableRing
			mountOverlay(t, w, files)
			w.fs.SetWriteBack(writeBack)
			w.install(t, "/usr/bin/t-lease", "t-lease", c.kind)
			code, out, errOut := w.run(t, "/usr/bin/t-lease")
			if code != 0 {
				t.Fatalf("%s: exited %d (stdout %q stderr %q)", name, code, out, errOut)
			}
			outputs[name] = out
			if c.name == "sync-ring" {
				if w.k.LeaseGrants.Load() == 0 {
					t.Errorf("%s: no leases taken — revocation races untested", name)
				}
				if w.k.LeaseGrants.Load() != w.k.LeaseReturns.Load() {
					t.Errorf("%s: leases leaked (%d granted, %d returned)",
						name, w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load())
				}
			}
			if pins := w.fs.CacheStats().PinnedPages; pins != 0 {
				t.Errorf("%s: %d pages still pinned", name, pins)
			}
		}
	}
	var want string
	for _, out := range outputs {
		want = out
		break
	}
	for name, out := range outputs {
		if out != want {
			t.Errorf("%s diverges:\n%q\nvs\n%q", name, out, want)
		}
	}
}

// BenchmarkZeroCopyRead reports warm-read throughput (virtual MB/s) of
// the grant path against the copy path — the headline number of the
// zero-copy refactor.
func BenchmarkZeroCopyRead(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"grant", false},
		{"copy", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var bytes, elapsed int64
			for i := 0; i < b.N; i++ {
				bt, el := zcBenchRun(b, cfg.disable, 32)
				bytes += bt
				elapsed += el
			}
			if elapsed > 0 {
				b.ReportMetric(float64(bytes)/(float64(elapsed)/1e9)/1e6, "virtMB/s")
			}
		})
	}
}
