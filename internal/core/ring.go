package core

import (
	"repro/internal/abi"
)

// Kernel side of the shared-memory ring-buffer syscall transport.
//
// A sync-transport process may upgrade from per-call postMessages to a
// pair of rings carved out of its registered heap: it pushes call frames
// into the request ring, rings a doorbell (one postMessage, regardless of
// how many frames are queued), and Atomics.waits on its wake cell. The
// kernel drains the whole request ring in a single dispatch, pushes reply
// frames into the reply ring as calls complete, and wakes the process once
// per batch — so a task draining a ready pipe completes several system
// calls per kernel dispatch instead of paying a message round trip each.
//
// Calls whose completion is deferred (a read against an empty pipe) reply
// out of order; frames carry sequence numbers so the process can match
// them. The scalar sync transport remains as the fallback for kernels or
// processes that don't negotiate the ring (Kernel.DisableRing).

// taskRing is the per-task transport state.
type taskRing struct {
	req abi.Ring // process -> kernel call frames
	rep abi.Ring // kernel -> process reply frames

	draining bool        // inside drainRing's dispatch loop
	dirty    bool        // replies pushed since the last wake
	overflow []ringReply // replies that did not fit the reply ring
}

type ringReply struct {
	seq uint32
	ret int64
	err abi.Errno
}

// registerRing validates and installs a task's ring regions (the "ring"
// registration call). Both regions must lie inside the registered heap.
func (k *Kernel) registerRing(t *Task, reqOff, reqLen, repOff, repLen int64) abi.Errno {
	if k.DisableRing {
		return abi.ENOSYS
	}
	if t.heap == nil {
		return abi.EINVAL
	}
	hlen := int64(t.heap.Len())
	ok := func(off, n int64) bool {
		return off >= 0 && n >= abi.MinRingSize && off+n <= hlen
	}
	if !ok(reqOff, reqLen) || !ok(repOff, repLen) {
		return abi.EINVAL
	}
	b := t.heap.Bytes()
	t.ring = &taskRing{
		req: abi.NewRing(b[reqOff : reqOff+reqLen]),
		rep: abi.NewRing(b[repOff : repOff+repLen]),
	}
	return abi.OK
}

// drainRing services a doorbell: dispatch every queued call frame, then
// wake the process once if any replies landed.
func (k *Kernel) drainRing(t *Task) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	r.draining = true
	batch := 0
	for {
		seq, trap, args, ok := r.req.PopCall()
		if !ok {
			break
		}
		batch++
		k.SyncSyscalls++
		k.RingSyscalls++
		k.Sys.Sim.Charge(k.CPU.SyscallNs)
		k.SyscallCount[abi.SyscallName(trap)]++
		k.dispatchCall(t, trap, args, func(ret int64, err abi.Errno) {
			k.ringReply(t, seq, ret, err)
		})
	}
	if batch > 1 {
		k.RingBatchedCalls += int64(batch - 1)
	}
	r.draining = false
	k.flushRingWake(t)
}

// ringReply queues one completion into the reply ring. During a drain
// batch the wake is deferred so the whole batch costs one notify; late
// completions (calls that blocked) wake immediately.
func (k *Kernel) ringReply(t *Task, seq uint32, ret int64, err abi.Errno) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	if len(r.overflow) > 0 || !r.rep.PushReply(seq, ret, err) {
		r.overflow = append(r.overflow, ringReply{seq, ret, err})
	}
	r.dirty = true
	if !r.draining {
		k.flushRingWake(t)
	}
}

// flushRingWake drains any overflow replies into the ring and wakes the
// process if new replies are waiting.
func (k *Kernel) flushRingWake(t *Task) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	for len(r.overflow) > 0 {
		o := r.overflow[0]
		if !r.rep.PushReply(o.seq, o.ret, o.err) {
			break
		}
		r.overflow = r.overflow[1:]
	}
	if !r.dirty {
		return
	}
	r.dirty = false
	t.heap.Store32(t.waitOff, 1)
	k.Sys.FutexNotify(t.heap, t.waitOff, 1)
}
