package core

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

// Kernel side of the shared-memory ring-buffer syscall transport.
//
// A sync-transport process may upgrade from per-call postMessages to a
// pair of rings carved out of its registered heap: it pushes call frames
// into the request ring, rings a doorbell (one postMessage, regardless of
// how many frames are queued), and Atomics.waits on its wake cell. The
// kernel drains the whole request ring in a single dispatch, pushes reply
// frames into the reply ring as calls complete, and wakes the process once
// per batch — so a task draining a ready pipe completes several system
// calls per kernel dispatch instead of paying a message round trip each.
//
// Calls whose completion is deferred (a read against an empty pipe) reply
// out of order; frames carry sequence numbers so the process can match
// them. The scalar sync transport remains as the fallback for kernels or
// processes that don't negotiate the ring (Kernel.DisableRing).

// taskRing is the per-task transport state.
type taskRing struct {
	req abi.Ring // process -> kernel call frames
	rep abi.Ring // kernel -> process reply frames

	draining bool        // inside drainRing's dispatch loop
	dirty    bool        // replies pushed since the last wake
	overflow []ringReply // replies that did not fit the reply ring
}

type ringReply struct {
	seq uint32
	ret int64
	err abi.Errno
}

// registerRing validates and installs a task's ring regions (the "ring"
// registration call). Both regions must lie inside the registered heap.
func (k *Kernel) registerRing(t *Task, reqOff, reqLen, repOff, repLen int64) abi.Errno {
	if k.DisableRing {
		return abi.ENOSYS
	}
	if t.heap == nil {
		return abi.EINVAL
	}
	hlen := int64(t.heap.Len())
	ok := func(off, n int64) bool {
		return off >= 0 && n >= abi.MinRingSize && off+n <= hlen
	}
	if !ok(reqOff, reqLen) || !ok(repOff, repLen) {
		return abi.EINVAL
	}
	b := t.heap.Bytes()
	t.ring = &taskRing{
		req: abi.NewRing(b[reqOff : reqOff+reqLen]),
		rep: abi.NewRing(b[repOff : repOff+repLen]),
	}
	return abi.OK
}

// drainRing services a doorbell: pop every queued call frame first, hand
// the whole batch to the fs-aware batch dispatcher, then land the
// completions that happened inside the batch with one batched-reply push
// and wake the process exactly once. Frame-by-frame dispatch (pop one,
// dispatch one) is gone: a doorbell carrying a stat storm reaches the
// file system as a single batch.
func (k *Kernel) drainRing(t *Task) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	var calls []pendingCall
	for {
		seq, trap, args, ok := r.req.PopCall()
		if !ok {
			break
		}
		k.SyncSyscalls++
		k.RingSyscalls++
		k.Sys.Sim.Charge(k.CPU.SyscallNs)
		k.SyscallCount[abi.SyscallName(trap)]++
		calls = append(calls, pendingCall{seq: seq, trap: trap, args: args})
	}
	if len(calls) > 1 {
		k.RingBatchedCalls += int64(len(calls) - 1)
	}
	r.draining = true
	var batched []abi.Reply
	// inBatch is per-invocation, NOT the shared r.draining flag: a call
	// from THIS drain that blocks may complete during a later drain of
	// the same ring (a signal handler's interleaved batch unblocking a
	// parked read); its reply must go through ringReply then, not into
	// this drain's already-flushed batch slice.
	inBatch := true
	k.dispatchBatch(t, calls, func(seq uint32, ret int64, err abi.Errno) {
		if inBatch {
			// Completed inside the batch: collect for one framing pass.
			batched = append(batched, abi.Reply{Seq: seq, Ret: ret, Errno: err})
			return
		}
		// Late completion (the call blocked): reply-and-wake immediately.
		k.ringReply(t, seq, ret, err)
	})
	inBatch = false
	r.draining = false
	if len(batched) > 0 && t.ring == r && t.heap != nil && t.state != taskZombie {
		// Batched-reply framing: every same-dispatch completion lands in
		// one PushReplies pass; what does not fit queues in arrival order
		// behind any existing overflow.
		n := 0
		if len(r.overflow) == 0 {
			n = r.rep.PushReplies(batched)
		}
		for _, rep := range batched[n:] {
			r.overflow = append(r.overflow, ringReply{rep.Seq, rep.Ret, rep.Errno})
		}
		r.dirty = true
	}
	k.flushRingWake(t)
}

// pendingCall is one popped, not-yet-dispatched ring call frame.
type pendingCall struct {
	seq  uint32
	trap int
	args []int64
}

// batchableTrap reports whether a trap joins an fs metadata batch: the
// path-lookup calls a stat storm is made of.
func batchableTrap(trap int) bool {
	switch trap {
	case abi.SYS_stat, abi.SYS_lstat, abi.SYS_access:
		return true
	}
	return false
}

// dispatchBatch executes a batch of call frames. Runs of two or more
// consecutive fs metadata calls resolve through FS.StatBatch — one pass
// against the dentry cache for the whole run — and everything else goes
// through the transport-independent dispatchCall. The scalar transport
// enters here with batch size 1 (dispatchSync), and the async transport
// reaches the same FS.StatBatch entry point through FS.Stat/Lstat/
// Access (batches of one), so all three transports execute identical
// file-system code.
func (k *Kernel) dispatchBatch(t *Task, calls []pendingCall, done func(seq uint32, ret int64, err abi.Errno)) {
	i := 0
	for i < len(calls) {
		if !k.DisableFSBatch && batchableTrap(calls[i].trap) {
			j := i + 1
			for j < len(calls) && batchableTrap(calls[j].trap) {
				j++
			}
			if j-i > 1 {
				k.dispatchStatRun(t, calls[i:j], done)
				i = j
				continue
			}
		}
		c := calls[i]
		k.dispatchCall(t, c.trap, c.args, func(ret int64, err abi.Errno) {
			done(c.seq, ret, err)
		})
		i++
	}
}

// dispatchStatRun decodes a run of stat/lstat/access frames and resolves
// them with a single FS.StatBatch call.
func (k *Kernel) dispatchStatRun(t *Task, run []pendingCall, done func(uint32, int64, abi.Errno)) {
	arg := func(c pendingCall, i int) int64 {
		if i < len(c.args) {
			return c.args[i]
		}
		return 0
	}
	reqs := make([]fs.StatReq, len(run))
	for i, c := range run {
		reqs[i] = fs.StatReq{
			Path:  t.abs(t.heapStr(arg(c, 0), arg(c, 1))),
			Lstat: c.trap == abi.SYS_lstat,
		}
	}
	k.FSBatchedCalls += int64(len(run))
	k.FS.StatBatch(reqs, func(sts []abi.Stat, errs []abi.Errno) {
		for i, c := range run {
			if errs[i] == abi.OK && c.trap != abi.SYS_access {
				var buf [abi.StatSize]byte
				abi.PackStat(buf[:], sts[i])
				t.heapWrite(arg(c, 2), buf[:])
			}
			done(c.seq, 0, errs[i])
		}
	})
}

// ringReply queues one completion into the reply ring. During a drain
// batch the wake is deferred so the whole batch costs one notify; late
// completions (calls that blocked) wake immediately.
func (k *Kernel) ringReply(t *Task, seq uint32, ret int64, err abi.Errno) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	if len(r.overflow) > 0 || !r.rep.PushReply(seq, ret, err) {
		r.overflow = append(r.overflow, ringReply{seq, ret, err})
	}
	r.dirty = true
	if !r.draining {
		k.flushRingWake(t)
	}
}

// flushRingWake drains any overflow replies into the ring and wakes the
// process if new replies are waiting.
func (k *Kernel) flushRingWake(t *Task) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	for len(r.overflow) > 0 {
		o := r.overflow[0]
		if !r.rep.PushReply(o.seq, o.ret, o.err) {
			break
		}
		r.overflow = r.overflow[1:]
	}
	if !r.dirty {
		return
	}
	r.dirty = false
	k.RingNotifies++
	t.heap.Store32(t.waitOff, 1)
	k.Sys.FutexNotify(t.heap, t.waitOff, 1)
}
