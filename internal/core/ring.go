package core

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

// Kernel side of the shared-memory ring-buffer syscall transport.
//
// A sync-transport process may upgrade from per-call postMessages to a
// pair of rings carved out of its registered heap: it pushes call frames
// into the request ring, rings a doorbell (one postMessage, regardless of
// how many frames are queued), and Atomics.waits on its wake cell. The
// kernel drains the whole request ring in a single dispatch, pushes reply
// frames into the reply ring as calls complete, and wakes the process once
// per batch — so a task draining a ready pipe completes several system
// calls per kernel dispatch instead of paying a message round trip each.
//
// Calls whose completion is deferred (a read against an empty pipe) reply
// out of order; frames carry sequence numbers so the process can match
// them. The scalar sync transport remains as the fallback for kernels or
// processes that don't negotiate the ring (Kernel.DisableRing).

// taskRing is the per-task transport state.
type taskRing struct {
	req abi.Ring // process -> kernel call frames
	rep abi.Ring // kernel -> process reply frames

	// Registered heap offsets of the two regions. The checkpoint path
	// needs them: ring pages are written through retained views that
	// bypass the heap's dirty-tracking barriers, so a final stop-copy
	// must always re-copy them.
	reqOff, reqLen, repOff, repLen int64

	draining bool        // inside drainRing's dispatch loop
	dirty    bool        // replies pushed since the last wake
	overflow []ringReply // replies that did not fit the reply ring
}

type ringReply struct {
	seq uint32
	ret int64
	err abi.Errno
}

// registerRing validates and installs a task's ring regions (the "ring"
// registration call). Both regions must lie inside the registered heap.
func (k *Kernel) registerRing(t *Task, reqOff, reqLen, repOff, repLen int64) abi.Errno {
	if k.DisableRing {
		return abi.ENOSYS
	}
	if t.heap == nil {
		return abi.EINVAL
	}
	hlen := int64(t.heap.Len())
	ok := func(off, n int64) bool {
		return off >= 0 && n >= abi.MinRingSize && off+n <= hlen
	}
	if !ok(reqOff, reqLen) || !ok(repOff, repLen) {
		return abi.EINVAL
	}
	b := t.heap.Bytes()
	t.ring = &taskRing{
		req:    abi.NewRing(b[reqOff : reqOff+reqLen]),
		rep:    abi.NewRing(b[repOff : repOff+repLen]),
		reqOff: reqOff, reqLen: reqLen, repOff: repOff, repLen: repLen,
	}
	return abi.OK
}

// drainRing services a doorbell: pop every queued call frame first, hand
// the whole batch to the fs-aware batch dispatcher, then land the
// completions that happened inside the batch with one batched-reply push
// and wake the process exactly once. Frame-by-frame dispatch (pop one,
// dispatch one) is gone: a doorbell carrying a stat storm reaches the
// file system as a single batch.
func (k *Kernel) drainRing(t *Task) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	var calls []pendingCall
	for {
		seq, trap, args, ok := r.req.PopCall()
		if !ok {
			break
		}
		k.SyncSyscalls.Add(1)
		k.RingSyscalls.Add(1)
		k.Sys.Sim.Charge(k.CPU.SyscallNs)
		k.SyscallCount[abi.SyscallName(trap)]++
		calls = append(calls, pendingCall{seq: seq, trap: trap, args: args})
	}
	if len(calls) > 1 {
		k.RingBatchedCalls.Add(int64(len(calls) - 1))
	}
	r.draining = true
	var batched []abi.Reply
	// inBatch is per-invocation, NOT the shared r.draining flag: a call
	// from THIS drain that blocks may complete during a later drain of
	// the same ring (a signal handler's interleaved batch unblocking a
	// parked read); its reply must go through ringReply then, not into
	// this drain's already-flushed batch slice.
	inBatch := true
	k.dispatchBatch(t, calls, func(seq uint32, ret int64, err abi.Errno) {
		if inBatch {
			// Completed inside the batch: collect for one framing pass.
			batched = append(batched, abi.Reply{Seq: seq, Ret: ret, Errno: err})
			return
		}
		// Late completion (the call blocked): reply-and-wake immediately.
		k.ringReply(t, seq, ret, err)
	})
	inBatch = false
	r.draining = false
	if len(batched) > 0 && t.ring == r && t.heap != nil && t.state != taskZombie {
		// Batched-reply framing: every same-dispatch completion lands in
		// one PushReplies pass; what does not fit queues in arrival order
		// behind any existing overflow.
		n := 0
		if len(r.overflow) == 0 {
			n = r.rep.PushReplies(batched)
		}
		for _, rep := range batched[n:] {
			r.overflow = append(r.overflow, ringReply{rep.Seq, rep.Ret, rep.Errno})
		}
		r.dirty = true
	}
	k.flushRingWake(t)
}

// pendingCall is one popped, not-yet-dispatched ring call frame.
type pendingCall struct {
	seq  uint32
	trap int
	args []int64
}

// batchableCall reports whether a frame joins an fs metadata batch: the
// path-lookup calls a probe storm is made of — stat/lstat/access, plus
// readlink and *plain read-only* open (shell PATH probing interleaves
// those with its stats; creating or truncating opens have side effects
// that must dispatch individually, in order).
func batchableCall(c pendingCall) bool {
	switch c.trap {
	case abi.SYS_stat, abi.SYS_lstat, abi.SYS_access, abi.SYS_readlink:
		return true
	case abi.SYS_open:
		var flags int64
		if len(c.args) > 2 {
			flags = c.args[2]
		}
		return flags&(abi.O_ACCMODE|abi.O_CREAT|abi.O_TRUNC|abi.O_APPEND) == abi.O_RDONLY
	}
	return false
}

// dispatchBatch executes a batch of call frames. Runs of two or more
// consecutive fs metadata calls resolve through FS.MetaBatch — one pass
// against the dentry cache for the whole run — and everything else goes
// through the transport-independent dispatchCall. The scalar transport
// enters here with batch size 1 (dispatchSync), and the async transport
// reaches the same FS.StatBatch/MetaBatch entry point through
// FS.Stat/Lstat/Access (batches of one), so all three transports execute
// identical file-system code.
func (k *Kernel) dispatchBatch(t *Task, calls []pendingCall, done func(seq uint32, ret int64, err abi.Errno)) {
	i := 0
	for i < len(calls) {
		if !k.DisableFSBatch && batchableCall(calls[i]) {
			j := i + 1
			for j < len(calls) && batchableCall(calls[j]) {
				j++
			}
			if j-i > 1 {
				k.dispatchMetaRun(t, calls[i:j], done)
				i = j
				continue
			}
		}
		if !k.DisableFSBatch && calls[i].trap == abi.SYS_readg {
			// A drained doorbell carrying a run of grant-reads against
			// one descriptor resolves with a single vectored cache pass
			// (dispatchReadgRun) — data-plane batching past metadata.
			fd := int64(-1)
			if len(calls[i].args) > 0 {
				fd = calls[i].args[0]
			}
			j := i + 1
			for j < len(calls) && calls[j].trap == abi.SYS_readg &&
				len(calls[j].args) > 0 && calls[j].args[0] == fd {
				j++
			}
			if j-i > 1 {
				k.dispatchReadgRun(t, calls[i:j], done)
				i = j
				continue
			}
		}
		c := calls[i]
		k.dispatchCall(t, c.trap, c.args, func(ret int64, err abi.Errno) {
			done(c.seq, ret, err)
		})
		i++
	}
}

// dispatchMetaRun decodes a run of stat/lstat/access/readlink/open
// frames and resolves them with a single FS.MetaBatch call — one dentry
// cache pass for the whole run — then completes each frame exactly as
// dispatchCall would have.
func (k *Kernel) dispatchMetaRun(t *Task, run []pendingCall, done func(uint32, int64, abi.Errno)) {
	arg := func(c pendingCall, i int) int64 {
		if i < len(c.args) {
			return c.args[i]
		}
		return 0
	}
	reqs := make([]fs.MetaReq, len(run))
	for i, c := range run {
		path := t.abs(t.heapStr(arg(c, 0), arg(c, 1)))
		switch c.trap {
		case abi.SYS_stat:
			reqs[i] = fs.MetaReq{Kind: fs.MetaStat, Path: path}
		case abi.SYS_lstat:
			reqs[i] = fs.MetaReq{Kind: fs.MetaLstat, Path: path}
		case abi.SYS_access:
			reqs[i] = fs.MetaReq{Kind: fs.MetaAccess, Path: path}
		case abi.SYS_readlink:
			reqs[i] = fs.MetaReq{Kind: fs.MetaReadlink, Path: path}
		case abi.SYS_open:
			reqs[i] = fs.MetaReq{Kind: fs.MetaOpen, Path: path,
				Flags: int(arg(c, 2)), Mode: uint32(arg(c, 3))}
		}
	}
	k.FSBatchedCalls.Add(int64(len(run)))
	k.FS.MetaBatch(reqs, func(res []fs.MetaRes) {
		for i, c := range run {
			r := res[i]
			switch c.trap {
			case abi.SYS_stat, abi.SYS_lstat:
				if r.Err == abi.OK {
					var buf [abi.StatSize]byte
					abi.PackStat(buf[:], r.St)
					t.heapWrite(arg(c, 2), buf[:])
				}
				done(c.seq, 0, r.Err)
			case abi.SYS_access:
				done(c.seq, 0, r.Err)
			case abi.SYS_readlink:
				if r.Err != abi.OK {
					done(c.seq, -1, r.Err)
					break
				}
				bufLen := arg(c, 3)
				if bufLen < 0 {
					done(c.seq, -1, abi.EINVAL)
					break
				}
				b := []byte(r.Target)
				if int64(len(b)) > bufLen {
					b = b[:bufLen]
				}
				t.heapWrite(arg(c, 2), b)
				done(c.seq, int64(len(b)), abi.OK)
			case abi.SYS_open:
				if r.Err != abi.OK {
					done(c.seq, -1, r.Err)
					break
				}
				flags := int(arg(c, 2))
				path := reqs[i].Path
				if r.Handle == nil {
					// Directory: same split as doOpen.
					done(c.seq, int64(t.installFd(NewDesc(&dirFile{fs: k.FS, path: path}, flags, path))), abi.OK)
					break
				}
				done(c.seq, int64(t.installFd(NewDesc(newFSFile(r.Handle, flags), flags, path))), abi.OK)
			}
		}
	})
}

// ringReply queues one completion into the reply ring. During a drain
// batch the wake is deferred so the whole batch costs one notify; late
// completions (calls that blocked) wake immediately.
func (k *Kernel) ringReply(t *Task, seq uint32, ret int64, err abi.Errno) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	if len(r.overflow) > 0 || !r.rep.PushReply(seq, ret, err) {
		r.overflow = append(r.overflow, ringReply{seq, ret, err})
	}
	r.dirty = true
	if !r.draining {
		k.flushRingWake(t)
	}
}

// flushRingWake drains any overflow replies into the ring and wakes the
// process if new replies are waiting.
func (k *Kernel) flushRingWake(t *Task) {
	r := t.ring
	if r == nil || t.heap == nil || t.state == taskZombie {
		return
	}
	for len(r.overflow) > 0 {
		o := r.overflow[0]
		if !r.rep.PushReply(o.seq, o.ret, o.err) {
			break
		}
		r.overflow = r.overflow[1:]
	}
	if !r.dirty {
		return
	}
	r.dirty = false
	k.RingNotifies.Add(1)
	t.heap.Store32(t.waitOff, 1)
	k.Sys.FutexNotify(t.heap, t.waitOff, 1)
}
