package core

import (
	"testing"

	"repro/internal/abi"
)

// TestMixedMetaRunSingleNotify: a doorbell carrying a PATH-probe-shaped
// run — stat, plain read-only open, readlink, access, and a missing name
// — resolves as ONE fs batch with ONE notify, and every frame completes
// exactly as it would have frame-by-frame: the open installs a working
// descriptor, the readlink fills its buffer, the missing name fails.
func TestMixedMetaRunSingleNotify(t *testing.T) {
	w := newRingWorld(t)
	w.fsys.WriteFile("/bin-probe", []byte("#!interp"), 0o755, func(abi.Errno) {})
	var serr abi.Errno = -1
	w.fsys.Symlink("/bin-probe", "/ln", func(err abi.Errno) { serr = err })
	if serr != abi.OK {
		t.Fatalf("symlink: %v", serr)
	}

	heap := w.task.heap.Bytes()
	ptr := int64(64)
	stage := func(s string) (int64, int64) {
		copy(heap[ptr:], s)
		pp, pn := ptr, int64(len(s))
		ptr += (pn + 7) &^ 7
		return pp, pn
	}
	alloc := func(n int64) int64 {
		p := ptr
		ptr += (n + 7) &^ 7
		return p
	}

	r := w.task.ring.req
	pa, na := stage("/bin-probe")
	statPtr := alloc(abi.StatSize)
	r.PushCall(0, abi.SYS_stat, []int64{pa, na, statPtr})
	pb, nb := stage("/bin-probe")
	r.PushCall(1, abi.SYS_open, []int64{pb, nb, abi.O_RDONLY, 0})
	pc, nc := stage("/ln")
	lnBuf := alloc(256)
	r.PushCall(2, abi.SYS_readlink, []int64{pc, nc, lnBuf, 256})
	pd, nd := stage("/bin-probe")
	r.PushCall(3, abi.SYS_access, []int64{pd, nd, abi.X_OK})
	pe, ne := stage("/missing")
	r.PushCall(4, abi.SYS_stat, []int64{pe, ne, alloc(abi.StatSize)})

	notifies, batched := w.k.RingNotifies.Load(), w.k.FSBatchedCalls.Load()
	w.drain(t)
	if got := w.k.RingNotifies.Load() - notifies; got != 1 {
		t.Fatalf("mixed meta run produced %d notifies, want 1", got)
	}
	if got := w.k.FSBatchedCalls.Load() - batched; got != 5 {
		t.Fatalf("FSBatchedCalls += %d, want 5 (whole run through MetaBatch)", got)
	}

	rets := map[uint32]int64{}
	errs := map[uint32]abi.Errno{}
	for {
		seq, ret, errno, ok := w.task.ring.rep.PopReply()
		if !ok {
			break
		}
		rets[seq], errs[seq] = ret, errno
	}
	if len(rets) != 5 {
		t.Fatalf("got %d replies, want 5", len(rets))
	}
	if errs[0] != abi.OK {
		t.Fatalf("stat: %v", errs[0])
	}
	if st := abi.UnpackStat(heap[statPtr : statPtr+abi.StatSize]); st.Size != 8 {
		t.Fatalf("stat size %d, want 8", st.Size)
	}
	if errs[1] != abi.OK || rets[1] < 0 {
		t.Fatalf("open: fd=%d err=%v", rets[1], errs[1])
	}
	fd := int(rets[1])
	if got := w.task.FdPath(fd); got != "/bin-probe" {
		t.Fatalf("opened fd %d names %q", fd, got)
	}
	// The batched open's descriptor must actually read.
	d, derr := w.task.lookFd(fd)
	if derr != abi.OK {
		t.Fatalf("lookFd: %v", derr)
	}
	var body []byte
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		d.file.Read(d, 64, func(b []byte, err abi.Errno) { body, done = b, true })
	})
	w.sim.RunUntil(func() bool { return done })
	if string(body) != "#!interp" {
		t.Fatalf("batched open read %q", body)
	}
	if errs[2] != abi.OK || string(heap[lnBuf:lnBuf+rets[2]]) != "/bin-probe" {
		t.Fatalf("readlink: err=%v target=%q", errs[2], heap[lnBuf:lnBuf+rets[2]])
	}
	if errs[3] != abi.OK {
		t.Fatalf("access: %v", errs[3])
	}
	if errs[4] != abi.ENOENT {
		t.Fatalf("missing stat: %v, want ENOENT", errs[4])
	}
}

// TestMetaRunSkipsMutatingOpens: an O_CREAT open never joins a batch —
// it splits the run and dispatches individually, preserving side-effect
// order.
func TestMetaRunSkipsMutatingOpens(t *testing.T) {
	c := pendingCall{trap: abi.SYS_open, args: []int64{0, 0, abi.O_WRONLY | abi.O_CREAT, 0o644}}
	if batchableCall(c) {
		t.Fatalf("creating open classified batchable")
	}
	c = pendingCall{trap: abi.SYS_open, args: []int64{0, 0, abi.O_RDONLY, 0}}
	if !batchableCall(c) {
		t.Fatalf("plain read-only open not batchable")
	}
	c = pendingCall{trap: abi.SYS_open, args: []int64{0, 0, abi.O_RDONLY | abi.O_TRUNC, 0}}
	if batchableCall(c) {
		t.Fatalf("truncating open classified batchable")
	}
}
