package core

import (
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/fs"
	"repro/internal/snapshot"
)

// Loader turns an executable's bytes into a Web Worker entry point. The
// runtime package (internal/rt) installs a loader that understands
// "compiled to JavaScript" executables — files carrying a Browsix program
// marker naming the program and its language runtime. The kernel itself
// only understands shebang lines, which it resolves to interpreters before
// consulting the loader, mirroring Browsix (§3.3: "executables include
// JavaScript files, files beginning with a shebang line, and WebAssembly
// files").
type Loader func(script []byte) (func(w *browser.Worker), abi.Errno)

// Cost holds the kernel-side CPU cost model (virtual ns charged to the
// main thread, where the kernel runs).
type Cost struct {
	// SyscallNs is the kernel CPU per system call handled (decode,
	// dispatch, subsystem work bookkeeping).
	SyscallNs int64
	// SyncByteNs is the per-byte cost of copying data between the kernel
	// and a process's shared heap on the synchronous path.
	SyncByteNs float64
	// SpawnNs is kernel CPU for constructing a task (excluding the
	// browser's worker start cost).
	SpawnNs int64
}

// DefaultCost returns the calibrated kernel cost model.
func DefaultCost() Cost {
	return Cost{SyscallNs: 1_500, SyncByteNs: 0.15, SpawnNs: 120_000}
}

// Kernel is the Browsix kernel instance, owned by the main browser
// context.
type Kernel struct {
	Sys    *browser.System
	FS     *fs.FileSystem
	Loader Loader
	CPU    Cost

	tasks   map[int]*Task
	nextPid int

	// DisableRing refuses ring-transport registration, forcing sync
	// processes onto the scalar wake-cell path (differential testing and
	// browsers without the fast path).
	DisableRing bool

	// DisableFSBatch turns off fs-level batching of drained ring frames:
	// stat runs dispatch frame by frame (the ablation baseline of
	// BenchmarkBatchedStatStorm). Results are byte-identical either way;
	// only the number of cache passes changes.
	DisableFSBatch bool

	// DisableZeroCopy refuses page-pool registration and answers every
	// readg with the copy path — the ablation baseline of
	// BenchmarkZeroCopyRead, and the differential tests' way of pinning
	// the grant and copy paths against each other.
	DisableZeroCopy bool

	// DisableZeroCopyWrite refuses wgalloc (write-grant allocation) and
	// answers every writeg with the copy fallback, while leaving the
	// read-side grant path alone — the ablation baseline of
	// BenchmarkZeroCopyWrite and one axis of the write differentials.
	DisableZeroCopyWrite bool

	// Snapshots is the checkpoint/fork registry (internal/snapshot).
	// When set, the first cold boot of each runtime captures a post-boot
	// image and later spawns of the same executable clone it
	// copy-on-write. nil (the default) keeps the classic cold-boot path
	// and every pre-existing virtual clock. A fleet shares one sealed
	// registry; a single instance owns a private one.
	Snapshots *snapshot.Registry
	// DisableSnapshots ignores Snapshots without unwiring it — the
	// ablation flag the differential tests flip.
	DisableSnapshots bool

	// stubURLs caches the per-executable bootstrap Blob URL clone boots
	// start their workers from: a thin loader stub standing in for the
	// browser's cached compiled artifact, so a clone skips the
	// multi-hundred-KB script eval a cold boot pays.
	stubURLs map[string]string

	// poolSAB is the page-cache arena wrapped for sharing with workers,
	// created on the first "pagepool" registration.
	poolSAB *browser.SAB

	ports         map[int]*Socket
	portWatchers  map[int][]func(int)
	nextEphemeral int

	// Parked SYS_poll waiters (poll.go). pollKicking/pollAgain guard
	// re-entrant kicks: a completion may move pipe state inline, which
	// kicks again; the inner request coalesces into one more pass.
	pollParked  []*pollWaiter
	pollKicking bool
	pollAgain   bool

	// Statistics for the evaluation harness. The scalar counters are
	// atomics: a fleet aggregator (or a live stats poller) may read them
	// from the host while the Instance runs on another thread, and a
	// torn 64-bit read would report garbage. SyscallCount remains a
	// plain map — it is owned by the Instance thread; read it only after
	// the instance quiesces (a worker join gives the happens-before).
	SyscallCount     map[string]int64
	AsyncSyscalls    atomic.Int64
	SyncSyscalls     atomic.Int64
	SignalsDelivered atomic.Int64
	// RingSyscalls counts sync calls that arrived via the ring transport
	// (also included in SyncSyscalls); RingBatchedCalls counts the calls
	// beyond the first in each multi-call doorbell drain — the dispatches
	// the ring saved.
	RingSyscalls     atomic.Int64
	RingBatchedCalls atomic.Int64
	// RingNotifies counts process wakes on the ring transport — a drained
	// doorbell of N calls costs exactly one. FSBatchedCalls counts frames
	// resolved through the fs-level batch entry point (stat runs handed
	// to FS.StatBatch as one batch).
	RingNotifies   atomic.Int64
	FSBatchedCalls atomic.Int64
	// Zero-copy read-path statistics. ReadCopiedBytes counts payload
	// bytes the kernel copied into guest heaps answering reads (the
	// per-byte work the grant path eliminates); GrantedBytes counts
	// bytes served by page grants instead; LeaseGrants/LeaseReturns
	// count the leases themselves.
	ReadCopiedBytes atomic.Int64
	GrantedBytes    atomic.Int64
	LeaseGrants     atomic.Int64
	LeaseReturns    atomic.Int64
	// Zero-copy write-path statistics, mirroring the read side.
	// WriteCopiedBytes counts payload bytes the kernel copied out of
	// guest heaps (or staged slots, on the writeg fallback) accepting
	// writes; WriteGrantedBytes counts bytes adopted in place from
	// staged slots. BatchedGrantReads counts readg frames beyond the
	// first in each same-fd run answered by one vectored cache pass.
	WriteCopiedBytes  atomic.Int64
	WriteGrantedBytes atomic.Int64
	BatchedGrantReads atomic.Int64
	// Snapshot lifecycle statistics: images captured through this
	// kernel, and processes booted as copy-on-write clones.
	SnapshotCaptures atomic.Int64
	CloneBoots       atomic.Int64
}

// NewKernel boots a kernel over the given browser system and file system.
func NewKernel(sys *browser.System, fsys *fs.FileSystem, loader Loader) *Kernel {
	return &Kernel{
		Sys:           sys,
		FS:            fsys,
		Loader:        loader,
		CPU:           DefaultCost(),
		tasks:         map[int]*Task{},
		nextPid:       1,
		ports:         map[int]*Socket{},
		portWatchers:  map[int][]func(int){},
		nextEphemeral: 40000,
		SyscallCount:  map[string]int64{},
		stubURLs:      map[string]string{},
	}
}

// Task returns a live or zombie task by pid.
func (k *Kernel) Task(pid int) *Task { return k.tasks[pid] }

// pagePoolSAB wraps the file system's page-cache arena as a
// SharedArrayBuffer, once; every pool-registering process maps the same
// view — the "mmap the page cache into the shared heap" of the zero-copy
// read path.
func (k *Kernel) pagePoolSAB() *browser.SAB {
	if k.poolSAB == nil {
		k.poolSAB = browser.WrapSAB(k.FS.PagePoolBytes())
	}
	return k.poolSAB
}

// releaseTaskLeases returns every page lease a task still holds — the
// kernel-side reclaim when an image exits (or execs away) without
// unleasing. Ordered by slot for determinism.
func (k *Kernel) releaseTaskLeases(t *Task) {
	t.wstaged = nil
	if len(t.leases) == 0 {
		return
	}
	slots := make([]int, 0, len(t.leases))
	for slot := range t.leases {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	for _, slot := range slots {
		for n := t.leases[slot]; n > 0; n-- {
			k.FS.UnleasePage(slot)
			k.LeaseReturns.Add(1)
		}
	}
	t.leases = nil
}

// Tasks returns all task pids, sorted (diagnostics, terminal `ps`).
func (k *Kernel) Tasks() []*Task {
	out := make([]*Task, 0, len(k.tasks))
	for pid := 1; pid <= k.nextPid; pid++ {
		if t, ok := k.tasks[pid]; ok {
			out = append(out, t)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Process creation: spawn, fork, exec (§3.3).
// ---------------------------------------------------------------------------

// ForkImage is the memory snapshot + resume point an Emscripten-style
// runtime ships through the kernel on fork (§4.3: "the runtime sends a
// copy of the global memory array ... along with the current program
// counter to the kernel; the kernel transfers this copy to the new Worker
// as part of the initialization message").
type ForkImage struct {
	Mem   []byte
	Label string
}

// SpawnSpec collects the parameters of a spawn.
type SpawnSpec struct {
	Path string
	Args []string
	Env  []string
	Cwd  string
	// Files maps child descriptor numbers to parent descriptors to
	// inherit (the kernel bumps reference counts).
	Files map[int]*Desc
	// Fork carries the fork snapshot for fork-created children.
	Fork *ForkImage
	// Exec: when non-nil, reuse this task (same pid, fds, cwd) instead
	// of creating a new one; its old worker is replaced.
	execTask *Task
}

const maxShebangDepth = 4

// Spawn constructs a new process from an executable on the file system
// (§3.3). parent may be nil for kernel-initiated processes
// (kernel.System). cb receives the child pid.
func (k *Kernel) Spawn(parent *Task, spec SpawnSpec, cb func(int, abi.Errno)) {
	k.resolveExecutable(spec.Path, spec.Args, spec.Cwd, 0, func(path string, argv []string, script []byte, err abi.Errno) {
		if err != abi.OK {
			cb(0, err)
			return
		}
		main, err := k.Loader(script)
		if err != abi.OK {
			cb(0, err)
			return
		}
		k.Sys.Sim.Charge(k.CPU.SpawnNs)

		// Snapshot lifecycle: a known image turns this spawn into a
		// copy-on-write clone boot; otherwise an unsealed registry asks
		// the new process to capture one after its first boot completes.
		var img *snapshot.Image
		if k.Snapshots != nil && !k.DisableSnapshots && spec.Fork == nil {
			img = k.Snapshots.Lookup(path)
		}

		var t *Task
		if spec.execTask != nil {
			// exec: same task, new image.
			t = spec.execTask
			t.Path = path
			t.Args = argv
			if spec.Env != nil {
				t.Env = spec.Env
			}
			t.heap, t.retOff, t.waitOff, t.ring = nil, 0, 0, nil
			k.releaseTaskLeases(t)
			k.releaseTaskSnapshot(t)
			t.pool = false
			t.sigActions = map[int]sigAction{}
			old := t.worker
			defer old.Terminate()
		} else {
			t = &Task{
				k:          k,
				Pid:        k.nextPid,
				Path:       path,
				Args:       argv,
				Env:        spec.Env,
				cwd:        fs.Clean(spec.Cwd),
				files:      map[int]*Desc{},
				children:   map[int]*Task{},
				sigActions: map[int]sigAction{},
				startTime:  k.Sys.Sim.Now(),
			}
			k.nextPid++
			k.tasks[t.Pid] = t
			if parent != nil {
				t.ParentPid = parent.Pid
				parent.children[t.Pid] = t
			}
			for fd, d := range spec.Files {
				d.Ref()
				t.files[fd] = d
			}
		}

		// Browsix generates a Blob URL for the executable's bytes so
		// Workers can be built from file-system contents (§3.3). Clone
		// boots start from the cached bootstrap stub instead — the
		// expensive artifact was already parsed once, and the restored
		// image replaces re-running it.
		var url string
		if img != nil {
			url = k.stubURL(path)
		} else {
			url = k.Sys.CreateObjectURL(script)
		}
		w := k.Sys.NewWorker(k.Sys.Main, url, main)
		t.worker = w
		w.OnMessage = func(v browser.Value) { k.onWorkerMessage(t, w, v) }

		// "There is no way to pass data to a Worker on startup apart
		// from sending a message": runtimes delay main() until this
		// init message arrives (§3.3).
		init := map[string]browser.Value{
			"type": "init",
			"pid":  int64(t.Pid),
			"args": browser.StringArray(t.Args),
			"env":  browser.StringArray(t.Env),
			"cwd":  t.cwd,
		}
		if spec.Fork != nil {
			init["forkMem"] = spec.Fork.Mem
			init["forkLabel"] = spec.Fork.Label
		}
		switch {
		case img != nil:
			// Clone boot: the image and its COW tracker cross by
			// reference (browser.Shared). Pins are taken here, on the
			// main thread, so the balance invariant holds from the
			// moment of the spawn decision — every death path runs
			// through releaseTaskSnapshot.
			img.PinAll()
			if img.HeapLen > 0 {
				t.snapTracker = snapshot.NewTracker(img, img.NumPages())
				t.snapTracker.SetStats(k.Snapshots.Stats())
				init["snaptracker"] = t.snapTracker
			}
			t.snapImage = img
			init["snapimage"] = img
			k.CloneBoots.Add(1)
			k.Snapshots.Stats().CloneBoots.Add(1)
		case k.Snapshots != nil && !k.DisableSnapshots && !k.Snapshots.Sealed() && spec.Fork == nil:
			// First boot of this runtime: ask it to call back with
			// "snapcap" once init and transport negotiation finish.
			t.script = script
			init["snapcap"] = int64(1)
		}
		w.PostMessage(init)
		cb(t.Pid, abi.OK)
	})
}

// resolveExecutable reads the executable at path, following shebang lines
// ("#!interp [arg]") by prepending the interpreter to argv, as execve does.
func (k *Kernel) resolveExecutable(path string, argv []string, cwd string, depth int, cb func(string, []string, []byte, abi.Errno)) {
	if depth > maxShebangDepth {
		cb("", nil, nil, abi.ELOOP)
		return
	}
	abspath := path
	if !strings.HasPrefix(abspath, "/") {
		abspath = fs.Clean(cwd + "/" + path)
	}
	k.FS.ReadFile(abspath, func(script []byte, err abi.Errno) {
		if err != abi.OK {
			cb("", nil, nil, err)
			return
		}
		if len(script) > 2 && script[0] == '#' && script[1] == '!' {
			nl := strings.IndexByte(string(script), '\n')
			if nl < 0 {
				nl = len(script)
			}
			fields := strings.Fields(string(script[2:nl]))
			if len(fields) == 0 {
				cb("", nil, nil, abi.ENOEXEC)
				return
			}
			interp := fields[0]
			newArgv := append([]string{}, fields...)
			newArgv = append(newArgv, abspath)
			if len(argv) > 1 {
				newArgv = append(newArgv, argv[1:]...)
			}
			k.resolveExecutable(interp, newArgv, cwd, depth+1, cb)
			return
		}
		if len(argv) == 0 {
			argv = []string{abspath}
		}
		cb(abspath, argv, script, abi.OK)
	})
}

// doSpawn is the spawn system call: path, argv, env, plus the parent fds
// to install as the child's 0,1,2,... (inheriting parent stdio when the
// list is empty).
func (k *Kernel) doSpawn(t *Task, path string, argv, env []string, files []int, cb func(int, abi.Errno)) {
	inherit := map[int]*Desc{}
	if len(files) == 0 {
		files = []int{0, 1, 2}
	}
	for i, pfd := range files {
		if pfd < 0 {
			continue
		}
		d, err := t.lookFd(pfd)
		if err != abi.OK {
			cb(0, err)
			return
		}
		inherit[i] = d
	}
	if len(env) == 0 {
		env = t.Env
	}
	k.Spawn(t, SpawnSpec{Path: path, Args: argv, Env: env, Cwd: t.cwd, Files: inherit}, cb)
}

// doFork implements fork for runtimes that can enumerate and serialize
// their own state (§3.3: Emscripten only). The child inherits the
// descriptor table (by reference), working directory, args and env, and
// re-runs the same executable; the runtime restores the shipped memory
// image and jumps to the resume label instead of calling main.
func (k *Kernel) doFork(t *Task, img *ForkImage, cb func(int, abi.Errno)) {
	inherit := map[int]*Desc{}
	for fd, d := range t.files {
		inherit[fd] = d
	}
	k.Spawn(t, SpawnSpec{
		Path:  t.Path,
		Args:  t.Args,
		Env:   t.Env,
		Cwd:   t.cwd,
		Files: inherit,
		Fork:  img,
	}, cb)
}

// doExec replaces the calling task's image while preserving pid,
// descriptor table, and working directory.
func (k *Kernel) doExec(t *Task, path string, argv, env []string, cb func(abi.Errno)) {
	k.Spawn(nil, SpawnSpec{Path: path, Args: argv, Env: env, Cwd: t.cwd, execTask: t}, func(_ int, err abi.Errno) {
		cb(err)
	})
}

// ---------------------------------------------------------------------------
// Exit, wait4, zombies (§3.3).
// ---------------------------------------------------------------------------

// finishTask transitions a task to zombie with the given wait status:
// close descriptors, terminate the Worker, notify the parent (SIGCHLD +
// pending wait4), fire kernel-API exit callbacks, and reparent children.
func (k *Kernel) finishTask(t *Task, status int) {
	if t.state == taskZombie {
		return
	}
	t.state = taskZombie
	t.status = status
	k.releaseTaskLeases(t)
	k.releaseTaskSnapshot(t)
	k.dropPollWaiters(t)
	for fd := range t.files {
		t.closeFd(fd, func(abi.Errno) {})
	}
	if t.worker != nil {
		t.worker.Terminate()
	}
	// Reparent children to the kernel (pid 0); zombie orphans reap
	// immediately.
	for _, c := range t.children {
		c.ParentPid = 0
		if c.state == taskZombie {
			delete(k.tasks, c.Pid)
		}
	}
	t.children = map[int]*Task{}

	for _, fn := range t.onExit {
		fn(status)
	}
	t.onExit = nil

	parent := k.tasks[t.ParentPid]
	if parent == nil || parent.state == taskZombie {
		// Orphan: auto-reap.
		delete(k.tasks, t.Pid)
		return
	}
	// Wake a pending wait4 if one matches; otherwise stay a zombie.
	for i, w := range parent.waiters {
		if w.pid == -1 || w.pid == t.Pid {
			parent.waiters = append(parent.waiters[:i:i], parent.waiters[i+1:]...)
			delete(parent.children, t.Pid)
			delete(k.tasks, t.Pid)
			w.cb(t.Pid, status, abi.OK)
			k.signalTask(parent, abi.SIGCHLD)
			return
		}
	}
	k.signalTask(parent, abi.SIGCHLD)
}

// doExit is the exit system call. Runtimes must call it explicitly: a Web
// Worker context cannot know the process is done, because the main context
// could message it at any time (§3.3).
func (k *Kernel) doExit(t *Task, code int) {
	k.finishTask(t, abi.ExitStatus(code))
}

// doWait4 reaps a zombie child (§3.3), immediately if one is ready or
// WNOHANG is set, otherwise queuing the continuation.
func (k *Kernel) doWait4(t *Task, pid int, options int, cb func(pid, status int, err abi.Errno)) {
	if len(t.children) == 0 {
		cb(0, 0, abi.ECHILD)
		return
	}
	match := func(c *Task) bool { return pid == -1 || pid == c.Pid }
	for _, c := range t.children {
		if match(c) && c.state == taskZombie {
			delete(t.children, c.Pid)
			delete(k.tasks, c.Pid)
			cb(c.Pid, c.status, abi.OK)
			return
		}
	}
	if pid != -1 {
		if c := t.children[pid]; c == nil {
			cb(0, 0, abi.ECHILD)
			return
		}
	}
	if options&abi.WNOHANG != 0 {
		cb(0, 0, abi.OK)
		return
	}
	t.waiters = append(t.waiters, waitReq{pid: pid, cb: cb})
}

// ---------------------------------------------------------------------------
// Signals (§3.3): kill and signal handlers; kernel-side dispatch.
// ---------------------------------------------------------------------------

// fatalByDefault reports whether a signal's default action terminates.
func fatalByDefault(sig int) bool {
	switch sig {
	case abi.SIGCHLD, abi.SIGCONT:
		return false
	default:
		return true
	}
}

// signalTask delivers sig to t: a registered handler receives an
// asynchronous "signal" message over the same message-passing interface as
// system calls (§4.2); otherwise the default action applies.
func (k *Kernel) signalTask(t *Task, sig int) abi.Errno {
	if t == nil || t.state == taskZombie {
		return abi.ESRCH
	}
	if sig == 0 {
		return abi.OK
	}
	act := t.sigActions[sig]
	if sig == abi.SIGKILL || sig == abi.SIGSTOP {
		act = sigDefault
	}
	switch act {
	case sigCatch:
		k.SignalsDelivered.Add(1)
		t.worker.PostMessage(map[string]browser.Value{
			"type": "signal",
			"sig":  int64(sig),
			"name": abi.SignalName(sig),
		})
		// A caught signal also wakes a process blocked in a
		// synchronous wait ("awakened when the system call has
		// completed or a signal is received", §3.2); the runtime sees
		// EINTR. Message delivery handles the async case naturally.
		return abi.OK
	case sigIgnore:
		return abi.OK
	default:
		if fatalByDefault(sig) {
			k.SignalsDelivered.Add(1)
			k.finishTask(t, abi.SignalStatus(sig))
		}
		return abi.OK
	}
}

// doKill is the kill system call (and the kernel API behind the LaTeX
// editor's cancel button, which sends SIGKILL to the build processes).
func (k *Kernel) doKill(pid, sig int) abi.Errno {
	t := k.tasks[pid]
	if t == nil || t.state == taskZombie {
		return abi.ESRCH
	}
	return k.signalTask(t, sig)
}

// Kill is the exported form for the web application.
func (k *Kernel) Kill(pid, sig int) abi.Errno { return k.doKill(pid, sig) }

// doSignalAction implements the signal-registration system call.
func (k *Kernel) doSignalAction(t *Task, sig int, action int) abi.Errno {
	if sig == abi.SIGKILL || sig == abi.SIGSTOP {
		return abi.EINVAL
	}
	if sig <= 0 || sig > 31 {
		return abi.EINVAL
	}
	switch action {
	case 0:
		delete(t.sigActions, sig)
	case 1:
		t.sigActions[sig] = sigCatch
	case 2:
		t.sigActions[sig] = sigIgnore
	default:
		return abi.EINVAL
	}
	return abi.OK
}

// ---------------------------------------------------------------------------
// The web-application API (§4.1, Figure 4): process launch.
// ---------------------------------------------------------------------------

// Console exposes the stdin pipe of an interactively-launched process
// (the Browsix terminal types into dash through this).
type Console struct {
	k     *Kernel
	stdin File
	desc  *Desc
	Pid   int
}

// WriteStdin feeds bytes to the process's standard input. Call from the
// main context (inside a simulator event).
func (c *Console) WriteStdin(data []byte) {
	c.stdin.Write(c.desc, data, func(int, abi.Errno) {})
}

// WriteStdinCB is WriteStdin with a completion callback, fired once every
// byte is buffered in the pipe — the backpressure point the public API's
// stdin pump paces itself against.
func (c *Console) WriteStdinCB(data []byte, cb func(int, abi.Errno)) {
	c.stdin.Write(c.desc, data, cb)
}

// CloseStdin delivers EOF.
func (c *Console) CloseStdin() {
	c.stdin.Close(func(abi.Errno) {})
}

// ProcSpec describes a process launch through the web-application API:
// the kernel-level counterpart of the public Start(Spec) surface. Unlike
// the legacy kernel.system entry points, it carries the full POSIX launch
// context — argv, environment, working directory, and a live stdin.
type ProcSpec struct {
	// Argv is the argument vector; Argv[0] is resolved against the
	// environment's PATH when it contains no slash.
	Argv []string
	// Env is the child environment; nil selects the default environment.
	Env []string
	// Dir is the working directory; "" means "/".
	Dir string
	// KeepStdin keeps standard input open: the Console returned by
	// StartProcess writes to it. When false the child sees immediate EOF.
	KeepStdin bool
	// OnStart reports the spawn outcome: the child pid, or the errno that
	// prevented the launch (in which case no other callback ever fires).
	OnStart func(pid int, err abi.Errno)
	// OnExit fires when the process exits, with its pid and exit code
	// (128+signal for signal deaths).
	OnExit func(pid, code int)
	// OnStdout/OnStderr stream output as it is produced; a final call
	// with an empty slice signals EOF on that stream.
	OnStdout, OnStderr func([]byte)
}

// StartProcess launches a process per spec with fresh stdout/stderr pipes
// pumped to the supplied callbacks. It generalizes Figure 4's
// kernel.system: env, cwd, and an open stdin travel through the same
// spawn path every transport shares.
func (k *Kernel) StartProcess(spec ProcSpec) *Console {
	console := &Console{k: k}
	if len(spec.Argv) == 0 {
		if spec.OnStart != nil {
			spec.OnStart(0, abi.ENOENT)
		}
		return console
	}
	env := spec.Env
	if env == nil {
		env = defaultEnv()
	}
	dir := spec.Dir
	if dir == "" {
		dir = "/"
	}

	stdinR, stdinW := NewPipePair()
	console.stdin = stdinW
	if spec.KeepStdin {
		console.desc = NewDesc(stdinW, abi.O_WRONLY, "pipe:console")
	} else {
		stdinW.Close(func(abi.Errno) {}) // empty stdin: immediate EOF
	}
	outR, outW := NewPipePair()
	errR, errW := NewPipePair()

	files := map[int]*Desc{
		0: NewDesc(stdinR, abi.O_RDONLY, "pipe:stdin"),
		1: NewDesc(outW, abi.O_WRONLY, "pipe:stdout"),
		2: NewDesc(errW, abi.O_WRONLY, "pipe:stderr"),
	}
	k.pumpPipe(outR, spec.OnStdout)
	k.pumpPipe(errR, spec.OnStderr)

	argv := spec.Argv
	k.lookPath(argv[0], env, func(path string) {
		k.Spawn(nil, SpawnSpec{Path: path, Args: argv, Env: env, Cwd: fs.Clean(dir), Files: files}, func(pid int, err abi.Errno) {
			// Drop the kernel's references so the child holds the only
			// ones; EOF propagates when it exits.
			for _, d := range files {
				d.Unref(func(abi.Errno) {})
			}
			if err != abi.OK {
				if spec.OnStart != nil {
					spec.OnStart(0, err)
				}
				return
			}
			console.Pid = pid
			t := k.tasks[pid]
			t.onExit = append(t.onExit, func(status int) {
				code := abi.WEXITSTATUS(status)
				if abi.WIFSIGNALED(status) {
					code = 128 + abi.WTERMSIG(status)
				}
				if spec.OnExit != nil {
					spec.OnExit(pid, code)
				}
			})
			if spec.OnStart != nil {
				spec.OnStart(pid, abi.OK)
			}
		})
	})
	return console
}

// SplitCmdline turns a command line into the argv StartProcess expects:
// lines containing shell metacharacters run under /bin/sh -c, anything
// else is split on whitespace.
func SplitCmdline(cmdline string) []string {
	if strings.ContainsAny(cmdline, "|&;<>$`()*?\"'") {
		return []string{"/bin/sh", "-c", cmdline}
	}
	return strings.Fields(cmdline)
}

// System launches a command line as a Browsix process with streaming
// stdout/stderr callbacks — the API in Figure 4, now a thin wrapper over
// StartProcess.
//
// Deprecated: use StartProcess (or the public browsix.Instance.Start),
// which carries env, cwd, and stdin and reports spawn errors precisely.
func (k *Kernel) System(cmdline string, onExit func(pid, code int), onStdout, onStderr func([]byte)) {
	k.system(cmdline, false, onExit, onStdout, onStderr)
}

// SystemInteractive is System with standard input kept open; the returned
// Console writes to it. It backs the terminal case study (§5.1.2).
//
// Deprecated: use StartProcess with KeepStdin.
func (k *Kernel) SystemInteractive(cmdline string, onExit func(pid, code int), onStdout, onStderr func([]byte)) *Console {
	return k.system(cmdline, true, onExit, onStdout, onStderr)
}

func (k *Kernel) system(cmdline string, keepStdin bool, onExit func(pid, code int), onStdout, onStderr func([]byte)) *Console {
	drop := func(cb func([]byte)) func([]byte) {
		if cb == nil {
			return nil
		}
		// Legacy callbacks never saw the empty EOF marker.
		return func(b []byte) {
			if len(b) > 0 {
				cb(b)
			}
		}
	}
	return k.StartProcess(ProcSpec{
		Argv:      SplitCmdline(cmdline),
		KeepStdin: keepStdin,
		OnStart: func(pid int, err abi.Errno) {
			if err != abi.OK {
				onExit(0, 127) // legacy contract: launch failure looks like exit 127
			}
		},
		OnExit:   onExit,
		OnStdout: drop(onStdout),
		OnStderr: drop(onStderr),
	})
}

// lookPath resolves a bare command name against the environment's PATH
// (the shell does its own lookup; this covers direct kernel launches).
func (k *Kernel) lookPath(name string, env []string, cb func(path string)) {
	if strings.Contains(name, "/") {
		cb(name)
		return
	}
	path := "/usr/bin:/bin"
	for _, kv := range env {
		if strings.HasPrefix(kv, "PATH=") {
			path = kv[len("PATH="):]
			break
		}
	}
	dirs := strings.Split(path, ":")
	var try func(i int)
	try = func(i int) {
		if i >= len(dirs) {
			cb(name)
			return
		}
		if dirs[i] == "" {
			try(i + 1)
			return
		}
		cand := dirs[i] + "/" + name
		k.FS.Stat(cand, func(_ abi.Stat, err abi.Errno) {
			if err == abi.OK {
				cb(cand)
				return
			}
			try(i + 1)
		})
	}
	try(0)
}

// defaultEnv is the environment kernel-initiated processes receive.
func defaultEnv() []string {
	return []string{"PATH=/usr/bin:/bin", "HOME=/", "TERM=xterm", "USER=browsix"}
}

// pumpPipe streams a kernel-held pipe read end to a callback until EOF,
// then closes it. EOF is signalled by a final cb(nil) call so stream
// consumers can distinguish "no more output" from "none yet".
func (k *Kernel) pumpPipe(readEnd File, cb func([]byte)) {
	d := NewDesc(readEnd, abi.O_RDONLY, "pipe:pump")
	var loop func()
	loop = func() {
		readEnd.Read(d, 32*1024, func(data []byte, err abi.Errno) {
			if err != abi.OK || len(data) == 0 {
				readEnd.Close(func(abi.Errno) {})
				if cb != nil {
					cb(nil)
				}
				return
			}
			if cb != nil {
				cb(data)
			}
			loop()
		})
	}
	loop()
}
