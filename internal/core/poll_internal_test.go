package core

import (
	"testing"

	"repro/internal/abi"
)

// Socket-readiness and non-blocking semantics tests: the kernel half of
// the event-driven server (SYS_poll, O_NONBLOCK, accept batching). The
// ringWorld harness from batch_internal_test.go provides the kernel, a
// synthetic ring-registered task, and the doorbell drain.

// ringListener pushes socket/bind/listen through real ring frames and
// returns the listener fd.
func ringListener(t *testing.T, w *ringWorld, port, backlog int) int {
	r := w.task.ring.req
	if !r.PushCall(0, abi.SYS_socket, nil) {
		t.Fatal("push socket")
	}
	w.drain(t)
	_, ret, errno, ok := w.task.ring.rep.PopReply()
	if !ok || errno != abi.OK {
		t.Fatalf("socket: ok=%v errno=%v", ok, errno)
	}
	lfd := int(ret)
	r.PushCall(1, abi.SYS_bind, []int64{int64(lfd), int64(port)})
	r.PushCall(2, abi.SYS_listen, []int64{int64(lfd), int64(backlog)})
	w.drain(t)
	for i := 0; i < 2; i++ {
		_, _, errno, ok := w.task.ring.rep.PopReply()
		if !ok || errno != abi.OK {
			t.Fatalf("bind/listen reply %d: ok=%v errno=%v", i, ok, errno)
		}
	}
	return lfd
}

// connectClients opens n kernel-side connections to port, failing the
// test unless every handshake succeeds.
func connectClients(t *testing.T, w *ringWorld, port, n int) []*KernelConn {
	conns := make([]*KernelConn, 0, n)
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		for i := 0; i < n; i++ {
			w.k.Connect(port, func(c *KernelConn, err abi.Errno) {
				if err != abi.OK {
					t.Errorf("connect %d: %v", i, err)
					return
				}
				conns = append(conns, c)
			})
		}
		done = true
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatal("connects never ran")
	}
	return conns
}

// stagePollFrame packs one single-fd pollfd record at ptr and pushes a
// SYS_poll probe frame (timeout 0).
func stagePollFrame(t *testing.T, w *ringWorld, seq uint32, ptr int64, fd int, events uint32) {
	buf := make([]byte, abi.PollfdSize)
	abi.PackPollfds(buf, []abi.Pollfd{{Fd: int32(fd), Events: events}})
	copy(w.task.heap.Bytes()[ptr:], buf)
	if !w.task.ring.req.PushCall(seq, abi.SYS_poll, []int64{ptr, 1, 0}) {
		t.Fatalf("push poll frame %d", seq)
	}
}

// TestPollAcceptStormSingleNotify is the acceptance guard for batched
// readiness dispatch: a drained doorbell carrying poll probes AND a full
// backlog's worth of non-blocking accepts (plus over-asks that answer
// EAGAIN) completes in ONE batched pass with exactly one ring notify.
func TestPollAcceptStormSingleNotify(t *testing.T) {
	w := newRingWorld(t)
	const port = 9000
	lfd := ringListener(t, w, port, 16)
	conns := connectClients(t, w, port, 8)
	if len(conns) != 8 {
		t.Fatalf("connected %d clients, want 8", len(conns))
	}

	// The storm: 4 poll probes of the listener + 10 nonblock accepts
	// (8 succeed, 2 over-ask EAGAIN), all behind one doorbell.
	const polls, accepts = 4, 10
	pollPtrs := make([]int64, polls)
	seq := uint32(0)
	for i := 0; i < polls; i++ {
		pollPtrs[i] = int64(4096 + i*64)
		stagePollFrame(t, w, seq, pollPtrs[i], lfd, abi.POLLIN)
		seq++
	}
	for i := 0; i < accepts; i++ {
		if !w.task.ring.req.PushCall(seq, abi.SYS_accept, []int64{int64(lfd), int64(abi.O_NONBLOCK)}) {
			t.Fatalf("push accept frame %d", i)
		}
		seq++
	}

	before := w.k.RingNotifies.Load()
	w.drain(t)
	if got := w.k.RingNotifies.Load() - before; got != 1 {
		t.Fatalf("poll+accept storm produced %d notifies, want exactly 1", got)
	}

	gotAccepts, gotEAGAIN := 0, 0
	for {
		s, ret, errno, ok := w.task.ring.rep.PopReply()
		if !ok {
			break
		}
		switch {
		case s < polls: // poll probe
			if errno != abi.OK || ret != 1 {
				t.Fatalf("poll frame %d: ret=%d errno=%v", s, ret, errno)
			}
			got := abi.UnpackPollfds(w.task.heap.Bytes()[pollPtrs[s]:pollPtrs[s]+abi.PollfdSize], 1)
			if got[0].Revents&abi.POLLIN == 0 {
				t.Fatalf("poll frame %d: revents %#x, want POLLIN", s, got[0].Revents)
			}
		case errno == abi.OK:
			if ret < 0 {
				t.Fatalf("accept frame %d: fd %d", s, ret)
			}
			gotAccepts++
		case errno == abi.EAGAIN:
			gotEAGAIN++
		default:
			t.Fatalf("accept frame %d: errno %v", s, errno)
		}
	}
	if gotAccepts != 8 || gotEAGAIN != 2 {
		t.Fatalf("accepts=%d eagain=%d, want 8 and 2", gotAccepts, gotEAGAIN)
	}
}

// TestBacklogOverflowRefusal: connects beyond the listen backlog are
// refused while no accept is parked, and accepting frees a slot.
func TestBacklogOverflowRefusal(t *testing.T) {
	w := newRingWorld(t)
	const port = 9001
	ringListener(t, w, port, 4)

	results := make([]abi.Errno, 0, 6)
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		for i := 0; i < 5; i++ {
			w.k.Connect(port, func(_ *KernelConn, err abi.Errno) {
				results = append(results, err)
			})
		}
		// Accept one; the freed slot lets one more connect in.
		l := w.k.ports[port]
		w.k.AcceptSocket(l, true, func(c *Socket, err abi.Errno) {
			if err != abi.OK {
				t.Errorf("accept after overflow: %v", err)
			}
		})
		w.k.Connect(port, func(_ *KernelConn, err abi.Errno) {
			results = append(results, err)
		})
		done = true
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatal("never completed")
	}
	want := []abi.Errno{abi.OK, abi.OK, abi.OK, abi.OK, abi.ECONNREFUSED, abi.OK}
	if len(results) != len(want) {
		t.Fatalf("results %v", results)
	}
	for i, err := range results {
		if err != want[i] {
			t.Fatalf("connect %d: %v, want %v (all: %v)", i, err, want[i], results)
		}
	}
}

// TestCloseWhileAcceptParked: closing the listener fails the parked
// accept with EINVAL instead of leaking the waiter.
func TestCloseWhileAcceptParked(t *testing.T) {
	w := newRingWorld(t)
	const port = 9002
	ringListener(t, w, port, 4)

	var acceptErr abi.Errno = -1
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		l := w.k.ports[port]
		w.k.AcceptSocket(l, false, func(_ *Socket, err abi.Errno) { acceptErr = err })
		if acceptErr != -1 {
			t.Error("accept completed with empty backlog")
		}
		l.Close(func(abi.Errno) {})
		done = true
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatal("never completed")
	}
	if acceptErr != abi.EINVAL {
		t.Fatalf("parked accept got %v, want EINVAL", acceptErr)
	}
	// The port is released: a later connect is refused outright.
	var connErr abi.Errno = -1
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		w.k.Connect(port, func(_ *KernelConn, err abi.Errno) { connErr = err })
	})
	w.sim.RunUntil(func() bool { return connErr != -1 })
	if connErr != abi.ECONNREFUSED {
		t.Fatalf("connect after close: %v, want ECONNREFUSED", connErr)
	}
}

// acceptPeer dequeues one established connection from port's listener.
func acceptPeer(t *testing.T, w *ringWorld, port int) *Socket {
	var got *Socket
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		w.k.AcceptSocket(w.k.ports[port], true, func(c *Socket, err abi.Errno) {
			if err != abi.OK {
				t.Errorf("accept: %v", err)
				return
			}
			got = c
		})
	})
	if !w.sim.RunUntil(func() bool { return got != nil }) {
		t.Fatal("accept never completed")
	}
	return got
}

// TestHalfCloseReadDrain: after the peer closes, buffered bytes still
// drain before EOF, and poll reports POLLIN|POLLHUP throughout.
func TestHalfCloseReadDrain(t *testing.T) {
	w := newRingWorld(t)
	const port = 9003
	ringListener(t, w, port, 4)
	conns := connectClients(t, w, port, 1)
	srv := acceptPeer(t, w, port)
	d := NewDesc(srv, abi.O_RDWR, "socket:conn")
	fd := w.task.installFd(d)

	var steps []string
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		conns[0].Write([]byte("tail-bytes"), func(n int, err abi.Errno) {
			if err != abi.OK || n != 10 {
				t.Errorf("client write: n=%d err=%v", n, err)
			}
		})
		conns[0].Close()

		fds := []abi.Pollfd{{Fd: int32(fd), Events: abi.POLLIN}}
		if n := pollScan(w.task, fds); n != 1 {
			t.Errorf("pollScan = %d", n)
		}
		if fds[0].Revents&abi.POLLIN == 0 || fds[0].Revents&abi.POLLHUP == 0 {
			t.Errorf("revents before drain: %#x, want POLLIN|POLLHUP", fds[0].Revents)
		}

		srv.Read(d, 64, func(b []byte, err abi.Errno) {
			steps = append(steps, "read:"+string(b))
			// Drained: readiness is still POLLIN (EOF readable) + HUP.
			fds[0].Revents = 0
			pollScan(w.task, fds)
			if fds[0].Revents&(abi.POLLIN|abi.POLLHUP) != abi.POLLIN|abi.POLLHUP {
				t.Errorf("revents after drain: %#x", fds[0].Revents)
			}
			srv.Read(d, 64, func(b []byte, err abi.Errno) {
				if err != abi.OK || len(b) != 0 {
					t.Errorf("EOF read: len=%d err=%v", len(b), err)
				}
				steps = append(steps, "eof")
				done = true
			})
		})
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatal("never completed")
	}
	if len(steps) != 2 || steps[0] != "read:tail-bytes" || steps[1] != "eof" {
		t.Fatalf("steps: %v", steps)
	}
}

// TestNonblockEAGAIN: non-blocking reads on an empty socket and writes
// into a full send buffer answer EAGAIN (after a short write takes what
// fits) instead of parking.
func TestNonblockEAGAIN(t *testing.T) {
	w := newRingWorld(t)
	const port = 9004
	ringListener(t, w, port, 4)
	conns := connectClients(t, w, port, 1)
	srv := acceptPeer(t, w, port)
	nb := NewDesc(srv, abi.O_RDWR|abi.O_NONBLOCK, "socket:conn")

	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		srv.Read(nb, 64, func(b []byte, err abi.Errno) {
			if err != abi.EAGAIN {
				t.Errorf("empty nonblock read: err=%v", err)
			}
		})
		// Fill the send pipe: the first oversized write is short, the
		// next answers EAGAIN.
		srv.Write(nb, make([]byte, PipeCap+1), func(n int, err abi.Errno) {
			if err != abi.OK || n != PipeCap {
				t.Errorf("filling write: n=%d err=%v", n, err)
			}
		})
		srv.Write(nb, []byte("x"), func(n int, err abi.Errno) {
			if err != abi.EAGAIN || n != 0 {
				t.Errorf("full nonblock write: n=%d err=%v", n, err)
			}
		})
		// POLLOUT must be absent while full, POLLIN absent while empty.
		fds := []abi.Pollfd{{Fd: int32(w.task.installFd(nb)), Events: abi.POLLIN | abi.POLLOUT}}
		pollScan(w.task, fds)
		if fds[0].Revents != 0 {
			t.Errorf("revents on stalled conn: %#x, want 0", fds[0].Revents)
		}
		// The client draining its side restores POLLOUT.
		conns[0].Read(PipeCap, func(b []byte, err abi.Errno) {
			if err != abi.OK || len(b) != PipeCap {
				t.Errorf("client drain: len=%d err=%v", len(b), err)
			}
			fds[0].Revents = 0
			pollScan(w.task, fds)
			if fds[0].Revents&abi.POLLOUT == 0 {
				t.Errorf("revents after drain: %#x, want POLLOUT", fds[0].Revents)
			}
			done = true
		})
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatal("never completed")
	}
}

// TestPollParkAndKick: a parked poll (infinite timeout) wakes when data
// arrives, and a parked poll with a timeout completes with zero ready
// fds at the virtual deadline.
func TestPollParkAndKick(t *testing.T) {
	w := newRingWorld(t)
	const port = 9005
	ringListener(t, w, port, 4)
	conns := connectClients(t, w, port, 1)
	srv := acceptPeer(t, w, port)
	fd := w.task.installFd(NewDesc(srv, abi.O_RDWR, "socket:conn"))

	var wokeN int
	var wokeAt int64
	done := false
	w.sim.Post(w.sys.Main.Sched(), w.sim.Now(), func() {
		fds := []abi.Pollfd{{Fd: int32(fd), Events: abi.POLLIN}}
		w.k.doPoll(w.task, fds, -1, func(n int, err abi.Errno) {
			wokeN = n
			if err != abi.OK || fds[0].Revents&abi.POLLIN == 0 {
				t.Errorf("poll wake: n=%d err=%v revents=%#x", n, err, fds[0].Revents)
			}
		})
		if wokeN != 0 {
			t.Error("poll completed with no data")
		}
		if len(w.k.pollParked) != 1 {
			t.Errorf("pollParked = %d, want 1", len(w.k.pollParked))
		}
		conns[0].Write([]byte("wake"), func(int, abi.Errno) {})
		if wokeN != 1 {
			t.Errorf("parked poll not kicked by peer write (n=%d)", wokeN)
		}

		// Timed poll on a now-drained descriptor: fires at the deadline
		// with zero ready.
		srv.Read(nil, 64, func([]byte, abi.Errno) {})
		start := w.sim.Now()
		tfds := []abi.Pollfd{{Fd: int32(fd), Events: abi.POLLIN}}
		w.k.doPoll(w.task, tfds, 5_000_000, func(n int, err abi.Errno) {
			if n != 0 || err != abi.OK {
				t.Errorf("timeout poll: n=%d err=%v", n, err)
			}
			wokeAt = w.sim.Now() - start
			done = true
		})
	})
	if !w.sim.RunUntil(func() bool { return done }) {
		t.Fatal("timed poll never fired")
	}
	if wokeAt < 5_000_000 {
		t.Fatalf("timed poll fired after %dns, want >= 5ms", wokeAt)
	}
	if len(w.k.pollParked) != 0 {
		t.Fatalf("pollParked = %d after completion, want 0", len(w.k.pollParked))
	}
}
