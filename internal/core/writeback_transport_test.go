package core_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/posix"
	"repro/internal/rt"
)

// t-writeback is the crash-consistency-style differential program: a
// pdflatex-shaped append burst with an fsync barrier in the middle, a
// stat while bytes are still buffered, a batched stat storm, and a full
// readback. Its output must be byte-identical on every transport and
// with the write-back cache on or off.
func init() {
	posix.Register(&posix.Program{Name: "t-writeback", Main: func(p posix.Proc) int {
		fd, err := p.Open("/wb.log", abi.O_WRONLY|abi.O_CREAT|abi.O_APPEND, 0o644)
		if err != abi.OK {
			return 1
		}
		line := []byte("log line for the write-back differential........\n")
		for i := 0; i < 100; i++ {
			if _, err := p.Write(fd, line); err != abi.OK {
				return 2
			}
		}
		// Stat while the tail of the burst may still be buffered: the
		// VFS must report the virtual (buffered) size.
		st, serr := p.Stat("/wb.log")
		if serr != abi.OK {
			return 3
		}
		posix.Fprintf(p, abi.Stdout, "mid size=%d\n", st.Size)
		if err := p.Fsync(fd); err != abi.OK {
			return 4
		}
		for i := 0; i < 100; i++ {
			if _, err := p.Write(fd, line); err != abi.OK {
				return 5
			}
		}
		if err := p.Close(fd); err != abi.OK {
			return 6
		}

		// Batched stat storm over present and missing names.
		paths := []string{"/wb.log", "/missing-a", "/wb.log", "/missing-b"}
		sts, errs := p.StatBatch(paths, false)
		for i := range paths {
			posix.Fprintf(p, abi.Stdout, "stat %s: size=%d err=%d\n", paths[i], sts[i].Size, int(errs[i]))
		}

		// Full readback: prove every buffered byte landed, in order.
		rfd, err := p.Open("/wb.log", abi.O_RDONLY, 0)
		if err != abi.OK {
			return 7
		}
		var total, sum int
		for {
			b, rerr := p.Read(rfd, 32*1024)
			if rerr != abi.OK {
				return 8
			}
			if len(b) == 0 {
				break
			}
			for _, c := range b {
				sum = (sum*131 + int(c)) % 1000003
			}
			total += len(b)
		}
		p.Close(rfd)
		posix.Fprintf(p, abi.Stdout, "final size=%d hash=%d\n", total, sum)
		return 0
	}})
}

// TestWriteBackIdenticalAcrossTransports runs t-writeback on the async,
// scalar-sync, and ring transports, each with the write-back data path
// on and off: all six outputs must be byte-identical, and the
// write-back runs must actually coalesce (buffered writes >> flushes).
func TestWriteBackIdenticalAcrossTransports(t *testing.T) {
	type cfg struct {
		name        string
		kind        rt.Kind
		disableRing bool
	}
	cases := []cfg{
		{"async-node", rt.NodeKind, false},
		{"sync-scalar", rt.EmSyncKind, true},
		{"sync-ring", rt.EmSyncKind, false},
	}
	outputs := map[string]string{}
	for _, c := range cases {
		for _, writeBack := range []bool{true, false} {
			name := c.name
			if writeBack {
				name += "+wb"
			} else {
				name += "-wb"
			}
			w := boot(t)
			w.k.DisableRing = c.disableRing
			w.install(t, "/usr/bin/t-writeback", "t-writeback", c.kind)
			w.fs.SetWriteBack(writeBack)
			before := w.fs.CacheStats()
			code, out, errOut := w.run(t, "/usr/bin/t-writeback")
			if code != 0 {
				t.Fatalf("%s: exited %d (stderr %q)", name, code, errOut)
			}
			outputs[name] = out
			stats := w.fs.CacheStats()
			buffered := stats.BufferedWrites - before.BufferedWrites
			flushed := stats.FlushWrites - before.FlushWrites
			if writeBack {
				if buffered < 200 {
					t.Errorf("%s: only %d writes buffered", name, buffered)
				}
				if flushed >= buffered/10 {
					t.Errorf("%s: %d flush writes for %d buffered — no coalescing",
						name, flushed, buffered)
				}
			} else if buffered != 0 {
				t.Errorf("%s: write-back off but %d writes buffered", name, buffered)
			}
		}
	}
	var want string
	for _, out := range outputs {
		want = out
		break
	}
	for name, out := range outputs {
		if out != want {
			t.Errorf("%s output diverges:\n%q\nvs\n%q", name, out, want)
		}
	}
}

// TestFsyncAcrossTransports: fsync on a pipe (no buffered state) and on
// a bad fd behave identically everywhere.
func init() {
	posix.Register(&posix.Program{Name: "t-fsync-edge", Main: func(p posix.Proc) int {
		r, w, err := p.Pipe()
		if err != abi.OK {
			return 1
		}
		posix.Fprintf(p, abi.Stdout, "pipe fsync=%d\n", int(p.Fsync(w)))
		posix.Fprintf(p, abi.Stdout, "badfd fsync=%d\n", int(p.Fsync(99)))
		p.Close(r)
		p.Close(w)
		return 0
	}})
}

func TestFsyncAcrossTransports(t *testing.T) {
	want := "pipe fsync=0\nbadfd fsync=9\n"
	for _, c := range []struct {
		name        string
		kind        rt.Kind
		disableRing bool
	}{
		{"async-node", rt.NodeKind, false},
		{"sync-scalar", rt.EmSyncKind, true},
		{"sync-ring", rt.EmSyncKind, false},
	} {
		w := boot(t)
		w.k.DisableRing = c.disableRing
		w.install(t, "/usr/bin/t-fsync-edge", "t-fsync-edge", c.kind)
		code, out, errOut := w.run(t, "/usr/bin/t-fsync-edge")
		if code != 0 {
			t.Fatalf("%s: exited %d (stderr %q)", c.name, code, errOut)
		}
		if out != want {
			t.Errorf("%s: %q, want %q", c.name, out, want)
		}
	}
}
