package core_test

import (
	"bytes"
	"testing"

	"repro/internal/fs"
	"repro/internal/rt"
)

// Grant-path dedup: two files with identical bytes occupy ONE set of
// arena slots, and the ring transport serves page grants out of those
// shared slots to multiple tasks — with lease accounting that still
// balances exactly at process exit.

func TestDedupSharedSlotsServeGrants(t *testing.T) {
	w := boot(t)
	content := zcPattern(9, 256<<10+100)
	pages := int64((len(content) + fs.PageSize - 1) / fs.PageSize)
	// rep.bin is four IDENTICAL pages: one slot, granted repeatedly to
	// the same descriptor — the duplicate-grant lease bookkeeping case.
	rep := bytes.Repeat(zcPattern(5, fs.PageSize), 4)
	mountRO(t, w, map[string][]byte{
		"/one.bin": content,
		"/two.bin": content,
		"/rep.bin": rep,
	})
	w.install(t, "/usr/bin/t-zcread", "t-zcread", rt.EmSyncKind)

	// The cold fault of the first copy fills the shared tier (read-only
	// backend); the second copy must then be pure index hits.
	code, out1, _ := w.run(t, "/usr/bin/t-zcread /ro/one.bin")
	if code != 0 {
		t.Fatalf("read one.bin exited %d", code)
	}
	cs := w.fs.CacheStats()
	if cs.DedupStores < pages {
		t.Fatalf("DedupStores = %d after cold read, want >= %d", cs.DedupStores, pages)
	}
	hitsBefore := cs.DedupHits

	code, out2, _ := w.run(t, "/usr/bin/t-zcread /ro/two.bin")
	if code != 0 {
		t.Fatalf("read two.bin exited %d", code)
	}
	if out1 != out2 {
		t.Fatalf("identical files hashed differently: %q vs %q", out1, out2)
	}
	cs = w.fs.CacheStats()
	if d := cs.DedupHits - hitsBefore; d != pages {
		t.Fatalf("second file scored %d dedup hits, want %d (every page shared)", d, pages)
	}
	if cs.DedupPages < pages || cs.SharedBytes < int64(len(content)) {
		t.Fatalf("shared footprint: pages=%d bytes=%d, want >= %d/%d",
			cs.DedupPages, cs.SharedBytes, pages, len(content))
	}

	// The repeated-page file collapses to ONE slot with one reference
	// per page; cold and warm reads must both hold together.
	if code, _, _ := w.run(t, "/usr/bin/t-zcread /ro/rep.bin"); code != 0 {
		t.Fatalf("cold read rep.bin exited %d", code)
	}
	if g, r := w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load(); g != r {
		t.Fatalf("repeated-page leases leaked: %d granted, %d returned", g, r)
	}

	// Warm reads of BOTH names are grant-served from the same slots: no
	// per-byte copies, and every lease comes back by exit.
	copied, grants := w.k.ReadCopiedBytes.Load(), w.k.LeaseGrants.Load()
	for _, path := range []string{"/ro/one.bin", "/ro/two.bin", "/ro/rep.bin"} {
		code, out, _ := w.run(t, "/usr/bin/t-zcread "+path)
		if code != 0 {
			t.Fatalf("warm read %s: code=%d out=%q", path, code, out)
		}
		if path != "/ro/rep.bin" && out != out1 {
			t.Fatalf("warm read %s diverged: %q", path, out)
		}
	}
	if d := w.k.ReadCopiedBytes.Load() - copied; d != 0 {
		t.Fatalf("warm shared reads copied %d payload bytes, want 0", d)
	}
	if w.k.LeaseGrants.Load() == grants {
		t.Fatal("warm shared reads took no page leases — grant path unused")
	}
	if g, r := w.k.LeaseGrants.Load(), w.k.LeaseReturns.Load(); g != r {
		t.Fatalf("leases leaked on shared slots: %d granted, %d returned", g, r)
	}
	if pins := w.fs.CacheStats().PinnedPages; pins != 0 {
		t.Fatalf("%d pool pages still pinned after exit", pins)
	}
}

// TestDedupReleaseOnInvalidate: dropping every cache that references a
// shared slot while a transport COULD still race a read is covered by
// the fs stress suite; here we pin the cheap end-to-end variant — a
// full cache flush between runs returns the arena to empty (no index
// entry outlives its last referencing cache).
func TestDedupFlushReturnsSharedSlots(t *testing.T) {
	w := boot(t)
	content := zcPattern(4, 64<<10)
	mountRO(t, w, map[string][]byte{
		"/a.bin": content,
		"/b.bin": content,
	})
	w.install(t, "/usr/bin/t-zcread", "t-zcread", rt.EmSyncKind)
	for _, p := range []string{"/ro/a.bin", "/ro/b.bin"} {
		if code, _, _ := w.run(t, "/usr/bin/t-zcread "+p); code != 0 {
			t.Fatalf("read %s failed", p)
		}
	}
	if cs := w.fs.CacheStats(); cs.DedupPages == 0 {
		t.Fatal("no shared pages after identical reads")
	}
	w.fs.FlushCaches()
	cs := w.fs.CacheStats()
	if cs.CachedPages != 0 || cs.PinnedPages != 0 {
		t.Fatalf("after flush: cached=%d pinned=%d, want 0/0", cs.CachedPages, cs.PinnedPages)
	}
}
