// Package mk implements the GNU Make subset the LaTeX case study runs
// (§2): variable definitions and $(VAR) expansion, rules with
// prerequisites, tab-indented recipes, .PHONY, @/- recipe prefixes, -f /
// -C flags, and mtime-based rebuild decisions.
//
// Faithfully to the paper, make is the one program in the LaTeX workflow
// that calls fork (§2.2: "only GNU Make uses fork and requires this
// setting"): every recipe line runs in a forked child that restores the
// shipped memory snapshot and execs `/bin/sh -c <recipe>` — the
// Emscripten fork mechanism of §4.3 — so it must be installed under the
// Emterpreter (em-async) runtime.
package mk

import (
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

func init() {
	posix.Register(&posix.Program{
		Name:       "make",
		Main:       Main,
		ResumeFork: resumeFork,
	})
}

// rule is one Makefile rule.
type rule struct {
	target  string
	deps    []string
	recipe  []string
	phony   bool
	defined bool
}

// makefile is a parsed Makefile.
type makefile struct {
	vars  map[string]string
	rules map[string]*rule
	order []string // rule definition order; first is the default goal
}

// Main is the `make` entry point.
func Main(p posix.Proc) int {
	args := p.Args()[1:]
	file := "Makefile"
	var goals []string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-f" && i+1 < len(args):
			file = args[i+1]
			i++
		case args[i] == "-C" && i+1 < len(args):
			if err := p.Chdir(args[i+1]); err != abi.OK {
				return fail(p, "chdir %s: %v", args[i+1], err)
			}
			i++
		case strings.HasPrefix(args[i], "-"):
			// ignore other flags (-j is meaningless here)
		default:
			goals = append(goals, args[i])
		}
	}
	src, err := posix.ReadFile(p, file)
	if err != abi.OK {
		return fail(p, "%s: %v", file, err)
	}
	mf, perr := parseMakefile(string(src))
	if perr != "" {
		return fail(p, "%s: %s", file, perr)
	}
	if len(goals) == 0 {
		if len(mf.order) == 0 {
			return fail(p, "no targets")
		}
		goals = []string{mf.order[0]}
	}
	m := &runner{p: p, mf: mf, building: map[string]bool{}}
	for _, goal := range goals {
		built, code := m.build(goal)
		if code != 0 {
			return code
		}
		if !built {
			posix.Fprintf(p, abi.Stdout, "make: '%s' is up to date.\n", goal)
		}
	}
	return 0
}

func fail(p posix.Proc, format string, args ...any) int {
	posix.Fprintf(p, abi.Stderr, "make: "+format+"\n", args...)
	return 2
}

// parseMakefile handles variables, rules, recipes, comments, and line
// continuations.
func parseMakefile(src string) (*makefile, string) {
	mf := &makefile{vars: map[string]string{}, rules: map[string]*rule{}}
	// Fold continuations.
	src = strings.ReplaceAll(src, "\\\n", " ")
	var current []*rule
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "\t") {
			if len(current) == 0 {
				return nil, "recipe before any target"
			}
			text := strings.TrimPrefix(line, "\t")
			if strings.TrimSpace(text) == "" {
				continue
			}
			for _, r := range current {
				r.recipe = append(r.recipe, text)
			}
			continue
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		// Variable assignment? (VAR = value, VAR := value)
		if name, value, ok := splitAssign(trimmed); ok {
			mf.vars[name] = expandVars(value, mf.vars)
			current = nil
			continue
		}
		// Rule line: targets: deps
		colon := strings.IndexByte(trimmed, ':')
		if colon < 0 {
			return nil, "malformed line: " + trimmed
		}
		targets := strings.Fields(expandVars(trimmed[:colon], mf.vars))
		deps := strings.Fields(expandVars(trimmed[colon+1:], mf.vars))
		if len(targets) == 1 && targets[0] == ".PHONY" {
			for _, d := range deps {
				mf.rule(d).phony = true
			}
			current = nil
			continue
		}
		current = nil
		for _, t := range targets {
			r := mf.rule(t)
			r.defined = true
			r.deps = append(r.deps, deps...)
			current = append(current, r)
		}
	}
	return mf, ""
}

func splitAssign(line string) (string, string, bool) {
	for _, op := range []string{":=", "="} {
		if i := strings.Index(line, op); i > 0 {
			name := strings.TrimSpace(line[:i])
			if strings.ContainsAny(name, " \t:") {
				continue
			}
			return name, strings.TrimSpace(line[i+len(op):]), true
		}
	}
	return "", "", false
}

func (mf *makefile) rule(target string) *rule {
	if r, ok := mf.rules[target]; ok {
		return r
	}
	r := &rule{target: target}
	mf.rules[target] = r
	mf.order = append(mf.order, target)
	return r
}

// expandVars substitutes $(VAR) and ${VAR} references.
func expandVars(s string, vars map[string]string) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '$' && i+1 < len(s) {
			switch s[i+1] {
			case '(', '{':
				closeCh := byte(')')
				if s[i+1] == '{' {
					closeCh = '}'
				}
				end := strings.IndexByte(s[i+2:], closeCh)
				if end >= 0 {
					name := s[i+2 : i+2+end]
					sb.WriteString(vars[name])
					i += end + 3
					continue
				}
			case '$':
				sb.WriteByte('$')
				i += 2
				continue
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// runner executes the build graph.
type runner struct {
	p        posix.Proc
	mf       *makefile
	building map[string]bool
}

// build brings target up to date; reports whether work ran.
func (m *runner) build(target string) (bool, int) {
	if m.building[target] {
		return false, fail(m.p, "circular dependency on %s", target)
	}
	m.building[target] = true
	defer delete(m.building, target)

	r := m.mf.rules[target]
	st, serr := m.p.Stat(target)
	if r == nil || !r.defined {
		if serr == abi.OK {
			return false, 0 // plain source file
		}
		return false, fail(m.p, "no rule to make target '%s'", target)
	}
	ran := false
	var newestDep int64
	for _, dep := range r.deps {
		depRan, code := m.build(dep)
		if code != 0 {
			return false, code
		}
		ran = ran || depRan
		if dst, derr := m.p.Stat(dep); derr == abi.OK && dst.Mtime > newestDep {
			newestDep = dst.Mtime
		}
	}
	need := r.phony || serr != abi.OK || newestDep > st.Mtime
	if !need || len(r.recipe) == 0 {
		return ran, 0
	}
	ran = true
	auto := map[string]string{
		"@": r.target,
		"<": first(r.deps),
		"^": strings.Join(dedup(r.deps), " "),
	}
	for _, line := range r.recipe {
		cmd := m.expandRecipe(line, auto)
		silent := false
		ignoreErr := false
		for {
			if strings.HasPrefix(cmd, "@") {
				silent, cmd = true, cmd[1:]
				continue
			}
			if strings.HasPrefix(cmd, "-") {
				ignoreErr, cmd = true, cmd[1:]
				continue
			}
			break
		}
		if !silent {
			posix.WriteString(m.p, abi.Stdout, cmd+"\n")
		}
		code := m.runRecipe(cmd)
		if code != 0 && !ignoreErr {
			posix.Fprintf(m.p, abi.Stderr, "make: *** [%s] Error %d\n", r.target, code)
			return true, code
		}
	}
	return true, 0
}

func first(ss []string) string {
	if len(ss) == 0 {
		return ""
	}
	return ss[0]
}

func dedup(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func (m *runner) expandRecipe(line string, auto map[string]string) string {
	vars := map[string]string{}
	for k, v := range m.mf.vars {
		vars[k] = v
	}
	line = expandVars(line, vars)
	for k, v := range auto {
		line = strings.ReplaceAll(line, "$"+k, v)
	}
	return line
}

// runRecipe executes one recipe line: fork, then the child execs
// /bin/sh -c <cmd> — the paper's make-on-Browsix execution path. On
// runtimes without fork (a misconfigured install) it falls back to spawn,
// mirroring how a non-Emterpreter build of make would fail the paper's
// compile-time check.
func (m *runner) runRecipe(cmd string) int {
	p := m.p
	pid, err := p.Fork("exec-recipe", []byte(cmd))
	if err == abi.ENOSYS {
		// spawn fallback (not the paper's path; kept for robustness).
		var serr abi.Errno
		pid, serr = p.Spawn("/bin/sh", []string{"sh", "-c", cmd}, p.Environ(), nil)
		if serr != abi.OK {
			posix.Fprintf(p, abi.Stderr, "make: sh: %v\n", serr)
			return 127
		}
	} else if err != abi.OK {
		posix.Fprintf(p, abi.Stderr, "make: fork: %v\n", err)
		return 127
	}
	_, status, werr := p.Wait4(pid, 0)
	if werr != abi.OK {
		return 127
	}
	if abi.WIFSIGNALED(status) {
		return 128 + abi.WTERMSIG(status)
	}
	return abi.WEXITSTATUS(status)
}

// resumeFork is the forked child's continuation: the snapshot (the
// Emscripten "global memory") carries the pending recipe; the child
// replaces itself with the shell running it.
func resumeFork(p posix.Proc, mem []byte, label string) int {
	if label != "exec-recipe" {
		return 127
	}
	cmd := string(mem)
	if err := p.Exec("/bin/sh", []string{"sh", "-c", cmd}, p.Environ()); err != abi.OK {
		posix.Fprintf(p, abi.Stderr, "make(child): exec: %v\n", err)
		return 127
	}
	return 0 // unreachable
}

// Targets lists rule names (diagnostics).
func Targets(src string) []string {
	mf, err := parseMakefile(src)
	if err != "" {
		return nil
	}
	out := append([]string{}, mf.order...)
	sort.Strings(out)
	return out
}
