package mk

import "testing"

func TestParseMakefileRulesAndVars(t *testing.T) {
	src := `
# comment
CC = gcc
FLAGS := -O2 $(CC)

all: prog
prog: main.o util.o
	$(CC) $(FLAGS) -o $@ $^
main.o: main.c
	$(CC) -c $<

.PHONY: all clean
clean:
	rm -f prog *.o
`
	mf, err := parseMakefile(src)
	if err != "" {
		t.Fatal(err)
	}
	if mf.vars["CC"] != "gcc" {
		t.Fatalf("CC = %q", mf.vars["CC"])
	}
	if mf.vars["FLAGS"] != "-O2 gcc" {
		t.Fatalf("FLAGS = %q (nested expansion)", mf.vars["FLAGS"])
	}
	if mf.order[0] != "all" {
		t.Fatalf("default goal = %q", mf.order[0])
	}
	prog := mf.rules["prog"]
	if len(prog.deps) != 2 || len(prog.recipe) != 1 {
		t.Fatalf("prog rule: %+v", prog)
	}
	if !mf.rules["all"].phony || !mf.rules["clean"].phony {
		t.Fatal(".PHONY not applied")
	}
}

func TestParseMakefileContinuation(t *testing.T) {
	mf, err := parseMakefile("long: a \\\n b \\\n c\n\techo done\n")
	if err != "" {
		t.Fatal(err)
	}
	if got := len(mf.rules["long"].deps); got != 3 {
		t.Fatalf("deps after continuation = %d", got)
	}
}

func TestParseMakefileRecipeWithoutTarget(t *testing.T) {
	if _, err := parseMakefile("\techo orphan\n"); err == "" {
		t.Fatal("expected error for recipe before target")
	}
}

func TestExpandVars(t *testing.T) {
	vars := map[string]string{"A": "x", "LONG": "hello world"}
	cases := map[string]string{
		"$(A)":       "x",
		"${LONG}!":   "hello world!",
		"$$(A)":      "$(A)",
		"$(MISSING)": "",
		"pre$(A)suf": "prexsuf",
	}
	for in, want := range cases {
		if got := expandVars(in, vars); got != want {
			t.Errorf("expandVars(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTargetsHelper(t *testing.T) {
	ts := Targets("b: a\n\techo b\na:\n\techo a\n")
	if len(ts) != 2 {
		t.Fatalf("targets = %v", ts)
	}
}

func TestSplitAssign(t *testing.T) {
	name, val, ok := splitAssign("FOO := bar baz")
	if !ok || name != "FOO" || val != "bar baz" {
		t.Fatalf("got %q %q %v", name, val, ok)
	}
	if _, _, ok := splitAssign("target: dep"); ok {
		t.Fatal("rule parsed as assignment")
	}
	// ':' in the name means it's a rule, not an assignment.
	if _, _, ok := splitAssign("a b = c"); ok {
		t.Fatal("spaced name accepted")
	}
}
