// Package posix defines the POSIX-flavoured programming interface that
// "unmodified" programs in this reproduction are written against, plus the
// program registry and the on-disk executable format.
//
// In the paper, programs are C/Go/JavaScript sources compiled to
// JavaScript by Emscripten/GopherJS or run by browser-node; the same
// program binary runs under Browsix or natively because the runtime maps
// POSIX calls onto Browsix system calls. Here a "program" is a Go function
// written against Proc; the runtime adapter behind Proc determines the
// syscall transport (Browsix async, Browsix sync, or direct host calls)
// and the CPU cost model (asm.js, Emterpreter, GopherJS, Node, native).
// One program source therefore runs everywhere — the property the paper's
// case studies depend on.
package posix

import (
	"fmt"

	"repro/internal/abi"
)

// Proc is the process-side system interface: what libc + a bit of POSIX
// feels like to a program. Calls block the calling program (coroutine)
// but never the underlying browser context on asynchronous runtimes.
type Proc interface {
	// Identity and environment.
	Getpid() int
	Getppid() int
	Args() []string
	Environ() []string
	Getenv(key string) string
	Setenv(key, value string)

	// Files.
	Open(path string, flags int, mode uint32) (int, abi.Errno)
	Close(fd int) abi.Errno
	Read(fd int, n int) ([]byte, abi.Errno)
	Write(fd int, b []byte) (int, abi.Errno)
	Pread(fd int, n int, off int64) ([]byte, abi.Errno)
	Pwrite(fd int, b []byte, off int64) (int, abi.Errno)
	Seek(fd int, off int64, whence int) (int64, abi.Errno)
	Ftruncate(fd int, size int64) abi.Errno
	// Fsync is the write-back barrier: every buffered write on the fd is
	// on the backing store when it returns (flush-before-reply).
	Fsync(fd int) abi.Errno
	Dup2(oldfd, newfd int) abi.Errno

	// Vectored I/O (readv/writev). Readv reads up to the sum of lens
	// bytes with a single blocking point, returning whatever was
	// immediately available as a list of segments (nil at EOF). Writev
	// writes every buffer, in order, returning the total written. On the
	// Browsix synchronous transport these map to single ring/trap
	// dispatches instead of one kernel round trip per buffer.
	Readv(fd int, lens []int) ([][]byte, abi.Errno)
	Writev(fd int, bufs [][]byte) (int64, abi.Errno)

	// Metadata.
	Stat(path string) (abi.Stat, abi.Errno)
	Lstat(path string) (abi.Stat, abi.Errno)
	// StatBatch stats many paths with per-path results (lstat selects
	// no-trailing-symlink semantics for the whole batch). On the Browsix
	// ring transport the whole batch travels as one doorbell of stat
	// frames and resolves against the kernel's dentry cache in a single
	// batch pass — the stat-storm fast path `ls -l` and make-style
	// probing ride.
	StatBatch(paths []string, lstat bool) ([]abi.Stat, []abi.Errno)
	Fstat(fd int) (abi.Stat, abi.Errno)
	Access(path string, mode int) abi.Errno
	Readlink(path string) (string, abi.Errno)
	Utimes(path string, atime, mtime int64) abi.Errno

	// Directories.
	Mkdir(path string, mode uint32) abi.Errno
	Rmdir(path string) abi.Errno
	Unlink(path string) abi.Errno
	Rename(oldp, newp string) abi.Errno
	Symlink(target, link string) abi.Errno
	// Getdents returns the next chunk of directory entries from the fd's
	// cursor (at most abi.DirentChunk); an empty result marks the end.
	// Use ReadDir to drain a whole directory.
	Getdents(fd int) ([]abi.Dirent, abi.Errno)
	Chdir(path string) abi.Errno
	Getcwd() (string, abi.Errno)

	// Processes.
	Pipe() (rfd, wfd int, err abi.Errno)
	Spawn(path string, argv, env []string, files []int) (int, abi.Errno)
	// Fork snapshots the program's serialized state (mem) and resume
	// label, ships it to the kernel, and returns the child pid in the
	// parent. The child process re-enters via Program.ResumeFork. Only
	// Emscripten-style asynchronous runtimes support it (§3.3/§4.3).
	Fork(label string, mem []byte) (int, abi.Errno)
	Exec(path string, argv, env []string) abi.Errno
	Wait4(pid int, options int) (wpid, status int, err abi.Errno)
	Exit(code int) // never returns
	Kill(pid, sig int) abi.Errno
	// Signal registers a handler (nil restores the default action).
	Signal(sig int, handler func(sig int)) abi.Errno

	// Sockets.
	Socket() (int, abi.Errno)
	Bind(fd, port int) abi.Errno
	Listen(fd, backlog int) abi.Errno
	Accept(fd int) (int, abi.Errno)
	Connect(fd, port int) abi.Errno
	Getsockname(fd int) (int, abi.Errno)
	// AcceptBatch drains up to max queued connections from a
	// non-blocking listener, returning the new (non-blocking) connection
	// fds; an empty slice means the backlog was empty. On the Browsix
	// ring transport the whole batch travels as ONE doorbell of accept
	// frames answered in one drained pass with one notify — an accept
	// storm costs one crossing.
	AcceptBatch(fd, max int) ([]int, abi.Errno)
	// Poll blocks until at least one of fds is ready (or the timeout
	// elapses), filling Revents in place and returning the ready count.
	// timeoutNs < 0 blocks indefinitely, 0 probes without blocking.
	Poll(fds []abi.Pollfd, timeoutNs int64) (int, abi.Errno)
	// Setfl sets a descriptor's status flags (fcntl F_SETFL subset;
	// only O_NONBLOCK is honored).
	Setfl(fd, flags int) abi.Errno

	// Cost accounting: ns of *native-equivalent* CPU work. The runtime
	// scales by its slowdown factor (asm.js, Emterpreter, GopherJS…).
	// CPU64 marks 64-bit-integer-heavy work, which compiled-to-JS
	// runtimes execute far slower (the paper's meme-generation
	// bottleneck).
	CPU(ns int64)
	CPU64(ns int64)

	// RuntimeName identifies the hosting runtime ("node", "gopherjs",
	// "em-sync", "em-async", "native", "node-host").
	RuntimeName() string
}

// Program is a registered executable body.
type Program struct {
	Name string
	// Main is the entry point; its return value is the exit code.
	Main func(p Proc) int
	// ResumeFork resumes a forked child from a memory snapshot and
	// resume label (the Emscripten "global memory + program counter"
	// mechanism, §4.3). Only programs that call Fork provide it.
	ResumeFork func(p Proc, mem []byte, label string) int
}

var registry = map[string]*Program{}

// Register adds a program to the global registry (programs register from
// init functions, like busybox applets linking into one binary).
func Register(p *Program) {
	if p.Name == "" || p.Main == nil {
		panic("posix: invalid program registration")
	}
	registry[p.Name] = p
}

// Lookup finds a registered program.
func Lookup(name string) *Program { return registry[name] }

// ProgramNames lists registered programs (diagnostics).
func ProgramNames() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// ---------------------------------------------------------------------------
// Executable format: the bytes staged into the Browsix file system for a
// "compiled to JavaScript" program. The header mimics a JS comment block;
// the body is padding standing in for the compiled code, sized like the
// real artifact so worker script-eval cost is modelled faithfully.
// ---------------------------------------------------------------------------

// Executable renders executable-file bytes for a program under a given
// runtime, padded to size bytes (the modelled compiled-JS size).
func Executable(progName, runtime string, size int) []byte {
	hdr := fmt.Sprintf("//# browsix-executable v1\n//# program=%s\n//# runtime=%s\n", progName, runtime)
	if size < len(hdr) {
		size = len(hdr)
	}
	out := make([]byte, size)
	copy(out, hdr)
	for i := len(hdr); i < size; i++ {
		out[i] = '/'
	}
	return out
}

// ParseExecutable decodes an executable header.
func ParseExecutable(b []byte) (progName, runtime string, ok bool) {
	const magic = "//# browsix-executable v1\n"
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return "", "", false
	}
	rest := b[len(magic):]
	line := func() string {
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\n' {
				l := string(rest[:i])
				rest = rest[i+1:]
				return l
			}
		}
		l := string(rest)
		rest = nil
		return l
	}
	l1, l2 := line(), line()
	const p1 = "//# program="
	const p2 = "//# runtime="
	if len(l1) <= len(p1) || l1[:len(p1)] != p1 || len(l2) <= len(p2) || l2[:len(p2)] != p2 {
		return "", "", false
	}
	return l1[len(p1):], l2[len(p2):], true
}
