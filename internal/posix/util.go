package posix

import (
	"fmt"
	"strings"

	"repro/internal/abi"
)

// Helper routines programs share — the "libc" above raw system calls.

// DefaultChunk is the buffered-I/O chunk size runtimes and utilities use.
const DefaultChunk = 16 * 1024

// WriteAll writes all of b to fd, looping on short writes.
func WriteAll(p Proc, fd int, b []byte) abi.Errno {
	for len(b) > 0 {
		n, err := p.Write(fd, b)
		if err != abi.OK {
			return err
		}
		if n <= 0 {
			return abi.EIO
		}
		b = b[n:]
	}
	return abi.OK
}

// WriteString writes a string to fd.
func WriteString(p Proc, fd int, s string) abi.Errno { return WriteAll(p, fd, []byte(s)) }

// Fprintf formats to fd.
func Fprintf(p Proc, fd int, format string, args ...any) abi.Errno {
	return WriteString(p, fd, fmt.Sprintf(format, args...))
}

// ReadAll reads fd to EOF.
func ReadAll(p Proc, fd int) ([]byte, abi.Errno) {
	var out []byte
	for {
		b, err := p.Read(fd, DefaultChunk)
		if err != abi.OK {
			return out, err
		}
		if len(b) == 0 {
			return out, abi.OK
		}
		out = append(out, b...)
	}
}

// ReadFile slurps a file by path.
func ReadFile(p Proc, path string) ([]byte, abi.Errno) {
	fd, err := p.Open(path, abi.O_RDONLY, 0)
	if err != abi.OK {
		return nil, err
	}
	defer p.Close(fd)
	return ReadAll(p, fd)
}

// WriteFile creates/truncates a file with contents.
func WriteFile(p Proc, path string, data []byte, mode uint32) abi.Errno {
	fd, err := p.Open(path, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, mode)
	if err != abi.OK {
		return err
	}
	werr := WriteAll(p, fd, data)
	cerr := p.Close(fd)
	if werr != abi.OK {
		return werr
	}
	return cerr
}

// WritevAll writes every buffer to fd with vectored calls, looping on
// short writes.
func WritevAll(p Proc, fd int, bufs [][]byte) abi.Errno {
	// Advance through a private copy of the segment list: callers (tee)
	// reuse the same list for several outputs, and a short write must
	// not truncate their view.
	bufs = append([][]byte(nil), bufs...)
	var want int64
	for _, b := range bufs {
		want += int64(len(b))
	}
	for want > 0 {
		n, err := p.Writev(fd, bufs)
		if err != abi.OK {
			return err
		}
		if n <= 0 {
			return abi.EIO
		}
		want -= n
		if want <= 0 {
			return abi.OK
		}
		for n > 0 && len(bufs) > 0 {
			if int64(len(bufs[0])) <= n {
				n -= int64(len(bufs[0]))
				bufs = bufs[1:]
			} else {
				bufs[0] = bufs[0][n:]
				n = 0
			}
		}
	}
	return abi.OK
}

// WriteLines emits each line (newline-terminated) as one fragment of a
// single vectored write — the multi-fragment output path utilities like
// ls and env use instead of a write per line.
func WriteLines(p Proc, fd int, lines []string) abi.Errno {
	if len(lines) == 0 {
		return abi.OK
	}
	bufs := make([][]byte, len(lines))
	for i, l := range lines {
		bufs[i] = []byte(l + "\n")
	}
	return WritevAll(p, fd, bufs)
}

// VectoredChunks is how many DefaultChunk iovecs CopyFdVectored moves per
// kernel crossing (4 × 16 KiB = one pipe capacity per crossing).
const VectoredChunks = 4

// VectoredLens is the standard readv length vector: VectoredChunks
// iovecs of DefaultChunk each.
func VectoredLens() []int {
	lens := make([]int, VectoredChunks)
	for i := range lens {
		lens[i] = DefaultChunk
	}
	return lens
}

// CopyFdVectored streams src to dst until EOF using readv/writev —
// VectoredChunks×DefaultChunk bytes per kernel crossing instead of one
// DefaultChunk read and one write each. Returns bytes copied.
func CopyFdVectored(p Proc, dst, src int) (int64, abi.Errno) {
	lens := VectoredLens()
	var total int64
	for {
		segs, err := p.Readv(src, lens)
		if err != abi.OK {
			return total, err
		}
		if len(segs) == 0 {
			return total, abi.OK
		}
		var n int64
		for _, s := range segs {
			n += int64(len(s))
		}
		if werr := WritevAll(p, dst, segs); werr != abi.OK {
			return total, werr
		}
		total += n
	}
}

// CopyFd streams src to dst until EOF, returning bytes copied.
func CopyFd(p Proc, dst, src int) (int64, abi.Errno) {
	var total int64
	for {
		b, err := p.Read(src, DefaultChunk)
		if err != abi.OK {
			return total, err
		}
		if len(b) == 0 {
			return total, abi.OK
		}
		if err := WriteAll(p, dst, b); err != abi.OK {
			return total, err
		}
		total += int64(len(b))
	}
}

// LineReader reads lines from a descriptor with internal buffering.
type LineReader struct {
	p   Proc
	fd  int
	buf []byte
	eof bool
}

// NewLineReader wraps fd for line-at-a-time reading.
func NewLineReader(p Proc, fd int) *LineReader { return &LineReader{p: p, fd: fd} }

// ReadLine returns the next line without its trailing newline; ok=false at
// EOF (after the final, possibly unterminated, line has been returned).
func (lr *LineReader) ReadLine() (string, bool, abi.Errno) {
	for {
		if i := strings.IndexByte(string(lr.buf), '\n'); i >= 0 {
			line := string(lr.buf[:i])
			lr.buf = lr.buf[i+1:]
			return line, true, abi.OK
		}
		if lr.eof {
			if len(lr.buf) > 0 {
				line := string(lr.buf)
				lr.buf = nil
				return line, true, abi.OK
			}
			return "", false, abi.OK
		}
		b, err := lr.p.Read(lr.fd, DefaultChunk)
		if err != abi.OK {
			return "", false, err
		}
		if len(b) == 0 {
			lr.eof = true
			continue
		}
		lr.buf = append(lr.buf, b...)
	}
}

// Lines reads all lines from fd.
func Lines(p Proc, fd int) ([]string, abi.Errno) {
	lr := NewLineReader(p, fd)
	var out []string
	for {
		line, ok, err := lr.ReadLine()
		if err != abi.OK {
			return out, err
		}
		if !ok {
			return out, abi.OK
		}
		out = append(out, line)
	}
}

// Getenv looks a key up in an environment list ("K=V" strings).
func Getenv(env []string, key string) string {
	for _, kv := range env {
		if len(kv) > len(key) && kv[len(key)] == '=' && kv[:len(key)] == key {
			return kv[len(key)+1:]
		}
	}
	return ""
}

// SetEnv returns env with key set to value, replacing any existing entry.
func SetEnv(env []string, key, value string) []string {
	for i, kv := range env {
		if len(kv) > len(key) && kv[len(key)] == '=' && kv[:len(key)] == key {
			env[i] = key + "=" + value
			return env
		}
	}
	return append(env, key+"="+value)
}

// JoinNul packs strings NUL-separated for the sync-spawn transport.
func JoinNul(ss []string) string {
	if len(ss) == 0 {
		return ""
	}
	return strings.Join(ss, "\x00") + "\x00"
}

// ReadDir drains a directory fd through getdents continuation calls —
// the readdir(3) loop over the streaming getdents contract. Each call
// returns at most abi.DirentChunk entries; an empty chunk marks the end.
func ReadDir(p Proc, fd int) ([]abi.Dirent, abi.Errno) {
	var out []abi.Dirent
	for {
		ents, err := p.Getdents(fd)
		if err != abi.OK {
			return out, err
		}
		if len(ents) == 0 {
			return out, abi.OK
		}
		out = append(out, ents...)
	}
}

// Basename returns the final path element.
func Basename(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// Dirname returns the directory portion of a path.
func Dirname(p string) string {
	i := strings.LastIndexByte(p, '/')
	switch {
	case i < 0:
		return "."
	case i == 0:
		return "/"
	default:
		return p[:i]
	}
}

// StatBatchAmortizer is the optional Proc extension reporting whether
// StatBatch actually amortizes its round trips (the ring transport's
// one-doorbell batch). Probe loops consult it to choose between one
// batched probe of every candidate and a sequential early-exit walk —
// on a transport that pays one round trip per stat, probing past the
// first hit is pure waste.
type StatBatchAmortizer interface {
	StatBatchAmortized() bool
}

// LookPath resolves a command name against PATH entries, returning the
// first candidate that exists. Absolute or relative paths pass through.
// On a batch-amortizing transport every candidate is probed in one
// StatBatch — the whole PATH walk is a single doorbell the kernel
// resolves in one dentry-cache pass; elsewhere the walk stops at the
// first hit, one round trip per directory as before.
func LookPath(p Proc, name string) (string, abi.Errno) {
	if strings.ContainsRune(name, '/') {
		return name, abi.OK
	}
	path := p.Getenv("PATH")
	if path == "" {
		path = "/usr/bin:/bin"
	}
	var cands []string
	for _, dir := range strings.Split(path, ":") {
		if dir == "" {
			continue
		}
		cands = append(cands, dir+"/"+name)
	}
	if len(cands) == 0 {
		return "", abi.ENOENT
	}
	if ba, ok := p.(StatBatchAmortizer); ok && ba.StatBatchAmortized() && len(cands) > 1 {
		_, errs := p.StatBatch(cands, false)
		for i, cand := range cands {
			if errs[i] == abi.OK {
				return cand, abi.OK
			}
		}
		return "", abi.ENOENT
	}
	for _, cand := range cands {
		if err := p.Access(cand, abi.X_OK); err == abi.OK {
			return cand, abi.OK
		}
	}
	return "", abi.ENOENT
}
