package posix

import (
	"repro/internal/abi"
	"strings"
	"testing"
	"testing/quick"
)

func TestExecutableFormatRoundTrip(t *testing.T) {
	b := Executable("pdflatex", "em-sync", 4096)
	if len(b) != 4096 {
		t.Fatalf("size = %d", len(b))
	}
	name, runtime, ok := ParseExecutable(b)
	if !ok || name != "pdflatex" || runtime != "em-sync" {
		t.Fatalf("parse: %q %q %v", name, runtime, ok)
	}
}

func TestExecutableMinimumSize(t *testing.T) {
	b := Executable("x", "node", 1) // smaller than the header
	name, _, ok := ParseExecutable(b)
	if !ok || name != "x" {
		t.Fatal("tiny executable must still parse")
	}
}

func TestParseExecutableRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{nil, []byte("#!/bin/sh\n"), []byte("//# browsix-executable v2\n")} {
		if _, _, ok := ParseExecutable(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestExecutableProperty(t *testing.T) {
	f := func(nameSeed, rtSeed uint16, size uint16) bool {
		name := "p" + strings.Repeat("a", int(nameSeed%40))
		kind := "k" + strings.Repeat("b", int(rtSeed%10))
		got, gotRt, ok := ParseExecutable(Executable(name, kind, int(size)))
		return ok && got == name && gotRt == kind
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryLookup(t *testing.T) {
	Register(&Program{Name: "posix-test-prog", Main: func(Proc) int { return 0 }})
	if Lookup("posix-test-prog") == nil {
		t.Fatal("registered program not found")
	}
	if Lookup("never-registered-xyz") != nil {
		t.Fatal("phantom program")
	}
	found := false
	for _, n := range ProgramNames() {
		if n == "posix-test-prog" {
			found = true
		}
	}
	if !found {
		t.Fatal("ProgramNames missing entry")
	}
}

func TestRegisterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid registration accepted")
		}
	}()
	Register(&Program{Name: "", Main: nil})
}

func TestEnvHelpers(t *testing.T) {
	env := []string{"PATH=/usr/bin", "HOME=/root"}
	if Getenv(env, "PATH") != "/usr/bin" {
		t.Fatal("Getenv")
	}
	if Getenv(env, "PAT") != "" || Getenv(env, "MISSING") != "" {
		t.Fatal("Getenv prefix confusion")
	}
	env = SetEnv(env, "PATH", "/bin")
	if Getenv(env, "PATH") != "/bin" || len(env) != 2 {
		t.Fatalf("SetEnv replace: %v", env)
	}
	env = SetEnv(env, "NEW", "v")
	if Getenv(env, "NEW") != "v" || len(env) != 3 {
		t.Fatalf("SetEnv append: %v", env)
	}
}

func TestJoinNul(t *testing.T) {
	if JoinNul(nil) != "" {
		t.Fatal("empty")
	}
	if JoinNul([]string{"a", "b"}) != "a\x00b\x00" {
		t.Fatalf("packed: %q", JoinNul([]string{"a", "b"}))
	}
}

func TestPathHelpers(t *testing.T) {
	if Basename("/usr/bin/make") != "make" || Basename("plain") != "plain" {
		t.Fatal("Basename")
	}
	if Dirname("/usr/bin/make") != "/usr/bin" || Dirname("/x") != "/" || Dirname("rel") != "." {
		t.Fatal("Dirname")
	}
}

// fakeProc implements just enough of Proc (Read in scripted chunks,
// Write accumulating, short writes on demand) to exercise the "libc"
// helpers; the embedded nil Proc panics on anything unscripted.
type fakeProc struct {
	Proc
	reads  [][]byte
	wrote  []byte
	shortW bool
}

func (m *fakeProc) Read(fd, n int) ([]byte, abi.Errno) {
	if len(m.reads) == 0 {
		return nil, abi.OK
	}
	b := m.reads[0]
	m.reads = m.reads[1:]
	if len(b) > n {
		m.reads = append([][]byte{b[n:]}, m.reads...)
		b = b[:n]
	}
	return b, abi.OK
}

func (m *fakeProc) Write(fd int, b []byte) (int, abi.Errno) {
	if m.shortW && len(b) > 1 {
		m.wrote = append(m.wrote, b[0])
		return 1, abi.OK
	}
	m.wrote = append(m.wrote, b...)
	return len(b), abi.OK
}

func TestWriteAllLoopsOnShortWrites(t *testing.T) {
	m := &fakeProc{shortW: true}
	if err := WriteAll(m, 1, []byte("abcdef")); err != abi.OK {
		t.Fatal(err)
	}
	if string(m.wrote) != "abcdef" {
		t.Fatalf("wrote %q", m.wrote)
	}
}

func TestReadAllConcatenates(t *testing.T) {
	m := &fakeProc{reads: [][]byte{[]byte("ab"), []byte("cd"), []byte("e")}}
	got, err := ReadAll(m, 0)
	if err != abi.OK || string(got) != "abcde" {
		t.Fatalf("ReadAll = %q (%v)", got, err)
	}
}

func TestLineReaderSplitsAcrossChunks(t *testing.T) {
	m := &fakeProc{reads: [][]byte{[]byte("li"), []byte("ne1\nline2\nta"), []byte("il")}}
	lr := NewLineReader(m, 0)
	var lines []string
	for {
		line, ok, err := lr.ReadLine()
		if err != abi.OK {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		lines = append(lines, line)
	}
	want := []string{"line1", "line2", "tail"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %v", lines)
		}
	}
}

func TestCopyFd(t *testing.T) {
	m := &fakeProc{reads: [][]byte{[]byte("stream"), []byte("ing")}}
	n, err := CopyFd(m, 1, 0)
	if err != abi.OK || n != 9 || string(m.wrote) != "streaming" {
		t.Fatalf("CopyFd: n=%d wrote=%q err=%v", n, m.wrote, err)
	}
}
