package meme

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/abi"
)

func TestPPMRoundTrip(t *testing.T) {
	img := NewImage(17, 9, 10, 20, 30)
	img.Set(3, 4, 200, 100, 50)
	out := img.EncodePPM()
	got, err := DecodePPM(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 17 || got.H != 9 {
		t.Fatalf("dims %dx%d", got.W, got.H)
	}
	r, g, b := got.At(3, 4)
	if r != 200 || g != 100 || b != 50 {
		t.Fatalf("pixel = %d,%d,%d", r, g, b)
	}
}

func TestPPMRoundTripProperty(t *testing.T) {
	f := func(w8, h8 uint8, fill uint8) bool {
		w, h := int(w8%32)+1, int(h8%32)+1
		img := NewImage(w, h, fill, fill/2, fill/3)
		got, err := DecodePPM(img.EncodePPM())
		if err != nil {
			return false
		}
		if got.W != w || got.H != h {
			return false
		}
		for i := range img.Pix {
			if got.Pix[i] != img.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePPMErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("P5\n1 1\n255\nX"),    // wrong magic
		[]byte("P6\n10 10\n255\nxy"), // truncated body
		[]byte("P6\nnotanumber\n"),   // bad header
	}
	for i, c := range cases {
		if _, err := DecodePPM(c); err == nil {
			t.Errorf("case %d: decode accepted invalid input", i)
		}
	}
}

func TestFontParsingAndCoverage(t *testing.T) {
	f, err := ParseFont(FontFile())
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!?. " {
		if _, ok := f.Glyphs[ch]; !ok {
			t.Errorf("glyph %q missing", ch)
		}
	}
}

func TestDrawTextTouchesPixels(t *testing.T) {
	f, _ := ParseFont(FontFile())
	img := NewImage(200, 60, 0, 0, 0)
	n := f.DrawText(img, "HI", 100, 10, 2)
	if n == 0 {
		t.Fatal("no pixels drawn")
	}
	white := 0
	for i := 0; i < len(img.Pix); i += 3 {
		if img.Pix[i] == 255 {
			white++
		}
	}
	if white == 0 {
		t.Fatal("no white fill")
	}
	// Out-of-bounds drawing must not panic.
	f.DrawText(img, "CLIPPED TEXT WAY TOO LONG FOR THE IMAGE", 0, -3, 4)
}

func TestHandleTemplatesAndGenerate(t *testing.T) {
	assets := testAssets(t)
	var cpuTotal int64
	heavySeen := false
	cpu := func(ns int64, heavy bool) {
		cpuTotal += ns
		if heavy {
			heavySeen = true
		}
	}
	resp := assets.Handle("GET", "/api/templates", nil, cpu)
	if resp.Status != 200 {
		t.Fatalf("templates: %d", resp.Status)
	}
	var names []string
	json.Unmarshal(resp.Body, &names)
	if len(names) != 5 || names[0] != "distracted" {
		t.Fatalf("names = %v", names)
	}

	body, _ := json.Marshal(GenRequest{Template: "doge", Top: "TOP", Bottom: "BOTTOM"})
	resp = assets.Handle("POST", "/api/meme", body, cpu)
	if resp.Status != 200 {
		t.Fatalf("generate: %d %s", resp.Status, resp.Body)
	}
	if !heavySeen {
		t.Fatal("generation did not charge int64-heavy CPU (the GopherJS penalty path)")
	}
	img, err := DecodePPM(resp.Body)
	if err != nil || img.W != 256 {
		t.Fatalf("output image: %v", err)
	}
}

func TestHandleErrors(t *testing.T) {
	assets := testAssets(t)
	cpu := func(int64, bool) {}
	if r := assets.Handle("POST", "/api/meme", []byte("{bad"), cpu); r.Status != 400 {
		t.Fatalf("bad json: %d", r.Status)
	}
	body, _ := json.Marshal(GenRequest{Template: "nope"})
	if r := assets.Handle("POST", "/api/meme", body, cpu); r.Status != 404 {
		t.Fatalf("missing template: %d", r.Status)
	}
	if r := assets.Handle("GET", "/wrong", nil, cpu); r.Status != 404 {
		t.Fatalf("unknown path: %d", r.Status)
	}
}

func TestStageFilesComplete(t *testing.T) {
	files := StageFiles()
	if _, ok := files[FontPath]; !ok {
		t.Fatal("font missing from staged files")
	}
	n := 0
	for p := range files {
		if strings.HasPrefix(p, TemplateDir) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("templates staged = %d", n)
	}
}

func testAssets(t *testing.T) *Assets {
	t.Helper()
	files := StageFiles()
	assets, err := loadAssets(func(p string) ([]byte, abi.Errno) {
		if b, ok := files[p]; ok {
			return b, abi.OK
		}
		return nil, abi.ENOENT
	})
	if err != abi.OK {
		t.Fatal(err)
	}
	for p, data := range files {
		if strings.HasPrefix(p, TemplateDir) {
			img, derr := DecodePPM(data)
			if derr != nil {
				t.Fatal(derr)
			}
			name := strings.TrimSuffix(strings.TrimPrefix(p, TemplateDir+"/"), ".ppm")
			assets.Templates[name] = img
		}
	}
	return assets
}
