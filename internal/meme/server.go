package meme

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/posix"
)

// Port is the meme server's listening port inside Browsix.
const Port = 8888

// TemplateDir and FontPath locate the server's assets in the image.
const (
	TemplateDir = "/usr/share/memes"
	FontPath    = "/usr/share/fonts/meme5x7.font"
)

// GenRequest is the POST /api/meme body.
type GenRequest struct {
	Template string `json:"template"`
	Top      string `json:"top"`
	Bottom   string `json:"bottom"`
}

func init() {
	posix.Register(&posix.Program{Name: "meme-server", Main: serverMain})
}

// serverMain is the unmodified Go server: read assets from the file
// system, then serve HTTP over (Browsix) sockets.
func serverMain(p posix.Proc) int {
	assets, errno := loadAssets(readFileVia(p))
	if errno != abi.OK {
		posix.Fprintf(p, abi.Stderr, "meme-server: loading assets: %v\n", errno)
		return 1
	}
	// Asset directory listing needs getdents, which readFileVia lacks;
	// enumerate templates here.
	names, errno := listTemplates(p)
	if errno != abi.OK {
		posix.Fprintf(p, abi.Stderr, "meme-server: %v\n", errno)
		return 1
	}
	for _, name := range names {
		data, rerr := posix.ReadFile(p, TemplateDir+"/"+name)
		if rerr != abi.OK {
			continue
		}
		img, derr := DecodePPM(data)
		if derr != nil {
			continue
		}
		assets.Templates[strings.TrimSuffix(name, ".ppm")] = img
	}
	posix.Fprintf(p, abi.Stderr, "meme-server: listening on :%d with %d templates\n", Port, len(assets.Templates))
	// "-serial" selects the pre-event-loop one-request-per-connection
	// server — the ablation baseline the load experiments compare against.
	serve := httpx.Serve
	for _, a := range p.Args() {
		if a == "-serial" {
			serve = httpx.ServeSerial
		}
	}
	err := serve(p, Port, func(req *httpx.Request) *httpx.Response {
		return assets.Handle(req.Method, req.Path, req.Body, cpuVia(p))
	})
	if err != abi.OK {
		posix.Fprintf(p, abi.Stderr, "meme-server: %v\n", err)
		return 1
	}
	return 0
}

func listTemplates(p posix.Proc) ([]string, abi.Errno) {
	fd, err := p.Open(TemplateDir, abi.O_RDONLY|abi.O_DIRECTORY, 0)
	if err != abi.OK {
		return nil, err
	}
	defer p.Close(fd)
	ents, err := posix.ReadDir(p, fd)
	if err != abi.OK {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name, ".ppm") {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out, abi.OK
}

// Assets is the server's in-memory state (stateless across requests,
// "following best practices").
type Assets struct {
	Font      *Font
	Templates map[string]*Image
}

// CPUFunc charges server CPU: regular and int64-heavy work. The Browsix
// server charges through posix.Proc (GopherJS multipliers); the remote
// host charges native time.
type CPUFunc func(ns int64, int64Heavy bool)

func cpuVia(p posix.Proc) CPUFunc {
	return func(ns int64, heavy bool) {
		if heavy {
			p.CPU64(ns)
		} else {
			p.CPU(ns)
		}
	}
}

func readFileVia(p posix.Proc) func(path string) ([]byte, abi.Errno) {
	return func(path string) ([]byte, abi.Errno) { return posix.ReadFile(p, path) }
}

// loadAssets reads the font (templates are added by the callers, which
// differ in how they enumerate directories).
func loadAssets(readFile func(string) ([]byte, abi.Errno)) (*Assets, abi.Errno) {
	fontData, err := readFile(FontPath)
	if err != abi.OK {
		return nil, err
	}
	font, ferr := ParseFont(fontData)
	if ferr != nil {
		return nil, abi.EINVAL
	}
	return &Assets{Font: font, Templates: map[string]*Image{}}, abi.OK
}

// Handle services one API request; it is the shared "server source code".
func (a *Assets) Handle(method, path string, body []byte, cpu CPUFunc) *httpx.Response {
	switch {
	case method == "GET" && path == "/api/templates":
		names := make([]string, 0, len(a.Templates))
		for n := range a.Templates {
			names = append(names, n)
		}
		sort.Strings(names)
		cpu(900_000+int64(len(names))*40_000, false) // listing + JSON encode
		out, _ := json.Marshal(names)
		return &httpx.Response{Status: 200,
			Header: map[string]string{"Content-Type": "application/json"}, Body: out}

	case method == "POST" && path == "/api/meme":
		var req GenRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return &httpx.Response{Status: 400, Body: []byte("bad json")}
		}
		tpl, ok := a.Templates[req.Template]
		if !ok {
			return &httpx.Response{Status: 404, Body: []byte("no such template " + req.Template)}
		}
		img, work := a.Compose(tpl, req.Top, req.Bottom)
		// Pixel blending is 64-bit-heavy in the paper's Go image
		// libraries — the source of the GopherJS 10x gap (§5.2).
		cpu(work, true)
		out := img.EncodePPM()
		cpu(int64(len(out))/8, false) // encode
		return &httpx.Response{Status: 200,
			Header: map[string]string{"Content-Type": "image/x-portable-pixmap"}, Body: out}

	case method == "GET" && path == "/healthz":
		return &httpx.Response{Status: 200, Body: []byte("ok")}
	}
	return &httpx.Response{Status: 404, Body: []byte("not found: " + path)}
}

// Compose draws the captions onto a copy of the template, returning the
// image and the native-ns CPU work its pixel operations represent.
func (a *Assets) Compose(tpl *Image, top, bottom string) (*Image, int64) {
	img := &Image{W: tpl.W, H: tpl.H, Pix: append([]byte{}, tpl.Pix...)}
	scale := img.W / 160
	if scale < 1 {
		scale = 1
	}
	touched := a.Font.DrawText(img, top, img.W/2, 8*scale, scale)
	touched += a.Font.DrawText(img, bottom, img.W/2, img.H-15*scale, scale)
	// Rasterization + encode are per-pixel 64-bit math (the paper's
	// GopherJS bottleneck): ~2.8us/pixel natively for the full
	// draw+composite+encode pass, plus extra work on caption pixels.
	work := int64(img.W*img.H)*2800 + int64(touched)*50
	return img, work
}

// ---------------------------------------------------------------------------
// Image staging and the remote (native) server.
// ---------------------------------------------------------------------------

// Templates generates the template images staged into the file system.
func Templates() map[string]*Image {
	mk := func(w, h int, r, g, b byte) *Image {
		img := NewImage(w, h, r, g, b)
		// A diagonal band so outputs differ per template.
		for y := 0; y < h; y++ {
			img.Set(y%w, y, 255-r, 255-g, 255-b)
		}
		return img
	}
	return map[string]*Image{
		"distracted":  mk(320, 240, 200, 180, 140),
		"doge":        mk(256, 256, 230, 200, 90),
		"fry":         mk(320, 240, 220, 120, 60),
		"grumpy-cat":  mk(280, 210, 150, 150, 160),
		"success-kid": mk(320, 240, 90, 140, 190),
	}
}

// StageFiles returns the files a Browsix (or remote) image needs:
// templates + font.
func StageFiles() map[string][]byte {
	files := map[string][]byte{FontPath: FontFile()}
	for name, img := range Templates() {
		files[TemplateDir+"/"+name+".ppm"] = img.EncodePPM()
	}
	return files
}

// NewRemoteHost builds the netsim host running the same server code
// natively (the paper's EC2 instance / local server). rtt is the
// browser<->server round trip.
func NewRemoteHost(name string, rtt int64, nsPerByte float64) *netsim.Host {
	files := StageFiles()
	assets, err := loadAssets(func(path string) ([]byte, abi.Errno) {
		if b, ok := files[path]; ok {
			return b, abi.OK
		}
		return nil, abi.ENOENT
	})
	if err != abi.OK {
		panic("meme: remote host assets: " + err.String())
	}
	for p, data := range files {
		if !strings.HasPrefix(p, TemplateDir) {
			continue
		}
		img, derr := DecodePPM(data)
		if derr == nil {
			name := strings.TrimSuffix(strings.TrimPrefix(p, TemplateDir+"/"), ".ppm")
			assets.Templates[name] = img
		}
	}
	return &netsim.Host{
		Name:      name,
		RTT:       rtt,
		NsPerByte: nsPerByte,
		Handler: func(h *netsim.Host, req netsim.Request) netsim.Response {
			resp := assets.Handle(req.Method, req.Path, req.Body, func(ns int64, heavy bool) {
				h.Charge(ns) // native server: no int64 penalty
			})
			return netsim.Response{Status: resp.Status, Header: resp.Header, Body: resp.Body}
		},
	}
}

// DescribeImage summarizes a PPM for tests and examples.
func DescribeImage(data []byte) string {
	img, err := DecodePPM(data)
	if err != nil {
		return "invalid: " + err.Error()
	}
	white := 0
	for i := 0; i < len(img.Pix); i += 3 {
		if img.Pix[i] == 255 && img.Pix[i+1] == 255 && img.Pix[i+2] == 255 {
			white++
		}
	}
	return fmt.Sprintf("%dx%d ppm, %d caption pixels", img.W, img.H, white)
}
