// Package meme implements the meme-generator case study (§5.1.1): a
// stateless Go HTTP server that reads template images and font files from
// the file system and composites captions onto them. In the paper the
// server is compiled with GopherJS and runs unmodified either on a remote
// machine or inside Browsix; here the same Go functions back (a) the
// Browsix process "meme-server" (GopherJS runtime, paying the missing-
// int64 penalty on pixel work) and (b) the netsim remote host — the
// "same source code" property the case study demonstrates.
package meme

import (
	"fmt"
	"strconv"
	"strings"
)

// Image is a simple RGB raster, serialized as binary PPM (P6) — a format
// writable without any image library, like the paper's server uses
// fogleman/gg to rasterize PNGs.
type Image struct {
	W, H int
	Pix  []byte // RGB, 3 bytes per pixel
}

// NewImage allocates a raster filled with a solid color.
func NewImage(w, h int, r, g, b byte) *Image {
	img := &Image{W: w, H: h, Pix: make([]byte, w*h*3)}
	for i := 0; i < len(img.Pix); i += 3 {
		img.Pix[i], img.Pix[i+1], img.Pix[i+2] = r, g, b
	}
	return img
}

// Set writes one pixel (bounds-checked).
func (im *Image) Set(x, y int, r, g, b byte) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// At reads one pixel.
func (im *Image) At(x, y int) (byte, byte, byte) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// EncodePPM serializes to binary PPM.
func (im *Image) EncodePPM() []byte {
	hdr := fmt.Sprintf("P6\n%d %d\n255\n", im.W, im.H)
	out := make([]byte, 0, len(hdr)+len(im.Pix))
	out = append(out, hdr...)
	return append(out, im.Pix...)
}

// DecodePPM parses a binary PPM.
func DecodePPM(data []byte) (*Image, error) {
	s := string(data)
	if !strings.HasPrefix(s, "P6") {
		return nil, fmt.Errorf("meme: not a P6 PPM")
	}
	// Header: three whitespace-separated numbers after the magic.
	fields := make([]int, 0, 3)
	i := 2
	for len(fields) < 3 && i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r') {
			i++
		}
		if i < len(s) && s[i] == '#' { // comment
			for i < len(s) && s[i] != '\n' {
				i++
			}
			continue
		}
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i {
			return nil, fmt.Errorf("meme: bad PPM header")
		}
		v, _ := strconv.Atoi(s[i:j])
		fields = append(fields, v)
		i = j
	}
	if len(fields) != 3 {
		return nil, fmt.Errorf("meme: truncated PPM header")
	}
	i++ // single whitespace after maxval
	w, h := fields[0], fields[1]
	need := w * h * 3
	if len(data)-i < need {
		return nil, fmt.Errorf("meme: truncated PPM body (%d < %d)", len(data)-i, need)
	}
	return &Image{W: w, H: h, Pix: data[i : i+need]}, nil
}

// ---------------------------------------------------------------------------
// Font: a 5x7 bitmap font parsed from a file in the image (the server
// "reads base images and font files from the filesystem").
// ---------------------------------------------------------------------------

// Font maps runes to 5x7 bitmaps.
type Font struct {
	Glyphs map[rune][7]byte // 7 rows, low 5 bits used
}

// ParseFont reads the font-file format: blocks of "char X" followed by 7
// rows of '#'/'.' cells.
func ParseFont(data []byte) (*Font, error) {
	f := &Font{Glyphs: map[rune][7]byte{}}
	lines := strings.Split(string(data), "\n")
	i := 0
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "//") {
			i++
			continue
		}
		name, found := strings.CutPrefix(line, "char ")
		if !found || i+7 > len(lines)-0 {
			return nil, fmt.Errorf("meme: bad font line %d: %q", i, line)
		}
		var ch rune
		if name == "space" {
			ch = ' '
		} else {
			rs := []rune(name)
			if len(rs) != 1 {
				return nil, fmt.Errorf("meme: bad char name %q", name)
			}
			ch = rs[0]
		}
		var rows [7]byte
		for r := 0; r < 7; r++ {
			row := lines[i+1+r]
			var bits byte
			for c := 0; c < 5 && c < len(row); c++ {
				if row[c] == '#' {
					bits |= 1 << uint(4-c)
				}
			}
			rows[r] = bits
		}
		f.Glyphs[ch] = rows
		i += 8
	}
	return f, nil
}

// DrawText rasterizes text onto the image centered at (cx, y) with the
// given pixel scale, white fill with black outline (the classic meme
// look). Returns the number of pixels touched, which the server charges
// as 64-bit-heavy CPU work (the paper's GopherJS int64 penalty).
func (f *Font) DrawText(im *Image, text string, cx, y, scale int) int {
	text = strings.ToUpper(text)
	adv := 6 * scale
	width := adv * len(text)
	x0 := cx - width/2
	touched := 0
	for idx, ch := range text {
		glyph, ok := f.Glyphs[ch]
		if !ok {
			continue
		}
		gx := x0 + idx*adv
		for r := 0; r < 7; r++ {
			for c := 0; c < 5; c++ {
				if glyph[r]&(1<<uint(4-c)) == 0 {
					continue
				}
				for sy := 0; sy < scale; sy++ {
					for sx := 0; sx < scale; sx++ {
						px := gx + c*scale + sx
						py := y + r*scale + sy
						// outline
						im.Set(px-1, py, 0, 0, 0)
						im.Set(px+1, py, 0, 0, 0)
						im.Set(px, py-1, 0, 0, 0)
						im.Set(px, py+1, 0, 0, 0)
						im.Set(px, py, 255, 255, 255)
						touched += 5
					}
				}
			}
		}
	}
	return touched
}

// FontFile renders the built-in font as its file format, for staging
// into /usr/share/fonts.
func FontFile() []byte {
	return []byte(builtinFont)
}

// builtinFont covers A-Z, 0-9, space and a little punctuation.
const builtinFont = `// browsix meme font 5x7
char A
.###.
#...#
#...#
#####
#...#
#...#
#...#
char B
####.
#...#
####.
#...#
#...#
#...#
####.
char C
.###.
#...#
#....
#....
#....
#...#
.###.
char D
####.
#...#
#...#
#...#
#...#
#...#
####.
char E
#####
#....
####.
#....
#....
#....
#####
char F
#####
#....
####.
#....
#....
#....
#....
char G
.###.
#....
#....
#.###
#...#
#...#
.###.
char H
#...#
#...#
#####
#...#
#...#
#...#
#...#
char I
#####
..#..
..#..
..#..
..#..
..#..
#####
char J
....#
....#
....#
....#
#...#
#...#
.###.
char K
#...#
#..#.
###..
#..#.
#...#
#...#
#...#
char L
#....
#....
#....
#....
#....
#....
#####
char M
#...#
##.##
#.#.#
#...#
#...#
#...#
#...#
char N
#...#
##..#
#.#.#
#..##
#...#
#...#
#...#
char O
.###.
#...#
#...#
#...#
#...#
#...#
.###.
char P
####.
#...#
#...#
####.
#....
#....
#....
char Q
.###.
#...#
#...#
#...#
#.#.#
#..#.
.##.#
char R
####.
#...#
#...#
####.
#.#..
#..#.
#...#
char S
.####
#....
#....
.###.
....#
....#
####.
char T
#####
..#..
..#..
..#..
..#..
..#..
..#..
char U
#...#
#...#
#...#
#...#
#...#
#...#
.###.
char V
#...#
#...#
#...#
#...#
#...#
.#.#.
..#..
char W
#...#
#...#
#...#
#.#.#
#.#.#
##.##
#...#
char X
#...#
#...#
.#.#.
..#..
.#.#.
#...#
#...#
char Y
#...#
#...#
.#.#.
..#..
..#..
..#..
..#..
char Z
#####
....#
...#.
..#..
.#...
#....
#####
char 0
.###.
#..##
#.#.#
##..#
#...#
#...#
.###.
char 1
..#..
.##..
..#..
..#..
..#..
..#..
#####
char 2
.###.
#...#
....#
..##.
.#...
#....
#####
char 3
.###.
#...#
....#
..##.
....#
#...#
.###.
char 4
#...#
#...#
#...#
#####
....#
....#
....#
char 5
#####
#....
####.
....#
....#
#...#
.###.
char 6
.###.
#....
####.
#...#
#...#
#...#
.###.
char 7
#####
....#
...#.
..#..
..#..
..#..
..#..
char 8
.###.
#...#
#...#
.###.
#...#
#...#
.###.
char 9
.###.
#...#
#...#
.####
....#
....#
.###.
char !
..#..
..#..
..#..
..#..
..#..
.....
..#..
char ?
.###.
#...#
....#
..##.
..#..
.....
..#..
char .
.....
.....
.....
.....
.....
.##..
.##..
char space
.....
.....
.....
.....
.....
.....
.....
`
