// Package sched implements a deterministic discrete-event simulator that
// models the execution substrate Browsix runs on: a set of single-threaded
// JavaScript execution contexts (the main browser thread plus one context
// per Web Worker), each with its own event queue and virtual clock.
//
// Determinism is the point: the paper's measurements were taken on real
// browsers; our reproduction replaces the browser with a simulator whose
// costs are explicit and calibrated (see internal/browser.Profile), so
// every experiment is exactly reproducible.
//
// Concurrency model: exactly one goroutine runs at a time, coordinated by
// an explicit token hand-off, so the simulation is sequential and
// deterministic even though blocking program code (coroutines, see G) is
// expressed in ordinary straight-line Go. This mirrors the browser: each
// context is single-threaded; contexts interleave.
//
// Time model: each context has its own clock (Ctx.Now). Running an event
// advances the clock of the context it runs on by whatever costs the
// handler charges (Charge). An event posted at time t to context c starts
// executing at max(t, c.now): contexts are sequential, so an event queued
// behind a long task starts late, exactly like a busy JS event loop.
package sched

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Event is a unit of work delivered to a context at (no earlier than) a
// virtual time. Events model postMessage deliveries, timer callbacks, and
// internal wake-ups.
type event struct {
	at  int64 // earliest virtual time the event may run
	seq uint64
	fn  func()
}

// eventHeap orders events by (at, seq). seq breaks ties FIFO so the
// simulation is deterministic.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Ctx is one single-threaded execution context (the main thread or one Web
// Worker). Events targeted at a context run one at a time on it, in
// timestamp order; a context that is futex-blocked (Atomics.wait) defers
// its events until it wakes, as a blocked worker thread would.
type Ctx struct {
	sim     *Sim
	name    string
	id      int
	now     int64
	q       eventHeap
	blocked bool // blocked in a futex wait; events deferred
	dead    bool // terminated worker; events dropped

	// nice is the context's scheduling priority (higher = lower
	// priority, like Unix nice). Browsers provide no such control for
	// Web Workers — §6 of the paper proposes it; this simulator
	// implements the proposal: among events ready at the same instant,
	// lower-nice contexts run first.
	nice int

	// wake is a pending futex wake-up (or timeout). It takes priority
	// over queued events at the same instant because Atomics.wait
	// returning resumes the *current* task before the event loop runs.
	wake *wakeup

	// gs tracks coroutines created on this context so KillCtx can unwind
	// them (their deferred cleanup runs with ErrKilled).
	gs []*G
}

type wakeup struct {
	at int64
	g  *G
	v  any
}

// Name returns the context's diagnostic name.
func (c *Ctx) Name() string { return c.name }

// SetNice adjusts the context's scheduling priority (see nice).
func (c *Ctx) SetNice(nice int) { c.nice = nice }

// Nice returns the context's priority value.
func (c *Ctx) Nice() int { return c.nice }

// Now returns the context's local virtual time in nanoseconds.
func (c *Ctx) Now() int64 { return c.now }

// Dead reports whether the context has been terminated.
func (c *Ctx) Dead() bool { return c.dead }

// Blocked reports whether the context is blocked in a futex wait.
func (c *Ctx) Blocked() bool { return c.blocked }

// G is a coroutine: a parked Go goroutine representing a program stack
// inside a context (for example, a C program's call stack under the
// Emterpreter, or a Go program's goroutine under GopherJS). A G parks when
// it issues a blocking operation and is resumed by a later event.
type G struct {
	name   string
	ctx    *Ctx
	ch     chan any
	killed bool
	done   bool
}

// Name returns the coroutine's diagnostic name.
func (g *G) Name() string { return g.name }

// Ctx returns the context the coroutine belongs to.
func (g *G) Ctx() *Ctx { return g.ctx }

// Done reports whether the coroutine has finished.
func (g *G) Done() bool { return g.done }

// ErrKilled is the panic value delivered to a parked coroutine whose
// process has been terminated (e.g. SIGKILL, worker.terminate()). Runtimes
// recover it at the top of the program stack.
var ErrKilled = fmt.Errorf("sched: coroutine killed")

// Sim is the discrete-event simulator.
type Sim struct {
	ctxs   []*Ctx
	seq    uint64
	steps  uint64
	cur    *Ctx // context currently executing an event
	curG   *G   // coroutine currently holding the token, nil if scheduler code
	schedC chan any

	// MaxSteps bounds Run to guard against runaway simulations in tests.
	// Zero means no bound.
	MaxSteps uint64
}

// New creates an empty simulator.
func New() *Sim {
	return &Sim{schedC: make(chan any)}
}

// NewCtx registers a new execution context.
func (s *Sim) NewCtx(name string) *Ctx {
	c := &Ctx{sim: s, name: name, id: len(s.ctxs)}
	s.ctxs = append(s.ctxs, c)
	return c
}

// KillCtx terminates a context: queued and future events are dropped, and
// every parked coroutine on it is unwound with ErrKilled so deferred
// cleanup runs. Used for Worker.terminate().
func (s *Sim) KillCtx(c *Ctx) {
	c.dead = true
	c.q = nil
	c.wake = nil
	c.blocked = false
	gs := c.gs
	c.gs = nil
	for _, g := range gs {
		if g.done {
			continue
		}
		g.killed = true
		if s.curG == g {
			// The coroutine being killed is the one running; it will
			// observe killed at its next Park.
			continue
		}
		s.ResumeG(g, nil)
	}
}

// Steps returns the number of events dispatched so far.
func (s *Sim) Steps() uint64 { return s.steps }

// Cur returns the context currently executing, or nil between events.
func (s *Sim) Cur() *Ctx { return s.cur }

// Post schedules fn to run on ctx no earlier than virtual time at. It is
// the primitive beneath postMessage delivery and timers.
func (s *Sim) Post(ctx *Ctx, at int64, fn func()) {
	if ctx.dead {
		return
	}
	s.seq++
	heap.Push(&ctx.q, event{at: at, seq: s.seq, fn: fn})
}

// PostDelay schedules fn on ctx after d nanoseconds of the *sender's*
// current time (or the target's, when called from outside any context).
func (s *Sim) PostDelay(ctx *Ctx, d int64, fn func()) {
	base := ctx.now
	if s.cur != nil {
		base = s.cur.now
	}
	s.Post(ctx, base+d, fn)
}

// Charge advances the clock of the currently-running context by d
// nanoseconds, modelling CPU or copy cost inside the current task.
func (s *Sim) Charge(d int64) {
	if s.cur == nil {
		panic("sched: Charge outside event execution")
	}
	if d < 0 {
		panic("sched: negative charge")
	}
	s.cur.now += d
}

// Now returns the current context's virtual time. Outside event execution
// it returns the max clock across contexts (the frontier).
func (s *Sim) Now() int64 {
	if s.cur != nil {
		return s.cur.now
	}
	var t int64
	for _, c := range s.ctxs {
		if c.now > t {
			t = c.now
		}
	}
	return t
}

// NewG creates a parked coroutine on ctx that will execute fn with the
// value passed to its first Resume. fn runs with the simulation token; it
// may call Park and Charge. When fn returns the coroutine is done.
func (s *Sim) NewG(ctx *Ctx, name string, fn func(first any)) *G {
	g := &G{name: name, ctx: ctx, ch: make(chan any)}
	ctx.gs = append(ctx.gs, g)
	go func() {
		first := <-g.ch
		defer func() {
			g.done = true
			if r := recover(); r != nil && r != ErrKilled {
				// Re-raising on the scheduler goroutine keeps the
				// failure visible; real panics are bugs.
				s.handoffPanic(r)
				return
			}
			s.curG = nil
			s.schedC <- nil
		}()
		if g.killed {
			panic(ErrKilled)
		}
		fn(first)
	}()
	return g
}

func (s *Sim) handoffPanic(r any) {
	s.curG = nil
	s.schedC <- panicValue{r}
}

type panicValue struct{ r any }

// ResumeG transfers control to a parked coroutine, delivering v as the
// result of its Park (or as the initial value for a fresh G). It must be
// called from scheduler context (inside an event handler, not from another
// G). Control returns here when the G parks again or finishes.
func (s *Sim) ResumeG(g *G, v any) {
	if s.curG != nil {
		panic("sched: ResumeG from within a coroutine; post an event instead")
	}
	if g.done {
		return
	}
	s.curG = g
	g.ch <- v
	out := <-s.schedC
	if pv, ok := out.(panicValue); ok {
		panic(pv.r)
	}
}

// Park suspends the current coroutine until someone resumes it, returning
// the value passed to ResumeG. If the coroutine's process is killed while
// parked, Park panics with ErrKilled (recovered by NewG).
func (s *Sim) Park() any {
	g := s.curG
	if g == nil {
		panic("sched: Park outside a coroutine")
	}
	s.curG = nil
	s.schedC <- nil
	v := <-g.ch
	if g.killed {
		panic(ErrKilled)
	}
	s.curG = g
	return v
}

// CurG returns the coroutine currently holding the token, or nil.
func (s *Sim) CurG() *G { return s.curG }

// KillG marks a coroutine killed. If it is parked it will panic with
// ErrKilled at its next resume; the scheduler resumes it immediately via an
// event so its deferred cleanup runs.
func (s *Sim) KillG(g *G) {
	if g == nil || g.done {
		return
	}
	g.killed = true
	if g.ctx.wake != nil && g.ctx.wake.g == g {
		g.ctx.wake = nil
		g.ctx.blocked = false
	}
	s.Post(g.ctx, g.ctx.now, func() { s.ResumeG(g, nil) })
}

// PostResume schedules an event on g's context that resumes g with v.
// It is the standard completion path for asynchronous system calls.
func (s *Sim) PostResume(g *G, at int64, v any) {
	s.Post(g.ctx, at, func() { s.ResumeG(g, v) })
}

// BlockCur marks the current context futex-blocked and parks the current
// coroutine. The context's event queue is deferred until WakeCtx. Returns
// the wake value.
func (s *Sim) BlockCur() any {
	c := s.cur
	if c == nil || s.curG == nil {
		panic("sched: BlockCur needs a running coroutine")
	}
	c.blocked = true
	v := s.Park()
	c.blocked = false
	return v
}

// WakeCtx schedules a wake-up of the coroutine g blocked on its context at
// virtual time at, delivering v. If a wake is already pending, the earlier
// one wins (a notify racing a timeout).
func (s *Sim) WakeCtx(g *G, at int64, v any) {
	c := g.ctx
	if c.dead {
		return
	}
	if c.wake != nil && c.wake.at <= at {
		return
	}
	c.wake = &wakeup{at: at, g: g, v: v}
}

// runnable returns, for each context, the earliest thing it could run and
// the virtual start time, or ok=false when idle.
func (c *Ctx) next() (start int64, isWake bool, ok bool) {
	if c.dead {
		return 0, false, false
	}
	if c.wake != nil {
		st := c.wake.at
		if c.now > st {
			st = c.now
		}
		return st, true, true
	}
	if c.blocked || len(c.q) == 0 {
		return 0, false, false
	}
	st := c.q[0].at
	if c.now > st {
		st = c.now
	}
	return st, false, true
}

// Step dispatches the single next event across all contexts. It returns
// false when the simulation is quiescent (nothing runnable anywhere).
func (s *Sim) Step() bool {
	var best *Ctx
	var bestStart int64
	var bestWake bool
	var bestSeq uint64
	for _, c := range s.ctxs {
		st, isWake, ok := c.next()
		if !ok {
			continue
		}
		var seq uint64
		if !isWake {
			seq = c.q[0].seq
		}
		better := best == nil || st < bestStart ||
			(st == bestStart && isWake && !bestWake) ||
			(st == bestStart && isWake == bestWake && c.nice < best.nice) ||
			(st == bestStart && isWake == bestWake && c.nice == best.nice && seq < bestSeq)
		if better {
			best, bestStart, bestWake, bestSeq = c, st, isWake, seq
		}
	}
	if best == nil {
		return false
	}
	s.steps++
	s.cur = best
	if bestWake {
		w := best.wake
		best.wake = nil
		best.blocked = false
		if best.now < bestStart {
			best.now = bestStart
		}
		s.ResumeG(w.g, w.v)
	} else {
		ev := heap.Pop(&best.q).(event)
		if best.now < ev.at {
			best.now = ev.at
		}
		ev.fn()
	}
	s.cur = nil
	return true
}

// Run dispatches events until the simulation is quiescent. It panics if
// MaxSteps is exceeded (runaway loop in a test).
func (s *Sim) Run() {
	start := s.steps
	for s.Step() {
		if s.MaxSteps > 0 && s.steps-start > s.MaxSteps {
			panic(fmt.Sprintf("sched: exceeded MaxSteps=%d; likely livelock\n%s", s.MaxSteps, s.Dump()))
		}
	}
}

// RunUntil dispatches events until cond() is true or the simulation is
// quiescent; it reports whether cond was met.
func (s *Sim) RunUntil(cond func() bool) bool {
	start := s.steps
	for !cond() {
		if !s.Step() {
			return cond()
		}
		if s.MaxSteps > 0 && s.steps-start > s.MaxSteps {
			panic(fmt.Sprintf("sched: exceeded MaxSteps=%d in RunUntil\n%s", s.MaxSteps, s.Dump()))
		}
	}
	return true
}

// Quiescent reports whether nothing is runnable.
func (s *Sim) Quiescent() bool {
	for _, c := range s.ctxs {
		if _, _, ok := c.next(); ok {
			return false
		}
	}
	return true
}

// BlockedCtxs returns the names of contexts stuck in a futex wait with no
// pending wake — the signature of a deadlock when the sim is quiescent.
func (s *Sim) BlockedCtxs() []string {
	var out []string
	for _, c := range s.ctxs {
		if !c.dead && c.blocked && c.wake == nil {
			out = append(out, c.name)
		}
	}
	sort.Strings(out)
	return out
}

// Dump renders scheduler state for diagnostics.
func (s *Sim) Dump() string {
	out := ""
	for _, c := range s.ctxs {
		out += fmt.Sprintf("ctx %q: now=%s q=%d blocked=%v dead=%v wake=%v\n",
			c.name, time.Duration(c.now), len(c.q), c.blocked, c.dead, c.wake != nil)
	}
	return out
}
