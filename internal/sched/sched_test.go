package sched

import (
	"testing"
)

func TestEventOrderingByTime(t *testing.T) {
	s := New()
	c := s.NewCtx("main")
	var got []int
	s.Post(c, 30, func() { got = append(got, 3) })
	s.Post(c, 10, func() { got = append(got, 1) })
	s.Post(c, 20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 30 {
		t.Fatalf("final clock = %d, want 30", c.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	c := s.NewCtx("main")
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Post(c, 5, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestChargeAdvancesClockAndDelaysLaterEvents(t *testing.T) {
	s := New()
	c := s.NewCtx("main")
	var secondStart int64
	s.Post(c, 0, func() { s.Charge(100) })
	s.Post(c, 10, func() { secondStart = c.Now() })
	s.Run()
	// The second event was due at t=10 but the context was busy until 100.
	if secondStart != 100 {
		t.Fatalf("second event started at %d, want 100", secondStart)
	}
}

func TestCrossContextClocksIndependent(t *testing.T) {
	s := New()
	a := s.NewCtx("a")
	b := s.NewCtx("b")
	s.Post(a, 0, func() { s.Charge(1000) })
	var bStart int64
	s.Post(b, 5, func() { bStart = b.Now() })
	s.Run()
	if bStart != 5 {
		t.Fatalf("context b start = %d; busy context a must not delay b", bStart)
	}
}

func TestPostDelayUsesSenderClock(t *testing.T) {
	s := New()
	a := s.NewCtx("a")
	b := s.NewCtx("b")
	var deliveredAt int64
	s.Post(a, 0, func() {
		s.Charge(50)
		s.PostDelay(b, 7, func() { deliveredAt = b.Now() })
	})
	s.Run()
	if deliveredAt != 57 {
		t.Fatalf("delivered at %d, want 57 (sender now 50 + 7)", deliveredAt)
	}
}

func TestCoroutineParkResume(t *testing.T) {
	s := New()
	c := s.NewCtx("w")
	var trace []string
	g := s.NewG(c, "prog", func(first any) {
		trace = append(trace, "start:"+first.(string))
		v := s.Park()
		trace = append(trace, "resumed:"+v.(string))
	})
	s.Post(c, 0, func() { s.ResumeG(g, "init") })
	s.Post(c, 10, func() { s.ResumeG(g, "reply") })
	s.Run()
	if len(trace) != 2 || trace[0] != "start:init" || trace[1] != "resumed:reply" {
		t.Fatalf("trace = %v", trace)
	}
	if !g.Done() {
		t.Fatal("coroutine not done")
	}
}

func TestCoroutineChargesAccrueToContext(t *testing.T) {
	s := New()
	c := s.NewCtx("w")
	g := s.NewG(c, "prog", func(any) {
		s.Charge(123)
	})
	s.Post(c, 0, func() { s.ResumeG(g, nil) })
	s.Run()
	if c.Now() != 123 {
		t.Fatalf("ctx clock = %d, want 123", c.Now())
	}
}

func TestPostResumeCompletesAsyncCall(t *testing.T) {
	s := New()
	w := s.NewCtx("worker")
	k := s.NewCtx("kernel")
	var result any
	var g *G
	g = s.NewG(w, "prog", func(any) {
		// issue "syscall": message to kernel, then park
		s.PostDelay(k, 3, func() {
			// kernel handles, replies after 2ns of work
			s.Charge(2)
			s.PostResume(g, s.Now()+3, 42)
		})
		result = s.Park()
	})
	s.Post(w, 0, func() { s.ResumeG(g, nil) })
	s.Run()
	if result != 42 {
		t.Fatalf("syscall result = %v, want 42", result)
	}
	if w.Now() != 8 { // 0 + deliver 3 + kernel 2 + reply 3
		t.Fatalf("worker clock = %d, want 8", w.Now())
	}
}

func TestBlockedContextDefersEvents(t *testing.T) {
	s := New()
	w := s.NewCtx("worker")
	k := s.NewCtx("kernel")
	var trace []string
	g := s.NewG(w, "prog", func(any) {
		trace = append(trace, "block")
		v := s.BlockCur()
		trace = append(trace, "woke:"+v.(string))
	})
	s.Post(w, 0, func() { s.ResumeG(g, nil) })
	// This message arrives while the worker is blocked; it must run only
	// after the wake, even though its timestamp is earlier.
	s.Post(w, 5, func() { trace = append(trace, "event") })
	s.Post(k, 10, func() { s.WakeCtx(g, 10, "ok") })
	s.Run()
	want := []string{"block", "woke:ok", "event"}
	if len(trace) != 3 {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if w.Now() != 10 {
		t.Fatalf("worker woke at %d, want 10", w.Now())
	}
}

func TestWakeEarlierWins(t *testing.T) {
	s := New()
	w := s.NewCtx("worker")
	k := s.NewCtx("kernel")
	var got string
	g := s.NewG(w, "prog", func(any) {
		got = s.BlockCur().(string)
	})
	s.Post(w, 0, func() { s.ResumeG(g, nil) })
	s.Post(k, 1, func() {
		s.WakeCtx(g, 100, "timeout") // pre-armed timeout
		s.WakeCtx(g, 50, "notify")   // notify beats it
		s.WakeCtx(g, 70, "late")     // later than pending: ignored
	})
	s.Run()
	if got != "notify" {
		t.Fatalf("wake value = %q, want notify", got)
	}
	if w.Now() != 50 {
		t.Fatalf("woke at %d, want 50", w.Now())
	}
}

func TestQuiescenceAndDeadlockDetection(t *testing.T) {
	s := New()
	w := s.NewCtx("worker")
	g := s.NewG(w, "prog", func(any) {
		s.BlockCur() // nobody will ever wake us
	})
	s.Post(w, 0, func() { s.ResumeG(g, nil) })
	s.Run()
	if !s.Quiescent() {
		t.Fatal("expected quiescent")
	}
	blocked := s.BlockedCtxs()
	if len(blocked) != 1 || blocked[0] != "worker" {
		t.Fatalf("BlockedCtxs = %v, want [worker]", blocked)
	}
}

func TestKillG(t *testing.T) {
	s := New()
	w := s.NewCtx("worker")
	cleanedUp := false
	g := s.NewG(w, "prog", func(any) {
		defer func() { cleanedUp = true }()
		s.Park()
		t.Error("parked coroutine continued after kill")
	})
	s.Post(w, 0, func() { s.ResumeG(g, nil) })
	s.Post(w, 5, func() { s.KillG(g) })
	s.Run()
	if !cleanedUp {
		t.Fatal("killed coroutine's deferred cleanup did not run")
	}
	if !g.Done() {
		t.Fatal("killed coroutine not done")
	}
}

func TestKillCtxDropsEvents(t *testing.T) {
	s := New()
	w := s.NewCtx("worker")
	ran := false
	s.Post(w, 10, func() { ran = true })
	s.KillCtx(w)
	s.Post(w, 20, func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event ran on dead context")
	}
	if !w.Dead() {
		t.Fatal("context not dead")
	}
}

func TestKillCtxWhileFutexBlocked(t *testing.T) {
	s := New()
	w := s.NewCtx("worker")
	k := s.NewCtx("kernel")
	g := s.NewG(w, "prog", func(any) {
		s.BlockCur()
		t.Error("blocked coroutine resumed after ctx kill")
	})
	s.Post(w, 0, func() { s.ResumeG(g, nil) })
	s.Post(k, 5, func() { s.KillCtx(w) })
	s.Run()
	if !s.Quiescent() {
		t.Fatal("not quiescent after ctx kill")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	c := s.NewCtx("main")
	n := 0
	for i := 0; i < 10; i++ {
		s.Post(c, int64(i), func() { n++ })
	}
	ok := s.RunUntil(func() bool { return n >= 5 })
	if !ok || n != 5 {
		t.Fatalf("RunUntil stopped at n=%d ok=%v, want 5/true", n, ok)
	}
	s.Run()
	if n != 10 {
		t.Fatalf("after Run n=%d, want 10", n)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	s := New()
	c := s.NewCtx("main")
	s.MaxSteps = 100
	var loop func()
	loop = func() { s.Post(c, c.Now()+1, loop) }
	s.Post(c, 0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected MaxSteps panic")
		}
	}()
	s.Run()
}

func TestNestedResumeGPanics(t *testing.T) {
	s := New()
	c := s.NewCtx("main")
	g1 := s.NewG(c, "g1", func(any) {})
	g2 := s.NewG(c, "g2", func(any) {
		defer func() {
			if recover() == nil {
				t.Error("ResumeG inside coroutine should panic")
			}
		}()
		s.ResumeG(g1, nil)
	})
	s.Post(c, 0, func() { s.ResumeG(g2, nil) })
	s.Run()
	// g1 was never legitimately started; resume it so it finishes.
	s.Post(c, 1, func() { s.ResumeG(g1, nil) })
	s.Run()
}

func TestNowFrontier(t *testing.T) {
	s := New()
	a := s.NewCtx("a")
	b := s.NewCtx("b")
	s.Post(a, 100, func() {})
	s.Post(b, 40, func() {})
	s.Run()
	if s.Now() != 100 {
		t.Fatalf("frontier = %d, want 100", s.Now())
	}
}
