// Package netsim models the network outside the browser: remote HTTP
// hosts with round-trip latency, bandwidth, and server-side CPU. It backs
// two pieces of the evaluation:
//
//   - the HTTP-backed file system's lazy fetches (the TeX Live tree served
//     from a web server, §2.2), and
//   - the remote meme-generation server (an EC2 instance in §5.2) that the
//     in-Browsix server is compared against.
package netsim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sched"
)

// Request is a simplified HTTP request delivered to a host handler.
type Request struct {
	Method string
	Path   string
	Header map[string]string
	Body   []byte
}

// Response is a host handler's reply.
type Response struct {
	Status int
	Header map[string]string
	Body   []byte
}

// Host is one remote machine.
type Host struct {
	Name string
	// RTT is the full network round trip between browser and host.
	RTT int64
	// NsPerByte models bandwidth (transfer cost per payload byte each way).
	NsPerByte float64
	// Handler services requests; it runs on the host's own context and
	// may charge server CPU via Charge.
	Handler func(h *Host, req Request) Response

	net *Net
	ctx *sched.Ctx

	// Requests counts served requests (experiment bookkeeping).
	Requests int
}

// Charge accounts server-side CPU for the current request.
func (h *Host) Charge(ns int64) { h.net.sim.Charge(ns) }

// Net is the simulated internet.
type Net struct {
	sim   *sched.Sim
	hosts map[string]*Host

	// Offline simulates losing connectivity (the meme generator's
	// dynamic-routing policy reacts to this).
	Offline bool
}

// New creates an empty network.
func New(sim *sched.Sim) *Net {
	return &Net{sim: sim, hosts: map[string]*Host{}}
}

// AddHost registers a remote host.
func (n *Net) AddHost(h *Host) *Host {
	h.net = n
	h.ctx = n.sim.NewCtx("host:" + h.Name)
	n.hosts[h.Name] = h
	return h
}

// Host looks up a registered host.
func (n *Net) Host(name string) *Host { return n.hosts[name] }

// Fetch issues a request from the current context (normally the browser
// main thread) to a host, delivering the response to cb back on the
// calling context after the modelled latency. Status 0 with no body means
// network unreachable.
func (n *Net) Fetch(host string, req Request, cb func(Response)) {
	from := n.sim.Cur()
	if from == nil {
		panic("netsim: Fetch outside event execution")
	}
	h := n.hosts[host]
	if h == nil || n.Offline {
		// Connection failure surfaces after a timeout-ish delay.
		n.sim.PostDelay(from, 2_000_000, func() {
			cb(Response{Status: 0})
		})
		return
	}
	uplink := h.RTT/2 + int64(float64(len(req.Body))*h.NsPerByte)
	n.sim.PostDelay(h.ctx, uplink, func() {
		h.Requests++
		resp := h.Handler(h, req)
		downlink := h.RTT/2 + int64(float64(len(resp.Body))*h.NsPerByte)
		n.sim.PostDelay(from, downlink, func() { cb(resp) })
	})
}

// FileHost builds a host that serves a static file tree (the TeX Live
// mirror, the meme-template CDN…).
func FileHost(name string, rtt int64, nsPerByte float64, files map[string][]byte) *Host {
	return &Host{
		Name:      name,
		RTT:       rtt,
		NsPerByte: nsPerByte,
		Handler: func(h *Host, req Request) Response {
			p := req.Path
			if !strings.HasPrefix(p, "/") {
				p = "/" + p
			}
			body, ok := files[p]
			if !ok {
				return Response{Status: 404, Body: []byte("not found: " + p)}
			}
			if rng := req.Header["Range"]; rng != "" {
				// "bytes=lo-hi" (inclusive), as real static servers
				// answer 206 Partial Content.
				lo, hi, ok := parseByteRange(rng, int64(len(body)))
				if !ok {
					return Response{Status: 416}
				}
				part := body[lo : hi+1]
				h.Charge(50_000 + int64(len(part))/16)
				return Response{Status: 206, Body: part}
			}
			h.Charge(50_000 + int64(len(body))/16) // static-file server work
			return Response{Status: 200, Body: body}
		},
	}
}

// FSFetcher adapts a host into the fs.Fetcher interface used by the
// HTTP-backed file system backend.
type FSFetcher struct {
	Net    *Net
	HostNm string
	Prefix string // path prefix on the server, e.g. "/texlive"
}

// Fetch implements fs.Fetcher.
func (f *FSFetcher) Fetch(p string, cb func([]byte, int)) {
	f.Net.Fetch(f.HostNm, Request{Method: "GET", Path: f.Prefix + p}, func(r Response) {
		cb(r.Body, r.Status)
	})
}

// FetchRange implements fs.RangeFetcher with a standard HTTP Range
// header, so httpfs reads become 206 Partial Content transfers sized to
// the page cache's window instead of whole-body downloads.
func (f *FSFetcher) FetchRange(p string, off, n int64, cb func([]byte, int)) {
	req := Request{
		Method: "GET",
		Path:   f.Prefix + p,
		Header: map[string]string{"Range": fmt.Sprintf("bytes=%d-%d", off, off+n-1)},
	}
	f.Net.Fetch(f.HostNm, req, func(r Response) {
		cb(r.Body, r.Status)
	})
}

// parseByteRange decodes "bytes=lo-hi" (or the open-ended "bytes=lo-")
// against a body size, returning the clamped inclusive range. Both
// bounds must be clean decimal integers — Sscanf-style prefix matching
// would accept trailing garbage like "bytes=5-2x".
func parseByteRange(s string, size int64) (lo, hi int64, ok bool) {
	if !strings.HasPrefix(s, "bytes=") || size == 0 {
		return 0, 0, false
	}
	spec := s[len("bytes="):]
	los, his, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	l, lerr := strconv.ParseInt(los, 10, 64)
	if lerr != nil || l < 0 || l >= size {
		return 0, 0, false
	}
	h := size - 1
	if his != "" {
		var herr error
		h, herr = strconv.ParseInt(his, 10, 64)
		if herr != nil || h < l {
			return 0, 0, false
		}
		if h >= size {
			h = size - 1
		}
	}
	return l, h, true
}

// String diagnostics.
func (h *Host) String() string {
	return fmt.Sprintf("host(%s rtt=%dus)", h.Name, h.RTT/1000)
}
