package netsim

// The deterministic client swarm: thousands of simulated HTTP clients
// driving an in-Browsix server over kernel-side connections, with seeded
// arrival distributions (open- and closed-loop), HTTP/1.1 keep-alive
// reuse, and per-request virtual-time latency recording. Because every
// gap, arrival, and retry is drawn from a seeded splitmix64 stream and
// all timing is virtual, a swarm run — including its full latency
// percentile report — is bit-identical across repeated runs.

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/httpx"
	"repro/internal/sched"
)

// Conn is one client connection in continuation-passing style. It is
// the shape of core.KernelConn, but kept abstract so swarms can drive
// any byte-stream transport.
type Conn interface {
	Read(n int, cb func([]byte, abi.Errno))
	Write(data []byte, cb func(int, abi.Errno))
	Close()
}

// Dialer opens a fresh connection to the server under test.
type Dialer func(cb func(Conn, abi.Errno))

// Swarm configures a load-generation run.
type Swarm struct {
	// Clients is the number of concurrent simulated clients.
	Clients int
	// PerClient is the number of requests each client issues.
	PerClient int
	// Seed feeds the splitmix64 stream behind every random choice.
	Seed uint64
	// OpenLoop pre-schedules each client's arrival times and fires
	// requests on schedule regardless of completions (pipelining onto
	// the client's keep-alive connection); latency then includes queueing
	// delay. Closed-loop clients wait for each response and think for a
	// gap before the next request.
	OpenLoop bool
	// MeanGapNs is the mean think time (closed loop) or inter-arrival
	// gap (open loop); actual gaps are uniform on [0, 2*mean].
	MeanGapNs int64
	// KeepAlive reuses one connection per client for its whole request
	// sequence. When false (closed loop only — open loop always reuses),
	// every request rides a fresh connection with Connection: close.
	KeepAlive bool
	// Request builds request seq for a client. The swarm adds the
	// Connection header when KeepAlive is off.
	Request func(client, seq int) *httpx.Request
	// OnResponse, when set, observes each completed response (e.g. for
	// body checksumming in determinism tests).
	OnResponse func(client, seq int, resp *httpx.Response)
}

// LoadReport is a swarm run's result. All fields are integers in
// virtual-time nanoseconds so the whole struct compares bit-equal
// across runs.
type LoadReport struct {
	Requests int   // completed responses
	Errors   int   // failed or non-2xx/3xx requests
	Retries  int   // connect attempts refused then retried
	Bytes    int64 // response body bytes received
	// DurationNs spans swarm start to last accounting event.
	DurationNs int64
	// RPSx1000 is completed requests per virtual second, x1000.
	RPSx1000 int64
	// Latency percentiles (nearest-rank) over completed requests.
	P50, P95, P99, Max int64
}

// splitmix64: tiny, seedable, and plenty for arrival jitter.
type lgRand struct{ s uint64 }

func (r *lgRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// gap draws a uniform gap on [0, 2*mean] (mean = mean).
func (r *lgRand) gap(mean int64) int64 {
	if mean <= 0 {
		return 0
	}
	return int64(r.next() % uint64(2*mean+1))
}

const (
	lgReadChunk    = 16 * 1024
	lgDialRetries  = 64
	lgRetryFloorNs = 1000
)

type swarmRun struct {
	cfg     *Swarm
	sim     *sched.Sim
	ctx     *sched.Ctx
	dial    Dialer
	startNs int64

	lat       []int64 // per (client*PerClient+seq); -1 = not completed
	bytes     int64
	errors    int
	retries   int
	accounted int
	total     int
	finished  bool
	done      func(LoadReport)
}

func (r *swarmRun) post(delay int64, fn func()) {
	r.sim.PostDelay(r.ctx, delay, fn)
}

// account marks one (client, seq) as finally resolved — completed or
// failed. The run finishes when every request is accounted for.
func (r *swarmRun) account() {
	r.accounted++
	if r.accounted >= r.total && !r.finished {
		r.finished = true
		r.done(r.report())
	}
}

func (r *swarmRun) report() LoadReport {
	lats := make([]int64, 0, len(r.lat))
	for _, l := range r.lat {
		if l >= 0 {
			lats = append(lats, l)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep := LoadReport{
		Requests:   len(lats),
		Errors:     r.errors,
		Retries:    r.retries,
		Bytes:      r.bytes,
		DurationNs: r.sim.Now() - r.startNs,
	}
	if rep.DurationNs > 0 {
		rep.RPSx1000 = int64(rep.Requests) * 1_000_000_000_000 / rep.DurationNs
	}
	if len(lats) > 0 {
		rep.P50 = pctl(lats, 50)
		rep.P95 = pctl(lats, 95)
		rep.P99 = pctl(lats, 99)
		rep.Max = lats[len(lats)-1]
	}
	return rep
}

// pctl is the nearest-rank percentile of a sorted slice.
func pctl(sorted []int64, p int) int64 {
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// lgClient is one simulated client.
type lgClient struct {
	run *swarmRun
	id  int
	rng lgRand

	conn    Conn
	dialing bool
	reading bool
	dead    bool
	buf     []byte

	sendq   []int   // arrived-but-unsent seqs (waiting on a dial)
	sendNs  []int64 // arrival timestamp per seq (latency base)
	arrived int     // open loop: arrivals fired so far
	sent    int     // requests written
	recv    int     // responses completed
	acct    int     // requests finally resolved (completed or failed)
}

// Start launches the swarm against dial on sim. It returns immediately;
// done receives the report (on the swarm's context) once every request
// is accounted for. The caller drives the simulation.
func (s *Swarm) Start(sim *sched.Sim, dial Dialer, done func(LoadReport)) {
	total := s.Clients * s.PerClient
	run := &swarmRun{
		cfg:     s,
		sim:     sim,
		ctx:     sim.NewCtx("loadgen"),
		dial:    dial,
		startNs: sim.Now(),
		lat:     make([]int64, total),
		total:   total,
		done:    done,
	}
	for i := range run.lat {
		run.lat[i] = -1
	}
	if total == 0 {
		done(LoadReport{})
		return
	}
	for i := 0; i < s.Clients; i++ {
		c := &lgClient{
			run:    run,
			id:     i,
			rng:    lgRand{s: s.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15},
			sendNs: make([]int64, s.PerClient),
		}
		if s.OpenLoop {
			// Pre-generate the whole arrival schedule.
			t := c.rng.gap(s.MeanGapNs)
			for seq := 0; seq < s.PerClient; seq++ {
				seq := seq
				run.post(t, func() { c.arrive(seq) })
				t += c.rng.gap(s.MeanGapNs)
			}
		} else {
			run.post(c.rng.gap(s.MeanGapNs), func() { c.arrive(0) })
		}
	}
}

// arrive is the moment request seq is due; latency counts from here.
func (c *lgClient) arrive(seq int) {
	if c.dead {
		c.fail()
		return
	}
	c.arrived++
	c.sendNs[seq] = c.run.sim.Now()
	c.sendq = append(c.sendq, seq)
	c.flushSendq()
}

func (c *lgClient) flushSendq() {
	if c.dead || len(c.sendq) == 0 {
		return
	}
	if c.conn == nil {
		c.ensureDial()
		return
	}
	for len(c.sendq) > 0 && !c.dead && c.conn != nil {
		seq := c.sendq[0]
		c.sendq = c.sendq[1:]
		c.send(seq)
	}
}

func (c *lgClient) ensureDial() {
	if c.dialing {
		return
	}
	c.dialing = true
	attempts := 0
	var try func()
	try = func() {
		c.run.dial(func(conn Conn, err abi.Errno) {
			if err != abi.OK {
				// Refused (listener backlog full) — retry after a
				// seeded backoff, giving the server room to drain.
				attempts++
				c.run.retries++
				if attempts > lgDialRetries {
					c.dialing = false
					c.die()
					return
				}
				c.run.post(lgRetryFloorNs+c.rng.gap(c.run.cfg.MeanGapNs/4+1), try)
				return
			}
			c.dialing = false
			c.conn = conn
			c.buf = nil
			c.flushSendq()
		})
	}
	try()
}

func (c *lgClient) send(seq int) {
	req := c.run.cfg.Request(c.id, seq)
	if !c.run.cfg.KeepAlive {
		if req.Header == nil {
			req.Header = map[string]string{}
		}
		req.Header["Connection"] = "close"
	}
	raw := httpx.WriteRequest(req)
	c.sent++
	conn := c.conn
	conn.Write(raw, func(_ int, err abi.Errno) {
		if err != abi.OK && conn == c.conn {
			c.connBroken()
		}
	})
	c.ensureReading()
}

// ensureReading runs the response pump: accumulate bytes, parse every
// complete response, stop when nothing is outstanding.
func (c *lgClient) ensureReading() {
	if c.reading || c.conn == nil || c.recv >= c.sent {
		return
	}
	c.reading = true
	conn := c.conn
	var loop func()
	loop = func() {
		conn.Read(lgReadChunk, func(b []byte, err abi.Errno) {
			if conn != c.conn {
				return // stale pump from before a redial
			}
			c.reading = false
			if err != abi.OK {
				c.connBroken()
				return
			}
			if len(b) == 0 {
				c.drainResponses(true)
				if conn == c.conn {
					c.onEOF()
				}
				return
			}
			c.buf = append(c.buf, b...)
			c.drainResponses(false)
			if conn == c.conn && c.recv < c.sent {
				c.reading = true
				loop()
			}
		})
	}
	loop()
}

func (c *lgClient) drainResponses(eof bool) {
	for c.recv < c.sent {
		resp, rest, err := httpx.ParseBufferedResponse(c.buf, eof)
		if err == abi.EAGAIN {
			return
		}
		if err != abi.OK {
			c.connBroken()
			return
		}
		n := copy(c.buf, rest)
		c.buf = c.buf[:n]
		c.complete(resp)
	}
}

func (c *lgClient) complete(resp *httpx.Response) {
	seq := c.recv
	c.recv++
	c.acct++
	c.run.lat[c.id*c.run.cfg.PerClient+seq] = c.run.sim.Now() - c.sendNs[seq]
	c.run.bytes += int64(len(resp.Body))
	if resp.Status >= 400 {
		c.run.errors++
	}
	if c.run.cfg.OnResponse != nil {
		c.run.cfg.OnResponse(c.id, seq, resp)
	}
	c.run.account()
	if !c.run.cfg.OpenLoop && c.sent < c.run.cfg.PerClient &&
		c.recv == c.sent && len(c.sendq) == 0 && !c.dead {
		if !c.run.cfg.KeepAlive {
			c.teardownConn()
		}
		next := c.sent
		c.run.post(c.rng.gap(c.run.cfg.MeanGapNs), func() { c.arrive(next) })
	}
}

// fail resolves one request as errored (latency excluded from report).
func (c *lgClient) fail() {
	c.acct++
	c.run.errors++
	c.run.account()
}

func (c *lgClient) teardownConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.buf = nil
	c.reading = false
}

// onEOF handles a server-side close: expected after a Connection: close
// exchange, an error if responses were still owed.
func (c *lgClient) onEOF() {
	if c.recv < c.sent {
		c.connBroken()
		return
	}
	c.teardownConn()
}

// connBroken fails every in-flight request and redials for whatever the
// client still owes.
func (c *lgClient) connBroken() {
	if c.dead {
		return
	}
	c.teardownConn()
	for c.recv < c.sent {
		c.recv++
		c.fail()
	}
	if len(c.sendq) > 0 {
		c.flushSendq()
	} else if !c.run.cfg.OpenLoop && c.sent < c.run.cfg.PerClient {
		next := c.sent
		c.run.post(c.rng.gap(c.run.cfg.MeanGapNs), func() { c.arrive(next) })
	}
}

// die gives up on the client (dial retries exhausted): everything not
// yet resolved — queued, in flight, or (closed loop) never to be sent —
// fails now; open-loop arrivals still to fire fail as they arrive.
func (c *lgClient) die() {
	if c.dead {
		return
	}
	c.dead = true
	c.teardownConn()
	c.sendq = nil
	for c.recv < c.sent {
		c.recv++
		c.fail()
	}
	pendingArrivals := 0
	if c.run.cfg.OpenLoop {
		pendingArrivals = c.run.cfg.PerClient - c.arrived
	}
	for c.acct+pendingArrivals < c.run.cfg.PerClient {
		c.fail()
	}
}
