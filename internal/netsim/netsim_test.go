package netsim

import (
	"testing"

	"repro/internal/sched"
)

func newNet() (*sched.Sim, *sched.Ctx, *Net) {
	sim := sched.New()
	sim.MaxSteps = 100_000
	browserCtx := sim.NewCtx("browser")
	return sim, browserCtx, New(sim)
}

func TestFetchLatencyModel(t *testing.T) {
	sim, browserCtx, net := newNet()
	files := map[string][]byte{"/a.sty": make([]byte, 10_000)}
	net.AddHost(FileHost("cdn", 30_000_000, 10, files)) // 30ms RTT, 10ns/B

	var deliveredAt int64
	var status int
	sim.Post(browserCtx, 0, func() {
		net.Fetch("cdn", Request{Method: "GET", Path: "/a.sty"}, func(r Response) {
			status = r.Status
			deliveredAt = browserCtx.Now()
		})
	})
	sim.Run()
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	// At least a full RTT plus body transfer (10k * 10ns = 100us).
	if deliveredAt < 30_000_000+100_000 {
		t.Fatalf("delivered at %dus, faster than the network allows", deliveredAt/1000)
	}
}

func TestFetch404(t *testing.T) {
	sim, browserCtx, net := newNet()
	net.AddHost(FileHost("cdn", 1_000_000, 1, map[string][]byte{}))
	status := -1
	sim.Post(browserCtx, 0, func() {
		net.Fetch("cdn", Request{Path: "/missing"}, func(r Response) { status = r.Status })
	})
	sim.Run()
	if status != 404 {
		t.Fatalf("status = %d", status)
	}
}

func TestOfflineAndUnknownHost(t *testing.T) {
	sim, browserCtx, net := newNet()
	net.AddHost(FileHost("cdn", 1_000_000, 1, map[string][]byte{"/x": {1}}))
	var statuses []int
	sim.Post(browserCtx, 0, func() {
		net.Fetch("nowhere", Request{Path: "/x"}, func(r Response) { statuses = append(statuses, r.Status) })
	})
	sim.Run()
	net.Offline = true
	sim.Post(browserCtx, browserCtx.Now(), func() {
		net.Fetch("cdn", Request{Path: "/x"}, func(r Response) { statuses = append(statuses, r.Status) })
	})
	sim.Run()
	if len(statuses) != 2 || statuses[0] != 0 || statuses[1] != 0 {
		t.Fatalf("statuses = %v, want [0 0]", statuses)
	}
}

func TestHostRequestCounting(t *testing.T) {
	sim, browserCtx, net := newNet()
	h := net.AddHost(FileHost("cdn", 1_000_000, 1, map[string][]byte{"/x": {1}}))
	sim.Post(browserCtx, 0, func() {
		net.Fetch("cdn", Request{Path: "/x"}, func(Response) {})
		net.Fetch("cdn", Request{Path: "/x"}, func(Response) {})
	})
	sim.Run()
	if h.Requests != 2 {
		t.Fatalf("requests = %d", h.Requests)
	}
}

func TestFSFetcherAdapter(t *testing.T) {
	sim, browserCtx, net := newNet()
	net.AddHost(FileHost("texlive", 5_000_000, 2, map[string][]byte{
		"/tree/sty/a.sty": []byte("content"),
	}))
	f := &FSFetcher{Net: net, HostNm: "texlive", Prefix: "/tree"}
	var body []byte
	var status int
	sim.Post(browserCtx, 0, func() {
		f.Fetch("/sty/a.sty", func(b []byte, s int) { body, status = b, s })
	})
	sim.Run()
	if status != 200 || string(body) != "content" {
		t.Fatalf("fetch: %d %q", status, body)
	}
}

// TestFSFetcherRangeRequest: FetchRange travels as a standard Range
// header; FileHost answers 206 with just the slice, so the downlink
// cost (and first-byte latency) scales with the window, not the body.
func TestFSFetcherRangeRequest(t *testing.T) {
	body := make([]byte, 100_000)
	for i := range body {
		body[i] = byte(i)
	}
	sim, browserCtx, net := newNet()
	net.AddHost(FileHost("texlive", 5_000_000, 2, map[string][]byte{
		"/tree/big.pfb": body,
	}))
	f := &FSFetcher{Net: net, HostNm: "texlive", Prefix: "/tree"}
	var got []byte
	var status int
	sim.Post(browserCtx, 0, func() {
		f.FetchRange("/big.pfb", 1000, 64, func(b []byte, s int) { got, status = b, s })
	})
	sim.Run()
	if status != 206 || len(got) != 64 {
		t.Fatalf("range fetch: status=%d len=%d", status, len(got))
	}
	for i, b := range got {
		if b != body[1000+i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	// A range past EOF clamps; a malformed range is 416.
	sim.Post(browserCtx, 0, func() {
		f.FetchRange("/big.pfb", 99_990, 64, func(b []byte, s int) { got, status = b, s })
	})
	sim.Run()
	if status != 206 || len(got) != 10 {
		t.Fatalf("tail range: status=%d len=%d", status, len(got))
	}
}

func TestServerCPUChargedToHostNotBrowser(t *testing.T) {
	sim, browserCtx, net := newNet()
	h := net.AddHost(&Host{
		Name: "worker",
		RTT:  2_000_000,
		Handler: func(h *Host, req Request) Response {
			h.Charge(500_000_000) // 500ms of server work
			return Response{Status: 200}
		},
	})
	var deliveredAt int64
	sim.Post(browserCtx, 0, func() {
		net.Fetch("worker", Request{Path: "/"}, func(Response) { deliveredAt = browserCtx.Now() })
	})
	sim.Run()
	if deliveredAt < 500_000_000 {
		t.Fatalf("response before server work finished: %dms", deliveredAt/1e6)
	}
	_ = h
}

func TestParseByteRange(t *testing.T) {
	cases := []struct {
		spec   string
		size   int64
		lo, hi int64
		ok     bool
	}{
		{"bytes=0-9", 100, 0, 9, true},
		{"bytes=90-199", 100, 90, 99, true}, // hi clamped to size-1
		{"bytes=5-5", 100, 5, 5, true},
		{"bytes=42-", 100, 42, 99, true}, // open-ended suffix
		{"bytes=0-", 1, 0, 0, true},
		{"bytes=5-2", 100, 0, 0, false},     // inverted
		{"bytes=5-2x", 100, 0, 0, false},    // trailing garbage (Sscanf used to pass this)
		{"bytes=x5-9", 100, 0, 0, false},    // leading garbage
		{"bytes=5x-9", 100, 0, 0, false},    // garbage inside lo
		{"bytes=-5", 100, 0, 0, false},      // missing lo (suffix-length form unsupported)
		{"bytes=", 100, 0, 0, false},        // empty spec
		{"bytes=100-200", 100, 0, 0, false}, // lo past end
		{"bytes=0-9", 0, 0, 0, false},       // empty body
		{"bits=0-9", 100, 0, 0, false},      // wrong unit
		{"0-9", 100, 0, 0, false},           // no unit
		{"bytes=1e2-300", 100, 0, 0, false}, // non-decimal
	}
	for _, c := range cases {
		lo, hi, ok := parseByteRange(c.spec, c.size)
		if ok != c.ok || lo != c.lo || hi != c.hi {
			t.Errorf("parseByteRange(%q, %d) = (%d, %d, %v), want (%d, %d, %v)",
				c.spec, c.size, lo, hi, ok, c.lo, c.hi, c.ok)
		}
	}
}

func TestFileHostRangeRequests(t *testing.T) {
	sim, browserCtx, net := newNet()
	body := make([]byte, 256)
	for i := range body {
		body[i] = byte(i)
	}
	net.AddHost(FileHost("cdn", 1_000_000, 1, map[string][]byte{"/blob": body}))

	fetch := func(rng string) Response {
		var got Response
		done := false
		sim.Post(browserCtx, 0, func() {
			net.Fetch("cdn", Request{
				Method: "GET", Path: "/blob",
				Header: map[string]string{"Range": rng},
			}, func(r Response) { got = r; done = true })
		})
		sim.Run()
		if !done {
			t.Fatalf("fetch %q never completed", rng)
		}
		return got
	}

	if r := fetch("bytes=16-31"); r.Status != 206 || len(r.Body) != 16 || r.Body[0] != 16 {
		t.Fatalf("closed range: status %d len %d", r.Status, len(r.Body))
	}
	if r := fetch("bytes=240-"); r.Status != 206 || len(r.Body) != 16 || r.Body[0] != 240 {
		t.Fatalf("open-ended range: status %d len %d", r.Status, len(r.Body))
	}
	if r := fetch("bytes=16-8x"); r.Status != 416 {
		t.Fatalf("malformed range served: status %d", r.Status)
	}
}
