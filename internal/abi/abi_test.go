package abi

import (
	"testing"
	"testing/quick"
)

func TestExitStatusEncoding(t *testing.T) {
	st := ExitStatus(42)
	if !WIFEXITED(st) || WEXITSTATUS(st) != 42 || WIFSIGNALED(st) {
		t.Fatalf("exit status roundtrip: %#x", st)
	}
	st = SignalStatus(SIGKILL)
	if !WIFSIGNALED(st) || WTERMSIG(st) != SIGKILL || WIFEXITED(st) {
		t.Fatalf("signal status roundtrip: %#x", st)
	}
}

func TestExitStatusProperty(t *testing.T) {
	f := func(code uint8) bool {
		st := ExitStatus(int(code))
		return WIFEXITED(st) && WEXITSTATUS(st) == int(code)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatPackRoundTrip(t *testing.T) {
	st := Stat{Mode: S_IFREG | 0o644, Size: 123456789, Mtime: 42, Atime: 7, Ctime: 9, Nlink: 3, Ino: 991}
	var buf [StatSize]byte
	PackStat(buf[:], st)
	got := UnpackStat(buf[:])
	if got != st {
		t.Fatalf("roundtrip: %+v != %+v", got, st)
	}
}

func TestStatPackProperty(t *testing.T) {
	f := func(mode uint32, size int64, mtime int64, ino uint64) bool {
		if size < 0 {
			size = -size
		}
		st := Stat{Mode: mode, Size: size, Mtime: mtime, Nlink: 1, Ino: ino}
		var buf [StatSize]byte
		PackStat(buf[:], st)
		return UnpackStat(buf[:]) == st
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDirentPackRoundTrip(t *testing.T) {
	ents := []Dirent{
		{Name: "a", Type: DT_REG, Ino: 1},
		{Name: "some-longer-name.txt", Type: DT_DIR, Ino: 2},
		{Name: "x", Type: DT_LNK, Ino: 3},
	}
	buf := make([]byte, 4096)
	n, consumed := PackDirents(buf, ents)
	if consumed != 3 {
		t.Fatalf("consumed %d", consumed)
	}
	got := UnpackDirents(buf[:n])
	if len(got) != 3 {
		t.Fatalf("decoded %d", len(got))
	}
	for i := range ents {
		if got[i] != ents[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], ents[i])
		}
	}
}

func TestDirentPackTruncation(t *testing.T) {
	ents := []Dirent{{Name: "aaaa", Type: DT_REG, Ino: 1}, {Name: "bbbb", Type: DT_REG, Ino: 2}}
	buf := make([]byte, 20) // room for only one record
	n, consumed := PackDirents(buf, ents)
	if consumed != 1 || n == 0 {
		t.Fatalf("n=%d consumed=%d", n, consumed)
	}
	got := UnpackDirents(buf[:n])
	if len(got) != 1 || got[0].Name != "aaaa" {
		t.Fatalf("got %+v", got)
	}
}

func TestStatMapRoundTrip(t *testing.T) {
	st := Stat{Mode: S_IFDIR | 0o755, Size: 4096, Mtime: 11, Atime: 22, Ctime: 33, Nlink: 2, Ino: 5}
	got := StatFromMap(StatToMap(st))
	if got != st {
		t.Fatalf("map roundtrip: %+v != %+v", got, st)
	}
	if !st.IsDir() || st.IsRegular() || st.IsSymlink() {
		t.Fatal("mode predicates wrong")
	}
}

func TestDirentMapRoundTrip(t *testing.T) {
	d := Dirent{Name: "f.txt", Type: DT_REG, Ino: 77}
	if got := DirentFromMap(DirentToMap(d)); got != d {
		t.Fatalf("dirent map roundtrip: %+v", got)
	}
}

func TestErrnoStrings(t *testing.T) {
	if ENOENT.String() != "ENOENT" || ENOENT.Error() != "ENOENT" {
		t.Fatal("errno naming")
	}
	if Errno(9999).String() == "" {
		t.Fatal("unknown errno must render")
	}
}

func TestSyscallNames(t *testing.T) {
	if SyscallName(SYS_open) != "open" || SyscallName(SYS_getdents) != "getdents" {
		t.Fatal("syscall names")
	}
	if SyscallName(-1) == "" || SyscallName(10_000) == "" {
		t.Fatal("out-of-range syscall numbers must render")
	}
}

func TestDirentTypeFromMode(t *testing.T) {
	cases := map[uint32]int{
		S_IFDIR | 0o755: DT_DIR, S_IFREG: DT_REG, S_IFLNK: DT_LNK,
		S_IFIFO: DT_FIFO, S_IFSOCK: DT_SOCK, S_IFCHR: DT_CHR, 0: DT_UNKNOWN,
	}
	for mode, want := range cases {
		if got := DirentTypeFromMode(mode); got != want {
			t.Errorf("mode %#x -> %d, want %d", mode, got, want)
		}
	}
}

func TestSignalNames(t *testing.T) {
	if SignalName(SIGKILL) != "SIGKILL" || SignalName(99) == "" {
		t.Fatal("signal naming")
	}
}
