package abi

import "encoding/binary"

// This file defines the wire encodings shared by the kernel and the
// language runtimes — the equivalent of the C struct layouts Browsix's
// Emscripten integration had to pad to match the kernel's expectations
// (§4.3), and the object shapes used on the asynchronous message path.

// StatSize is the packed size of a Stat record in a process heap.
const StatSize = 64

// PackStat writes st into b (at least StatSize bytes) in the layout the
// synchronous syscall transport uses.
func PackStat(b []byte, st Stat) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], st.Mode)
	le.PutUint32(b[4:], 0) // padding, as in the C struct
	le.PutUint64(b[8:], uint64(st.Size))
	le.PutUint64(b[16:], uint64(st.Mtime))
	le.PutUint64(b[24:], uint64(st.Atime))
	le.PutUint64(b[32:], uint64(st.Ctime))
	le.PutUint64(b[40:], uint64(st.Nlink))
	le.PutUint64(b[48:], st.Ino)
	le.PutUint64(b[56:], 0) // reserved
}

// UnpackStat reads a Stat packed by PackStat.
func UnpackStat(b []byte) Stat {
	le := binary.LittleEndian
	return Stat{
		Mode:  le.Uint32(b[0:]),
		Size:  int64(le.Uint64(b[8:])),
		Mtime: int64(le.Uint64(b[16:])),
		Atime: int64(le.Uint64(b[24:])),
		Ctime: int64(le.Uint64(b[32:])),
		Nlink: int(le.Uint64(b[40:])),
		Ino:   le.Uint64(b[48:]),
	}
}

// direntHeader is ino(8) + type(2) + namelen(2).
const direntHeader = 12

// PackDirents packs as many entries into buf as fit, returning the bytes
// written and the number of entries consumed. Records are 4-byte aligned,
// getdents-style.
func PackDirents(buf []byte, ents []Dirent) (n int, consumed int) {
	le := binary.LittleEndian
	for _, e := range ents {
		rec := direntHeader + len(e.Name)
		rec = (rec + 3) &^ 3
		if n+rec > len(buf) {
			break
		}
		le.PutUint64(buf[n:], e.Ino)
		le.PutUint16(buf[n+8:], uint16(e.Type))
		le.PutUint16(buf[n+10:], uint16(len(e.Name)))
		copy(buf[n+direntHeader:], e.Name)
		for i := n + direntHeader + len(e.Name); i < n+rec; i++ {
			buf[i] = 0
		}
		n += rec
		consumed++
	}
	return n, consumed
}

// UnpackDirents decodes records written by PackDirents.
func UnpackDirents(buf []byte) []Dirent {
	le := binary.LittleEndian
	var out []Dirent
	for n := 0; n+direntHeader <= len(buf); {
		ino := le.Uint64(buf[n:])
		typ := int(le.Uint16(buf[n+8:]))
		nameLen := int(le.Uint16(buf[n+10:]))
		if n+direntHeader+nameLen > len(buf) {
			break
		}
		out = append(out, Dirent{
			Ino:  ino,
			Type: typ,
			Name: string(buf[n+direntHeader : n+direntHeader+nameLen]),
		})
		rec := (direntHeader + nameLen + 3) &^ 3
		n += rec
	}
	return out
}

// StatToMap converts a Stat to the object shape used on the asynchronous
// message path.
func StatToMap(st Stat) map[string]any {
	return map[string]any{
		"mode":  int64(st.Mode),
		"size":  st.Size,
		"mtime": st.Mtime,
		"atime": st.Atime,
		"ctime": st.Ctime,
		"nlink": int64(st.Nlink),
		"ino":   int64(st.Ino),
	}
}

// StatFromMap is the inverse of StatToMap.
func StatFromMap(m map[string]any) Stat {
	geti := func(k string) int64 {
		switch v := m[k].(type) {
		case int64:
			return v
		case int:
			return int64(v)
		case float64:
			return int64(v)
		}
		return 0
	}
	return Stat{
		Mode:  uint32(geti("mode")),
		Size:  geti("size"),
		Mtime: geti("mtime"),
		Atime: geti("atime"),
		Ctime: geti("ctime"),
		Nlink: int(geti("nlink")),
		Ino:   uint64(geti("ino")),
	}
}

// DirentToMap converts a Dirent for the asynchronous message path.
func DirentToMap(d Dirent) map[string]any {
	return map[string]any{"name": d.Name, "type": int64(d.Type), "ino": int64(d.Ino)}
}

// DirentFromMap is the inverse of DirentToMap.
func DirentFromMap(m map[string]any) Dirent {
	name, _ := m["name"].(string)
	var typ, ino int64
	switch v := m["type"].(type) {
	case int64:
		typ = v
	case int:
		typ = int64(v)
	}
	switch v := m["ino"].(type) {
	case int64:
		ino = v
	case int:
		ino = int64(v)
	}
	return Dirent{Name: name, Type: int(typ), Ino: uint64(ino)}
}
