package abi

import (
	"encoding/binary"
	"testing"
)

func TestIovecRoundTrip(t *testing.T) {
	iovs := []Iovec{{Ptr: 64, Len: 4096}, {Ptr: 4160, Len: 65536}, {Ptr: 1 << 40, Len: 1}}
	buf := make([]byte, len(iovs)*IovecSize)
	if n := PackIovecs(buf, iovs); n != len(buf) {
		t.Fatalf("packed %d bytes, want %d", n, len(buf))
	}
	got := UnpackIovecs(buf, len(iovs))
	if len(got) != len(iovs) {
		t.Fatalf("unpacked %d iovecs, want %d", len(got), len(iovs))
	}
	for i := range iovs {
		if got[i] != iovs[i] {
			t.Fatalf("iovec %d: got %+v want %+v", i, got[i], iovs[i])
		}
	}
}

func TestRingCallRoundTrip(t *testing.T) {
	r := NewRing(make([]byte, 256))
	r.Reset()
	if _, _, _, ok := r.PopCall(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if !r.PushCall(7, SYS_read, []int64{3, 64, 4096}) {
		t.Fatal("push failed on empty ring")
	}
	if !r.PushCall(8, SYS_getpid, nil) {
		t.Fatal("second push failed")
	}
	seq, trap, args, ok := r.PopCall()
	if !ok || seq != 7 || trap != SYS_read || len(args) != 3 || args[2] != 4096 {
		t.Fatalf("pop 1: seq=%d trap=%d args=%v ok=%v", seq, trap, args, ok)
	}
	seq, trap, args, ok = r.PopCall()
	if !ok || seq != 8 || trap != SYS_getpid || len(args) != 0 {
		t.Fatalf("pop 2: seq=%d trap=%d args=%v ok=%v", seq, trap, args, ok)
	}
	if r.Used() != 0 {
		t.Fatalf("ring not drained: %d bytes used", r.Used())
	}
}

func TestRingWrapAround(t *testing.T) {
	// A small ring forces the cursors to wrap mid-frame many times.
	r := NewRing(make([]byte, MinRingSize))
	r.Reset()
	seq := uint32(0)
	for i := 0; i < 100; i++ {
		for r.PushCall(seq, SYS_write, []int64{int64(seq), 2, 3}) {
			seq++
		}
		for {
			got, trap, args, ok := r.PopCall()
			if !ok {
				break
			}
			if trap != SYS_write || args[0] != int64(got) {
				t.Fatalf("iter %d: frame corrupted: seq=%d trap=%d args=%v", i, got, trap, args)
			}
		}
		if r.Used() != 0 {
			t.Fatalf("iter %d: residue %d bytes", i, r.Used())
		}
	}
	if seq < 100 {
		t.Fatalf("only %d frames pushed through a wrapping ring", seq)
	}
}

func TestRingPopCallRejectsMalformedFrames(t *testing.T) {
	// The ring lives in guest-writable shared memory: a frame whose
	// nargs disagrees with its size must be dropped, not drive a huge
	// allocation or an out-of-frame read.
	r := NewRing(make([]byte, 256))
	r.Reset()
	r.PushCall(1, SYS_read, []int64{1, 2, 3})
	// Corrupt nargs (offset: header 8 + frame base, nargs at +12).
	binary.LittleEndian.PutUint32(r.B[RingHdrSize+12:], 0xFFFF)
	if _, _, _, ok := r.PopCall(); ok {
		t.Fatal("malformed frame popped successfully")
	}
	if r.Used() != 0 {
		t.Fatalf("ring not reset after malformed frame: %d used", r.Used())
	}
	// A healthy ring keeps working after the reset.
	if !r.PushCall(2, SYS_getpid, nil) {
		t.Fatal("push after reset failed")
	}
	if seq, trap, _, ok := r.PopCall(); !ok || seq != 2 || trap != SYS_getpid {
		t.Fatalf("post-reset pop: seq=%d trap=%d ok=%v", seq, trap, ok)
	}
}

func TestRingReplyRoundTripAndFull(t *testing.T) {
	r := NewRing(make([]byte, MinRingSize))
	r.Reset()
	pushed := 0
	for r.PushReply(uint32(pushed), int64(1000+pushed), EAGAIN) {
		pushed++
	}
	if pushed == 0 {
		t.Fatal("no replies fit")
	}
	for i := 0; i < pushed; i++ {
		seq, ret, errno, ok := r.PopReply()
		if !ok || seq != uint32(i) || ret != int64(1000+i) || errno != EAGAIN {
			t.Fatalf("reply %d: seq=%d ret=%d errno=%v ok=%v", i, seq, ret, errno, ok)
		}
	}
	if _, _, _, ok := r.PopReply(); ok {
		t.Fatal("pop from drained reply ring succeeded")
	}
	// Negative return values survive the u64 crossing.
	r.PushReply(9, -1, EPIPE)
	_, ret, errno, _ := r.PopReply()
	if ret != -1 || errno != EPIPE {
		t.Fatalf("ret=%d errno=%v", ret, errno)
	}
}
