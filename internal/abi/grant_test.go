package abi

import "testing"

// Wire-format round trips for the zero-copy grant records: the read
// direction's PageGrant replies and the write direction's WriteRef
// submissions and wgalloc slot lists.

func TestGrantReplyPackRoundTrip(t *testing.T) {
	grants := []PageGrant{
		{Slot: 0, Len: GrantPageSize, Off: 0, Gen: 1},
		{Slot: 7, Len: 123, Off: 7 * GrantPageSize, Gen: 1 << 40},
		{Slot: 4095, Len: 1, Off: 99, Gen: 0},
	}
	buf := make([]byte, GrantAreaSize(len(grants)))
	PackGrantReply(buf, GrantMapped, grants)
	kind, got := UnpackGrantReply(buf)
	if kind != GrantMapped || len(got) != len(grants) {
		t.Fatalf("unpack = (%d, %d grants), want (%d, %d)", kind, len(got), GrantMapped, len(grants))
	}
	for i, g := range grants {
		if got[i] != g {
			t.Fatalf("grant %d: got %+v, want %+v", i, got[i], g)
		}
	}
}

func TestWriteRefPackRoundTrip(t *testing.T) {
	refs := []WriteRef{
		{Slot: 0, Off: 0, Len: GrantPageSize},
		{Slot: 31, Off: 4000, Len: 1},
		{Slot: 4095, Off: GrantPageSize - 1, Len: 1},
	}
	buf := make([]byte, WriteRefSize*len(refs))
	PackWriteRefs(buf, refs)
	got := UnpackWriteRefs(buf, len(refs))
	if len(got) != len(refs) {
		t.Fatalf("unpack = %d refs, want %d", len(got), len(refs))
	}
	for i, r := range refs {
		if got[i] != r {
			t.Fatalf("ref %d: got %+v, want %+v", i, got[i], r)
		}
	}
	// A short buffer yields only the refs that fully fit — a hostile
	// count can never read past the staged bytes.
	if short := UnpackWriteRefs(buf[:2*WriteRefSize+5], 3); len(short) != 2 {
		t.Fatalf("short unpack = %d refs, want 2", len(short))
	}
}

func TestSlotListPackRoundTrip(t *testing.T) {
	slots := []uint32{0, 1, 4095, 17}
	buf := make([]byte, 4*len(slots))
	PackSlots(buf, slots)
	got := UnpackSlots(buf, len(slots))
	if len(got) != len(slots) {
		t.Fatalf("unpack = %d slots, want %d", len(got), len(slots))
	}
	for i := range slots {
		if got[i] != slots[i] {
			t.Fatalf("slot %d: got %d, want %d", i, got[i], slots[i])
		}
	}
}

func TestWgallocSyscallNamed(t *testing.T) {
	for _, trap := range []int{SYS_wgalloc, SYS_writeg, SYS_readg, SYS_unlease} {
		if SyscallName(trap) == "" {
			t.Fatalf("trap %d has no name", trap)
		}
	}
}
