package abi

import "encoding/binary"

// This file defines the poll readiness ABI: event bits and the packed
// Pollfd record a process stages in its shared heap for SYS_poll. The
// layout mirrors struct pollfd, widened so every field is a fixed-size
// little-endian integer the runtimes can marshal with plain stores.

// Poll event bits, matching Linux values.
const (
	POLLIN   = 0x001 // data (or a queued connection) readable without blocking
	POLLOUT  = 0x004 // writable without blocking
	POLLERR  = 0x008 // error condition (peer read side closed)
	POLLHUP  = 0x010 // peer hung up; reads will drain then EOF
	POLLNVAL = 0x020 // fd not open
)

// Pollfd is one readiness query: which fd, which events the caller cares
// about, and (on return) which events are pending. POLLERR, POLLHUP and
// POLLNVAL are always reported regardless of Events, as in poll(2).
type Pollfd struct {
	Fd      int32
	Events  uint32
	Revents uint32
}

// PollfdSize is the packed size of one Pollfd record.
const PollfdSize = 12

// PackPollfds writes fds into b, returning bytes written. b must hold
// len(fds)*PollfdSize bytes.
func PackPollfds(b []byte, fds []Pollfd) int {
	le := binary.LittleEndian
	for i, p := range fds {
		le.PutUint32(b[i*PollfdSize:], uint32(p.Fd))
		le.PutUint32(b[i*PollfdSize+4:], p.Events)
		le.PutUint32(b[i*PollfdSize+8:], p.Revents)
	}
	return len(fds) * PollfdSize
}

// UnpackPollfds decodes n Pollfd records from b.
func UnpackPollfds(b []byte, n int) []Pollfd {
	le := binary.LittleEndian
	out := make([]Pollfd, 0, n)
	for i := 0; i < n && (i+1)*PollfdSize <= len(b); i++ {
		out = append(out, Pollfd{
			Fd:      int32(le.Uint32(b[i*PollfdSize:])),
			Events:  le.Uint32(b[i*PollfdSize+4:]),
			Revents: le.Uint32(b[i*PollfdSize+8:]),
		})
	}
	return out
}
