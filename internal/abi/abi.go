// Package abi defines the system-call ABI shared between the Browsix kernel
// and the language runtimes: error numbers, open flags, seek whences, signal
// numbers, wait options, and the wire representations of stat and dirent
// records. It corresponds to the "shared syscall module" in Figure 2 of the
// paper, which both the kernel and every runtime link against.
package abi

import "fmt"

// Errno is a Unix error number. 0 means success. Values follow Linux/musl so
// that programs written against the runtimes behave like their native
// counterparts.
type Errno int

// Error numbers used by the kernel and runtimes.
const (
	OK            Errno = 0
	EPERM         Errno = 1
	ENOENT        Errno = 2
	ESRCH         Errno = 3
	EINTR         Errno = 4
	EIO           Errno = 5
	ENOEXEC       Errno = 8
	EBADF         Errno = 9
	ECHILD        Errno = 10
	EAGAIN        Errno = 11
	ENOMEM        Errno = 12
	EACCES        Errno = 13
	EFAULT        Errno = 14
	EBUSY         Errno = 16
	EEXIST        Errno = 17
	EXDEV         Errno = 18
	ENODEV        Errno = 19
	ENOTDIR       Errno = 20
	EISDIR        Errno = 21
	EINVAL        Errno = 22
	ENFILE        Errno = 23
	EMFILE        Errno = 24
	ENOTTY        Errno = 25
	EFBIG         Errno = 27
	ENOSPC        Errno = 28
	ESPIPE        Errno = 29
	EROFS         Errno = 30
	EMLINK        Errno = 31
	EPIPE         Errno = 32
	ERANGE        Errno = 34
	ENAMETOOLONG  Errno = 36
	ENOSYS        Errno = 38
	ENOTEMPTY     Errno = 39
	ELOOP         Errno = 40
	ENOTSOCK      Errno = 88
	EOPNOTSUPP    Errno = 95
	EADDRINUSE    Errno = 98
	EADDRNOTAVAIL Errno = 99
	ENETUNREACH   Errno = 101
	ECONNRESET    Errno = 104
	EISCONN       Errno = 106
	ENOTCONN      Errno = 107
	ETIMEDOUT     Errno = 110
	ECONNREFUSED  Errno = 111
)

var errnoNames = map[Errno]string{
	OK: "success", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH",
	EINTR: "EINTR", EIO: "EIO", ENOEXEC: "ENOEXEC", EBADF: "EBADF", ECHILD: "ECHILD",
	EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT",
	EBUSY: "EBUSY", EEXIST: "EEXIST", EXDEV: "EXDEV", ENODEV: "ENODEV",
	ENOTDIR: "ENOTDIR", EISDIR: "EISDIR", EINVAL: "EINVAL", ENFILE: "ENFILE",
	EMFILE: "EMFILE", ENOTTY: "ENOTTY", EFBIG: "EFBIG", ENOSPC: "ENOSPC",
	ESPIPE: "ESPIPE", EROFS: "EROFS", EMLINK: "EMLINK", EPIPE: "EPIPE",
	ERANGE: "ERANGE", ENAMETOOLONG: "ENAMETOOLONG", ENOSYS: "ENOSYS",
	ENOTEMPTY: "ENOTEMPTY", ELOOP: "ELOOP", ENOTSOCK: "ENOTSOCK",
	EOPNOTSUPP: "EOPNOTSUPP", EADDRINUSE: "EADDRINUSE",
	EADDRNOTAVAIL: "EADDRNOTAVAIL", ENETUNREACH: "ENETUNREACH",
	ECONNRESET: "ECONNRESET", EISCONN: "EISCONN", ENOTCONN: "ENOTCONN",
	ETIMEDOUT: "ETIMEDOUT", ECONNREFUSED: "ECONNREFUSED",
}

// Error implements the error interface so an Errno can be returned where a
// Go error is expected. OK should never be treated as an error value.
func (e Errno) Error() string { return e.String() }

// String returns the conventional symbolic name (e.g. "ENOENT").
func (e Errno) String() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Open flags, matching Linux values so runtime marshalling is a pass-through.
const (
	O_RDONLY    = 0x0
	O_WRONLY    = 0x1
	O_RDWR      = 0x2
	O_ACCMODE   = 0x3
	O_CREAT     = 0x40
	O_EXCL      = 0x80
	O_TRUNC     = 0x200
	O_APPEND    = 0x400
	O_NONBLOCK  = 0x800
	O_DIRECTORY = 0x10000
)

// Seek whences for llseek.
const (
	SEEK_SET = 0
	SEEK_CUR = 1
	SEEK_END = 2
)

// Access mode bits for the access system call.
const (
	F_OK = 0
	X_OK = 1
	W_OK = 2
	R_OK = 4
)

// Signal numbers (the POSIX subset Browsix supports, §3.3).
const (
	SIGHUP  = 1
	SIGINT  = 2
	SIGQUIT = 3
	SIGKILL = 9
	SIGUSR1 = 10
	SIGUSR2 = 12
	SIGPIPE = 13
	SIGALRM = 14
	SIGTERM = 15
	SIGCHLD = 17
	SIGCONT = 18
	SIGSTOP = 19
)

// SignalName returns the conventional name ("SIGKILL") for a signal number.
func SignalName(sig int) string {
	switch sig {
	case SIGHUP:
		return "SIGHUP"
	case SIGINT:
		return "SIGINT"
	case SIGQUIT:
		return "SIGQUIT"
	case SIGKILL:
		return "SIGKILL"
	case SIGUSR1:
		return "SIGUSR1"
	case SIGUSR2:
		return "SIGUSR2"
	case SIGPIPE:
		return "SIGPIPE"
	case SIGALRM:
		return "SIGALRM"
	case SIGTERM:
		return "SIGTERM"
	case SIGCHLD:
		return "SIGCHLD"
	case SIGCONT:
		return "SIGCONT"
	case SIGSTOP:
		return "SIGSTOP"
	default:
		return fmt.Sprintf("SIG(%d)", sig)
	}
}

// wait4 options.
const (
	WNOHANG = 1
)

// Exit-status encoding, following the traditional wait(2) layout:
// normal exit -> code<<8; killed by signal -> signal number in low 7 bits.

// ExitStatus encodes a normal exit with the given code.
func ExitStatus(code int) int { return (code & 0xff) << 8 }

// SignalStatus encodes termination by a signal.
func SignalStatus(sig int) int { return sig & 0x7f }

// WIFEXITED reports whether the status denotes a normal exit.
func WIFEXITED(status int) bool { return status&0x7f == 0 }

// WEXITSTATUS extracts the exit code from a normal-exit status.
func WEXITSTATUS(status int) int { return (status >> 8) & 0xff }

// WIFSIGNALED reports whether the status denotes death by signal.
func WIFSIGNALED(status int) bool { return status&0x7f != 0 }

// WTERMSIG extracts the terminating signal number.
func WTERMSIG(status int) int { return status & 0x7f }

// File mode bits (type portion matches Linux S_IFMT).
const (
	S_IFMT   = 0xf000
	S_IFDIR  = 0x4000
	S_IFCHR  = 0x2000
	S_IFREG  = 0x8000
	S_IFIFO  = 0x1000
	S_IFLNK  = 0xa000
	S_IFSOCK = 0xc000
)

// Stat is the wire form of a stat result. Times are virtual nanoseconds
// since boot (the simulator's clock), mirroring the paper's use of BrowserFS
// Date-based mtimes.
type Stat struct {
	Mode  uint32 // type | permission bits
	Size  int64
	Mtime int64 // modification time, virtual ns
	Atime int64
	Ctime int64
	Nlink int
	Ino   uint64
}

// IsDir reports whether the stat describes a directory.
func (s Stat) IsDir() bool { return s.Mode&S_IFMT == S_IFDIR }

// IsRegular reports whether the stat describes a regular file.
func (s Stat) IsRegular() bool { return s.Mode&S_IFMT == S_IFREG }

// IsSymlink reports whether the stat describes a symbolic link.
func (s Stat) IsSymlink() bool { return s.Mode&S_IFMT == S_IFLNK }

// Dirent types, matching Linux d_type values.
const (
	DT_UNKNOWN = 0
	DT_FIFO    = 1
	DT_CHR     = 2
	DT_DIR     = 4
	DT_REG     = 8
	DT_LNK     = 10
	DT_SOCK    = 12
)

// Dirent is one directory entry as returned by getdents.
type Dirent struct {
	Name string
	Type int
	Ino  uint64
}

// DirentChunk is the maximum entries one getdents call returns: large
// directories stream through continuation calls against the descriptor's
// cursor instead of materializing the whole listing per call. Sized so a
// chunk of worst-case names packs into the runtimes' 64 KiB getdents
// buffer.
const DirentChunk = 128

// DirentTypeFromMode maps a stat mode to a dirent type.
func DirentTypeFromMode(mode uint32) int {
	switch mode & S_IFMT {
	case S_IFDIR:
		return DT_DIR
	case S_IFREG:
		return DT_REG
	case S_IFLNK:
		return DT_LNK
	case S_IFIFO:
		return DT_FIFO
	case S_IFSOCK:
		return DT_SOCK
	case S_IFCHR:
		return DT_CHR
	default:
		return DT_UNKNOWN
	}
}

// Standard file descriptors.
const (
	Stdin  = 0
	Stdout = 1
	Stderr = 2
)

// Syscall numbers for the synchronous (SharedArrayBuffer) transport. The
// asynchronous transport names calls by string, as Browsix does; the sync
// transport uses small integers like a real kernel ABI. Values are arbitrary
// but stable.
const (
	SYS_open = iota + 1
	SYS_close
	SYS_read
	SYS_write
	SYS_pread
	SYS_pwrite
	SYS_llseek
	SYS_stat
	SYS_lstat
	SYS_fstat
	SYS_access
	SYS_readlink
	SYS_utimes
	SYS_unlink
	SYS_mkdir
	SYS_rmdir
	SYS_getdents
	SYS_rename
	SYS_dup2
	SYS_ftruncate
	SYS_pipe2
	SYS_spawn
	SYS_fork
	SYS_exec
	SYS_wait4
	SYS_exit
	SYS_kill
	SYS_signal
	SYS_getpid
	SYS_getppid
	SYS_getcwd
	SYS_chdir
	SYS_socket
	SYS_bind
	SYS_listen
	SYS_accept
	SYS_connect
	SYS_getsockname
	SYS_symlink
	SYS_readv
	SYS_writev
	SYS_fsync
	// SYS_readg is read-with-grant: like read, but a warm page-cache hit
	// is answered with pinned page leases (grant.go) instead of a payload
	// copy; everything else falls back to the copy path in the same call.
	SYS_readg
	// SYS_unlease returns page leases taken by earlier readg grants.
	SYS_unlease
	// SYS_wgalloc is the write-grant allocation doorbell: the kernel
	// leases *empty* page-pool slots to the caller, who stages write
	// payloads into them directly (grant.go) and later submits the
	// filled regions by reference with SYS_writeg.
	SYS_wgalloc
	// SYS_writeg is write-by-reference: like write, but the payload is a
	// list of WriteRef records naming bytes the caller already staged in
	// its leased pool slots, so no payload crosses the heap boundary.
	SYS_writeg
	// SYS_poll is readiness multiplexing over an array of Pollfd records
	// staged in the caller's heap (poll.go): the kernel fills revents and
	// returns the ready count, parking the caller until something is
	// ready when the timeout allows.
	SYS_poll
	// SYS_setfl updates a descriptor's status flags (fcntl F_SETFL
	// subset; only O_NONBLOCK is honored).
	SYS_setfl
	SYS_max // sentinel
)

// SyscallName maps a sync-transport syscall number to its string name, the
// same name used on the async transport.
func SyscallName(n int) string {
	names := [...]string{
		SYS_open: "open", SYS_close: "close", SYS_read: "read",
		SYS_write: "write", SYS_pread: "pread", SYS_pwrite: "pwrite",
		SYS_llseek: "llseek", SYS_stat: "stat", SYS_lstat: "lstat",
		SYS_fstat: "fstat", SYS_access: "access", SYS_readlink: "readlink",
		SYS_utimes: "utimes", SYS_unlink: "unlink", SYS_mkdir: "mkdir",
		SYS_rmdir: "rmdir", SYS_getdents: "getdents", SYS_rename: "rename",
		SYS_dup2: "dup2", SYS_ftruncate: "ftruncate", SYS_pipe2: "pipe2",
		SYS_spawn: "spawn", SYS_fork: "fork", SYS_exec: "exec",
		SYS_wait4: "wait4", SYS_exit: "exit", SYS_kill: "kill",
		SYS_signal: "signal", SYS_getpid: "getpid", SYS_getppid: "getppid",
		SYS_getcwd: "getcwd", SYS_chdir: "chdir", SYS_socket: "socket",
		SYS_bind: "bind", SYS_listen: "listen", SYS_accept: "accept",
		SYS_connect: "connect", SYS_getsockname: "getsockname", SYS_symlink: "symlink",
		SYS_readv: "readv", SYS_writev: "writev", SYS_fsync: "fsync",
		SYS_readg: "readg", SYS_unlease: "unlease",
		SYS_wgalloc: "wgalloc", SYS_writeg: "writeg",
		SYS_poll: "poll", SYS_setfl: "setfl",
	}
	if n > 0 && n < len(names) && names[n] != "" {
		return names[n]
	}
	return fmt.Sprintf("sys(%d)", n)
}
