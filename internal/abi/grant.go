package abi

import "encoding/binary"

// Page-grant wire format: the zero-copy read path's currency.
//
// A process whose kernel has shared its page-cache arena (one
// SharedArrayBuffer, the "page pool") may issue readg instead of read.
// When every requested byte is resident in the page cache, the kernel
// answers with *grants* — (slot, arena offset, generation, length)
// records naming pinned pool pages — instead of copying the payload into
// the caller's buffer. The process satisfies its buffer straight from
// the mapped arena; the kernel's per-byte work is zero. Each grant is a
// lease: the named slot's bytes are frozen (never rewritten or recycled)
// until the process returns the lease with an unlease call, the
// owned-segment discipline of the pipe layer applied to cache pages.
//
// A readg against anything not fully resident (cold pages, dirty
// write-back state, a staled handle, a pipe) falls back to the classic
// copy path through the same kernel entry point, flagged by the reply
// header, so scalar and async transports — and every miss — stay
// byte-identical with the grant path.

// GrantPageSize is the page-cache granule the grant protocol leases in.
// The fs layer's PageSize aliases it: the granule is part of the ABI.
const GrantPageSize = 16 * 1024

// Grant-reply kinds (the u32 leading the grant reply area).
const (
	// GrantCopied: the payload was copied into the caller's buffer; no
	// leases were taken. The classic path.
	GrantCopied = 0
	// GrantMapped: the reply is a list of PageGrant records; the caller
	// reads the bytes from the pool arena and owes one unlease per
	// record.
	GrantMapped = 1
)

// GrantHdrSize is the reply header: u32 kind, u32 record count.
const GrantHdrSize = 8

// PageGrant is one leased page mapping in a readg reply.
type PageGrant struct {
	Slot uint32 // pool slot id (page identity; the unlease key)
	Len  uint32 // granted bytes at Off
	Off  int64  // byte offset of the first granted byte in the arena
	Gen  uint64 // page-cache generation at grant time
}

// PageGrantSize is the packed size of one PageGrant record.
const PageGrantSize = 24

// GrantAreaSize returns the reply-area bytes needed for n grant records.
func GrantAreaSize(n int) int { return GrantHdrSize + n*PageGrantSize }

// MaxGrantsFor bounds the grant records a read of n bytes can produce:
// one per touched page, plus slack for the unaligned first page.
func MaxGrantsFor(n int) int { return n/GrantPageSize + 2 }

// PackGrantReply writes a grant reply (header + records) into b, which
// must hold GrantAreaSize(len(grants)) bytes.
func PackGrantReply(b []byte, kind int, grants []PageGrant) int {
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(kind))
	le.PutUint32(b[4:], uint32(len(grants)))
	for i, g := range grants {
		o := GrantHdrSize + i*PageGrantSize
		le.PutUint32(b[o:], g.Slot)
		le.PutUint32(b[o+4:], g.Len)
		le.PutUint64(b[o+8:], uint64(g.Off))
		le.PutUint64(b[o+16:], g.Gen)
	}
	return GrantAreaSize(len(grants))
}

// UnpackGrantReply decodes a grant reply area.
func UnpackGrantReply(b []byte) (kind int, grants []PageGrant) {
	if len(b) < GrantHdrSize {
		return GrantCopied, nil
	}
	le := binary.LittleEndian
	kind = int(le.Uint32(b[0:]))
	n := int(le.Uint32(b[4:]))
	for i := 0; i < n && GrantHdrSize+(i+1)*PageGrantSize <= len(b); i++ {
		o := GrantHdrSize + i*PageGrantSize
		grants = append(grants, PageGrant{
			Slot: le.Uint32(b[o:]),
			Len:  le.Uint32(b[o+4:]),
			Off:  int64(le.Uint64(b[o+8:])),
			Gen:  le.Uint64(b[o+16:]),
		})
	}
	return kind, grants
}

// WriteRef is one staged-payload reference in a writeg submission: Len
// bytes the caller placed at byte Off of leased pool slot Slot. The
// in-slot offset lets a sequence of small writes keep filling the same
// slot progressively — each submission names only its own region, and
// already-submitted regions are never rewritten by a well-behaved
// staging allocator.
type WriteRef struct {
	Slot uint32
	Off  uint32
	Len  uint32
}

// WriteRefSize is the packed size of one WriteRef record.
const WriteRefSize = 12

// PackWriteRefs packs writeg payload references into b, which must hold
// WriteRefSize*len(refs) bytes.
func PackWriteRefs(b []byte, refs []WriteRef) int {
	le := binary.LittleEndian
	for i, r := range refs {
		o := i * WriteRefSize
		le.PutUint32(b[o:], r.Slot)
		le.PutUint32(b[o+4:], r.Off)
		le.PutUint32(b[o+8:], r.Len)
	}
	return WriteRefSize * len(refs)
}

// UnpackWriteRefs decodes n writeg references.
func UnpackWriteRefs(b []byte, n int) []WriteRef {
	le := binary.LittleEndian
	out := make([]WriteRef, 0, n)
	for i := 0; i < n && (i+1)*WriteRefSize <= len(b); i++ {
		o := i * WriteRefSize
		out = append(out, WriteRef{
			Slot: le.Uint32(b[o:]),
			Off:  le.Uint32(b[o+4:]),
			Len:  le.Uint32(b[o+8:]),
		})
	}
	return out
}

// PackSlots packs pool slot ids for a lease-reclaim (unlease) frame.
func PackSlots(b []byte, slots []uint32) int {
	le := binary.LittleEndian
	for i, s := range slots {
		le.PutUint32(b[i*4:], s)
	}
	return 4 * len(slots)
}

// UnpackSlots decodes n slot ids from a lease-reclaim frame.
func UnpackSlots(b []byte, n int) []uint32 {
	le := binary.LittleEndian
	out := make([]uint32, 0, n)
	for i := 0; i < n && (i+1)*4 <= len(b); i++ {
		out = append(out, le.Uint32(b[i*4:]))
	}
	return out
}
