package abi

import "encoding/binary"

// This file defines the shared-memory ring-buffer syscall transport's wire
// format: iovec records for the vectored readv/writev calls, and the
// framing of call/reply records flowing through a pair of single-producer
// single-consumer rings carved out of a process's SharedArrayBuffer heap.
//
// The rings are the fast path the paper's §3.2/§6 point toward: once a
// process has registered its heap, a system call is a handful of integer
// stores plus one wake, instead of a structured-cloned postMessage per
// call — and several calls can share a single kernel dispatch (reply
// batching), which is what makes pipe-heavy shell pipelines cheap.

// Iovec is one (pointer, length) scatter/gather element, addressing the
// process's shared heap.
type Iovec struct {
	Ptr int64
	Len int64
}

// IovecSize is the packed size of one Iovec.
const IovecSize = 16

// PackIovecs writes iovs into b, returning bytes written. b must hold
// len(iovs)*IovecSize bytes.
func PackIovecs(b []byte, iovs []Iovec) int {
	le := binary.LittleEndian
	for i, iov := range iovs {
		le.PutUint64(b[i*IovecSize:], uint64(iov.Ptr))
		le.PutUint64(b[i*IovecSize+8:], uint64(iov.Len))
	}
	return len(iovs) * IovecSize
}

// UnpackIovecs decodes n iovec records from b.
func UnpackIovecs(b []byte, n int) []Iovec {
	le := binary.LittleEndian
	out := make([]Iovec, 0, n)
	for i := 0; i < n && (i+1)*IovecSize <= len(b); i++ {
		out = append(out, Iovec{
			Ptr: int64(le.Uint64(b[i*IovecSize:])),
			Len: int64(le.Uint64(b[i*IovecSize+8:])),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Ring framing.
//
// A Ring is a view over a byte region of the shared heap:
//
//	[0,4)  head — read cursor (index into the data area)
//	[4,8)  tail — write cursor
//	[8,..) data — circular byte buffer
//
// One side only pushes, the other only pops (the call ring is written by
// the process and drained by the kernel; the reply ring the reverse), so
// within the deterministic simulator plain loads/stores stand in for the
// Atomics the browser implementation would use. One byte of slack
// distinguishes full from empty, as in a classic circular buffer.
// ---------------------------------------------------------------------------

// RingHdrSize is the cursor header before a ring's data area.
const RingHdrSize = 8

// MinRingSize is the smallest usable ring region.
const MinRingSize = RingHdrSize + 64

// Ring is a single-producer single-consumer byte ring over shared memory.
type Ring struct {
	B []byte // header + data, aliasing the shared heap
}

// NewRing wraps a shared-memory region as a ring without resetting it
// (both sides wrap the same bytes; only one should Reset).
func NewRing(b []byte) Ring { return Ring{B: b} }

func (r Ring) le() binary.ByteOrder { return binary.LittleEndian }

func (r Ring) head() int     { return int(r.le().Uint32(r.B[0:])) }
func (r Ring) tail() int     { return int(r.le().Uint32(r.B[4:])) }
func (r Ring) setHead(v int) { r.le().PutUint32(r.B[0:], uint32(v)) }
func (r Ring) setTail(v int) { r.le().PutUint32(r.B[4:], uint32(v)) }

// Reset zeroes the cursors (producer-side initialization).
func (r Ring) Reset() { r.setHead(0); r.setTail(0) }

func (r Ring) dataLen() int { return len(r.B) - RingHdrSize }

// Used returns the number of buffered bytes.
func (r Ring) Used() int {
	d := r.tail() - r.head()
	if d < 0 {
		d += r.dataLen()
	}
	return d
}

// Free returns the bytes that may be pushed without overwriting (one byte
// of slack is reserved to distinguish full from empty).
func (r Ring) Free() int { return r.dataLen() - 1 - r.Used() }

// copyIn writes b at cursor position pos (mod data size).
func (r Ring) copyIn(pos int, b []byte) {
	data := r.B[RingHdrSize:]
	n := copy(data[pos:], b)
	if n < len(b) {
		copy(data, b[n:])
	}
}

// copyOut reads n bytes at cursor position pos.
func (r Ring) copyOut(pos, n int) []byte {
	data := r.B[RingHdrSize:]
	out := make([]byte, n)
	m := copy(out, data[pos:])
	if m < n {
		copy(out[m:], data)
	}
	return out
}

func (r Ring) advance(pos, n int) int { return (pos + n) % r.dataLen() }

// Call-frame layout: size u32 (bytes after this field), seq u32, trap u32,
// nargs u32, then nargs little-endian u64 arguments.
const callFrameHdr = 16

// ReplyFrameSize is the reply-frame layout size: size u32, seq u32,
// ret u64, errno u32. Exported so the producer can bound a batch by the
// reply ring's capacity.
const ReplyFrameSize = 20

// PushCall appends a call frame; it reports false when the ring is full
// (the producer should fall back to the scalar transport).
func (r Ring) PushCall(seq uint32, trap int, args []int64) bool {
	need := callFrameHdr + 8*len(args)
	if len(args) > 16 || need > r.Free() {
		return false
	}
	var buf [callFrameHdr + 8*16]byte
	le := r.le()
	le.PutUint32(buf[0:], uint32(need-4))
	le.PutUint32(buf[4:], seq)
	le.PutUint32(buf[8:], uint32(trap))
	le.PutUint32(buf[12:], uint32(len(args)))
	for i, a := range args {
		le.PutUint64(buf[callFrameHdr+8*i:], uint64(a))
	}
	r.copyIn(r.tail(), buf[:need])
	r.setTail(r.advance(r.tail(), need))
	return true
}

// PopCall removes and decodes the next call frame.
func (r Ring) PopCall() (seq uint32, trap int, args []int64, ok bool) {
	if r.Used() < callFrameHdr {
		return 0, 0, nil, false
	}
	le := r.le()
	hdr := r.copyOut(r.head(), callFrameHdr)
	size := int(le.Uint32(hdr[0:])) + 4
	if size < callFrameHdr || r.Used() < size {
		return 0, 0, nil, false
	}
	frame := r.copyOut(r.head(), size)
	seq = le.Uint32(frame[4:])
	trap = int(le.Uint32(frame[8:]))
	nargs := int(le.Uint32(frame[12:]))
	// The frame lives in guest-writable shared memory: a corrupt nargs
	// must not drive an allocation or an out-of-frame read. Drop the
	// malformed frame by resetting the ring (producer and consumer can
	// no longer agree on framing).
	if nargs < 0 || nargs > 16 || callFrameHdr+8*nargs != size {
		r.Reset()
		return 0, 0, nil, false
	}
	args = make([]int64, nargs)
	for i := 0; i < nargs; i++ {
		args[i] = int64(le.Uint64(frame[callFrameHdr+8*i:]))
	}
	r.setHead(r.advance(r.head(), size))
	return seq, trap, args, true
}

// PushReply appends a reply frame; false when full (the producer must
// retry after the consumer drains — the kernel defers in that case).
func (r Ring) PushReply(seq uint32, ret int64, errno Errno) bool {
	if ReplyFrameSize > r.Free() {
		return false
	}
	var buf [ReplyFrameSize]byte
	le := r.le()
	le.PutUint32(buf[0:], ReplyFrameSize-4)
	le.PutUint32(buf[4:], seq)
	le.PutUint64(buf[8:], uint64(ret))
	le.PutUint32(buf[16:], uint32(int32(errno)))
	r.copyIn(r.tail(), buf[:])
	r.setTail(r.advance(r.tail(), ReplyFrameSize))
	return true
}

// Reply is one completed call of a batch — the unit of the batched-reply
// framing. When the kernel drains a doorbell it collects every completion
// that happened inside the batch dispatch and lands them with a single
// PushReplies pass followed by one wake, instead of a push (and
// potentially a wake) per call.
type Reply struct {
	Seq   uint32
	Ret   int64
	Errno Errno
}

// PushReplies appends as many reply frames as fit, in order, returning
// the count pushed. Callers queue the remainder (the kernel's overflow
// list) and retry after the consumer drains.
func (r Ring) PushReplies(reps []Reply) int {
	n := 0
	for _, rep := range reps {
		if !r.PushReply(rep.Seq, rep.Ret, rep.Errno) {
			break
		}
		n++
	}
	return n
}

// PopReply removes and decodes the next reply frame.
func (r Ring) PopReply() (seq uint32, ret int64, errno Errno, ok bool) {
	if r.Used() < ReplyFrameSize {
		return 0, 0, OK, false
	}
	frame := r.copyOut(r.head(), ReplyFrameSize)
	le := r.le()
	seq = le.Uint32(frame[4:])
	ret = int64(le.Uint64(frame[8:]))
	errno = Errno(int32(le.Uint32(frame[16:])))
	r.setHead(r.advance(r.head(), ReplyFrameSize))
	return seq, ret, errno, true
}
