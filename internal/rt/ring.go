package rt

import (
	"repro/internal/abi"
	"repro/internal/browser"
)

// Process side of the shared-memory ring-buffer syscall transport (the
// fast path §3.2/§6 point toward). After registering its personality, a
// synchronous runtime carves a request ring and a reply ring out of the
// top of its shared heap and offers them to the kernel. From then on a
// system call is: push a call frame, ring the doorbell (one postMessage
// regardless of how many frames are queued), Atomics.wait, pop the reply.
// Batched operations — writev fanning out into per-buffer write frames —
// share a doorbell and usually a single kernel dispatch.

// negotiateRing carves the ring regions and offers them to the kernel.
// Refusal (an old kernel, or Kernel.DisableRing) leaves the runtime on
// the scalar wake-cell path.
func (r *workerRT) negotiateRing() {
	if int64(r.heap.Len()) < int64(scratchBase+4*ringRegionSize) {
		return
	}
	reqOff := int64(r.heap.Len() - 2*ringRegionSize)
	repOff := int64(r.heap.Len() - ringRegionSize)
	b := r.heap.Bytes()
	r.reqRing = abi.NewRing(b[reqOff : reqOff+ringRegionSize])
	r.repRing = abi.NewRing(b[repOff : repOff+ringRegionSize])
	r.reqRing.Reset()
	r.repRing.Reset()
	ret := r.asyncCall("ring", reqOff, int64(ringRegionSize), repOff, int64(ringRegionSize))
	if verr(ret) != abi.OK {
		return
	}
	r.ringOK = true
	r.scratchTop = reqOff
}

// ringReq is one call frame of a batch.
type ringReq struct {
	trap int
	args []int64
}

// ringCalls pushes a batch of call frames, rings the doorbell once per
// sub-batch, and collects every reply (replies may arrive out of order —
// frames carry sequence numbers). Batches are bounded by the reply
// ring's free capacity net of frames already outstanding, so every
// completion is guaranteed a reply slot — nothing can strand in the
// kernel's overflow list. When an interleaved batch (a signal handler
// issuing calls while the main flow is parked) congests the rings, this
// batch waits for the kernel to drain rather than failing.
func (r *workerRT) ringCalls(reqs []ringReq) ([]int64, []abi.Errno) {
	r.inflight++
	rets := make([]int64, len(reqs))
	errs := make([]abi.Errno, len(reqs))
	idx := map[uint32]int{}
	i, remaining := 0, 0
	for {
		// Push what the reply ring has guaranteed room for.
		maxNew := r.repRing.Free()/abi.ReplyFrameSize - r.ringOutstanding
		pushed := 0
		for ; i < len(reqs) && pushed < maxNew; i++ {
			if !r.reqRing.PushCall(r.ringSeq, reqs[i].trap, reqs[i].args) {
				break
			}
			idx[r.ringSeq] = i
			r.ringSeq++
			pushed++
		}
		r.ringOutstanding += pushed
		remaining += pushed
		if pushed > 0 {
			// One marshalling charge and one doorbell for the whole
			// sub-batch — the saving over per-call postMessages.
			r.sim.Charge(r.cost.SyscallCPUNs)
			r.heap.Store32(syncWaitOff, 0)
			r.w.PostToParent(map[string]browser.Value{"type": "ringbell"})
		} else if remaining == 0 && i < len(reqs) {
			// Rings congested entirely by an interleaved batch: nudge
			// the kernel so draining frees space, then wait.
			r.heap.Store32(syncWaitOff, 0)
			r.w.PostToParent(map[string]browser.Value{"type": "ringbell"})
		}
		remaining -= r.popReplies(idx, rets, errs)
		if i >= len(reqs) && remaining == 0 {
			break
		}
		r.sys.FutexWait(r.w.Ctx, r.heap, syncWaitOff, 0, -1)
		r.heap.Store32(syncWaitOff, 0)
	}
	r.inflight--
	if r.inflight == 0 {
		// Only the outermost call may recycle the scratch region: an
		// interleaved batch resetting it would alias a parked call's
		// staged buffers.
		r.scratch = scratchBase
	} else if len(r.ringStash) > 0 {
		// We popped replies belonging to a parked batch; make sure its
		// coroutine wakes to find them in the stash.
		r.heap.Store32(syncWaitOff, 1)
		r.sys.FutexNotify(r.heap, syncWaitOff, -1)
	}
	return rets, errs
}

// popReplies drains the reply ring (and the stash) into this batch's
// slots, stashing replies that belong to an interleaved batch. Returns
// how many of this batch's frames completed.
func (r *workerRT) popReplies(idx map[uint32]int, rets []int64, errs []abi.Errno) int {
	got := 0
	for seq, rep := range r.ringStash {
		if j, known := idx[seq]; known {
			rets[j], errs[j] = rep.ret, rep.err
			delete(idx, seq)
			delete(r.ringStash, seq)
			got++
		}
	}
	for {
		seq, ret, errno, ok := r.repRing.PopReply()
		if !ok {
			return got
		}
		r.ringOutstanding--
		if j, known := idx[seq]; known {
			rets[j], errs[j] = ret, errno
			delete(idx, seq)
			got++
		} else {
			if r.ringStash == nil {
				r.ringStash = map[uint32]ringRep{}
			}
			r.ringStash[seq] = ringRep{ret: ret, err: errno}
		}
	}
}

// ringRep is a reply held for a batch other than the one that popped it.
type ringRep struct {
	ret int64
	err abi.Errno
}

// ringWritev fans a writev out into per-buffer write frames sharing one
// doorbell — several completed system calls per kernel dispatch (reply
// batching). Buffers too large for the scratch region fall back to plain
// writes.
func (r *workerRT) ringWritev(fd int, bufs [][]byte) (int64, abi.Errno) {
	var total int64
	i := 0
	for i < len(bufs) {
		var reqs []ringReq
		for ; i < len(bufs); i++ {
			b := bufs[i]
			if !r.scratchFits(int64(len(b)) + 16) {
				break
			}
			ptr, n := r.putBytes(b)
			reqs = append(reqs, ringReq{abi.SYS_write, []int64{int64(fd), ptr, n}})
		}
		if len(reqs) == 0 {
			n, err := r.Write(fd, bufs[i])
			total += int64(n)
			if err != abi.OK {
				if total > 0 {
					return total, abi.OK
				}
				return -1, err
			}
			i++
			continue
		}
		rets, errs := r.ringCalls(reqs)
		for j := range rets {
			if errs[j] != abi.OK {
				if total > 0 {
					return total, abi.OK
				}
				return -1, errs[j]
			}
			total += rets[j]
		}
	}
	return total, abi.OK
}
