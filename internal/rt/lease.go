package rt

import (
	"repro/internal/abi"
	"repro/internal/browser"
)

// Process side of the zero-copy read path. After negotiating the ring,
// a synchronous runtime asks the kernel to share its page-cache arena
// ("pagepool"); from then on reads go out as readg frames. A warm read
// comes back as page grants — (slot, arena offset, length, generation)
// leases — and the runtime satisfies the guest buffer straight from its
// mapping of the arena: the kernel moved no payload bytes. Cold reads,
// pipes, and refused negotiations fall back to the copied reply in the
// same call, byte-identical.
//
// Leases are held per descriptor and returned when the descriptor seeks
// away or closes (or when the per-fd budget evicts the oldest), as
// lease-reclaim (unlease) frames that ride the next doorbell — a
// sequential reader's grants are returned inside the batches it was
// already sending.

// maxHeldLeases bounds the grants retained per descriptor; the oldest
// is returned first when exceeded.
const maxHeldLeases = 16

// negotiatePagePool maps the kernel's page-cache arena. Refusal (an old
// kernel, or Kernel.DisableZeroCopy) leaves the runtime on the copy
// path.
func (r *workerRT) negotiatePagePool() {
	if !r.ringOK {
		return
	}
	ret := r.asyncCall("pagepool")
	if verr(ret) != abi.OK || len(ret) < 3 {
		return
	}
	sab, ok := ret[2].(*browser.SAB)
	if !ok || sab == nil {
		return
	}
	r.pool = sab
	r.poolOK = true
	// The write direction rides the same mapping; the first wgalloc
	// ENOSYS (an old kernel, or DisableZeroCopyWrite) turns it back off.
	r.wgOK = true
}

// holdLease retains one granted lease for fd, evicting the oldest
// grant beyond the per-fd budget. The same slot may appear in two held
// entries: under content dedup, two pages with identical bytes share
// one arena slot, and each grant carries its own kernel pin. Holding
// (and later returning) every grant individually keeps the lease
// ledger balanced and — because the unlease traffic then matches a
// dedup-off run frame for frame — keeps the virtual clock bit-equal
// with the sharing tier on or off.
func (r *workerRT) holdLease(fd int, g abi.PageGrant) {
	held := append(r.heldLeases[fd], g)
	if len(held) > maxHeldLeases {
		r.pendingUnlease = append(r.pendingUnlease, held[0].Slot)
		held = held[1:]
	}
	r.heldLeases[fd] = held
}

// dropFdLeases queues every lease held for fd for return (seek-away and
// close).
func (r *workerRT) dropFdLeases(fd int) {
	held := r.heldLeases[fd]
	if len(held) == 0 {
		return
	}
	for _, g := range held {
		r.pendingUnlease = append(r.pendingUnlease, g.Slot)
	}
	delete(r.heldLeases, fd)
}

// stageUnleases appends a lease-reclaim frame carrying every pending
// return to reqs (sharing the caller's doorbell). Requires scratch room;
// callers check scratchFits with unleaseStageBytes first.
func (r *workerRT) stageUnleases(reqs []ringReq) []ringReq {
	if len(r.pendingUnlease) == 0 {
		return reqs
	}
	packed := make([]byte, 4*len(r.pendingUnlease))
	abi.PackSlots(packed, r.pendingUnlease)
	ptr, _ := r.putBytes(packed)
	reqs = append(reqs, ringReq{trap: abi.SYS_unlease, args: []int64{ptr, int64(len(r.pendingUnlease))}})
	r.pendingUnlease = r.pendingUnlease[:0]
	return reqs
}

// unleaseStageBytes is the scratch room a staged lease-reclaim frame
// needs.
func (r *workerRT) unleaseStageBytes() int64 {
	if len(r.pendingUnlease) == 0 {
		return 0
	}
	return int64(4*len(r.pendingUnlease)) + 16
}

// syncCallLeased issues one sync call, piggybacking any pending lease
// returns on the same doorbell when the ring is up.
func (r *workerRT) syncCallLeased(trap int, args ...int64) (int64, abi.Errno) {
	if r.ringOK && len(r.pendingUnlease) > 0 && r.scratchFits(r.unleaseStageBytes()+256) {
		reqs := r.stageUnleases(nil)
		reqs = append(reqs, ringReq{trap: trap, args: args})
		rets, errs := r.ringCalls(reqs)
		last := len(reqs) - 1
		return rets[last], errs[last]
	}
	return r.syncCall(trap, args...)
}

// maxGrantsPerRead bounds one readg's grant records (16 MiB of pages) —
// and with it the scratch the grant area costs.
const maxGrantsPerRead = 1024

// readLeased performs one read of up to want bytes through the readg
// entry point. Grant replies are satisfied from the pool mapping (zero
// kernel copies, and not bounded by the scratch staging region — a warm
// multi-megabyte read is ONE kernel crossing); copied replies are
// drained from the staging buffer, capped at bufLen, exactly like a
// plain read — a short result POSIX permits.
func (r *workerRT) readLeased(fd, want, bufLen int) ([]byte, abi.Errno) {
	maxGrants := abi.MaxGrantsFor(want)
	if maxGrants > maxGrantsPerRead {
		maxGrants = maxGrantsPerRead
	}
	areaLen := int64(abi.GrantAreaSize(maxGrants))
	// The fallback staging buffer shares scratch with the grant area and
	// any lease-reclaim frame: shrink it to fit (a shorter cold read is
	// POSIX-legal; the grant path is unaffected — grants carry no
	// payload through scratch).
	scalarBuf := bufLen
	if limit := r.maxScratchPayload() - areaLen - r.unleaseStageBytes() - 64; int64(bufLen) > limit {
		if limit < 0 {
			limit = 0
		}
		bufLen = int(limit)
	}
	if bufLen <= 0 || !r.scratchFits(int64(bufLen)+areaLen+r.unleaseStageBytes()+64) {
		// No room for the grant area (an interleaved batch holds the
		// scratch region): degrade to the plain scalar read, shrunk to
		// the scratch that actually remains — a short read, never an
		// allocator overflow.
		base := r.scratch
		if base < scratchBase {
			base = scratchBase
		}
		if avail := r.scratchTop - base - 16; avail > 0 && int64(scalarBuf) > avail {
			scalarBuf = int(avail)
		}
		ptr := r.alloc(int64(scalarBuf))
		ret, err := r.syncCall(abi.SYS_read, int64(fd), ptr, int64(scalarBuf))
		if err != abi.OK {
			return nil, err
		}
		out := make([]byte, ret)
		copy(out, r.heap.Bytes()[ptr:ptr+ret])
		return out, abi.OK
	}
	reqs := r.stageUnleases(nil)
	bufPtr := r.alloc(int64(bufLen))
	grantPtr := r.alloc(areaLen)
	reqs = append(reqs, ringReq{trap: abi.SYS_readg,
		args: []int64{int64(fd), bufPtr, int64(bufLen), grantPtr, int64(maxGrants), int64(want)}})
	rets, errs := r.ringCalls(reqs)
	last := len(reqs) - 1
	if errs[last] != abi.OK {
		return nil, errs[last]
	}
	total := rets[last]
	if total <= 0 {
		return nil, abi.OK
	}
	hb := r.heap.Bytes()
	kind, grants := abi.UnpackGrantReply(hb[grantPtr : grantPtr+areaLen])
	if kind != abi.GrantMapped {
		out := make([]byte, total)
		copy(out, hb[bufPtr:bufPtr+total])
		return out, abi.OK
	}
	// Mapped reply: satisfy the guest buffer from the arena mapping —
	// the bytes never crossed the kernel boundary.
	pool := r.pool.Bytes()
	out := make([]byte, 0, total)
	for _, g := range grants {
		out = append(out, pool[g.Off:g.Off+int64(g.Len)]...)
		r.holdLease(fd, g)
	}
	return out, abi.OK
}
