package rt

import (
	"repro/internal/abi"
	"repro/internal/fs"
	"repro/internal/posix"
	"repro/internal/sched"
)

// HostProc runs a program directly on a (simulated) operating system — no
// browser, no Browsix. It provides the two baselines of Figure 9: native
// GNU/Linux utilities (Kind=native) and the same JavaScript utilities
// under Node.js on Linux (Kind=node-host). System calls go straight to
// the file system at native cost; CPU work is scaled by the runtime's
// multiplier only.
//
// Host processes are single-process: spawn/fork/pipes/sockets return
// ENOSYS (the baselines never need them).
type HostProc struct {
	sim  *sched.Sim
	ctx  *sched.Ctx
	fsys *fs.FileSystem
	kind Kind
	cost Cost

	args []string
	env  []string
	cwd  string

	fds    map[int]*hostFD
	nextFd int

	// Stdout and Stderr capture the process's output.
	Stdout []byte
	Stderr []byte
}

type hostFD struct {
	h     fs.FileHandle
	dir   string // non-empty when the fd is an open directory
	off   int64
	flags int
	std   int // 1 stdout, 2 stderr, 3 stdin
	path  string
}

// HostResult is the outcome of RunHost.
type HostResult struct {
	Code    int
	Stdout  []byte
	Stderr  []byte
	Elapsed int64 // virtual ns, including runtime start-up
}

// RunHost executes a registered program to completion on a host runtime,
// against the given file system image.
func RunHost(sim *sched.Sim, fsys *fs.FileSystem, kind Kind, argv, env []string, cwd string) HostResult {
	prog := posix.Lookup(posix.Basename(argv[0]))
	if prog == nil {
		return HostResult{Code: 127, Stderr: []byte("host: no such program: " + argv[0] + "\n")}
	}
	h := &HostProc{
		sim:  sim,
		ctx:  sim.NewCtx("host:" + prog.Name),
		fsys: fsys,
		kind: kind,
		cost: CostOf(kind),
		args: argv,
		env:  env,
		cwd:  fs.Clean(cwd),
		fds:  map[int]*hostFD{0: {std: 3}, 1: {std: 1}, 2: {std: 2}},
	}
	h.nextFd = 3
	var res HostResult
	done := false
	sim.Post(h.ctx, h.ctx.Now(), func() {
		start := h.ctx.Now()
		sim.Charge(h.cost.InitNs) // exec + runtime boot (V8 start for node-host)
		g := sim.NewG(h.ctx, prog.Name, func(any) {
			code := 0
			func() {
				defer func() {
					e := recover()
					switch {
					case e == nil:
					case e == sched.ErrKilled:
						panic(e)
					default:
						if es, ok := e.(exitSentinel); ok {
							code = es.code
							return
						}
						panic(e)
					}
				}()
				code = prog.Main(h)
			}()
			res = HostResult{Code: code, Stdout: h.Stdout, Stderr: h.Stderr, Elapsed: h.ctx.Now() - start}
			done = true
		})
		sim.ResumeG(g, nil)
	})
	sim.RunUntil(func() bool { return done })
	return res
}

// charge bills one native system call plus optional per-byte work.
func (h *HostProc) charge(bytes int64) {
	h.sim.Charge(h.cost.DirectSyscallNs + bytes/8)
}

// abs resolves a process-relative path against the cwd, preserving
// trailing-slash semantics (fs.Abs).
func (h *HostProc) abs(p string) string { return fs.Abs(h.cwd, p) }

// Host file-system operations complete synchronously (host images are
// in-memory); completeErr guards that assumption.
func completeErr() (func(abi.Errno), func() abi.Errno) {
	out := abi.Errno(-9999)
	return func(e abi.Errno) { out = e }, func() abi.Errno {
		if out == -9999 {
			panic("rt: host fs operation did not complete synchronously")
		}
		return out
	}
}

func (h *HostProc) Getpid() int            { h.charge(0); return 1 }
func (h *HostProc) Getppid() int           { h.charge(0); return 0 }
func (h *HostProc) Args() []string         { return h.args }
func (h *HostProc) Environ() []string      { return h.env }
func (h *HostProc) Getenv(k string) string { return posix.Getenv(h.env, k) }
func (h *HostProc) Setenv(k, v string)     { h.env = posix.SetEnv(h.env, k, v) }

func (h *HostProc) Open(path string, flags int, mode uint32) (int, abi.Errno) {
	h.charge(0)
	ap := h.abs(path)
	var st abi.Stat
	var serr abi.Errno
	h.fsys.Stat(ap, func(s abi.Stat, e abi.Errno) { st, serr = s, e })
	if serr == abi.OK && st.IsDir() {
		if flags&abi.O_ACCMODE != abi.O_RDONLY {
			return -1, abi.EISDIR
		}
		fd := h.nextFd
		h.nextFd++
		h.fds[fd] = &hostFD{dir: ap, path: ap}
		return fd, abi.OK
	}
	var handle fs.FileHandle
	var oerr abi.Errno = -9999
	h.fsys.Open(ap, flags, mode, func(fh fs.FileHandle, e abi.Errno) { handle, oerr = fh, e })
	if oerr == -9999 {
		panic("rt: host open did not complete synchronously")
	}
	if oerr != abi.OK {
		return -1, oerr
	}
	fd := h.nextFd
	h.nextFd++
	h.fds[fd] = &hostFD{h: handle, flags: flags, path: ap}
	return fd, abi.OK
}

func (h *HostProc) Close(fd int) abi.Errno {
	h.charge(0)
	f, ok := h.fds[fd]
	if !ok {
		return abi.EBADF
	}
	delete(h.fds, fd)
	if f.h != nil {
		set, get := completeErr()
		f.h.Close(set)
		return get()
	}
	return abi.OK
}

func (h *HostProc) Read(fd int, n int) ([]byte, abi.Errno) {
	f, ok := h.fds[fd]
	if !ok {
		return nil, abi.EBADF
	}
	if f.std == 3 {
		return nil, abi.OK // empty stdin
	}
	if f.h == nil {
		return nil, abi.EISDIR
	}
	var out []byte
	var err abi.Errno = -9999
	f.h.Pread(f.off, n, func(b []byte, e abi.Errno) { out, err = b, e })
	if err == -9999 {
		panic("rt: host read did not complete synchronously")
	}
	h.charge(int64(len(out)))
	f.off += int64(len(out))
	return out, err
}

func (h *HostProc) Write(fd int, b []byte) (int, abi.Errno) {
	f, ok := h.fds[fd]
	if !ok {
		return 0, abi.EBADF
	}
	h.charge(int64(len(b)))
	switch f.std {
	case 1:
		h.Stdout = append(h.Stdout, b...)
		return len(b), abi.OK
	case 2:
		h.Stderr = append(h.Stderr, b...)
		return len(b), abi.OK
	case 3:
		return 0, abi.EBADF
	}
	if f.h == nil {
		return 0, abi.EISDIR
	}
	var n int
	var err abi.Errno = -9999
	off := f.off
	if f.flags&abi.O_APPEND != 0 {
		var st abi.Stat
		f.h.Stat(func(s abi.Stat, e abi.Errno) { st = s })
		off = st.Size
	}
	f.h.Pwrite(off, b, func(m int, e abi.Errno) { n, err = m, e })
	if err == -9999 {
		panic("rt: host write did not complete synchronously")
	}
	f.off = off + int64(n)
	return n, err
}

func (h *HostProc) Pread(fd int, n int, off int64) ([]byte, abi.Errno) {
	f, ok := h.fds[fd]
	if !ok || f.h == nil {
		return nil, abi.EBADF
	}
	var out []byte
	var err abi.Errno
	f.h.Pread(off, n, func(b []byte, e abi.Errno) { out, err = b, e })
	h.charge(int64(len(out)))
	return out, err
}

func (h *HostProc) Pwrite(fd int, b []byte, off int64) (int, abi.Errno) {
	f, ok := h.fds[fd]
	if !ok || f.h == nil {
		return 0, abi.EBADF
	}
	var n int
	var err abi.Errno
	f.h.Pwrite(off, b, func(m int, e abi.Errno) { n, err = m, e })
	h.charge(int64(n))
	return n, err
}

// Readv on the host is one positional read of the summed length — a
// single (simulated) kernel crossing, like the real vectored call.
func (h *HostProc) Readv(fd int, lens []int) ([][]byte, abi.Errno) {
	total := 0
	for _, n := range lens {
		if n < 0 {
			return nil, abi.EINVAL
		}
		total += n
	}
	if total == 0 {
		return nil, abi.OK
	}
	b, err := h.Read(fd, total)
	if err != abi.OK || len(b) == 0 {
		return nil, err
	}
	return [][]byte{b}, abi.OK
}

// Writev writes the buffers back to back; host files never short-write.
func (h *HostProc) Writev(fd int, bufs [][]byte) (int64, abi.Errno) {
	var total int64
	for _, b := range bufs {
		n, err := h.Write(fd, b)
		total += int64(n)
		if err != abi.OK {
			if total > 0 {
				return total, abi.OK
			}
			return -1, err
		}
	}
	return total, abi.OK
}

func (h *HostProc) Seek(fd int, off int64, whence int) (int64, abi.Errno) {
	f, ok := h.fds[fd]
	if !ok {
		return 0, abi.EBADF
	}
	h.charge(0)
	switch whence {
	case abi.SEEK_SET:
		f.off = off
	case abi.SEEK_CUR:
		f.off += off
	case abi.SEEK_END:
		st, err := h.Fstat(fd)
		if err != abi.OK {
			return 0, err
		}
		f.off = st.Size + off
	default:
		return 0, abi.EINVAL
	}
	return f.off, abi.OK
}

func (h *HostProc) Ftruncate(fd int, size int64) abi.Errno {
	f, ok := h.fds[fd]
	if !ok || f.h == nil {
		return abi.EBADF
	}
	set, get := completeErr()
	f.h.Truncate(size, set)
	return get()
}

func (h *HostProc) Fsync(fd int) abi.Errno {
	f, ok := h.fds[fd]
	if !ok {
		return abi.EBADF
	}
	h.charge(0)
	if f.h == nil {
		return abi.OK // stdio/directories: nothing buffered
	}
	if s, ok := f.h.(fs.Syncer); ok {
		set, get := completeErr()
		s.Sync(set)
		return get()
	}
	return abi.OK
}

func (h *HostProc) Dup2(oldfd, newfd int) abi.Errno {
	f, ok := h.fds[oldfd]
	if !ok {
		return abi.EBADF
	}
	h.fds[newfd] = f
	return abi.OK
}

func (h *HostProc) statPath(path string, follow bool) (abi.Stat, abi.Errno) {
	h.charge(0)
	var st abi.Stat
	var err abi.Errno = -9999
	cb := func(s abi.Stat, e abi.Errno) { st, err = s, e }
	if follow {
		h.fsys.Stat(h.abs(path), cb)
	} else {
		h.fsys.Lstat(h.abs(path), cb)
	}
	if err == -9999 {
		panic("rt: host stat did not complete synchronously")
	}
	return st, err
}

func (h *HostProc) Stat(path string) (abi.Stat, abi.Errno)  { return h.statPath(path, true) }
func (h *HostProc) Lstat(path string) (abi.Stat, abi.Errno) { return h.statPath(path, false) }

// StatBatch on the host is one direct syscall per path — the native
// baseline has no doorbell to amortize.
func (h *HostProc) StatBatch(paths []string, lstat bool) ([]abi.Stat, []abi.Errno) {
	sts := make([]abi.Stat, len(paths))
	errs := make([]abi.Errno, len(paths))
	for i, p := range paths {
		sts[i], errs[i] = h.statPath(p, !lstat)
	}
	return sts, errs
}

func (h *HostProc) Fstat(fd int) (abi.Stat, abi.Errno) {
	f, ok := h.fds[fd]
	if !ok {
		return abi.Stat{}, abi.EBADF
	}
	h.charge(0)
	if f.std != 0 {
		return abi.Stat{Mode: abi.S_IFCHR | 0o600}, abi.OK
	}
	if f.dir != "" {
		return h.Stat(f.dir)
	}
	var st abi.Stat
	var err abi.Errno
	f.h.Stat(func(s abi.Stat, e abi.Errno) { st, err = s, e })
	return st, err
}

func (h *HostProc) Access(path string, mode int) abi.Errno {
	_, err := h.Stat(path)
	return err
}

func (h *HostProc) Readlink(path string) (string, abi.Errno) {
	h.charge(0)
	var out string
	var err abi.Errno
	h.fsys.Readlink(h.abs(path), func(s string, e abi.Errno) { out, err = s, e })
	return out, err
}

func (h *HostProc) Utimes(path string, at, mt int64) abi.Errno {
	h.charge(0)
	set, get := completeErr()
	h.fsys.Utimes(h.abs(path), at, mt, set)
	return get()
}

func (h *HostProc) Mkdir(path string, mode uint32) abi.Errno {
	h.charge(0)
	set, get := completeErr()
	h.fsys.Mkdir(h.abs(path), mode, set)
	return get()
}

func (h *HostProc) Rmdir(path string) abi.Errno {
	h.charge(0)
	set, get := completeErr()
	h.fsys.Rmdir(h.abs(path), set)
	return get()
}

func (h *HostProc) Unlink(path string) abi.Errno {
	h.charge(0)
	set, get := completeErr()
	h.fsys.Unlink(h.abs(path), set)
	return get()
}

func (h *HostProc) Rename(oldp, newp string) abi.Errno {
	h.charge(0)
	set, get := completeErr()
	h.fsys.Rename(h.abs(oldp), h.abs(newp), set)
	return get()
}

func (h *HostProc) Symlink(target, link string) abi.Errno {
	h.charge(0)
	set, get := completeErr()
	h.fsys.Symlink(target, h.abs(link), set)
	return get()
}

// Getdents streams the listing in DirentChunk-sized pieces from the fd's
// cursor, matching the Browsix kernel's continuation contract.
func (h *HostProc) Getdents(fd int) ([]abi.Dirent, abi.Errno) {
	f, ok := h.fds[fd]
	if !ok {
		return nil, abi.EBADF
	}
	if f.dir == "" {
		return nil, abi.ENOTDIR
	}
	h.charge(0)
	var out []abi.Dirent
	var err abi.Errno
	h.fsys.Readdir(f.dir, func(es []abi.Dirent, e abi.Errno) { out, err = es, e })
	if err != abi.OK {
		return nil, err
	}
	off := int(f.off)
	if off >= len(out) {
		return nil, abi.OK
	}
	end := off + abi.DirentChunk
	if end > len(out) {
		end = len(out)
	}
	f.off = int64(end)
	return out[off:end], abi.OK
}

func (h *HostProc) Chdir(path string) abi.Errno {
	h.charge(0)
	var rp string
	var st abi.Stat
	var err abi.Errno = -9999
	h.fsys.Resolve(h.abs(path), func(p string, s abi.Stat, e abi.Errno) { rp, st, err = p, s, e })
	if err == -9999 {
		panic("rt: host chdir did not complete synchronously")
	}
	if err != abi.OK {
		return err
	}
	if !st.IsDir() {
		return abi.ENOTDIR
	}
	h.cwd = rp // walker-resolved canonical path
	return abi.OK
}

func (h *HostProc) Getcwd() (string, abi.Errno) { return h.cwd, abi.OK }

// Multi-process facilities are not part of the host baselines.
func (h *HostProc) Pipe() (int, int, abi.Errno) { return -1, -1, abi.ENOSYS }
func (h *HostProc) Spawn(string, []string, []string, []int) (int, abi.Errno) {
	return -1, abi.ENOSYS
}
func (h *HostProc) Fork(string, []byte) (int, abi.Errno)      { return -1, abi.ENOSYS }
func (h *HostProc) Exec(string, []string, []string) abi.Errno { return abi.ENOSYS }
func (h *HostProc) Wait4(int, int) (int, int, abi.Errno)      { return 0, 0, abi.ECHILD }
func (h *HostProc) Exit(code int)                             { panic(exitSentinel{code}) }
func (h *HostProc) Kill(int, int) abi.Errno                   { return abi.ESRCH }
func (h *HostProc) Signal(sig int, fn func(int)) abi.Errno    { return abi.OK }
func (h *HostProc) Socket() (int, abi.Errno)                  { return -1, abi.ENOSYS }
func (h *HostProc) Bind(int, int) abi.Errno                   { return abi.ENOSYS }
func (h *HostProc) Listen(int, int) abi.Errno                 { return abi.ENOSYS }
func (h *HostProc) Accept(int) (int, abi.Errno)               { return -1, abi.ENOSYS }
func (h *HostProc) Connect(int, int) abi.Errno                { return abi.ENOSYS }
func (h *HostProc) Getsockname(int) (int, abi.Errno)          { return -1, abi.ENOSYS }
func (h *HostProc) AcceptBatch(int, int) ([]int, abi.Errno)   { return nil, abi.ENOSYS }
func (h *HostProc) Poll([]abi.Pollfd, int64) (int, abi.Errno) { return -1, abi.ENOSYS }
func (h *HostProc) Setfl(int, int) abi.Errno                  { return abi.ENOSYS }

func (h *HostProc) CPU(ns int64)   { h.sim.Charge(int64(float64(ns) * h.cost.Mult)) }
func (h *HostProc) CPU64(ns int64) { h.sim.Charge(int64(float64(ns) * h.cost.Int64Mult)) }

func (h *HostProc) RuntimeName() string { return string(h.kind) }
