// Package rt implements the language-runtime integrations of §4: the
// process-side glue that lets programs written against posix.Proc run as
// Browsix processes (or natively, for the paper's baselines).
//
// Four Browsix runtimes mirror the paper's:
//
//   - "em-sync":  Emscripten with asm.js output + synchronous syscalls
//     over SharedArrayBuffer/Atomics (Chrome-only in the paper);
//   - "em-async": Emscripten's interpreted Emterpreter mode + asynchronous
//     syscalls — the only runtime supporting fork, at the price of much
//     slower code and per-syscall stack unwind/rewind;
//   - "gopherjs": GopherJS with goroutine suspension over async syscalls
//     (and the missing-int64 penalty the paper blames for meme slowness);
//   - "node":     browser-node, Node.js high-level APIs over pure-JS
//     bindings issuing async syscalls.
//
// Two host runtimes provide the evaluation baselines of Figure 9:
// "native" (C utilities on Linux) and "node-host" (Node.js on Linux).
package rt

// Kind names a runtime.
type Kind string

// Runtime kinds.
const (
	NativeKind   Kind = "native"
	NodeHostKind Kind = "node-host"
	NodeKind     Kind = "node"
	GopherJSKind Kind = "gopherjs"
	EmSyncKind   Kind = "em-sync"
	EmAsyncKind  Kind = "em-async"
	// WasmKind models the WebAssembly executables §3.3 mentions and the
	// §3.2 note that synchronous syscalls suit "asm.js and WebAssembly
	// functions on the call stack": faster than asm.js, native 64-bit
	// integers, sync transport.
	WasmKind Kind = "wasm"
)

// IsBrowsix reports whether the kind runs as a Browsix process (vs a host
// baseline).
func (k Kind) IsBrowsix() bool {
	switch k {
	case NodeKind, GopherJSKind, EmSyncKind, EmAsyncKind, WasmKind:
		return true
	}
	return false
}

// SupportsFork mirrors §3.3: "fork is only supported for C and C++
// programs" — concretely, the Emterpreter/async runtime, which can
// serialize its state. Synchronous syscalls are incompatible with fork
// (§3.2), and GopherJS/Node use spawn.
func (k Kind) SupportsFork() bool { return k == EmAsyncKind }

// Cost is a runtime's CPU model. Mult scales native-equivalent work
// (posix.Proc.CPU); Int64Mult scales 64-bit-heavy work (GopherJS lacked
// native 64-bit integers, §5.2). InitNs is runtime start-up (V8 boot,
// library load, asm.js compile…). SyscallCPUNs is process-side
// marshalling per syscall; Unwind/Rewind model the Emterpreter saving and
// restoring the C stack around every asynchronous syscall (§4.3).
type Cost struct {
	Mult            float64
	Int64Mult       float64
	InitNs          int64
	SyscallCPUNs    int64
	UnwindNs        int64
	RewindNs        int64
	DirectSyscallNs int64 // host kinds: a real kernel syscall
	HeapSize        int   // em-sync: SharedArrayBuffer heap size
	// RestoreNs replaces InitNs when the process boots as a
	// copy-on-write clone of a captured post-boot snapshot: fixing up
	// the restored heap and resuming, instead of re-running interpreter
	// and stdlib initialization (internal/snapshot).
	RestoreNs int64
}

// CostOf returns the calibrated cost model for a runtime kind. The
// calibration targets the absolute numbers in §5.2 (see EXPERIMENTS.md).
func CostOf(k Kind) Cost {
	switch k {
	case NativeKind:
		return Cost{Mult: 1, Int64Mult: 1, InitNs: 500_000, DirectSyscallNs: 400}
	case NodeHostKind:
		return Cost{Mult: 13, Int64Mult: 40, InitNs: 40_000_000, DirectSyscallNs: 2_500}
	case NodeKind:
		return Cost{Mult: 13, Int64Mult: 40, InitNs: 42_000_000, SyscallCPUNs: 4_000,
			RestoreNs: 1_200_000}
	case GopherJSKind:
		return Cost{Mult: 6, Int64Mult: 10, InitNs: 18_000_000, SyscallCPUNs: 5_000,
			RestoreNs: 900_000}
	case EmSyncKind:
		return Cost{Mult: 8, Int64Mult: 20, InitNs: 6_000_000, SyscallCPUNs: 1_200, HeapSize: 1 << 20,
			RestoreNs: 500_000}
	case WasmKind:
		return Cost{Mult: 4, Int64Mult: 4, InitNs: 4_000_000, SyscallCPUNs: 900, HeapSize: 1 << 20,
			RestoreNs: 400_000}
	case EmAsyncKind:
		return Cost{Mult: 40, Int64Mult: 90, InitNs: 9_000_000, SyscallCPUNs: 4_000,
			UnwindNs: 180_000, RewindNs: 140_000, RestoreNs: 800_000}
	default:
		panic("rt: unknown runtime kind " + string(k))
	}
}

// ArtifactSize models the compiled-JavaScript artifact size for a runtime
// (what NewWorker parses and evaluates): browser-node packages Node's
// high-level APIs; GopherJS output is notoriously large; Emterpreter
// bytecode adds bulk over asm.js.
func ArtifactSize(k Kind) int {
	switch k {
	case NodeKind:
		return 1_400_000
	case GopherJSKind:
		return 2_400_000
	case EmSyncKind:
		return 900_000
	case EmAsyncKind:
		return 1_300_000
	case WasmKind:
		return 650_000
	default:
		return 4_096
	}
}
