package rt

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/posix"
	"repro/internal/sched"
)

func TestKindPredicates(t *testing.T) {
	browsixKinds := []Kind{NodeKind, GopherJSKind, EmSyncKind, EmAsyncKind, WasmKind}
	for _, k := range browsixKinds {
		if !k.IsBrowsix() {
			t.Errorf("%s should be a Browsix kind", k)
		}
	}
	for _, k := range []Kind{NativeKind, NodeHostKind} {
		if k.IsBrowsix() {
			t.Errorf("%s is a host kind", k)
		}
	}
	// §3.3: fork only on the Emscripten/Emterpreter runtime.
	for _, k := range []Kind{NodeKind, GopherJSKind, EmSyncKind, WasmKind, NativeKind} {
		if k.SupportsFork() {
			t.Errorf("%s must not support fork", k)
		}
	}
	if !EmAsyncKind.SupportsFork() {
		t.Error("em-async must support fork")
	}
}

func TestCostModelShape(t *testing.T) {
	for _, k := range []Kind{NativeKind, NodeHostKind, NodeKind, GopherJSKind, EmSyncKind, EmAsyncKind, WasmKind} {
		c := CostOf(k)
		if c.Mult <= 0 {
			t.Errorf("%s: nonpositive multiplier", k)
		}
		if c.Int64Mult < c.Mult {
			t.Errorf("%s: int64 work cheaper than regular work (%v < %v)", k, c.Int64Mult, c.Mult)
		}
		if k.IsBrowsix() && ArtifactSize(k) < 1000 {
			t.Errorf("%s: unrealistically small artifact", k)
		}
	}
	// Orderings the paper's evaluation depends on.
	if !(CostOf(NativeKind).Mult < CostOf(WasmKind).Mult) {
		t.Error("wasm must be slower than native")
	}
	if !(CostOf(WasmKind).Mult < CostOf(EmSyncKind).Mult) {
		t.Error("asm.js must be slower than wasm")
	}
	if !(CostOf(EmSyncKind).Mult < CostOf(EmAsyncKind).Mult) {
		t.Error("the Emterpreter must be much slower than asm.js (§3.2)")
	}
	if CostOf(EmAsyncKind).UnwindNs == 0 || CostOf(EmAsyncKind).RewindNs == 0 {
		t.Error("Emterpreter async syscalls must pay stack unwind/rewind (§4.3)")
	}
	if CostOf(EmSyncKind).HeapSize == 0 || CostOf(WasmKind).HeapSize == 0 {
		t.Error("sync-transport kinds need a SharedArrayBuffer heap")
	}
}

func TestCostOfUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CostOf(Kind("cobol"))
}

func TestLoaderRejects(t *testing.T) {
	sim := sched.New()
	sys := browser.NewSystem(sim, browser.Chrome())
	loader := Loader(sys)

	if _, err := loader([]byte("not an executable")); err != abi.ENOEXEC {
		t.Fatalf("garbage: %v, want ENOEXEC", err)
	}
	if _, err := loader(posix.Executable("no-such-program-zzz", "node", 256)); err != abi.ENOENT {
		t.Fatalf("unknown program: %v, want ENOENT", err)
	}
	if _, err := loader(posix.Executable("sh", "native", 256)); err != abi.ENOEXEC {
		t.Fatalf("host kind in executable: %v, want ENOEXEC", err)
	}
}

func TestLoaderAcceptsRegistered(t *testing.T) {
	posix.Register(&posix.Program{Name: "rt-test-prog", Main: func(posix.Proc) int { return 0 }})
	sim := sched.New()
	sys := browser.NewSystem(sim, browser.Chrome())
	loader := Loader(sys)
	for _, k := range []Kind{NodeKind, GopherJSKind, EmSyncKind, EmAsyncKind, WasmKind} {
		main, err := loader(posix.Executable("rt-test-prog", string(k), 512))
		if err != abi.OK || main == nil {
			t.Errorf("kind %s: %v", k, err)
		}
	}
}

func TestInstallExecutableSizes(t *testing.T) {
	image := map[string][]byte{}
	InstallExecutable(image, "/usr/bin/x", "rt-test-prog", NodeKind)
	if len(image["/usr/bin/x"]) != ArtifactSize(NodeKind) {
		t.Fatalf("staged size %d != artifact size %d", len(image["/usr/bin/x"]), ArtifactSize(NodeKind))
	}
	name, kind, ok := posix.ParseExecutable(image["/usr/bin/x"])
	if !ok || name != "rt-test-prog" || kind != string(NodeKind) {
		t.Fatalf("parsed %q %q %v", name, kind, ok)
	}
}

func TestHostRunUnknownProgram(t *testing.T) {
	sim := sched.New()
	sim.MaxSteps = 1000
	res := RunHost(sim, nil, NativeKind, []string{"never-registered"}, nil, "/")
	if res.Code != 127 {
		t.Fatalf("code = %d, want 127", res.Code)
	}
}
