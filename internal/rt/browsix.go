package rt

import (
	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/posix"
	"repro/internal/sched"
	"repro/internal/snapshot"
)

// workerRT is the process-side Browsix runtime living inside a Web
// Worker: the counterpart of the paper's GopherJS/Emscripten/browser-node
// integrations. It owns the worker's message loop, the outstanding-call
// table (a Browsix process "can have multiple outstanding system calls",
// §4.2), the signal-handler table, and — for em-sync — the shared heap.
type workerRT struct {
	sys  *browser.System
	sim  *sched.Sim
	w    *browser.Worker
	prog *posix.Program
	kind Kind
	cost Cost

	pid  int
	args []string
	env  []string

	nextID   int64
	pending  map[int64]*sched.G
	handlers map[int]func(int)

	// Synchronous-syscall state (em-sync): the heap layout is
	//   [0,4)   wake cell (Atomics.wait/notify)
	//   [8,16)  syscall return value (int64)
	//   [16,20) errno (int32)
	//   [64,..) scratch for string/buffer arguments
	//   [top-2R, top) request + reply rings (when the ring transport
	//                 is negotiated; R = ringRegionSize)
	sync       bool
	heap       *browser.SAB
	scratch    int64
	scratchTop int64 // exclusive upper bound for scratch allocations

	// Ring transport (negotiated with the kernel after personality
	// registration; falls back to the scalar wake-cell path if refused).
	ringOK    bool
	reqRing   abi.Ring
	repRing   abi.Ring
	ringSeq   uint32
	ringStash map[uint32]ringRep

	// Zero-copy read path (negotiated after the ring): the mapped
	// page-cache arena, the leases held per descriptor (oldest first),
	// and the lease returns queued for the next doorbell (lease.go).
	poolOK         bool
	pool           *browser.SAB
	heldLeases     map[int][]abi.PageGrant
	pendingUnlease []uint32
	// Zero-copy write path (rides the same pool mapping): per-descriptor
	// staging slots leased from the kernel with wgalloc; wgOK drops to
	// false for good on the first ENOSYS (writegrant.go).
	wgOK   bool
	wstage map[int]*writeStage
	// ringOutstanding counts pushed frames whose replies have not yet
	// been popped (bounds batches to the reply ring's capacity);
	// inflight counts parked sync/ring calls so only the outermost
	// recycles the scratch region.
	ringOutstanding int
	inflight        int
}

const (
	syncWaitOff    = 0
	syncRetOff     = 8
	scratchBase    = 64
	ringRegionSize = 8 * 1024
)

// exitSentinel unwinds a program coroutine when Exit is called mid-stack.
type exitSentinel struct{ code int }

// bootWorker is the worker script's top-level: it registers onmessage and
// waits for the kernel's init message before running main (§3.3: "BROWSIX-
// enabled runtimes delay execution of a process's main() function until
// after the worker has received an init message").
func bootWorker(sys *browser.System, w *browser.Worker, prog *posix.Program, kind Kind) {
	r := &workerRT{
		sys:        sys,
		sim:        sys.Sim,
		w:          w,
		prog:       prog,
		kind:       kind,
		cost:       CostOf(kind),
		pending:    map[int64]*sched.G{},
		handlers:   map[int]func(int){},
		heldLeases: map[int][]abi.PageGrant{},
		wstage:     map[int]*writeStage{},
		sync:       kind == EmSyncKind || kind == WasmKind,
	}
	w.Ctx.OnMessage = r.onMessage
}

func (r *workerRT) onMessage(v browser.Value) {
	m, ok := v.(map[string]browser.Value)
	if !ok {
		return
	}
	switch browser.GetString(m, "type") {
	case "init":
		r.pid = int(browser.GetInt(m, "pid"))
		r.args = browser.Strings(browser.GetArray(m, "args"))
		r.env = browser.Strings(browser.GetArray(m, "env"))
		forkMem := browser.GetBytes(m, "forkMem")
		forkLabel := browser.GetString(m, "forkLabel")
		img, _ := m["snapimage"].(*snapshot.Image)
		tracker, _ := m["snaptracker"].(*snapshot.Tracker)
		snapCap := browser.GetInt(m, "snapcap") != 0
		if img != nil {
			// Clone boot: fix up the restored snapshot instead of
			// re-running interpreter/stdlib initialization.
			r.sim.Charge(r.cost.RestoreNs)
		} else {
			// Runtime start-up: interpreter/stdlib initialization.
			r.sim.Charge(r.cost.InitNs)
		}
		if r.sync {
			r.heap = browser.NewSAB(r.cost.HeapSize)
			r.scratchTop = int64(r.heap.Len())
		}
		g := r.sim.NewG(r.w.Ctx.Sched(), r.prog.Name, func(any) {
			defer r.recoverExit()
			if r.sync {
				if img != nil && img.HeapLen == r.heap.Len() {
					r.restoreFromImage(img, tracker)
				} else {
					// Register the sync-syscall personality: heap +
					// return/wake offsets (§3.2), via an async call.
					r.asyncCall("personality", r.heap, int64(syncRetOff), int64(syncWaitOff))
					r.negotiateRing()
					r.negotiatePagePool()
					if snapCap {
						r.captureSnapshot()
					}
				}
			} else if img == nil && snapCap {
				r.captureSnapshot()
			}
			var code int
			if forkLabel != "" || len(forkMem) > 0 {
				if r.prog.ResumeFork == nil {
					code = 127
				} else {
					code = r.prog.ResumeFork(r, forkMem, forkLabel)
				}
			} else {
				code = r.prog.Main(r)
			}
			r.sendExit(code)
		})
		r.sim.ResumeG(g, nil)
	case "reply":
		id := browser.GetInt(m, "id")
		g := r.pending[id]
		if g == nil {
			return
		}
		delete(r.pending, id)
		r.sim.ResumeG(g, browser.GetArray(m, "ret"))
	case "signal":
		sig := int(browser.GetInt(m, "sig"))
		h := r.handlers[sig]
		if h == nil {
			return
		}
		// The handler runs as its own event-driven coroutine so it may
		// itself issue system calls while the main program is parked.
		g := r.sim.NewG(r.w.Ctx.Sched(), "sighandler", func(any) {
			defer r.recoverExit()
			h(sig)
		})
		r.sim.ResumeG(g, nil)
	}
}

// recoverExit converts an Exit() unwind (exitSentinel) into the explicit
// exit system call; ErrKilled and real panics propagate.
func (r *workerRT) recoverExit() {
	e := recover()
	switch {
	case e == nil:
	case e == sched.ErrKilled:
		panic(e)
	default:
		if es, ok := e.(exitSentinel); ok {
			r.sendExit(es.code)
			return
		}
		panic(e)
	}
}

// sendExit issues the explicit exit system call every runtime must make
// (§3.3) — no reply is expected; the kernel tears the worker down.
func (r *workerRT) sendExit(code int) {
	r.w.PostToParent(map[string]browser.Value{
		"type": "syscall",
		"id":   int64(-1),
		"name": "exit",
		"args": []browser.Value{int64(code)},
	})
}

// ---------------------------------------------------------------------------
// Asynchronous transport (§3.2): continuation-passing over postMessage.
// The calling coroutine parks; the reply event resumes it. Under the
// Emterpreter the runtime also pays stack unwind/rewind.
// ---------------------------------------------------------------------------

func (r *workerRT) asyncCall(name string, args ...browser.Value) []browser.Value {
	r.sim.Charge(r.cost.SyscallCPUNs)
	if r.cost.UnwindNs > 0 {
		r.sim.Charge(r.cost.UnwindNs)
	}
	id := r.nextID
	r.nextID++
	r.w.PostToParent(map[string]browser.Value{
		"type": "syscall",
		"id":   id,
		"name": name,
		"args": args,
	})
	g := r.sim.CurG()
	if g == nil {
		panic("rt: syscall outside program coroutine")
	}
	r.pending[id] = g
	v := r.sim.Park()
	if r.cost.RewindNs > 0 {
		r.sim.Charge(r.cost.RewindNs)
	}
	ret, _ := v.([]browser.Value)
	return ret
}

// ---------------------------------------------------------------------------
// Synchronous transport (§3.2): integer args via postMessage, blocking
// Atomics.wait on the shared heap, results read back from the heap.
// ---------------------------------------------------------------------------

func (r *workerRT) syncCall(trap int, args ...int64) (int64, abi.Errno) {
	if r.ringOK {
		rets, errs := r.ringCalls([]ringReq{{trap: trap, args: args}})
		return rets[0], errs[0]
	}
	r.sim.Charge(r.cost.SyscallCPUNs)
	vargs := make([]browser.Value, len(args))
	for i, a := range args {
		vargs[i] = a
	}
	r.heap.Store32(syncWaitOff, 0)
	r.w.PostToParent(map[string]browser.Value{
		"type": "sync",
		"trap": int64(trap),
		"args": vargs,
	})
	r.inflight++
	r.sys.FutexWait(r.w.Ctx, r.heap, syncWaitOff, 0, -1)
	r.inflight--
	ret := int64(uint64(r.heap.Load32(syncRetOff)) | uint64(r.heap.Load32(syncRetOff+4))<<32)
	errno := abi.Errno(int32(r.heap.Load32(syncRetOff + 8)))
	if r.inflight == 0 {
		// Only the outermost call recycles scratch: a signal handler's
		// interleaved call must keep allocating above a parked call's
		// staged buffers.
		r.scratch = scratchBase
	}
	return ret, errno
}

// putStr stages a string argument in scratch, returning (ptr, len).
func (r *workerRT) putStr(s string) (int64, int64) {
	ptr := r.alloc(int64(len(s)))
	copy(r.heap.Bytes()[ptr:], s)
	r.heap.MarkDirty(int(ptr), len(s))
	return ptr, int64(len(s))
}

// putBytes stages a buffer in scratch.
func (r *workerRT) putBytes(b []byte) (int64, int64) {
	ptr := r.alloc(int64(len(b)))
	copy(r.heap.Bytes()[ptr:], b)
	r.heap.MarkDirty(int(ptr), len(b))
	return ptr, int64(len(b))
}

// alloc bumps the scratch pointer (reset after each call completes). The
// ring regions at the top of the heap are off limits.
func (r *workerRT) alloc(n int64) int64 {
	if r.scratch < scratchBase {
		r.scratch = scratchBase
	}
	ptr := r.scratch
	if ptr+n > r.scratchTop {
		panic("rt: sync-syscall scratch overflow")
	}
	r.scratch = (ptr + n + 7) &^ 7
	return ptr
}

// scratchFits reports whether n more scratch bytes (plus alignment slack)
// fit below the ring regions.
func (r *workerRT) scratchFits(n int64) bool {
	base := r.scratch
	if base < scratchBase {
		base = scratchBase
	}
	return base+n+8 <= r.scratchTop
}

// maxScratchPayload is the largest single data buffer stageable in the
// scratch region, leaving slack for argument/iovec staging.
func (r *workerRT) maxScratchPayload() int64 {
	m := r.scratchTop - scratchBase - 256
	if m < 0 {
		m = 0
	}
	return m
}

// ---------------------------------------------------------------------------
// posix.Proc implementation. Every method follows the runtime's
// transport; reply decoding mirrors the kernel's encodings.
// ---------------------------------------------------------------------------

func vi(ret []browser.Value, i int) int64 {
	if i < len(ret) {
		switch x := ret[i].(type) {
		case int64:
			return x
		case int:
			return int64(x)
		case float64:
			return int64(x)
		}
	}
	return 0
}

func verr(ret []browser.Value) abi.Errno { return abi.Errno(vi(ret, 1)) }

func (r *workerRT) Getpid() int { return r.pid }
func (r *workerRT) Getppid() int {
	if r.sync {
		ret, _ := r.syncCall(abi.SYS_getppid)
		return int(ret)
	}
	return int(vi(r.asyncCall("getppid"), 0))
}
func (r *workerRT) Args() []string    { return r.args }
func (r *workerRT) Environ() []string { return r.env }
func (r *workerRT) Getenv(key string) string {
	return posix.Getenv(r.env, key)
}
func (r *workerRT) Setenv(key, value string) { r.env = posix.SetEnv(r.env, key, value) }

func (r *workerRT) Open(path string, flags int, mode uint32) (int, abi.Errno) {
	if r.sync {
		p, n := r.putStr(path)
		ret, err := r.syncCall(abi.SYS_open, p, n, int64(flags), int64(mode))
		return int(ret), err
	}
	ret := r.asyncCall("open", path, int64(flags), int64(mode))
	return int(vi(ret, 0)), verr(ret)
}

func (r *workerRT) Close(fd int) abi.Errno {
	if r.sync {
		// Close returns the descriptor's page leases and write-staging
		// slots; the reclaim frames share close's doorbell.
		r.dropFdLeases(fd)
		r.dropFdWriteStage(fd)
		_, err := r.syncCallLeased(abi.SYS_close, int64(fd))
		return err
	}
	return verr(r.asyncCall("close", int64(fd)))
}

func (r *workerRT) Read(fd int, n int) ([]byte, abi.Errno) {
	if r.sync {
		if r.poolOK {
			// Zero-copy path: the grant reply is not bounded by the
			// scratch region — only the copy fallback's staging buffer
			// is, degrading oversized cold reads to short reads.
			bufLen := n
			if max := r.maxScratchPayload(); int64(bufLen) > max {
				bufLen = int(max)
			}
			return r.readLeased(fd, n, bufLen)
		}
		// A request larger than the scratch region degrades to a short
		// read rather than overflowing the staging area.
		if max := r.maxScratchPayload(); int64(n) > max {
			n = int(max)
		}
		ptr := r.alloc(int64(n))
		ret, err := r.syncCall(abi.SYS_read, int64(fd), ptr, int64(n))
		if err != abi.OK {
			return nil, err
		}
		out := make([]byte, ret)
		copy(out, r.heap.Bytes()[ptr:ptr+ret])
		return out, abi.OK
	}
	ret := r.asyncCall("read", int64(fd), int64(n))
	if err := verr(ret); err != abi.OK {
		return nil, err
	}
	if len(ret) > 2 {
		b, _ := ret[2].([]byte)
		return b, abi.OK
	}
	return nil, abi.OK
}

func (r *workerRT) Write(fd int, b []byte) (int, abi.Errno) {
	if r.sync {
		if r.wgOK && len(b) > 0 {
			// Zero-copy path: stage the payload into leased arena slots
			// and submit references — no bytes cross through scratch.
			if n, err, ok := r.writeStaged(fd, b); ok {
				return n, err
			}
		}
		return r.writePlain(fd, b)
	}
	ret := r.asyncCall("write", int64(fd), b)
	return int(vi(ret, 0)), verr(ret)
}

// writePlain is the classic sync write: payload staged through the
// scratch region, one kernel copy out of the heap.
func (r *workerRT) writePlain(fd int, b []byte) (int, abi.Errno) {
	// Buffers larger than the scratch region go out in pieces.
	if max := r.maxScratchPayload(); int64(len(b)) > max {
		if max <= 0 {
			return 0, abi.ENOMEM
		}
		total := 0
		for len(b) > 0 {
			n := len(b)
			if int64(n) > max {
				n = int(max)
			}
			m, err := r.writePlain(fd, b[:n])
			total += m
			if err != abi.OK {
				// Short-write semantics: earlier chunks that landed make
				// this a successful partial write, not an EAGAIN.
				if err == abi.EAGAIN && total > 0 {
					return total, abi.OK
				}
				return total, err
			}
			if m <= 0 {
				return total, abi.EIO
			}
			b = b[m:]
		}
		return total, abi.OK
	}
	ptr, n := r.putBytes(b)
	ret, err := r.syncCall(abi.SYS_write, int64(fd), ptr, n)
	return int(ret), err
}

// Readv reads up to the sum of lens bytes in a single kernel crossing,
// with one blocking point: it returns whatever is immediately available.
func (r *workerRT) Readv(fd int, lens []int) ([][]byte, abi.Errno) {
	total := 0
	for _, n := range lens {
		if n < 0 {
			return nil, abi.EINVAL
		}
		total += n
	}
	if total == 0 {
		return nil, abi.OK
	}
	if !r.sync {
		lv := make([]browser.Value, len(lens))
		for i, n := range lens {
			lv[i] = int64(n)
		}
		ret := r.asyncCall("readv", int64(fd), lv)
		if err := verr(ret); err != abi.OK {
			return nil, err
		}
		var out [][]byte
		if len(ret) > 2 {
			if arr, ok := ret[2].([]browser.Value); ok {
				for _, v := range arr {
					if b, ok := v.([]byte); ok && len(b) > 0 {
						out = append(out, b)
					}
				}
			}
		}
		return out, abi.OK
	}
	if r.poolOK {
		// Zero-copy path: one readg covers the whole vector; the result
		// comes back as a single segment (POSIX-legal — callers scatter
		// the stream themselves), assembled from the pool mapping on a
		// warm hit with no kernel payload copy.
		bufLen := total
		if max := r.maxScratchPayload(); int64(bufLen) > max {
			bufLen = int(max)
		}
		b, err := r.readLeased(fd, total, bufLen)
		if err != abi.OK || len(b) == 0 {
			return nil, err
		}
		return [][]byte{b}, abi.OK
	}
	need := int64(total) + int64(len(lens)+1)*(abi.IovecSize+8)
	if !r.scratchFits(need) {
		// Payload larger than the scratch region: degrade to one scalar
		// read (still POSIX-legal readv behaviour — a short result).
		b, err := r.Read(fd, total)
		if err != abi.OK || len(b) == 0 {
			return nil, err
		}
		return [][]byte{b}, abi.OK
	}
	iovs := make([]abi.Iovec, len(lens))
	for i, n := range lens {
		iovs[i] = abi.Iovec{Ptr: r.alloc(int64(n)), Len: int64(n)}
	}
	ivp := r.alloc(int64(len(iovs) * abi.IovecSize))
	abi.PackIovecs(r.heap.Bytes()[ivp:], iovs)
	r.heap.MarkDirty(int(ivp), len(iovs)*abi.IovecSize)
	ret, err := r.syncCall(abi.SYS_readv, int64(fd), ivp, int64(len(iovs)))
	if err != abi.OK {
		return nil, err
	}
	n := ret
	var out [][]byte
	hb := r.heap.Bytes()
	for _, iov := range iovs {
		if n <= 0 {
			break
		}
		take := iov.Len
		if take > n {
			take = n
		}
		buf := make([]byte, take)
		copy(buf, hb[iov.Ptr:iov.Ptr+take])
		out = append(out, buf)
		n -= take
	}
	return out, abi.OK
}

// Writev writes every buffer in order through a single kernel crossing
// (one writev trap, or one ring doorbell fanning out per-buffer frames).
func (r *workerRT) Writev(fd int, bufs [][]byte) (int64, abi.Errno) {
	nonEmpty := make([][]byte, 0, len(bufs))
	for _, b := range bufs {
		if len(b) > 0 {
			nonEmpty = append(nonEmpty, b)
		}
	}
	if len(nonEmpty) == 0 {
		return 0, abi.OK
	}
	if !r.sync {
		arr := make([]browser.Value, len(nonEmpty))
		for i, b := range nonEmpty {
			arr[i] = b
		}
		ret := r.asyncCall("writev", int64(fd), arr)
		return vi(ret, 0), verr(ret)
	}
	if r.ringOK {
		return r.ringWritev(fd, nonEmpty)
	}
	need := int64(len(nonEmpty)+1) * (abi.IovecSize + 8)
	for _, b := range nonEmpty {
		need += int64(len(b)) + 8
	}
	if !r.scratchFits(need) {
		var total int64
		for _, b := range nonEmpty {
			n, err := r.Write(fd, b)
			total += int64(n)
			if err != abi.OK {
				if total > 0 {
					return total, abi.OK
				}
				return -1, err
			}
		}
		return total, abi.OK
	}
	iovs := make([]abi.Iovec, len(nonEmpty))
	for i, b := range nonEmpty {
		ptr, n := r.putBytes(b)
		iovs[i] = abi.Iovec{Ptr: ptr, Len: n}
	}
	ivp := r.alloc(int64(len(iovs) * abi.IovecSize))
	abi.PackIovecs(r.heap.Bytes()[ivp:], iovs)
	r.heap.MarkDirty(int(ivp), len(iovs)*abi.IovecSize)
	ret, err := r.syncCall(abi.SYS_writev, int64(fd), ivp, int64(len(iovs)))
	if err != abi.OK {
		return -1, err
	}
	return ret, abi.OK
}

func (r *workerRT) Pread(fd int, n int, off int64) ([]byte, abi.Errno) {
	if r.sync {
		ptr := r.alloc(int64(n))
		ret, err := r.syncCall(abi.SYS_pread, int64(fd), ptr, int64(n), off)
		if err != abi.OK {
			return nil, err
		}
		out := make([]byte, ret)
		copy(out, r.heap.Bytes()[ptr:ptr+ret])
		return out, abi.OK
	}
	ret := r.asyncCall("pread", int64(fd), int64(n), off)
	if err := verr(ret); err != abi.OK {
		return nil, err
	}
	if len(ret) > 2 {
		b, _ := ret[2].([]byte)
		return b, abi.OK
	}
	return nil, abi.OK
}

func (r *workerRT) Pwrite(fd int, b []byte, off int64) (int, abi.Errno) {
	if r.sync {
		ptr, n := r.putBytes(b)
		ret, err := r.syncCall(abi.SYS_pwrite, int64(fd), ptr, n, off)
		return int(ret), err
	}
	ret := r.asyncCall("pwrite", int64(fd), b, off)
	return int(vi(ret, 0)), verr(ret)
}

func (r *workerRT) Seek(fd int, off int64, whence int) (int64, abi.Errno) {
	if r.sync {
		// Seeking away returns the descriptor's page leases (they were
		// retained for the sequential window the seek abandons); the
		// reclaim frames share the seek's doorbell.
		r.dropFdLeases(fd)
		return r.syncCallLeased(abi.SYS_llseek, int64(fd), off, int64(whence))
	}
	ret := r.asyncCall("llseek", int64(fd), off, int64(whence))
	return vi(ret, 0), verr(ret)
}

func (r *workerRT) Ftruncate(fd int, size int64) abi.Errno {
	if r.sync {
		_, err := r.syncCall(abi.SYS_ftruncate, int64(fd), size)
		return err
	}
	return verr(r.asyncCall("ftruncate", int64(fd), size))
}

func (r *workerRT) Fsync(fd int) abi.Errno {
	if r.sync {
		_, err := r.syncCall(abi.SYS_fsync, int64(fd))
		return err
	}
	return verr(r.asyncCall("fsync", int64(fd)))
}

func (r *workerRT) Dup2(oldfd, newfd int) abi.Errno {
	if r.sync {
		// newfd is implicitly closed: its held leases and staging
		// slots go back.
		if oldfd != newfd {
			r.dropFdLeases(newfd)
			r.dropFdWriteStage(newfd)
		}
		_, err := r.syncCallLeased(abi.SYS_dup2, int64(oldfd), int64(newfd))
		return err
	}
	return verr(r.asyncCall("dup2", int64(oldfd), int64(newfd)))
}

func (r *workerRT) statCall(name string, trap int, path string) (abi.Stat, abi.Errno) {
	if r.sync {
		p, n := r.putStr(path)
		sp := r.alloc(abi.StatSize)
		_, err := r.syncCall(trap, p, n, sp)
		if err != abi.OK {
			return abi.Stat{}, err
		}
		return abi.UnpackStat(r.heap.Bytes()[sp : sp+abi.StatSize]), abi.OK
	}
	ret := r.asyncCall(name, path)
	if err := verr(ret); err != abi.OK {
		return abi.Stat{}, err
	}
	if len(ret) > 2 {
		if m, ok := ret[2].(map[string]browser.Value); ok {
			return abi.StatFromMap(m), abi.OK
		}
	}
	return abi.Stat{}, abi.EIO
}

func (r *workerRT) Stat(path string) (abi.Stat, abi.Errno) {
	return r.statCall("stat", abi.SYS_stat, path)
}
func (r *workerRT) Lstat(path string) (abi.Stat, abi.Errno) {
	return r.statCall("lstat", abi.SYS_lstat, path)
}

// StatBatchAmortized implements posix.StatBatchAmortizer: only the ring
// transport turns a StatBatch into one doorbell; scalar and async pay
// one round trip per path, so probe loops should early-exit there.
func (r *workerRT) StatBatchAmortized() bool { return r.sync && r.ringOK }

// StatBatch fans a stat storm out as ring call frames sharing one
// doorbell: the kernel drains them as a single batch, resolves the run
// against the dentry cache in one pass, and answers with one notify.
// Without the ring (scalar or async transport) it degrades to one stat
// per call, preserving identical results.
func (r *workerRT) StatBatch(paths []string, lstat bool) ([]abi.Stat, []abi.Errno) {
	sts := make([]abi.Stat, len(paths))
	errs := make([]abi.Errno, len(paths))
	one := func(p string) (abi.Stat, abi.Errno) {
		if lstat {
			return r.Lstat(p)
		}
		return r.Stat(p)
	}
	trap := abi.SYS_stat
	if lstat {
		trap = abi.SYS_lstat
	}
	if !r.sync || !r.ringOK {
		for i, p := range paths {
			sts[i], errs[i] = one(p)
		}
		return sts, errs
	}
	i := 0
	for i < len(paths) {
		// Stage what fits in the scratch region, one sub-batch per
		// doorbell.
		var reqs []ringReq
		var bufs []int64
		j := i
		for ; j < len(paths); j++ {
			if !r.scratchFits(int64(len(paths[j])) + abi.StatSize + 32) {
				break
			}
			p, n := r.putStr(paths[j])
			sp := r.alloc(abi.StatSize)
			reqs = append(reqs, ringReq{trap: trap, args: []int64{p, n, sp}})
			bufs = append(bufs, sp)
		}
		if len(reqs) == 0 {
			// Scratch exhausted by a pathological name: degrade to the
			// scalar call for this one and continue batching after.
			sts[i], errs[i] = one(paths[i])
			i++
			continue
		}
		_, rerrs := r.ringCalls(reqs)
		hb := r.heap.Bytes()
		for k := range reqs {
			errs[i+k] = rerrs[k]
			if rerrs[k] == abi.OK {
				sts[i+k] = abi.UnpackStat(hb[bufs[k] : bufs[k]+abi.StatSize])
			}
		}
		i = j
	}
	return sts, errs
}

func (r *workerRT) Fstat(fd int) (abi.Stat, abi.Errno) {
	if r.sync {
		sp := r.alloc(abi.StatSize)
		_, err := r.syncCall(abi.SYS_fstat, int64(fd), sp)
		if err != abi.OK {
			return abi.Stat{}, err
		}
		return abi.UnpackStat(r.heap.Bytes()[sp : sp+abi.StatSize]), abi.OK
	}
	ret := r.asyncCall("fstat", int64(fd))
	if err := verr(ret); err != abi.OK {
		return abi.Stat{}, err
	}
	if len(ret) > 2 {
		if m, ok := ret[2].(map[string]browser.Value); ok {
			return abi.StatFromMap(m), abi.OK
		}
	}
	return abi.Stat{}, abi.EIO
}

func (r *workerRT) Access(path string, mode int) abi.Errno {
	if r.sync {
		p, n := r.putStr(path)
		_, err := r.syncCall(abi.SYS_access, p, n, int64(mode))
		return err
	}
	return verr(r.asyncCall("access", path, int64(mode)))
}

func (r *workerRT) Readlink(path string) (string, abi.Errno) {
	if r.sync {
		p, n := r.putStr(path)
		bp := r.alloc(4096)
		ret, err := r.syncCall(abi.SYS_readlink, p, n, bp, 4096)
		if err != abi.OK {
			return "", err
		}
		return string(r.heap.Bytes()[bp : bp+ret]), abi.OK
	}
	ret := r.asyncCall("readlink", path)
	if err := verr(ret); err != abi.OK {
		return "", err
	}
	s, _ := ret[2].(string)
	return s, abi.OK
}

func (r *workerRT) Utimes(path string, atime, mtime int64) abi.Errno {
	if r.sync {
		p, n := r.putStr(path)
		_, err := r.syncCall(abi.SYS_utimes, p, n, atime, mtime)
		return err
	}
	return verr(r.asyncCall("utimes", path, atime, mtime))
}

func (r *workerRT) pathCall(name string, trap int, path string, extra ...int64) abi.Errno {
	if r.sync {
		p, n := r.putStr(path)
		args := append([]int64{p, n}, extra...)
		_, err := r.syncCall(trap, args...)
		return err
	}
	vargs := []browser.Value{path}
	for _, e := range extra {
		vargs = append(vargs, e)
	}
	return verr(r.asyncCall(name, vargs...))
}

func (r *workerRT) Mkdir(path string, mode uint32) abi.Errno {
	return r.pathCall("mkdir", abi.SYS_mkdir, path, int64(mode))
}
func (r *workerRT) Rmdir(path string) abi.Errno  { return r.pathCall("rmdir", abi.SYS_rmdir, path) }
func (r *workerRT) Unlink(path string) abi.Errno { return r.pathCall("unlink", abi.SYS_unlink, path) }

func (r *workerRT) Rename(oldp, newp string) abi.Errno {
	if r.sync {
		op, on := r.putStr(oldp)
		np, nn := r.putStr(newp)
		_, err := r.syncCall(abi.SYS_rename, op, on, np, nn)
		return err
	}
	return verr(r.asyncCall("rename", oldp, newp))
}

func (r *workerRT) Symlink(target, link string) abi.Errno {
	if r.sync {
		tp, tn := r.putStr(target)
		lp, ln := r.putStr(link)
		_, err := r.syncCall(abi.SYS_symlink, tp, tn, lp, ln)
		return err
	}
	return verr(r.asyncCall("symlink", target, link))
}

func (r *workerRT) Getdents(fd int) ([]abi.Dirent, abi.Errno) {
	if r.sync {
		const bufLen = 64 * 1024
		bp := r.alloc(bufLen)
		ret, err := r.syncCall(abi.SYS_getdents, int64(fd), bp, bufLen)
		if err != abi.OK {
			return nil, err
		}
		return abi.UnpackDirents(r.heap.Bytes()[bp : bp+ret]), abi.OK
	}
	ret := r.asyncCall("getdents", int64(fd))
	if err := verr(ret); err != abi.OK {
		return nil, err
	}
	var out []abi.Dirent
	if len(ret) > 2 {
		if arr, ok := ret[2].([]browser.Value); ok {
			for _, v := range arr {
				if m, ok := v.(map[string]browser.Value); ok {
					out = append(out, abi.DirentFromMap(m))
				}
			}
		}
	}
	return out, abi.OK
}

func (r *workerRT) Chdir(path string) abi.Errno {
	return r.pathCall("chdir", abi.SYS_chdir, path)
}

func (r *workerRT) Getcwd() (string, abi.Errno) {
	if r.sync {
		bp := r.alloc(4096)
		ret, err := r.syncCall(abi.SYS_getcwd, bp, 4096)
		if err != abi.OK {
			return "", err
		}
		return string(r.heap.Bytes()[bp : bp+ret]), abi.OK
	}
	ret := r.asyncCall("getcwd")
	if err := verr(ret); err != abi.OK {
		return "", err
	}
	s, _ := ret[2].(string)
	return s, abi.OK
}

func (r *workerRT) Pipe() (int, int, abi.Errno) {
	if r.sync {
		fp := r.alloc(8)
		_, err := r.syncCall(abi.SYS_pipe2, fp)
		if err != abi.OK {
			return -1, -1, err
		}
		b := r.heap.Bytes()
		rfd := int(int32(uint32(b[fp]) | uint32(b[fp+1])<<8 | uint32(b[fp+2])<<16 | uint32(b[fp+3])<<24))
		wfd := int(int32(uint32(b[fp+4]) | uint32(b[fp+5])<<8 | uint32(b[fp+6])<<16 | uint32(b[fp+7])<<24))
		return rfd, wfd, abi.OK
	}
	ret := r.asyncCall("pipe2", int64(0))
	if err := verr(ret); err != abi.OK {
		return -1, -1, err
	}
	return int(vi(ret, 2)), int(vi(ret, 3)), abi.OK
}

func (r *workerRT) Spawn(path string, argv, env []string, files []int) (int, abi.Errno) {
	if r.sync {
		pp, pn := r.putStr(path)
		ap, an := r.putStr(posix.JoinNul(argv))
		ep, en := r.putStr(posix.JoinNul(env))
		fdsBuf := make([]byte, 4*len(files))
		for i, fd := range files {
			v := uint32(int32(fd))
			fdsBuf[i*4] = byte(v)
			fdsBuf[i*4+1] = byte(v >> 8)
			fdsBuf[i*4+2] = byte(v >> 16)
			fdsBuf[i*4+3] = byte(v >> 24)
		}
		fp, _ := r.putBytes(fdsBuf)
		ret, err := r.syncCall(abi.SYS_spawn, pp, pn, ap, an, ep, en, fp, int64(len(files)))
		return int(ret), err
	}
	fv := make([]browser.Value, len(files))
	for i, f := range files {
		fv[i] = int64(f)
	}
	ret := r.asyncCall("spawn", path,
		browser.StringArray(argv), browser.StringArray(env), fv)
	return int(vi(ret, 0)), verr(ret)
}

func (r *workerRT) Fork(label string, mem []byte) (int, abi.Errno) {
	if !r.kind.SupportsFork() {
		// §3.2: fork is an asynchronous-only call, and only the
		// Emterpreter runtime can serialize its state.
		return -1, abi.ENOSYS
	}
	ret := r.asyncCall("fork", mem, label)
	return int(vi(ret, 0)), verr(ret)
}

func (r *workerRT) Exec(path string, argv, env []string) abi.Errno {
	if r.sync {
		pp, pn := r.putStr(path)
		ap, an := r.putStr(posix.JoinNul(argv))
		ep, en := r.putStr(posix.JoinNul(env))
		_, err := r.syncCall(abi.SYS_exec, pp, pn, ap, an, ep, en)
		return err
	}
	ret := r.asyncCall("exec", path, browser.StringArray(argv), browser.StringArray(env))
	return verr(ret)
}

func (r *workerRT) Wait4(pid int, options int) (int, int, abi.Errno) {
	if r.sync {
		sp := r.alloc(4)
		ret, err := r.syncCall(abi.SYS_wait4, int64(pid), sp, int64(options))
		if err != abi.OK {
			return 0, 0, err
		}
		b := r.heap.Bytes()
		status := int(int32(uint32(b[sp]) | uint32(b[sp+1])<<8 | uint32(b[sp+2])<<16 | uint32(b[sp+3])<<24))
		return int(ret), status, abi.OK
	}
	ret := r.asyncCall("wait4", int64(pid), int64(options))
	if err := verr(ret); err != abi.OK {
		return 0, 0, err
	}
	return int(vi(ret, 0)), int(vi(ret, 2)), abi.OK
}

func (r *workerRT) Exit(code int) {
	panic(exitSentinel{code})
}

func (r *workerRT) Kill(pid, sig int) abi.Errno {
	if r.sync {
		_, err := r.syncCall(abi.SYS_kill, int64(pid), int64(sig))
		return err
	}
	return verr(r.asyncCall("kill", int64(pid), int64(sig)))
}

func (r *workerRT) Signal(sig int, handler func(int)) abi.Errno {
	action := int64(1)
	if handler == nil {
		action = 0
	}
	var err abi.Errno
	if r.sync {
		_, err = r.syncCall(abi.SYS_signal, int64(sig), action)
	} else {
		err = verr(r.asyncCall("signal", int64(sig), action))
	}
	if err == abi.OK {
		if handler == nil {
			delete(r.handlers, sig)
		} else {
			r.handlers[sig] = handler
		}
	}
	return err
}

func (r *workerRT) Socket() (int, abi.Errno) {
	if r.sync {
		ret, err := r.syncCall(abi.SYS_socket)
		return int(ret), err
	}
	ret := r.asyncCall("socket")
	return int(vi(ret, 0)), verr(ret)
}

func (r *workerRT) fdPortCall(name string, trap int, fd, val int) abi.Errno {
	if r.sync {
		_, err := r.syncCall(trap, int64(fd), int64(val))
		return err
	}
	return verr(r.asyncCall(name, int64(fd), int64(val)))
}

func (r *workerRT) Bind(fd, port int) abi.Errno {
	return r.fdPortCall("bind", abi.SYS_bind, fd, port)
}
func (r *workerRT) Listen(fd, backlog int) abi.Errno {
	return r.fdPortCall("listen", abi.SYS_listen, fd, backlog)
}
func (r *workerRT) Connect(fd, port int) abi.Errno {
	return r.fdPortCall("connect", abi.SYS_connect, fd, port)
}

func (r *workerRT) Accept(fd int) (int, abi.Errno) {
	if r.sync {
		ret, err := r.syncCall(abi.SYS_accept, int64(fd))
		return int(ret), err
	}
	ret := r.asyncCall("accept", int64(fd))
	return int(vi(ret, 0)), verr(ret)
}

func (r *workerRT) Getsockname(fd int) (int, abi.Errno) {
	if r.sync {
		ret, err := r.syncCall(abi.SYS_getsockname, int64(fd))
		return int(ret), err
	}
	ret := r.asyncCall("getsockname", int64(fd))
	return int(vi(ret, 0)), verr(ret)
}

// AcceptBatch drains the listener backlog as non-blocking accepts. On
// the ring transport all max accept frames share ONE doorbell (the same
// shape as StatBatch): the kernel drains the run in a single batch pass
// and answers with one notify, so an accept storm costs one crossing.
// Scalar and async transports degrade to one accept per round trip,
// stopping at the first EAGAIN.
func (r *workerRT) AcceptBatch(fd, max int) ([]int, abi.Errno) {
	if max <= 0 {
		return nil, abi.OK
	}
	if r.sync && r.ringOK {
		reqs := make([]ringReq, max)
		for i := range reqs {
			reqs[i] = ringReq{trap: abi.SYS_accept, args: []int64{int64(fd), int64(abi.O_NONBLOCK)}}
		}
		rets, errs := r.ringCalls(reqs)
		var fds []int
		for i := range rets {
			if errs[i] != abi.OK {
				if errs[i] == abi.EAGAIN || len(fds) > 0 {
					break
				}
				return nil, errs[i]
			}
			fds = append(fds, int(rets[i]))
		}
		return fds, abi.OK
	}
	var fds []int
	for len(fds) < max {
		var ret int64
		var err abi.Errno
		if r.sync {
			ret, err = r.syncCall(abi.SYS_accept, int64(fd), int64(abi.O_NONBLOCK))
		} else {
			rv := r.asyncCall("accept", int64(fd), int64(abi.O_NONBLOCK))
			ret, err = vi(rv, 0), verr(rv)
		}
		if err != abi.OK {
			if err == abi.EAGAIN || len(fds) > 0 {
				break
			}
			return nil, err
		}
		fds = append(fds, int(ret))
	}
	return fds, abi.OK
}

// Poll stages the pollfd array in scratch (sync) or as a flat
// [fd, events, ...] argument list (async); revents travel back through
// the shared heap or the reply array and are written into fds in place.
func (r *workerRT) Poll(fds []abi.Pollfd, timeoutNs int64) (int, abi.Errno) {
	if len(fds) == 0 {
		return 0, abi.EINVAL
	}
	if r.sync {
		buf := make([]byte, len(fds)*abi.PollfdSize)
		abi.PackPollfds(buf, fds)
		ptr, blen := r.putBytes(buf)
		ret, err := r.syncCall(abi.SYS_poll, ptr, int64(len(fds)), timeoutNs)
		if err != abi.OK {
			return int(ret), err
		}
		got := abi.UnpackPollfds(r.heap.Bytes()[ptr:ptr+blen], len(fds))
		for i := range fds {
			fds[i].Revents = got[i].Revents
		}
		return int(ret), abi.OK
	}
	raw := make([]browser.Value, 0, len(fds)*2)
	for _, f := range fds {
		raw = append(raw, int64(f.Fd), int64(f.Events))
	}
	ret := r.asyncCall("poll", raw, timeoutNs)
	if err := verr(ret); err != abi.OK {
		return int(vi(ret, 0)), err
	}
	if len(ret) > 2 {
		if arr, ok := ret[2].([]browser.Value); ok {
			for i := range fds {
				fds[i].Revents = 0
				if i < len(arr) {
					if v, ok := arr[i].(int64); ok {
						fds[i].Revents = uint32(v)
					}
				}
			}
		}
	}
	return int(vi(ret, 0)), abi.OK
}

func (r *workerRT) Setfl(fd, flags int) abi.Errno {
	return r.fdPortCall("setfl", abi.SYS_setfl, fd, flags)
}

func (r *workerRT) CPU(ns int64) {
	r.sim.Charge(int64(float64(ns) * r.cost.Mult))
}

func (r *workerRT) CPU64(ns int64) {
	r.sim.Charge(int64(float64(ns) * r.cost.Int64Mult))
}

func (r *workerRT) RuntimeName() string { return string(r.kind) }
