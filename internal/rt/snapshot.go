package rt

import (
	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/snapshot"
)

// Process-side half of the checkpoint/fork subsystem (internal/snapshot):
// a first boot captures its post-boot state with one "snapcap" call, and
// a clone boot restores the captured image instead of re-running init —
// one combined "restore" round trip replaces the personality + ring +
// pagepool negotiation sequence, because the image already records what
// those negotiations decided and the restored heap bytes already hold a
// pristine ring layout.

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// captureSnapshot asks the kernel to freeze this process's post-boot
// state as the runtime's snapshot image. Called once, on the first cold
// boot of a runtime, after transport negotiation and before main() — the
// moment every later process of this runtime would reach identically.
func (r *workerRT) captureSnapshot() {
	var ringOK, poolOK, top int64
	if r.sync {
		ringOK, poolOK, top = b2i(r.ringOK), b2i(r.poolOK), r.scratchTop
	}
	r.asyncCall("snapcap", ringOK, poolOK, top)
}

// restoreFromImage boots this worker as a copy-on-write clone of img.
func (r *workerRT) restoreFromImage(img *snapshot.Image, tracker *snapshot.Tracker) {
	// Host-copy the image heap into this worker's mapping. No virtual
	// time is charged: virtually the clone still shares every page with
	// the image — it reads them through its own mapping of the arena,
	// the same fiction the zero-copy grant path established — and pays
	// per page only on first write (the tracker's COW fault).
	img.CopyHeap(r.heap.Bytes())

	hlen := int64(r.heap.Len())
	wantRing := img.RingOK && hlen >= int64(scratchBase+4*ringRegionSize)
	reqOff := hlen - 2*ringRegionSize
	repOff := hlen - ringRegionSize

	if tracker != nil {
		tracker.SetFaultCharge(func(ns int64) { r.sim.Charge(ns) }, snapshot.CowFaultNs)
		r.heap.SetDirtyTracker(tracker)
		// Pages written through retained views bypass the write
		// barriers, so they privatize up front (they diverge within the
		// first system call anyway): the wake/ret/scratch-base page and
		// the ring regions.
		tracker.MarkPrivate(0)
		if wantRing {
			for p := int(reqOff / snapshot.PageSize); p < tracker.NumPages(); p++ {
				tracker.MarkPrivate(p)
			}
		}
	}

	if wantRing {
		b := r.heap.Bytes()
		r.reqRing = abi.NewRing(b[reqOff : reqOff+ringRegionSize])
		r.repRing = abi.NewRing(b[repOff : repOff+ringRegionSize])
		r.reqRing.Reset()
		r.repRing.Reset()
	}

	// One combined registration replaces the three-negotiation boot
	// sequence: personality (heap + offsets), ring regions, and the
	// page-pool mapping, accepted or refused per the kernel's flags.
	ret := r.asyncCall("restore", r.heap, int64(syncRetOff), int64(syncWaitOff),
		b2i(wantRing), reqOff, int64(ringRegionSize), repOff, int64(ringRegionSize),
		b2i(img.PoolOK))
	if verr(ret) != abi.OK {
		// Restore refused: fall back to the cold negotiation sequence
		// (the heap bytes are a superset of a fresh boot's, so this is
		// safe — just slower).
		r.asyncCall("personality", r.heap, int64(syncRetOff), int64(syncWaitOff))
		r.negotiateRing()
		r.negotiatePagePool()
		return
	}
	if wantRing && vi(ret, 2) != 0 {
		r.ringOK = true
		r.scratchTop = reqOff
	}
	if len(ret) > 4 {
		if sab, ok := ret[4].(*browser.SAB); ok && sab != nil {
			r.pool = sab
			r.poolOK = true
			r.wgOK = true
		}
	}
}
