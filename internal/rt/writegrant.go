package rt

import (
	"repro/internal/abi"
)

// Process side of the zero-copy write path and the batched grant read.
//
// Write direction: the runtime leases *empty* page-pool slots from the
// kernel (wgalloc), stages payload bytes into them through its own
// mapping of the arena, and submits (slot, off, len) references with
// writeg — the kernel adopts the referenced bytes in place and never
// copies the payload. Staging slots are held per descriptor; a filled
// slot's reclaim frame rides the same doorbell as the writeg frame that
// last referenced it (after it — the kernel retires the staging lease
// in frame order).
//
// Read direction: ReadBatch pushes a run of same-fd readg frames into
// one doorbell; the kernel answers the run with a single vectored cache
// pass and one wake (core.dispatchReadgRun).

// wgPageSize is the staging granularity — one pool slot.
const wgPageSize = abi.GrantPageSize

// maxStageSlots mirrors the kernel's per-task staging cap: a 1 MiB
// window, wide enough that one writeg covers writes the scratch region
// could not carry in one classic call.
const maxStageSlots = 64

// wgallocBatch is the minimum slots requested per allocation doorbell:
// an allocation is a full kernel round trip, so small sequential writes
// lease a few slots ahead and fill them across later writes instead of
// knocking every 16 KiB. Surplus slots return on close/dup2/exec like
// any held stage.
const wgallocBatch = 4

// stagedSlot is one leased, partially filled staging slot.
type stagedSlot struct {
	g    abi.PageGrant
	used int
}

// writeStage is the staging state held for one descriptor.
type writeStage struct {
	slots []stagedSlot
}

// wgalloc leases up to n empty staging slots from the kernel. An empty
// result means "stay on the copy path for this write"; ENOSYS disables
// the write-grant path for good.
func (r *workerRT) wgalloc(n int) []abi.PageGrant {
	if n > maxStageSlots {
		n = maxStageSlots
	}
	areaLen := int64(abi.GrantAreaSize(n))
	if !r.scratchFits(areaLen + r.unleaseStageBytes() + 64) {
		return nil
	}
	reqs := r.stageUnleases(nil)
	grantPtr := r.alloc(areaLen)
	reqs = append(reqs, ringReq{trap: abi.SYS_wgalloc, args: []int64{int64(n), grantPtr}})
	rets, errs := r.ringCalls(reqs)
	last := len(reqs) - 1
	if errs[last] == abi.ENOSYS {
		r.wgOK = false
		return nil
	}
	if errs[last] != abi.OK || rets[last] <= 0 {
		return nil
	}
	kind, grants := abi.UnpackGrantReply(r.heap.Bytes()[grantPtr : grantPtr+areaLen])
	if kind != abi.GrantMapped {
		return nil
	}
	return grants
}

// dropFdWriteStage queues every staging slot held for fd for return
// (close and dup2-over). The slots' reclaim frames ride the caller's
// doorbell via the shared pendingUnlease list.
func (r *workerRT) dropFdWriteStage(fd int) {
	ws := r.wstage[fd]
	if ws == nil {
		return
	}
	for _, s := range ws.slots {
		r.pendingUnlease = append(r.pendingUnlease, s.g.Slot)
	}
	delete(r.wstage, fd)
}

// writeStaged writes b through the zero-copy staging path. ok=false
// means nothing was submitted and the caller should run the classic
// copy path instead; ok=true is a complete answer (including a plain
// finish for a tail the staging allocator could not cover).
func (r *workerRT) writeStaged(fd int, b []byte) (int, abi.Errno, bool) {
	total := 0
	for total < len(b) {
		n, err, ok := r.writeStagedOnce(fd, b[total:])
		if !ok {
			break
		}
		if err != abi.OK {
			// POSIX short-write semantics: bytes already written make the
			// call a success; EAGAIN only reports a fruitless attempt.
			if err == abi.EAGAIN && total+n > 0 {
				return total + n, abi.OK, true
			}
			return total + n, err, true
		}
		if n <= 0 {
			return total, abi.EIO, true
		}
		total += n
	}
	if total < len(b) {
		if total == 0 {
			return 0, abi.OK, false
		}
		// Staging refused mid-stream (slots exhausted, scratch held by
		// an interleaved batch): finish the tail on the copy path so the
		// caller still sees one complete write.
		m, err := r.writePlain(fd, b[total:])
		return total + m, err, true
	}
	return total, abi.OK, true
}

// writeStagedOnce stages one pass of b — up to the free space in fd's
// held slots plus one wgalloc's worth of fresh ones — and submits the
// references with a single writeg frame. Slots filled to the brim are
// retired on the same doorbell, AFTER the writeg frame that references
// them (the kernel drops the staging lease in frame order). When the
// window left after staging would not cover another write this size,
// a replenishing wgalloc frame rides the SAME doorbell, after the
// unleases — the kernel hands the just-retired slots straight back —
// so steady-state bulk writes cost one round trip, exactly like the
// copy path, with no payload bytes crossing the kernel.
func (r *workerRT) writeStagedOnce(fd int, b []byte) (int, abi.Errno, bool) {
	// The whole submission must fit scratch before any byte is staged:
	// the packed reference list, any piggybacked lease reclaim, and the
	// grant-reply area of a piggybacked replenishment.
	if !r.scratchFits(int64(abi.WriteRefSize*(maxStageSlots+1)) +
		int64(abi.GrantAreaSize(maxStageSlots)) + r.unleaseStageBytes() + 64) {
		return 0, abi.OK, false
	}
	ws := r.wstage[fd]
	if ws == nil {
		ws = &writeStage{}
		r.wstage[fd] = ws
	}
	free := 0
	for _, s := range ws.slots {
		free += wgPageSize - s.used
	}
	if free < len(b) {
		need := (len(b) - free + wgPageSize - 1) / wgPageSize
		if need < wgallocBatch {
			need = wgallocBatch
		}
		if room := maxStageSlots - len(ws.slots); need > room {
			need = room
		}
		if need > 0 {
			for _, g := range r.wgalloc(need) {
				ws.slots = append(ws.slots, stagedSlot{g: g})
				free += wgPageSize
			}
		}
	}
	if free == 0 {
		return 0, abi.OK, false
	}
	// Stage through the arena mapping and build the reference list. The
	// guest-side copy into its own mapped pages is the write's only
	// per-byte move — the kernel sees 12-byte references.
	pool := r.pool.Bytes()
	var refs []abi.WriteRef
	staged := 0
	for i := range ws.slots {
		if staged == len(b) {
			break
		}
		s := &ws.slots[i]
		space := wgPageSize - s.used
		if space == 0 {
			continue
		}
		take := len(b) - staged
		if take > space {
			take = space
		}
		copy(pool[s.g.Off+int64(s.used):], b[staged:staged+take])
		refs = append(refs, abi.WriteRef{Slot: s.g.Slot, Off: uint32(s.used), Len: uint32(take)})
		s.used += take
		staged += take
	}
	packed := make([]byte, abi.WriteRefSize*len(refs))
	abi.PackWriteRefs(packed, refs)
	ptr, _ := r.putBytes(packed)
	reqs := []ringReq{{trap: abi.SYS_writeg, args: []int64{int64(fd), ptr, int64(len(refs))}}}
	// Retire brimful slots behind the writeg frame that references them.
	kept := ws.slots[:0]
	for _, s := range ws.slots {
		if s.used == wgPageSize {
			r.pendingUnlease = append(r.pendingUnlease, s.g.Slot)
		} else {
			kept = append(kept, s)
		}
	}
	ws.slots = kept
	reqs = r.stageUnleases(reqs)
	// Replenish on the same doorbell: if the window left over would not
	// cover another write this size, ask for the difference behind the
	// unlease frames (the kernel recycles the retired slots in frame
	// order), so the next write stages without its own allocation trip.
	freeAfter := 0
	for _, s := range ws.slots {
		freeAfter += wgPageSize - s.used
	}
	needNext := 0
	var replPtr, replArea int64
	if freeAfter < len(b) {
		needNext = (len(b) - freeAfter + wgPageSize - 1) / wgPageSize
		if needNext < wgallocBatch {
			needNext = wgallocBatch
		}
		if room := maxStageSlots - len(ws.slots); needNext > room {
			needNext = room
		}
	}
	if needNext > 0 {
		replArea = int64(abi.GrantAreaSize(needNext))
		replPtr = r.alloc(replArea)
		reqs = append(reqs, ringReq{trap: abi.SYS_wgalloc,
			args: []int64{int64(needNext), replPtr}})
	}
	rets, errs := r.ringCalls(reqs)
	if needNext > 0 {
		last := len(reqs) - 1
		if errs[last] == abi.OK && rets[last] > 0 {
			kind, grants := abi.UnpackGrantReply(r.heap.Bytes()[replPtr : replPtr+replArea])
			if kind == abi.GrantMapped {
				for _, g := range grants {
					ws.slots = append(ws.slots, stagedSlot{g: g})
				}
			}
		}
	}
	if errs[0] == abi.ENOSYS {
		// The kernel stopped honouring write grants; the staged bytes
		// are abandoned (the slots go back on close) and the caller
		// restarts on the copy path.
		r.wgOK = false
		return 0, abi.OK, false
	}
	if errs[0] != abi.OK {
		return 0, errs[0], true
	}
	return int(rets[0]), abi.OK, true
}

// ReadBatch reads up to frames*chunk bytes from fd by pushing `frames`
// grant-read frames into as few doorbells as the scratch region allows
// (usually one) — the kernel answers each same-fd run with one vectored
// cache pass and one wake. Stops early at end of file. Falls back to
// sequential reads off the fast path.
func (r *workerRT) ReadBatch(fd, chunk, frames int) ([]byte, abi.Errno) {
	if chunk <= 0 || frames <= 0 {
		return nil, abi.EINVAL
	}
	if !(r.sync && r.ringOK && r.poolOK) {
		var out []byte
		for i := 0; i < frames; i++ {
			b, err := r.Read(fd, chunk)
			if err != abi.OK {
				return out, err
			}
			if len(b) == 0 {
				break
			}
			out = append(out, b...)
		}
		return out, abi.OK
	}
	mg := abi.MaxGrantsFor(chunk)
	if mg > maxGrantsPerRead {
		mg = maxGrantsPerRead
	}
	areaLen := int64(abi.GrantAreaSize(mg))
	perFrame := int64(chunk) + areaLen + 32
	var out []byte
	left := frames
	for left > 0 {
		if !r.scratchFits(perFrame + r.unleaseStageBytes() + 64) {
			// Scratch held by an interleaved batch: finish sequentially.
			b, err := r.Read(fd, chunk)
			if err != abi.OK {
				return out, err
			}
			if len(b) == 0 {
				return out, abi.OK
			}
			out = append(out, b...)
			left--
			continue
		}
		// Pack as many frames as the scratch region can stage buffers
		// and grant areas for; they form one same-fd readg run.
		reqs := r.stageUnleases(nil)
		base := len(reqs)
		type frameArea struct{ bufPtr, grantPtr int64 }
		var areas []frameArea
		for len(areas) < left && r.scratchFits(perFrame+64) {
			bufPtr := r.alloc(int64(chunk))
			grantPtr := r.alloc(areaLen)
			reqs = append(reqs, ringReq{trap: abi.SYS_readg,
				args: []int64{int64(fd), bufPtr, int64(chunk), grantPtr, int64(mg), int64(chunk)}})
			areas = append(areas, frameArea{bufPtr, grantPtr})
		}
		rets, errs := r.ringCalls(reqs)
		left -= len(areas)
		hb := r.heap.Bytes()
		pool := r.pool.Bytes()
		for i, fa := range areas {
			ret, err := rets[base+i], errs[base+i]
			if err != abi.OK {
				return out, err
			}
			if ret <= 0 {
				return out, abi.OK
			}
			kind, grants := abi.UnpackGrantReply(hb[fa.grantPtr : fa.grantPtr+areaLen])
			if kind != abi.GrantMapped {
				out = append(out, hb[fa.bufPtr:fa.bufPtr+ret]...)
				continue
			}
			// Mapped reply: drain the grants from the arena mapping and
			// queue them straight for return — a batch reader has no
			// sequential re-read window to hold them open for.
			for _, g := range grants {
				out = append(out, pool[g.Off:g.Off+int64(g.Len)]...)
				r.pendingUnlease = append(r.pendingUnlease, g.Slot)
			}
		}
	}
	return out, abi.OK
}
