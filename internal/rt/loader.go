package rt

import (
	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/posix"
)

// Loader returns the kernel executable loader: it parses the
// "compiled to JavaScript" header of an executable staged in the Browsix
// file system and produces the Web Worker entry point that boots the
// matching runtime around the registered program.
func Loader(sys *browser.System) core.Loader {
	return func(script []byte) (func(*browser.Worker), abi.Errno) {
		name, kindStr, ok := posix.ParseExecutable(script)
		if !ok {
			return nil, abi.ENOEXEC
		}
		kind := Kind(kindStr)
		if !kind.IsBrowsix() {
			return nil, abi.ENOEXEC
		}
		prog := posix.Lookup(name)
		if prog == nil {
			return nil, abi.ENOENT
		}
		return func(w *browser.Worker) { bootWorker(sys, w, prog, kind) }, abi.OK
	}
}

// InstallExecutable stages a program's executable into a filesystem image
// map (path -> bytes) with a modelled artifact size for its runtime.
func InstallExecutable(image map[string][]byte, path, progName string, kind Kind) {
	image[path] = posix.Executable(progName, string(kind), ArtifactSize(kind))
}
