package expt

import (
	"testing"

	"repro/internal/posix"
	"repro/internal/rt"
	"repro/internal/sched"
)

// TestSyscallProbeConstruction covers the probe registration path: the
// program is in the registry, runs to completion on the host baseline,
// and reports a positive per-call cost.
func TestSyscallProbeConstruction(t *testing.T) {
	if posix.Lookup("syscall-probe") == nil {
		t.Fatal("syscall-probe not registered")
	}
	// Re-registration is a no-op, not a panic.
	registerSyscallProbe("syscall-probe")

	sim := sched.New()
	sim.MaxSteps = 50_000_000
	res := rt.RunHost(sim, stageFig9Host(sim), rt.NativeKind, []string{"syscall-probe"}, nil, "/")
	if res.Code != 0 {
		t.Fatalf("probe exited %d: %s", res.Code, res.Stderr)
	}
	if got := perCall(res.Stdout, res.Code); got <= 0 {
		t.Fatalf("per-call cost %d, want > 0", got)
	}
}

// TestMeasureSyscallsOrdering checks the §3.2/§6 shape: native syscalls
// are cheapest, the sync (SharedArrayBuffer) transport beats async, and
// the Emterpreter's unwind/rewind makes async worse still.
func TestMeasureSyscallsOrdering(t *testing.T) {
	s := MeasureSyscalls()
	if s.NativeNs <= 0 || s.SyncNs <= 0 || s.AsyncNs <= 0 || s.AsyncEmterpNs <= 0 {
		t.Fatalf("non-positive measurement: %+v", s)
	}
	if s.NativeNs >= s.SyncNs {
		t.Errorf("native (%d) should be cheaper than sync (%d)", s.NativeNs, s.SyncNs)
	}
	if s.SyncNs >= s.AsyncNs {
		t.Errorf("sync (%d) should be cheaper than async (%d)", s.SyncNs, s.AsyncNs)
	}
	if s.AsyncNs >= s.AsyncEmterpNs {
		t.Errorf("async (%d) should be cheaper than Emterpreter async (%d)", s.AsyncNs, s.AsyncEmterpNs)
	}
}

// TestFig9TableShape drives the experiment table rows and checks the
// paper's qualitative result: Browsix overhead over Node, Node over
// native.
func TestFig9TableShape(t *testing.T) {
	rows := Fig9All()
	if len(rows) != 2 {
		t.Fatalf("Fig9All returned %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Command == "" {
			t.Error("row without a command label")
		}
		if row.NativeNs <= 0 || row.NodeNs <= 0 || row.BrowsixNs <= 0 {
			t.Errorf("%s: non-positive timing %+v", row.Command, row)
		}
		if row.NativeNs >= row.NodeNs {
			t.Errorf("%s: native (%d) should beat node (%d)", row.Command, row.NativeNs, row.NodeNs)
		}
		if row.NodeNs >= row.BrowsixNs {
			t.Errorf("%s: node-on-host (%d) should beat Browsix (%d)", row.Command, row.NodeNs, row.BrowsixNs)
		}
	}
}
