package expt

import (
	"repro/internal/abi"
	"repro/internal/posix"
)

// registerSyscallProbe installs the microbenchmark program: a loop of
// null-ish system calls (getppid — a genuine kernel round trip on every
// transport), reporting the loop's virtual duration on stdout.
//
// The probe measures the *loop only* (not worker start-up or runtime
// init), isolating the per-syscall transport cost the paper's §3.2/§6
// discuss: message passing ~three orders of magnitude over a native
// syscall; the sync transport several times cheaper than async.
func registerSyscallProbe(name string) {
	if posix.Lookup(name) != nil {
		return
	}
	posix.Register(&posix.Program{Name: name, Main: func(p posix.Proc) int {
		// Warm the path once.
		p.Getppid()
		startStat, err := p.Stat("/")
		if err != abi.OK {
			return 1
		}
		_ = startStat
		start := nowVia(p)
		for i := 0; i < syscallIters; i++ {
			p.Getppid()
		}
		elapsed := nowVia(p) - start
		posix.Fprintf(p, abi.Stdout, "%d\n", elapsed)
		return 0
	}})
}

// nowVia reads the process's current virtual time through a stat of a
// file whose mtime the kernel refreshes... simpler: utimes+stat on a
// scratch file. To avoid extra machinery the runtimes expose time via the
// mtime of a file the probe touches.
func nowVia(p posix.Proc) int64 {
	// Touch a scratch file; its mtime is the kernel's current clock.
	path := "/.probe-clock"
	fd, _ := p.Open(path, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, 0o600)
	p.Write(fd, []byte("t"))
	p.Close(fd)
	st, _ := p.Stat(path)
	return st.Mtime
}
