// Package expt is the evaluation harness: one function per table/figure
// in the paper's §5 (plus the §6 microbenchmarks), each returning the
// measured virtual-time numbers that cmd/experiments prints and
// bench_test.go reports. EXPERIMENTS.md records paper-vs-measured.
package expt

import (
	"fmt"
	"strings"

	browsix "repro"
	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/fs"
	"repro/internal/meme"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/tex"
)

// Ms converts virtual ns to milliseconds.
func Ms(ns int64) float64 { return float64(ns) / 1e6 }

// ---------------------------------------------------------------------------
// Figure 9: utilities under Native / Node.js / Browsix.
// ---------------------------------------------------------------------------

// Fig9Row is one utility's timings.
type Fig9Row struct {
	Command   string
	NativeNs  int64
	NodeNs    int64
	BrowsixNs int64
}

// nodeBinarySize models /usr/bin/node, the file sha1sum hashes in the
// paper's benchmark.
const nodeBinarySize = 1 << 20

// stageFig9Host builds the host-side filesystem image: the coreutils
// binaries in /usr/bin (so ls has entries to list) plus /usr/bin/node.
func stageFig9Host(sim *sched.Sim) *fs.FileSystem {
	clock := func() int64 { return sim.Now() }
	fsys := fs.NewFileSystem(fs.NewMemFS(clock), clock)
	fsys.MkdirAll("/usr/bin", 0o755, func(abi.Errno) {})
	for i := 0; i < 28; i++ {
		fsys.WriteFile(fmt.Sprintf("/usr/bin/util%02d", i), []byte("#!/bin/sh\n"), 0o755, func(abi.Errno) {})
	}
	body := make([]byte, nodeBinarySize)
	for i := range body {
		body[i] = byte(i * 31)
	}
	fsys.WriteFile("/usr/bin/node", body, 0o755, func(abi.Errno) {})
	return fsys
}

// stageFig9Browsix boots a Browsix world with the same content.
func stageFig9Browsix() *browsix.Instance {
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	body := make([]byte, nodeBinarySize)
	for i := range body {
		body[i] = byte(i * 31)
	}
	in.WriteFile("/usr/bin/node", body)
	return in
}

// Fig9 measures one command under the three configurations.
func Fig9(argv ...string) Fig9Row {
	row := Fig9Row{Command: strings.Join(argv, " ")}

	simN := sched.New()
	simN.MaxSteps = 50_000_000
	resN := rt.RunHost(simN, stageFig9Host(simN), rt.NativeKind, argv, nil, "/")
	row.NativeNs = resN.Elapsed

	simJ := sched.New()
	simJ.MaxSteps = 50_000_000
	resJ := rt.RunHost(simJ, stageFig9Host(simJ), rt.NodeHostKind, argv, nil, "/")
	row.NodeNs = resJ.Elapsed

	in := stageFig9Browsix()
	res := in.RunCommand(strings.Join(argv, " "))
	if res.Code != 0 {
		panic(fmt.Sprintf("expt: fig9 %v exited %d: %s", argv, res.Code, res.Stderr))
	}
	row.BrowsixNs = res.Elapsed
	return row
}

// Fig9All runs the table's two rows (sha1sum on /usr/bin/node, ls on
// /usr/bin).
func Fig9All() []Fig9Row {
	return []Fig9Row{
		Fig9("sha1sum", "/usr/bin/node"),
		Fig9("ls", "/usr/bin"),
	}
}

// ---------------------------------------------------------------------------
// §5.2 LaTeX editor.
// ---------------------------------------------------------------------------

// LatexResult carries the three configurations' build times.
type LatexResult struct {
	NativeNs      int64 // native pdflatex, single run
	SyncNs        int64 // Browsix build, synchronous syscalls (Chrome)
	AsyncNs       int64 // Browsix build, Emterpreter + async syscalls
	FilesFetched  int
	BytesFetched  int64
	TreeFileCount int
}

// Latex measures the one-page-paper build in all three configurations.
func Latex() LatexResult {
	var out LatexResult
	docTex, docBib := tex.SampleDocument()
	cfg := tex.DefaultTree()
	tree := tex.BuildTree(cfg)
	out.TreeFileCount = len(tree)

	// Native baseline: pdflatex directly on a local file system.
	sim := sched.New()
	sim.MaxSteps = 50_000_000
	clock := func() int64 { return sim.Now() }
	fsys := fs.NewFileSystem(fs.NewMemFS(clock), clock)
	fsys.MkdirAll("/proj", 0o755, func(abi.Errno) {})
	fsys.MkdirAll(tex.TexRoot+"/cls", 0o755, func(abi.Errno) {})
	fsys.MkdirAll(tex.TexRoot+"/sty", 0o755, func(abi.Errno) {})
	fsys.MkdirAll(tex.TexRoot+"/fonts", 0o755, func(abi.Errno) {})
	for p, b := range tree {
		if strings.HasPrefix(p, "/doc/") {
			continue
		}
		fsys.WriteFile(tex.TexRoot+p, b, 0o644, func(abi.Errno) {})
	}
	fsys.WriteFile("/proj/main.tex", []byte(docTex), 0o644, func(abi.Errno) {})
	fsys.WriteFile("/proj/main.bib", []byte(docBib), 0o644, func(abi.Errno) {})
	res := rt.RunHost(sim, fsys, rt.NativeKind, []string{"pdflatex", "main.tex"}, nil, "/proj")
	if res.Code != 0 {
		panic("expt: native pdflatex failed: " + string(res.Stderr))
	}
	out.NativeNs = res.Elapsed

	// Browsix, synchronous syscalls.
	inS := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inS)
	httpfs := browsix.InstallTexProject(inS, cfg, browsix.TexSync, docTex, docBib)
	start := inS.Now()
	code, log := inS.BuildPDF()
	if code != 0 {
		panic("expt: sync latex build failed: " + log)
	}
	out.SyncNs = inS.Now() - start
	out.FilesFetched = httpfs.FetchCount
	out.BytesFetched = httpfs.BytesFetched

	// Browsix, Emterpreter + asynchronous syscalls.
	inA := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inA)
	browsix.InstallTexProject(inA, cfg, browsix.TexAsync, docTex, docBib)
	start = inA.Now()
	code, log = inA.BuildPDF()
	if code != 0 {
		panic("expt: async latex build failed: " + log)
	}
	out.AsyncNs = inA.Now() - start
	return out
}

// ---------------------------------------------------------------------------
// §5.2 meme generator.
// ---------------------------------------------------------------------------

// MemeResult carries the case study's request timings.
type MemeResult struct {
	ListLocalServerNs int64 // native server on the same machine
	ListChromeNs      int64 // in-Browsix, Chrome profile
	ListFirefoxNs     int64 // in-Browsix, Firefox profile
	ListEC2Ns         int64 // remote server across a WAN
	GenServerNs       int64 // generation, native server
	GenBrowsixNs      int64 // generation, in-Browsix (GopherJS)
}

// memeBody is the standard generation request.
func memeBody() []byte {
	return []byte(`{"template":"doge","top":"MUCH UNIX","bottom":"VERY BROWSER"}`)
}

// localRTT models a server on the same machine (loopback); ec2RTT a
// wide-area round trip.
const (
	localRTT = 300_000 // 0.3ms loopback+stack
	ec2RTT   = 25_000_000
)

// Meme measures the case study's four request paths.
func Meme() MemeResult {
	var out MemeResult

	measure := func(prof browser.Profile) (int64, int64) {
		in := browsix.Boot(browsix.Config{Browser: &prof})
		browsix.InstallBase(in)
		browsix.InstallMeme(in, ec2RTT)
		in.StartMemeServer()
		// Warm up one request (the paper warms 20 of 100).
		in.FetchSync("GET", meme.Port, "/api/templates", nil)
		t0 := in.Now()
		r := in.FetchSync("GET", meme.Port, "/api/templates", nil)
		list := in.Now() - t0
		if r.Status != 200 {
			panic("expt: meme list failed")
		}
		t0 = in.Now()
		g := in.FetchSync("POST", meme.Port, "/api/meme", memeBody())
		gen := in.Now() - t0
		if g.Status != 200 {
			panic("expt: meme gen failed")
		}
		return list, gen
	}
	out.ListChromeNs, out.GenBrowsixNs = measure(browser.Chrome())
	out.ListFirefoxNs, _ = measure(browser.Firefox())

	// Remote servers: same machine (local) and EC2 (WAN).
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	browsix.InstallMeme(in, ec2RTT)
	in.Net.AddHost(meme.NewRemoteHost("local-server", localRTT, 2))
	t0 := in.Now()
	in.FetchRemoteSync("local-server", "GET", "/api/templates", nil)
	out.ListLocalServerNs = in.Now() - t0
	t0 = in.Now()
	in.FetchRemoteSync(browsix.MemeHostName, "GET", "/api/templates", nil)
	out.ListEC2Ns = in.Now() - t0
	t0 = in.Now()
	g := in.FetchRemoteSync("local-server", "POST", "/api/meme", memeBody())
	out.GenServerNs = in.Now() - t0
	if g.Status != 200 {
		panic("expt: remote meme gen failed")
	}
	return out
}

// ---------------------------------------------------------------------------
// §6 / §3.2 microbenchmarks: syscall transports vs native syscalls.
// ---------------------------------------------------------------------------

// SyscallBench carries per-call costs in ns.
type SyscallBench struct {
	NativeNs      int64 // direct host syscall
	AsyncNs       int64 // Browsix async (postMessage round trip)
	SyncNs        int64 // Browsix sync (SharedArrayBuffer + Atomics)
	AsyncEmterpNs int64 // async from the Emterpreter (adds unwind/rewind)
}

const syscallIters = 200

func init() {
	// The probe issues getppid in a loop — a genuine kernel round trip
	// on every transport (getpid is answered locally from init state).
	registerSyscallProbe("syscall-probe")
}

// MeasureSyscalls runs the probes under each configuration.
func MeasureSyscalls() SyscallBench {
	var out SyscallBench

	sim := sched.New()
	sim.MaxSteps = 50_000_000
	fsys := stageFig9Host(sim)
	res := rt.RunHost(sim, fsys, rt.NativeKind, []string{"syscall-probe"}, nil, "/")
	out.NativeNs = perCall(res.Stdout, res.Code)

	out.AsyncNs = browsixProbe(rt.NodeKind)
	out.SyncNs = browsixProbe(rt.EmSyncKind)
	out.AsyncEmterpNs = browsixProbe(rt.EmAsyncKind)
	return out
}

func browsixProbe(kind rt.Kind) int64 {
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	image := map[string][]byte{}
	rt.InstallExecutable(image, "/usr/bin/syscall-probe", "syscall-probe", kind)
	for p, b := range image {
		in.WriteFile(p, b)
	}
	res := in.RunCommand("/usr/bin/syscall-probe")
	return perCall(res.Stdout, res.Code)
}

// perCall extracts the loop-only duration the probe prints on stdout and
// divides by the iteration count.
func perCall(stdout []byte, code int) int64 {
	if code != 0 {
		panic("expt: syscall probe failed")
	}
	var ns int64
	fmt.Sscanf(string(stdout), "%d", &ns)
	return ns / syscallIters
}

// ---------------------------------------------------------------------------
// §3.6 ablation: lazy vs eager underlay loading.
// ---------------------------------------------------------------------------

// LazyAblation compares time-to-first-build with the Browsix lazy overlay
// against the original BrowserFS behaviour of eagerly fetching the whole
// read-only underlay at initialization.
type LazyAblation struct {
	LazyNs       int64
	EagerNs      int64
	LazyFetches  int
	EagerFetches int
	LazyBytes    int64
	EagerBytes   int64
}

// MeasureLazyAblation runs the LaTeX build both ways.
func MeasureLazyAblation() LazyAblation {
	var out LazyAblation
	docTex, docBib := tex.SampleDocument()
	cfg := tex.DefaultTree()

	lazy := browsix.Boot(browsix.Config{})
	browsix.InstallBase(lazy)
	lhttp := browsix.InstallTexProject(lazy, cfg, browsix.TexSync, docTex, docBib)
	start := lazy.Now()
	if code, log := lazy.BuildPDF(); code != 0 {
		panic("expt: lazy build failed: " + log)
	}
	out.LazyNs = lazy.Now() - start
	out.LazyFetches, out.LazyBytes = lhttp.FetchCount, lhttp.BytesFetched

	eager := browsix.Boot(browsix.Config{})
	browsix.InstallBase(eager)
	ehttp := browsix.InstallTexProject(eager, cfg, browsix.TexSync, docTex, docBib)
	start = eager.Now()
	preloaded := false
	eager.Main(func() { ehttp.Preload(func() { preloaded = true }) })
	eager.RunUntil(func() bool { return preloaded })
	if code, log := eager.BuildPDF(); code != 0 {
		panic("expt: eager build failed: " + log)
	}
	out.EagerNs = eager.Now() - start
	out.EagerFetches, out.EagerBytes = ehttp.FetchCount, ehttp.BytesFetched
	return out
}
