package tex

import (
	"strings"
	"testing"
)

func TestParseTexMacros(t *testing.T) {
	src, _ := SampleDocument()
	d := parseTex(src)
	if d.class != "article" {
		t.Fatalf("class = %q", d.class)
	}
	want := []string{"graphicx", "amsmath", "hyperref"}
	if len(d.packages) != len(want) {
		t.Fatalf("packages = %v", d.packages)
	}
	for i := range want {
		if d.packages[i] != want[i] {
			t.Fatalf("packages = %v", d.packages)
		}
	}
	if len(d.cites) != 3 || d.cites[0] != "browsix" {
		t.Fatalf("cites = %v", d.cites)
	}
	if d.bibdata != "main" || d.bibstyle != "plain" {
		t.Fatalf("bib = %q/%q", d.bibdata, d.bibstyle)
	}
	if d.pages() < 1 {
		t.Fatal("no pages")
	}
}

func TestParseTexDuplicateCites(t *testing.T) {
	d := parseTex(`\cite{a} and \cite{a,b} again \cite{b}`)
	if len(d.cites) != 2 {
		t.Fatalf("cites = %v (want deduped a,b)", d.cites)
	}
}

func TestParseBibEntries(t *testing.T) {
	_, bib := SampleDocument()
	entries := ParseBib(bib)
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries["browsix"]
	if e.Type != "inproceedings" {
		t.Fatalf("type = %q", e.Type)
	}
	if !strings.Contains(e.Fields["author"], "Powers") {
		t.Fatalf("author = %q", e.Fields["author"])
	}
	if entries["emscripten"].Fields["year"] != "2011" {
		t.Fatalf("bare-number field = %q", entries["emscripten"].Fields["year"])
	}
	if entries["emscripten"].Fields["title"] == "" {
		t.Fatal("quoted field missing")
	}
}

func TestParseBibNestedBraces(t *testing.T) {
	entries := ParseBib(`@article{k, title = {Outer {Inner} Rest}, year = {2000}}`)
	if got := entries["k"].Fields["title"]; got != "Outer {Inner} Rest" {
		t.Fatalf("nested braces: %q", got)
	}
}

func TestParseBibGarbageTolerance(t *testing.T) {
	entries := ParseBib("random text @ @article{ok, year={1}} trailing @comment{x}")
	if len(entries) != 1 || entries["ok"].Fields["year"] != "1" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestBuildTreeShape(t *testing.T) {
	cfg := SmallTree()
	tree := BuildTree(cfg)
	if _, ok := tree["/cls/article.cls"]; !ok {
		t.Fatal("article.cls missing")
	}
	if _, ok := tree["/sty/graphicx.sty"]; !ok {
		t.Fatal("graphicx.sty missing")
	}
	if _, ok := tree["/fonts/cmr10.tfm"]; !ok {
		t.Fatal("cmr10.tfm missing")
	}
	want := cfg.Classes + cfg.Packages + cfg.Fonts + cfg.ExtraFiles
	if len(tree) != want {
		t.Fatalf("tree has %d files, want %d", len(tree), want)
	}
	// Dependency chaining: graphicx requires amsmath (pkg 0 -> pkg 1).
	if !strings.Contains(string(tree["/sty/graphicx.sty"]), "\\RequirePackage{amsmath}") {
		t.Fatalf("package chaining missing: %s", tree["/sty/graphicx.sty"][:80])
	}
}

func TestRenderPDFScalesWithDocument(t *testing.T) {
	small := renderPDF(&texDoc{class: "article", body: "short", words: 2}, "", nil)
	big := renderPDF(&texDoc{class: "article", body: strings.Repeat("lorem ipsum ", 2000), words: 4000}, "", nil)
	if len(big) <= len(small) {
		t.Fatal("PDF size does not scale with content")
	}
	if !strings.HasPrefix(string(small), "%PDF-1.5") {
		t.Fatal("missing PDF header")
	}
}

func TestCutMacro(t *testing.T) {
	if v, ok := cutMacro(`\usepackage{tikz}`, `\usepackage{`); !ok || v != "tikz" {
		t.Fatalf("cutMacro = %q %v", v, ok)
	}
	if _, ok := cutMacro(`\usepackage{unclosed`, `\usepackage{`); ok {
		t.Fatal("unclosed macro accepted")
	}
}
