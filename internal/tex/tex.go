// Package tex implements the pdflatex and bibtex workloads of the LaTeX
// editor case study (§2): C programs from TeX Live, compiled in the paper
// with Browsix-enhanced Emscripten. The reproduction preserves the whole
// observable file-system protocol —
//
//   - pdflatex reads the .tex source, resolves \documentclass /
//     \usepackage / fonts against a TeX tree (lazily fetched over HTTP via
//     the overlay file system), consumes .bbl if present, and writes .aux,
//     .log and .pdf;
//   - bibtex reads .aux citations, parses the .bib database, and writes
//     .bbl/.blg;
//   - packages \RequirePackage each other, so one document pulls a
//     dependency cone out of the (multi-gigabyte in spirit) distribution.
//
// CPU cost is charged per byte processed, calibrated so a native build of
// a one-page paper lands near the paper's ~100 ms.
package tex

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

func init() {
	posix.Register(&posix.Program{Name: "pdflatex", Main: pdflatexMain})
	posix.Register(&posix.Program{Name: "bibtex", Main: bibtexMain})
}

// TexRoot is where the TeX distribution is mounted.
const TexRoot = "/usr/local/texlive"

// CPU model (native ns; the runtime multiplier does the rest).
const (
	texStartupNs  = 70_000_000 // format loading, ini processing
	texPerByteNs  = 220        // macro expansion + paragraph building per source byte
	texPerPkgNs   = 900_000    // per package load
	fontPerByteNs = 6          // font metric parsing
	pdfPerByteNs  = 35         // PDF content generation
	bibPerByteNs  = 160        // .bib parsing
)

// ---------------------------------------------------------------------------
// pdflatex
// ---------------------------------------------------------------------------

func pdflatexMain(p posix.Proc) int {
	var job string
	for _, a := range p.Args()[1:] {
		if strings.HasPrefix(a, "-") {
			continue // -interaction=... etc.
		}
		job = a
	}
	if job == "" {
		return texFail(p, "pdflatex", "no input file")
	}
	base := strings.TrimSuffix(job, ".tex")
	src, err := posix.ReadFile(p, base+".tex")
	if err != abi.OK {
		return texFail(p, "pdflatex", "%s.tex: %v", base, err)
	}
	p.CPU(texStartupNs)
	p.CPU(int64(len(src)) * texPerByteNs)

	var log strings.Builder
	fmt.Fprintf(&log, "This is pdfTeX (Browsix reproduction)\n(%s.tex\n", base)

	doc := parseTex(string(src))

	// Load the class and packages (transitively), reading each file from
	// the TeX tree — these reads are what lazily pull files over HTTP.
	loaded := map[string]bool{}
	var loadOrder []string
	var missing []string
	if doc.class != "" {
		loadResource(p, "cls/"+doc.class+".cls", loaded, &loadOrder, &missing, &log)
	}
	for _, pkg := range doc.packages {
		loadResource(p, "sty/"+pkg+".sty", loaded, &loadOrder, &missing, &log)
	}
	for _, font := range doc.fonts {
		loadResource(p, "fonts/"+font+".tfm", loaded, &loadOrder, &missing, &log)
	}
	if len(missing) > 0 {
		fmt.Fprintf(&log, "! LaTeX Error: File `%s' not found.\n", missing[0])
		posix.WriteString(p, abi.Stderr, "! LaTeX Error: File `"+missing[0]+"' not found.\n")
		posix.WriteFile(p, base+".log", []byte(log.String()), 0o644)
		return 1
	}

	// Previous aux content decides the "rerun" warning.
	oldAux, _ := posix.ReadFile(p, base+".aux")

	// Bibliography: consume the .bbl produced by bibtex, if present.
	bbl, bblErr := posix.ReadFile(p, base+".bbl")
	undefined := false
	if len(doc.cites) > 0 && bblErr != abi.OK {
		undefined = true
		fmt.Fprintf(&log, "LaTeX Warning: Citation(s) undefined.\n")
	}

	// Write the .aux file: citations and bibliography directives.
	var aux strings.Builder
	aux.WriteString("\\relax\n")
	for _, c := range doc.cites {
		fmt.Fprintf(&aux, "\\citation{%s}\n", c)
	}
	if doc.bibstyle != "" {
		fmt.Fprintf(&aux, "\\bibstyle{%s}\n", doc.bibstyle)
	}
	if doc.bibdata != "" {
		fmt.Fprintf(&aux, "\\bibdata{%s}\n", doc.bibdata)
	}
	// Rewrite the .aux only when its content changed — otherwise the
	// pdflatex/bibtex Makefile dance never reaches a fixed point.
	if string(oldAux) != aux.String() {
		if err := posix.WriteFile(p, base+".aux", []byte(aux.String()), 0o644); err != abi.OK {
			return texFail(p, "pdflatex", "%s.aux: %v", base, err)
		}
	}

	// Typeset: build the PDF bytes.
	pdf := renderPDF(doc, string(bbl), loadOrder)
	p.CPU(int64(len(pdf)) * pdfPerByteNs)
	if err := posix.WriteFile(p, base+".pdf", pdf, 0o644); err != abi.OK {
		return texFail(p, "pdflatex", "%s.pdf: %v", base, err)
	}

	pages := doc.pages()
	fmt.Fprintf(&log, "Output written on %s.pdf (%d page(s), %d bytes).\n", base, pages, len(pdf))
	if string(oldAux) != aux.String() || undefined {
		fmt.Fprintf(&log, "LaTeX Warning: Label(s) may have changed. Rerun to get cross-references right.\n")
	}
	posix.WriteFile(p, base+".log", []byte(log.String()), 0o644)
	posix.Fprintf(p, abi.Stdout, "Output written on %s.pdf (%d page(s), %d bytes).\n", base, pages, len(pdf))
	return 0
}

// loadResource reads one file from the TeX tree, following the
// \RequirePackage lines inside .sty/.cls files (transitive dependencies).
func loadResource(p posix.Proc, rel string, loaded map[string]bool, order *[]string, missing *[]string, log *strings.Builder) {
	if loaded[rel] {
		return
	}
	loaded[rel] = true
	path := TexRoot + "/" + rel
	data, err := posix.ReadFile(p, path)
	if err != abi.OK {
		*missing = append(*missing, rel)
		return
	}
	*order = append(*order, rel)
	fmt.Fprintf(log, "(%s)\n", path)
	if strings.HasSuffix(rel, ".tfm") {
		p.CPU(int64(len(data)) * fontPerByteNs)
		return
	}
	p.CPU(texPerPkgNs + int64(len(data))*20)
	for _, line := range strings.Split(string(data), "\n") {
		if dep, ok := cutMacro(line, "\\RequirePackage{"); ok {
			loadResource(p, "sty/"+dep+".sty", loaded, order, missing, log)
		}
		if font, ok := cutMacro(line, "\\LoadFont{"); ok {
			loadResource(p, "fonts/"+font+".tfm", loaded, order, missing, log)
		}
	}
}

// texDoc is the parsed document structure.
type texDoc struct {
	class    string
	packages []string
	fonts    []string
	cites    []string
	bibstyle string
	bibdata  string
	body     string
	words    int
}

func (d *texDoc) pages() int {
	pages := d.words/450 + 1
	return pages
}

// parseTex scans for the macros the workload honours.
func parseTex(src string) *texDoc {
	d := &texDoc{}
	seenCite := map[string]bool{}
	var body strings.Builder
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if v, ok := cutMacro(trimmed, "\\documentclass{"); ok {
			d.class = v
			continue
		}
		if v, ok := cutMacro(trimmed, "\\usepackage{"); ok {
			for _, pkg := range strings.Split(v, ",") {
				d.packages = append(d.packages, strings.TrimSpace(pkg))
			}
			continue
		}
		if v, ok := cutMacro(trimmed, "\\font{"); ok {
			d.fonts = append(d.fonts, v)
			continue
		}
		if v, ok := cutMacro(trimmed, "\\bibliographystyle{"); ok {
			d.bibstyle = v
			continue
		}
		if v, ok := cutMacro(trimmed, "\\bibliography{"); ok {
			d.bibdata = v
			continue
		}
		// \cite can appear mid-line, repeatedly.
		rest := line
		for {
			i := strings.Index(rest, "\\cite{")
			if i < 0 {
				break
			}
			rest = rest[i+len("\\cite{"):]
			j := strings.IndexByte(rest, '}')
			if j < 0 {
				break
			}
			for _, key := range strings.Split(rest[:j], ",") {
				key = strings.TrimSpace(key)
				if !seenCite[key] {
					seenCite[key] = true
					d.cites = append(d.cites, key)
				}
			}
			rest = rest[j+1:]
		}
		body.WriteString(line)
		body.WriteByte('\n')
	}
	d.body = body.String()
	d.words = len(strings.Fields(d.body))
	// Default fonts come with the class.
	if d.class != "" && len(d.fonts) == 0 {
		d.fonts = []string{"cmr10", "cmbx12", "cmti10"}
	}
	return d
}

func cutMacro(line, prefix string) (string, bool) {
	if !strings.HasPrefix(line, prefix) {
		return "", false
	}
	rest := line[len(prefix):]
	if i := strings.IndexByte(rest, '}'); i >= 0 {
		return rest[:i], true
	}
	return "", false
}

// renderPDF produces structurally plausible PDF bytes whose size scales
// with the document.
func renderPDF(d *texDoc, bbl string, resources []string) []byte {
	var sb strings.Builder
	sb.WriteString("%PDF-1.5\n")
	sb.WriteString("1 0 obj << /Type /Catalog /Pages 2 0 R >> endobj\n")
	fmt.Fprintf(&sb, "2 0 obj << /Type /Pages /Count %d >> endobj\n", d.pages())
	fmt.Fprintf(&sb, "%% class=%s packages=%d resources=%d\n", d.class, len(d.packages), len(resources))
	sb.WriteString("3 0 obj << /Length ")
	content := d.body + bbl
	fmt.Fprintf(&sb, "%d >> stream\n", len(content))
	sb.WriteString(content)
	sb.WriteString("\nendstream endobj\ntrailer << /Root 1 0 R >>\n%%EOF\n")
	return []byte(sb.String())
}

func texFail(p posix.Proc, tool, format string, args ...any) int {
	posix.Fprintf(p, abi.Stderr, tool+": "+format+"\n", args...)
	return 1
}

// ---------------------------------------------------------------------------
// bibtex
// ---------------------------------------------------------------------------

func bibtexMain(p posix.Proc) int {
	args := p.Args()[1:]
	if len(args) == 0 {
		return texFail(p, "bibtex", "no aux file")
	}
	base := strings.TrimSuffix(args[len(args)-1], ".aux")
	aux, err := posix.ReadFile(p, base+".aux")
	if err != abi.OK {
		return texFail(p, "bibtex", "%s.aux: %v", base, err)
	}
	var cites []string
	bibdata := ""
	style := "plain"
	for _, line := range strings.Split(string(aux), "\n") {
		if v, ok := cutMacro(line, "\\citation{"); ok {
			cites = append(cites, v)
		}
		if v, ok := cutMacro(line, "\\bibdata{"); ok {
			bibdata = v
		}
		if v, ok := cutMacro(line, "\\bibstyle{"); ok {
			style = v
		}
	}
	var blg strings.Builder
	fmt.Fprintf(&blg, "This is BibTeX (Browsix reproduction)\nThe style file: %s.bst\n", style)
	if bibdata == "" {
		blg.WriteString("I found no \\bibdata command\n")
		posix.WriteFile(p, base+".blg", []byte(blg.String()), 0o644)
		return 2
	}
	bib, err := posix.ReadFile(p, bibdata+".bib")
	if err != abi.OK {
		return texFail(p, "bibtex", "%s.bib: %v", bibdata, err)
	}
	p.CPU(int64(len(bib)) * bibPerByteNs)
	entries := ParseBib(string(bib))

	var bbl strings.Builder
	fmt.Fprintf(&bbl, "\\begin{thebibliography}{%d}\n", len(cites))
	sort.Strings(cites)
	warnings := 0
	for _, key := range cites {
		e, ok := entries[key]
		if !ok {
			fmt.Fprintf(&blg, "Warning--I didn't find a database entry for \"%s\"\n", key)
			warnings++
			continue
		}
		fmt.Fprintf(&bbl, "\\bibitem{%s}\n%s. %s. %s.\n", key,
			orUnknown(e.Fields["author"]), orUnknown(e.Fields["title"]), orUnknown(e.Fields["year"]))
	}
	bbl.WriteString("\\end{thebibliography}\n")
	if err := posix.WriteFile(p, base+".bbl", []byte(bbl.String()), 0o644); err != abi.OK {
		return texFail(p, "bibtex", "%s.bbl: %v", base, err)
	}
	fmt.Fprintf(&blg, "(There were %d warnings)\n", warnings)
	posix.WriteFile(p, base+".blg", []byte(blg.String()), 0o644)
	if warnings > 0 {
		posix.Fprintf(p, abi.Stdout, "(There were %d warnings)\n", warnings)
	}
	return 0
}

func orUnknown(s string) string {
	if s == "" {
		return "Unknown"
	}
	return s
}

// BibEntry is one parsed @entry.
type BibEntry struct {
	Type   string
	Key    string
	Fields map[string]string
}

// ParseBib parses a BibTeX database: @type{key, field = {value}, ...}.
// It is a real (if forgiving) parser: braces nest, quotes work, unknown
// syntax is skipped.
func ParseBib(src string) map[string]BibEntry {
	out := map[string]BibEntry{}
	i := 0
	for i < len(src) {
		at := strings.IndexByte(src[i:], '@')
		if at < 0 {
			break
		}
		i += at + 1
		// type
		j := i
		for j < len(src) && src[j] != '{' && src[j] != '(' {
			j++
		}
		if j >= len(src) {
			break
		}
		etype := strings.ToLower(strings.TrimSpace(src[i:j]))
		i = j + 1
		// key
		j = i
		for j < len(src) && src[j] != ',' && src[j] != '}' {
			j++
		}
		if j >= len(src) {
			break
		}
		key := strings.TrimSpace(src[i:j])
		entry := BibEntry{Type: etype, Key: key, Fields: map[string]string{}}
		i = j
		// fields
		for i < len(src) && src[i] == ',' {
			i++
			// name
			j = i
			for j < len(src) && src[j] != '=' && src[j] != '}' {
				j++
			}
			if j >= len(src) || src[j] == '}' {
				i = j
				break
			}
			name := strings.ToLower(strings.TrimSpace(src[i:j]))
			i = j + 1
			// value
			for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n') {
				i++
			}
			if i >= len(src) {
				break
			}
			var value string
			switch src[i] {
			case '{':
				depth := 0
				j = i
				for ; j < len(src); j++ {
					if src[j] == '{' {
						depth++
					}
					if src[j] == '}' {
						depth--
						if depth == 0 {
							break
						}
					}
				}
				value = src[i+1 : j]
				i = j + 1
			case '"':
				j = i + 1
				for j < len(src) && src[j] != '"' {
					j++
				}
				value = src[i+1 : j]
				i = j + 1
			default:
				j = i
				for j < len(src) && src[j] != ',' && src[j] != '}' {
					j++
				}
				value = strings.TrimSpace(src[i:j])
				i = j
			}
			entry.Fields[name] = value
			// skip trailing whitespace
			for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n') {
				i++
			}
		}
		if i < len(src) && src[i] == '}' {
			i++
		}
		if key != "" && etype != "comment" && etype != "string" {
			out[key] = entry
		}
	}
	return out
}
