package tex

import (
	"fmt"
	"strings"
)

// TreeConfig scales the synthetic TeX Live distribution. The real thing
// is "several gigabytes ... over 60,000 individual files" (§2.2); a
// typical paper touches only a few megabytes of it, which is exactly the
// property the lazy HTTP file system exploits. Tests use a small tree;
// the benchmarks a bigger one.
type TreeConfig struct {
	Classes    int // .cls files
	Packages   int // .sty files (chained dependencies)
	Fonts      int // .tfm files
	FontSize   int // bytes per font file
	PkgSize    int // bytes per package body
	ExtraFiles int // unrelated distribution files (never fetched)
	ExtraSize  int
}

// DefaultTree is the benchmark-scale distribution.
func DefaultTree() TreeConfig {
	return TreeConfig{
		Classes:    8,
		Packages:   120,
		Fonts:      60,
		FontSize:   96 * 1024,
		PkgSize:    24 * 1024,
		ExtraFiles: 1200,
		ExtraSize:  48 * 1024,
	}
}

// SmallTree keeps unit tests fast.
func SmallTree() TreeConfig {
	return TreeConfig{Classes: 2, Packages: 10, Fonts: 6, FontSize: 2048, PkgSize: 512, ExtraFiles: 20, ExtraSize: 256}
}

// BuildTree generates the distribution as path->bytes (paths relative to
// the tree root, starting with "/"). Package i requires package i+1 for
// the first few, giving documents a dependency cone; article.cls loads
// three fonts via \LoadFont.
func BuildTree(cfg TreeConfig) map[string][]byte {
	files := map[string][]byte{}
	pad := func(n int) string {
		if n <= 0 {
			return ""
		}
		return strings.Repeat("% tex-live filler\n", n/18+1)[:n]
	}
	for i := 0; i < cfg.Classes; i++ {
		name := className(i)
		body := fmt.Sprintf("%% class %s\n\\LoadFont{cmr10}\n\\LoadFont{cmbx12}\n\\LoadFont{cmti10}\n\\RequirePackage{%s}\n%s",
			name, pkgName(0), pad(cfg.PkgSize))
		files["/cls/"+name+".cls"] = []byte(body)
	}
	for i := 0; i < cfg.Packages; i++ {
		dep := ""
		// The first 8 packages chain onto the next, deeper dependencies.
		if i < 8 && i+1 < cfg.Packages {
			dep = fmt.Sprintf("\\RequirePackage{%s}\n", pkgName(i+1))
		}
		body := fmt.Sprintf("%% package %s\n%s%s", pkgName(i), dep, pad(cfg.PkgSize))
		files["/sty/"+pkgName(i)+".sty"] = []byte(body)
	}
	fontNames := []string{"cmr10", "cmbx12", "cmti10", "cmtt10", "cmss10", "cmmi10"}
	for i := 0; i < cfg.Fonts; i++ {
		name := ""
		if i < len(fontNames) {
			name = fontNames[i]
		} else {
			name = fmt.Sprintf("font%03d", i)
		}
		body := make([]byte, cfg.FontSize)
		for j := range body {
			body[j] = byte(i + j)
		}
		files["/fonts/"+name+".tfm"] = body
	}
	for i := 0; i < cfg.ExtraFiles; i++ {
		files[fmt.Sprintf("/doc/other%04d.txt", i)] = []byte(pad(cfg.ExtraSize))
	}
	return files
}

func className(i int) string {
	names := []string{"article", "report", "book", "letter", "beamer", "memoir", "acmart", "ieeetran"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("class%02d", i)
}

func pkgName(i int) string {
	names := []string{"graphicx", "amsmath", "hyperref", "xcolor", "geometry", "booktabs",
		"listings", "tikz", "fontenc", "inputenc", "babel", "url"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("pkg%03d", i)
}

// SampleDocument is the one-page-paper-with-bibliography workload of
// §5.2 ("a single page document with a bibliography").
func SampleDocument() (tex, bib string) {
	tex = `\documentclass{article}
\usepackage{graphicx}
\usepackage{amsmath, hyperref}
\bibliographystyle{plain}
Browsix bridges the gap between Unix and the browser \cite{browsix}.
It builds on BrowserFS from Doppio \cite{doppio} and compiles C programs
with Emscripten \cite{emscripten}. ` + strings.Repeat("Unix in the browser enables serverless PDF generation from off-the-shelf parts. ", 24) + `
\bibliography{main}
`
	bib = `@inproceedings{browsix,
  author = {Powers, Bobby and Vilk, John and Berger, Emery D.},
  title  = {Browsix: Bridging the Gap Between Unix and the Browser},
  year   = {2017},
}
@inproceedings{doppio,
  author = {Vilk, John and Berger, Emery D.},
  title  = {Doppio: Breaking the Browser Language Barrier},
  year   = {2014},
}
@inproceedings{emscripten,
  author = "Zakai, Alon",
  title  = "Emscripten: an LLVM-to-JavaScript Compiler",
  year   = 2011,
}
`
	return tex, bib
}

// ProjectMakefile is the LaTeX project's Makefile: the classic
// pdflatex/bibtex/pdflatex/pdflatex dance, driven by GNU Make (which
// forks to run each recipe).
func ProjectMakefile() string {
	return `# LaTeX build, as in the Browsix editor case study
DOC = main
TEX = pdflatex

all: $(DOC).pdf

$(DOC).pdf: $(DOC).tex $(DOC).bbl
	$(TEX) $(DOC).tex
	$(TEX) $(DOC).tex

$(DOC).bbl: $(DOC).bib $(DOC).aux
	bibtex $(DOC)

$(DOC).aux: $(DOC).tex
	$(TEX) $(DOC).tex

.PHONY: all clean
clean:
	rm -f $(DOC).pdf $(DOC).aux $(DOC).bbl $(DOC).log $(DOC).blg
`
}
