// Package snapshot is the checkpoint/fork lifecycle layer (ROADMAP item
// 1, livecore-style): capture a runtime's post-boot state once — heap
// pages, fd table, cwd, env template, loader state — into an immutable
// Image, then boot every subsequent process of that runtime as a
// copy-on-write clone of the image instead of re-running init. A per-page
// soft-dirty bitmap (Tracker) makes the clone pay — in page-pool quota
// and in virtual time — only for pages it actually writes: clean pages
// stay one copy in the shared arena across all children, each holding one
// pin (the COW refcount) that returns on first write or at exit.
//
// The same bitmap drives live checkpointing: iterative pre-copy rounds
// walk the soft-dirty set while the guest keeps running, and a short
// final stop-copy bounds the pause — livecore's design, expressed in
// main-thread events instead of signal-stopped threads. CheckpointLive in
// internal/core builds on the Dump type here.
package snapshot

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fs"
)

// PageSize is the snapshot page granule — the page-pool slot size, so an
// image page maps 1:1 onto an arena slot.
const PageSize = fs.PageSize

// CowFaultNs is the virtual cost of a copy-on-write fault: the trap plus
// privately materializing one page in the faulting clone's heap. Charged
// to whichever context (guest or kernel) performs the first write.
const CowFaultNs = 6_000

// FdInfo describes one open descriptor in a captured fd table.
type FdInfo struct {
	Fd   int
	Path string
}

// Image is one immutable post-boot runtime snapshot. Heap pages live in
// an fs.ImageStore (arena slots, one base pin each) when the registry has
// one, or in private host memory otherwise; either way the bytes never
// change after Register.
type Image struct {
	// Path is the resolved executable path — the registry key, so every
	// process spawned from the same binary clones the same image.
	Path string
	// Script is the executable's bytes: each kernel re-derives the
	// runtime program and kind through its own loader, so an image
	// captured by one fleet instance boots clones in every other.
	Script []byte
	// Env, Cwd, Fds are the captured process template (diagnostics and
	// the dump path; clones take their spawn-time values as usual).
	Env []string
	Cwd string
	Fds []FdInfo

	// HeapLen is the captured heap size in bytes; 0 for runtimes with no
	// registered heap (async transports), whose clones skip restore
	// entirely. RingOK/PoolOK/ScratchTop record the negotiated transport
	// state baked into the heap bytes, so a clone re-registers the same
	// layout without re-running the negotiation round trips.
	HeapLen    int
	RingOK     bool
	PoolOK     bool
	ScratchTop int64

	store *fs.ImageStore
	slots []int    // arena slot per page (store != nil)
	priv  [][]byte // private page copies (store == nil fallback)
}

// NewImage starts an image for the executable at path.
func NewImage(path string, script []byte) *Image {
	sc := make([]byte, len(script))
	copy(sc, script)
	return &Image{Path: path, Script: sc}
}

// SetHeap captures heap into image pages. With a non-nil store the pages
// go into arena slots (shareable fleet-wide); if the store runs out of
// quota mid-capture — or store is nil — every page falls back to a
// private host copy, releasing any slots already taken, so capture never
// fails, it just loses cross-child arena sharing.
func (img *Image) SetHeap(store *fs.ImageStore, heap []byte) {
	img.HeapLen = len(heap)
	n := img.NumPages()
	if store != nil {
		slots := make([]int, 0, n)
		ok := true
		for p := 0; p < n && ok; p++ {
			var slot int
			slot, ok = store.Put(pageAt(heap, p))
			if ok {
				slots = append(slots, slot)
			}
		}
		if ok {
			img.store, img.slots = store, slots
			return
		}
		for _, s := range slots {
			store.Free(s)
		}
	}
	img.priv = make([][]byte, n)
	for p := 0; p < n; p++ {
		cp := make([]byte, PageSize)
		copy(cp, pageAt(heap, p))
		img.priv[p] = cp
	}
}

func pageAt(heap []byte, p int) []byte {
	lo := p * PageSize
	hi := lo + PageSize
	if hi > len(heap) {
		hi = len(heap)
	}
	return heap[lo:hi]
}

// NumPages returns the image's heap page count.
func (img *Image) NumPages() int { return (img.HeapLen + PageSize - 1) / PageSize }

// Pooled reports whether the heap pages live in the shared arena.
func (img *Image) Pooled() bool { return img.store != nil }

// CopyHeap host-copies the image heap into dst (a fresh clone heap).
// No virtual time is charged here: virtually the clone still *shares*
// every page with the image — it reads them through its own mapping of
// the arena, the zero-copy fiction the grant path established — and only
// a write materializes a private copy (the tracker charges that fault).
func (img *Image) CopyHeap(dst []byte) {
	for p := 0; p < img.NumPages(); p++ {
		lo := p * PageSize
		hi := lo + PageSize
		if hi > img.HeapLen {
			hi = img.HeapLen
		}
		copy(dst[lo:hi], img.pageData(p))
	}
}

func (img *Image) pageData(p int) []byte {
	if img.store != nil {
		return img.store.Data(img.slots[p])
	}
	return img.priv[p]
}

// PinAll takes one clone reference on every image page — called when a
// clone boots, before its tracker starts returning pins page-by-page.
func (img *Image) PinAll() {
	if img.store == nil {
		return
	}
	for _, s := range img.slots {
		img.store.Pin(s)
	}
}

// UnpinPage returns one clone reference on page p (COW fault or exit).
func (img *Image) UnpinPage(p int) {
	if img.store == nil {
		return
	}
	img.store.Unpin(img.slots[p])
}

// PinCount returns page p's pin count including the store's base pin
// (balance checks: quiesced images show exactly 1).
func (img *Image) PinCount(p int) int {
	if img.store == nil {
		return 1
	}
	return img.store.PinCount(img.slots[p])
}

// Release frees the image's arena pages (registry teardown). Pages still
// referenced by live clones freeze until those references return.
func (img *Image) Release() {
	if img.store == nil {
		img.priv = nil
		return
	}
	for _, s := range img.slots {
		img.store.Free(s)
	}
	img.slots = nil
	img.store = nil
}

// SharedBrowserValue marks *Image as passed by reference through
// postMessage (browser.Shared), like a SharedArrayBuffer.
func (img *Image) SharedBrowserValue() {}

// Stats counts snapshot activity. All atomic: a fleet's instances share
// one registry across host threads.
type Stats struct {
	Captures        atomic.Int64 // images captured
	CloneBoots      atomic.Int64 // processes booted from an image
	CowFaults       atomic.Int64 // first-write faults (pages privatized)
	SharedPagesPeak atomic.Int64 // unused pages never materialize; diagnostics
}

// Registry maps resolved executable paths to captured images. A fleet
// shares one sealed registry across instances; a single instance owns a
// private unsealed one and captures lazily on first boot of each runtime.
type Registry struct {
	mu     sync.Mutex
	images map[string]*Image
	store  *fs.ImageStore
	sealed atomic.Bool
	stats  Stats
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{images: map[string]*Image{}}
}

// SetStore attaches the arena-backed store captures put heap pages into.
// First one wins: a fleet attaches the shared pool's store once and every
// instance captures into (and clones out of) the same arena. With no
// store, captured heaps fall back to private host copies.
func (r *Registry) SetStore(st *fs.ImageStore) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		r.store = st
	}
}

// Store returns the attached image store (nil if none).
func (r *Registry) Store() *fs.ImageStore {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store
}

// Lookup returns the image for path, or nil.
func (r *Registry) Lookup(path string) *Image {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.images[path]
}

// Register installs an image under its path. First registration wins;
// a sealed registry accepts nothing (the caller releases the loser).
func (r *Registry) Register(img *Image) bool {
	if r.sealed.Load() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.images[img.Path]; dup {
		return false
	}
	r.images[img.Path] = img
	r.stats.Captures.Add(1)
	return true
}

// Seal freezes the registry read-only. A fleet must seal before its jobs
// run: with capture off, each instance's virtual clock depends only on
// the sealed content, never on which shard booted a runtime first.
func (r *Registry) Seal() { r.sealed.Store(true) }

// Sealed reports whether the registry accepts captures.
func (r *Registry) Sealed() bool { return r.sealed.Load() }

// Paths returns the registered executable paths, sorted.
func (r *Registry) Paths() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.images))
	for p := range r.images {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stats returns the registry's counters.
func (r *Registry) Stats() *Stats { return &r.stats }

// VerifyBalanced checks that every image page is back to exactly its
// base pins — no clone leaked a COW reference. Call after all processes
// spawned from the registry have exited.
//
// Image pages are content-addressed, so one arena slot may back many
// image pages (a zeroed heap is mostly one slot; identical pages across
// images collapse too) and each occurrence holds one base pin. The
// ledger therefore counts expected occurrences PER SLOT across every
// pooled image and compares against the slot's live pin count, instead
// of assuming each page owns its slot with exactly one pin.
func (r *Registry) VerifyBalanced() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	type slotKey struct {
		store *fs.ImageStore
		slot  int
	}
	expected := map[slotKey]int{}
	where := map[slotKey]string{} // first occurrence, for the error message
	for path, img := range r.images {
		if img.store == nil {
			continue // private host copies hold no pins
		}
		for p, s := range img.slots {
			k := slotKey{img.store, s}
			expected[k]++
			if _, ok := where[k]; !ok {
				where[k] = fmt.Sprintf("%s page %d", path, p)
			}
		}
	}
	for k, want := range expected {
		if got := k.store.PinCount(k.slot); got != want {
			return fmt.Errorf("snapshot: arena slot %d (%s) holds %d pins (want %d base pins)", k.slot, where[k], got, want)
		}
	}
	return nil
}

// Release frees every image (teardown; mainly tests).
func (r *Registry) Release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, img := range r.images {
		img.Release()
	}
	r.images = map[string]*Image{}
}

// Tracker is one process's per-page heap bitmap: which pages are still
// image-backed (shared; the COW set) and which were written since the
// last ClearDirty (soft-dirty; the pre-copy set). The runtime installs it
// as the heap SAB's DirtyTracker; kernel-side heap writes mark it too.
// It crosses the worker/kernel boundary by reference (browser.Shared) —
// both sides run on the same single-threaded Sim, so no locking.
type Tracker struct {
	img    *Image // nil for dirty-only trackers (live checkpoint of a cold boot)
	shared []bool
	dirty  []bool
	nshare int

	charge  func(int64) // virtual-time hook for COW fault cost
	faultNs int64
	stats   *Stats
}

// NewTracker creates a clone's tracker: every image page starts shared.
// img may be nil (dirty-only mode: no COW set, just the soft-dirty bits
// over npages pages).
func NewTracker(img *Image, npages int) *Tracker {
	t := &Tracker{img: img, dirty: make([]bool, npages)}
	if img != nil {
		if n := img.NumPages(); n < npages {
			npages = n
		}
		t.shared = make([]bool, len(t.dirty))
		for p := 0; p < npages; p++ {
			t.shared[p] = true
		}
		t.nshare = npages
	}
	return t
}

// SetFaultCharge installs the virtual-time charge hook for COW faults.
func (t *Tracker) SetFaultCharge(fn func(int64), ns int64) {
	t.charge, t.faultNs = fn, ns
}

// SetStats points fault counters at a registry's stats.
func (t *Tracker) SetStats(s *Stats) { t.stats = s }

// MarkDirty implements browser.DirtyTracker: a write of n bytes at off.
// The first write to a still-shared page is the COW fault: the page
// privatizes (its image pin returns) and the fault cost is charged.
func (t *Tracker) MarkDirty(off, n int) {
	if n <= 0 {
		return
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for p := first; p <= last; p++ {
		if p < 0 || p >= len(t.dirty) {
			continue
		}
		t.dirty[p] = true
		if t.shared != nil && t.shared[p] {
			t.shared[p] = false
			t.nshare--
			t.img.UnpinPage(p)
			if t.charge != nil {
				t.charge(t.faultNs)
			}
			if t.stats != nil {
				t.stats.CowFaults.Add(1)
			}
		}
	}
}

// MarkPrivate privatizes page p without a fault charge — boot-time
// pre-marking of pages written through retained views that bypass the
// write barriers (ring regions, the wake/ret/scratch page).
func (t *Tracker) MarkPrivate(p int) {
	if p < 0 || p >= len(t.dirty) {
		return
	}
	t.dirty[p] = true
	if t.shared != nil && t.shared[p] {
		t.shared[p] = false
		t.nshare--
		t.img.UnpinPage(p)
	}
}

// SharedPages returns how many pages are still image-backed.
func (t *Tracker) SharedPages() int { return t.nshare }

// NumPages returns the tracked page count.
func (t *Tracker) NumPages() int { return len(t.dirty) }

// DirtyPages returns the pages written since the last ClearDirty, in
// ascending order — one pre-copy round's work list.
func (t *Tracker) DirtyPages() []int {
	var out []int
	for p, d := range t.dirty {
		if d {
			out = append(out, p)
		}
	}
	return out
}

// DirtyCount returns the soft-dirty page count.
func (t *Tracker) DirtyCount() int {
	n := 0
	for _, d := range t.dirty {
		if d {
			n++
		}
	}
	return n
}

// ClearDirty resets the soft-dirty bits (between pre-copy rounds).
func (t *Tracker) ClearDirty() {
	for p := range t.dirty {
		t.dirty[p] = false
	}
}

// ReleaseShared returns every remaining image pin — the process exited
// (or exec'd away) without writing those pages. Idempotent.
func (t *Tracker) ReleaseShared() {
	if t.shared == nil {
		return
	}
	for p, s := range t.shared {
		if s {
			t.shared[p] = false
			t.nshare--
			t.img.UnpinPage(p)
		}
	}
}

// SharedBrowserValue marks *Tracker as passed by reference through
// postMessage (browser.Shared).
func (t *Tracker) SharedBrowserValue() {}

// Dump is a live diagnostics checkpoint: the memory image and fd table
// of a running (or just-booted) guest, plus the pre-copy telemetry that
// proves the pause was bounded.
type Dump struct {
	Pid  int
	Path string
	Args []string
	Env  []string
	Cwd  string
	Fds  []FdInfo

	HeapLen int
	Mem     []byte // nil for heap-less (async-transport) guests

	Rounds       int   // pre-copy rounds run
	PrecopyPages int   // pages copied while the guest kept running
	FinalPages   int   // pages copied in the final stop event
	PauseNs      int64 // virtual length of the stop-the-guest event
}

// Encode renders the dump as a diagnostic text file.
func (d *Dump) Encode() []byte {
	var b []byte
	add := func(format string, a ...any) { b = append(b, fmt.Sprintf(format, a...)...) }
	add("browsix snapshot dump\n")
	add("pid: %d\n", d.Pid)
	add("path: %s\n", d.Path)
	add("args: %q\n", d.Args)
	add("env: %q\n", d.Env)
	add("cwd: %s\n", d.Cwd)
	add("fds:\n")
	for _, fd := range d.Fds {
		add("  %3d -> %s\n", fd.Fd, fd.Path)
	}
	add("heap: %d bytes (%d pages)\n", d.HeapLen, (d.HeapLen+PageSize-1)/PageSize)
	add("precopy: %d rounds, %d pages live-copied, %d pages in final delta\n",
		d.Rounds, d.PrecopyPages, d.FinalPages)
	add("pause: %dns virtual\n", d.PauseNs)
	if d.Mem != nil {
		add("mem (%d bytes):\n", len(d.Mem))
		for off := 0; off < len(d.Mem); off += 64 {
			end := off + 64
			if end > len(d.Mem) {
				end = len(d.Mem)
			}
			row := d.Mem[off:end]
			zero := true
			for _, c := range row {
				if c != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue // sparse dump: all-zero rows elided
			}
			add("  %08x: % x\n", off, row)
		}
	}
	return b
}
