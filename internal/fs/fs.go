// Package fs reimplements the file-system layer Browsix builds on: Doppio's
// BrowserFS plus the Browsix extensions described in §3.6 of the paper,
// grown into a real VFS core:
//
//   - a per-component namei walker (symlinks — intermediate and trailing —
//     `..`, trailing slashes, and mount crossings resolved one component
//     at a time, depth-limited),
//   - a dentry/attribute cache with negative entries, invalidated on every
//     mutating operation, so repeated stat/open of hot paths never re-hit
//     a backend,
//   - a page cache with sequential readahead fronting the network and
//     read-only backends (httpfs, zipfs, overlay lower layers),
//   - vectored file handles (Preadv/Pwritev), so the iovec frames the ring
//     transport carries through the kernel reach storage without
//     coalescing copies.
//
// Like BrowserFS, the API is callback-based (continuation-passing style):
// the kernel runs on the browser's main thread and can never block, so
// every operation takes a completion callback. Purely in-memory backends
// complete synchronously (the callback runs before the call returns);
// network-backed backends complete later via simulator events.
//
// The package provides:
//   - a mount table combining multiple backends into one hierarchy,
//   - an in-memory backend (memfs),
//   - a read-only HTTP-backed backend with an index file and lazy per-file
//     fetching (httpfs — BrowserFS's XmlHttpRequest backend),
//   - a read-only zip-file backend (zipfs),
//   - an overlay backend with lazy copy-up, a deletion log, and the
//     multi-process locking Browsix added (overlayfs).
package fs

import (
	"path"
	"sort"
	"strings"

	"repro/internal/abi"
)

// FileHandle is an open file. Reads and writes are positional, as in
// BrowserFS; the kernel layers file offsets on top.
type FileHandle interface {
	// Pread reads up to n bytes at off. A short or empty result at EOF
	// is not an error.
	Pread(off int64, n int, cb func([]byte, abi.Errno))
	// Pwrite writes data at off, returning bytes written.
	Pwrite(off int64, data []byte, cb func(int, abi.Errno))
	// Preadv reads up to sum(lens) bytes at off, returning the data as
	// one or more segments. Segment boundaries need not match lens —
	// callers scatter the stream themselves — but the total never
	// exceeds sum(lens). A nil result at EOF is not an error.
	Preadv(off int64, lens []int, cb func([][]byte, abi.Errno))
	// Pwritev writes the buffers back to back starting at off, without
	// requiring the caller to coalesce them, returning bytes written.
	Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno))
	// Stat describes the open file.
	Stat(cb func(abi.Stat, abi.Errno))
	// Truncate sets the file size.
	Truncate(size int64, cb func(abi.Errno))
	// Close releases the handle.
	Close(cb func(abi.Errno))
}

// Backend is one mounted file system implementation. Paths are absolute
// within the backend ("/" is the backend's root) and already cleaned.
type Backend interface {
	Name() string
	ReadOnly() bool
	Stat(p string, cb func(abi.Stat, abi.Errno))
	// Lstat is like Stat but does not follow a trailing symlink.
	Lstat(p string, cb func(abi.Stat, abi.Errno))
	Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno))
	Readdir(p string, cb func([]abi.Dirent, abi.Errno))
	Mkdir(p string, mode uint32, cb func(abi.Errno))
	Rmdir(p string, cb func(abi.Errno))
	Unlink(p string, cb func(abi.Errno))
	Rename(oldp, newp string, cb func(abi.Errno))
	Readlink(p string, cb func(string, abi.Errno))
	Symlink(target, linkp string, cb func(abi.Errno))
	Utimes(p string, atime, mtime int64, cb func(abi.Errno))
}

// mount is one entry in the mount table.
type mount struct {
	prefix  string // "/", "/usr/share/texlive", ...
	backend Backend
}

// FileSystem is the kernel's VFS: a mount table over backends, a namei
// walker, and the dentry/page caches.
type FileSystem struct {
	mounts []mount // sorted by descending prefix length
	now    func() int64

	dc             *dcache
	pc             *pageCache
	cachesOn       bool
	readaheadPages int

	// writeBack selects the write-back data path (writeback.go);
	// dirtyBudget bounds the buffered bytes before a forced flush.
	writeBack   bool
	dirtyBudget int64

	// Age-based background flusher (writeback.go): dirty extents older
	// than flushAge flush on a virtual-time timer, so quiet long-lived
	// files land without an fsync. flushTimer is the scheduler the
	// kernel wires in; 0/nil disables.
	flushAge        int64
	flushTimer      func(delayNs int64, fn func())
	flushTimerArmed bool
}

// NewFileSystem creates a file system whose root is the given backend.
// now supplies virtual time for mtimes. Caching is on by default.
func NewFileSystem(root Backend, now func() int64) *FileSystem {
	f := &FileSystem{
		now:            now,
		dc:             newDcache(),
		pc:             newPageCache(),
		cachesOn:       true,
		readaheadPages: DefaultReadaheadPages,
		writeBack:      true,
		dirtyBudget:    maxDirtyBytes,
	}
	f.mounts = []mount{{prefix: "/", backend: root}}
	return f
}

// SetCaching enables or disables the dentry and page caches (the
// cache-off configuration of the differential tests and ablations).
// Toggling flushes everything.
func (f *FileSystem) SetCaching(on bool) {
	f.cachesOn = on
	f.FlushCaches()
}

// SetReadahead sets the sequential readahead window in pages (0 disables
// readahead; the page cache itself stays on).
func (f *FileSystem) SetReadahead(pages int) { f.readaheadPages = pages }

// SetDedup enables or disables the content-addressed sharing tier for
// pages this FileSystem caches (the dedup-off configuration of the
// differential tests and ablations). Dedup is on by default; it changes
// where immutable pages physically live, never their bytes or the
// virtual clock. No flush: already-resident pages keep their class.
func (f *FileSystem) SetDedup(on bool) { f.pc.dedupOff = !on }

// FlushCaches drops every cached dentry and page (cold-cache runs).
// Buffered write-back state is flushed to the backends first — dropping
// it would lose data (flush-on-unmount: Mount routes through here).
func (f *FileSystem) FlushCaches() {
	f.flushAllDirtyNow()
	f.dc.flush()
	f.pc.flush()
}

// CacheStats reports cache effectiveness counters for the hit-rate
// experiments (EXPERIMENTS.md).
type CacheStats struct {
	DentryHits    int64 // per-component positive hits
	DentryMisses  int64 // per-component misses (backend consulted)
	NegativeHits  int64 // per-component negative (ENOENT) hits
	WalkHits      int64 // whole-walk fast-path hits
	ReaddirHits   int64 // cached directory-listing hits
	ReaddirMisses int64 // directory listings built from backends
	PageHits      int64 // page-cache read hits
	PageMisses    int64 // page-cache read misses (backend consulted)
	ReadaheadOps  int64 // completed readahead backend reads
	PageBytes     int64 // bytes currently cached
	DentryEntries int   // dentries currently cached
	WalkNodes     int   // radix nodes in the whole-walk tier

	// Write-back counters (writeback.go).
	BufferedWrites  int64 // writes absorbed into dirty extents
	Flushes         int64 // per-path flush operations
	FlushWrites     int64 // vectored backend writes the flusher issued
	OverflowFlushes int64 // flushes forced by the dirty budget
	AgedFlushes     int64 // background flushes triggered by extent age
	DirtyBytes      int64 // bytes currently buffered

	// Zero-copy lease counters (pagepool.go).
	GrantedPages  int64 // pages granted out as leases
	ReturnedPages int64 // leases returned
	PinnedPages   int   // pool slots currently pinned by leases

	// Content-addressed dedup counters (the cross-tenant sharing tier).
	CachedPages int64 // resident cached pages (logical, shared + private)
	DedupPages  int64 // resident pages referencing shared dedup slots
	SharedBytes int64 // bytes of those shared references
	DedupHits   int64 // dedup index hits since boot
	DedupStores int64 // dedup-eligible page stores since boot

	// Batched-lookup counters (dcache batch path).
	BatchedLookups int64 // lookups resolved through StatBatch batches
	StatBatches    int64 // multi-element StatBatch calls
}

// CacheStats returns a snapshot of the cache counters. Every field is
// read through an atomic, so the snapshot is safe to take from the host
// while the Instance runs on another thread (per-field reads are atomic;
// the struct as a whole is a loose snapshot, not a consistent cut).
func (f *FileSystem) CacheStats() CacheStats {
	return CacheStats{
		DentryHits:    f.dc.hits.Load(),
		DentryMisses:  f.dc.misses.Load(),
		NegativeHits:  f.dc.negHits.Load(),
		WalkHits:      f.dc.walkHits.Load(),
		ReaddirHits:   f.dc.dirHits.Load(),
		ReaddirMisses: f.dc.dirMisses.Load(),
		PageHits:      f.pc.hits.Load(),
		PageMisses:    f.pc.misses.Load(),
		ReadaheadOps:  f.pc.readaheads.Load(),
		PageBytes:     f.pc.bytes.Load(),
		DentryEntries: int(f.dc.entryCount.Load()),
		WalkNodes:     int(f.dc.walkNodeCount.Load()),

		BufferedWrites:  f.pc.bufferedWrites.Load(),
		Flushes:         f.pc.flushes.Load(),
		FlushWrites:     f.pc.flushWrites.Load(),
		OverflowFlushes: f.pc.overflowFlushes.Load(),
		AgedFlushes:     f.pc.agedFlushes.Load(),
		DirtyBytes:      f.pc.dirtyBytes.Load(),

		GrantedPages:  f.pc.grantedPages.Load(),
		ReturnedPages: f.pc.returnedPages.Load(),
		PinnedPages:   int(f.pc.pool.pinned.Load()),

		CachedPages: f.pc.cachedPages.Load(),
		DedupPages:  f.pc.dedupPages.Load(),
		SharedBytes: f.pc.sharedBytes.Load(),
		DedupHits:   f.pc.dedupHits.Load(),
		DedupStores: f.pc.dedupStores.Load(),

		BatchedLookups: f.dc.batchedLookups.Load(),
		StatBatches:    f.dc.statBatches.Load(),
	}
}

// Mount attaches a backend at prefix (an absolute, existing-or-not path).
// Longest-prefix wins at resolution, like BrowserFS's MountableFileSystem.
// Mounting changes what every path resolves to, so the caches flush.
func (f *FileSystem) Mount(prefix string, b Backend) {
	prefix = Clean(prefix)
	f.mounts = append(f.mounts, mount{prefix: prefix, backend: b})
	sort.SliceStable(f.mounts, func(i, j int) bool {
		return len(f.mounts[i].prefix) > len(f.mounts[j].prefix)
	})
	f.FlushCaches()
}

// Mounts lists mount points (diagnostics, and the terminal's `mount`).
func (f *FileSystem) Mounts() []string {
	out := make([]string, len(f.mounts))
	for i, m := range f.mounts {
		out[i] = m.prefix + " (" + m.backend.Name() + ")"
	}
	return out
}

// MountPrefixes lists just the mount-point paths, longest first.
func (f *FileSystem) MountPrefixes() []string {
	out := make([]string, len(f.mounts))
	for i, m := range f.mounts {
		out[i] = m.prefix
	}
	return out
}

// Clean normalizes an absolute path: it forces a leading slash and
// collapses ".", "..", and repeated slashes. ".." components that would
// escape the root are clamped at "/" (trailing-slash semantics are
// handled by the walker, which sees the raw path).
func Clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// Abs resolves a possibly-relative path against cwd, normalizing
// slashes and "." while preserving both ".." components (the walker
// resolves them against symlink *targets*, which a lexical Clean cannot)
// and a trailing slash (the walker gives it its POSIX directory
// meaning). Kernel and host syscall layers share this so the transports
// cannot diverge.
func Abs(cwd, p string) string {
	joined := p
	if len(p) == 0 || p[0] != '/' {
		joined = cwd + "/" + p
	}
	ap := "/" + strings.Join(splitPath(joined), "/")
	if hadTrailingSlash(p) && ap != "/" {
		ap += "/" // keep the directory requirement ("p/" and "p/.")
	}
	return ap
}

// resolveMount finds the backend owning p and p's path within it.
func (f *FileSystem) resolveMount(p string) (Backend, string) {
	p = Clean(p)
	for _, m := range f.mounts {
		if p == m.prefix {
			return m.backend, "/"
		}
		pre := m.prefix
		if pre != "/" {
			pre += "/"
		}
		if strings.HasPrefix(p, pre) {
			return m.backend, Clean(p[len(m.prefix):])
		}
	}
	// Unreachable: the root mount matches everything.
	last := f.mounts[len(f.mounts)-1]
	return last.backend, p
}

// ---------------------------------------------------------------------------
// Cache invalidation. Every mutating operation lands here.
// ---------------------------------------------------------------------------

// invalidatePath drops the dentry, walk, and page caches for one path
// (content or attributes changed). Buffered write-back state flushes
// first, through the handle that buffered it: the generation bump below
// unbinds the name from the file, but the buffered bytes belong to the
// file and must land in it.
func (f *FileSystem) invalidatePath(p string) {
	f.flushDirtyNow(p)
	f.dc.drop(p)
	f.pc.drop(p)
}

// invalidateEntry drops a path and its parent directory (creation or
// removal changes the parent's mtime and the child's existence).
func (f *FileSystem) invalidateEntry(p, parent string) {
	f.flushDirtyNow(p)
	f.dc.drop(p)
	f.dc.drop(parent)
	f.pc.drop(p)
}

// invalidateTree drops a path, its parent, and everything below the path
// (directory rename/removal).
func (f *FileSystem) invalidateTree(p, parent string) {
	f.flushDirtyTreeNow(p)
	f.dc.dropTree(p)
	f.dc.drop(parent)
	f.pc.dropTree(p)
}

// ---------------------------------------------------------------------------
// VFS operations. Every path-taking operation resolves through the namei
// walker; results and attributes come from the caches when warm.
// ---------------------------------------------------------------------------

// StatReq is one element of a StatBatch: a path lookup, optionally with
// lstat (no-trailing-symlink) semantics.
type StatReq struct {
	Path  string
	Lstat bool
}

// StatBatch resolves a batch of path-metadata lookups. It is the single
// entry point every transport's stat/lstat/access dispatch routes
// through: the ring transport hands a whole drained doorbell of stat
// frames here at once, the scalar and async transports arrive with
// batch size 1 — so all three stay byte-identical by construction.
// It is the pure-metadata form of MetaBatch below.
func (f *FileSystem) StatBatch(reqs []StatReq, cb func([]abi.Stat, []abi.Errno)) {
	if len(reqs) == 1 {
		// Batch of one — the scalar/async common case: a direct walk,
		// no batch bookkeeping allocations on the hottest metadata path.
		r := reqs[0]
		f.walk(r.Path, walkOpts{follow: !r.Lstat}, func(e walkEnt) {
			if e.err != abi.OK {
				cb([]abi.Stat{{}}, []abi.Errno{e.err})
				return
			}
			st := e.st
			f.patchDirtyStat(e.path, &st)
			cb([]abi.Stat{st}, []abi.Errno{abi.OK})
		})
		return
	}
	mreqs := make([]MetaReq, len(reqs))
	for i, r := range reqs {
		mreqs[i] = MetaReq{Kind: MetaStat, Path: r.Path}
		if r.Lstat {
			mreqs[i].Kind = MetaLstat
		}
	}
	f.MetaBatch(mreqs, func(res []MetaRes) {
		sts := make([]abi.Stat, len(res))
		errs := make([]abi.Errno, len(res))
		for i, r := range res {
			sts[i], errs[i] = r.St, r.Err
		}
		cb(sts, errs)
	})
}

// MetaKind selects the operation of one MetaBatch element.
type MetaKind int

// MetaBatch element kinds: the path-lookup calls a shell's probe storms
// are made of.
const (
	MetaStat MetaKind = iota
	MetaLstat
	MetaAccess
	MetaReadlink
	MetaOpen
)

// MetaReq is one element of a MetaBatch. Flags/Mode apply to MetaOpen.
type MetaReq struct {
	Kind  MetaKind
	Path  string
	Flags int
	Mode  uint32
}

// MetaRes is one MetaBatch result. For MetaOpen with Err == OK, a nil
// Handle means the path is a directory (St describes it; the kernel
// installs its directory object) — mirroring the kernel's open split.
type MetaRes struct {
	St     abi.Stat
	Err    abi.Errno
	Target string     // MetaReadlink
	Handle FileHandle // MetaOpen (nil for directories)
}

// MetaBatch resolves a batch of path operations — stat/lstat/access
// plus the readlink and plain read-only open calls that ride along in a
// shell's PATH-probing storms. A multi-element batch first resolves
// every walk it can against the dentry cache's batch lookup path (one
// pass for the whole storm — opens included, since an open's directory
// check is the same follow-walk); only the misses fall back to full
// walks, and only regular-file opens touch a backend. Results carry the
// write-back overlay: a path with buffered dirty extents reports its
// virtual size and buffered mtime.
func (f *FileSystem) MetaBatch(reqs []MetaReq, cb func([]MetaRes)) {
	res := make([]MetaRes, len(reqs))
	resolved := make([]bool, len(reqs))
	// batchSt holds the batch pass's walk result for MetaOpen elements:
	// the open continuation reuses it instead of re-statting.
	batchSt := make(map[int]abi.Stat)
	if f.cachesOn && len(reqs) > 1 {
		f.dc.statBatches.Add(1)
		paths := make([]string, len(reqs))
		opts := make([]walkOpts, len(reqs))
		for i, r := range reqs {
			if r.Kind == MetaReadlink {
				continue // needs the backend (or memoized target) anyway
			}
			o := walkOpts{follow: r.Kind != MetaLstat}
			if hadTrailingSlash(r.Path) {
				o.follow, o.requireDir = true, true
			}
			opts[i] = o
			if !strings.Contains(r.Path, "..") {
				// ".."-containing paths are never whole-walk cached
				// (namei.go); an empty path skips them in the batch pass.
				paths[i] = r.Path
			}
		}
		ents, ok := f.dc.getWalkBatch(paths, opts)
		for i := range reqs {
			if !ok[i] {
				continue
			}
			st := ents[i].st
			f.patchDirtyStat(ents[i].path, &st)
			switch reqs[i].Kind {
			case MetaStat, MetaLstat, MetaAccess:
				res[i].St = st
				resolved[i] = true
			case MetaOpen:
				batchSt[i] = st
			}
		}
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(reqs) {
			cb(res)
			return
		}
		if resolved[i] {
			step(i + 1)
			return
		}
		next := func() { step(i + 1) }
		r := reqs[i]
		switch r.Kind {
		case MetaStat, MetaLstat, MetaAccess:
			f.walk(r.Path, walkOpts{follow: r.Kind != MetaLstat}, func(e walkEnt) {
				if e.err != abi.OK {
					res[i].Err = e.err
				} else {
					res[i].St = e.st
					f.patchDirtyStat(e.path, &res[i].St)
				}
				next()
			})
		case MetaReadlink:
			f.Readlink(r.Path, func(target string, err abi.Errno) {
				res[i].Target, res[i].Err = target, err
				next()
			})
		case MetaOpen:
			cont := func(st abi.Stat, serr abi.Errno) { f.metaOpen(r, st, serr, &res[i], next) }
			if st, ok := batchSt[i]; ok {
				cont(st, abi.OK)
				return
			}
			f.Stat(r.Path, cont)
		default:
			res[i].Err = abi.EINVAL
			next()
		}
	}
	step(0)
}

// metaOpen finishes a MetaOpen element from its stat result, mirroring
// the kernel's open split exactly: directories resolve without touching
// a backend (the kernel installs its directory object over St); regular
// files go through the ordinary Open path — page-cached handles, write
// barriers and all.
func (f *FileSystem) metaOpen(r MetaReq, st abi.Stat, serr abi.Errno, out *MetaRes, next func()) {
	if serr == abi.OK && st.IsDir() {
		if r.Flags&abi.O_ACCMODE != abi.O_RDONLY {
			out.Err = abi.EISDIR
			next()
			return
		}
		out.St = st
		next()
		return
	}
	if r.Flags&abi.O_DIRECTORY != 0 {
		if serr != abi.OK {
			out.Err = serr
		} else {
			out.Err = abi.ENOTDIR
		}
		next()
		return
	}
	f.Open(r.Path, r.Flags, r.Mode, func(h FileHandle, err abi.Errno) {
		out.St, out.Err, out.Handle = st, err, h
		next()
	})
}

// Stat stats a path, following symlinks (a StatBatch of one).
func (f *FileSystem) Stat(p string, cb func(abi.Stat, abi.Errno)) {
	f.StatBatch([]StatReq{{Path: p}}, func(sts []abi.Stat, errs []abi.Errno) {
		cb(sts[0], errs[0])
	})
}

// Resolve walks p (following symlinks) and reports the canonical,
// symlink-free absolute path of the result along with its attributes —
// what chdir must store so later relative lookups agree with what was
// validated.
func (f *FileSystem) Resolve(p string, cb func(string, abi.Stat, abi.Errno)) {
	f.walk(p, walkOpts{follow: true}, func(e walkEnt) {
		if e.err != abi.OK {
			cb("", abi.Stat{}, e.err)
			return
		}
		cb(e.path, e.st, abi.OK)
	})
}

// Lstat stats a path without following a trailing symlink (a StatBatch
// of one).
func (f *FileSystem) Lstat(p string, cb func(abi.Stat, abi.Errno)) {
	f.StatBatch([]StatReq{{Path: p, Lstat: true}}, func(sts []abi.Stat, errs []abi.Errno) {
		cb(sts[0], errs[0])
	})
}

// Open opens (and with O_CREAT possibly creates) a file. Read-only opens
// on cacheable backends return page-cached handles whose backend handle
// is opened lazily; write-capable handles invalidate the caches as they
// mutate.
func (f *FileSystem) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	wantsWrite := flags&abi.O_ACCMODE != abi.O_RDONLY || flags&(abi.O_CREAT|abi.O_TRUNC) != 0
	f.walk(p, walkOpts{follow: true}, func(e walkEnt) {
		// Open barrier: buffered write-back state for this path flushes
		// before any new handle is born, so every new reader (or writer)
		// observes the flushed bytes — cross-handle read-your-writes.
		// The open proceeds regardless; a flush failure is recorded for
		// the next fsync on the path.
		if e.path != "" && f.pc.dirty[e.path] != nil {
			f.flushPath(e.path, func(err abi.Errno) {
				f.recordFlushErr(e.path, err)
				f.openResolved(e, p, flags, mode, wantsWrite, cb)
			})
			return
		}
		f.openResolved(e, p, flags, mode, wantsWrite, cb)
	})
}

// openResolved continues Open once the walk result is known and any
// write-back barrier has run.
func (f *FileSystem) openResolved(e walkEnt, p string, flags int, mode uint32, wantsWrite bool, cb func(FileHandle, abi.Errno)) {
	switch {
	case e.err == abi.OK:
		if flags&abi.O_DIRECTORY != 0 && !e.st.IsDir() {
			cb(nil, abi.ENOTDIR)
			return
		}
		if e.st.IsRegular() && !wantsWrite && f.cachesOn && cacheableBackend(e.backend) {
			b, rel := e.backend, e.rel
			ph := &pagedHandle{
				fs:    f,
				path:  e.path,
				st:    e.st,
				gen:   f.pc.gen(e.path),
				dedup: dedupableBackend(e.backend),
				open:  func(icb func(FileHandle, abi.Errno)) { b.Open(rel, flags, mode, icb) },
			}
			if b.ReadOnly() {
				// Nothing can unlink beneath a read-only backend, so
				// the backend open is safely deferred to the first
				// page miss — a fully cached hot file is reopened
				// with zero backend calls.
				cb(ph, abi.OK)
				return
			}
			// Mutable backend (overlay): open eagerly so the handle
			// keeps working if the path is unlinked afterwards.
			ph.ensureInner(func(_ FileHandle, err abi.Errno) {
				if err != abi.OK {
					cb(nil, err)
					return
				}
				cb(ph, abi.OK)
			})
			return
		}
		if wantsWrite {
			f.invalidatePath(e.path)
		}
		f.openAt(e, flags, mode, wantsWrite, cb)
	case e.err == abi.ENOENT && e.canCreate && flags&abi.O_CREAT != 0:
		if hadTrailingSlash(p) {
			// open("missing/", O_CREAT): only a directory could
			// satisfy the trailing slash; open cannot create one.
			cb(nil, abi.EISDIR)
			return
		}
		f.invalidateEntry(e.path, e.parent)
		f.openAt(e, flags, mode, true, cb)
	default:
		cb(nil, e.err)
	}
}

// openAt opens e's path on its backend and wraps the handle so writes
// keep invalidating the caches for the canonical path. Mutating opens
// (create/truncate/write) invalidate again on completion — the open may
// have been asynchronous, and a concurrent lookup could have re-cached
// pre-mutation state mid-flight. With write-back enabled, write-capable
// handles become writebackHandles: their writes buffer as dirty extents
// and coalesce into vectored backend flushes (writeback.go).
func (f *FileSystem) openAt(e walkEnt, flags int, mode uint32, mutates bool, cb func(FileHandle, abi.Errno)) {
	e.backend.Open(e.rel, flags, mode, func(h FileHandle, err abi.Errno) {
		if mutates {
			f.invalidateEntry(e.path, e.parent)
		}
		if err != abi.OK {
			cb(nil, err)
			return
		}
		if mutates && f.writeBack && f.cachesOn && writeBackableBackend(e.backend) {
			// The generation is captured after the invalidation above,
			// so the fresh handle is current.
			cb(&writebackHandle{fs: f, path: e.path, gen: f.pc.gen(e.path), inner: h}, abi.OK)
			return
		}
		cb(&invalHandle{FileHandle: h, fs: f, path: e.path}, abi.OK)
	})
}

// Readdir lists a directory, synthesizing entries for mount points at or
// below it — `ls /` shows /usr even when the only thing under /usr is a
// mount three levels down and no backend has the directory. Complete
// listings are cached in the dentry layer (keyed by canonical path) and
// invalidated by the same hooks every mutating operation already runs,
// so a stat storm's getdents — or fs.Glob on the public facade — never
// re-hits a backend while the directory is unchanged.
func (f *FileSystem) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	f.walk(p, walkOpts{follow: true}, func(e walkEnt) {
		if e.err != abi.OK {
			cb(nil, e.err)
			return
		}
		if !e.st.IsDir() {
			cb(nil, abi.ENOTDIR)
			return
		}
		dir := e.path
		if f.cachesOn {
			if ents, ok := f.dc.getDir(dir); ok {
				// Hand out a copy: callers may hold the slice across
				// later invalidations.
				cb(append([]abi.Dirent(nil), ents...), abi.OK)
				return
			}
		}
		e.backend.Readdir(e.rel, func(ents []abi.Dirent, err abi.Errno) {
			if err != abi.OK {
				// A synthetic mount ancestor lists nothing but nested
				// mounts; real backend failures (EIO...) still surface.
				if (err != abi.ENOENT && err != abi.ENOTDIR) || !f.mountAncestor(dir) {
					cb(nil, err)
					return
				}
				ents = nil
			}
			dirSlash := dir
			if dirSlash != "/" {
				dirSlash += "/"
			}
			seen := make(map[string]bool, len(ents))
			for _, d := range ents {
				seen[d.Name] = true
			}
			for _, m := range f.mounts {
				if m.prefix == "/" || !strings.HasPrefix(m.prefix, dirSlash) {
					continue
				}
				name := m.prefix[len(dirSlash):]
				if i := strings.IndexByte(name, '/'); i >= 0 {
					name = name[:i]
				}
				if name != "" && !seen[name] {
					ents = append(ents, abi.Dirent{Name: name, Type: abi.DT_DIR})
					seen[name] = true
				}
			}
			sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
			if f.cachesOn {
				f.dc.putDir(dir, append([]abi.Dirent(nil), ents...))
			}
			cb(ents, abi.OK)
		})
	})
}

// Mkdir creates a directory.
func (f *FileSystem) Mkdir(p string, mode uint32, cb func(abi.Errno)) {
	f.walk(p, walkOpts{}, func(e walkEnt) {
		switch {
		case e.err == abi.OK && e.synthetic:
			// The directory exists only as a synthesized mount-point
			// ancestor: create it for real in the owning backend, so
			// entries can be created beneath it (MkdirAll depends on
			// this).
			f.invalidateEntry(e.path, e.parent)
			e.backend.Mkdir(e.rel, mode, func(err abi.Errno) {
				f.invalidateEntry(e.path, e.parent)
				cb(err)
			})
		case e.err == abi.OK:
			cb(abi.EEXIST)
		case e.err == abi.ENOENT && e.canCreate:
			f.invalidateEntry(e.path, e.parent)
			e.backend.Mkdir(e.rel, mode, func(err abi.Errno) {
				f.invalidateEntry(e.path, e.parent)
				cb(err)
			})
		default:
			cb(e.err)
		}
	})
}

// MkdirAll creates a directory and any missing parents.
func (f *FileSystem) MkdirAll(p string, mode uint32, cb func(abi.Errno)) {
	p = Clean(p)
	var step func(i int)
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	step = func(i int) {
		if i > len(parts) {
			cb(abi.OK)
			return
		}
		sub := "/" + strings.Join(parts[:i], "/")
		f.Mkdir(sub, mode, func(err abi.Errno) {
			if err != abi.OK && err != abi.EEXIST {
				cb(err)
				return
			}
			step(i + 1)
		})
	}
	if p == "/" {
		cb(abi.OK)
		return
	}
	step(1)
}

// Rmdir removes an empty directory.
//
// Like every mutating operation below, the caches are invalidated both
// before dispatch and again in the completion callback: a backend may
// complete asynchronously (overlay copy-up over the network), and a
// concurrent lookup mid-flight would otherwise re-cache pre-mutation
// state that nothing invalidates afterwards.
func (f *FileSystem) Rmdir(p string, cb func(abi.Errno)) {
	f.walk(p, walkOpts{}, func(e walkEnt) {
		if e.err != abi.OK {
			cb(e.err)
			return
		}
		f.invalidateTree(e.path, e.parent)
		e.backend.Rmdir(e.rel, func(err abi.Errno) {
			f.invalidateTree(e.path, e.parent)
			cb(err)
		})
	})
}

// Unlink removes a file or symlink.
func (f *FileSystem) Unlink(p string, cb func(abi.Errno)) {
	if hadTrailingSlash(p) {
		// unlink("p/") can never name a file.
		f.walk(p, walkOpts{}, func(e walkEnt) {
			if e.err != abi.OK {
				cb(e.err)
				return
			}
			cb(abi.EISDIR)
		})
		return
	}
	f.walk(p, walkOpts{}, func(e walkEnt) {
		if e.err != abi.OK {
			cb(e.err)
			return
		}
		f.invalidateEntry(e.path, e.parent)
		e.backend.Unlink(e.rel, func(err abi.Errno) {
			f.invalidateEntry(e.path, e.parent)
			cb(err)
		})
	})
}

// Rename moves a file within a single backend; cross-backend moves return
// EXDEV, as on Unix.
func (f *FileSystem) Rename(oldp, newp string, cb func(abi.Errno)) {
	f.walk(oldp, walkOpts{}, func(oe walkEnt) {
		if oe.err != abi.OK {
			cb(oe.err)
			return
		}
		f.walk(newp, walkOpts{}, func(ne walkEnt) {
			if ne.err != abi.OK && !ne.canCreate {
				cb(ne.err)
				return
			}
			if oe.backend != ne.backend {
				cb(abi.EXDEV)
				return
			}
			// Only a directory rename moves a subtree; file renames
			// need (and pay for) per-entry invalidation only. A dir on
			// either end (e.g. file replacing an empty dir) still takes
			// the tree path: entries below it may be cached.
			invalidate := func() {
				if oe.st.IsDir() || (ne.err == abi.OK && ne.st.IsDir()) {
					f.invalidateTree(oe.path, oe.parent)
					f.invalidateTree(ne.path, ne.parent)
				} else {
					f.invalidateEntry(oe.path, oe.parent)
					f.invalidateEntry(ne.path, ne.parent)
				}
			}
			invalidate()
			oe.backend.Rename(oe.rel, ne.rel, func(err abi.Errno) {
				invalidate()
				cb(err)
			})
		})
	})
}

// Readlink reads a symlink target.
func (f *FileSystem) Readlink(p string, cb func(string, abi.Errno)) {
	f.walk(p, walkOpts{}, func(e walkEnt) {
		if e.err != abi.OK {
			cb("", e.err)
			return
		}
		if !e.st.IsSymlink() {
			cb("", abi.EINVAL)
			return
		}
		e.backend.Readlink(e.rel, cb)
	})
}

// Symlink creates a symlink at linkp pointing to target.
func (f *FileSystem) Symlink(target, linkp string, cb func(abi.Errno)) {
	f.walk(linkp, walkOpts{}, func(e walkEnt) {
		if e.err == abi.OK {
			// Exists in the merged view (possibly only in an overlay's
			// lower layer, which the backend alone would not notice).
			cb(abi.EEXIST)
			return
		}
		if !e.canCreate {
			cb(e.err)
			return
		}
		f.invalidateEntry(e.path, e.parent)
		e.backend.Symlink(target, e.rel, func(err abi.Errno) {
			f.invalidateEntry(e.path, e.parent)
			cb(err)
		})
	})
}

// Utimes sets access/modification times.
func (f *FileSystem) Utimes(p string, atime, mtime int64, cb func(abi.Errno)) {
	f.walk(p, walkOpts{follow: true}, func(e walkEnt) {
		if e.err != abi.OK {
			cb(e.err)
			return
		}
		f.invalidatePath(e.path)
		e.backend.Utimes(e.rel, atime, mtime, func(err abi.Errno) {
			f.invalidatePath(e.path)
			cb(err)
		})
	})
}

// Access checks existence (permission bits are not enforced: Browsix
// relies on the browser sandbox instead of users, §3.1).
func (f *FileSystem) Access(p string, amode int, cb func(abi.Errno)) {
	f.Stat(p, func(st abi.Stat, err abi.Errno) { cb(err) })
}

// ReadFile slurps a whole file (convenience for the kernel and web app).
func (f *FileSystem) ReadFile(p string, cb func([]byte, abi.Errno)) {
	f.Open(p, abi.O_RDONLY, 0, func(h FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		h.Stat(func(st abi.Stat, err abi.Errno) {
			if err != abi.OK {
				h.Close(func(abi.Errno) {})
				cb(nil, err)
				return
			}
			h.Pread(0, int(st.Size), func(data []byte, err abi.Errno) {
				h.Close(func(abi.Errno) {})
				cb(data, err)
			})
		})
	})
}

// WriteFile creates/truncates a file with the given contents.
func (f *FileSystem) WriteFile(p string, data []byte, mode uint32, cb func(abi.Errno)) {
	f.Open(p, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, mode, func(h FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		h.Pwrite(0, data, func(n int, err abi.Errno) {
			h.Close(func(abi.Errno) {})
			cb(err)
		})
	})
}

// ---------------------------------------------------------------------------
// invalHandle: a write-capable handle that keeps the caches honest.
// ---------------------------------------------------------------------------

// invalHandle wraps a backend handle so every mutation drops the cached
// dentry (attributes) and pages for the canonical path, even writes on
// descriptors that were opened read-only. Reads barrier on buffered
// write-back state for the path: another handle's completed writes are
// observable (POSIX read-after-write) even while they are only in the
// dirty extents.
type invalHandle struct {
	FileHandle
	fs   *FileSystem
	path string
}

func (h *invalHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	if h.fs.pc.dirty[h.path] != nil {
		h.fs.flushPath(h.path, func(err abi.Errno) {
			h.fs.recordFlushErr(h.path, err)
			h.FileHandle.Pread(off, n, cb)
		})
		return
	}
	h.FileHandle.Pread(off, n, cb)
}

func (h *invalHandle) Preadv(off int64, lens []int, cb func([][]byte, abi.Errno)) {
	if h.fs.pc.dirty[h.path] != nil {
		h.fs.flushPath(h.path, func(err abi.Errno) {
			h.fs.recordFlushErr(h.path, err)
			h.FileHandle.Preadv(off, lens, cb)
		})
		return
	}
	h.FileHandle.Preadv(off, lens, cb)
}

func (h *invalHandle) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.FileHandle.Pwrite(off, data, func(n int, err abi.Errno) {
		h.fs.invalidatePath(h.path)
		cb(n, err)
	})
}

func (h *invalHandle) Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.FileHandle.Pwritev(off, bufs, func(n int, err abi.Errno) {
		h.fs.invalidatePath(h.path)
		cb(n, err)
	})
}

func (h *invalHandle) Truncate(size int64, cb func(abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.FileHandle.Truncate(size, func(err abi.Errno) {
		h.fs.invalidatePath(h.path)
		cb(err)
	})
}

// ---------------------------------------------------------------------------
// Vectored fallbacks for backends whose natural representation is scalar.
// ---------------------------------------------------------------------------

// genericPreadv implements Preadv as one coalesced Pread (the fallback
// for handles with no cheaper representation).
func genericPreadv(h FileHandle, off int64, lens []int, cb func([][]byte, abi.Errno)) {
	total := 0
	for _, n := range lens {
		total += n
	}
	h.Pread(off, total, func(data []byte, err abi.Errno) {
		if err != abi.OK || len(data) == 0 {
			cb(nil, err)
			return
		}
		cb([][]byte{data}, abi.OK)
	})
}
