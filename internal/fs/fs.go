// Package fs reimplements the file-system layer Browsix builds on: Doppio's
// BrowserFS plus the Browsix extensions described in §3.6 of the paper.
//
// Like BrowserFS, the API is callback-based (continuation-passing style):
// the kernel runs on the browser's main thread and can never block, so
// every operation takes a completion callback. Purely in-memory backends
// complete synchronously (the callback runs before the call returns);
// network-backed backends complete later via simulator events.
//
// The package provides:
//   - a mount table combining multiple backends into one hierarchy,
//   - an in-memory backend (memfs),
//   - a read-only HTTP-backed backend with an index file and lazy per-file
//     fetching (httpfs — BrowserFS's XmlHttpRequest backend),
//   - a read-only zip-file backend (zipfs),
//   - an overlay backend with lazy copy-up, a deletion log, and the
//     multi-process locking Browsix added (overlayfs).
package fs

import (
	"path"
	"sort"
	"strings"

	"repro/internal/abi"
)

// FileHandle is an open file. Reads and writes are positional, as in
// BrowserFS; the kernel layers file offsets on top.
type FileHandle interface {
	// Pread reads up to n bytes at off. A short or empty result at EOF
	// is not an error.
	Pread(off int64, n int, cb func([]byte, abi.Errno))
	// Pwrite writes data at off, returning bytes written.
	Pwrite(off int64, data []byte, cb func(int, abi.Errno))
	// Stat describes the open file.
	Stat(cb func(abi.Stat, abi.Errno))
	// Truncate sets the file size.
	Truncate(size int64, cb func(abi.Errno))
	// Close releases the handle.
	Close(cb func(abi.Errno))
}

// Backend is one mounted file system implementation. Paths are absolute
// within the backend ("/" is the backend's root) and already cleaned.
type Backend interface {
	Name() string
	ReadOnly() bool
	Stat(p string, cb func(abi.Stat, abi.Errno))
	// Lstat is like Stat but does not follow a trailing symlink.
	Lstat(p string, cb func(abi.Stat, abi.Errno))
	Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno))
	Readdir(p string, cb func([]abi.Dirent, abi.Errno))
	Mkdir(p string, mode uint32, cb func(abi.Errno))
	Rmdir(p string, cb func(abi.Errno))
	Unlink(p string, cb func(abi.Errno))
	Rename(oldp, newp string, cb func(abi.Errno))
	Readlink(p string, cb func(string, abi.Errno))
	Symlink(target, linkp string, cb func(abi.Errno))
	Utimes(p string, atime, mtime int64, cb func(abi.Errno))
}

// mount is one entry in the mount table.
type mount struct {
	prefix  string // "/", "/usr/share/texlive", ...
	backend Backend
}

// FileSystem is the kernel's BrowserFS instance: a mount table over
// backends, with symlink resolution at the top level.
type FileSystem struct {
	mounts []mount // sorted by descending prefix length
	now    func() int64
}

// NewFileSystem creates a file system whose root is the given backend.
// now supplies virtual time for mtimes.
func NewFileSystem(root Backend, now func() int64) *FileSystem {
	f := &FileSystem{now: now}
	f.mounts = []mount{{prefix: "/", backend: root}}
	return f
}

// Mount attaches a backend at prefix (an absolute, existing-or-not path).
// Longest-prefix wins at resolution, like BrowserFS's MountableFileSystem.
func (f *FileSystem) Mount(prefix string, b Backend) {
	prefix = Clean(prefix)
	f.mounts = append(f.mounts, mount{prefix: prefix, backend: b})
	sort.SliceStable(f.mounts, func(i, j int) bool {
		return len(f.mounts[i].prefix) > len(f.mounts[j].prefix)
	})
}

// Mounts lists mount points (diagnostics, and the terminal's `mount`).
func (f *FileSystem) Mounts() []string {
	out := make([]string, len(f.mounts))
	for i, m := range f.mounts {
		out[i] = m.prefix + " (" + m.backend.Name() + ")"
	}
	return out
}

// Clean normalizes an absolute path.
func Clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// resolve finds the backend owning p and p's path within it.
func (f *FileSystem) resolve(p string) (Backend, string) {
	p = Clean(p)
	for _, m := range f.mounts {
		if p == m.prefix {
			return m.backend, "/"
		}
		pre := m.prefix
		if pre != "/" {
			pre += "/"
		}
		if strings.HasPrefix(p, pre) {
			return m.backend, Clean(p[len(m.prefix):])
		}
	}
	// Unreachable: the root mount matches everything.
	return f.mounts[len(f.mounts)-1].backend, p
}

const maxSymlinks = 8

// followPath resolves trailing symlinks (up to maxSymlinks), then calls
// done with the final absolute path. Symlinks in intermediate components
// are not resolved (BrowserFS-level fidelity; the paper's workloads do not
// need them).
func (f *FileSystem) followPath(p string, depth int, done func(string, abi.Errno)) {
	if depth > maxSymlinks {
		done("", abi.ELOOP)
		return
	}
	b, rel := f.resolve(p)
	b.Lstat(rel, func(st abi.Stat, err abi.Errno) {
		if err != abi.OK || !st.IsSymlink() {
			done(Clean(p), abi.OK) // missing files resolve to themselves
			return
		}
		b.Readlink(rel, func(target string, err abi.Errno) {
			if err != abi.OK {
				done("", err)
				return
			}
			if !strings.HasPrefix(target, "/") {
				target = path.Join(path.Dir(Clean(p)), target)
			}
			f.followPath(target, depth+1, done)
		})
	})
}

// Stat stats a path, following symlinks.
func (f *FileSystem) Stat(p string, cb func(abi.Stat, abi.Errno)) {
	f.followPath(p, 0, func(rp string, err abi.Errno) {
		if err != abi.OK {
			cb(abi.Stat{}, err)
			return
		}
		b, rel := f.resolve(rp)
		b.Stat(rel, cb)
	})
}

// Lstat stats a path without following a trailing symlink.
func (f *FileSystem) Lstat(p string, cb func(abi.Stat, abi.Errno)) {
	b, rel := f.resolve(p)
	b.Lstat(rel, cb)
}

// Open opens (and with O_CREAT possibly creates) a file.
func (f *FileSystem) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	f.followPath(p, 0, func(rp string, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		b, rel := f.resolve(rp)
		b.Open(rel, flags, mode, cb)
	})
}

// Readdir lists a directory.
func (f *FileSystem) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	f.followPath(p, 0, func(rp string, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		b, rel := f.resolve(rp)
		b.Readdir(rel, func(ents []abi.Dirent, err abi.Errno) {
			if err != abi.OK {
				cb(nil, err)
				return
			}
			// Synthesize entries for mount points living directly
			// under this directory.
			dir := Clean(rp)
			seen := map[string]bool{}
			for _, e := range ents {
				seen[e.Name] = true
			}
			for _, m := range f.mounts {
				if m.prefix == "/" || path.Dir(m.prefix) != dir {
					continue
				}
				name := path.Base(m.prefix)
				if !seen[name] {
					ents = append(ents, abi.Dirent{Name: name, Type: abi.DT_DIR})
					seen[name] = true
				}
			}
			sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
			cb(ents, abi.OK)
		})
	})
}

// Mkdir creates a directory.
func (f *FileSystem) Mkdir(p string, mode uint32, cb func(abi.Errno)) {
	b, rel := f.resolve(p)
	b.Mkdir(rel, mode, cb)
}

// MkdirAll creates a directory and any missing parents.
func (f *FileSystem) MkdirAll(p string, mode uint32, cb func(abi.Errno)) {
	p = Clean(p)
	var step func(i int)
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	step = func(i int) {
		if i > len(parts) {
			cb(abi.OK)
			return
		}
		sub := "/" + strings.Join(parts[:i], "/")
		f.Mkdir(sub, mode, func(err abi.Errno) {
			if err != abi.OK && err != abi.EEXIST {
				cb(err)
				return
			}
			step(i + 1)
		})
	}
	if p == "/" {
		cb(abi.OK)
		return
	}
	step(1)
}

// Rmdir removes an empty directory.
func (f *FileSystem) Rmdir(p string, cb func(abi.Errno)) {
	b, rel := f.resolve(p)
	b.Rmdir(rel, cb)
}

// Unlink removes a file or symlink.
func (f *FileSystem) Unlink(p string, cb func(abi.Errno)) {
	b, rel := f.resolve(p)
	b.Unlink(rel, cb)
}

// Rename moves a file within a single backend; cross-backend moves return
// EXDEV, as on Unix.
func (f *FileSystem) Rename(oldp, newp string, cb func(abi.Errno)) {
	ob, orel := f.resolve(oldp)
	nb, nrel := f.resolve(newp)
	if ob != nb {
		cb(abi.EXDEV)
		return
	}
	ob.Rename(orel, nrel, cb)
}

// Readlink reads a symlink target.
func (f *FileSystem) Readlink(p string, cb func(string, abi.Errno)) {
	b, rel := f.resolve(p)
	b.Readlink(rel, cb)
}

// Symlink creates a symlink at linkp pointing to target.
func (f *FileSystem) Symlink(target, linkp string, cb func(abi.Errno)) {
	b, rel := f.resolve(linkp)
	b.Symlink(target, rel, cb)
}

// Utimes sets access/modification times.
func (f *FileSystem) Utimes(p string, atime, mtime int64, cb func(abi.Errno)) {
	f.followPath(p, 0, func(rp string, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		b, rel := f.resolve(rp)
		b.Utimes(rel, atime, mtime, cb)
	})
}

// Access checks existence (permission bits are not enforced: Browsix
// relies on the browser sandbox instead of users, §3.1).
func (f *FileSystem) Access(p string, amode int, cb func(abi.Errno)) {
	f.Stat(p, func(st abi.Stat, err abi.Errno) { cb(err) })
}

// ReadFile slurps a whole file (convenience for the kernel and web app).
func (f *FileSystem) ReadFile(p string, cb func([]byte, abi.Errno)) {
	f.Open(p, abi.O_RDONLY, 0, func(h FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		h.Stat(func(st abi.Stat, err abi.Errno) {
			if err != abi.OK {
				h.Close(func(abi.Errno) {})
				cb(nil, err)
				return
			}
			h.Pread(0, int(st.Size), func(data []byte, err abi.Errno) {
				h.Close(func(abi.Errno) {})
				cb(data, err)
			})
		})
	})
}

// WriteFile creates/truncates a file with the given contents.
func (f *FileSystem) WriteFile(p string, data []byte, mode uint32, cb func(abi.Errno)) {
	f.Open(p, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, mode, func(h FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		h.Pwrite(0, data, func(n int, err abi.Errno) {
			h.Close(func(abi.Errno) {})
			cb(err)
		})
	})
}
