package fs

import (
	"testing"

	"repro/internal/abi"
)

func newLSFS(quota int64) (*LocalStorageFS, *FileSystem) {
	ls := NewLocalStorageFS(now, quota)
	return ls, NewFileSystem(ls, func() int64 { return clock })
}

func TestLocalStorageQuotaEnforced(t *testing.T) {
	ls, f := newLSFS(1000)
	var err abi.Errno
	f.WriteFile("/a", make([]byte, 600), 0o644, func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("first write: %v", err)
	}
	if ls.Used() != 600 {
		t.Fatalf("used = %d", ls.Used())
	}
	// Second write exceeds the quota.
	f.WriteFile("/b", make([]byte, 600), 0o644, func(e abi.Errno) { err = e })
	if err != abi.ENOSPC {
		t.Fatalf("over-quota write = %v, want ENOSPC", err)
	}
	// Removing content frees quota.
	f.Unlink("/a", func(e abi.Errno) { err = e })
	if err != abi.OK || ls.Used() != 0 {
		t.Fatalf("unlink refund: err=%v used=%d", err, ls.Used())
	}
	f.WriteFile("/b", make([]byte, 600), 0o644, func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("write after refund: %v", err)
	}
}

func TestLocalStorageTruncRefunds(t *testing.T) {
	ls, f := newLSFS(1000)
	f.WriteFile("/f", make([]byte, 900), 0o644, func(abi.Errno) {})
	if ls.Used() != 900 {
		t.Fatalf("used = %d", ls.Used())
	}
	// Overwrite with O_TRUNC: old bytes refunded before new accounted.
	var err abi.Errno
	f.WriteFile("/f", make([]byte, 500), 0o644, func(e abi.Errno) { err = e })
	if err != abi.OK || ls.Used() != 500 {
		t.Fatalf("rewrite: err=%v used=%d", err, ls.Used())
	}
	// Explicit truncate shrink.
	f.Open("/f", abi.O_RDWR, 0, func(h FileHandle, e abi.Errno) {
		h.Truncate(100, func(e abi.Errno) { err = e })
	})
	if err != abi.OK || ls.Used() != 100 {
		t.Fatalf("truncate: err=%v used=%d", err, ls.Used())
	}
	// Truncate growth past quota fails.
	f.Open("/f", abi.O_RDWR, 0, func(h FileHandle, e abi.Errno) {
		h.Truncate(5000, func(e abi.Errno) { err = e })
	})
	if err != abi.ENOSPC {
		t.Fatalf("grow past quota = %v", err)
	}
}

func TestLocalStorageDefaultQuota(t *testing.T) {
	ls := NewLocalStorageFS(now, 0)
	if ls.Quota() != DefaultLocalStorageQuota {
		t.Fatalf("quota = %d", ls.Quota())
	}
	if ls.Name() != "localstorage" {
		t.Fatal("name")
	}
}

func TestLocalStorageAsMount(t *testing.T) {
	// Typical usage: a small persistent mount under a memfs root.
	root := NewMemFS(now)
	f := NewFileSystem(root, func() int64 { return clock })
	mustMkdirAll(t, f, "/persist")
	f.Mount("/persist", NewLocalStorageFS(now, 2048))
	mustWrite(t, f, "/persist/settings.json", `{"theme":"dark"}`)
	if got := mustRead(t, f, "/persist/settings.json"); got != `{"theme":"dark"}` {
		t.Fatalf("read back: %q", got)
	}
	var err abi.Errno
	f.WriteFile("/persist/huge", make([]byte, 4096), 0o644, func(e abi.Errno) { err = e })
	if err != abi.ENOSPC {
		t.Fatalf("mounted quota = %v", err)
	}
}
