package fs

import (
	"bytes"
	"testing"

	"repro/internal/abi"
)

// Zero-copy write path unit tests: staging-slot leases, in-place
// adoption of staged bytes as dirty write-back state, the ownership
// interlock between the guest lease and the flusher's pins, and the
// lease-aware LRU eviction that makes room for staging under pressure.

// TestGrantGranuleLockstep is the runtime companion of the compile-time
// assert in pagepool.go: the fs page granule and the ABI grant granule
// must be the same constant, since write grants name slot-relative byte
// ranges across the kernel boundary in page units.
func TestGrantGranuleLockstep(t *testing.T) {
	if PageSize != abi.GrantPageSize {
		t.Fatalf("fs.PageSize = %d, abi.GrantPageSize = %d — granules drifted",
			PageSize, abi.GrantPageSize)
	}
}

// stageInto writes payload into a staged slot through the arena mapping,
// the way a guest would, and returns the reference naming it.
func stageInto(f *FileSystem, slot int, off int, payload []byte) SlotRef {
	copy(f.pc.pool.arena[slot*PageSize+off:], payload)
	return SlotRef{Slot: slot, Off: off, Len: len(payload)}
}

func TestAllocWriteSlotsLeaseAndAdopt(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	f.SetWriteBack(true)

	slots := f.AllocWriteSlots(2)
	if len(slots) != 2 {
		t.Fatalf("AllocWriteSlots(2) = %d slots", len(slots))
	}
	if f.WriteStagedSlots() != 2 {
		t.Fatalf("staged slots = %d, want 2", f.WriteStagedSlots())
	}
	for _, s := range slots {
		if f.pc.pool.pinCount(s) != 1 {
			t.Fatalf("slot %d pins = %d, want 1 (the guest lease)", s, f.pc.pool.pinCount(s))
		}
	}

	// Stage two sequential chunks and adopt them at offsets 0 and len.
	a := bytes.Repeat([]byte("A"), 300)
	b := bytes.Repeat([]byte("B"), 200)
	refA := stageInto(f, slots[0], 0, a)
	refB := stageInto(f, slots[0], 300, b)

	h := openWB(t, f, "/out.bin", abi.O_WRONLY|abi.O_CREAT)
	sw, ok := h.(SlotWriter)
	if !ok {
		t.Fatalf("write handle does not implement SlotWriter")
	}
	n, ok := sw.PwriteSlots(0, []SlotRef{refA, refB})
	if !ok || n != 500 {
		t.Fatalf("PwriteSlots = (%d, %v), want (500, true)", n, ok)
	}
	// Adoption pinned the slot once per extent-insert; the bytes are
	// buffered, not yet on the backend.
	if f.pc.pool.pinCount(slots[0]) < 2 {
		t.Fatalf("adopted slot pins = %d, want guest lease + adopter", f.pc.pool.pinCount(slots[0]))
	}
	if got := backendContent(t, mem, "/out.bin"); got != "" {
		t.Fatalf("bytes on backend before flush: %d", len(got))
	}

	// The guest returns its staging lease; adoption keeps the bytes
	// alive until the flush lands them.
	for _, s := range slots {
		if !f.UnleasePage(s) {
			t.Fatalf("unlease staged slot %d failed", s)
		}
	}
	if f.WriteStagedSlots() != 0 {
		t.Fatalf("staged slots remain after unlease")
	}
	closeH(t, h) // close flushes
	want := string(a) + string(b)
	if got := backendContent(t, mem, "/out.bin"); got != want {
		t.Fatalf("flushed content differs: got %d bytes, want %d", len(got), len(want))
	}
	if st := f.CacheStats(); st.PinnedPages != 0 {
		t.Fatalf("pins remain after flush: %+v", st)
	}
}

// TestStagedAppendStormSingleFlushWrite: an append storm submitted as
// slot references must coalesce into ONE vectored backend write — the
// extents alias the arena contiguously and the flusher groups
// file-adjacent runs.
func TestStagedAppendStormSingleFlushWrite(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	f.SetWriteBack(true)

	slots := f.AllocWriteSlots(1)
	if len(slots) != 1 {
		t.Fatalf("no staging slot")
	}
	h := openWB(t, f, "/storm.log", abi.O_WRONLY|abi.O_CREAT)
	sw := h.(SlotWriter)
	var want []byte
	off, used := int64(0), 0
	for i := 0; i < 64; i++ {
		line := []byte("append storm line\n")
		ref := stageInto(f, slots[0], used, line)
		if n, ok := sw.PwriteSlots(off, []SlotRef{ref}); !ok || n != len(line) {
			t.Fatalf("PwriteSlots #%d = (%d, %v)", i, n, ok)
		}
		want = append(want, line...)
		off += int64(len(line))
		used += len(line)
	}
	writesBefore := mem.WriteOps
	closeH(t, h)
	if got := mem.WriteOps - writesBefore; got != 1 {
		t.Fatalf("append storm flushed as %d backend writes, want 1", got)
	}
	if f.CacheStats().FlushWrites != 1 {
		t.Fatalf("FlushWrites = %d, want 1", f.CacheStats().FlushWrites)
	}
	if got := backendContent(t, mem, "/storm.log"); got != string(want) {
		t.Fatalf("storm content differs (%d vs %d bytes)", len(got), len(want))
	}
	f.UnleasePage(slots[0])
	if f.CacheStats().PinnedPages != 0 {
		t.Fatalf("pins remain after flush + unlease")
	}
}

// TestUnleaseOrderIndependence: the staged slot survives whichever side
// lets go last — guest lease first or adopter flush first — and the
// grant/return ledger balances either way.
func TestUnleaseOrderIndependence(t *testing.T) {
	for _, guestFirst := range []bool{true, false} {
		mem := NewMemFS(now)
		f := NewFileSystem(mem, func() int64 { return clock })
		f.SetWriteBack(true)
		slots := f.AllocWriteSlots(1)
		payload := bytes.Repeat([]byte("Z"), 128)
		ref := stageInto(f, slots[0], 0, payload)
		h := openWB(t, f, "/z", abi.O_WRONLY|abi.O_CREAT)
		if n, ok := h.(SlotWriter).PwriteSlots(0, []SlotRef{ref}); !ok || n != 128 {
			t.Fatalf("PwriteSlots = (%d, %v)", n, ok)
		}
		if guestFirst {
			f.UnleasePage(slots[0])
			closeH(t, h)
		} else {
			closeH(t, h)
			f.UnleasePage(slots[0])
		}
		if got := backendContent(t, mem, "/z"); got != string(payload) {
			t.Fatalf("guestFirst=%v: content differs", guestFirst)
		}
		st := f.CacheStats()
		if st.PinnedPages != 0 {
			t.Fatalf("guestFirst=%v: %d pins remain", guestFirst, st.PinnedPages)
		}
		if st.GrantedPages != st.ReturnedPages {
			t.Fatalf("guestFirst=%v: grants %d != returns %d",
				guestFirst, st.GrantedPages, st.ReturnedPages)
		}
		if !f.pc.pool.isFree(slots[0]) {
			t.Fatalf("guestFirst=%v: slot not reclaimed", guestFirst)
		}
	}
}

// TestAllocWriteSlotsEvictsLRUFirst: under arena pressure the staging
// allocator evicts the least-recently-used cached file — not everything,
// and never the recently touched one.
func TestAllocWriteSlotsEvictsLRUFirst(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	// A tiny shared-pool quota so pressure is reachable: 4 slots.
	f.SetPagePool(NewPagePool(poolSlots), 4)

	f.pc.store("/cold", 0, bytes.Repeat([]byte{1}, PageSize), false)
	f.pc.store("/hot", 0, bytes.Repeat([]byte{2}, PageSize), false)
	f.pc.touch(f.pc.files["/hot"]) // /hot is the most recently used

	// Both files cached (2 slots); asking for 3 staging slots forces one
	// eviction — the LRU victim must be /cold.
	slots := f.AllocWriteSlots(3)
	if len(slots) != 3 {
		t.Fatalf("AllocWriteSlots(3) = %d under pressure", len(slots))
	}
	if _, cached := f.pc.files["/hot"]; !cached {
		t.Fatalf("LRU eviction took the hot file")
	}
	if _, cached := f.pc.files["/cold"]; cached {
		t.Fatalf("cold file survived — nothing was evicted?")
	}
	for _, s := range slots {
		f.UnleasePage(s)
	}
}
