package fs

import "repro/internal/abi"

// The page pool is the shared-memory arena every cached page lives in:
// one flat region of PageSize slots the kernel exports to processes as a
// SharedArrayBuffer (the "mapped page cache"). Storing pages in slots —
// instead of per-page Go allocations — is what makes the zero-copy read
// path possible: a grant names (slot, arena offset, length) and the
// process reads the bytes through its own mapping of the arena, no
// kernel copy.
//
// Leases make that safe. A granted page is *pinned*; a pinned slot's
// bytes are never rewritten and the slot is never recycled. When an
// invalidation, flush, or cache eviction drops a pinned page, the slot
// detaches from the cache (no new reads or grants see it) but *freezes*
// — the bytes stay intact for the outstanding leaseholders — and is
// reclaimed for reuse only when the last lease is returned. This is the
// pipe layer's owned-segment discipline applied to cache pages:
// ownership of the bytes moves to the process until it hands them back.

// poolSlots bounds the arena: maxPageCacheBytes of PageSize slots.
const poolSlots = maxPageCacheBytes / PageSize

// pagePool is the slot allocator over the shared arena.
type pagePool struct {
	arena []byte // poolSlots * PageSize bytes; allocated on first use
	// free is the free-slot stack. pins counts outstanding leases per
	// slot; frozen marks slots dropped from the cache while pinned
	// (bytes preserved, freed on last unpin).
	free   []int
	pins   []int32
	frozen []bool

	pinned int // slots with pins > 0 (diagnostics)
}

// ensure allocates the arena on first use. The backing array is never
// reallocated afterwards: kernel-side SAB views alias it.
func (pp *pagePool) ensure() {
	if pp.arena != nil {
		return
	}
	pp.arena = make([]byte, poolSlots*PageSize)
	pp.pins = make([]int32, poolSlots)
	pp.frozen = make([]bool, poolSlots)
	pp.free = make([]int, poolSlots)
	// Ascending allocation order (slot 0 first) keeps runs deterministic.
	for i := range pp.free {
		pp.free[i] = poolSlots - 1 - i
	}
}

// alloc takes a free slot; ok is false when every slot is live or frozen
// (the caller evicts, or skips caching).
func (pp *pagePool) alloc() (int, bool) {
	pp.ensure()
	n := len(pp.free)
	if n == 0 {
		return 0, false
	}
	slot := pp.free[n-1]
	pp.free = pp.free[:n-1]
	return slot, true
}

// release detaches a slot from the cache: free immediately when no
// leases are outstanding, otherwise freeze it until the last unpin.
func (pp *pagePool) release(slot int) {
	if pp.pins[slot] > 0 {
		pp.frozen[slot] = true
		return
	}
	pp.free = append(pp.free, slot)
}

// pin takes one lease on a slot.
func (pp *pagePool) pin(slot int) {
	if pp.pins[slot] == 0 {
		pp.pinned++
	}
	pp.pins[slot]++
}

// unpin returns one lease; a frozen slot whose last lease returns goes
// back on the free stack.
func (pp *pagePool) unpin(slot int) bool {
	if slot < 0 || slot >= len(pp.pins) || pp.pins[slot] == 0 {
		return false
	}
	pp.pins[slot]--
	if pp.pins[slot] == 0 {
		pp.pinned--
		if pp.frozen[slot] {
			pp.frozen[slot] = false
			pp.free = append(pp.free, slot)
		}
	}
	return true
}

// data returns the live bytes of a slot's page.
func (pp *pagePool) data(pg poolPage) []byte {
	base := pg.slot * PageSize
	return pp.arena[base : base+pg.len]
}

// poolPage is one cached page: a pool slot holding len content bytes
// (a short page — len < PageSize — marks EOF, as before).
type poolPage struct {
	slot int
	len  int
}

// PagePoolBytes exposes the page-cache arena for sharing with processes
// (the kernel wraps it in a SharedArrayBuffer). Forces allocation.
func (f *FileSystem) PagePoolBytes() []byte {
	f.pc.pool.ensure()
	return f.pc.pool.arena
}

// UnleasePage returns one page lease; false if the slot held none.
func (f *FileSystem) UnleasePage(slot int) bool {
	if !f.pc.pool.unpin(slot) {
		return false
	}
	f.pc.returnedPages++
	return true
}

// PageRef references pinned bytes in the page pool: the fs-level
// currency of the zero-copy read path (abi.PageGrant is its wire form).
type PageRef struct {
	Slot int
	Gen  uint64
	Off  int64 // byte offset into the pool arena
	Len  int
}

// RefReader is the optional FileHandle extension the zero-copy read
// path drives: serve [off, off+n) as pinned page references when every
// byte is already resident and the handle is current. ok=false sends the
// caller down the ordinary copy path — same bytes, one copy. Refs are
// pinned on success; callers owe one UnleasePage per ref. max bounds the
// ref count (the caller's grant area size); a refusal never pins.
type RefReader interface {
	PreadRef(off int64, n, max int) ([]PageRef, bool)
}

var _ = abi.GrantPageSize // PageSize aliases the ABI granule (pagecache.go)
