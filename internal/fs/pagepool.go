package fs

import (
	"sync"
	"sync/atomic"

	"repro/internal/abi"
)

// The page pool is the shared-memory arena every cached page lives in:
// one flat region of PageSize slots the kernel exports to processes as a
// SharedArrayBuffer (the "mapped page cache"). Storing pages in slots —
// instead of per-page Go allocations — is what makes the zero-copy read
// path possible: a grant names (slot, arena offset, length) and the
// process reads the bytes through its own mapping of the arena, no
// kernel copy.
//
// Leases make that safe. A granted page is *pinned*; a pinned slot's
// bytes are never rewritten and the slot is never recycled. When an
// invalidation, flush, or cache eviction drops a pinned page, the slot
// detaches from the cache (no new reads or grants see it) but *freezes*
// — the bytes stay intact for the outstanding leaseholders — and is
// reclaimed for reuse only when the last lease is returned. This is the
// pipe layer's owned-segment discipline applied to cache pages:
// ownership of the bytes moves to the process until it hands them back.
//
// Concurrency. A pool may be shared by several FileSystems, each living
// in its own deterministic Instance running on its own host thread (the
// fleet scheduler): the arena is the ONLY structure those shards touch
// concurrently, so the pin/lease/freeze discipline is a real concurrent
// data structure. Each slot's lease state is one atomic word (a pin
// count plus a frozen bit) updated by CAS; the free stack and ownership
// bookkeeping sit behind a mutex taken only on alloc and on the final
// free. Every attached cache draws from its own slot *quota*, so one
// shard's allocation success never depends on how busy its neighbours
// are — each Instance stays bit-identical to its serial run while the
// slots interleave freely in the arena.

// poolSlots is the default arena size: maxPageCacheBytes of PageSize
// slots (the whole budget of a private, single-FileSystem pool).
const poolSlots = maxPageCacheBytes / PageSize

// DefaultPoolSlots is the private pool's slot capacity. A fleet shard
// given this quota in a shared arena hits slot exhaustion at exactly the
// same point a private-pool instance would, so its virtual clock is
// bit-identical to a serial run.
const DefaultPoolSlots = poolSlots

// slotFrozen marks a slot dropped from its cache while pinned (bytes
// preserved, freed on last unpin). The low bits are the pin count.
const slotFrozen = uint32(1) << 31

// pagePool is the slot allocator over the shared arena.
type pagePool struct {
	slots int

	allocOnce sync.Once
	arena     []byte // slots * PageSize bytes; allocated on first use

	// state holds each slot's lease word: pin count in the low 31 bits,
	// slotFrozen in the top bit. Transitions are CAS-only, so pin and
	// unpin from different shards never take a lock.
	state []atomic.Uint32

	// mu guards the free stack and the per-attachment accounting. owner
	// maps an allocated slot to the attachment that drew it; used/quota
	// are indexed by attachment id. A slot stays charged to its owner
	// until it physically returns to the free stack (frozen slots keep
	// their charge), so sum(used) never exceeds the arena and one
	// shard's quota headroom is always honourable.
	mu    sync.Mutex
	free  []int
	owner []int32
	used  []int
	quota []int

	pinned atomic.Int64 // slots with pins > 0 (diagnostics)
}

func newPagePool(slots int) *pagePool {
	if slots <= 0 {
		slots = poolSlots
	}
	return &pagePool{slots: slots}
}

// ensure allocates the arena on first use. The backing array is never
// reallocated afterwards: kernel-side SAB views alias it.
func (pp *pagePool) ensure() {
	pp.allocOnce.Do(func() {
		pp.arena = make([]byte, pp.slots*PageSize)
		pp.state = make([]atomic.Uint32, pp.slots)
		pp.owner = make([]int32, pp.slots)
		for i := range pp.owner {
			pp.owner[i] = -1
		}
		pp.free = make([]int, pp.slots)
		// Ascending allocation order (slot 0 first) keeps runs deterministic.
		for i := range pp.free {
			pp.free[i] = pp.slots - 1 - i
		}
	})
}

// attach registers one cache as a pool client with a slot quota and
// returns its attachment id. quota <= 0 means the whole arena.
func (pp *pagePool) attach(quota int) int {
	if quota <= 0 || quota > pp.slots {
		quota = pp.slots
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.used = append(pp.used, 0)
	pp.quota = append(pp.quota, quota)
	return len(pp.used) - 1
}

// alloc takes a free slot for attachment att; ok is false when att is at
// its quota or every slot is live or frozen (the caller evicts, or skips
// caching). Quota exhaustion depends only on att's own slots, so a
// shard's cache behaviour is independent of its neighbours.
func (pp *pagePool) alloc(att int) (int, bool) {
	pp.ensure()
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.used[att] >= pp.quota[att] {
		return 0, false
	}
	n := len(pp.free)
	if n == 0 {
		return 0, false
	}
	slot := pp.free[n-1]
	pp.free = pp.free[:n-1]
	pp.owner[slot] = int32(att)
	pp.used[att]++
	return slot, true
}

// freeSlot returns a slot to the free stack and uncharges its owner.
// The mutex acquire/release pairs with the next alloc, so the bytes a
// leaseholder read before its final unpin happen-before the next
// owner's rewrite.
func (pp *pagePool) freeSlot(slot int) {
	pp.mu.Lock()
	if att := pp.owner[slot]; att >= 0 {
		pp.used[att]--
		pp.owner[slot] = -1
	}
	pp.free = append(pp.free, slot)
	pp.mu.Unlock()
}

// release detaches a slot from its cache: free immediately when no
// leases are outstanding, otherwise freeze it until the last unpin. Only
// the owning cache releases a slot (it just removed the page from its
// own maps), so release never races another release or pin on the same
// slot — but it does race unpin, and the single-word CAS decides exactly
// one of them frees the slot.
func (pp *pagePool) release(slot int) {
	for {
		s := pp.state[slot].Load()
		if s&^slotFrozen == 0 {
			pp.freeSlot(slot)
			return
		}
		if pp.state[slot].CompareAndSwap(s, s|slotFrozen) {
			return
		}
	}
}

// pin takes one lease on a slot.
func (pp *pagePool) pin(slot int) {
	for {
		s := pp.state[slot].Load()
		if pp.state[slot].CompareAndSwap(s, s+1) {
			if s&^slotFrozen == 0 {
				pp.pinned.Add(1)
			}
			return
		}
	}
}

// unpin returns one lease; a frozen slot whose last lease returns goes
// back on the free stack.
func (pp *pagePool) unpin(slot int) bool {
	if slot < 0 || slot >= pp.slots || pp.state == nil {
		return false
	}
	for {
		s := pp.state[slot].Load()
		if s&^slotFrozen == 0 {
			return false
		}
		ns := s - 1
		freeing := false
		if ns == slotFrozen { // last lease on a frozen slot
			ns = 0
			freeing = true
		}
		if pp.state[slot].CompareAndSwap(s, ns) {
			if ns&^slotFrozen == 0 {
				pp.pinned.Add(-1)
			}
			if freeing {
				pp.freeSlot(slot)
			}
			return true
		}
	}
}

// pinCount returns a slot's outstanding lease count (tests/diagnostics).
func (pp *pagePool) pinCount(slot int) int {
	return int(pp.state[slot].Load() &^ slotFrozen)
}

// isFrozen reports whether a slot is detached-but-leased (tests).
func (pp *pagePool) isFrozen(slot int) bool {
	return pp.state[slot].Load()&slotFrozen != 0
}

// isFree reports whether a slot is on the free stack (tests).
func (pp *pagePool) isFree(slot int) bool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for _, s := range pp.free {
		if s == slot {
			return true
		}
	}
	return false
}

// freeCount returns the free-stack depth (tests/diagnostics).
func (pp *pagePool) freeCount() int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return len(pp.free)
}

// usedBy returns the slots currently charged to an attachment (tests).
func (pp *pagePool) usedBy(att int) int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.used[att]
}

// data returns the live bytes of a slot's page.
func (pp *pagePool) data(pg poolPage) []byte {
	base := pg.slot * PageSize
	return pp.arena[base : base+pg.len]
}

// poolPage is one cached page: a pool slot holding len content bytes
// (a short page — len < PageSize — marks EOF, as before).
type poolPage struct {
	slot int
	len  int
}

// ---------------------------------------------------------------------------
// Shared arenas (the fleet's one cross-shard structure).
// ---------------------------------------------------------------------------

// PagePool is a standalone page-pool arena several FileSystems — each
// owned by an independent deterministic Instance, possibly running on
// its own host thread — can share. Slot lease state is managed with
// atomics and the allocator with fine-grained locking, so concurrent
// shards are race-free; per-attachment quotas keep each shard's cache
// behaviour (and therefore its virtual clock) independent of its
// neighbours.
type PagePool struct {
	pp *pagePool
}

// NewPagePool creates a shared arena of the given slot count
// (PageSize bytes each); slots <= 0 selects the private-pool default.
func NewPagePool(slots int) *PagePool {
	return &PagePool{pp: newPagePool(slots)}
}

// Slots returns the arena capacity in slots.
func (p *PagePool) Slots() int { return p.pp.slots }

// PinnedSlots returns the number of slots with outstanding leases.
func (p *PagePool) PinnedSlots() int { return int(p.pp.pinned.Load()) }

// FreeSlots returns the free-stack depth (0 until first use).
func (p *PagePool) FreeSlots() int {
	if p.pp.state == nil {
		return 0
	}
	return p.pp.freeCount()
}

// SetPagePool attaches this FileSystem's page cache to a shared arena
// with a per-cache slot quota (quotaSlots <= 0 means the whole arena —
// only sensible for a single attachment). It must be called at setup
// time, before any page is cached; attached state does not migrate.
func (f *FileSystem) SetPagePool(p *PagePool, quotaSlots int) {
	f.flushAllDirtyNow()
	f.pc.evictAll()
	f.pc.pool = p.pp
	f.pc.att = p.pp.attach(quotaSlots)
}

// PagePoolBytes exposes the page-cache arena for sharing with processes
// (the kernel wraps it in a SharedArrayBuffer). Forces allocation.
func (f *FileSystem) PagePoolBytes() []byte {
	f.pc.pool.ensure()
	return f.pc.pool.arena
}

// UnleasePage returns one page lease; false if the slot held none.
// Write-staged slots (AllocWriteSlots) additionally detach from staging
// ownership when the guest lease returns: the slot frees immediately, or
// freezes until the last adopter (a dirty extent, a pipe segment) unpins
// it — the same discipline as a dropped-but-leased cache page.
func (f *FileSystem) UnleasePage(slot int) bool {
	if f.pc.wstaged[slot] {
		delete(f.pc.wstaged, slot)
		if !f.pc.pool.unpin(slot) {
			return false
		}
		f.pc.returnedPages.Add(1)
		f.pc.pool.release(slot)
		return true
	}
	if !f.pc.pool.unpin(slot) {
		return false
	}
	f.pc.returnedPages.Add(1)
	return true
}

// ---------------------------------------------------------------------------
// Image store: immutable snapshot pages shared copy-on-write.
// ---------------------------------------------------------------------------

// ImageStore keeps immutable snapshot-image pages in the pool arena under
// its own attachment. Each stored page carries one *base* pin held by the
// store, so a frozen image never recycles; every process cloned from the
// image takes one additional pin per still-shared page (the COW
// refcount) and returns it on first write (the page materializes
// privately in the clone's heap) or at exit. Quota accounting works like
// any other attachment: image pages are charged to the store, and the
// clones sharing them are charged nothing — the whole point.
type ImageStore struct {
	pp  *pagePool
	att int
}

// ImageStore creates a snapshot-page attachment on a shared arena.
// quotaSlots <= 0 means the whole arena.
func (p *PagePool) ImageStore(quotaSlots int) *ImageStore {
	return &ImageStore{pp: p.pp, att: p.pp.attach(quotaSlots)}
}

// ImageStore creates a snapshot-page attachment on this FileSystem's own
// pool (private or shared) — how a single Instance with snapshots enabled
// stores images without constructing a standalone PagePool.
func (f *FileSystem) ImageStore(quotaSlots int) *ImageStore {
	return &ImageStore{pp: f.pc.pool, att: f.pc.pool.attach(quotaSlots)}
}

// Put copies one page of image data (len(data) <= PageSize) into a fresh
// slot, zero-padding the tail, and pins it once (the store's base pin).
// ok is false at quota or arena exhaustion.
func (s *ImageStore) Put(data []byte) (int, bool) {
	if len(data) > PageSize {
		panic("fs: ImageStore.Put: page overflow")
	}
	slot, ok := s.pp.alloc(s.att)
	if !ok {
		return 0, false
	}
	base := slot * PageSize
	n := copy(s.pp.arena[base:base+PageSize], data)
	for i := base + n; i < base+PageSize; i++ {
		s.pp.arena[i] = 0
	}
	s.pp.pin(slot)
	return slot, true
}

// Data returns a stored page's arena bytes (full page; the image tracks
// content lengths). Callers must treat them as immutable.
func (s *ImageStore) Data(slot int) []byte {
	base := slot * PageSize
	return s.pp.arena[base : base+PageSize]
}

// Pin takes one clone reference on an image page.
func (s *ImageStore) Pin(slot int) { s.pp.pin(slot) }

// Unpin returns one clone reference (a COW fault or a clone exiting).
func (s *ImageStore) Unpin(slot int) bool { return s.pp.unpin(slot) }

// PinCount returns a page's outstanding pin count, including the base
// pin — the balance check: a quiesced registry shows exactly 1 per page.
func (s *ImageStore) PinCount(slot int) int { return s.pp.pinCount(slot) }

// Free releases a stored page: the store's base pin returns and the slot
// detaches, freezing until any remaining clone references come back.
func (s *ImageStore) Free(slot int) {
	s.pp.release(slot)
	s.pp.unpin(slot)
}

// PageRef references pinned bytes in the page pool: the fs-level
// currency of the zero-copy read path (abi.PageGrant is its wire form).
type PageRef struct {
	Slot int
	Gen  uint64
	Off  int64 // byte offset into the pool arena
	Len  int
}

// RefReader is the optional FileHandle extension the zero-copy read
// path drives: serve [off, off+n) as pinned page references when every
// byte is already resident and the handle is current. ok=false sends the
// caller down the ordinary copy path — same bytes, one copy. Refs are
// pinned on success; callers owe one UnleasePage per ref. max bounds the
// ref count (the caller's grant area size); a refusal never pins.
type RefReader interface {
	PreadRef(off int64, n, max int) ([]PageRef, bool)
}

// The fs granule and the ABI grant granule must be the same constant:
// leases and write grants name slot-relative byte ranges across the
// kernel boundary in these units. Either constant drifting makes one of
// these two uint conversions a negative-constant compile error.
const (
	_ = uint(PageSize - abi.GrantPageSize)
	_ = uint(abi.GrantPageSize - PageSize)
)
