package fs

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/abi"
)

// The page pool is the shared-memory arena every cached page lives in:
// one flat region of PageSize slots the kernel exports to processes as a
// SharedArrayBuffer (the "mapped page cache"). Storing pages in slots —
// instead of per-page Go allocations — is what makes the zero-copy read
// path possible: a grant names (slot, arena offset, length) and the
// process reads the bytes through its own mapping of the arena, no
// kernel copy.
//
// Leases make that safe. A granted page is *pinned*; a pinned slot's
// bytes are never rewritten and the slot is never recycled. When an
// invalidation, flush, or cache eviction drops a pinned page, the slot
// detaches from the cache (no new reads or grants see it) but *freezes*
// — the bytes stay intact for the outstanding leaseholders — and is
// reclaimed for reuse only when the last lease is returned. This is the
// pipe layer's owned-segment discipline applied to cache pages:
// ownership of the bytes moves to the process until it hands them back.
//
// Concurrency. A pool may be shared by several FileSystems, each living
// in its own deterministic Instance running on its own host thread (the
// fleet scheduler): the arena is the ONLY structure those shards touch
// concurrently, so the pin/lease/freeze discipline is a real concurrent
// data structure. Each slot's lease state is one atomic word (a pin
// count plus a frozen bit) updated by CAS; the free stack and ownership
// bookkeeping sit behind a mutex taken only on alloc and on the final
// free. Every attached cache draws from its own slot *quota*, so one
// shard's allocation success never depends on how busy its neighbours
// are — each Instance stays bit-identical to its serial run while the
// slots interleave freely in the arena.

// poolSlots is the default arena size: maxPageCacheBytes of PageSize
// slots (the whole budget of a private, single-FileSystem pool).
const poolSlots = maxPageCacheBytes / PageSize

// DefaultPoolSlots is the private pool's slot capacity. A fleet shard
// given this quota in a shared arena hits slot exhaustion at exactly the
// same point a private-pool instance would, so its virtual clock is
// bit-identical to a serial run.
const DefaultPoolSlots = poolSlots

// slotFrozen marks a slot dropped from its cache while pinned (bytes
// preserved, freed on last unpin). The low bits are the pin count.
const slotFrozen = uint32(1) << 31

// Allocation outcomes. Callers that evict on failure need to know WHY an
// allocation failed: quota exhaustion is a per-attachment, deterministic
// condition (evict in plain LRU order — identical with dedup on or off),
// while arena exhaustion is a cross-tenant pressure condition (prefer
// evicting private pages: dropping a shared page frees a physical slot
// only when its last tenant lets go).
const (
	allocOK       = iota
	allocNoQuota  // attachment at its (logical) slot quota
	allocNoArena  // free stack empty: every slot live or frozen
	allocNoShared // dedup tier's shared budget exhausted (dedupAlloc only)
)

// Dedup lookup outcomes.
const (
	dedupHit     = iota // content already resident; reference taken
	dedupMiss           // no entry: caller fills a fresh slot and publishes
	dedupNoQuota        // entry exists but the attachment is at quota
)

// dedupEntry is one content-addressed shared page: the index key it is
// published under and the number of outstanding references (page-cache
// pages and image-store pages across every attachment). Guarded by the
// pool mutex.
type dedupEntry struct {
	hash [32]byte
	refs int
}

// pagePool is the slot allocator over the shared arena.
type pagePool struct {
	slots int

	allocOnce sync.Once
	arena     []byte // slots * PageSize bytes; allocated on first use

	// state holds each slot's lease word: pin count in the low 31 bits,
	// slotFrozen in the top bit. Transitions are CAS-only, so pin and
	// unpin from different shards never take a lock.
	state []atomic.Uint32

	// mu guards the free stack, the per-attachment accounting, and the
	// dedup index. owner maps an allocated slot to the attachment that
	// drew it; used/quota/sharedRefs are indexed by attachment id. A
	// slot stays charged to its owner until it physically returns to
	// the free stack (frozen slots keep their charge), so sum(used)
	// never exceeds the arena and one shard's quota headroom is always
	// honourable. sharedRefs is the LOGICAL side of dedup accounting:
	// each content-addressed page an attachment references counts
	// against that attachment's quota exactly as if it had allocated a
	// private slot — the property that keeps a tenant's cache behaviour
	// (and so its virtual clock) independent of who else shares the
	// bytes — while the physical slot is charged to the dedup tier's
	// own attachment (the shared budget).
	mu         sync.Mutex
	free       []int
	owner      []int32
	used       []int
	quota      []int
	sharedRefs []int

	// Content-addressed dedup index: hash -> slot for every published
	// immutable page, with per-slot reference counts. dedupAtt is the
	// attachment physical shared slots are charged to (-1 until first
	// use). The release/pin race that makes release() safe elsewhere
	// holds here too: an entry's refcount reaches zero only when no
	// attachment still maps the page, so nobody can start a new pin
	// from a cache reference; outstanding grant leases freeze the slot
	// as usual.
	dedupIdx map[[32]byte]int
	dedupEnt map[int]*dedupEntry
	dedupAtt int

	pinned atomic.Int64 // slots with pins > 0 (diagnostics)

	// Dedup observability, all atomic so the host can poll while shards
	// run: resident entries, outstanding references, lookup hits.
	dedupEntries atomic.Int64
	dedupRefsN   atomic.Int64
	dedupHitsN   atomic.Int64
}

func newPagePool(slots int) *pagePool {
	if slots <= 0 {
		slots = poolSlots
	}
	return &pagePool{slots: slots, dedupAtt: -1}
}

// ensure allocates the arena on first use. The backing array is never
// reallocated afterwards: kernel-side SAB views alias it.
func (pp *pagePool) ensure() {
	pp.allocOnce.Do(func() {
		pp.arena = make([]byte, pp.slots*PageSize)
		pp.state = make([]atomic.Uint32, pp.slots)
		pp.owner = make([]int32, pp.slots)
		for i := range pp.owner {
			pp.owner[i] = -1
		}
		pp.free = make([]int, pp.slots)
		// Ascending allocation order (slot 0 first) keeps runs deterministic.
		for i := range pp.free {
			pp.free[i] = pp.slots - 1 - i
		}
	})
}

// attach registers one cache as a pool client with a slot quota and
// returns its attachment id. quota <= 0 means the whole arena.
func (pp *pagePool) attach(quota int) int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.attachLocked(quota)
}

func (pp *pagePool) attachLocked(quota int) int {
	if quota <= 0 || quota > pp.slots {
		quota = pp.slots
	}
	pp.used = append(pp.used, 0)
	pp.quota = append(pp.quota, quota)
	pp.sharedRefs = append(pp.sharedRefs, 0)
	return len(pp.used) - 1
}

// quotaFreeLocked reports whether att has headroom for one more page.
// Quota is LOGICAL: private slots the attachment owns plus shared pages
// it references, so an attachment's exhaustion point is identical
// whether dedup shares its bytes or not.
func (pp *pagePool) quotaFreeLocked(att int) bool {
	return pp.used[att]+pp.sharedRefs[att] < pp.quota[att]
}

// alloc takes a free slot for attachment att; ok is false when att is at
// its quota or every slot is live or frozen (the caller evicts, or skips
// caching). Quota exhaustion depends only on att's own pages, so a
// shard's cache behaviour is independent of its neighbours.
func (pp *pagePool) alloc(att int) (int, bool) {
	slot, st := pp.alloc2(att)
	return slot, st == allocOK
}

// alloc2 is alloc with the failure reason: allocNoQuota is deterministic
// per-attachment pressure, allocNoArena is cross-tenant physical
// pressure (the caller may prefer evicting private pages for the
// latter).
func (pp *pagePool) alloc2(att int) (int, int) {
	pp.ensure()
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if !pp.quotaFreeLocked(att) {
		return 0, allocNoQuota
	}
	n := len(pp.free)
	if n == 0 {
		return 0, allocNoArena
	}
	return pp.takeFreeLocked(att), allocOK
}

func (pp *pagePool) takeFreeLocked(att int) int {
	n := len(pp.free)
	slot := pp.free[n-1]
	pp.free = pp.free[:n-1]
	pp.owner[slot] = int32(att)
	pp.used[att]++
	return slot
}

// freeSlot returns a slot to the free stack and uncharges its owner.
// The mutex acquire/release pairs with the next alloc, so the bytes a
// leaseholder read before its final unpin happen-before the next
// owner's rewrite.
func (pp *pagePool) freeSlot(slot int) {
	pp.mu.Lock()
	pp.freeSlotLocked(slot)
	pp.mu.Unlock()
}

func (pp *pagePool) freeSlotLocked(slot int) {
	if att := pp.owner[slot]; att >= 0 {
		pp.used[att]--
		pp.owner[slot] = -1
	}
	pp.free = append(pp.free, slot)
}

// release detaches a slot from its cache: free immediately when no
// leases are outstanding, otherwise freeze it until the last unpin. Only
// the owning cache releases a slot (it just removed the page from its
// own maps), so release never races another release or pin on the same
// slot — but it does race unpin, and the single-word CAS decides exactly
// one of them frees the slot.
func (pp *pagePool) release(slot int) {
	for {
		s := pp.state[slot].Load()
		if s&^slotFrozen == 0 {
			pp.freeSlot(slot)
			return
		}
		if pp.state[slot].CompareAndSwap(s, s|slotFrozen) {
			return
		}
	}
}

// pin takes one lease on a slot.
func (pp *pagePool) pin(slot int) {
	for {
		s := pp.state[slot].Load()
		if pp.state[slot].CompareAndSwap(s, s+1) {
			if s&^slotFrozen == 0 {
				pp.pinned.Add(1)
			}
			return
		}
	}
}

// unpin returns one lease; a frozen slot whose last lease returns goes
// back on the free stack.
func (pp *pagePool) unpin(slot int) bool {
	if slot < 0 || slot >= pp.slots || pp.state == nil {
		return false
	}
	for {
		s := pp.state[slot].Load()
		if s&^slotFrozen == 0 {
			return false
		}
		ns := s - 1
		freeing := false
		if ns == slotFrozen { // last lease on a frozen slot
			ns = 0
			freeing = true
		}
		if pp.state[slot].CompareAndSwap(s, ns) {
			if ns&^slotFrozen == 0 {
				pp.pinned.Add(-1)
			}
			if freeing {
				pp.freeSlot(slot)
			}
			return true
		}
	}
}

// pinCount returns a slot's outstanding lease count (tests/diagnostics).
func (pp *pagePool) pinCount(slot int) int {
	return int(pp.state[slot].Load() &^ slotFrozen)
}

// isFrozen reports whether a slot is detached-but-leased (tests).
func (pp *pagePool) isFrozen(slot int) bool {
	return pp.state[slot].Load()&slotFrozen != 0
}

// isFree reports whether a slot is on the free stack (tests).
func (pp *pagePool) isFree(slot int) bool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for _, s := range pp.free {
		if s == slot {
			return true
		}
	}
	return false
}

// freeCount returns the free-stack depth (tests/diagnostics).
func (pp *pagePool) freeCount() int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return len(pp.free)
}

// usedBy returns the slots currently charged to an attachment (tests).
func (pp *pagePool) usedBy(att int) int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.used[att]
}

// sharedBy returns the shared-page references charged to an attachment
// (tests/diagnostics).
func (pp *pagePool) sharedBy(att int) int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.sharedRefs[att]
}

// ---------------------------------------------------------------------------
// Content-addressed dedup tier.
// ---------------------------------------------------------------------------
//
// The flow a caller drives (pageCache.storeDedup, ImageStore.Put):
//
//	dedupLookup(att, hash)  -> hit: reference taken, done.
//	dedupAlloc(att)         -> fresh unpublished slot charged to the
//	                           shared budget; fill it OUTSIDE the mutex
//	                           (nobody else can see it yet), then
//	dedupPublish(slot,hash) -> the canonical slot for that content; if a
//	                           concurrent filler won the race the fresh
//	                           slot frees and the canonical gains a ref.
//	dedupDeref(att, slot)   -> drop one reference; the last one unpins
//	                           the entry from the index and releases the
//	                           slot (free, or frozen for grant leases).
//
// Determinism: dedup happens AFTER the backend read (the caller hashes
// the bytes it just fetched), so a hit and a miss cost the same virtual
// time, and quota is charged logically per reference, so a tenant's
// eviction sequence is identical with dedup on, off, or racing other
// tenants. The win is memory, never the clock.

func (pp *pagePool) ensureDedupLocked() {
	if pp.dedupAtt < 0 {
		pp.dedupAtt = pp.attachLocked(0)
		pp.dedupIdx = make(map[[32]byte]int)
		pp.dedupEnt = make(map[int]*dedupEntry)
	}
}

// dedupLookup takes a reference on the published page for hash h, if
// any. dedupHit: slot valid, reference charged to att. dedupNoQuota: the
// content is resident but att is at quota (evict and retry, or skip).
// dedupMiss: not resident — alloc/fill/publish.
func (pp *pagePool) dedupLookup(att int, h [32]byte) (int, int) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.dedupIdx == nil {
		return 0, dedupMiss
	}
	slot, ok := pp.dedupIdx[h]
	if !ok {
		return 0, dedupMiss
	}
	if !pp.quotaFreeLocked(att) {
		return 0, dedupNoQuota
	}
	pp.dedupEnt[slot].refs++
	pp.sharedRefs[att]++
	pp.dedupRefsN.Add(1)
	pp.dedupHitsN.Add(1)
	return slot, dedupHit
}

// dedupAlloc draws a fresh slot for a page about to be published:
// physically charged to the shared budget, logically charged to att.
// allocNoShared means the shared budget is exhausted — the caller falls
// back to a private slot (bytes and clocks identical, only placement
// differs).
func (pp *pagePool) dedupAlloc(att int) (int, int) {
	pp.ensure()
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if !pp.quotaFreeLocked(att) {
		return 0, allocNoQuota
	}
	pp.ensureDedupLocked()
	if pp.used[pp.dedupAtt] >= pp.quota[pp.dedupAtt] {
		return 0, allocNoShared
	}
	if len(pp.free) == 0 {
		return 0, allocNoArena
	}
	slot := pp.takeFreeLocked(pp.dedupAtt)
	pp.sharedRefs[att]++
	return slot, allocOK
}

// dedupPublish indexes a freshly filled slot under its content hash and
// returns the canonical slot for that content. If a concurrent filler
// published the same hash first, the loser's slot frees (unpinned,
// unpublished, invisible to everyone) and its already-charged reference
// moves to the winner.
func (pp *pagePool) dedupPublish(slot int, h [32]byte) int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if canon, ok := pp.dedupIdx[h]; ok {
		pp.dedupEnt[canon].refs++
		pp.dedupRefsN.Add(1)
		pp.freeSlotLocked(slot)
		return canon
	}
	pp.dedupIdx[h] = slot
	pp.dedupEnt[slot] = &dedupEntry{hash: h, refs: 1}
	pp.dedupRefsN.Add(1)
	pp.dedupEntries.Add(1)
	return slot
}

// dedupDeref drops att's reference on a shared slot. The last reference
// unpublishes the entry — no attachment maps the page any more, so no
// new pin can start — and releases the slot: straight to the free stack,
// or frozen while grant leases are still out.
func (pp *pagePool) dedupDeref(att, slot int) {
	pp.mu.Lock()
	e := pp.dedupEnt[slot]
	if e == nil {
		pp.mu.Unlock()
		pp.release(slot)
		return
	}
	e.refs--
	pp.sharedRefs[att]--
	pp.dedupRefsN.Add(-1)
	last := e.refs == 0
	if last {
		delete(pp.dedupIdx, e.hash)
		delete(pp.dedupEnt, slot)
		pp.dedupEntries.Add(-1)
	}
	pp.mu.Unlock()
	if last {
		pp.release(slot)
	}
}

// isDedup reports whether a slot is published in the dedup index
// (tests).
func (pp *pagePool) isDedup(slot int) bool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.dedupEnt[slot] != nil
}

// data returns the live bytes of a slot's page.
func (pp *pagePool) data(pg poolPage) []byte {
	base := pg.slot * PageSize
	return pp.arena[base : base+pg.len]
}

// poolPage is one cached page: a pool slot holding len content bytes
// (a short page — len < PageSize — marks EOF, as before). shared marks a
// content-addressed slot referenced through the dedup index: dropping it
// derefs the index entry instead of releasing the slot directly.
type poolPage struct {
	slot   int
	len    int
	shared bool
}

// ---------------------------------------------------------------------------
// Shared arenas (the fleet's one cross-shard structure).
// ---------------------------------------------------------------------------

// PagePool is a standalone page-pool arena several FileSystems — each
// owned by an independent deterministic Instance, possibly running on
// its own host thread — can share. Slot lease state is managed with
// atomics and the allocator with fine-grained locking, so concurrent
// shards are race-free; per-attachment quotas keep each shard's cache
// behaviour (and therefore its virtual clock) independent of its
// neighbours.
type PagePool struct {
	pp *pagePool
}

// NewPagePool creates a shared arena of the given slot count
// (PageSize bytes each); slots <= 0 selects the private-pool default.
func NewPagePool(slots int) *PagePool {
	return &PagePool{pp: newPagePool(slots)}
}

// Slots returns the arena capacity in slots.
func (p *PagePool) Slots() int { return p.pp.slots }

// PinnedSlots returns the number of slots with outstanding leases.
func (p *PagePool) PinnedSlots() int { return int(p.pp.pinned.Load()) }

// FreeSlots returns the free-stack depth (0 until first use).
func (p *PagePool) FreeSlots() int {
	if p.pp.state == nil {
		return 0
	}
	return p.pp.freeCount()
}

// DedupStats reports the content-addressed sharing tier: distinct shared
// slots resident, outstanding references to them, and index hits since
// boot. All atomic — readable from the host while shards run. The dedup
// factor of a resident fleet is refs/entries.
func (p *PagePool) DedupStats() (entries, refs, hits int64) {
	return p.pp.dedupEntries.Load(), p.pp.dedupRefsN.Load(), p.pp.dedupHitsN.Load()
}

// SetSharedBudget bounds the physical slots the dedup tier may hold
// (slots <= 0: the whole arena, the default). Past the budget, new
// immutable pages are cached privately by the faulting tenant instead —
// bytes and clocks are unaffected, only physical placement.
func (p *PagePool) SetSharedBudget(slots int) {
	pp := p.pp
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.ensureDedupLocked()
	if slots <= 0 || slots > pp.slots {
		slots = pp.slots
	}
	pp.quota[pp.dedupAtt] = slots
}

// SetPagePool attaches this FileSystem's page cache to a shared arena
// with a per-cache slot quota (quotaSlots <= 0 means the whole arena —
// only sensible for a single attachment). It must be called at setup
// time, before any page is cached; attached state does not migrate.
func (f *FileSystem) SetPagePool(p *PagePool, quotaSlots int) {
	f.flushAllDirtyNow()
	f.pc.evictAll()
	f.pc.pool = p.pp
	f.pc.att = p.pp.attach(quotaSlots)
}

// PagePoolBytes exposes the page-cache arena for sharing with processes
// (the kernel wraps it in a SharedArrayBuffer). Forces allocation.
func (f *FileSystem) PagePoolBytes() []byte {
	f.pc.pool.ensure()
	return f.pc.pool.arena
}

// UnleasePage returns one page lease; false if the slot held none.
// Write-staged slots (AllocWriteSlots) additionally detach from staging
// ownership when the guest lease returns: the slot frees immediately, or
// freezes until the last adopter (a dirty extent, a pipe segment) unpins
// it — the same discipline as a dropped-but-leased cache page.
func (f *FileSystem) UnleasePage(slot int) bool {
	if f.pc.wstaged[slot] {
		delete(f.pc.wstaged, slot)
		if !f.pc.pool.unpin(slot) {
			return false
		}
		f.pc.returnedPages.Add(1)
		f.pc.pool.release(slot)
		return true
	}
	if !f.pc.pool.unpin(slot) {
		return false
	}
	f.pc.returnedPages.Add(1)
	return true
}

// ---------------------------------------------------------------------------
// Image store: immutable snapshot pages shared copy-on-write.
// ---------------------------------------------------------------------------

// ImageStore keeps immutable snapshot-image pages in the pool arena under
// its own attachment. Each stored page carries one *base* pin held by the
// store, so a frozen image never recycles; every process cloned from the
// image takes one additional pin per still-shared page (the COW
// refcount) and returns it on first write (the page materializes
// privately in the clone's heap) or at exit. Quota accounting works like
// any other attachment: image pages are charged (logically) to the
// store, and the clones sharing them are charged nothing — the whole
// point.
//
// Image pages go through the content-addressed dedup tier: identical
// pages within an image (a zeroed heap is mostly one page), across
// images, and even between images and the page cache (a sealed image's
// page matching a full page of some immutable file) collapse to one
// arena slot. A deduped slot then carries one base pin PER image page
// referencing it, so pin-ledger audits must count expected occurrences
// per slot, not assume one.
type ImageStore struct {
	pp  *pagePool
	att int
}

// ImageStore creates a snapshot-page attachment on a shared arena.
// quotaSlots <= 0 means the whole arena.
func (p *PagePool) ImageStore(quotaSlots int) *ImageStore {
	return &ImageStore{pp: p.pp, att: p.pp.attach(quotaSlots)}
}

// ImageStore creates a snapshot-page attachment on this FileSystem's own
// pool (private or shared) — how a single Instance with snapshots enabled
// stores images without constructing a standalone PagePool.
func (f *FileSystem) ImageStore(quotaSlots int) *ImageStore {
	return &ImageStore{pp: f.pc.pool, att: f.pc.pool.attach(quotaSlots)}
}

// Put stores one page of image data (len(data) <= PageSize), zero-padded
// to a full page, and pins the resulting slot once (the store's base
// pin). Pages route through the dedup index keyed by the padded page's
// hash — identical content resolves to the already-resident slot, which
// simply gains a reference and another base pin. ok is false at quota or
// arena exhaustion (the caller falls back to private host copies).
func (s *ImageStore) Put(data []byte) (int, bool) {
	if len(data) > PageSize {
		panic("fs: ImageStore.Put: page overflow")
	}
	var page [PageSize]byte
	copy(page[:], data)
	h := sha256.Sum256(page[:])
	if slot, st := s.pp.dedupLookup(s.att, h); st == dedupHit {
		s.pp.pin(slot)
		return slot, true
	} else if st == dedupNoQuota {
		return 0, false
	}
	slot, st := s.pp.dedupAlloc(s.att)
	if st != allocOK {
		// Shared budget, attachment quota, or arena exhausted: capture
		// falls back exactly where the pre-dedup allocator failed.
		return 0, false
	}
	base := slot * PageSize
	copy(s.pp.arena[base:base+PageSize], page[:])
	canon := s.pp.dedupPublish(slot, h)
	s.pp.pin(canon)
	return canon, true
}

// Data returns a stored page's arena bytes (full page; the image tracks
// content lengths). Callers must treat them as immutable.
func (s *ImageStore) Data(slot int) []byte {
	base := slot * PageSize
	return s.pp.arena[base : base+PageSize]
}

// Pin takes one clone reference on an image page.
func (s *ImageStore) Pin(slot int) { s.pp.pin(slot) }

// Unpin returns one clone reference (a COW fault or a clone exiting).
func (s *ImageStore) Unpin(slot int) bool { return s.pp.unpin(slot) }

// PinCount returns a page's outstanding pin count, including the base
// pin — the balance check: a quiesced registry shows exactly 1 per page.
func (s *ImageStore) PinCount(slot int) int { return s.pp.pinCount(slot) }

// Free releases a stored page: the store's base pin returns and the
// image's dedup reference drops. The last reference unpublishes the
// entry and the slot detaches, freezing until any remaining clone
// references (or grant leases) come back.
func (s *ImageStore) Free(slot int) {
	s.pp.unpin(slot)
	s.pp.dedupDeref(s.att, slot)
}

// PageRef references pinned bytes in the page pool: the fs-level
// currency of the zero-copy read path (abi.PageGrant is its wire form).
type PageRef struct {
	Slot int
	Gen  uint64
	Off  int64 // byte offset into the pool arena
	Len  int
}

// RefReader is the optional FileHandle extension the zero-copy read
// path drives: serve [off, off+n) as pinned page references when every
// byte is already resident and the handle is current. ok=false sends the
// caller down the ordinary copy path — same bytes, one copy. Refs are
// pinned on success; callers owe one UnleasePage per ref. max bounds the
// ref count (the caller's grant area size); a refusal never pins.
type RefReader interface {
	PreadRef(off int64, n, max int) ([]PageRef, bool)
}

// The fs granule and the ABI grant granule must be the same constant:
// leases and write grants name slot-relative byte ranges across the
// kernel boundary in these units. Either constant drifting makes one of
// these two uint conversions a negative-constant compile error.
const (
	_ = uint(PageSize - abi.GrantPageSize)
	_ = uint(abi.GrantPageSize - PageSize)
)
