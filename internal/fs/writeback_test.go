package fs

import (
	"fmt"
	"testing"

	"repro/internal/abi"
)

// Helpers around the callback API (memfs completes inline).

func openWB(t *testing.T, f *FileSystem, p string, flags int) FileHandle {
	t.Helper()
	var h FileHandle
	var got abi.Errno = -1
	f.Open(p, flags, 0o644, func(fh FileHandle, err abi.Errno) { h, got = fh, err })
	if got != abi.OK {
		t.Fatalf("open %s: %v", p, got)
	}
	return h
}

func pwrite(t *testing.T, h FileHandle, off int64, data string) {
	t.Helper()
	var n int
	var got abi.Errno = -1
	h.Pwrite(off, []byte(data), func(m int, err abi.Errno) { n, got = m, err })
	if got != abi.OK || n != len(data) {
		t.Fatalf("pwrite: n=%d err=%v", n, got)
	}
}

func closeH(t *testing.T, h FileHandle) {
	t.Helper()
	var got abi.Errno = -1
	h.Close(func(err abi.Errno) { got = err })
	if got != abi.OK {
		t.Fatalf("close: %v", got)
	}
}

// backendContent reads a path straight from the backend, bypassing the
// VFS (and therefore the dirty buffers) — what is durably on storage.
func backendContent(t *testing.T, m *MemFS, p string) string {
	t.Helper()
	var out []byte
	m.Open(p, abi.O_RDONLY, 0, func(h FileHandle, err abi.Errno) {
		if err != abi.OK {
			return // missing = empty
		}
		h.Stat(func(st abi.Stat, _ abi.Errno) {
			h.Pread(0, int(st.Size), func(b []byte, _ abi.Errno) { out = b })
		})
		h.Close(func(abi.Errno) {})
	})
	return string(out)
}

// TestWriteBackCoalescesBackendWrites is the headline guard: a
// pdflatex-style append workload (many tiny writes to one file) must
// reach the backend as >= 10x fewer write calls under write-back than
// write-through. Deterministic: memfs counts every handle write.
func TestWriteBackCoalescesBackendWrites(t *testing.T) {
	const writes = 500
	run := func(writeBack bool) (backendWrites int64, content string) {
		mem := NewMemFS(now)
		f := NewFileSystem(mem, func() int64 { return clock })
		f.SetWriteBack(writeBack)
		h := openWB(t, f, "/job.log", abi.O_WRONLY|abi.O_CREAT)
		off := int64(0)
		for i := 0; i < writes; i++ {
			line := fmt.Sprintf("log line %04d\n", i)
			pwrite(t, h, off, line)
			off += int64(len(line))
		}
		closeH(t, h)
		return mem.WriteOps, backendContent(t, mem, "/job.log")
	}
	wbWrites, wbContent := run(true)
	wtWrites, wtContent := run(false)
	if wbContent != wtContent {
		t.Fatalf("write-back content diverges from write-through (%d vs %d bytes)",
			len(wbContent), len(wtContent))
	}
	if wtWrites < writes {
		t.Fatalf("write-through issued %d backend writes, want >= %d", wtWrites, writes)
	}
	if wbWrites*10 > wtWrites {
		t.Fatalf("write-back issued %d backend writes vs %d write-through — want >= 10x fewer",
			wbWrites, wtWrites)
	}
}

// TestWriteBackGuardStrictlyFewer pins the CI invariant: a coalesced
// flush issues strictly fewer backend writes than write-through, even
// for a tiny burst.
func TestWriteBackGuardStrictlyFewer(t *testing.T) {
	run := func(writeBack bool) int64 {
		mem := NewMemFS(now)
		f := NewFileSystem(mem, func() int64 { return clock })
		f.SetWriteBack(writeBack)
		h := openWB(t, f, "/f", abi.O_WRONLY|abi.O_CREAT)
		pwrite(t, h, 0, "aa")
		pwrite(t, h, 2, "bb")
		closeH(t, h)
		return mem.WriteOps
	}
	wb, wt := run(true), run(false)
	if wb >= wt {
		t.Fatalf("coalesced flush: %d backend writes, write-through: %d — want strictly fewer", wb, wt)
	}
}

// TestFsyncBarrier: buffered bytes are NOT on the backend before fsync
// and ARE on it when fsync's callback fires (flush-before-reply).
func TestFsyncBarrier(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	h := openWB(t, f, "/d.aux", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "citation{x}")
	if got := backendContent(t, mem, "/d.aux"); got != "" {
		t.Fatalf("bytes on backend before fsync: %q", got)
	}
	if f.CacheStats().DirtyBytes == 0 {
		t.Fatal("no dirty bytes buffered")
	}
	s, ok := h.(Syncer)
	if !ok {
		t.Fatal("write handle does not implement Syncer")
	}
	fsynced := false
	s.Sync(func(err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("fsync: %v", err)
		}
		if got := backendContent(t, mem, "/d.aux"); got != "citation{x}" {
			t.Fatalf("fsync completed with backend content %q", got)
		}
		fsynced = true
	})
	if !fsynced {
		t.Fatal("fsync did not complete")
	}
	if st := f.CacheStats(); st.DirtyBytes != 0 {
		t.Fatalf("dirty bytes after fsync: %d", st.DirtyBytes)
	}
	// Writes after the barrier buffer again and flush on close.
	pwrite(t, h, 11, " more")
	closeH(t, h)
	if got := backendContent(t, mem, "/d.aux"); got != "citation{x} more" {
		t.Fatalf("after close: %q", got)
	}
}

// TestFlushOnClose: close is a barrier; nothing rides on later activity.
func TestFlushOnClose(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	h := openWB(t, f, "/out", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "hello")
	pwrite(t, h, 5, " world")
	closeH(t, h)
	if got := backendContent(t, mem, "/out"); got != "hello world" {
		t.Fatalf("after close: %q", got)
	}
	if st := f.CacheStats(); st.DirtyBytes != 0 || st.FlushWrites != 1 {
		t.Fatalf("stats after close: dirty=%d flushWrites=%d (want 0, 1)", st.DirtyBytes, st.FlushWrites)
	}
}

// TestDirtyBudgetOverflow: exceeding the budget forces a flush of
// everything; content is never lost and the buffer drains.
func TestDirtyBudgetOverflow(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	f.SetDirtyBudget(1024)
	h := openWB(t, f, "/big", abi.O_WRONLY|abi.O_CREAT)
	payload := ""
	for i := 0; i < 64; i++ { // 64 * 32 B = 2 KiB > 1 KiB budget
		chunk := fmt.Sprintf("chunk %02d aaaaaaaaaaaaaaaaaaaaaa\n", i)
		pwrite(t, h, int64(len(payload)), chunk)
		payload += chunk
	}
	st := f.CacheStats()
	if st.OverflowFlushes == 0 {
		t.Fatal("budget exceeded but no overflow flush")
	}
	if st.DirtyBytes > 1024 {
		t.Fatalf("dirty bytes %d still over budget", st.DirtyBytes)
	}
	closeH(t, h)
	if got := backendContent(t, mem, "/big"); got != payload {
		t.Fatalf("content after overflow + close: %d bytes, want %d", len(got), len(payload))
	}
}

// TestWriteBackOrderedFlush: disjoint extents land in ascending offset
// order as separate vectored writes; overlaps resolve newest-wins.
func TestWriteBackOrderedFlush(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	h := openWB(t, f, "/o", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 8, "BBBB") // second extent first
	pwrite(t, h, 0, "AAAA") // first extent
	pwrite(t, h, 2, "xx")   // overlap: newest wins
	pwrite(t, h, 4, "yyyy") // bridges the gap: extents merge
	closeH(t, h)
	if got := backendContent(t, mem, "/o"); got != "AAxxyyyyBBBB" {
		t.Fatalf("flushed content %q, want AAxxyyyyBBBB", got)
	}
	if st := f.CacheStats(); st.FlushWrites != 1 {
		t.Fatalf("merged extents flushed as %d writes, want 1", st.FlushWrites)
	}
}

// TestWriteBackReadYourWrites: the writing handle reads its own
// buffered bytes (overlaid on backend content), sees the virtual size
// in Stat, and a second handle opened later sees flushed state (the
// Open barrier).
func TestWriteBackReadYourWrites(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	mustWrite(t, f, "/f", "0123456789")
	h := openWB(t, f, "/f", abi.O_RDWR)
	pwrite(t, h, 4, "XY")
	pwrite(t, h, 10, "tail") // extends past backend EOF
	var got []byte
	h.Pread(0, 64, func(b []byte, err abi.Errno) { got = b })
	if string(got) != "0123XY6789tail" {
		t.Fatalf("read-your-writes: %q", got)
	}
	var st abi.Stat
	h.Stat(func(s abi.Stat, _ abi.Errno) { st = s })
	if st.Size != 14 {
		t.Fatalf("virtual size %d, want 14", st.Size)
	}
	// FS.Stat (the walker path) must agree while the bytes are buffered.
	var pst abi.Stat
	f.Stat("/f", func(s abi.Stat, _ abi.Errno) { pst = s })
	if pst.Size != 14 {
		t.Fatalf("FS.Stat size %d, want 14", pst.Size)
	}
	// A second handle triggers the open barrier and reads flushed bytes.
	if got := mustRead(t, f, "/f"); got != "0123XY6789tail" {
		t.Fatalf("second handle read %q", got)
	}
	closeH(t, h)
}

// TestStatAfterFlushNotPoisoned: a stat taken while the file is dirty
// must not plant a pre-flush dentry that outlives the flush — stats
// after fsync report the flushed size and mtime.
func TestStatAfterFlushNotPoisoned(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	h := openWB(t, f, "/p", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "eleven char")
	var mid abi.Stat
	f.Stat("/p", func(s abi.Stat, _ abi.Errno) { mid = s }) // caches a dentry while dirty
	if mid.Size != 11 {
		t.Fatalf("mid-dirty stat size %d, want 11", mid.Size)
	}
	h.(Syncer).Sync(func(err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("fsync: %v", err)
		}
	})
	var after abi.Stat
	f.Stat("/p", func(s abi.Stat, _ abi.Errno) { after = s })
	if after.Size != 11 {
		t.Fatalf("post-flush stat size %d, want 11 (stale dentry survived the flush)", after.Size)
	}
	closeH(t, h)
}

// TestWriteBackSparseHole: a buffered extent far beyond the backend EOF
// reads back as zeros in the hole — a sequential reader walks through
// it instead of hitting a premature EOF, identically with write-back on
// and off.
func TestWriteBackSparseHole(t *testing.T) {
	run := func(writeBack bool) (first []byte, size int64) {
		mem := NewMemFS(now)
		f := NewFileSystem(mem, func() int64 { return clock })
		f.SetWriteBack(writeBack)
		h := openWB(t, f, "/sparse", abi.O_RDWR|abi.O_CREAT)
		pwrite(t, h, 8192, "tail")
		h.Pread(0, 4096, func(b []byte, err abi.Errno) {
			if err != abi.OK {
				t.Fatalf("read hole: %v", err)
			}
			first = b
		})
		var st abi.Stat
		h.Stat(func(s abi.Stat, _ abi.Errno) { st = s })
		closeH(t, h)
		return first, st.Size
	}
	onB, onSize := run(true)
	offB, offSize := run(false)
	if onSize != 8196 || offSize != 8196 {
		t.Fatalf("sizes: on=%d off=%d, want 8196", onSize, offSize)
	}
	if len(onB) != len(offB) {
		t.Fatalf("hole read: %d bytes with write-back, %d without", len(onB), len(offB))
	}
	for i, b := range onB {
		if b != 0 || offB[i] != 0 {
			t.Fatalf("hole byte %d nonzero", i)
		}
	}
}

// TestWriteBackCrossFdReadBarrier: a reader whose handle predates the
// writer still observes completed writes — its read flushes the dirty
// extents first (POSIX read-after-write across descriptors).
func TestWriteBackCrossFdReadBarrier(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	mustWrite(t, f, "/shared", "before")
	r := openWB(t, f, "/shared", abi.O_RDONLY) // opened before the writer
	w := openWB(t, f, "/shared", abi.O_WRONLY)
	pwrite(t, w, 0, "AFTER!")
	var got []byte
	r.Pread(0, 64, func(b []byte, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("read: %v", err)
		}
		got = b
	})
	if string(got) != "AFTER!" {
		t.Fatalf("pre-existing reader saw %q, want AFTER!", got)
	}
	closeH(t, r)
	closeH(t, w)
}

// TestWriteBackStaleFdBypasses: once another operation bumps the path's
// generation (unlink), the old handle writes through its own backend
// handle — to the unlinked file — and can never buffer bytes for the
// file the name now names.
func TestWriteBackStaleFdBypasses(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	mustWrite(t, f, "/f", "old")
	h := openWB(t, f, "/f", abi.O_WRONLY)
	pwrite(t, h, 3, "+buffered") // buffered against the old file

	var uerr abi.Errno = -1
	f.Unlink("/f", func(err abi.Errno) { uerr = err }) // flushes, then whiteouts
	if uerr != abi.OK {
		t.Fatalf("unlink: %v", uerr)
	}
	mustWrite(t, f, "/f", "NEW") // a different file under the same name

	pwrite(t, h, 0, "zzz") // stale: must not touch the new /f
	closeH(t, h)
	if got := mustRead(t, f, "/f"); got != "NEW" {
		t.Fatalf("stale fd polluted the new file: %q", got)
	}
	if st := f.CacheStats(); st.DirtyBytes != 0 {
		t.Fatalf("dirty bytes leaked: %d", st.DirtyBytes)
	}
}

// TestWriteBackRenameCarriesBytes: buffered bytes written before a
// rename land in the file (now under its new name), not in limbo and
// not in a recreation of the old name.
func TestWriteBackRenameCarriesBytes(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	h := openWB(t, f, "/a", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "payload")
	var rerr abi.Errno = -1
	f.Rename("/a", "/b", func(err abi.Errno) { rerr = err })
	if rerr != abi.OK {
		t.Fatalf("rename: %v", rerr)
	}
	closeH(t, h)
	if got := mustRead(t, f, "/b"); got != "payload" {
		t.Fatalf("renamed file content %q", got)
	}
}

// TestFlushOnUnmount: Mount flushes buffered state before dropping the
// caches — nothing is lost when the namespace changes.
func TestFlushOnUnmount(t *testing.T) {
	mem := NewMemFS(now)
	f := NewFileSystem(mem, func() int64 { return clock })
	h := openWB(t, f, "/keep", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "survives")
	f.Mount("/mnt", NewMemFS(now)) // FlushCaches → flush-on-unmount
	if got := backendContent(t, mem, "/keep"); got != "survives" {
		t.Fatalf("mount dropped buffered bytes: %q", got)
	}
	closeH(t, h)
}

// BenchmarkWriteBack measures the pdflatex-style append workload —
// many tiny sequential writes to one log file, then close — under
// write-back vs write-through. Reported metrics: backend write calls
// per workload (the coalescing win) and MB/s through the VFS.
func BenchmarkWriteBack(b *testing.B) {
	const writes = 1000
	line := []byte("pdflatex: Overfull \\hbox (badness 10000) in paragraph\n")
	for _, cfg := range []struct {
		name string
		wb   bool
	}{
		{"write-back", true},
		{"write-through", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			mem := NewMemFS(now)
			f := NewFileSystem(mem, func() int64 { return clock })
			f.SetWriteBack(cfg.wb)
			b.SetBytes(int64(writes * len(line)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := fmt.Sprintf("/log%d", i)
				var h FileHandle
				f.Open(path, abi.O_WRONLY|abi.O_CREAT, 0o644, func(fh FileHandle, err abi.Errno) {
					if err != abi.OK {
						b.Fatalf("open: %v", err)
					}
					h = fh
				})
				off := int64(0)
				for j := 0; j < writes; j++ {
					h.Pwrite(off, line, func(int, abi.Errno) {})
					off += int64(len(line))
				}
				h.Close(func(abi.Errno) {})
			}
			b.StopTimer()
			b.ReportMetric(float64(mem.WriteOps)/float64(b.N), "backendwrites/op")
		})
	}
}

// TestWriteBackDifferentialOnOff: a mixed workload (appends, overwrite,
// truncate, reopen, readback) is byte-identical with write-back on and
// off.
func TestWriteBackDifferentialOnOff(t *testing.T) {
	run := func(writeBack bool) string {
		mem := NewMemFS(now)
		f := NewFileSystem(mem, func() int64 { return clock })
		f.SetWriteBack(writeBack)
		h := openWB(t, f, "/w", abi.O_WRONLY|abi.O_CREAT)
		off := int64(0)
		for i := 0; i < 40; i++ {
			s := fmt.Sprintf("%03d;", i)
			pwrite(t, h, off, s)
			off += int64(len(s))
		}
		pwrite(t, h, 10, "OVERWRITE!")
		var terr abi.Errno = -1
		h.Truncate(100, func(err abi.Errno) { terr = err })
		if terr != abi.OK {
			t.Fatalf("truncate: %v", terr)
		}
		pwrite(t, h, 100, "tail")
		closeH(t, h)
		a := mustRead(t, f, "/w")
		mustWrite(t, f, "/w2", "x")
		b := mustRead(t, f, "/w2")
		return a + "|" + b
	}
	on, off := run(true), run(false)
	if on != off {
		t.Fatalf("write-back on/off diverge:\non:  %q\noff: %q", on, off)
	}
}
