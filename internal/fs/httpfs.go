package fs

import (
	"encoding/json"
	"path"

	"repro/internal/abi"
)

// Fetcher retrieves a file over the (simulated) network. status is an HTTP
// status code; 200 with body on success. Completion is asynchronous: the
// callback fires from a simulator event after the modelled round trip.
type Fetcher interface {
	Fetch(p string, cb func(body []byte, status int))
}

// RangeFetcher is the optional Fetcher extension for HTTP Range
// requests: fetch exactly [off, off+n) of a file (status 206 or 200).
// When the server supports it, httpfs serves reads with byte-range
// fetches sized to whatever window the page cache asks for (one read's
// pages, or the readahead window) instead of downloading the whole body
// — first-byte latency on a large file drops from
// transfer(size) to transfer(window).
type RangeFetcher interface {
	FetchRange(p string, off, n int64, cb func(body []byte, status int))
}

// HTTPFS is BrowserFS's XmlHttpRequest backend as extended by Browsix
// (§3.6): a read-only file system backed by an HTTP server. The directory
// index is loaded once (from an index.json listing); file *contents* are
// fetched lazily on first access and cached — this is the mechanism that
// lets the LaTeX editor mount a multi-gigabyte TeX Live tree but transfer
// only the few megabytes a given document touches.
type HTTPFS struct {
	fetch Fetcher
	index map[string]int64 // file path -> size
	dirs  map[string]map[string]bool
	cache map[string][]byte
	now   func() int64

	// FetchCount counts network fetches (for the lazy-load experiments).
	FetchCount int
	// BytesFetched counts body bytes transferred.
	BytesFetched int64
	// RangeFetches counts byte-range fetches (range-capable fetchers).
	RangeFetches int
}

// BuildIndex serializes a path->size listing in the index.json format
// NewHTTPFS consumes. Use it when staging a server image.
func BuildIndex(files map[string]int64) []byte {
	b, err := json.Marshal(files)
	if err != nil {
		panic("fs: BuildIndex: " + err.Error())
	}
	return b
}

// RangeThreshold is the file size above which a range-capable fetcher
// switches to byte-range fetches: one readahead window's worth of pages.
// Below it, a single whole-body fetch is cheaper than per-window round
// trips.
const RangeThreshold = DefaultReadaheadPages * PageSize

// NewHTTPFS creates an HTTP-backed read-only backend from an index listing
// (JSON object mapping absolute file paths to sizes).
func NewHTTPFS(indexJSON []byte, fetch Fetcher, now func() int64) (*HTTPFS, error) {
	var files map[string]int64
	if err := json.Unmarshal(indexJSON, &files); err != nil {
		return nil, err
	}
	h := &HTTPFS{
		fetch: fetch,
		index: map[string]int64{},
		dirs:  map[string]map[string]bool{"/": {}},
		cache: map[string][]byte{},
		now:   now,
	}
	for p, size := range files {
		p = Clean(p)
		h.index[p] = size
		// Register every ancestor directory.
		for dir := path.Dir(p); ; dir = path.Dir(dir) {
			if h.dirs[dir] == nil {
				h.dirs[dir] = map[string]bool{}
			}
			if dir == "/" {
				break
			}
		}
		h.dirs[path.Dir(p)][path.Base(p)] = false
		for dir := path.Dir(p); dir != "/"; dir = path.Dir(dir) {
			h.dirs[path.Dir(dir)][path.Base(dir)] = true
		}
	}
	return h, nil
}

// Name implements Backend.
func (h *HTTPFS) Name() string { return "httpfs" }

// ReadOnly implements Backend.
func (h *HTTPFS) ReadOnly() bool { return true }

func (h *HTTPFS) statOf(p string) (abi.Stat, abi.Errno) {
	p = Clean(p)
	if _, ok := h.dirs[p]; ok {
		return abi.Stat{Mode: abi.S_IFDIR | 0o555, Nlink: 1}, abi.OK
	}
	if size, ok := h.index[p]; ok {
		return abi.Stat{Mode: abi.S_IFREG | 0o444, Size: size, Nlink: 1}, abi.OK
	}
	return abi.Stat{}, abi.ENOENT
}

// Stat implements Backend. Metadata comes from the index: no network
// round trip — the optimization Browsix added for cheap failed lookups.
func (h *HTTPFS) Stat(p string, cb func(abi.Stat, abi.Errno)) {
	st, err := h.statOf(p)
	cb(st, err)
}

// Lstat implements Backend (no symlinks over HTTP).
func (h *HTTPFS) Lstat(p string, cb func(abi.Stat, abi.Errno)) { h.Stat(p, cb) }

// Open implements Backend: lazily fetches and caches the file body.
func (h *HTTPFS) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	p = Clean(p)
	if flags&abi.O_ACCMODE != abi.O_RDONLY || flags&(abi.O_CREAT|abi.O_TRUNC) != 0 {
		cb(nil, abi.EROFS)
		return
	}
	if _, ok := h.dirs[p]; ok {
		cb(nil, abi.EISDIR)
		return
	}
	if _, ok := h.index[p]; !ok {
		cb(nil, abi.ENOENT)
		return
	}
	if body, ok := h.cache[p]; ok {
		cb(&httpHandle{fs: h, path: p, data: body}, abi.OK)
		return
	}
	if rf, ok := h.fetch.(RangeFetcher); ok && h.index[p] > RangeThreshold {
		// Range-capable server and a big file: open costs nothing; each
		// read becomes a byte-range fetch sized to the requested window
		// (the page cache's miss or readahead span). The VFS page cache
		// above absorbs re-reads, so httpfs keeps no whole-body copy on
		// this path. Files at or below the threshold keep the one-fetch
		// whole-body path — a range round trip per window would cost
		// more than it saves.
		cb(&httpRangeHandle{fs: h, path: p, rf: rf, size: h.index[p]}, abi.OK)
		return
	}
	h.fetch.Fetch(p, func(body []byte, status int) {
		if status != 200 {
			cb(nil, abi.EIO)
			return
		}
		h.FetchCount++
		h.BytesFetched += int64(len(body))
		h.cache[p] = body
		h.index[p] = int64(len(body))
		cb(&httpHandle{fs: h, path: p, data: body}, abi.OK)
	})
}

// Preload fetches every indexed file up-front. This is the *eager*
// behaviour of the original BrowserFS overlay underlay that Browsix
// removed; it exists to power the lazy-vs-eager ablation benchmark.
func (h *HTTPFS) Preload(done func()) {
	paths := make([]string, 0, len(h.index))
	for p := range h.index {
		if _, cached := h.cache[p]; !cached {
			paths = append(paths, p)
		}
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(paths) {
			done()
			return
		}
		p := paths[i]
		h.fetch.Fetch(p, func(body []byte, status int) {
			if status == 200 {
				h.FetchCount++
				h.BytesFetched += int64(len(body))
				h.cache[p] = body
				h.index[p] = int64(len(body))
			}
			step(i + 1)
		})
	}
	step(0)
}

// Readdir implements Backend.
func (h *HTTPFS) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	p = Clean(p)
	children, ok := h.dirs[p]
	if !ok {
		if _, isFile := h.index[p]; isFile {
			cb(nil, abi.ENOTDIR)
		} else {
			cb(nil, abi.ENOENT)
		}
		return
	}
	ents := make([]abi.Dirent, 0, len(children))
	for name, isDir := range children {
		t := abi.DT_REG
		if isDir {
			t = abi.DT_DIR
		}
		ents = append(ents, abi.Dirent{Name: name, Type: t})
	}
	cb(ents, abi.OK)
}

// Mkdir and the other mutating operations fail with EROFS.
func (h *HTTPFS) Mkdir(p string, m uint32, cb func(abi.Errno))  { cb(abi.EROFS) }
func (h *HTTPFS) Rmdir(p string, cb func(abi.Errno))            { cb(abi.EROFS) }
func (h *HTTPFS) Unlink(p string, cb func(abi.Errno))           { cb(abi.EROFS) }
func (h *HTTPFS) Rename(o, n string, cb func(abi.Errno))        { cb(abi.EROFS) }
func (h *HTTPFS) Readlink(p string, cb func(string, abi.Errno)) { cb("", abi.EINVAL) }
func (h *HTTPFS) Symlink(t, l string, cb func(abi.Errno))       { cb(abi.EROFS) }
func (h *HTTPFS) Utimes(p string, a, m int64, cb func(abi.Errno)) {
	cb(abi.EROFS)
}

// httpHandle is an open (fully fetched) HTTP-backed file.
type httpHandle struct {
	fs   *HTTPFS
	path string
	data []byte
}

func (h *httpHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	if off >= int64(len(h.data)) {
		cb(nil, abi.OK)
		return
	}
	end := off + int64(n)
	if end > int64(len(h.data)) {
		end = int64(len(h.data))
	}
	out := make([]byte, end-off)
	copy(out, h.data[off:end])
	cb(out, abi.OK)
}

// PreadSlice implements SliceReader: the body is fully resident, so the
// page cache's fault path reads it through a stable subslice and copies
// exactly once, into the destination arena slot — no per-read staging
// buffer. (zipfs handles share this type, so decompressed members get
// the same path.) Public Pread/Preadv still copy: only the page cache,
// which copies before the callback returns, gets the aliased view.
func (h *httpHandle) PreadSlice(off int64, n int) ([]byte, bool) {
	if off >= int64(len(h.data)) || off < 0 {
		return nil, true
	}
	end := off + int64(n)
	if end > int64(len(h.data)) {
		end = int64(len(h.data))
	}
	return h.data[off:end:end], true
}

func (h *httpHandle) Pwrite(int64, []byte, func(int, abi.Errno)) {
	panic("fs: pwrite on read-only http handle")
}

// Preadv implements FileHandle: the body is already resident, so each
// requested length is sliced out in one pass. Segments are copies — the
// cached body is shared by every handle on this file (and the backend
// cache itself), so aliasing it out to callers would let a buggy caller
// corrupt the cache.
func (h *httpHandle) Preadv(off int64, lens []int, cb func([][]byte, abi.Errno)) {
	var segs [][]byte
	pos := off
	for _, n := range lens {
		if pos >= int64(len(h.data)) {
			break
		}
		if n <= 0 {
			continue // zero-length iovecs are legal mid-list
		}
		end := pos + int64(n)
		if end > int64(len(h.data)) {
			end = int64(len(h.data))
		}
		seg := make([]byte, end-pos)
		copy(seg, h.data[pos:end])
		segs = append(segs, seg)
		pos = end
	}
	cb(segs, abi.OK)
}

func (h *httpHandle) Pwritev(int64, [][]byte, func(int, abi.Errno)) {
	panic("fs: pwritev on read-only http handle")
}

func (h *httpHandle) Stat(cb func(abi.Stat, abi.Errno)) {
	cb(abi.Stat{Mode: abi.S_IFREG | 0o444, Size: int64(len(h.data)), Nlink: 1}, abi.OK)
}

func (h *httpHandle) Truncate(int64, func(abi.Errno)) {
	panic("fs: truncate on read-only http handle")
}

func (h *httpHandle) Close(cb func(abi.Errno)) { cb(abi.OK) }

// httpRangeHandle is an open file on a range-capable server: nothing is
// resident; every read is an HTTP Range request for exactly the bytes
// the caller (normally the page cache's miss/readahead path) asked for.
type httpRangeHandle struct {
	fs   *HTTPFS
	path string
	rf   RangeFetcher
	size int64 // index size snapshot (read-only backend)
}

func (h *httpRangeHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	if off >= h.size || n <= 0 {
		cb(nil, abi.OK)
		return
	}
	want := int64(n)
	if off+want > h.size {
		want = h.size - off
	}
	if body, ok := h.fs.cache[h.path]; ok {
		// A prior 200 fallback cached the whole body: serve windows
		// from it with no further network traffic.
		cb(sliceBody(body, off, want), abi.OK)
		return
	}
	h.rf.FetchRange(h.path, off, want, func(body []byte, status int) {
		switch status {
		case 206:
			// Partial content: the body IS the requested range.
			if int64(len(body)) > want {
				body = body[:want]
			}
			h.fs.FetchCount++
			h.fs.RangeFetches++
			h.fs.BytesFetched += int64(len(body))
			cb(body, abi.OK)
		case 200:
			// The server ignored Range and sent the whole file (legal
			// HTTP). Account the full transfer and cache the body like
			// the whole-body path, so later windows on this file never
			// re-download it.
			h.fs.FetchCount++
			h.fs.BytesFetched += int64(len(body))
			h.fs.cache[h.path] = body
			h.fs.index[h.path] = int64(len(body))
			cb(sliceBody(body, off, want), abi.OK)
		default:
			cb(nil, abi.EIO)
		}
	})
}

// sliceBody copies the window [off, off+want) out of a whole body.
func sliceBody(body []byte, off, want int64) []byte {
	if off >= int64(len(body)) {
		return nil
	}
	end := off + want
	if end > int64(len(body)) {
		end = int64(len(body))
	}
	out := make([]byte, end-off)
	copy(out, body[off:end])
	return out
}

func (h *httpRangeHandle) Pwrite(int64, []byte, func(int, abi.Errno)) {
	panic("fs: pwrite on read-only http handle")
}

func (h *httpRangeHandle) Pwritev(int64, [][]byte, func(int, abi.Errno)) {
	panic("fs: pwritev on read-only http handle")
}

// Preadv implements FileHandle as one coalesced range fetch.
func (h *httpRangeHandle) Preadv(off int64, lens []int, cb func([][]byte, abi.Errno)) {
	genericPreadv(h, off, lens, cb)
}

func (h *httpRangeHandle) Stat(cb func(abi.Stat, abi.Errno)) {
	cb(abi.Stat{Mode: abi.S_IFREG | 0o444, Size: h.size, Nlink: 1}, abi.OK)
}

func (h *httpRangeHandle) Truncate(int64, func(abi.Errno)) {
	panic("fs: truncate on read-only http handle")
}

func (h *httpRangeHandle) Close(cb func(abi.Errno)) { cb(abi.OK) }
