package fs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/abi"
)

// Zero-copy read path unit tests: PreadRef grant semantics, the
// pin/freeze lease discipline of the page pool, and the adaptive
// readahead window.

func openPaged(t *testing.T, f *FileSystem, p string) *pagedHandle {
	t.Helper()
	var out *pagedHandle
	f.Open(p, abi.O_RDONLY, 0, func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("open %s: %v", p, err)
		}
		ph, ok := fh.(*pagedHandle)
		if !ok {
			t.Fatalf("open %s: got %T, want *pagedHandle", p, fh)
		}
		out = ph
	})
	return out
}

func warmRead(t *testing.T, h FileHandle, off int64, n int) []byte {
	t.Helper()
	var out []byte
	h.Pread(off, n, func(b []byte, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("pread: %v", err)
		}
		out = b
	})
	return out
}

func patterned(n int) string {
	var sb strings.Builder
	for sb.Len() < n {
		fmt.Fprintf(&sb, "block-%08d|", sb.Len())
	}
	return sb.String()[:n]
}

func TestPreadRefGrantsWarmPages(t *testing.T) {
	content := patterned(2*PageSize + 700) // EOF inside a short page
	f, counted := newCountedFS(t, content)
	h := openPaged(t, f, "/mnt/a/b/file.txt")
	warmRead(t, h, 0, len(content)) // populate every page
	opensBefore := counted.opens

	refs, ok := h.PreadRef(100, PageSize+50, 8)
	if !ok {
		t.Fatalf("PreadRef refused a fully warm range")
	}
	if counted.opens != opensBefore {
		t.Fatalf("grant path touched the backend")
	}
	var got []byte
	for _, r := range refs {
		if n := f.pc.pool.pinCount(r.Slot); n != 1 {
			t.Fatalf("slot %d pins = %d, want 1", r.Slot, n)
		}
		got = append(got, f.pc.pool.arena[r.Off:r.Off+int64(r.Len)]...)
	}
	if string(got) != content[100:100+PageSize+50] {
		t.Fatalf("granted bytes differ from file content")
	}
	st := f.CacheStats()
	if st.GrantedPages != int64(len(refs)) || st.PinnedPages == 0 {
		t.Fatalf("lease stats: %+v", st)
	}
	for _, r := range refs {
		if !f.UnleasePage(r.Slot) {
			t.Fatalf("unlease slot %d failed", r.Slot)
		}
	}
	if f.CacheStats().PinnedPages != 0 {
		t.Fatalf("pins remain after unlease")
	}

	// A read entirely at/after EOF inside the short tail page grants
	// zero refs successfully — zero bytes, zero copies, zero leases.
	refs, ok = h.PreadRef(int64(len(content)), 4096, 8)
	if !ok || len(refs) != 0 {
		t.Fatalf("EOF PreadRef = (%d refs, ok=%v), want (0, true)", len(refs), ok)
	}
}

func TestPreadRefRefusesColdDirtyStaleAndTinyMax(t *testing.T) {
	content := patterned(3 * PageSize)
	f, _ := newCountedFS(t, content)
	h := openPaged(t, f, "/mnt/a/b/file.txt")

	// Cold: nothing cached yet.
	if _, ok := h.PreadRef(0, PageSize, 8); ok {
		t.Fatalf("PreadRef served a cold range")
	}
	warmRead(t, h, 0, len(content))

	// Too many refs for the caller's grant area: refuse without pinning.
	if _, ok := h.PreadRef(0, 3*PageSize, 1); ok {
		t.Fatalf("PreadRef exceeded max")
	}
	if f.CacheStats().PinnedPages != 0 {
		t.Fatalf("refused PreadRef left pins behind")
	}

	// Dirty write-back state on the path: the copy path (with its flush
	// barrier) must serve the read.
	f.pc.dirty["/mnt/a/b/file.txt"] = &dirtyFile{}
	if _, ok := h.PreadRef(0, PageSize, 8); ok {
		t.Fatalf("PreadRef served a dirty path")
	}
	delete(f.pc.dirty, "/mnt/a/b/file.txt")

	// Stale generation: the handle may be bound to a different file.
	f.pc.drop("/mnt/a/b/file.txt")
	if _, ok := h.PreadRef(0, PageSize, 8); ok {
		t.Fatalf("PreadRef served a stale handle")
	}
}

// TestLeaseFreezesDroppedPages is the revocation interlock: dropping a
// leased page (invalidation, flush, eviction) must preserve the slot's
// bytes until the lease returns, and must never re-grant or recycle the
// slot meanwhile.
func TestLeaseFreezesDroppedPages(t *testing.T) {
	content := patterned(2 * PageSize)
	f, _ := newCountedFS(t, content)
	h := openPaged(t, f, "/mnt/a/b/file.txt")
	warmRead(t, h, 0, len(content))

	refs, ok := h.PreadRef(0, PageSize, 4)
	if !ok || len(refs) != 1 {
		t.Fatalf("PreadRef: ok=%v refs=%d", ok, len(refs))
	}
	r := refs[0]
	snapshot := append([]byte(nil), f.pc.pool.arena[r.Off:r.Off+int64(r.Len)]...)

	// Gen-bumping invalidation while the lease is outstanding: the page
	// detaches (no new grants) but the slot freezes.
	f.invalidatePath("/mnt/a/b/file.txt")
	if !f.pc.pool.isFrozen(r.Slot) {
		t.Fatalf("dropped leased slot %d not frozen", r.Slot)
	}
	if f.pc.pool.isFree(r.Slot) {
		t.Fatalf("leased slot %d recycled while pinned", r.Slot)
	}
	// Churn the cache: stores must fill other slots, never this one.
	for i := 0; i < 32; i++ {
		f.pc.store(fmt.Sprintf("/churn%d", i), 0, bytes.Repeat([]byte{byte(i)}, PageSize), false)
	}
	if !bytes.Equal(f.pc.pool.arena[r.Off:r.Off+int64(r.Len)], snapshot) {
		t.Fatalf("frozen slot bytes changed under an outstanding lease")
	}

	// Returning the lease thaws the slot back onto the free stack.
	if !f.UnleasePage(r.Slot) {
		t.Fatalf("unlease failed")
	}
	if f.pc.pool.isFrozen(r.Slot) || f.pc.pool.pinCount(r.Slot) != 0 {
		t.Fatalf("slot %d not reclaimed after last unlease", r.Slot)
	}
	if !f.pc.pool.isFree(r.Slot) {
		t.Fatalf("slot %d not returned to the free stack", r.Slot)
	}
}

// TestStoreNeverRewritesLeasedSlot: re-caching a page (same path, same
// index) allocates a fresh slot when the old one is leased out — bytes
// under a lease are immutable.
func TestStoreNeverRewritesLeasedSlot(t *testing.T) {
	content := patterned(PageSize)
	f, _ := newCountedFS(t, content)
	h := openPaged(t, f, "/mnt/a/b/file.txt")
	warmRead(t, h, 0, len(content))
	refs, ok := h.PreadRef(0, PageSize, 4)
	if !ok || len(refs) != 1 {
		t.Fatalf("PreadRef: ok=%v", ok)
	}
	old := refs[0]
	f.pc.store("/mnt/a/b/file.txt", 0, bytes.Repeat([]byte{0xEE}, PageSize), false)
	pg := f.pc.files["/mnt/a/b/file.txt"].pages[0]
	if pg.slot == old.Slot {
		t.Fatalf("store reused leased slot %d in place", old.Slot)
	}
	if !bytes.Equal(f.pc.pool.arena[old.Off:old.Off+int64(old.Len)], []byte(content)) {
		t.Fatalf("leased bytes rewritten by store")
	}
	f.UnleasePage(old.Slot)
}

// recBackend wraps a read-only backend and records the size of every
// backend Pread — the observable the adaptive-readahead tests assert on.
type recBackend struct {
	Backend
	reads *[]int
}

func (b *recBackend) ReadOnly() bool { return true }

func (b *recBackend) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	b.Backend.Open(p, flags, mode, func(h FileHandle, err abi.Errno) {
		if err == abi.OK {
			h = &recHandle{FileHandle: h, reads: b.reads}
		}
		cb(h, err)
	})
}

type recHandle struct {
	FileHandle
	reads *[]int
}

func (h *recHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	*h.reads = append(*h.reads, n)
	h.FileHandle.Pread(off, n, cb)
}

// TestAdaptiveReadaheadDoublesOnStreakResetsOnSeek: sequential reads
// double the readahead window (so backend transfer units grow), and a
// seek resets it to the base.
func TestAdaptiveReadaheadDoublesOnStreakResetsOnSeek(t *testing.T) {
	const pages = 256
	img := NewMemFS(now)
	stage := NewFileSystem(img, func() int64 { return clock })
	mustWrite(t, stage, "/big", patterned(pages*PageSize))
	img.SetReadOnly()
	var reads []int
	f := newFS()
	f.Mount("/rec", &recBackend{Backend: img, reads: &reads})
	f.SetReadahead(2)

	h := openPaged(t, f, "/rec/big")
	// Sequential streak: page-at-a-time reads.
	for off := int64(0); off < 64*PageSize; off += PageSize {
		warmRead(t, h, off, PageSize)
	}
	maxSeen := 0
	for _, n := range reads {
		if n > maxSeen {
			maxSeen = n
		}
	}
	if maxSeen < 16*PageSize {
		t.Fatalf("window never grew: max backend read %d bytes (reads %v)", maxSeen, reads)
	}
	if h.raWindow <= 2 {
		t.Fatalf("raWindow = %d after a long streak", h.raWindow)
	}

	// Seek away: the window resets to the base, and the next streak's
	// first readahead is small again.
	reads = reads[:0]
	warmRead(t, h, 200*PageSize, PageSize) // non-sequential
	if h.raWindow != 2 {
		t.Fatalf("raWindow = %d after seek, want base 2", h.raWindow)
	}
	warmRead(t, h, 201*PageSize, PageSize) // streak restarts
	for _, n := range reads {
		if n > 8*PageSize {
			t.Fatalf("post-seek backend read %d bytes — window did not reset (reads %v)", n, reads)
		}
	}
}

// TestRangeReadaheadWindowGrowth: with httpfs byte-range fetches (the
// 206 path), the adaptive window directly sizes the transfer units — a
// sequential stream's Range requests grow with the streak.
func TestRangeReadaheadWindowGrowth(t *testing.T) {
	big := []byte(patterned(128 * PageSize))
	hfs, ff := newRangeHTTPFS(t, map[string][]byte{"/big.bin": big})
	f := newFS()
	f.Mount("/http", hfs)
	f.SetReadahead(2)

	h := openPaged(t, f, "/http/big.bin")
	var got []byte
	for off := int64(0); off < 64*PageSize; off += PageSize {
		got = append(got, warmRead(t, h, off, PageSize)...)
	}
	if !bytes.Equal(got, big[:64*PageSize]) {
		t.Fatalf("sequential ranged read corrupted data")
	}
	if len(ff.whole) != 0 {
		t.Fatalf("whole-body fetches on the range path: %v", ff.whole)
	}
	first, maxN := int64(-1), int64(0)
	for _, r := range ff.ranges {
		var n int64
		fmt.Sscanf(r[strings.LastIndexByte(r, '+')+1:], "%d", &n)
		if first < 0 {
			first = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if first < 0 {
		t.Fatalf("no Range fetches recorded")
	}
	if maxN < 8*int64(PageSize) || maxN <= first {
		t.Fatalf("Range windows did not grow: first=%d max=%d (%v)", first, maxN, ff.ranges)
	}
}
