package fs

import (
	"strings"
	"sync/atomic"

	"repro/internal/abi"
)

// The dentry cache is the naming layer's translation tier: it decouples
// path resolution from backend storage the way the Virtual Block
// Interface decouples virtual from physical blocks. Two tiers:
//
//   - per-component dentries: canonical path -> lstat result, including
//     negative entries (ENOENT) and memoized symlink targets, so a warm
//     walk never calls a backend;
//   - whole-walk entries: (flags, cleaned path) -> final walk result, so
//     a warm stat/open of a hot path is a single map hit.
//
// Every mutating operation invalidates the affected dentries and clears
// the whole-walk tier (it is cheap to rebuild from warm dentries). The
// cache holds no bytes — file contents live in the page cache.

// dentry is one cached name-resolution result for a canonical path.
type dentry struct {
	st        abi.Stat
	err       abi.Errno // OK, or the cacheable negative result (ENOENT)
	target    string    // symlink target, memoized on first Readlink
	hasTarget bool
	synthetic bool // directory synthesized for a nested mount point
}

// maxDentries bounds the per-component tier. Overflow clears the whole
// tier (crude, deterministic, and rare — a TeX Live walk touches a few
// thousand names).
const maxDentries = 16384

// maxDirListings bounds the directory-listing tier. Listings are heavier
// than dentries (whole entry slices), so the budget is smaller.
const maxDirListings = 2048

type dcache struct {
	entries map[string]*dentry
	walks   map[string]walkEnt // only err==OK results

	// dirents caches complete directory listings keyed by canonical
	// directory path (merged across backends and mount synthesis,
	// sorted). Invalidated through the same drop/dropTree hooks as the
	// dentries: every mutating VFS operation drops the affected child
	// and its parent, which is exactly the listing that changed.
	dirents map[string][]abi.Dirent

	// Counters for the cache-hit-rate experiments (EXPERIMENTS.md).
	// Atomics: the host may snapshot CacheStats while the Instance runs
	// on another thread (the fleet's live stats path).
	hits, misses, negHits atomic.Int64
	walkHits              atomic.Int64
	dirHits, dirMisses    atomic.Int64
	// Batch-lookup counters: lookups resolved through getWalkBatch's
	// single pass, and the number of multi-element batches.
	batchedLookups, statBatches atomic.Int64
	// entryCount shadows len(entries) so CacheStats never reads the map
	// itself off the owning thread.
	entryCount atomic.Int64
}

func newDcache() *dcache {
	return &dcache{
		entries: map[string]*dentry{},
		walks:   map[string]walkEnt{},
		dirents: map[string][]abi.Dirent{},
	}
}

// getDir returns a cached listing. The returned slice is shared: callers
// get a fresh copy from putDir's accessor path in fs.go.
func (c *dcache) getDir(p string) ([]abi.Dirent, bool) {
	ents, ok := c.dirents[p]
	if ok {
		c.dirHits.Add(1)
	} else {
		c.dirMisses.Add(1)
	}
	return ents, ok
}

func (c *dcache) putDir(p string, ents []abi.Dirent) {
	if len(c.dirents) >= maxDirListings {
		clear(c.dirents)
	}
	c.dirents[p] = ents
}

func (c *dcache) get(p string) (*dentry, bool) {
	d, ok := c.entries[p]
	if ok {
		if d.err == abi.OK {
			c.hits.Add(1)
		} else {
			c.negHits.Add(1)
		}
	} else {
		c.misses.Add(1)
	}
	return d, ok
}

func (c *dcache) put(p string, d *dentry) {
	if len(c.entries) >= maxDentries {
		clear(c.entries)
		c.entryCount.Store(0)
	}
	if _, ok := c.entries[p]; !ok {
		c.entryCount.Add(1)
	}
	c.entries[p] = d
}

// getWalkBatch resolves a batch of whole-walk keys against the cache in
// one pass — the batch lookup path a drained stat storm (a ring doorbell
// carrying N stat frames for `ls`/`make` probing many names) resolves
// through. One traversal of the two tiers serves the whole batch: in a
// threaded implementation this is one lock acquisition per batch instead
// of one per name. Each hit is validated against its endpoint dentry
// exactly like walk()'s single-key fast path, so the batch can never
// return a result a mutation has staled.
func (c *dcache) getWalkBatch(keys []string, opts []walkOpts) ([]walkEnt, []bool) {
	ents := make([]walkEnt, len(keys))
	ok := make([]bool, len(keys))
	for i, key := range keys {
		if key == "" {
			continue // caller marked the lookup uncacheable
		}
		e, present := c.walks[key]
		if !present {
			continue
		}
		d, dok := c.entries[e.path]
		if !validWalkHit(d, dok, opts[i]) {
			continue
		}
		c.walkHits.Add(1)
		c.batchedLookups.Add(1)
		e.st = d.st
		ents[i], ok[i] = e, true
	}
	return ents, ok
}

// validWalkHit reports whether a cached whole-walk result may be served:
// its endpoint dentry must be live and compatible with the walk options.
// Shared by walk()'s single-key fast path and getWalkBatch so the two
// tiers can never diverge on staleness rules.
func validWalkHit(d *dentry, present bool, o walkOpts) bool {
	return present && d.err == abi.OK &&
		!(o.follow && d.st.IsSymlink()) &&
		!(o.requireDir && !d.st.IsDir())
}

func (c *dcache) putWalk(key string, e walkEnt) {
	if len(c.walks) >= maxDentries {
		clear(c.walks)
	}
	c.walks[key] = e
}

// drop forgets one path. Whole-walk entries are not cleared: a walk hit
// is validated against its endpoint dentry, so dropping the dentry
// suffices to stale any walk that ends here — and symlink-traversing
// walks (whose validity depends on other names) are never cached. The
// path's directory listing is dropped too: mutating operations drop both
// the changed child and its parent, which covers the listing that gained
// or lost an entry.
func (c *dcache) drop(p string) {
	if _, ok := c.entries[p]; ok {
		c.entryCount.Add(-1)
	}
	delete(c.entries, p)
	delete(c.dirents, p)
}

// dropTree forgets a path and everything under it (rename/rmdir of a
// directory moves or deletes the whole subtree).
func (c *dcache) dropTree(p string) {
	if _, ok := c.entries[p]; ok {
		c.entryCount.Add(-1)
	}
	delete(c.entries, p)
	delete(c.dirents, p)
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	for k := range c.entries {
		if strings.HasPrefix(k, prefix) {
			delete(c.entries, k)
			c.entryCount.Add(-1)
		}
	}
	for k := range c.dirents {
		if strings.HasPrefix(k, prefix) {
			delete(c.dirents, k)
		}
	}
}

func (c *dcache) flush() {
	clear(c.entries)
	c.entryCount.Store(0)
	clear(c.walks)
	clear(c.dirents)
}
