package fs

import (
	"strings"
	"sync/atomic"

	"repro/internal/abi"
)

// The dentry cache is the naming layer's translation tier: it decouples
// path resolution from backend storage the way the Virtual Block
// Interface decouples virtual from physical blocks. Two tiers:
//
//   - per-component dentries: canonical path -> lstat result, including
//     negative entries (ENOENT) and memoized symlink targets, so a warm
//     walk never calls a backend;
//   - whole-walk entries: a radix-prefix tree keyed one path component
//     per level, each node holding the final walk result per option
//     flavour, so a warm stat/open of a hot path is one descent — and a
//     10^5-name TeX tree shares every directory prefix once instead of
//     duplicating it in 10^5 flat map keys.
//
// Every mutating operation invalidates the affected dentries and clears
// the whole-walk tier (it is cheap to rebuild from warm dentries). The
// cache holds no bytes — file contents live in the page cache.

// dentry is one cached name-resolution result for a canonical path.
type dentry struct {
	st        abi.Stat
	err       abi.Errno // OK, or the cacheable negative result (ENOENT)
	target    string    // symlink target, memoized on first Readlink
	hasTarget bool
	synthetic bool // directory synthesized for a nested mount point
}

// maxDentries bounds the per-component tier. Overflow clears the whole
// tier (crude, deterministic, and rare — a TeX Live walk touches a few
// thousand names).
const maxDentries = 16384

// maxDirListings bounds the directory-listing tier. Listings are heavier
// than dentries (whole entry slices), so the budget is smaller.
const maxDirListings = 2048

// maxWalkNodes bounds the whole-walk radix tree in *nodes*. Prefix
// sharing means a tree of N names costs about N nodes regardless of
// depth, so a 10^5-name TeX Live tree fits with headroom; overflow
// clears the tier (crude, deterministic, and now rare).
const maxWalkNodes = 1 << 17

// walkNode is one path component in the whole-walk radix tree. A node
// caches up to four walk results — one per (follow, requireDir) flavour —
// because the same name resolves differently per option set. Only
// err==OK, non-symlink-traversing results are stored; every hit is
// re-validated against the endpoint dentry before being served.
type walkNode struct {
	children map[string]*walkNode
	ents     [4]walkEnt
	has      [4]bool
}

// walkOptIdx maps walk options onto a node's result slot.
func walkOptIdx(o walkOpts) int {
	i := 0
	if o.follow {
		i = 1
	}
	if o.requireDir {
		i |= 2
	}
	return i
}

type dcache struct {
	entries map[string]*dentry

	// Whole-walk radix tier: walkRoot is the node for "/"; walkNodes
	// counts live nodes against maxWalkNodes (walkNodeCount shadows it
	// for cross-thread stats snapshots).
	walkRoot      *walkNode
	walkNodes     int
	walkNodeCount atomic.Int64

	// dirents caches complete directory listings keyed by canonical
	// directory path (merged across backends and mount synthesis,
	// sorted). Invalidated through the same drop/dropTree hooks as the
	// dentries: every mutating VFS operation drops the affected child
	// and its parent, which is exactly the listing that changed.
	dirents map[string][]abi.Dirent

	// Counters for the cache-hit-rate experiments (EXPERIMENTS.md).
	// Atomics: the host may snapshot CacheStats while the Instance runs
	// on another thread (the fleet's live stats path).
	hits, misses, negHits atomic.Int64
	walkHits              atomic.Int64
	dirHits, dirMisses    atomic.Int64
	// Batch-lookup counters: lookups resolved through getWalkBatch's
	// single pass, and the number of multi-element batches.
	batchedLookups, statBatches atomic.Int64
	// entryCount shadows len(entries) so CacheStats never reads the map
	// itself off the owning thread.
	entryCount atomic.Int64
}

func newDcache() *dcache {
	return &dcache{
		entries: map[string]*dentry{},
		dirents: map[string][]abi.Dirent{},
	}
}

// walkNodeFor descends the radix tree along raw path p — components
// scanned in place, empty and "." components skipped, so distinct
// spellings of one path ("/a//b", "/a/./b", "/a/b") share a node.
// Returns nil on a miss. ".."-containing paths never reach here (they
// are uncacheable; namei.go).
func (c *dcache) walkNodeFor(p string) *walkNode {
	n := c.walkRoot
	if n == nil {
		return nil
	}
	i := 0
	for i < len(p) {
		for i < len(p) && p[i] == '/' {
			i++
		}
		j := i
		for j < len(p) && p[j] != '/' {
			j++
		}
		if j > i && p[i:j] != "." {
			n = n.children[p[i:j]]
			if n == nil {
				return nil
			}
		}
		i = j
	}
	return n
}

// getWalk returns the cached whole-walk result for (p, o), unvalidated —
// walk() checks the endpoint dentry before serving it.
func (c *dcache) getWalk(p string, o walkOpts) (walkEnt, bool) {
	n := c.walkNodeFor(p)
	if n == nil {
		return walkEnt{}, false
	}
	idx := walkOptIdx(o)
	if !n.has[idx] {
		return walkEnt{}, false
	}
	return n.ents[idx], true
}

// putWalk caches a whole-walk result, creating radix nodes along the
// path. The node budget is checked up front: on overflow the whole tier
// clears (deterministically), then the insert proceeds.
func (c *dcache) putWalk(p string, o walkOpts, e walkEnt) {
	if c.walkNodes >= maxWalkNodes {
		c.walkRoot, c.walkNodes = nil, 0
	}
	if c.walkRoot == nil {
		c.walkRoot = &walkNode{}
		c.walkNodes = 1
	}
	n := c.walkRoot
	i := 0
	for i < len(p) {
		for i < len(p) && p[i] == '/' {
			i++
		}
		j := i
		for j < len(p) && p[j] != '/' {
			j++
		}
		if j > i && p[i:j] != "." {
			child := n.children[p[i:j]]
			if child == nil {
				if n.children == nil {
					n.children = map[string]*walkNode{}
				}
				child = &walkNode{}
				n.children[p[i:j]] = child
				c.walkNodes++
			}
			n = child
		}
		i = j
	}
	idx := walkOptIdx(o)
	n.ents[idx] = e
	n.has[idx] = true
	c.walkNodeCount.Store(int64(c.walkNodes))
}

// getDir returns a cached listing. The returned slice is shared: callers
// get a fresh copy from putDir's accessor path in fs.go.
func (c *dcache) getDir(p string) ([]abi.Dirent, bool) {
	ents, ok := c.dirents[p]
	if ok {
		c.dirHits.Add(1)
	} else {
		c.dirMisses.Add(1)
	}
	return ents, ok
}

func (c *dcache) putDir(p string, ents []abi.Dirent) {
	if len(c.dirents) >= maxDirListings {
		clear(c.dirents)
	}
	c.dirents[p] = ents
}

func (c *dcache) get(p string) (*dentry, bool) {
	d, ok := c.entries[p]
	if ok {
		if d.err == abi.OK {
			c.hits.Add(1)
		} else {
			c.negHits.Add(1)
		}
	} else {
		c.misses.Add(1)
	}
	return d, ok
}

func (c *dcache) put(p string, d *dentry) {
	if len(c.entries) >= maxDentries {
		clear(c.entries)
		c.entryCount.Store(0)
	}
	if _, ok := c.entries[p]; !ok {
		c.entryCount.Add(1)
	}
	c.entries[p] = d
}

// getWalkBatch resolves a batch of whole-walk keys against the cache in
// one pass — the batch lookup path a drained stat storm (a ring doorbell
// carrying N stat frames for `ls`/`make` probing many names) resolves
// through. One traversal of the two tiers serves the whole batch: in a
// threaded implementation this is one lock acquisition per batch instead
// of one per name. Each hit is validated against its endpoint dentry
// exactly like walk()'s single-key fast path, so the batch can never
// return a result a mutation has staled.
func (c *dcache) getWalkBatch(paths []string, opts []walkOpts) ([]walkEnt, []bool) {
	ents := make([]walkEnt, len(paths))
	ok := make([]bool, len(paths))
	for i, p := range paths {
		if p == "" {
			continue // caller marked the lookup uncacheable
		}
		e, present := c.getWalk(p, opts[i])
		if !present {
			continue
		}
		d, dok := c.entries[e.path]
		if !validWalkHit(d, dok, opts[i]) {
			continue
		}
		c.walkHits.Add(1)
		c.batchedLookups.Add(1)
		e.st = d.st
		ents[i], ok[i] = e, true
	}
	return ents, ok
}

// validWalkHit reports whether a cached whole-walk result may be served:
// its endpoint dentry must be live and compatible with the walk options.
// Shared by walk()'s single-key fast path and getWalkBatch so the two
// tiers can never diverge on staleness rules.
func validWalkHit(d *dentry, present bool, o walkOpts) bool {
	return present && d.err == abi.OK &&
		!(o.follow && d.st.IsSymlink()) &&
		!(o.requireDir && !d.st.IsDir())
}

// drop forgets one path. Whole-walk entries are not cleared: a walk hit
// is validated against its endpoint dentry, so dropping the dentry
// suffices to stale any walk that ends here — and symlink-traversing
// walks (whose validity depends on other names) are never cached. The
// path's directory listing is dropped too: mutating operations drop both
// the changed child and its parent, which covers the listing that gained
// or lost an entry.
func (c *dcache) drop(p string) {
	if _, ok := c.entries[p]; ok {
		c.entryCount.Add(-1)
	}
	delete(c.entries, p)
	delete(c.dirents, p)
}

// dropTree forgets a path and everything under it (rename/rmdir of a
// directory moves or deletes the whole subtree).
func (c *dcache) dropTree(p string) {
	if _, ok := c.entries[p]; ok {
		c.entryCount.Add(-1)
	}
	delete(c.entries, p)
	delete(c.dirents, p)
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	for k := range c.entries {
		if strings.HasPrefix(k, prefix) {
			delete(c.entries, k)
			c.entryCount.Add(-1)
		}
	}
	for k := range c.dirents {
		if strings.HasPrefix(k, prefix) {
			delete(c.dirents, k)
		}
	}
}

func (c *dcache) flush() {
	clear(c.entries)
	c.entryCount.Store(0)
	c.walkRoot, c.walkNodes = nil, 0
	c.walkNodeCount.Store(0)
	clear(c.dirents)
}
