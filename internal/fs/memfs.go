package fs

import (
	"path"
	"strings"

	"repro/internal/abi"
)

// MemFS is BrowserFS's InMemory backend: a synchronous in-memory tree.
// All callbacks complete before the call returns.
type MemFS struct {
	root *memNode
	now  func() int64
	ro   bool
	name string

	// WriteOps counts backend write calls on handles (Pwrite/Pwritev) —
	// the denominator of the write-coalescing experiments: N buffered
	// VFS writes should reach a backend as few WriteOps.
	WriteOps int64

	// ino allocation is per-backend: a process-wide counter would make
	// inode numbers depend on how concurrently-running Instances
	// interleave, breaking the fleet's serial-vs-parallel determinism.
	lastIno uint64
}

type memNode struct {
	mode     uint32
	data     []byte
	target   string // symlink target
	children map[string]*memNode
	mtime    int64
	atime    int64
	ctime    int64
	ino      uint64
}

func (m *MemFS) nextIno() uint64 { m.lastIno++; return m.lastIno }

// NewMemFS creates an empty writable in-memory backend.
func NewMemFS(now func() int64) *MemFS {
	t := now()
	m := &MemFS{now: now, name: "memfs"}
	m.root = &memNode{mode: abi.S_IFDIR | 0o755, children: map[string]*memNode{}, mtime: t, ino: m.nextIno()}
	return m
}

// Name implements Backend.
func (m *MemFS) Name() string { return m.name }

// ReadOnly implements Backend.
func (m *MemFS) ReadOnly() bool { return m.ro }

// SetReadOnly freezes the backend (used to model read-only images).
func (m *MemFS) SetReadOnly() { m.ro = true; m.name = "memfs-ro" }

// lookup walks to the node at p; returns nil if missing. If parent is
// true, returns the parent directory and the final name instead.
func (m *MemFS) lookup(p string) *memNode {
	p = Clean(p)
	if p == "/" {
		return m.root
	}
	n := m.root
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if n == nil || n.children == nil {
			return nil
		}
		n = n.children[part]
	}
	return n
}

func (m *MemFS) lookupParent(p string) (*memNode, string) {
	p = Clean(p)
	dir, base := path.Split(p)
	parent := m.lookup(Clean(dir))
	return parent, base
}

func (n *memNode) stat() abi.Stat {
	return abi.Stat{
		Mode:  n.mode,
		Size:  int64(len(n.data)),
		Mtime: n.mtime,
		Atime: n.atime,
		Ctime: n.ctime,
		Nlink: 1,
		Ino:   n.ino,
	}
}

func (n *memNode) isDir() bool  { return n.mode&abi.S_IFMT == abi.S_IFDIR }
func (n *memNode) isLink() bool { return n.mode&abi.S_IFMT == abi.S_IFLNK }

// Stat implements Backend. MemFS holds no interior symlinks by the time
// Stat is called (the FileSystem resolves trailing links), so Stat and
// Lstat coincide except for the trailing-link case.
func (m *MemFS) Stat(p string, cb func(abi.Stat, abi.Errno)) { m.Lstat(p, cb) }

// Lstat implements Backend.
func (m *MemFS) Lstat(p string, cb func(abi.Stat, abi.Errno)) {
	n := m.lookup(p)
	if n == nil {
		cb(abi.Stat{}, abi.ENOENT)
		return
	}
	cb(n.stat(), abi.OK)
}

// Open implements Backend.
func (m *MemFS) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	n := m.lookup(p)
	wantsWrite := flags&abi.O_ACCMODE != abi.O_RDONLY || flags&(abi.O_CREAT|abi.O_TRUNC) != 0
	if m.ro && wantsWrite {
		cb(nil, abi.EROFS)
		return
	}
	if n == nil {
		if flags&abi.O_CREAT == 0 {
			cb(nil, abi.ENOENT)
			return
		}
		parent, base := m.lookupParent(p)
		if parent == nil || !parent.isDir() {
			cb(nil, abi.ENOENT)
			return
		}
		t := m.now()
		n = &memNode{mode: abi.S_IFREG | (mode & 0o777), mtime: t, ctime: t, ino: m.nextIno()}
		parent.children[base] = n
		parent.mtime = t
	} else {
		if flags&(abi.O_CREAT|abi.O_EXCL) == abi.O_CREAT|abi.O_EXCL {
			cb(nil, abi.EEXIST)
			return
		}
		if n.isDir() {
			if flags&abi.O_ACCMODE != abi.O_RDONLY {
				cb(nil, abi.EISDIR)
				return
			}
			if flags&abi.O_DIRECTORY != 0 || true {
				// Opening a directory yields a handle usable for fstat.
				cb(&memHandle{fs: m, n: n}, abi.OK)
				return
			}
		}
		if flags&abi.O_DIRECTORY != 0 {
			cb(nil, abi.ENOTDIR)
			return
		}
		if flags&abi.O_TRUNC != 0 {
			n.data = nil
			n.mtime = m.now()
		}
	}
	cb(&memHandle{fs: m, n: n}, abi.OK)
}

// Readdir implements Backend.
func (m *MemFS) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	n := m.lookup(p)
	if n == nil {
		cb(nil, abi.ENOENT)
		return
	}
	if !n.isDir() {
		cb(nil, abi.ENOTDIR)
		return
	}
	ents := make([]abi.Dirent, 0, len(n.children))
	for name, c := range n.children {
		ents = append(ents, abi.Dirent{Name: name, Type: abi.DirentTypeFromMode(c.mode), Ino: c.ino})
	}
	cb(ents, abi.OK)
}

// Mkdir implements Backend.
func (m *MemFS) Mkdir(p string, mode uint32, cb func(abi.Errno)) {
	if m.ro {
		cb(abi.EROFS)
		return
	}
	if m.lookup(p) != nil {
		cb(abi.EEXIST)
		return
	}
	parent, base := m.lookupParent(p)
	if parent == nil {
		cb(abi.ENOENT)
		return
	}
	if !parent.isDir() {
		cb(abi.ENOTDIR)
		return
	}
	t := m.now()
	parent.children[base] = &memNode{mode: abi.S_IFDIR | (mode & 0o777), children: map[string]*memNode{}, mtime: t, ctime: t, ino: m.nextIno()}
	parent.mtime = t
	cb(abi.OK)
}

// Rmdir implements Backend.
func (m *MemFS) Rmdir(p string, cb func(abi.Errno)) {
	if m.ro {
		cb(abi.EROFS)
		return
	}
	n := m.lookup(p)
	if n == nil {
		cb(abi.ENOENT)
		return
	}
	if !n.isDir() {
		cb(abi.ENOTDIR)
		return
	}
	if len(n.children) > 0 {
		cb(abi.ENOTEMPTY)
		return
	}
	if Clean(p) == "/" {
		cb(abi.EBUSY)
		return
	}
	parent, base := m.lookupParent(p)
	delete(parent.children, base)
	parent.mtime = m.now()
	cb(abi.OK)
}

// Unlink implements Backend.
func (m *MemFS) Unlink(p string, cb func(abi.Errno)) {
	if m.ro {
		cb(abi.EROFS)
		return
	}
	n := m.lookup(p)
	if n == nil {
		cb(abi.ENOENT)
		return
	}
	if n.isDir() {
		cb(abi.EISDIR)
		return
	}
	parent, base := m.lookupParent(p)
	delete(parent.children, base)
	parent.mtime = m.now()
	cb(abi.OK)
}

// Rename implements Backend.
func (m *MemFS) Rename(oldp, newp string, cb func(abi.Errno)) {
	if m.ro {
		cb(abi.EROFS)
		return
	}
	n := m.lookup(oldp)
	if n == nil {
		cb(abi.ENOENT)
		return
	}
	nparent, nbase := m.lookupParent(newp)
	if nparent == nil || !nparent.isDir() {
		cb(abi.ENOENT)
		return
	}
	if existing := nparent.children[nbase]; existing != nil && existing.isDir() {
		if len(existing.children) > 0 {
			cb(abi.ENOTEMPTY)
			return
		}
	}
	oparent, obase := m.lookupParent(oldp)
	delete(oparent.children, obase)
	nparent.children[nbase] = n
	t := m.now()
	oparent.mtime, nparent.mtime = t, t
	cb(abi.OK)
}

// Readlink implements Backend.
func (m *MemFS) Readlink(p string, cb func(string, abi.Errno)) {
	n := m.lookup(p)
	if n == nil {
		cb("", abi.ENOENT)
		return
	}
	if !n.isLink() {
		cb("", abi.EINVAL)
		return
	}
	cb(n.target, abi.OK)
}

// Symlink implements Backend.
func (m *MemFS) Symlink(target, linkp string, cb func(abi.Errno)) {
	if m.ro {
		cb(abi.EROFS)
		return
	}
	if m.lookup(linkp) != nil {
		cb(abi.EEXIST)
		return
	}
	parent, base := m.lookupParent(linkp)
	if parent == nil || !parent.isDir() {
		cb(abi.ENOENT)
		return
	}
	t := m.now()
	parent.children[base] = &memNode{mode: abi.S_IFLNK | 0o777, target: target, mtime: t, ctime: t, ino: m.nextIno()}
	cb(abi.OK)
}

// Utimes implements Backend.
func (m *MemFS) Utimes(p string, atime, mtime int64, cb func(abi.Errno)) {
	if m.ro {
		cb(abi.EROFS)
		return
	}
	n := m.lookup(p)
	if n == nil {
		cb(abi.ENOENT)
		return
	}
	n.atime, n.mtime = atime, mtime
	cb(abi.OK)
}

// memHandle is an open file on a MemFS.
type memHandle struct {
	fs *MemFS
	n  *memNode
}

// Pread implements FileHandle.
func (h *memHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	if h.n.isDir() {
		cb(nil, abi.EISDIR)
		return
	}
	data := h.n.data
	if off >= int64(len(data)) {
		cb(nil, abi.OK) // EOF
		return
	}
	end := off + int64(n)
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	out := make([]byte, end-off)
	copy(out, data[off:end])
	cb(out, abi.OK)
}

// Pwrite implements FileHandle.
func (h *memHandle) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	h.fs.WriteOps++
	if h.fs.ro {
		cb(0, abi.EROFS)
		return
	}
	if h.n.isDir() {
		cb(0, abi.EISDIR)
		return
	}
	end := off + int64(len(data))
	if end > int64(len(h.n.data)) {
		grown := make([]byte, end)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	copy(h.n.data[off:end], data)
	h.n.mtime = h.fs.now()
	cb(len(data), abi.OK)
}

// Preadv implements FileHandle: one bounds check, one copy, returned as
// a single segment (callers scatter it).
func (h *memHandle) Preadv(off int64, lens []int, cb func([][]byte, abi.Errno)) {
	genericPreadv(h, off, lens, cb)
}

// Pwritev implements FileHandle: the file grows once, then each buffer
// lands directly in the node's data — no coalescing copy.
func (h *memHandle) Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno)) {
	h.fs.WriteOps++
	if h.fs.ro {
		cb(0, abi.EROFS)
		return
	}
	if h.n.isDir() {
		cb(0, abi.EISDIR)
		return
	}
	var total int64
	for _, b := range bufs {
		total += int64(len(b))
	}
	end := off + total
	if end > int64(len(h.n.data)) {
		grown := make([]byte, end)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	pos := off
	for _, b := range bufs {
		copy(h.n.data[pos:], b)
		pos += int64(len(b))
	}
	h.n.mtime = h.fs.now()
	cb(int(total), abi.OK)
}

// Stat implements FileHandle.
func (h *memHandle) Stat(cb func(abi.Stat, abi.Errno)) { cb(h.n.stat(), abi.OK) }

// Truncate implements FileHandle.
func (h *memHandle) Truncate(size int64, cb func(abi.Errno)) {
	if h.fs.ro {
		cb(abi.EROFS)
		return
	}
	if size <= int64(len(h.n.data)) {
		h.n.data = h.n.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	h.n.mtime = h.fs.now()
	cb(abi.OK)
}

// Close implements FileHandle.
func (h *memHandle) Close(cb func(abi.Errno)) { cb(abi.OK) }
