package fs

import (
	"testing"

	"repro/internal/abi"
)

// newLowerTree stages a lower-layer tree:
//
//	/proj/main.tex
//	/proj/figs/a.ppm
//	/proj/figs/deep/b.ppm
//	/proj/link -> main.tex
func newLowerTree(t *testing.T) (*OverlayFS, *MemFS, *MemFS) {
	t.Helper()
	lower := NewMemFS(now)
	stage := NewFileSystem(lower, func() int64 { return clock })
	mustMkdirAll(t, stage, "/proj/figs/deep")
	mustWrite(t, stage, "/proj/main.tex", "\\documentclass{article}")
	mustWrite(t, stage, "/proj/figs/a.ppm", "P6 a")
	mustWrite(t, stage, "/proj/figs/deep/b.ppm", "P6 b")
	var serr abi.Errno = -1
	stage.Symlink("main.tex", "/proj/link", func(err abi.Errno) { serr = err })
	if serr != abi.OK {
		t.Fatalf("symlink: %v", serr)
	}
	lower.SetReadOnly()
	upper := NewMemFS(now)
	return NewOverlayFS(upper, lower), upper, lower
}

// TestOverlayRenameLowerDirTree: renaming a directory tree that lives
// only in the lower layer works in ONE overlay op — recursive copy-up,
// one upper rename, subtree whiteout.
func TestOverlayRenameLowerDirTree(t *testing.T) {
	o, _, _ := newLowerTree(t)
	f := NewFileSystem(o, func() int64 { return clock })

	var rerr abi.Errno = -1
	f.Rename("/proj", "/renamed", func(err abi.Errno) { rerr = err })
	if rerr != abi.OK {
		t.Fatalf("rename lower dir tree: %v", rerr)
	}

	// The old name is gone, at every depth.
	for _, p := range []string{"/proj", "/proj/main.tex", "/proj/figs", "/proj/figs/deep/b.ppm"} {
		var got abi.Errno = -1
		f.Stat(p, func(_ abi.Stat, err abi.Errno) { got = err })
		if got != abi.ENOENT {
			t.Errorf("stat %s after rename = %v, want ENOENT", p, got)
		}
	}

	// The new tree is complete and readable.
	if got := mustRead(t, f, "/renamed/main.tex"); got != "\\documentclass{article}" {
		t.Errorf("main.tex content %q", got)
	}
	if got := mustRead(t, f, "/renamed/figs/deep/b.ppm"); got != "P6 b" {
		t.Errorf("deep file content %q", got)
	}
	var target string
	f.Readlink("/renamed/link", func(s string, err abi.Errno) {
		if err == abi.OK {
			target = s
		}
	})
	if target != "main.tex" {
		t.Errorf("symlink target %q", target)
	}

	// Readdir of old parent no longer lists it; new parent does.
	var names []string
	f.Readdir("/", func(ents []abi.Dirent, err abi.Errno) {
		for _, e := range ents {
			names = append(names, e.Name)
		}
	})
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if seen["proj"] || !seen["renamed"] {
		t.Errorf("root listing after rename: %v", names)
	}

	// The moved tree is writable (it lives in the upper layer now).
	mustWrite(t, f, "/renamed/figs/a.ppm", "P6 modified")
	if got := mustRead(t, f, "/renamed/figs/a.ppm"); got != "P6 modified" {
		t.Errorf("modified moved file: %q", got)
	}
}

// TestOverlayRenameMixedTree: a tree partially copied up already (one
// file modified in upper) renames with upper content winning.
func TestOverlayRenameMixedTree(t *testing.T) {
	o, _, _ := newLowerTree(t)
	f := NewFileSystem(o, func() int64 { return clock })
	mustWrite(t, f, "/proj/main.tex", "modified upstairs") // copy-up via VFS
	mustWrite(t, f, "/proj/new.txt", "created upstairs")

	var rerr abi.Errno = -1
	f.Rename("/proj", "/moved", func(err abi.Errno) { rerr = err })
	if rerr != abi.OK {
		t.Fatalf("rename mixed tree: %v", rerr)
	}
	if got := mustRead(t, f, "/moved/main.tex"); got != "modified upstairs" {
		t.Errorf("upper content lost: %q", got)
	}
	if got := mustRead(t, f, "/moved/new.txt"); got != "created upstairs" {
		t.Errorf("upper-only file lost: %q", got)
	}
	if got := mustRead(t, f, "/moved/figs/a.ppm"); got != "P6 a" {
		t.Errorf("lower content lost: %q", got)
	}
}

// TestOverlayRenameDoesNotResurrectDeleted: a lower-layer file deleted
// before the rename must stay deleted when a new tree is moved onto its
// parent's name — only whiteouts the moved upper tree shadows may be
// cleared.
func TestOverlayRenameDoesNotResurrectDeleted(t *testing.T) {
	lower := NewMemFS(now)
	stage := NewFileSystem(lower, func() int64 { return clock })
	mustMkdirAll(t, stage, "/d")
	mustWrite(t, stage, "/d/x", "lower x")
	lower.SetReadOnly()
	o := NewOverlayFS(NewMemFS(now), lower)
	f := NewFileSystem(o, func() int64 { return clock })

	var err abi.Errno = -1
	f.Unlink("/d/x", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink /d/x: %v", err)
	}
	f.Rmdir("/d", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rmdir /d: %v", err)
	}
	mustMkdirAll(t, f, "/e")
	mustWrite(t, f, "/e/y", "upper y")
	f.Rename("/e", "/d", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rename /e /d: %v", err)
	}

	var names []string
	f.Readdir("/d", func(ents []abi.Dirent, e abi.Errno) {
		for _, ent := range ents {
			names = append(names, ent.Name)
		}
	})
	if len(names) != 1 || names[0] != "y" {
		t.Fatalf("renamed dir lists %v, want [y] — deleted lower file resurrected", names)
	}
	var serr abi.Errno = -1
	f.Stat("/d/x", func(_ abi.Stat, e abi.Errno) { serr = e })
	if serr != abi.ENOENT {
		t.Fatalf("stat /d/x = %v, want ENOENT", serr)
	}
}

// TestOverlayRenameBackOverWhiteout: renaming a tree away and then
// moving another tree to the old name clears the subtree whiteouts —
// the destination's entries must not be hidden by stale deletions.
func TestOverlayRenameBackOverWhiteout(t *testing.T) {
	o, _, _ := newLowerTree(t)
	f := NewFileSystem(o, func() int64 { return clock })

	var rerr abi.Errno = -1
	f.Rename("/proj", "/tmp-proj", func(err abi.Errno) { rerr = err })
	if rerr != abi.OK {
		t.Fatalf("rename away: %v", rerr)
	}
	rerr = -1
	f.Rename("/tmp-proj", "/proj", func(err abi.Errno) { rerr = err })
	if rerr != abi.OK {
		t.Fatalf("rename back: %v", rerr)
	}
	if got := mustRead(t, f, "/proj/figs/deep/b.ppm"); got != "P6 b" {
		t.Errorf("round-trip lost deep file: %q", got)
	}
	var n int
	f.Readdir("/proj/figs", func(ents []abi.Dirent, err abi.Errno) { n = len(ents) })
	if n != 2 { // a.ppm + deep
		t.Errorf("figs listing has %d entries, want 2", n)
	}
}
