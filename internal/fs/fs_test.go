package fs

import (
	"archive/zip"
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/abi"
)

var clock int64

func now() int64 { clock++; return clock }

// sync helpers: memfs-backed operations complete inline, so tests can
// capture results directly.

func mustWrite(t *testing.T, f *FileSystem, p, data string) {
	t.Helper()
	var got abi.Errno = -1
	f.WriteFile(p, []byte(data), 0o644, func(err abi.Errno) { got = err })
	if got != abi.OK {
		t.Fatalf("WriteFile(%s): %v", p, got)
	}
}

func mustRead(t *testing.T, f *FileSystem, p string) string {
	t.Helper()
	var data []byte
	var got abi.Errno = -1
	f.ReadFile(p, func(b []byte, err abi.Errno) { data, got = b, err })
	if got != abi.OK {
		t.Fatalf("ReadFile(%s): %v", p, got)
	}
	return string(data)
}

func mustMkdirAll(t *testing.T, f *FileSystem, p string) {
	t.Helper()
	var got abi.Errno = -1
	f.MkdirAll(p, 0o755, func(err abi.Errno) { got = err })
	if got != abi.OK {
		t.Fatalf("MkdirAll(%s): %v", p, got)
	}
}

func newFS() *FileSystem { return NewFileSystem(NewMemFS(now), func() int64 { return clock }) }

func TestMemFSWriteReadRoundTrip(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/tmp/a/b")
	mustWrite(t, f, "/tmp/a/b/file.txt", "hello browsix")
	if got := mustRead(t, f, "/tmp/a/b/file.txt"); got != "hello browsix" {
		t.Fatalf("read back %q", got)
	}
}

func TestOpenErrors(t *testing.T) {
	f := newFS()
	mustWrite(t, f, "/x", "1")
	cases := []struct {
		path  string
		flags int
		want  abi.Errno
	}{
		{"/nope", abi.O_RDONLY, abi.ENOENT},
		{"/x", abi.O_CREAT | abi.O_EXCL, abi.EEXIST},
		{"/", abi.O_WRONLY, abi.EISDIR},
		{"/nope/deep", abi.O_CREAT | abi.O_WRONLY, abi.ENOENT},
	}
	for _, c := range cases {
		var got abi.Errno
		f.Open(c.path, c.flags, 0o644, func(_ FileHandle, err abi.Errno) { got = err })
		if got != c.want {
			t.Errorf("Open(%s, %#x) = %v, want %v", c.path, c.flags, got, c.want)
		}
	}
}

func TestTruncAndAppendSemantics(t *testing.T) {
	f := newFS()
	mustWrite(t, f, "/f", "0123456789")
	// O_TRUNC empties the file.
	f.Open("/f", abi.O_WRONLY|abi.O_TRUNC, 0, func(h FileHandle, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("open trunc: %v", err)
		}
		h.Pwrite(0, []byte("ab"), func(int, abi.Errno) {})
		h.Close(func(abi.Errno) {})
	})
	if got := mustRead(t, f, "/f"); got != "ab" {
		t.Fatalf("after trunc+write: %q", got)
	}
}

func TestPreadBounds(t *testing.T) {
	f := newFS()
	mustWrite(t, f, "/f", "abcdef")
	f.Open("/f", abi.O_RDONLY, 0, func(h FileHandle, err abi.Errno) {
		h.Pread(4, 10, func(b []byte, err abi.Errno) {
			if string(b) != "ef" || err != abi.OK {
				t.Fatalf("pread tail = %q, %v", b, err)
			}
		})
		h.Pread(100, 5, func(b []byte, err abi.Errno) {
			if len(b) != 0 || err != abi.OK {
				t.Fatalf("pread past EOF = %q, %v", b, err)
			}
		})
	})
}

func TestUnlinkRmdirSemantics(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/d/sub")
	mustWrite(t, f, "/d/f", "x")
	var err abi.Errno
	f.Rmdir("/d", func(e abi.Errno) { err = e })
	if err != abi.ENOTEMPTY {
		t.Fatalf("rmdir nonempty = %v, want ENOTEMPTY", err)
	}
	f.Unlink("/d/sub", func(e abi.Errno) { err = e })
	if err != abi.EISDIR {
		t.Fatalf("unlink dir = %v, want EISDIR", err)
	}
	f.Unlink("/d/f", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink = %v", err)
	}
	f.Rmdir("/d/sub", func(e abi.Errno) { err = e })
	f.Rmdir("/d", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rmdir after empty = %v", err)
	}
	f.Stat("/d", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("stat removed dir = %v", err)
	}
}

func TestRenameReplacesAndMoves(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/a")
	mustMkdirAll(t, f, "/b")
	mustWrite(t, f, "/a/f", "content")
	var err abi.Errno
	f.Rename("/a/f", "/b/g", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rename: %v", err)
	}
	if got := mustRead(t, f, "/b/g"); got != "content" {
		t.Fatalf("moved content %q", got)
	}
	f.Stat("/a/f", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("source still exists after rename")
	}
}

func TestSymlinkResolution(t *testing.T) {
	f := newFS()
	mustWrite(t, f, "/target", "via link")
	var err abi.Errno
	f.Symlink("/target", "/link", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("symlink: %v", err)
	}
	if got := mustRead(t, f, "/link"); got != "via link" {
		t.Fatalf("read through link: %q", got)
	}
	var st abi.Stat
	f.Lstat("/link", func(s abi.Stat, e abi.Errno) { st = s })
	if !st.IsSymlink() {
		t.Fatal("lstat should not follow")
	}
	f.Stat("/link", func(s abi.Stat, e abi.Errno) { st = s })
	if !st.IsRegular() {
		t.Fatal("stat should follow")
	}
	// Relative symlink.
	mustMkdirAll(t, f, "/dir")
	mustWrite(t, f, "/dir/real", "rel")
	f.Symlink("real", "/dir/rl", func(e abi.Errno) { err = e })
	if got := mustRead(t, f, "/dir/rl"); got != "rel" {
		t.Fatalf("relative link read: %q", got)
	}
}

func TestSymlinkLoopELOOP(t *testing.T) {
	f := newFS()
	f.Symlink("/b", "/a", func(abi.Errno) {})
	f.Symlink("/a", "/b", func(abi.Errno) {})
	var err abi.Errno
	f.Stat("/a", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ELOOP {
		t.Fatalf("loop stat = %v, want ELOOP", err)
	}
}

func TestMountResolutionLongestPrefix(t *testing.T) {
	f := newFS()
	sub := NewMemFS(now)
	mustMkdirAll(t, f, "/usr/share")
	f.Mount("/usr/share/texlive", sub)
	mustWrite(t, f, "/usr/share/texlive/x.sty", "sty")
	// The file must live in the sub backend, not the root.
	var err abi.Errno
	sub.Stat("/x.sty", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatal("file not routed to mounted backend")
	}
	if got := mustRead(t, f, "/usr/share/texlive/x.sty"); got != "sty" {
		t.Fatalf("read through mount: %q", got)
	}
	// Mount point appears in parent readdir.
	var names []string
	f.Readdir("/usr/share", func(ents []abi.Dirent, e abi.Errno) {
		for _, d := range ents {
			names = append(names, d.Name)
		}
	})
	found := false
	for _, n := range names {
		if n == "texlive" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mount point missing from readdir: %v", names)
	}
}

func TestReadOnlyMemFS(t *testing.T) {
	m := NewMemFS(now)
	f := NewFileSystem(m, func() int64 { return clock })
	mustWrite(t, f, "/f", "frozen")
	m.SetReadOnly()
	var err abi.Errno
	f.WriteFile("/g", []byte("x"), 0o644, func(e abi.Errno) { err = e })
	if err != abi.EROFS {
		t.Fatalf("write to ro fs = %v, want EROFS", err)
	}
	if got := mustRead(t, f, "/f"); got != "frozen" {
		t.Fatal("read from ro fs failed")
	}
}

// fakeFetcher serves files synchronously (network modelling is tested at
// the netsim level).
type fakeFetcher struct {
	files   map[string][]byte
	fetches []string
}

func (ff *fakeFetcher) Fetch(p string, cb func([]byte, int)) {
	ff.fetches = append(ff.fetches, p)
	if b, ok := ff.files[p]; ok {
		cb(b, 200)
		return
	}
	cb(nil, 404)
}

func newTexFetcher() *fakeFetcher {
	return &fakeFetcher{files: map[string][]byte{
		"/cls/article.cls":  []byte("% article class"),
		"/sty/graphicx.sty": []byte("% graphicx"),
		"/fonts/cmr10.tfm":  bytes.Repeat([]byte{7}, 1024),
	}}
}

func newHTTPFS(t *testing.T, ff *fakeFetcher) *HTTPFS {
	t.Helper()
	idx := map[string]int64{}
	for p, b := range ff.files {
		idx[p] = int64(len(b))
	}
	h, err := NewHTTPFS(BuildIndex(idx), ff, func() int64 { return clock })
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHTTPFSLazyFetchAndCache(t *testing.T) {
	ff := newTexFetcher()
	h := newHTTPFS(t, ff)
	// Stat must not fetch.
	var st abi.Stat
	h.Stat("/cls/article.cls", func(s abi.Stat, e abi.Errno) { st = s })
	if len(ff.fetches) != 0 {
		t.Fatal("stat caused a network fetch")
	}
	if st.Size != int64(len("% article class")) {
		t.Fatalf("index size = %d", st.Size)
	}
	// First open fetches; second is served from cache.
	read := func() string {
		var data []byte
		h.Open("/cls/article.cls", abi.O_RDONLY, 0, func(fh FileHandle, e abi.Errno) {
			if e != abi.OK {
				t.Fatalf("open: %v", e)
			}
			fh.Pread(0, 100, func(b []byte, e abi.Errno) { data = b })
		})
		return string(data)
	}
	if got := read(); got != "% article class" {
		t.Fatalf("first read %q", got)
	}
	if got := read(); got != "% article class" {
		t.Fatalf("second read %q", got)
	}
	if h.FetchCount != 1 || len(ff.fetches) != 1 {
		t.Fatalf("fetches = %d, want 1 (cache miss then hit)", h.FetchCount)
	}
}

func TestHTTPFSDirsFromIndex(t *testing.T) {
	h := newHTTPFS(t, newTexFetcher())
	var names []string
	h.Readdir("/", func(ents []abi.Dirent, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("readdir: %v", e)
		}
		for _, d := range ents {
			names = append(names, fmt.Sprintf("%s/%d", d.Name, d.Type))
		}
	})
	if len(names) != 3 { // cls, sty, fonts
		t.Fatalf("root entries = %v", names)
	}
	var err abi.Errno
	h.Mkdir("/new", 0o755, func(e abi.Errno) { err = e })
	if err != abi.EROFS {
		t.Fatalf("mkdir on httpfs = %v, want EROFS", err)
	}
}

func TestHTTPFSPreloadEager(t *testing.T) {
	ff := newTexFetcher()
	h := newHTTPFS(t, ff)
	done := false
	h.Preload(func() { done = true })
	if !done || h.FetchCount != 3 {
		t.Fatalf("preload fetched %d, want 3", h.FetchCount)
	}
}

func TestOverlayLazyCopyUp(t *testing.T) {
	ff := newTexFetcher()
	lower := newHTTPFS(t, ff)
	upper := NewMemFS(now)
	ov := NewOverlayFS(upper, lower)
	f := NewFileSystem(ov, func() int64 { return clock })

	// Read-only access does not copy up.
	if got := mustRead(t, f, "/sty/graphicx.sty"); got != "% graphicx" {
		t.Fatalf("read lower: %q", got)
	}
	var err abi.Errno
	upper.Stat("/sty/graphicx.sty", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("read-only access should not copy up")
	}

	// Append-style write copies up first.
	f.Open("/sty/graphicx.sty", abi.O_RDWR, 0, func(h FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open rw: %v", e)
		}
		h.Pwrite(int64(len("% graphicx")), []byte(" v2"), func(int, abi.Errno) {})
		h.Close(func(abi.Errno) {})
	})
	if got := mustRead(t, f, "/sty/graphicx.sty"); got != "% graphicx v2" {
		t.Fatalf("after copy-up write: %q", got)
	}
	upper.Stat("/sty/graphicx.sty", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatal("write did not copy up")
	}
	// Lower remains pristine.
	var lowerData []byte
	lower.Open("/sty/graphicx.sty", abi.O_RDONLY, 0, func(h FileHandle, e abi.Errno) {
		h.Pread(0, 100, func(b []byte, e abi.Errno) { lowerData = b })
	})
	if string(lowerData) != "% graphicx" {
		t.Fatal("lower layer mutated")
	}
}

func TestOverlayDeletionLog(t *testing.T) {
	lower := NewMemFS(now)
	lfs := NewFileSystem(lower, func() int64 { return clock })
	mustWrite(t, lfs, "/doc.txt", "lower")
	lower.SetReadOnly()
	ov := NewOverlayFS(NewMemFS(now), lower)
	f := NewFileSystem(ov, func() int64 { return clock })

	var err abi.Errno
	f.Unlink("/doc.txt", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink lower file: %v", err)
	}
	f.Stat("/doc.txt", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("deleted lower file still visible")
	}
	if len(ov.DeletedPaths()) != 1 {
		t.Fatalf("deletion log = %v", ov.DeletedPaths())
	}
	// Re-creating the file un-deletes it.
	mustWrite(t, f, "/doc.txt", "upper")
	if got := mustRead(t, f, "/doc.txt"); got != "upper" {
		t.Fatalf("recreated: %q", got)
	}
	if len(ov.DeletedPaths()) != 0 {
		t.Fatal("deletion log not cleared on recreate")
	}
}

func TestOverlayReaddirMerge(t *testing.T) {
	lower := NewMemFS(now)
	lfs := NewFileSystem(lower, func() int64 { return clock })
	mustWrite(t, lfs, "/a", "1")
	mustWrite(t, lfs, "/b", "2")
	lower.SetReadOnly()
	ov := NewOverlayFS(NewMemFS(now), lower)
	f := NewFileSystem(ov, func() int64 { return clock })
	mustWrite(t, f, "/c", "3")
	f.Unlink("/b", func(abi.Errno) {})
	var names []string
	f.Readdir("/", func(ents []abi.Dirent, e abi.Errno) {
		for _, d := range ents {
			names = append(names, d.Name)
		}
	})
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("merged readdir = %v, want [a c]", names)
	}
}

// slowBackend defers one operation's callback so the overlay lock test can
// interleave a competing operation mid-flight.
type slowBackend struct {
	*MemFS
	pending []func()
}

func (s *slowBackend) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	s.MemFS.Open(p, flags, mode, func(h FileHandle, err abi.Errno) {
		s.pending = append(s.pending, func() { cb(h, err) })
	})
}

func TestOverlayLockSerializesAcrossAsyncSpans(t *testing.T) {
	lower := &slowBackend{MemFS: NewMemFS(now)}
	lfs := NewFileSystem(lower.MemFS, func() int64 { return clock })
	mustWrite(t, lfs, "/shared", "orig")
	lower.MemFS.SetReadOnly()
	ov := NewOverlayFS(NewMemFS(now), lower)

	var order []string
	// Op A: open-for-write of a lower file (copy-up spans an async open).
	ov.Open("/shared", abi.O_RDWR, 0, func(h FileHandle, err abi.Errno) {
		order = append(order, "A")
	})
	// Op B arrives while A holds the lock.
	ov.Unlink("/shared", func(err abi.Errno) {
		order = append(order, "B")
	})
	if len(order) != 0 {
		t.Fatalf("ops completed before async lower I/O: %v", order)
	}
	// Release the deferred lower-layer callbacks.
	for len(lower.pending) > 0 {
		p := lower.pending[0]
		lower.pending = lower.pending[1:]
		p()
	}
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("order = %v, want [A B]", order)
	}
	if ov.LockWaits == 0 {
		t.Fatal("second op never waited on the overlay lock")
	}
}

func TestZipFS(t *testing.T) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for name, content := range map[string]string{
		"bin/prog.js":  "console.log('hi')",
		"etc/conf":     "k=v",
		"share/a/b.md": "docs",
	} {
		w, _ := zw.Create(name)
		w.Write([]byte(content))
	}
	zw.Close()
	z, err := NewZipFS(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFileSystem(z, func() int64 { return clock })
	if got := mustRead(t, f, "/bin/prog.js"); got != "console.log('hi')" {
		t.Fatalf("zip read: %q", got)
	}
	var st abi.Stat
	f.Stat("/share/a", func(s abi.Stat, e abi.Errno) { st = s })
	if !st.IsDir() {
		t.Fatal("zip intermediate dir missing")
	}
	var werr abi.Errno
	f.WriteFile("/bin/new", []byte("x"), 0o644, func(e abi.Errno) { werr = e })
	if werr != abi.EROFS {
		t.Fatalf("zip write = %v, want EROFS", werr)
	}
}

func TestCleanProperty(t *testing.T) {
	// Clean is idempotent and always yields an absolute path.
	f := func(s string) bool {
		c := Clean(s)
		return Clean(c) == c && len(c) > 0 && c[0] == '/'
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirAllIdempotent(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/x/y/z")
	mustMkdirAll(t, f, "/x/y/z")
	var st abi.Stat
	f.Stat("/x/y/z", func(s abi.Stat, e abi.Errno) { st = s })
	if !st.IsDir() {
		t.Fatal("mkdirall did not create dir")
	}
}

func TestUtimesForMake(t *testing.T) {
	f := newFS()
	mustWrite(t, f, "/src.c", "int main(){}")
	var err abi.Errno
	f.Utimes("/src.c", 111, 222, func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("utimes: %v", err)
	}
	var st abi.Stat
	f.Stat("/src.c", func(s abi.Stat, e abi.Errno) { st = s })
	if st.Mtime != 222 || st.Atime != 111 {
		t.Fatalf("times = %d/%d, want 111/222", st.Atime, st.Mtime)
	}
}
