package fs

import (
	"sort"

	"repro/internal/abi"
)

// Write-back data path. The page cache historically was
// write-through-invalidate: every write went straight to the backend and
// dropped the cached pages. For chatty workloads (pdflatex appending to
// its .log/.aux files a few dozen bytes at a time) that means one backend
// call per tiny write. This file extends the cache with *dirty* state:
//
//   - writes on a write-capable handle are absorbed into per-path dirty
//     extents (adjacent/overlapping writes coalesce in place);
//   - a bounded dirty budget triggers a flush of everything when
//     exceeded (flush-on-overflow);
//   - an ordered flusher walks the extents in ascending offset order and
//     lands each as a single vectored Pwritev of page-sized segments —
//     N tiny writes become one backend call;
//   - barriers: fsync and close flush before replying; Open of a dirty
//     path flushes before the new handle is born (so every new reader or
//     writer observes flushed state); FlushCaches/Mount flush before
//     dropping (flush-on-unmount); every gen-bumping invalidation
//     (unlink, rename, truncate, O_TRUNC open) flushes first, through
//     the handle the extents were buffered by, so the bytes reach the
//     file they were written to even when the *name* moves on.
//
// Staleness rides the existing per-path invalidation generations: a
// writebackHandle captures the generation at open; once a mutating
// operation bumps it, the handle bypasses the dirty buffers and writes
// through its own backend handle — it keeps POSIX fd semantics and can
// never buffer bytes for the file the path *now* names.

// maxDirtyBytes is the default dirty budget (see SetDirtyBudget).
const maxDirtyBytes = 8 << 20

// dirtyExtent is one coalesced run of buffered bytes. An extent adopted
// from the zero-copy write path aliases the page-pool arena instead of
// holding its own copy: arenaEnd > 0 records the arena offset one past
// its last byte (aliased slices are always cap-clamped, so any append
// through data reallocates to the heap rather than clobbering the
// neighbouring slot).
type dirtyExtent struct {
	off      int64
	data     []byte
	arenaEnd int // 0 = heap-backed copy
}

func (e dirtyExtent) end() int64 { return e.off + int64(len(e.data)) }

// dirtyFile is the buffered, not-yet-flushed state of one path.
// Extents are ascending and disjoint; only slot adoption may leave two
// file-adjacent extents side by side (a staged run crossing a slot
// boundary) — the flusher coalesces those into one vectored write.
type dirtyFile struct {
	extents []dirtyExtent
	bytes   int64
	mtime   int64 // virtual time of the last buffered write
	born    int64 // virtual time of the first buffered write this epoch
	// slots pins adopted arena slots (one pin per adoption) until the
	// flusher lands their bytes; see writegrant.go for the ownership
	// protocol with the guest's own lease.
	slots []int
	// flush lands one extent on the backend, bound to the most recent
	// writer's (open) backend handle. Rebinding on every buffered write
	// keeps the closure valid: close flushes before the handle dies.
	flush func(off int64, bufs [][]byte, cb func(int, abi.Errno))
}

// insert merges [off, off+len(data)) into the extent list, newest write
// winning on overlap, and returns the net change in buffered bytes. The
// data is copied; callers may reuse their buffer.
func (df *dirtyFile) insert(off int64, data []byte) int64 {
	if len(data) == 0 {
		return 0
	}
	e := df.extents
	// Fast path: the pdflatex pattern — appending right after the last
	// extent — grows it in place.
	if n := len(e); n > 0 && off == e[n-1].end() {
		// Appending to an arena-aliased extent reallocates (cap-clamped
		// alias), leaving a heap-backed copy; its slot stays pinned in
		// df.slots until the flush, which is harmless.
		e[n-1].data = append(e[n-1].data, data...)
		e[n-1].arenaEnd = 0
		return int64(len(data))
	}
	end := off + int64(len(data))
	// Merge window: every extent overlapping or adjacent to [off, end].
	lo := sort.Search(len(e), func(i int) bool { return e[i].end() >= off })
	hi := sort.Search(len(e), func(i int) bool { return e[i].off > end })
	if lo == hi {
		ne := dirtyExtent{off: off, data: append([]byte(nil), data...)}
		df.extents = append(e[:lo:lo], append([]dirtyExtent{ne}, e[lo:]...)...)
		return int64(len(data))
	}
	newOff, newEnd := off, end
	var oldBytes int64
	if e[lo].off < newOff {
		newOff = e[lo].off
	}
	if e[hi-1].end() > newEnd {
		newEnd = e[hi-1].end()
	}
	buf := make([]byte, newEnd-newOff)
	for _, ext := range e[lo:hi] {
		oldBytes += int64(len(ext.data))
		copy(buf[ext.off-newOff:], ext.data)
	}
	copy(buf[off-newOff:], data) // the new write wins
	merged := dirtyExtent{off: newOff, data: buf}
	df.extents = append(e[:lo:lo], append([]dirtyExtent{merged}, e[hi:]...)...)
	return int64(len(buf)) - oldBytes
}

// insertOwned adopts data — a cap-clamped slice aliasing the pool arena,
// ending at arena offset arenaEnd — as dirty state without copying. Only
// the clean shapes qualify: growing the last extent when both the file
// offset and the arena offset continue exactly where it stopped (the
// append-storm shape: the extent re-slices over the wider arena run), or
// a brand-new extent overlapping nothing. Anything else returns false
// and the caller merges through the copying insert.
func (df *dirtyFile) insertOwned(off int64, data []byte, arenaEnd int, arena []byte) bool {
	if len(data) == 0 {
		return false
	}
	e := df.extents
	if n := len(e); n > 0 && off == e[n-1].end() &&
		e[n-1].arenaEnd > 0 && e[n-1].arenaEnd == arenaEnd-len(data) {
		base := e[n-1].arenaEnd - len(e[n-1].data)
		e[n-1].data = arena[base:arenaEnd:arenaEnd]
		e[n-1].arenaEnd = arenaEnd
		return true
	}
	end := off + int64(len(data))
	// idx is the first extent starting at or past end; with extents
	// ascending and disjoint, only e[idx-1] can overlap [off, end).
	idx := sort.Search(len(e), func(i int) bool { return e[i].off >= end })
	if idx > 0 && e[idx-1].end() > off {
		return false
	}
	ne := dirtyExtent{off: off, data: data, arenaEnd: arenaEnd}
	df.extents = append(e[:idx:idx], append([]dirtyExtent{ne}, e[idx:]...)...)
	return true
}

// overlay patches base (the backend's view of [off, off+len(base))) with
// the dirty extents intersecting [off, off+n), growing the result up to
// the buffered virtual EOF. Bytes between the backend's EOF and the
// virtual EOF that no extent covers read as zeros (sparse semantics) —
// including when the extent creating the virtual EOF lies entirely
// beyond the window, so a sequential reader walks through the hole
// instead of hitting a premature EOF.
func (df *dirtyFile) overlay(off int64, n int, base []byte) []byte {
	end := off + int64(n)
	vend := off + int64(len(base))
	if s := df.size(); s > vend {
		vend = min(s, end)
	}
	if vend == off+int64(len(base)) {
		anyOverlap := false
		for _, ext := range df.extents {
			if ext.off < off+int64(len(base)) && ext.end() > off {
				anyOverlap = true
				break
			}
		}
		if !anyOverlap {
			return base
		}
	}
	out := make([]byte, vend-off)
	copy(out, base)
	for _, ext := range df.extents {
		if ext.off >= end || ext.end() <= off {
			continue
		}
		src := ext.data
		dstOff := ext.off - off
		if dstOff < 0 {
			src = src[-dstOff:]
			dstOff = 0
		}
		copy(out[dstOff:], src)
	}
	return out
}

// size returns the buffered virtual EOF: the furthest extent end.
func (df *dirtyFile) size() int64 {
	if n := len(df.extents); n > 0 {
		return df.extents[n-1].end()
	}
	return 0
}

// pageChunks splits an extent into PageSize-bounded segments — the
// iovec list of the single coalesced Pwritev ("adjacent dirty pages" in
// one vectored backend call).
func pageChunks(data []byte) [][]byte {
	if len(data) <= PageSize {
		return [][]byte{data}
	}
	out := make([][]byte, 0, len(data)/PageSize+1)
	for o := 0; o < len(data); o += PageSize {
		e := o + PageSize
		if e > len(data) {
			e = len(data)
		}
		out = append(out, data[o:e])
	}
	return out
}

// ---------------------------------------------------------------------------
// FileSystem-level flush machinery.
// ---------------------------------------------------------------------------

// SetWriteBack enables or disables the write-back data path (the
// write-through configuration of the differential tests and ablations).
// Turning it off flushes everything buffered.
func (f *FileSystem) SetWriteBack(on bool) {
	if !on {
		f.flushAllDirtyNow()
	}
	f.writeBack = on
}

// SetDirtyBudget bounds the bytes the write-back cache may buffer before
// forcing a flush of everything (deterministic overflow behaviour).
func (f *FileSystem) SetDirtyBudget(n int64) {
	if n <= 0 {
		n = maxDirtyBytes
	}
	f.dirtyBudget = n
}

// SetFlushTimer installs the virtual-time scheduler the age-based
// background flusher uses (the kernel wires the simulator's delayed-post
// here). Without a timer — or with a zero age — the flusher is off and
// flushes ride barriers and budget overflow only.
func (f *FileSystem) SetFlushTimer(schedule func(delayNs int64, fn func())) {
	f.flushTimer = schedule
	f.armFlushTimer()
}

// SetFlushAge sets the age (virtual ns) after which buffered dirty
// extents flush in the background, so quiet long-lived files land on the
// backend without an fsync. 0 disables age-based flushing.
func (f *FileSystem) SetFlushAge(ns int64) {
	f.flushAge = ns
	f.armFlushTimer()
}

// armFlushTimer schedules the next background-flush tick at the earliest
// moment any buffered file comes of age. No-op while nothing is dirty —
// the simulation stays quiescent — or while a tick is already pending.
func (f *FileSystem) armFlushTimer() {
	if f.flushAge <= 0 || f.flushTimer == nil || f.flushTimerArmed || len(f.pc.dirty) == 0 {
		return
	}
	due := int64(1) << 62
	for _, df := range f.pc.dirty {
		if d := df.born + f.flushAge; d < due {
			due = d
		}
	}
	delay := due - f.now()
	if delay < 1 {
		delay = 1
	}
	f.flushTimerArmed = true
	f.flushTimer(delay, f.flushTick)
}

// flushTick flushes every dirty file older than the configured age
// (counted as CacheStats.AgedFlushes), then re-arms for the next one.
// Flush errors are recorded per path and surface at the next fsync,
// like any background flush.
func (f *FileSystem) flushTick() {
	f.flushTimerArmed = false
	if f.flushAge <= 0 {
		return
	}
	now := f.now()
	var due []string
	for p, df := range f.pc.dirty {
		if now-df.born >= f.flushAge {
			due = append(due, p)
		}
	}
	sort.Strings(due)
	for _, p := range due {
		f.pc.agedFlushes.Add(1)
		f.flushDirtyNow(p)
	}
	f.armFlushTimer()
}

// flushPath writes one path's dirty extents back, in ascending offset
// order, one vectored Pwritev per extent, and reports the first error.
// The dirty state is detached before the writes are issued so re-entrant
// buffering during an asynchronous flush starts a fresh epoch.
func (f *FileSystem) flushPath(p string, cb func(abi.Errno)) {
	df := f.pc.dirty[p]
	if df == nil {
		cb(abi.OK)
		return
	}
	delete(f.pc.dirty, p)
	f.pc.dirtyBytes.Add(-df.bytes)
	f.pc.flushes.Add(1)
	// The flush changes the backend's size/mtime, and a stat taken while
	// the file was dirty may have cached the *pre-flush* backend
	// attributes (patchDirtyStat corrected the returned copy, not the
	// dentry). Drop the dentry around the writes so post-flush stats
	// re-consult the backend.
	f.dc.drop(p)
	// Coalesce file-adjacent extents into one vectored write each: the
	// copying insert merges adjacency away, but slot adoption leaves a
	// staged run crossing a slot boundary as back-to-back extents, and
	// they must still land as a single backend call.
	type flushRun struct {
		off  int64
		n    int
		bufs [][]byte
	}
	var runs []flushRun
	for _, ext := range df.extents {
		if len(runs) > 0 && runs[len(runs)-1].off+int64(runs[len(runs)-1].n) == ext.off {
			r := &runs[len(runs)-1]
			r.bufs = append(r.bufs, pageChunks(ext.data)...)
			r.n += len(ext.data)
			continue
		}
		runs = append(runs, flushRun{off: ext.off, n: len(ext.data), bufs: pageChunks(ext.data)})
	}
	var step func(i int, firstErr abi.Errno)
	step = func(i int, firstErr abi.Errno) {
		if i >= len(runs) {
			// The adopted bytes are on the backend (or lost to a
			// reported error): return the adopters' pins. Slots whose
			// guest lease already came back free here.
			for _, s := range df.slots {
				f.pc.pool.unpin(s)
			}
			df.slots = nil
			f.dc.drop(p)
			cb(firstErr)
			return
		}
		run := runs[i]
		f.pc.flushWrites.Add(1)
		df.flush(run.off, run.bufs, func(n int, err abi.Errno) {
			if firstErr == abi.OK && err != abi.OK {
				firstErr = err
			} else if firstErr == abi.OK && n < run.n {
				firstErr = abi.EIO
			}
			step(i+1, firstErr)
		})
	}
	step(0, abi.OK)
}

// flushErr is one recorded background-flush failure: the errno plus the
// path's generation at record time, so only handles bound to the file
// that actually lost the bytes ever see it.
type flushErr struct {
	err abi.Errno
	gen uint64
}

// recordFlushErr saves a fire-and-forget flush failure for the path, to
// be surfaced at the next fsync. Every barrier or background flush with
// no caller to report to routes its errno here; flushes whose caller
// receives the error directly (fsync, close, the facade's FlushDirty)
// do not, so an error is never reported twice.
func (f *FileSystem) recordFlushErr(p string, err abi.Errno) {
	if err == abi.OK {
		return
	}
	if len(f.pc.flushErrs) >= maxDentries {
		clear(f.pc.flushErrs) // size bound; errors this old are lost
	}
	f.pc.flushErrs[p] = flushErr{err: err, gen: f.pc.gen(p)}
}

// flushDirtyNow fires a path's flush without waiting for completion —
// the invalidation path (unlink/rename/truncate) must issue the buffered
// writes before the mutating backend operation dispatches, and on the
// in-memory backends they complete inline. A failure is recorded per
// path and surfaces at the *next fsync* on that path (not only at
// close), like a real kernel reporting deferred write-back errors.
func (f *FileSystem) flushDirtyNow(p string) {
	if f.pc.dirty[p] != nil {
		f.flushPath(p, func(err abi.Errno) { f.recordFlushErr(p, err) })
	}
}

// flushDirtyTreeNow fires flushes for a path and everything below it.
func (f *FileSystem) flushDirtyTreeNow(p string) {
	f.flushDirtyNow(p)
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	for k := range f.pc.dirty {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			f.flushDirtyNow(k)
		}
	}
}

// flushAllDirtyNow fires every buffered flush in sorted-path order
// (deterministic overflow and unmount behaviour).
func (f *FileSystem) flushAllDirtyNow() {
	if len(f.pc.dirty) == 0 {
		return
	}
	paths := make([]string, 0, len(f.pc.dirty))
	for p := range f.pc.dirty {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f.flushDirtyNow(p)
	}
}

// FlushDirty flushes every buffered write and calls cb with the first
// error once all writes have completed (the sync(2) of the facade).
func (f *FileSystem) FlushDirty(cb func(abi.Errno)) {
	paths := make([]string, 0, len(f.pc.dirty))
	for p := range f.pc.dirty {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var step func(i int, firstErr abi.Errno)
	step = func(i int, firstErr abi.Errno) {
		if i >= len(paths) {
			cb(firstErr)
			return
		}
		f.flushPath(paths[i], func(err abi.Errno) {
			if firstErr == abi.OK {
				firstErr = err
			}
			step(i+1, firstErr)
		})
	}
	step(0, abi.OK)
}

// patchDirtyStat overlays buffered write-back state on a stat result:
// the virtual size (extents past the backend EOF) and the buffered
// mtime, so `make`-style freshness checks see the write the instant it
// is buffered, not the instant it is flushed.
func (f *FileSystem) patchDirtyStat(p string, st *abi.Stat) {
	df := f.pc.dirty[p]
	if df == nil || !st.IsRegular() {
		return
	}
	if s := df.size(); s > st.Size {
		st.Size = s
	}
	if df.mtime > st.Mtime {
		st.Mtime = df.mtime
	}
}

// Syncer is the optional FileHandle extension backing fsync: flush the
// handle's buffered write-back state to the backend before replying.
type Syncer interface {
	Sync(cb func(abi.Errno))
}

// writeBackable lets a backend opt out of the write-back data path.
// Backends that must observe (and fail) every write at write time —
// localStorage's quota accounting — stay write-through.
type writeBackable interface {
	WriteBackable() bool
}

func writeBackableBackend(b Backend) bool {
	if wb, ok := b.(writeBackable); ok {
		return wb.WriteBackable()
	}
	return !b.ReadOnly()
}

// ---------------------------------------------------------------------------
// writebackHandle: the write-capable handle of the write-back data path.
// ---------------------------------------------------------------------------

// writebackHandle buffers writes as dirty extents keyed by canonical
// path. Reads overlay the buffered extents on the backend's content
// (read-your-writes within the handle and, through the Open barrier,
// across handles). A stale generation downgrades it to exactly the old
// write-through-invalidate behaviour.
type writebackHandle struct {
	fs    *FileSystem
	path  string
	gen   uint64 // page-cache generation at open
	inner FileHandle
}

func (h *writebackHandle) current() bool { return h.fs.pc.gen(h.path) == h.gen }

// buffered reports whether this handle may use the dirty buffers.
func (h *writebackHandle) buffered() bool {
	return h.fs.writeBack && h.fs.cachesOn && h.current()
}

func (h *writebackHandle) buffer(off int64, data []byte) {
	pc := h.fs.pc
	df := pc.dirty[h.path]
	if df == nil {
		df = &dirtyFile{born: h.fs.now()}
		pc.dirty[h.path] = df
	}
	df.flush = func(o int64, bufs [][]byte, cb func(int, abi.Errno)) {
		h.inner.Pwritev(o, bufs, cb)
	}
	delta := df.insert(off, data)
	df.bytes += delta
	pc.dirtyBytes.Add(delta)
	df.mtime = h.fs.now()
	pc.bufferedWrites.Add(1)
	// Content changed: clean pages and cached attributes for the path
	// are stale, but the generation stays — this handle (and the
	// name→file binding) is still current.
	pc.dropPages(h.path)
	h.fs.dc.drop(h.path)
	if pc.dirtyBytes.Load() > h.fs.dirtyBudget {
		pc.overflowFlushes.Add(1)
		h.fs.flushAllDirtyNow()
	}
	h.fs.armFlushTimer()
}

// PwriteSlots implements SlotWriter: adopt staged arena bytes as dirty
// extents in place — the zero-copy write path's landing zone. The clean
// sequential shapes alias the arena (pinning each adopted slot until the
// flush); overlapping or out-of-order refs merge through the copying
// insert, which is a kernel-internal move, not a crossing. Refusal
// (write-back off, stale handle) sends the caller down the copy path.
func (h *writebackHandle) PwriteSlots(off int64, refs []SlotRef) (int, bool) {
	if off < 0 || !h.buffered() {
		return 0, false
	}
	pc := h.fs.pc
	df := pc.dirty[h.path]
	if df == nil {
		df = &dirtyFile{born: h.fs.now()}
		pc.dirty[h.path] = df
	}
	df.flush = func(o int64, bufs [][]byte, cb func(int, abi.Errno)) {
		h.inner.Pwritev(o, bufs, cb)
	}
	arena := pc.pool.arena
	total := 0
	var delta int64
	for _, r := range refs {
		data := h.fs.SlotBytes(r)
		arenaEnd := r.Slot*PageSize + r.Off + r.Len
		if df.insertOwned(off+int64(total), data, arenaEnd, arena) {
			pc.pool.pin(r.Slot)
			df.slots = append(df.slots, r.Slot)
			delta += int64(r.Len)
		} else {
			delta += df.insert(off+int64(total), data)
		}
		total += r.Len
	}
	df.bytes += delta
	pc.dirtyBytes.Add(delta)
	df.mtime = h.fs.now()
	pc.bufferedWrites.Add(1)
	// Content changed: clean pages and cached attributes go, the
	// generation stays (reclaim-before-coalesce: dropped leased pages
	// freeze for their holders).
	pc.dropPages(h.path)
	h.fs.dc.drop(h.path)
	if pc.dirtyBytes.Load() > h.fs.dirtyBudget {
		pc.overflowFlushes.Add(1)
		h.fs.flushAllDirtyNow()
	}
	h.fs.armFlushTimer()
	return total, true
}

// Pwrite implements FileHandle: absorb into the dirty extents, or write
// through (with invalidation) when stale or write-back is off.
func (h *writebackHandle) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	if off < 0 {
		cb(0, abi.EINVAL)
		return
	}
	if !h.buffered() {
		h.fs.invalidatePath(h.path)
		h.inner.Pwrite(off, data, func(n int, err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(n, err)
		})
		return
	}
	h.buffer(off, data)
	cb(len(data), abi.OK)
}

// Pwritev implements FileHandle: each segment lands back to back in the
// dirty extents (they coalesce into one), no backend call at all.
func (h *writebackHandle) Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno)) {
	if off < 0 {
		cb(0, abi.EINVAL)
		return
	}
	if !h.buffered() {
		h.fs.invalidatePath(h.path)
		h.inner.Pwritev(off, bufs, func(n int, err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(n, err)
		})
		return
	}
	total := 0
	for _, b := range bufs {
		h.buffer(off+int64(total), b)
		total += len(b)
	}
	cb(total, abi.OK)
}

// Pread implements FileHandle: backend content overlaid with the
// buffered extents (read-your-writes). A handle that can no longer use
// the buffers (staled by an epoch clear, or write-back switched off)
// while dirty state for the path exists still barriers on a flush
// first, like every other read path — its own acknowledged writes must
// be visible in the bytes it reads.
func (h *writebackHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	df := h.fs.pc.dirty[h.path]
	if df == nil || !h.buffered() {
		if df != nil {
			h.fs.flushPath(h.path, func(err abi.Errno) {
				h.fs.recordFlushErr(h.path, err)
				h.inner.Pread(off, n, cb)
			})
			return
		}
		h.inner.Pread(off, n, cb)
		return
	}
	h.inner.Pread(off, n, func(data []byte, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		cb(df.overlay(off, n, data), abi.OK)
	})
}

// Preadv implements FileHandle.
func (h *writebackHandle) Preadv(off int64, lens []int, cb func([][]byte, abi.Errno)) {
	genericPreadv(h, off, lens, cb)
}

// Stat implements FileHandle: the backend's attributes patched with the
// buffered virtual size/mtime (O_APPEND positioning depends on this).
func (h *writebackHandle) Stat(cb func(abi.Stat, abi.Errno)) {
	h.inner.Stat(func(st abi.Stat, err abi.Errno) {
		if err == abi.OK && h.buffered() {
			h.fs.patchDirtyStat(h.path, &st)
		}
		cb(st, err)
	})
}

// Truncate implements FileHandle: a barrier — flush, truncate, then
// re-capture the generation (our own truncate does not re-bind the
// name, so the handle stays current; other handles go stale).
func (h *writebackHandle) Truncate(size int64, cb func(abi.Errno)) {
	flush := func(done func(abi.Errno)) { done(abi.OK) }
	if h.buffered() {
		flush = func(done func(abi.Errno)) { h.fs.flushPath(h.path, done) }
	}
	flush(func(ferr abi.Errno) {
		if ferr != abi.OK {
			cb(ferr)
			return
		}
		recapture := h.buffered()
		h.fs.invalidatePath(h.path)
		h.inner.Truncate(size, func(err abi.Errno) {
			h.fs.invalidatePath(h.path)
			if recapture {
				h.gen = h.fs.pc.gen(h.path)
			}
			cb(err)
		})
	})
}

// Sync implements Syncer: the fsync barrier — every buffered extent is
// on the backend before the callback fires (flush-before-reply). A
// failure recorded by an earlier background/overflow flush of this path
// is surfaced (once) here, so callers that fsync learn about it even
// though the failing flush ran with no caller to tell. The generation
// check keeps the error with the file that lost the bytes: a handle on
// a later file reusing the name never inherits it.
func (h *writebackHandle) Sync(cb func(abi.Errno)) {
	h.fs.flushPath(h.path, func(err abi.Errno) {
		if saved, ok := h.fs.pc.flushErrs[h.path]; ok && saved.gen == h.gen {
			delete(h.fs.pc.flushErrs, h.path)
			if err == abi.OK {
				err = saved.err
			}
		}
		cb(err)
	})
}

// Close implements FileHandle: flush-on-close, reporting flush errors
// through close's result as POSIX allows.
func (h *writebackHandle) Close(cb func(abi.Errno)) {
	h.Sync(func(ferr abi.Errno) {
		h.inner.Close(func(cerr abi.Errno) {
			if ferr == abi.OK {
				ferr = cerr
			}
			cb(ferr)
		})
	})
}
