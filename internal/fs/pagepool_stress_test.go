package fs

import (
	"crypto/sha256"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// Concurrent stress/property test for the shared page-pool arena: K
// goroutines — each standing in for one fleet shard — hammer their own
// attachment with randomized alloc/write/pin/unpin/release storms while
// the invariants of the lease discipline are checked in-line:
//
//   - a freshly allocated slot is never leased or frozen (no recycling
//     of a slot somebody still reads);
//   - a slot's bytes never change while its owner holds it or holds a
//     lease on it — including after release froze it (frozen bytes stay
//     intact until the last unpin);
//   - at quiesce every lease has been returned, every slot is back on
//     the free stack, and every attachment's usage is zero.
//
// Each goroutine writes only slots it allocated itself, so a stamp
// mismatch can only mean the pool handed the same slot to two owners or
// recycled a frozen slot. The race detector referees the memory model:
// the final unpin's CAS plus the free-stack mutex must order every
// reader's loads before the next owner's stores.

const stressStamp = 128 // bytes stamped/verified per slot (covers the rewrite window)

type stressHeld struct {
	slot int
	pins int
}

func TestPagePoolConcurrentStress(t *testing.T) {
	const (
		slots = 128
		K     = 8
		iters = 4000
	)
	pp := newPagePool(slots)
	pp.ensure()

	// Uneven quotas: some shards can overflow the free stack even under
	// quota (sum of quotas > slots), exercising both failure paths.
	atts := make([]int, K)
	for g := range atts {
		atts[g] = pp.attach(slots/K + g)
	}

	var wg sync.WaitGroup
	for g := 0; g < K; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1)) // fixed per-shard seed
			att := atts[g]
			stamp := byte(g + 1)
			var owned []stressHeld

			check := func(slot int, what string) {
				base := slot * PageSize
				for i := 0; i < stressStamp; i++ {
					if pp.arena[base+i] != stamp {
						t.Errorf("shard %d: slot %d byte %d = %d, want %d (%s)",
							g, slot, i, pp.arena[base+i], stamp, what)
						return
					}
				}
			}
			releaseAt := func(i int) {
				h := owned[i]
				check(h.slot, "owned at release")
				pp.release(h.slot)
				if h.pins > 0 {
					// Detached while leased: the slot froze. Its bytes
					// must survive every outstanding lease.
					if !pp.isFrozen(h.slot) {
						t.Errorf("shard %d: slot %d released with %d pins but not frozen", g, h.slot, h.pins)
					}
					for ; h.pins > 0; h.pins-- {
						check(h.slot, "frozen under lease")
						pp.unpin(h.slot)
					}
				}
				owned[i] = owned[len(owned)-1]
				owned = owned[:len(owned)-1]
			}

			for iter := 0; iter < iters; iter++ {
				switch op := rng.Intn(100); {
				case op < 40: // store: alloc a slot and write our stamp
					slot, ok := pp.alloc(att)
					if !ok {
						// Quota or arena overflow — the evictAll path:
						// drop something and move on.
						if len(owned) > 0 {
							releaseAt(rng.Intn(len(owned)))
						}
						continue
					}
					if n := pp.pinCount(slot); n != 0 || pp.isFrozen(slot) {
						t.Errorf("shard %d: alloc returned slot %d with pins=%d frozen=%v",
							g, slot, n, pp.isFrozen(slot))
					}
					base := slot * PageSize
					for i := 0; i < stressStamp; i++ {
						pp.arena[base+i] = stamp
					}
					owned = append(owned, stressHeld{slot: slot})
				case op < 65 && len(owned) > 0: // grant a lease
					h := &owned[rng.Intn(len(owned))]
					pp.pin(h.slot)
					h.pins++
					check(h.slot, "just pinned")
				case op < 80 && len(owned) > 0: // return a lease
					h := &owned[rng.Intn(len(owned))]
					if h.pins > 0 {
						check(h.slot, "before unpin")
						pp.unpin(h.slot)
						h.pins--
					}
				default: // detach (evict/invalidate)
					if len(owned) > 0 {
						releaseAt(rng.Intn(len(owned)))
					}
				}
				if iter%256 == 0 {
					runtime.Gosched() // shuffle interleavings
				}
			}
			for len(owned) > 0 {
				releaseAt(len(owned) - 1)
			}
		}(g)
	}
	wg.Wait()

	// Quiesce invariants: everything returned, nothing leaked.
	if n := pp.pinned.Load(); n != 0 {
		t.Errorf("pinned slots at quiesce: %d, want 0", n)
	}
	if n := pp.freeCount(); n != slots {
		t.Errorf("free stack holds %d slots at quiesce, want %d", n, slots)
	}
	for g, att := range atts {
		if n := pp.usedBy(att); n != 0 {
			t.Errorf("shard %d still charged %d slots at quiesce", g, n)
		}
	}
	for s := 0; s < slots; s++ {
		if pp.pinCount(s) != 0 || pp.isFrozen(s) {
			t.Errorf("slot %d at quiesce: pins=%d frozen=%v", s, pp.pinCount(s), pp.isFrozen(s))
		}
	}
}

// TestPagePoolQuotaIndependence pins the determinism property the fleet
// rests on: one attachment's allocation success depends only on its own
// quota, never on how many slots its neighbours hold.
func TestPagePoolQuotaIndependence(t *testing.T) {
	pp := newPagePool(16)
	a := pp.attach(4)
	b := pp.attach(4)

	// Shard b hoards its whole quota.
	var bSlots []int
	for i := 0; i < 4; i++ {
		slot, ok := pp.alloc(b)
		if !ok {
			t.Fatalf("b alloc %d failed under quota", i)
		}
		bSlots = append(bSlots, slot)
	}
	if _, ok := pp.alloc(b); ok {
		t.Fatal("b alloc succeeded past its quota")
	}
	// Shard a still gets its full quota regardless.
	for i := 0; i < 4; i++ {
		if _, ok := pp.alloc(a); !ok {
			t.Fatalf("a alloc %d failed while under quota (neighbour interference)", i)
		}
	}
	if _, ok := pp.alloc(a); ok {
		t.Fatal("a alloc succeeded past its quota")
	}
	// A frozen slot stays charged to its owner: release-under-lease must
	// not free quota headroom early (that would let the owner rewrite
	// bytes a leaseholder still reads — via a new slot's identity).
	pp.pin(bSlots[0])
	pp.release(bSlots[0])
	if _, ok := pp.alloc(b); ok {
		t.Fatal("b alloc succeeded while a frozen slot still holds its charge")
	}
	pp.unpin(bSlots[0])
	if _, ok := pp.alloc(b); !ok {
		t.Fatal("b alloc failed after the frozen slot was returned")
	}
}

// TestPagePoolDedupStress storms the content-addressed tier: K shards
// share a small set of content patterns, so lookups constantly hit
// entries other shards published, publishes race on the same hash, and
// derefs interleave with outstanding grant leases. In-line invariants:
//
//   - a lookup hit or publish always lands on a slot carrying exactly
//     the pattern's bytes (the index never aliases two contents);
//   - a shard's reference (or any lease it still holds after deref)
//     keeps the bytes stable — a shared slot is freed exactly once,
//     only after the LAST reference and the LAST lease are gone;
//   - at quiesce the index is empty, every shared charge is returned,
//     and the arena is fully free.
//
// The race detector referees: publish/lookup hand slots between shards
// under the pool mutex, so a filler's stores must happen-before every
// reader's loads.
func TestPagePoolDedupStress(t *testing.T) {
	const (
		slots    = 96
		K        = 8
		iters    = 3000
		patterns = 24
	)
	pp := newPagePool(slots)
	pp.ensure()

	// Hash per pattern; pattern content = stressStamp bytes of its tag.
	var hashes [patterns][32]byte
	for p := 0; p < patterns; p++ {
		body := make([]byte, stressStamp)
		for i := range body {
			body[i] = byte(p + 1)
		}
		hashes[p] = sha256.Sum256(body)
	}

	// Uneven quotas; shared references charge quota logically, so small
	// shards exercise dedupNoQuota while big ones keep entries alive.
	atts := make([]int, K)
	for g := range atts {
		atts[g] = pp.attach(slots/K + 2*g)
	}

	type dedupHeld struct {
		slot, pat, pins int
	}
	var wg sync.WaitGroup
	for g := 0; g < K; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*104729 + 3))
			att := atts[g]
			var held []dedupHeld

			verify := func(slot, pat int, what string) {
				base := slot * PageSize
				for i := 0; i < stressStamp; i++ {
					if pp.arena[base+i] != byte(pat+1) {
						t.Errorf("shard %d: slot %d byte %d = %d, want pattern %d (%s)",
							g, slot, i, pp.arena[base+i], pat+1, what)
						return
					}
				}
			}
			dropAt := func(i int) {
				h := held[i]
				verify(h.slot, h.pat, "held at deref")
				pp.dedupDeref(att, h.slot)
				// Outstanding leases outlive our reference: whether the
				// slot stayed published (other shards) or froze (we were
				// last), its bytes survive until the final unpin.
				for ; h.pins > 0; h.pins-- {
					verify(h.slot, h.pat, "leased past deref")
					pp.unpin(h.slot)
				}
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
			}

			for iter := 0; iter < iters; iter++ {
				switch op := rng.Intn(100); {
				case op < 45: // fault a pattern: lookup, else fill+publish
					pat := rng.Intn(patterns)
					if slot, st := pp.dedupLookup(att, hashes[pat]); st == dedupHit {
						verify(slot, pat, "lookup hit")
						held = append(held, dedupHeld{slot: slot, pat: pat})
						continue
					} else if st == dedupNoQuota {
						if len(held) > 0 {
							dropAt(rng.Intn(len(held)))
						}
						continue
					}
					slot, st := pp.dedupAlloc(att)
					if st != allocOK {
						if len(held) > 0 {
							dropAt(rng.Intn(len(held)))
						}
						continue
					}
					base := slot * PageSize
					for i := 0; i < stressStamp; i++ {
						pp.arena[base+i] = byte(pat + 1)
					}
					canon := pp.dedupPublish(slot, hashes[pat])
					verify(canon, pat, "after publish") // loser adopts the winner's copy
					held = append(held, dedupHeld{slot: canon, pat: pat})
				case op < 65 && len(held) > 0: // grant a lease on a shared slot
					h := &held[rng.Intn(len(held))]
					pp.pin(h.slot)
					h.pins++
					verify(h.slot, h.pat, "just pinned")
				case op < 80 && len(held) > 0: // return a lease
					h := &held[rng.Intn(len(held))]
					if h.pins > 0 {
						verify(h.slot, h.pat, "before unpin")
						pp.unpin(h.slot)
						h.pins--
					}
				default: // drop our reference
					if len(held) > 0 {
						dropAt(rng.Intn(len(held)))
					}
				}
				if iter%256 == 0 {
					runtime.Gosched()
				}
			}
			for len(held) > 0 {
				dropAt(len(held) - 1)
			}
		}(g)
	}
	wg.Wait()

	// Quiesce: the index is empty, every charge returned, arena free.
	if e, r, _ := pp.dedupStats(); e != 0 || r != 0 {
		t.Errorf("dedup index at quiesce: entries=%d refs=%d, want 0/0", e, r)
	}
	if n := pp.pinned.Load(); n != 0 {
		t.Errorf("pinned slots at quiesce: %d, want 0", n)
	}
	if n := pp.freeCount(); n != slots {
		t.Errorf("free stack holds %d slots at quiesce, want %d", n, slots)
	}
	for g, att := range atts {
		if n := pp.usedBy(att); n != 0 {
			t.Errorf("shard %d still charged %d private slots at quiesce", g, n)
		}
		if n := pp.sharedBy(att); n != 0 {
			t.Errorf("shard %d still charged %d shared refs at quiesce", g, n)
		}
	}
	if pp.dedupAtt >= 0 {
		if n := pp.usedBy(pp.dedupAtt); n != 0 {
			t.Errorf("dedup attachment still holds %d slots at quiesce", n)
		}
	}
	for s := 0; s < slots; s++ {
		if pp.pinCount(s) != 0 || pp.isFrozen(s) {
			t.Errorf("slot %d at quiesce: pins=%d frozen=%v", s, pp.pinCount(s), pp.isFrozen(s))
		}
	}
}
