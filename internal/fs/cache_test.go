package fs

import (
	"bytes"
	"testing"

	"repro/internal/abi"
)

// countingBackend wraps a Backend and counts the calls that reach it, so
// tests can prove cache hits never touch storage.
type countingBackend struct {
	Backend
	lstats, opens, readdirs int
}

func (c *countingBackend) Lstat(p string, cb func(abi.Stat, abi.Errno)) {
	c.lstats++
	c.Backend.Lstat(p, cb)
}

func (c *countingBackend) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	c.opens++
	c.Backend.Open(p, flags, mode, cb)
}

func (c *countingBackend) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	c.readdirs++
	c.Backend.Readdir(p, cb)
}

// ReadOnly marks the wrapped backend cacheable regardless of the inner
// type (the tests wrap read-only images).
func (c *countingBackend) ReadOnly() bool { return true }

// newCountedFS stages /mnt/a/b/file.txt on a counted read-only backend
// mounted at /mnt.
func newCountedFS(t *testing.T, content string) (*FileSystem, *countingBackend) {
	t.Helper()
	img := NewMemFS(now)
	lfs := NewFileSystem(img, func() int64 { return clock })
	mustMkdirAll(t, lfs, "/a/b")
	mustWrite(t, lfs, "/a/b/file.txt", content)
	img.SetReadOnly()
	counted := &countingBackend{Backend: img}
	f := newFS()
	mustMkdirAll(t, f, "/mnt")
	f.Mount("/mnt", counted)
	return f, counted
}

func TestDentryCacheShortCircuitsBackend(t *testing.T) {
	f, counted := newCountedFS(t, "cached")
	stat := func() {
		var err abi.Errno = -1
		f.Stat("/mnt/a/b/file.txt", func(_ abi.Stat, e abi.Errno) { err = e })
		if err != abi.OK {
			t.Fatalf("stat: %v", err)
		}
	}
	stat()
	cold := counted.lstats
	if cold == 0 {
		t.Fatal("cold stat never reached the backend")
	}
	stat()
	stat()
	if counted.lstats != cold {
		t.Fatalf("warm stats reached the backend: %d -> %d lstats", cold, counted.lstats)
	}
	s := f.CacheStats()
	if s.WalkHits == 0 {
		t.Fatalf("no whole-walk hits recorded: %+v", s)
	}
}

func TestNegativeDentriesAndInvalidation(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/d")
	var err abi.Errno
	// Two misses on the same path: the second is a negative-cache hit.
	f.Stat("/d/ghost", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("stat ghost: %v", err)
	}
	f.Stat("/d/ghost", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("stat ghost again: %v", err)
	}
	if f.CacheStats().NegativeHits == 0 {
		t.Fatal("negative entry not served from cache")
	}
	// Creating the file must kill the negative entry...
	mustWrite(t, f, "/d/ghost", "now real")
	f.Stat("/d/ghost", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("stat after create: %v", err)
	}
	// ...and removal must kill the positive one.
	f.Unlink("/d/ghost", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink: %v", err)
	}
	f.Stat("/d/ghost", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("stat after unlink: %v", err)
	}
}

func TestRenameInvalidatesSubtree(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/d1/sub")
	mustWrite(t, f, "/d1/sub/f", "moved")
	// Warm the caches on the old names.
	_ = mustRead(t, f, "/d1/sub/f")
	var err abi.Errno
	f.Rename("/d1", "/d2", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rename: %v", err)
	}
	if got := mustRead(t, f, "/d2/sub/f"); got != "moved" {
		t.Fatalf("read after dir rename: %q", got)
	}
	f.Stat("/d1/sub/f", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("old subtree still visible after rename: %v", err)
	}
}

func TestAttrCacheInvalidatedByHandleWrites(t *testing.T) {
	f := newFS()
	mustWrite(t, f, "/grow", "123")
	var st abi.Stat
	f.Stat("/grow", func(s abi.Stat, e abi.Errno) { st = s })
	if st.Size != 3 {
		t.Fatalf("size = %d", st.Size)
	}
	// Append through a handle; the cached attributes must not go stale.
	f.Open("/grow", abi.O_WRONLY, 0, func(h FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		h.Pwrite(3, []byte("4567"), func(int, abi.Errno) {})
		h.Close(func(abi.Errno) {})
	})
	f.Stat("/grow", func(s abi.Stat, e abi.Errno) { st = s })
	if st.Size != 7 {
		t.Fatalf("stat after handle write: size = %d, want 7", st.Size)
	}
	// Truncate through a handle likewise.
	f.Open("/grow", abi.O_RDWR, 0, func(h FileHandle, e abi.Errno) {
		h.Truncate(2, func(abi.Errno) {})
		h.Close(func(abi.Errno) {})
	})
	f.Stat("/grow", func(s abi.Stat, e abi.Errno) { st = s })
	if st.Size != 2 {
		t.Fatalf("stat after truncate: size = %d, want 2", st.Size)
	}
}

func TestPageCacheServesRepeatedReadsWithoutBackend(t *testing.T) {
	content := string(bytes.Repeat([]byte("browsix "), 8<<10)) // 64 KiB
	f, counted := newCountedFS(t, content)
	read := func() string { return mustRead(t, f, "/mnt/a/b/file.txt") }
	if got := read(); got != content {
		t.Fatalf("first read wrong (%d bytes)", len(got))
	}
	opens, lstats := counted.opens, counted.lstats
	if opens == 0 {
		t.Fatal("cold read never opened on the backend")
	}
	for i := 0; i < 3; i++ {
		if got := read(); got != content {
			t.Fatalf("warm read %d wrong", i)
		}
	}
	if counted.opens != opens || counted.lstats != lstats {
		t.Fatalf("warm reads re-hit the backend: opens %d->%d, lstats %d->%d",
			opens, counted.opens, lstats, counted.lstats)
	}
	s := f.CacheStats()
	if s.PageHits == 0 || s.PageMisses == 0 {
		t.Fatalf("page counters: %+v", s)
	}
}

func TestPageCacheReadahead(t *testing.T) {
	content := string(bytes.Repeat([]byte{0xAB}, 10*PageSize))
	f, _ := newCountedFS(t, content)
	f.SetReadahead(2)
	var h FileHandle
	f.Open("/mnt/a/b/file.txt", abi.O_RDONLY, 0, func(fh FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		h = fh
	})
	// Sequential 1 KiB reads: readahead should run ahead of the cursor,
	// converting most reads into page hits.
	var out []byte
	for off := int64(0); off < int64(len(content)); {
		var chunk []byte
		h.Pread(off, 1024, func(b []byte, e abi.Errno) { chunk = b })
		if len(chunk) == 0 {
			break
		}
		out = append(out, chunk...)
		off += int64(len(chunk))
	}
	h.Close(func(abi.Errno) {})
	if string(out) != content {
		t.Fatalf("sequential read through readahead corrupted data (%d bytes)", len(out))
	}
	s := f.CacheStats()
	if s.ReadaheadOps == 0 {
		t.Fatalf("no readahead issued: %+v", s)
	}
	if s.PageHits < s.PageMisses {
		t.Fatalf("readahead ineffective: %+v", s)
	}
}

func TestPageCacheInvalidatedByWrite(t *testing.T) {
	// Overlay is page-cacheable; writes must drop stale pages.
	lower := NewMemFS(now)
	lfs := NewFileSystem(lower, func() int64 { return clock })
	mustWrite(t, lfs, "/doc", "version one")
	lower.SetReadOnly()
	ov := NewOverlayFS(NewMemFS(now), lower)
	f := NewFileSystem(ov, func() int64 { return clock })
	if got := mustRead(t, f, "/doc"); got != "version one" {
		t.Fatalf("read lower: %q", got)
	}
	mustWrite(t, f, "/doc", "version two")
	if got := mustRead(t, f, "/doc"); got != "version two" {
		t.Fatalf("stale page served after write: %q", got)
	}
	// And partial writes through a handle as well.
	f.Open("/doc", abi.O_WRONLY, 0, func(h FileHandle, e abi.Errno) {
		h.Pwrite(0, []byte("VERSION"), func(int, abi.Errno) {})
		h.Close(func(abi.Errno) {})
	})
	if got := mustRead(t, f, "/doc"); got != "VERSION two" {
		t.Fatalf("stale page after handle write: %q", got)
	}
}

func TestPagedHandleSeesGrowthAfterOpen(t *testing.T) {
	// An O_RDONLY handle on an upper-layer overlay file must observe
	// appends made through another descriptor to the same file: after
	// the invalidation bumps the path's generation, the stale handle
	// bypasses the page cache and reads its backend handle directly —
	// EOF comes from the backend, not the open-time size snapshot.
	f := NewFileSystem(NewOverlayFS(NewMemFS(now), NewMemFS(now)), func() int64 { return clock })
	mustWrite(t, f, "/log", "first")
	var h FileHandle
	f.Open("/log", abi.O_RDONLY, 0, func(fh FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		h = fh
	})
	var data []byte
	h.Pread(0, 100, func(b []byte, e abi.Errno) { data = b })
	if string(data) != "first" {
		t.Fatalf("initial read: %q", data)
	}
	f.Open("/log", abi.O_RDWR, 0, func(wh FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open rw: %v", e)
		}
		wh.Pwrite(5, []byte(" second"), func(int, abi.Errno) {})
		wh.Close(func(abi.Errno) {})
	})
	h.Pread(0, 100, func(b []byte, e abi.Errno) { data = b })
	if string(data) != "first second" {
		t.Fatalf("read after growth: %q, want %q", data, "first second")
	}
	h.Pread(5, 100, func(b []byte, e abi.Errno) { data = b })
	if string(data) != " second" {
		t.Fatalf("offset read after growth: %q", data)
	}
	h.Close(func(abi.Errno) {})
}

func TestPagedHandleCopyUpAliasingDoesNotPolluteCache(t *testing.T) {
	// A descriptor opened before a copy-up stays bound to the *lower*
	// file (Linux overlayfs's documented fd behaviour). Its reads must
	// not plant pages for the path, which now names the upper file.
	lower := NewMemFS(now)
	lfs := NewFileSystem(lower, func() int64 { return clock })
	mustWrite(t, lfs, "/doc", "old lower content")
	lower.SetReadOnly()
	f := NewFileSystem(NewOverlayFS(NewMemFS(now), lower), func() int64 { return clock })

	var h1 FileHandle
	f.Open("/doc", abi.O_RDONLY, 0, func(fh FileHandle, e abi.Errno) { h1 = fh })
	var data []byte
	h1.Pread(0, 100, func(b []byte, e abi.Errno) { data = b })
	if string(data) != "old lower content" {
		t.Fatalf("pre-copy-up read: %q", data)
	}
	// Copy-up via an overwrite.
	mustWrite(t, f, "/doc", "NEW upper content!!")
	// The stale fd keeps the lower file...
	h1.Pread(0, 100, func(b []byte, e abi.Errno) { data = b })
	if string(data) != "old lower content" {
		t.Fatalf("stale fd after copy-up: %q", data)
	}
	// ...and fresh opens see the upper file, uncontaminated by the
	// stale fd's re-reads.
	if got := mustRead(t, f, "/doc"); got != "NEW upper content!!" {
		t.Fatalf("fresh read after copy-up: %q", got)
	}
	h1.Pread(0, 100, func([]byte, abi.Errno) {}) // stale fd reads again
	if got := mustRead(t, f, "/doc"); got != "NEW upper content!!" {
		t.Fatalf("stale fd polluted the page cache: %q", got)
	}
	h1.Close(func(abi.Errno) {})
}

func TestOpenHandleSurvivesUnlinkOnOverlay(t *testing.T) {
	// POSIX: an open descriptor keeps working after the name is
	// unlinked. The overlay is mutable, so the paged handle opens its
	// backend handle eagerly.
	lower := NewMemFS(now)
	lfs := NewFileSystem(lower, func() int64 { return clock })
	mustWrite(t, lfs, "/doomed", "still readable")
	lower.SetReadOnly()
	f := NewFileSystem(NewOverlayFS(NewMemFS(now), lower), func() int64 { return clock })

	var h FileHandle
	f.Open("/doomed", abi.O_RDONLY, 0, func(fh FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		h = fh
	})
	var err abi.Errno
	f.Unlink("/doomed", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink: %v", err)
	}
	f.Stat("/doomed", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("unlink did not hide the name")
	}
	var data []byte
	var rerr abi.Errno = -1
	h.Pread(0, 100, func(b []byte, e abi.Errno) { data, rerr = b, e })
	if rerr != abi.OK || string(data) != "still readable" {
		t.Fatalf("read after unlink: %q, %v", data, rerr)
	}
	h.Close(func(abi.Errno) {})
}

func TestStaleHandleCannotPolluteAcrossMount(t *testing.T) {
	// A read-only handle opened before a Mount shadowed its path must
	// not repopulate the page cache with the old backend's bytes.
	old := NewMemFS(now)
	olfs := NewFileSystem(old, func() int64 { return clock })
	mustMkdirAll(t, olfs, "/data")
	mustWrite(t, olfs, "/data/f", "OLD-CONTENT")
	old.SetReadOnly()
	f := newFS()
	mustMkdirAll(t, f, "/mnt")
	f.Mount("/mnt", old)

	var h FileHandle
	f.Open("/mnt/data/f", abi.O_RDONLY, 0, func(fh FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		h = fh
	})
	var data []byte
	h.Pread(0, 100, func(b []byte, e abi.Errno) { data = b })
	if string(data) != "OLD-CONTENT" {
		t.Fatalf("pre-mount read: %q", data)
	}
	// Shadow the file's directory with a longer-prefix mount.
	nb := NewMemFS(now)
	nfs := NewFileSystem(nb, func() int64 { return clock })
	mustWrite(t, nfs, "/f", "NEW-CONTENT")
	nb.SetReadOnly()
	f.Mount("/mnt/data", nb)
	// The stale handle still reads its own (old) file...
	h.Pread(0, 100, func(b []byte, e abi.Errno) { data = b })
	if string(data) != "OLD-CONTENT" {
		t.Fatalf("stale fd after mount: %q", data)
	}
	// ...but the path serves the new backend, before and after the
	// stale fd's re-reads.
	if got := mustRead(t, f, "/mnt/data/f"); got != "NEW-CONTENT" {
		t.Fatalf("read after mount: %q", got)
	}
	h.Pread(0, 100, func([]byte, abi.Errno) {})
	if got := mustRead(t, f, "/mnt/data/f"); got != "NEW-CONTENT" {
		t.Fatalf("stale fd polluted cache across mount: %q", got)
	}
	h.Close(func(abi.Errno) {})
}

func TestWalkCacheSurvivesUnrelatedWrites(t *testing.T) {
	// Writes to one file must not evict whole-walk entries for others
	// (the pdflatex log/aux chatter pattern).
	f := newFS()
	mustMkdirAll(t, f, "/proj")
	mustWrite(t, f, "/proj/main.tex", "doc")
	mustWrite(t, f, "/proj/main.log", "")
	stat := func() {
		var err abi.Errno = -1
		f.Stat("/proj/main.tex", func(_ abi.Stat, e abi.Errno) { err = e })
		if err != abi.OK {
			t.Fatalf("stat: %v", err)
		}
	}
	stat()
	stat() // prime + confirm walk entry
	base := f.CacheStats().WalkHits
	var h FileHandle
	f.Open("/proj/main.log", abi.O_WRONLY, 0, func(fh FileHandle, e abi.Errno) { h = fh })
	for i := 0; i < 10; i++ {
		h.Pwrite(int64(i), []byte("x"), func(int, abi.Errno) {})
		stat()
	}
	h.Close(func(abi.Errno) {})
	if hits := f.CacheStats().WalkHits - base; hits < 10 {
		t.Fatalf("only %d/10 warm stats hit the walk cache across writes", hits)
	}
}

func TestCachingOffMatchesOn(t *testing.T) {
	// The same operation script on cache-on and cache-off instances must
	// produce identical observable results.
	script := func(f *FileSystem) []string {
		var log []string
		record := func(ctx string, err abi.Errno) { log = append(log, ctx+":"+err.String()) }
		mustMkdirAll(t, f, "/w/d")
		mustWrite(t, f, "/w/d/a", "alpha")
		var err abi.Errno
		f.Symlink("a", "/w/d/l", func(e abi.Errno) { err = e })
		record("symlink", err)
		log = append(log, "read:"+mustRead(t, f, "/w/d/l"))
		f.Stat("/w/d/ghost", func(_ abi.Stat, e abi.Errno) { err = e })
		record("ghost", err)
		f.Rename("/w/d", "/w/e", func(e abi.Errno) { err = e })
		record("rename", err)
		log = append(log, "read2:"+mustRead(t, f, "/w/e/a"))
		f.Stat("/w/d/a", func(_ abi.Stat, e abi.Errno) { err = e })
		record("gone", err)
		f.Unlink("/w/e/l", func(e abi.Errno) { err = e })
		record("unlink", err)
		var names []string
		f.Readdir("/w/e", func(ents []abi.Dirent, e abi.Errno) {
			for _, d := range ents {
				names = append(names, d.Name)
			}
		})
		log = append(log, "ls:"+joinNames(names))
		return log
	}
	on := newFS()
	off := newFS()
	off.SetCaching(false)
	a, b := script(on), script(off)
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cache-on %q != cache-off %q", a[i], b[i])
		}
	}
}

func joinNames(names []string) string {
	out := ""
	for _, n := range names {
		out += n + ","
	}
	return out
}

func TestVectoredHandleRoundTrip(t *testing.T) {
	f := newFS()
	var h FileHandle
	f.Open("/v", abi.O_RDWR|abi.O_CREAT, 0o644, func(fh FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		h = fh
	})
	// Pwritev lands the segments back to back without coalescing.
	var n int
	h.Pwritev(0, [][]byte{[]byte("abc"), []byte("defg"), []byte("hi")}, func(m int, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("pwritev: %v", e)
		}
		n = m
	})
	if n != 9 {
		t.Fatalf("pwritev wrote %d, want 9", n)
	}
	if got := mustRead(t, f, "/v"); got != "abcdefghi" {
		t.Fatalf("content after pwritev: %q", got)
	}
	// Preadv gathers; segment shapes are backend-chosen but the bytes
	// must concatenate to the requested range.
	var segs [][]byte
	h.Preadv(2, []int{3, 10}, func(s [][]byte, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("preadv: %v", e)
		}
		segs = s
	})
	var all []byte
	for _, s := range segs {
		all = append(all, s...)
	}
	if string(all) != "cdefghi" {
		t.Fatalf("preadv gathered %q", all)
	}
	// Vectored overwrite at an offset.
	h.Pwritev(3, [][]byte{[]byte("XY")}, func(int, abi.Errno) {})
	if got := mustRead(t, f, "/v"); got != "abcXYfghi" {
		t.Fatalf("content after offset pwritev: %q", got)
	}
	h.Close(func(abi.Errno) {})
}

func TestQuotaEnforcedOnPwritev(t *testing.T) {
	l := NewLocalStorageFS(now, 10)
	f := NewFileSystem(l, func() int64 { return clock })
	var h FileHandle
	f.Open("/q", abi.O_WRONLY|abi.O_CREAT, 0o644, func(fh FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		h = fh
	})
	var err abi.Errno
	h.Pwritev(0, [][]byte{[]byte("12345"), []byte("67890"), []byte("!")}, func(_ int, e abi.Errno) { err = e })
	if err != abi.ENOSPC {
		t.Fatalf("over-quota pwritev = %v, want ENOSPC", err)
	}
	h.Pwritev(0, [][]byte{[]byte("12345"), []byte("67890")}, func(_ int, e abi.Errno) { err = e })
	if err != abi.OK || l.Used() != 10 {
		t.Fatalf("at-quota pwritev = %v, used %d", err, l.Used())
	}
	h.Close(func(abi.Errno) {})
}
