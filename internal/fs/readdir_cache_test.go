package fs

import (
	"testing"

	"repro/internal/abi"
)

// readdirNames lists a directory and returns the entry names, failing the
// test on error.
func readdirNames(t *testing.T, f *FileSystem, p string) []string {
	t.Helper()
	var names []string
	var err abi.Errno = -1
	f.Readdir(p, func(ents []abi.Dirent, e abi.Errno) {
		err = e
		for _, d := range ents {
			names = append(names, d.Name)
		}
	})
	if err != abi.OK {
		t.Fatalf("readdir %s: %v", p, err)
	}
	return names
}

// TestReaddirCacheShortCircuitsBackend: repeated listings of an unchanged
// directory must not re-hit the backend (ROADMAP "readdir caching" item).
func TestReaddirCacheShortCircuitsBackend(t *testing.T) {
	f, counted := newCountedFS(t, "x")
	first := readdirNames(t, f, "/mnt/a/b")
	cold := counted.readdirs
	if cold == 0 {
		t.Fatal("cold readdir never reached the backend")
	}
	for i := 0; i < 5; i++ {
		got := readdirNames(t, f, "/mnt/a/b")
		if len(got) != len(first) || got[0] != first[0] {
			t.Fatalf("warm listing diverged: %v vs %v", got, first)
		}
	}
	if counted.readdirs != cold {
		t.Fatalf("warm readdirs reached the backend: %d -> %d", cold, counted.readdirs)
	}
	s := f.CacheStats()
	if s.ReaddirHits < 5 {
		t.Fatalf("expected >=5 readdir hits, got %+v", s)
	}
}

// TestReaddirCacheInvalidation: every class of mutation that changes a
// listing must drop the cached listing — create, unlink, rename in, and
// subtree removal.
func TestReaddirCacheInvalidation(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/d")
	mustWrite(t, f, "/d/one", "1")

	if got := readdirNames(t, f, "/d"); len(got) != 1 || got[0] != "one" {
		t.Fatalf("initial listing %v", got)
	}

	// Create: the new entry must appear.
	mustWrite(t, f, "/d/two", "2")
	if got := readdirNames(t, f, "/d"); len(got) != 2 || got[1] != "two" {
		t.Fatalf("after create: %v", got)
	}

	// Unlink: the entry must disappear.
	var err abi.Errno = -1
	f.Unlink("/d/one", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink: %v", err)
	}
	if got := readdirNames(t, f, "/d"); len(got) != 1 || got[0] != "two" {
		t.Fatalf("after unlink: %v", got)
	}

	// Rename into the directory from elsewhere: both listings change.
	mustMkdirAll(t, f, "/e")
	mustWrite(t, f, "/e/three", "3")
	readdirNames(t, f, "/e") // warm the source listing
	err = -1
	f.Rename("/e/three", "/d/three", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rename: %v", err)
	}
	if got := readdirNames(t, f, "/d"); len(got) != 2 || got[0] != "three" {
		t.Fatalf("after rename, dest: %v", got)
	}
	if got := readdirNames(t, f, "/e"); len(got) != 0 {
		t.Fatalf("after rename, source: %v", got)
	}

	// Subtree removal: the parent listing updates, and the removed dir's
	// own cached listing can't resurrect it.
	mustMkdirAll(t, f, "/d/sub")
	readdirNames(t, f, "/d")
	readdirNames(t, f, "/d/sub")
	err = -1
	f.Rmdir("/d/sub", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rmdir: %v", err)
	}
	if got := readdirNames(t, f, "/d"); len(got) != 2 {
		t.Fatalf("after rmdir: %v", got)
	}
	gotErr := abi.OK
	f.Readdir("/d/sub", func(_ []abi.Dirent, e abi.Errno) { gotErr = e })
	if gotErr != abi.ENOENT {
		t.Fatalf("removed dir still listable: %v", gotErr)
	}
}

// TestReaddirCacheOffBypasses: with caching disabled every listing goes
// to the backend (the differential cache-off configuration).
func TestReaddirCacheOffBypasses(t *testing.T) {
	f, counted := newCountedFS(t, "x")
	f.SetCaching(false)
	readdirNames(t, f, "/mnt/a/b")
	readdirNames(t, f, "/mnt/a/b")
	if counted.readdirs < 2 {
		t.Fatalf("cache-off listings did not reach the backend: %d", counted.readdirs)
	}
}
