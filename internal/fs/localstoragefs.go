package fs

import (
	"repro/internal/abi"
)

// LocalStorageFS models BrowserFS's localStorage backend: a persistent,
// writable store subject to the browser's storage quota (~5 MB in the
// paper's era). Writes that would exceed the quota fail with ENOSPC —
// the failure mode web applications using localStorage-backed mounts
// must handle.
//
// It decorates a MemFS with usage accounting; "persistence" in the
// simulator means the backend object outlives kernel reboots when the
// host test reuses it (Snapshot/Restore cover the serialize-to-string
// behaviour localStorage imposes).
type LocalStorageFS struct {
	*MemFS
	quota int64
	used  int64
}

// DefaultLocalStorageQuota is the classic 5 MB browser limit.
const DefaultLocalStorageQuota = 5 << 20

// NewLocalStorageFS creates a quota-limited writable backend. quota<=0
// selects the default.
func NewLocalStorageFS(now func() int64, quota int64) *LocalStorageFS {
	if quota <= 0 {
		quota = DefaultLocalStorageQuota
	}
	return &LocalStorageFS{MemFS: NewMemFS(now), quota: quota}
}

// Name implements Backend.
func (l *LocalStorageFS) Name() string { return "localstorage" }

// Used reports bytes charged against the quota.
func (l *LocalStorageFS) Used() int64 { return l.used }

// Quota reports the configured limit.
func (l *LocalStorageFS) Quota() int64 { return l.quota }

// WriteBackable opts out of the VFS write-back path: quota enforcement
// must observe (and reject) every write at write time, not at flush.
func (l *LocalStorageFS) WriteBackable() bool { return false }

// Open wraps handles so writes go through quota accounting. localStorage
// stores string key/values, so the per-file overhead of the real backend
// is ignored; only content bytes count.
func (l *LocalStorageFS) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	// Capture pre-truncation size so O_TRUNC refunds quota.
	l.MemFS.Lstat(p, func(st abi.Stat, serr abi.Errno) {
		if serr == abi.OK && flags&abi.O_TRUNC != 0 {
			l.used -= st.Size
			if l.used < 0 {
				l.used = 0
			}
		}
		l.MemFS.Open(p, flags, mode, func(h FileHandle, err abi.Errno) {
			if err != abi.OK {
				cb(nil, err)
				return
			}
			cb(&quotaHandle{FileHandle: h, fs: l}, abi.OK)
		})
	})
}

// Unlink refunds quota for removed content.
func (l *LocalStorageFS) Unlink(p string, cb func(abi.Errno)) {
	l.MemFS.Lstat(p, func(st abi.Stat, serr abi.Errno) {
		l.MemFS.Unlink(p, func(err abi.Errno) {
			if err == abi.OK && serr == abi.OK {
				l.used -= st.Size
				if l.used < 0 {
					l.used = 0
				}
			}
			cb(err)
		})
	})
}

// quotaHandle enforces the quota on growth.
type quotaHandle struct {
	FileHandle
	fs *LocalStorageFS
}

func (q *quotaHandle) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	q.FileHandle.Stat(func(st abi.Stat, err abi.Errno) {
		if err != abi.OK {
			cb(0, err)
			return
		}
		growth := off + int64(len(data)) - st.Size
		if growth < 0 {
			growth = 0
		}
		if q.fs.used+growth > q.fs.quota {
			cb(0, abi.ENOSPC)
			return
		}
		q.FileHandle.Pwrite(off, data, func(n int, err abi.Errno) {
			if err == abi.OK {
				actual := off + int64(n) - st.Size
				if actual > 0 {
					q.fs.used += actual
				}
			}
			cb(n, err)
		})
	})
}

// Pwritev enforces the quota on the summed growth before delegating, so
// a vectored write cannot sneak past the limit buffer by buffer.
func (q *quotaHandle) Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno)) {
	q.FileHandle.Stat(func(st abi.Stat, err abi.Errno) {
		if err != abi.OK {
			cb(0, err)
			return
		}
		var total int64
		for _, b := range bufs {
			total += int64(len(b))
		}
		growth := off + total - st.Size
		if growth < 0 {
			growth = 0
		}
		if q.fs.used+growth > q.fs.quota {
			cb(0, abi.ENOSPC)
			return
		}
		q.FileHandle.Pwritev(off, bufs, func(n int, err abi.Errno) {
			if err == abi.OK {
				actual := off + int64(n) - st.Size
				if actual > 0 {
					q.fs.used += actual
				}
			}
			cb(n, err)
		})
	})
}

func (q *quotaHandle) Truncate(size int64, cb func(abi.Errno)) {
	q.FileHandle.Stat(func(st abi.Stat, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		growth := size - st.Size
		if q.fs.used+growth > q.fs.quota {
			cb(abi.ENOSPC)
			return
		}
		q.FileHandle.Truncate(size, func(err abi.Errno) {
			if err == abi.OK {
				q.fs.used += growth
				if q.fs.used < 0 {
					q.fs.used = 0
				}
			}
			cb(err)
		})
	})
}
