package fs

// The write half of the zero-copy data plane. The read path (readg)
// grants a process leases on *full* pages; the write path inverts the
// flow: the kernel leases the process *empty* arena slots (wgalloc), the
// process stages payload bytes into them with ordinary stores through
// its own mapping, and submits (slot, offset, length) references
// (writeg) instead of payloads. The fs layer then adopts the referenced
// bytes *in place* as dirty write-back state: the dirty extent aliases
// the arena, coalesces with its neighbours, and is handed to the ordered
// vectored flusher exactly like a copied extent — zero per-byte
// crossings end to end for the warm sequential case.
//
// Ownership. A staged slot carries one pin for the guest lease (taken at
// AllocWriteSlots, returned via UnleasePage) plus one pin per adopter —
// a dirty extent aliasing it, or a pipe segment buffered from it. The
// guest's unlease *releases* staging ownership: the slot frees when no
// adopter pins remain, or freezes (bytes intact) until the last adopter
// unpins — identical to a leased cache page outliving unlink/truncate.
// A well-behaved staging allocator only ever appends within a slot, so
// already-submitted (adopted) regions are never rewritten; a misbehaving
// guest can only corrupt bytes it could have written anyway.

// SlotRef names staged payload bytes in the arena: Len bytes starting at
// byte Off of pool slot Slot (abi.WriteRef is its wire form).
type SlotRef struct {
	Slot int
	Off  int
	Len  int
}

// SlotWriter is the optional FileHandle extension the zero-copy write
// path drives: adopt staged slot bytes at file offset off as buffered
// dirty state without copying. ok=false refuses (stale generation,
// write-back off, write-through backend) and the caller falls back to
// the copy path — same bytes, one copy, byte-identical result. On
// success the handle keeps the referenced bytes alive (pinning the slots
// it aliases) until the flusher lands them; the caller still owes the
// guest-lease unlease as usual.
type SlotWriter interface {
	PwriteSlots(off int64, refs []SlotRef) (int, bool)
}

// AllocWriteSlots leases up to n empty arena slots for write staging:
// each returned slot is pinned (the guest lease), charged to this
// cache's quota, and registered as write-staged. Under arena pressure
// cold cached files are evicted LRU-first; fewer than n (possibly zero)
// slots are returned when every quota slot is leased out — the caller
// degrades to the copy path.
func (f *FileSystem) AllocWriteSlots(n int) []int {
	c := f.pc
	var slots []int
	for len(slots) < n {
		slot, ok := c.pool.alloc(c.att)
		if !ok {
			if !c.evictOneLRU() {
				break
			}
			continue
		}
		c.pool.pin(slot)
		c.wstaged[slot] = true
		c.grantedPages.Add(1)
		slots = append(slots, slot)
	}
	return slots
}

// SlotBytes returns the live arena bytes a SlotRef names, cap-clamped so
// no append through the slice can ever touch a neighbouring slot.
func (f *FileSystem) SlotBytes(r SlotRef) []byte {
	base := r.Slot*PageSize + r.Off
	return f.pc.pool.arena[base : base+r.Len : base+r.Len]
}

// ValidSlotRef bounds-checks a wire-supplied reference against the
// arena: a hostile (slot, off, len) must fail the call, not panic the
// kernel.
func (f *FileSystem) ValidSlotRef(r SlotRef) bool {
	return r.Slot >= 0 && r.Slot < f.pc.pool.slots &&
		r.Off >= 0 && r.Len > 0 && r.Off+r.Len <= PageSize &&
		f.pc.pool.arena != nil
}

// PinPage takes one kernel-internal pin on a slot — an adopter (pipe
// segment, split grant piece) keeping staged or granted bytes alive
// independently of the guest's lease. Not lease-accounted.
func (f *FileSystem) PinPage(slot int) { f.pc.pool.pin(slot) }

// UnpinPage returns a pin taken with PinPage (or by an adopter).
func (f *FileSystem) UnpinPage(slot int) { f.pc.pool.unpin(slot) }

// LeasePage takes one pin accounted as a granted lease. The batched
// read path uses it when one granted ref is split across two reply
// frames: the extra frame's lease is taken here so pages granted and
// pages returned stay balanced.
func (f *FileSystem) LeasePage(slot int) {
	f.pc.pool.pin(slot)
	f.pc.grantedPages.Add(1)
}

// WriteStagedSlots returns the number of slots currently leased out for
// write staging (diagnostics/tests).
func (f *FileSystem) WriteStagedSlots() int { return len(f.pc.wstaged) }
