package fs

import (
	"archive/zip"
	"bytes"
	"io"
	"path"

	"repro/internal/abi"
)

// ZipFS is BrowserFS's zip-file backend: a read-only file system served
// out of an in-memory zip archive. The central directory is indexed at
// mount time; file contents decompress lazily on first open and are then
// cached, analogous to the HTTP backend.
type ZipFS struct {
	files map[string]*zip.File
	dirs  map[string]map[string]bool
	cache map[string][]byte
}

// NewZipFS indexes a zip archive held in memory.
func NewZipFS(archive []byte) (*ZipFS, error) {
	zr, err := zip.NewReader(bytes.NewReader(archive), int64(len(archive)))
	if err != nil {
		return nil, err
	}
	z := &ZipFS{
		files: map[string]*zip.File{},
		dirs:  map[string]map[string]bool{"/": {}},
		cache: map[string][]byte{},
	}
	for _, f := range zr.File {
		p := Clean("/" + f.Name)
		if f.FileInfo().IsDir() {
			if z.dirs[p] == nil {
				z.dirs[p] = map[string]bool{}
			}
			continue
		}
		z.files[p] = f
		for dir := path.Dir(p); ; dir = path.Dir(dir) {
			if z.dirs[dir] == nil {
				z.dirs[dir] = map[string]bool{}
			}
			if dir == "/" {
				break
			}
		}
		z.dirs[path.Dir(p)][path.Base(p)] = false
		for dir := path.Dir(p); dir != "/"; dir = path.Dir(dir) {
			z.dirs[path.Dir(dir)][path.Base(dir)] = true
		}
	}
	return z, nil
}

// Name implements Backend.
func (z *ZipFS) Name() string { return "zipfs" }

// ReadOnly implements Backend.
func (z *ZipFS) ReadOnly() bool { return true }

// Stat implements Backend.
func (z *ZipFS) Stat(p string, cb func(abi.Stat, abi.Errno)) {
	p = Clean(p)
	if _, ok := z.dirs[p]; ok {
		cb(abi.Stat{Mode: abi.S_IFDIR | 0o555, Nlink: 1}, abi.OK)
		return
	}
	if f, ok := z.files[p]; ok {
		cb(abi.Stat{Mode: abi.S_IFREG | 0o444, Size: int64(f.UncompressedSize64), Nlink: 1}, abi.OK)
		return
	}
	cb(abi.Stat{}, abi.ENOENT)
}

// Lstat implements Backend.
func (z *ZipFS) Lstat(p string, cb func(abi.Stat, abi.Errno)) { z.Stat(p, cb) }

func (z *ZipFS) contents(p string) ([]byte, abi.Errno) {
	if b, ok := z.cache[p]; ok {
		return b, abi.OK
	}
	f, ok := z.files[p]
	if !ok {
		return nil, abi.ENOENT
	}
	rc, err := f.Open()
	if err != nil {
		return nil, abi.EIO
	}
	defer rc.Close()
	// Decompress straight into an exact-size buffer (the member's
	// declared uncompressed size) instead of io.ReadAll's grow-and-copy
	// staging: one allocation, zero intermediate copies. The resident
	// buffer then serves page faults by stable subslices (PreadSlice),
	// so a cold fault's only copy is into its destination arena slot.
	b := make([]byte, f.UncompressedSize64)
	if _, err := io.ReadFull(rc, b); err != nil {
		return nil, abi.EIO // truncated or corrupt member
	}
	// A well-formed member ends exactly at its declared size. Reading
	// one byte past it both rejects oversized members and drives the
	// reader to EOF, where archive/zip verifies the CRC.
	if n, err := rc.Read(make([]byte, 1)); n != 0 || (err != nil && err != io.EOF) {
		return nil, abi.EIO
	}
	z.cache[p] = b
	return b, abi.OK
}

// Open implements Backend.
func (z *ZipFS) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	p = Clean(p)
	if flags&abi.O_ACCMODE != abi.O_RDONLY || flags&(abi.O_CREAT|abi.O_TRUNC) != 0 {
		cb(nil, abi.EROFS)
		return
	}
	if _, ok := z.dirs[p]; ok {
		cb(nil, abi.EISDIR)
		return
	}
	data, err := z.contents(p)
	if err != abi.OK {
		cb(nil, err)
		return
	}
	cb(&httpHandle{path: p, data: data}, abi.OK)
}

// Readdir implements Backend.
func (z *ZipFS) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	p = Clean(p)
	children, ok := z.dirs[p]
	if !ok {
		if _, isFile := z.files[p]; isFile {
			cb(nil, abi.ENOTDIR)
		} else {
			cb(nil, abi.ENOENT)
		}
		return
	}
	ents := make([]abi.Dirent, 0, len(children))
	for name, isDir := range children {
		t := abi.DT_REG
		if isDir {
			t = abi.DT_DIR
		}
		ents = append(ents, abi.Dirent{Name: name, Type: t})
	}
	cb(ents, abi.OK)
}

// Mutating operations fail with EROFS.
func (z *ZipFS) Mkdir(p string, m uint32, cb func(abi.Errno))    { cb(abi.EROFS) }
func (z *ZipFS) Rmdir(p string, cb func(abi.Errno))              { cb(abi.EROFS) }
func (z *ZipFS) Unlink(p string, cb func(abi.Errno))             { cb(abi.EROFS) }
func (z *ZipFS) Rename(o, n string, cb func(abi.Errno))          { cb(abi.EROFS) }
func (z *ZipFS) Readlink(p string, cb func(string, abi.Errno))   { cb("", abi.EINVAL) }
func (z *ZipFS) Symlink(t, l string, cb func(abi.Errno))         { cb(abi.EROFS) }
func (z *ZipFS) Utimes(p string, a, m int64, cb func(abi.Errno)) { cb(abi.EROFS) }
