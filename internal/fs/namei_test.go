package fs

import (
	"strings"
	"testing"

	"repro/internal/abi"
)

// Walker tests: per-component resolution, `..` escapes, trailing
// slashes, intermediate symlinks, and mount crossings.

// buildWalkerFS stages a tree exercising every walker feature:
//
//	/dir/file            regular
//	/dir/sub/deep        regular
//	/dir/rel -> file     relative symlink
//	/sdir -> /dir        symlink used as an intermediate component
//	/abs -> /dir/file    absolute symlink to a file
//	/esc -> ../../dir/file  `..`-escaping relative target (clamps at /)
//	/dir/sub/up -> ..    relative symlink climbing out of its directory
//	/l1 -> /l2, /l2 -> /l1  loop
func buildWalkerFS(t *testing.T) *FileSystem {
	t.Helper()
	f := newFS()
	mustMkdirAll(t, f, "/dir/sub")
	mustWrite(t, f, "/dir/file", "payload")
	mustWrite(t, f, "/dir/sub/deep", "deep")
	link := func(target, linkp string) {
		var err abi.Errno = -1
		f.Symlink(target, linkp, func(e abi.Errno) { err = e })
		if err != abi.OK {
			t.Fatalf("symlink %s -> %s: %v", linkp, target, err)
		}
	}
	link("file", "/dir/rel")
	link("/dir", "/sdir")
	link("/dir/sub", "/sdir2")
	link("/dir/file", "/abs")
	link("../../dir/file", "/esc")
	link("..", "/dir/sub/up")
	link("/l2", "/l1")
	link("/l1", "/l2")
	return f
}

func TestWalkerStatTable(t *testing.T) {
	f := buildWalkerFS(t)
	cases := []struct {
		path    string
		want    abi.Errno
		wantDir bool // when OK: expect a directory
	}{
		// Plain resolution.
		{"/dir/file", abi.OK, false},
		{"/dir", abi.OK, true},
		{"/dir/sub/deep", abi.OK, false},
		// `..` and `.` collapse, clamping at the root.
		{"/..", abi.OK, true},
		{"/../..", abi.OK, true},
		{"/../dir/file", abi.OK, false},
		{"/dir/../dir/./file", abi.OK, false},
		{"/dir/sub/../../dir/file", abi.OK, false},
		// Trailing slashes require directories ("p/." is the same).
		{"/dir/", abi.OK, true},
		{"/dir/file/", abi.ENOTDIR, false},
		{"/dir/sub/", abi.OK, true},
		{"/missing/", abi.ENOENT, false},
		{"/dir/.", abi.OK, true},
		{"/dir/file/.", abi.ENOTDIR, false},
		{"/.", abi.OK, true},
		// Symlinks in intermediate components.
		{"/sdir/file", abi.OK, false},
		{"/sdir/sub/deep", abi.OK, false},
		{"/sdir/", abi.OK, true},
		// Relative, absolute, and `..`-escaping targets.
		{"/dir/rel", abi.OK, false},
		{"/abs", abi.OK, false},
		{"/esc", abi.OK, false},
		// A symlink that climbs out of its directory mid-path.
		{"/dir/sub/up/file", abi.OK, false},
		{"/dir/sub/up/sub/deep", abi.OK, false},
		// ".." after a symlink resolves against the *target* (/dir/sub),
		// not the link's name — lexical collapse would yield "/file".
		{"/sdir2/../file", abi.OK, false},
		{"/sdir2/../sub/deep", abi.OK, false},
		{"/sdir2/..", abi.OK, true},
		// Loops and walks through non-directories.
		{"/l1", abi.ELOOP, false},
		{"/l1/file", abi.ELOOP, false},
		{"/dir/file/x", abi.ENOTDIR, false},
		{"/missing/x", abi.ENOENT, false},
	}
	for _, c := range cases {
		var st abi.Stat
		var err abi.Errno = -1
		f.Stat(c.path, func(s abi.Stat, e abi.Errno) { st, err = s, e })
		if err != c.want {
			t.Errorf("Stat(%q) = %v, want %v", c.path, err, c.want)
			continue
		}
		if err == abi.OK && st.IsDir() != c.wantDir {
			t.Errorf("Stat(%q).IsDir() = %v, want %v", c.path, st.IsDir(), c.wantDir)
		}
	}
}

func TestWalkerIntermediateSymlinkRead(t *testing.T) {
	f := buildWalkerFS(t)
	// The old scheme only followed *trailing* symlinks; reading through
	// an intermediate one must now work.
	if got := mustRead(t, f, "/sdir/sub/deep"); got != "deep" {
		t.Fatalf("read through intermediate symlink: %q", got)
	}
	if got := mustRead(t, f, "/dir/sub/up/file"); got != "payload" {
		t.Fatalf("read through ..-symlink: %q", got)
	}
	if got := mustRead(t, f, "/esc"); got != "payload" {
		t.Fatalf("read through root-escaping target: %q", got)
	}
	// POSIX resolves "link/.." against the link target: /sdir2 -> /dir/sub,
	// so /sdir2/../file is /dir/file. A lexical Clean would read /file.
	mustWrite(t, f, "/file", "WRONG: lexical dotdot")
	if got := mustRead(t, f, "/sdir2/../file"); got != "payload" {
		t.Fatalf("..-after-symlink resolved lexically: %q", got)
	}
}

// faultyBackend injects an error on every operation touching a chosen
// path (models a broken network/zip backend).
type faultyBackend struct {
	Backend
	bad string
	err abi.Errno
}

func (fb *faultyBackend) Lstat(p string, cb func(abi.Stat, abi.Errno)) {
	if p == fb.bad {
		cb(abi.Stat{}, fb.err)
		return
	}
	fb.Backend.Lstat(p, cb)
}

func (fb *faultyBackend) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	if p == fb.bad {
		cb(nil, fb.err)
		return
	}
	fb.Backend.Readdir(p, cb)
}

func TestMountSynthesisDoesNotMaskBackendErrors(t *testing.T) {
	// /usr is an ancestor of a mount, but the root backend fails with
	// EIO there — the walker must surface the failure, not fabricate a
	// healthy directory.
	img := NewMemFS(now)
	faulty := &faultyBackend{Backend: img, bad: "/usr", err: abi.EIO}
	f := NewFileSystem(faulty, func() int64 { return clock })
	f.Mount("/usr/share/texlive", NewMemFS(now))
	var err abi.Errno
	f.Stat("/usr", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.EIO {
		t.Fatalf("stat of EIO path = %v, want EIO", err)
	}
	f.Stat("/usr/share", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.EIO {
		t.Fatalf("walk through EIO component = %v, want EIO", err)
	}
	// A genuinely missing ancestor still synthesizes.
	f2 := NewFileSystem(NewMemFS(now), func() int64 { return clock })
	f2.Mount("/opt/data", NewMemFS(now))
	var st abi.Stat
	f2.Stat("/opt", func(s abi.Stat, e abi.Errno) { st, err = s, e })
	if err != abi.OK || !st.IsDir() {
		t.Fatalf("synthetic ancestor: %v dir=%v", err, st.IsDir())
	}
}

func TestResolveReturnsCanonicalPath(t *testing.T) {
	// Resolve reports the symlink-free path chdir must store: resolving
	// "link/../x" against the link *target* can name a directory that
	// the lexical cleaning ("/a/b") does not even contain.
	f := buildWalkerFS(t)
	cases := []struct{ in, want string }{
		{"/dir", "/dir"},
		{"/sdir", "/dir"},
		{"/sdir/sub", "/dir/sub"},
		{"/sdir2/..", "/dir"},
		{"/dir/sub/up", "/dir"},
		{"/dir/../dir/sub/", "/dir/sub"},
	}
	for _, c := range cases {
		var got string
		var err abi.Errno = -1
		f.Resolve(c.in, func(p string, _ abi.Stat, e abi.Errno) { got, err = p, e })
		if err != abi.OK || got != c.want {
			t.Errorf("Resolve(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestDotDotPathNotStaleAfterIntermediateRemoval(t *testing.T) {
	// "/a/../b" must stop resolving once /a is gone, cache or no cache:
	// ".."-containing walks are never whole-walk cached because their
	// validity depends on intermediate components.
	f := newFS()
	mustMkdirAll(t, f, "/a")
	mustWrite(t, f, "/b", "data")
	var err abi.Errno = -1
	f.Stat("/a/../b", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("stat via ..: %v", err)
	}
	f.Rmdir("/a", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rmdir: %v", err)
	}
	f.Stat("/a/../b", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("stat via removed intermediate = %v, want ENOENT", err)
	}
	// /b itself is of course still there.
	if got := mustRead(t, f, "/b"); got != "data" {
		t.Fatalf("/b content: %q", got)
	}
}

func TestAbsPreservesDotDotAndTrailingSlash(t *testing.T) {
	cases := []struct{ cwd, p, want string }{
		{"/data", "f", "/data/f"},
		{"/data", "/x/y", "/x/y"},
		{"/data", "sub/../f", "/data/sub/../f"}, // ".." survives for the walker
		{"/data", "..", "/data/.."},
		{"/data", "d/", "/data/d/"},
		{"/data", "d/.", "/data/d/"}, // "p/." keeps the dir requirement
		{"/data", "./f", "/data/f"},
		{"/", "..", "/.."},
		{"/data", "", "/data"},
		{"/data", ".", "/data"},
	}
	for _, c := range cases {
		if got := Abs(c.cwd, c.p); got != c.want {
			t.Errorf("Abs(%q, %q) = %q, want %q", c.cwd, c.p, got, c.want)
		}
	}
	// End to end: the preserved ".." resolves against a symlink target.
	f := buildWalkerFS(t)
	if got := mustRead(t, f, Abs("/", "sdir2/../file")); got != "payload" {
		t.Fatalf("Abs + walker ..-after-symlink: %q", got)
	}
}

func TestLookupErrorIsNotCreatable(t *testing.T) {
	// An EIO on the final component must surface as EIO, never as "the
	// destination is free" — rename/symlink must not proceed onto a
	// path whose state could not be determined.
	img := NewMemFS(now)
	f := NewFileSystem(&faultyBackend{Backend: img, bad: "/x", err: abi.EIO}, func() int64 { return clock })
	mustWrite(t, f, "/ok", "data")
	var err abi.Errno
	f.Rename("/ok", "/x", func(e abi.Errno) { err = e })
	if err != abi.EIO {
		t.Fatalf("rename onto EIO path = %v, want EIO", err)
	}
	f.Symlink("/ok", "/x", func(e abi.Errno) { err = e })
	if err != abi.EIO {
		t.Fatalf("symlink onto EIO path = %v, want EIO", err)
	}
	f.Open("/x", abi.O_WRONLY|abi.O_CREAT, 0o644, func(_ FileHandle, e abi.Errno) { err = e })
	if err != abi.EIO {
		t.Fatalf("create onto EIO path = %v, want EIO", err)
	}
	if got := mustRead(t, f, "/ok"); got != "data" {
		t.Fatalf("source disturbed: %q", got)
	}
}

func TestWalkerTrailingSlashOps(t *testing.T) {
	f := buildWalkerFS(t)
	expect := func(ctx string, got, want abi.Errno) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %v, want %v", ctx, got, want)
		}
	}
	var err abi.Errno
	// open("file/") can never succeed; open("dir/") opens the directory.
	f.Open("/dir/file/", abi.O_RDONLY, 0, func(_ FileHandle, e abi.Errno) { err = e })
	expect(`open("/dir/file/")`, err, abi.ENOTDIR)
	f.Open("/dir/", abi.O_RDONLY, 0, func(_ FileHandle, e abi.Errno) { err = e })
	expect(`open("/dir/")`, err, abi.OK)
	// O_CREAT cannot create a directory.
	f.Open("/newfile/", abi.O_WRONLY|abi.O_CREAT, 0o644, func(_ FileHandle, e abi.Errno) { err = e })
	expect(`open("/newfile/", O_CREAT)`, err, abi.EISDIR)
	f.Stat("/newfile", func(_ abi.Stat, e abi.Errno) { err = e })
	expect("no side effect of refused create", err, abi.ENOENT)
	// mkdir("d/") is fine; rmdir("d/") too.
	f.Mkdir("/nd/", 0o755, func(e abi.Errno) { err = e })
	expect(`mkdir("/nd/")`, err, abi.OK)
	f.Rmdir("/nd/", func(e abi.Errno) { err = e })
	expect(`rmdir("/nd/")`, err, abi.OK)
	// unlink("p/") never names a file.
	f.Unlink("/dir/file/", func(e abi.Errno) { err = e })
	expect(`unlink("/dir/file/")`, err, abi.ENOTDIR)
	f.Unlink("/dir/", func(e abi.Errno) { err = e })
	expect(`unlink("/dir/")`, err, abi.EISDIR)
	f.Unlink("/missing/", func(e abi.Errno) { err = e })
	expect(`unlink("/missing/")`, err, abi.ENOENT)
	// A trailing slash on a symlink follows it (POSIX "p/" ≡ "p/.").
	var st abi.Stat
	f.Lstat("/sdir/", func(s abi.Stat, e abi.Errno) { st, err = s, e })
	if err != abi.OK || !st.IsDir() {
		t.Errorf(`lstat("/sdir/") = %v dir=%v, want directory`, err, st.IsDir())
	}
}

func TestWalkerMountCrossing(t *testing.T) {
	f := newFS()
	sub := NewMemFS(now)
	mustMkdirAll(t, f, "/mnt")
	f.Mount("/mnt/vol", sub)
	mustWrite(t, f, "/mnt/vol/data.txt", "on the mount")
	// Cross the mount through a symlink in an intermediate component.
	var err abi.Errno
	f.Symlink("/mnt/vol", "/vol", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("symlink: %v", err)
	}
	if got := mustRead(t, f, "/vol/data.txt"); got != "on the mount" {
		t.Fatalf("read across mount via symlink: %q", got)
	}
	// The file must live in the mounted backend.
	sub.Stat("/data.txt", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatal("file not routed to mounted backend")
	}
	// `..` inside the mount climbs back into the parent namespace.
	mustWrite(t, f, "/mnt/here", "outside")
	if got := mustRead(t, f, "/mnt/vol/../here"); got != "outside" {
		t.Fatalf("..-climb out of mount: %q", got)
	}
}

// TestNestedMountSynthesis is the regression test for mount points nested
// under directories no backend provides: every prefix reported by
// Mounts() must be reachable — stat-able and visible in its parent's
// readdir — from the root.
func TestNestedMountSynthesis(t *testing.T) {
	f := newFS()
	f.Mount("/usr/share/texlive", NewMemFS(now))
	f.Mount("/opt/data", NewMemFS(now))
	mustWrite(t, f, "/rootfile", "x")

	readdirNames := func(p string) []string {
		var names []string
		var err abi.Errno = -1
		f.Readdir(p, func(ents []abi.Dirent, e abi.Errno) {
			err = e
			for _, d := range ents {
				names = append(names, d.Name)
			}
		})
		if err != abi.OK {
			t.Fatalf("readdir(%s): %v", p, err)
		}
		return names
	}
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}

	// `ls /` shows all mounts even though the root backend has neither
	// /usr nor /opt.
	root := readdirNames("/")
	for _, want := range []string{"usr", "opt", "rootfile"} {
		if !has(root, want) {
			t.Errorf("readdir(/) = %v, missing %q", root, want)
		}
	}
	if !has(readdirNames("/usr"), "share") {
		t.Error("readdir(/usr) missing share")
	}
	if !has(readdirNames("/usr/share"), "texlive") {
		t.Error("readdir(/usr/share) missing texlive")
	}

	// Regression against Mounts(): walk every prefix component by
	// component through Stat and the parent's Readdir.
	for _, prefix := range f.MountPrefixes() {
		if prefix == "/" {
			continue
		}
		var st abi.Stat
		var err abi.Errno = -1
		f.Stat(prefix, func(s abi.Stat, e abi.Errno) { st, err = s, e })
		if err != abi.OK || !st.IsDir() {
			t.Errorf("mount prefix %s: stat = %v dir=%v", prefix, err, st.IsDir())
		}
		parts := strings.Split(strings.TrimPrefix(prefix, "/"), "/")
		cur := "/"
		for _, part := range parts {
			if !has(readdirNames(cur), part) {
				t.Errorf("readdir(%s) missing %q on the way to mount %s", cur, part, prefix)
			}
			if cur == "/" {
				cur += part
			} else {
				cur += "/" + part
			}
		}
	}

	// Synthetic ancestors are directories of the namespace, not of any
	// backend: files cannot be created in them directly...
	var werr abi.Errno
	f.WriteFile("/usr/stray", []byte("x"), 0o644, func(e abi.Errno) { werr = e })
	if werr != abi.ENOENT {
		t.Errorf("create under synthetic dir = %v, want ENOENT", werr)
	}
	// ...but Mkdir materializes them for real, so MkdirAll (and then
	// file creation) beneath a nested mount's ancestors works.
	var merr abi.Errno = -1
	f.MkdirAll("/usr/lib", 0o755, func(e abi.Errno) { merr = e })
	if merr != abi.OK {
		t.Fatalf("MkdirAll beneath synthetic ancestor: %v", merr)
	}
	mustWrite(t, f, "/usr/lib/libc.so", "elf")
	if got := mustRead(t, f, "/usr/lib/libc.so"); got != "elf" {
		t.Fatalf("file under materialized dir: %q", got)
	}
	// The mount is still reachable after /usr became a real directory.
	var st abi.Stat
	var serr abi.Errno = -1
	f.Stat("/usr/share/texlive", func(s abi.Stat, e abi.Errno) { st, serr = s, e })
	if serr != abi.OK || !st.IsDir() {
		t.Fatalf("mount after ancestor materialized: %v dir=%v", serr, st.IsDir())
	}
}
