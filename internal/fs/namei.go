package fs

import (
	"path"
	"strings"

	"repro/internal/abi"
)

// Per-component path resolution (namei). The old scheme resolved whole
// paths against a single backend and only followed trailing symlinks;
// this walker resolves one component at a time, so it handles symlinks in
// intermediate components, `..` that would escape the root, trailing
// slashes, and mount crossings mid-path — and every component lookup goes
// through the dentry cache.

const maxSymlinks = 8

// walkOpts selects walker behaviour per operation.
type walkOpts struct {
	// follow resolves a trailing symlink (stat/open/readdir/utimes);
	// lstat/unlink/rename/readlink leave it unresolved.
	follow bool
	// requireDir comes from a trailing slash on the raw path: the final
	// component must resolve to a directory (POSIX: "p/" ≡ "p/.", which
	// also forces a trailing symlink to be followed).
	requireDir bool
}

// walkEnt is the walker's result.
type walkEnt struct {
	// err is OK when the final component exists, ENOENT when only the
	// final component is missing (creation may proceed), or the error
	// that stopped the walk (ENOTDIR, ELOOP, intermediate ENOENT...).
	err abi.Errno
	// canCreate distinguishes "final component missing under an existing
	// directory" from a walk that failed earlier.
	canCreate bool

	path    string  // canonical VFS path of the final component
	parent  string  // canonical path of its directory
	backend Backend // mount owning path
	rel     string  // path within backend
	st      abi.Stat
	// viaLink records that the walk traversed a symlink. Such results
	// are not whole-walk cached: their validity depends on names other
	// than the endpoint's own dentry.
	viaLink bool
	// synthetic marks a directory that exists only as a synthesized
	// mount-point ancestor — no backend has it (Mkdir may create it for
	// real).
	synthetic bool
}

// hadTrailingSlash reports whether the raw (pre-Clean) path asks for a
// directory: it ends in "/" or in "/." (POSIX treats both as "p/.").
// "/" and "/." themselves do not count.
func hadTrailingSlash(p string) bool {
	return (len(p) > 1 && strings.HasSuffix(p, "/")) ||
		(len(p) > 2 && strings.HasSuffix(p, "/."))
}

// splitPath normalizes a path into components, dropping "." and empty
// components but *preserving* ".."  — unlike Clean, which collapses ".."
// lexically and therefore resolves it against the symlink's name instead
// of its target. The walker pops ".." against the resolved position.
func splitPath(p string) []string {
	var parts []string
	for _, c := range strings.Split(p, "/") {
		switch c {
		case "", ".":
		default:
			parts = append(parts, c)
		}
	}
	return parts
}

// joinComp appends one component to a resolved canonical path. ".." pops
// the last resolved component, clamping at the root as namei does — cur
// is symlink-free by construction, so the textual pop is POSIX-correct.
func joinComp(cur, name string) string {
	switch name {
	case "", ".":
		return cur
	case "..":
		return path.Dir(cur)
	}
	if cur == "/" {
		return "/" + name
	}
	return cur + "/" + name
}

// walk resolves p (raw, possibly trailing-slashed) and calls cb exactly
// once with the result. Backends may complete lookups asynchronously, so
// the walk is continuation-passing like everything else in this layer.
//
// A whole-walk cache hit is validated against the endpoint's dentry:
// every mutation drops the dentry it touches, and symlink-traversing
// walks are never cached, so a live endpoint dentry proves the cached
// resolution (and supplies fresh attributes).
func (f *FileSystem) walk(p string, o walkOpts, cb func(walkEnt)) {
	if hadTrailingSlash(p) {
		o.requireDir = true
		o.follow = true
	}
	// Paths containing ".." are never whole-walk cached: the result's
	// validity depends on intermediate components the endpoint-dentry
	// validation cannot see ("/a/../b" stops resolving once /a is
	// removed, even though /b lives on). Contains over-matches names
	// like "a..b" — that only skips an optimization.
	cacheable := f.cachesOn && !strings.Contains(p, "..")
	if cacheable {
		if e, ok := f.dc.getWalk(p, o); ok {
			d, present := f.dc.entries[e.path]
			// The endpoint may have been replaced since the walk was
			// cached: a symlink there invalidates a following walk, a
			// non-directory invalidates a trailing-slash walk.
			if validWalkHit(d, present, o) {
				f.dc.walkHits.Add(1)
				e.st = d.st
				cb(e)
				return
			}
		}
	}
	f.walk1(splitPath(p), o, 0, func(e walkEnt) {
		if cacheable && e.err == abi.OK && !e.viaLink {
			f.dc.putWalk(p, o, e)
		}
		cb(e)
	})
}

// walk1 walks the path components. depth counts symlink expansions
// across restarts; exceeding maxSymlinks yields ELOOP.
func (f *FileSystem) walk1(parts []string, o walkOpts, depth int, cb func(walkEnt)) {
	if depth > maxSymlinks {
		cb(walkEnt{err: abi.ELOOP})
		return
	}
	if len(parts) == 0 { // "/"
		f.lookupEnt("/", func(d *dentry) {
			b, rel := f.resolveMount("/")
			cb(walkEnt{err: d.err, path: "/", parent: "/", backend: b, rel: rel, st: d.st})
		})
		return
	}
	cur := "/"
	var step func(i int)
	step = func(i int) {
		name := parts[i]
		next := joinComp(cur, name)
		last := i == len(parts)-1
		f.lookupEnt(next, func(d *dentry) {
			if d.err != abi.OK {
				if !last || d.err != abi.ENOENT {
					// Only a cleanly missing final component is
					// creatable; EIO etc. must not look like ENOENT.
					cb(walkEnt{err: d.err})
					return
				}
				b, rel := f.resolveMount(next)
				cb(walkEnt{err: d.err, canCreate: true, path: next, parent: cur, backend: b, rel: rel})
				return
			}
			if d.st.IsSymlink() && (!last || o.follow) {
				f.readTarget(next, d, func(target string, err abi.Errno) {
					if err != abi.OK {
						cb(walkEnt{err: err})
						return
					}
					np := target
					if !strings.HasPrefix(target, "/") {
						np = cur + "/" + target
					}
					if rest := strings.Join(parts[i+1:], "/"); rest != "" {
						np += "/" + rest
					}
					f.walk1(splitPath(np), o, depth+1, func(e walkEnt) {
						e.viaLink = true
						cb(e)
					})
				})
				return
			}
			if !last {
				if !d.st.IsDir() {
					cb(walkEnt{err: abi.ENOTDIR})
					return
				}
				cur = next
				step(i + 1)
				return
			}
			if o.requireDir && !d.st.IsDir() {
				cb(walkEnt{err: abi.ENOTDIR})
				return
			}
			b, rel := f.resolveMount(next)
			cb(walkEnt{err: abi.OK, path: next, parent: cur, backend: b, rel: rel, st: d.st, synthetic: d.synthetic})
		})
	}
	step(0)
}

// lookupEnt produces the dentry for one canonical path, consulting the
// cache first. Missing backend entries that shadow a nested mount point
// become synthetic directories, so mounts are reachable (and listable)
// even when the parent backend has no such directory.
func (f *FileSystem) lookupEnt(p string, cb func(*dentry)) {
	if f.cachesOn {
		if d, ok := f.dc.get(p); ok {
			cb(d)
			return
		}
	}
	b, rel := f.resolveMount(p)
	b.Lstat(rel, func(st abi.Stat, err abi.Errno) {
		var d *dentry
		if (err == abi.ENOENT || err == abi.ENOTDIR) && f.mountAncestor(p) {
			// Missing in the backend but an ancestor of a mount point:
			// the merged namespace has a directory here. Real backend
			// failures (EIO...) are not masked.
			d = &dentry{st: abi.Stat{Mode: abi.S_IFDIR | 0o555, Nlink: 1}, err: abi.OK, synthetic: true}
		} else if err == abi.OK {
			d = &dentry{st: st, err: abi.OK}
		} else if err == abi.ENOENT {
			d = &dentry{err: abi.ENOENT} // negative entry
		} else {
			// Non-cacheable failure (EIO...): report without caching.
			cb(&dentry{err: err})
			return
		}
		if f.cachesOn {
			f.dc.put(p, d)
		}
		cb(d)
	})
}

// readTarget reads (and memoizes) a symlink's target.
func (f *FileSystem) readTarget(p string, d *dentry, cb func(string, abi.Errno)) {
	if d.hasTarget {
		cb(d.target, abi.OK)
		return
	}
	b, rel := f.resolveMount(p)
	b.Readlink(rel, func(target string, err abi.Errno) {
		if err == abi.OK {
			d.target, d.hasTarget = target, true
		}
		cb(target, err)
	})
}

// mountAncestor reports whether p is a strict ancestor of some mount
// point — such paths exist as directories in the merged namespace even
// when no backend has them.
func (f *FileSystem) mountAncestor(p string) bool {
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	for _, m := range f.mounts {
		if m.prefix != "/" && strings.HasPrefix(m.prefix, prefix) {
			return true
		}
	}
	return false
}
