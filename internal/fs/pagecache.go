package fs

import (
	"strings"

	"repro/internal/abi"
)

// The page cache fronts slow backends (httpfs, zipfs, overlay lower
// layers): file contents are cached in PageSize granules keyed by
// canonical path, with sequential readahead. Opening a read-only file on
// a cacheable backend returns a pagedHandle whose backend handle is
// opened *lazily* — a fully cached file is re-opened and re-read without
// a single backend call.
//
// Invalidation rides the same hooks as the dentry cache: any mutating
// operation on a path drops its pages.

// PageSize is the page-cache granule.
const PageSize = 16 * 1024

// maxPageCacheBytes bounds cached content; overflow clears the cache
// (crude, deterministic — the workloads fit comfortably).
const maxPageCacheBytes = 64 << 20

// DefaultReadaheadPages is the sequential readahead window.
const DefaultReadaheadPages = 4

type filePages struct {
	pages map[int64][]byte // page index -> content (short page = EOF page)
	bytes int64
}

type pageCache struct {
	files map[string]*filePages
	bytes int64

	// dirty holds buffered write-back state per canonical path (see
	// writeback.go); dirtyBytes is the running total the dirty budget
	// bounds.
	dirty      map[string]*dirtyFile
	dirtyBytes int64

	// gens tracks an invalidation generation per path. A pagedHandle
	// captures the generation at open; once a write (or copy-up, or
	// unlink+recreate) bumps it, the stale handle bypasses the cache
	// and reads through its own backend handle — the handle keeps
	// POSIX fd semantics, and it can never plant pages for the file
	// the path *now* names. epoch is folded into every generation so
	// that clearing the map (size bound) stales ALL outstanding
	// handles instead of reviving previously-staled ones.
	gens  map[string]uint64
	epoch uint64

	hits, misses, readaheads int64
	// Write-back counters: writes absorbed into dirty extents, flush
	// operations, vectored backend writes the flusher issued, and
	// budget-overflow flushes.
	bufferedWrites, flushes, flushWrites, overflowFlushes int64
}

func newPageCache() *pageCache {
	return &pageCache{
		files: map[string]*filePages{},
		gens:  map[string]uint64{},
		dirty: map[string]*dirtyFile{},
	}
}

func (c *pageCache) gen(p string) uint64 { return c.epoch<<32 | c.gens[p] }

func (c *pageCache) file(p string) *filePages {
	fp := c.files[p]
	if fp == nil {
		fp = &filePages{pages: map[int64][]byte{}}
		c.files[p] = fp
	}
	return fp
}

func (c *pageCache) store(p string, pageIdx int64, data []byte) {
	if c.bytes+int64(len(data)) > maxPageCacheBytes {
		clear(c.files)
		c.bytes = 0
	}
	fp := c.file(p)
	if old, ok := fp.pages[pageIdx]; ok {
		fp.bytes -= int64(len(old))
		c.bytes -= int64(len(old))
	}
	fp.pages[pageIdx] = data
	fp.bytes += int64(len(data))
	c.bytes += int64(len(data))
}

// dropPages forgets a path's clean pages without bumping its
// generation: the write-back handle's own buffered writes change the
// file's content but not the name→file binding, so outstanding handles
// stay current.
func (c *pageCache) dropPages(p string) {
	if fp, ok := c.files[p]; ok {
		c.bytes -= fp.bytes
		delete(c.files, p)
	}
}

func (c *pageCache) drop(p string) {
	c.dropPages(p)
	if len(c.gens) >= maxDentries {
		clear(c.gens)
		c.epoch++ // every outstanding handle goes stale, none revive
	}
	c.gens[p]++
}

func (c *pageCache) dropTree(p string) {
	c.drop(p)
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	for k, fp := range c.files {
		if strings.HasPrefix(k, prefix) {
			c.bytes -= fp.bytes
			delete(c.files, k)
			c.gens[k]++
		}
	}
}

// flush drops all cached pages and advances the epoch: handles opened
// before the flush (possibly against a backend a new Mount has since
// shadowed) go permanently stale and bypass the cache.
func (c *pageCache) flush() {
	clear(c.files)
	c.bytes = 0
	c.epoch++
}

// pageCacheable lets a backend opt in to (or out of) page caching; the
// default is caching read-only backends only. OverlayFS opts in: its
// reads may come from a slow lower layer, and its writes all pass through
// the VFS invalidation hooks.
type pageCacheable interface {
	PageCacheable() bool
}

func cacheableBackend(b Backend) bool {
	if pc, ok := b.(pageCacheable); ok {
		return pc.PageCacheable()
	}
	return b.ReadOnly()
}

// pagedHandle is a read-only FileHandle served from the page cache. The
// backend handle behind it is opened on first miss and memoized; size and
// stat are snapshots from open time (the handle is read-only, and writers
// going through the VFS invalidate the pages, not the open snapshot).
type pagedHandle struct {
	fs   *FileSystem
	path string // canonical VFS path (page-cache key)
	st   abi.Stat
	gen  uint64                               // page-cache generation at open
	open func(cb func(FileHandle, abi.Errno)) // lazy backend open

	inner   FileHandle
	lastEnd int64 // end offset of the previous read (sequential detector)
	raBusy  bool  // one readahead in flight per handle
}

// current reports whether the handle may use the page cache: a bumped
// generation means the path was mutated (or renamed over) since open,
// and this handle may be bound to a different file than the path names.
func (h *pagedHandle) current() bool { return h.fs.pc.gen(h.path) == h.gen }

func (h *pagedHandle) ensureInner(cb func(FileHandle, abi.Errno)) {
	if h.inner != nil {
		cb(h.inner, abi.OK)
		return
	}
	h.open(func(fh FileHandle, err abi.Errno) {
		if err == abi.OK {
			h.inner = fh
		}
		cb(fh, err)
	})
}

// cachedRange assembles [off, end) from cached pages; ok is false on any
// missing page. A short page marks EOF: assembly stops there.
func (h *pagedHandle) cachedRange(off, end int64) ([]byte, bool) {
	fp := h.fs.pc.files[h.path]
	if fp == nil {
		return nil, false
	}
	out := make([]byte, 0, end-off)
	for pos := off; pos < end; {
		idx := pos / PageSize
		page, okp := fp.pages[idx]
		if !okp {
			return nil, false
		}
		pstart := idx * PageSize
		lo := pos - pstart
		if lo >= int64(len(page)) {
			break // EOF inside this page
		}
		hi := end - pstart
		if hi > int64(len(page)) {
			hi = int64(len(page))
		}
		out = append(out, page[lo:hi]...)
		if int64(len(page)) < PageSize && pstart+int64(len(page)) < end {
			break // short page = end of file
		}
		pos = pstart + hi
	}
	return out, true
}

// storeRange splits backend data read at page-aligned start into pages.
func (h *pagedHandle) storeRange(start int64, data []byte) {
	for o := int64(0); o < int64(len(data)); o += PageSize {
		end := o + PageSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		page := make([]byte, end-o)
		copy(page, data[o:end])
		h.fs.pc.store(h.path, (start+o)/PageSize, page)
	}
}

// Pread implements FileHandle: serve from pages, fill on miss with one
// page-aligned backend read, then kick sequential readahead. EOF comes
// from short backend reads (reflected as short cached pages), never from
// the open-time size snapshot — the file may have grown since.
//
// A read of a path with buffered write-back state is a barrier: the
// dirty extents flush first, so cross-handle reads observe completed
// writes (POSIX read-after-write), whichever handle buffered them.
func (h *pagedHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	if h.fs.pc.dirty[h.path] != nil {
		h.fs.flushPath(h.path, func(abi.Errno) { h.preadResolved(off, n, cb) })
		return
	}
	h.preadResolved(off, n, cb)
}

func (h *pagedHandle) preadResolved(off int64, n int, cb func([]byte, abi.Errno)) {
	if off < 0 || n <= 0 {
		cb(nil, abi.OK)
		return
	}
	if !h.current() {
		// Stale handle: read straight through its own backend handle.
		h.ensureInner(func(fh FileHandle, err abi.Errno) {
			if err != abi.OK {
				cb(nil, err)
				return
			}
			fh.Pread(off, n, cb)
		})
		return
	}
	end := off + int64(n)
	sequential := off == h.lastEnd
	if data, ok := h.cachedRange(off, end); ok {
		h.fs.pc.hits++
		h.lastEnd = off + int64(len(data))
		if sequential {
			h.readahead(end)
		}
		cb(data, abi.OK)
		return
	}
	h.fs.pc.misses++
	astart := (off / PageSize) * PageSize
	aend := ((end + PageSize - 1) / PageSize) * PageSize
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		fh.Pread(astart, int(aend-astart), func(data []byte, err abi.Errno) {
			if err != abi.OK {
				cb(nil, err)
				return
			}
			if h.current() { // the path may have been mutated mid-read
				h.storeRange(astart, data)
			}
			lo := off - astart
			if lo > int64(len(data)) {
				lo = int64(len(data))
			}
			hi := end - astart
			if hi > int64(len(data)) {
				hi = int64(len(data))
			}
			out := make([]byte, hi-lo)
			copy(out, data[lo:hi])
			h.lastEnd = off + int64(len(out))
			if sequential {
				h.readahead(end)
			}
			cb(out, abi.OK)
		})
	})
}

// readahead prefetches the next window of pages after end. Completion is
// fire-and-forget: the pages land in the cache whenever the backend
// delivers them.
func (h *pagedHandle) readahead(end int64) {
	window := int64(h.fs.readaheadPages)
	if window <= 0 || h.raBusy || end >= h.st.Size || !h.current() {
		return
	}
	start := ((end + PageSize - 1) / PageSize) * PageSize
	fp := h.fs.pc.file(h.path)
	for start < h.st.Size {
		if _, ok := fp.pages[start/PageSize]; !ok {
			break
		}
		start += PageSize
	}
	if start >= h.st.Size {
		return
	}
	raEnd := start + window*PageSize
	if raEnd > h.st.Size {
		raEnd = h.st.Size
	}
	h.raBusy = true
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			h.raBusy = false
			return
		}
		fh.Pread(start, int(raEnd-start), func(data []byte, err abi.Errno) {
			h.raBusy = false
			if err != abi.OK || !h.current() {
				return
			}
			h.fs.pc.readaheads++
			h.storeRange(start, data)
		})
	})
}

// Preadv implements FileHandle: one cache-assembled (or backend) read,
// returned as a single segment — callers scatter it themselves.
func (h *pagedHandle) Preadv(off int64, lens []int, cb func([][]byte, abi.Errno)) {
	genericPreadv(h, off, lens, cb)
}

// Pwrite implements FileHandle. The handle is read-only in practice, but
// the old layer delegated stray writes to the backend; keep that, and
// drop the pages first so the cache can never serve stale bytes.
func (h *pagedHandle) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(0, err)
			return
		}
		fh.Pwrite(off, data, func(n int, err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(n, err)
		})
	})
}

// Pwritev implements FileHandle.
func (h *pagedHandle) Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(0, err)
			return
		}
		fh.Pwritev(off, bufs, func(n int, err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(n, err)
		})
	})
}

// Stat implements FileHandle: the open-time snapshot (read-only handle).
func (h *pagedHandle) Stat(cb func(abi.Stat, abi.Errno)) {
	if h.inner != nil {
		h.inner.Stat(cb)
		return
	}
	cb(h.st, abi.OK)
}

// Truncate implements FileHandle (delegates; invalidates around it).
func (h *pagedHandle) Truncate(size int64, cb func(abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		fh.Truncate(size, func(err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(err)
		})
	})
}

// Close implements FileHandle.
func (h *pagedHandle) Close(cb func(abi.Errno)) {
	if h.inner != nil {
		inner := h.inner
		h.inner = nil
		inner.Close(cb)
		return
	}
	cb(abi.OK)
}
