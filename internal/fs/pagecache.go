package fs

import (
	"crypto/sha256"
	"strings"
	"sync/atomic"

	"repro/internal/abi"
)

// The page cache fronts slow backends (httpfs, zipfs, overlay lower
// layers): file contents are cached in PageSize granules keyed by
// canonical path, with sequential readahead. Opening a read-only file on
// a cacheable backend returns a pagedHandle whose backend handle is
// opened *lazily* — a fully cached file is re-opened and re-read without
// a single backend call.
//
// Pages live in the shared page pool (pagepool.go), so a warm read can
// be answered with pinned page *leases* instead of a payload copy — the
// zero-copy read path. Invalidation rides the same hooks as the dentry
// cache: any mutating operation on a path drops its pages; dropped pages
// with outstanding leases freeze (bytes intact) until the leases return.

// PageSize is the page-cache granule — the ABI's grant granule, since
// leases are handed across the kernel boundary in these units.
const PageSize = abi.GrantPageSize

// maxPageCacheBytes bounds cached content; overflow clears the cache
// (crude, deterministic — the workloads fit comfortably).
const maxPageCacheBytes = 64 << 20

// DefaultReadaheadPages is the base sequential readahead window. The
// window adapts per handle: it doubles on a sequential streak (up to
// MaxReadaheadPages) and resets to the base on a seek, so cold streams
// of large files grow their transfer unit without over-fetching on
// random access.
const DefaultReadaheadPages = 4

// MaxReadaheadPages caps the adaptive readahead window (1 MiB of pages).
const MaxReadaheadPages = 64

type filePages struct {
	pages   map[int64]poolPage // page index -> pooled content (short page = EOF page)
	bytes   int64
	lastUse int64 // pageCache.useClock at the last hit/store (LRU key)
	priv    int   // resident pages in private (non-deduped) slots
}

type pageCache struct {
	files map[string]*filePages
	bytes atomic.Int64
	// pool is the slot arena pages live in — private by default, or a
	// shared cross-Instance arena after SetPagePool. att is this cache's
	// attachment id (its quota account) in the pool.
	pool *pagePool
	att  int

	// dirty holds buffered write-back state per canonical path (see
	// writeback.go); dirtyBytes is the running total the dirty budget
	// bounds. flushErrs records a failed background/overflow flush per
	// path, surfaced at the next fsync on that path; entries carry the
	// generation at record time so a later unrelated file reusing the
	// name can never inherit a dead file's error.
	dirty      map[string]*dirtyFile
	dirtyBytes atomic.Int64
	flushErrs  map[string]flushErr

	// gens tracks an invalidation generation per path. A pagedHandle
	// captures the generation at open; once a write (or copy-up, or
	// unlink+recreate) bumps it, the stale handle bypasses the cache
	// and reads through its own backend handle — the handle keeps
	// POSIX fd semantics, and it can never plant pages for the file
	// the path *now* names. epoch is folded into every generation so
	// that clearing the map (size bound) stales ALL outstanding
	// handles instead of reviving previously-staled ones.
	gens  map[string]uint64
	epoch uint64

	// useClock is a monotonic touch counter driving LRU eviction: every
	// hit or store stamps the file with a fresh value, so "least
	// recently used" is a total, deterministic order (no wall clock).
	// Only this cache's Instance thread touches it.
	useClock int64

	// wstaged marks slots leased out *empty* for write staging
	// (AllocWriteSlots): they hold guest payload, live outside the
	// files map (never evicted, never granted to readers), and are
	// detached from staging ownership when the guest lease returns.
	wstaged map[int]bool

	// dedupOff disables the content-addressed sharing tier for pages
	// this cache stores (ablations and differentials): every page goes
	// to a private slot, exactly the pre-dedup allocator. Pages already
	// resident keep their sharing class.
	dedupOff bool

	// Counters are atomics: the host (a fleet aggregator, a stats
	// poller) may snapshot them via CacheStats while the Instance runs
	// on another thread.
	hits, misses, readaheads atomic.Int64
	// Dedup observability: resident cached pages (logical), resident
	// pages referencing shared slots and their bytes, and — since boot —
	// dedup-eligible stores and index hits among them.
	cachedPages, dedupPages, sharedBytes atomic.Int64
	dedupHits, dedupStores               atomic.Int64
	// Lease counters: pages granted out as leases, leases returned.
	grantedPages, returnedPages atomic.Int64
	// Write-back counters: writes absorbed into dirty extents, flush
	// operations, vectored backend writes the flusher issued,
	// budget-overflow flushes, and age-triggered background flushes.
	bufferedWrites, flushes, flushWrites, overflowFlushes, agedFlushes atomic.Int64
}

func newPageCache() *pageCache {
	pool := newPagePool(poolSlots)
	return &pageCache{
		files:     map[string]*filePages{},
		gens:      map[string]uint64{},
		dirty:     map[string]*dirtyFile{},
		flushErrs: map[string]flushErr{},
		wstaged:   map[int]bool{},
		pool:      pool,
		att:       pool.attach(0),
	}
}

func (c *pageCache) gen(p string) uint64 { return c.epoch<<32 | c.gens[p] }

// touch stamps a file as just-used for LRU ordering.
func (c *pageCache) touch(fp *filePages) {
	c.useClock++
	fp.lastUse = c.useClock
}

func (c *pageCache) file(p string) *filePages {
	fp := c.files[p]
	if fp == nil {
		fp = &filePages{pages: map[int64]poolPage{}}
		c.files[p] = fp
	}
	return fp
}

// releasePage detaches one cached page from this cache: private slots
// release directly (free, or freeze for leaseholders); shared slots drop
// this cache's dedup reference, and the index frees the slot exactly
// once, after the last reference. Maintains the resident counters.
func (c *pageCache) releasePage(pg poolPage) {
	c.cachedPages.Add(-1)
	if pg.shared {
		c.dedupPages.Add(-1)
		c.sharedBytes.Add(-int64(pg.len))
		c.pool.dedupDeref(c.att, pg.slot)
		return
	}
	c.pool.release(pg.slot)
}

// releaseFilePages detaches every slot a file holds (freeing or
// freezing each) without touching the files map.
func (c *pageCache) releaseFilePages(fp *filePages) {
	for _, pg := range fp.pages {
		c.releasePage(pg)
	}
}

// evictAll drops every cached page — the deterministic overflow policy.
// Pinned slots freeze; everything else returns to the free stack.
// Generations are untouched: handles stay current, the content is just
// gone (exactly the old clear-the-map semantics).
func (c *pageCache) evictAll() {
	for _, fp := range c.files {
		c.releaseFilePages(fp)
	}
	clear(c.files)
	c.bytes.Store(0)
}

// evictOneLRU releases the least-recently-used file's pages (ties broken
// by path, so the order is deterministic). Pinned slots freeze as
// everywhere. Returns false when nothing is cached.
func (c *pageCache) evictOneLRU() bool {
	var victim string
	var vfp *filePages
	for p, fp := range c.files {
		if vfp == nil || fp.lastUse < vfp.lastUse ||
			(fp.lastUse == vfp.lastUse && p < victim) {
			victim, vfp = p, fp
		}
	}
	if vfp == nil {
		return false
	}
	c.releaseFilePages(vfp)
	c.bytes.Add(-vfp.bytes)
	delete(c.files, victim)
	return true
}

// evictOneLRUPreferPrivate evicts the least-recently-used file holding
// at least one PRIVATE page, falling back to plain LRU when every
// resident file is fully shared. Used only under arena exhaustion
// (allocNoArena): dropping a shared page frees a physical slot only when
// its last tenant lets go, so private pages go first. Quota-driven
// eviction stays plain LRU — that keeps a tenant's eviction sequence
// identical with dedup on and off, which the differential suite pins.
func (c *pageCache) evictOneLRUPreferPrivate() bool {
	var victim string
	var vfp *filePages
	for p, fp := range c.files {
		if fp.priv == 0 {
			continue
		}
		if vfp == nil || fp.lastUse < vfp.lastUse ||
			(fp.lastUse == vfp.lastUse && p < victim) {
			victim, vfp = p, fp
		}
	}
	if vfp == nil {
		return c.evictOneLRU()
	}
	c.releaseFilePages(vfp)
	c.bytes.Add(-vfp.bytes)
	delete(c.files, victim)
	return true
}

// evictLRU frees budget for need more bytes by evicting whole files in
// least-recently-used order — hot leases' neighbours stay resident under
// arena pressure, unlike the old evict-everything policy.
func (c *pageCache) evictLRU(need int64) {
	for c.bytes.Load()+need > maxPageCacheBytes {
		if !c.evictOneLRU() {
			return
		}
	}
}

// insertPage records a just-allocated (or just-referenced) page under
// (p, pageIdx) and maintains the byte and page counters. Fetches the
// filePages entry fresh: eviction inside store may have dropped p.
func (c *pageCache) insertPage(p string, pageIdx int64, pg poolPage) {
	fp := c.file(p)
	c.touch(fp)
	fp.pages[pageIdx] = pg
	fp.bytes += int64(pg.len)
	c.bytes.Add(int64(pg.len))
	c.cachedPages.Add(1)
	if pg.shared {
		c.dedupPages.Add(1)
		c.sharedBytes.Add(int64(pg.len))
	} else {
		fp.priv++
	}
}

// store caches one page of content for (p, pageIdx). Pages from
// immutable backends (dedup=true) route through the content-addressed
// index: hash the bytes just read, reference the already-resident slot
// on a hit, fill-and-publish on a miss — the hash happens AFTER the
// backend read either way, so a hit and a miss cost identical virtual
// time and dedup can never perturb a tenant's clock. When the pool (or
// the byte budget) is exhausted it evicts cold files in LRU order until
// the page fits; if every slot is pinned the page simply is not cached
// (reads still work through the backend).
func (c *pageCache) store(p string, pageIdx int64, data []byte, dedup bool) {
	if len(data) > PageSize || len(data) == 0 {
		return // defensive: a page never exceeds the granule
	}
	if c.bytes.Load()+int64(len(data)) > maxPageCacheBytes {
		c.evictLRU(int64(len(data)))
	}
	c.touch(c.file(p)) // newest file: evicted last under pressure
	if fp := c.files[p]; fp != nil {
		if old, ok := fp.pages[pageIdx]; ok {
			// Replacing a cached page never rewrites its slot in place:
			// the old slot may be leased out (or shared with other
			// tenants). Detach it and fill a fresh one.
			fp.bytes -= int64(old.len)
			c.bytes.Add(-int64(old.len))
			if !old.shared {
				fp.priv--
			}
			c.releasePage(old)
			delete(fp.pages, pageIdx)
		}
	}
	if dedup && !c.dedupOff {
		done, private := c.storeDedup(p, pageIdx, data)
		if done || !private {
			return
		}
		// Shared budget exhausted: fall through to a private slot.
	}
	slot, st := c.pool.alloc2(c.att)
	for st != allocOK {
		// Exhaustion: evict cold files until a slot frees. Quota pressure
		// (a per-attachment, deterministic condition) evicts plain LRU;
		// arena pressure prefers private pages, whose slots actually
		// free. Eviction may drop p itself (when it is the only file);
		// insertPage re-fetches the entry. Frozen slots free no quota, so
		// the loop ends when the files map empties if every slot is
		// leased.
		var evicted bool
		if st == allocNoArena {
			evicted = c.evictOneLRUPreferPrivate()
		} else {
			evicted = c.evictOneLRU()
		}
		if !evicted {
			return // every quota slot leased out: skip caching this page
		}
		slot, st = c.pool.alloc2(c.att)
	}
	copy(c.pool.arena[slot*PageSize:], data)
	c.insertPage(p, pageIdx, poolPage{slot: slot, len: len(data)})
}

// storeDedup runs the content-addressed store: lookup, then
// alloc/fill/publish on a miss. done means the page was handled (cached
// shared, or skipped because nothing more can be evicted); private means
// the caller should fall back to a private slot (shared budget
// exhausted — bytes and clocks identical, only placement differs).
func (c *pageCache) storeDedup(p string, pageIdx int64, data []byte) (done, private bool) {
	c.dedupStores.Add(1)
	h := sha256.Sum256(data)
	for {
		slot, st := c.pool.dedupLookup(c.att, h)
		switch st {
		case dedupHit:
			c.dedupHits.Add(1)
			c.insertPage(p, pageIdx, poolPage{slot: slot, len: len(data), shared: true})
			return true, false
		case dedupNoQuota:
			// The same deterministic condition as a private-alloc quota
			// miss: plain LRU eviction, identical order dedup on or off.
			if !c.evictOneLRU() {
				return true, false
			}
			continue
		}
		slot, st = c.pool.dedupAlloc(c.att)
		switch st {
		case allocOK:
			copy(c.pool.arena[slot*PageSize:], data)
			canon := c.pool.dedupPublish(slot, h)
			c.insertPage(p, pageIdx, poolPage{slot: canon, len: len(data), shared: true})
			return true, false
		case allocNoQuota:
			if !c.evictOneLRU() {
				return true, false
			}
		case allocNoArena:
			if !c.evictOneLRUPreferPrivate() {
				return true, false
			}
		case allocNoShared:
			return false, true
		}
	}
}

// dropPages forgets a path's clean pages without bumping its
// generation: the write-back handle's own buffered writes change the
// file's content but not the name→file binding, so outstanding handles
// stay current. Leased slots freeze — the reclaim-before-coalesce
// interlock: a dirty extent overlapping a leased page detaches the page
// here before the new bytes are buffered, so leaseholders keep reading
// the bytes they were granted.
func (c *pageCache) dropPages(p string) {
	if fp, ok := c.files[p]; ok {
		c.releaseFilePages(fp)
		c.bytes.Add(-fp.bytes)
		delete(c.files, p)
	}
}

func (c *pageCache) drop(p string) {
	c.dropPages(p)
	if len(c.gens) >= maxDentries {
		clear(c.gens)
		c.epoch++ // every outstanding handle goes stale, none revive
	}
	c.gens[p]++
}

func (c *pageCache) dropTree(p string) {
	c.drop(p)
	prefix := p
	if prefix != "/" {
		prefix += "/"
	}
	for k, fp := range c.files {
		if strings.HasPrefix(k, prefix) {
			c.releaseFilePages(fp)
			c.bytes.Add(-fp.bytes)
			delete(c.files, k)
			c.gens[k]++
		}
	}
}

// flush drops all cached pages and advances the epoch: handles opened
// before the flush (possibly against a backend a new Mount has since
// shadowed) go permanently stale and bypass the cache. Leased slots
// freeze, as everywhere.
func (c *pageCache) flush() {
	c.evictAll()
	c.epoch++
}

// pageCacheable lets a backend opt in to (or out of) page caching; the
// default is caching read-only backends only. OverlayFS opts in: its
// reads may come from a slow lower layer, and its writes all pass through
// the VFS invalidation hooks.
type pageCacheable interface {
	PageCacheable() bool
}

func cacheableBackend(b Backend) bool {
	if pc, ok := b.(pageCacheable); ok {
		return pc.PageCacheable()
	}
	return b.ReadOnly()
}

// pageDedupable lets a backend opt in to (or out of) the
// content-addressed sharing tier. The default is dedup for read-only
// backends: their pages are immutable, so identical bytes faulted by any
// tenant are the same page forever. OverlayFS opts in even though it is
// writable — every mutation routes through the VFS invalidation hooks
// (copy-up drops the lower page before upper bytes become visible), and
// the store never rewrites a published slot in place.
type pageDedupable interface {
	PageDedupable() bool
}

func dedupableBackend(b Backend) bool {
	if pd, ok := b.(pageDedupable); ok {
		return pd.PageDedupable()
	}
	return b.ReadOnly()
}

// SliceReader is an optional FileHandle fast path for backends whose
// file bytes are fully resident in host memory (zipfs members, fetched
// httpfs bodies): PreadSlice returns a stable view of [off, off+n)
// (clamped to EOF) without staging through a fresh allocation. ok=false
// means "not resident, use Pread". Callers must copy before the bytes
// escape — the view aliases the backend's cache.
type SliceReader interface {
	PreadSlice(off int64, n int) ([]byte, bool)
}

// backedRead reads [off, off+n) from a backend handle, preferring the
// zero-staging SliceReader path so the caller's copy (into an arena slot
// or a reply buffer) is the ONLY copy of the fault. Both paths are
// synchronous for resident backends and carry no virtual-time charge, so
// the fast path never perturbs clocks.
func backedRead(fh FileHandle, off int64, n int, cb func([]byte, abi.Errno)) {
	if sr, ok := fh.(SliceReader); ok {
		if view, ok2 := sr.PreadSlice(off, n); ok2 {
			cb(view, abi.OK)
			return
		}
	}
	fh.Pread(off, n, cb)
}

// pagedHandle is a read-only FileHandle served from the page cache. The
// backend handle behind it is opened on first miss and memoized; size and
// stat are snapshots from open time (the handle is read-only, and writers
// going through the VFS invalidate the pages, not the open snapshot).
type pagedHandle struct {
	fs    *FileSystem
	path  string // canonical VFS path (page-cache key)
	st    abi.Stat
	gen   uint64                               // page-cache generation at open
	dedup bool                                 // backend is immutable: dedup its pages
	open  func(cb func(FileHandle, abi.Errno)) // lazy backend open

	inner    FileHandle
	lastEnd  int64 // end offset of the previous read (sequential detector)
	raBusy   bool  // one readahead in flight per handle
	raWindow int   // adaptive readahead window, pages (0 until sequential)
}

// current reports whether the handle may use the page cache: a bumped
// generation means the path was mutated (or renamed over) since open,
// and this handle may be bound to a different file than the path names.
func (h *pagedHandle) current() bool { return h.fs.pc.gen(h.path) == h.gen }

func (h *pagedHandle) ensureInner(cb func(FileHandle, abi.Errno)) {
	if h.inner != nil {
		cb(h.inner, abi.OK)
		return
	}
	h.open(func(fh FileHandle, err abi.Errno) {
		if err == abi.OK {
			h.inner = fh
		}
		cb(fh, err)
	})
}

// adaptWindow updates the adaptive readahead window for a read at off:
// double on a sequential streak (capped), reset to the base on a seek.
func (h *pagedHandle) adaptWindow(sequential bool) {
	base := h.fs.readaheadPages
	switch {
	case !sequential:
		h.raWindow = base
	case h.raWindow == 0:
		h.raWindow = base
	case h.raWindow < MaxReadaheadPages:
		h.raWindow *= 2
		if h.raWindow > MaxReadaheadPages {
			h.raWindow = MaxReadaheadPages
		}
	}
}

// cachedRange assembles [off, end) from cached pages; ok is false on any
// missing page. A short page marks EOF: assembly stops there.
func (h *pagedHandle) cachedRange(off, end int64) ([]byte, bool) {
	fp := h.fs.pc.files[h.path]
	if fp == nil {
		return nil, false
	}
	h.fs.pc.touch(fp)
	pool := h.fs.pc.pool
	out := make([]byte, 0, end-off)
	for pos := off; pos < end; {
		idx := pos / PageSize
		pg, okp := fp.pages[idx]
		if !okp {
			return nil, false
		}
		page := pool.data(pg)
		pstart := idx * PageSize
		lo := pos - pstart
		if lo >= int64(len(page)) {
			break // EOF inside this page
		}
		hi := end - pstart
		if hi > int64(len(page)) {
			hi = int64(len(page))
		}
		out = append(out, page[lo:hi]...)
		if int64(len(page)) < PageSize && pstart+int64(len(page)) < end {
			break // short page = end of file
		}
		pos = pstart + hi
	}
	return out, true
}

// PreadRef implements RefReader: the zero-copy fast path. When every
// byte of [off, off+n) is resident and the handle is current, the pages
// are pinned and returned as PageRefs — no bytes move. Refusals (cold
// pages, dirty write-back state, stale generation, too many refs for
// max) pin nothing and send the caller down the Pread copy path, which
// produces identical bytes. An empty ref list with ok=true is a clean
// EOF: zero bytes, zero copies.
func (h *pagedHandle) PreadRef(off int64, n, max int) ([]PageRef, bool) {
	if off < 0 || n <= 0 {
		return nil, false
	}
	pc := h.fs.pc
	if pc.dirty[h.path] != nil || !h.current() {
		return nil, false
	}
	fp := pc.files[h.path]
	if fp == nil {
		return nil, false
	}
	end := off + int64(n)
	var refs []PageRef
	var granted int64
	for pos := off; pos < end; {
		idx := pos / PageSize
		pg, okp := fp.pages[idx]
		if !okp {
			return nil, false
		}
		pstart := idx * PageSize
		lo := pos - pstart
		if lo >= int64(pg.len) {
			break // EOF inside this page
		}
		hi := end - pstart
		if hi > int64(pg.len) {
			hi = int64(pg.len)
		}
		if len(refs) >= max {
			return nil, false // grant area too small; copy path instead
		}
		refs = append(refs, PageRef{
			Slot: pg.slot,
			Gen:  h.gen,
			Off:  int64(pg.slot)*PageSize + lo,
			Len:  int(hi - lo),
		})
		granted += hi - lo
		if pg.len < PageSize && pstart+int64(pg.len) < end {
			break // short page = end of file
		}
		pos = pstart + hi
	}
	for _, r := range refs {
		pc.pool.pin(r.Slot)
	}
	pc.touch(fp)
	pc.hits.Add(1)
	pc.grantedPages.Add(int64(len(refs)))
	sequential := off == h.lastEnd
	h.adaptWindow(sequential)
	h.lastEnd = off + granted
	if sequential {
		h.readahead(end)
	}
	return refs, true
}

// storeRange splits backend data read at page-aligned start into pages.
func (h *pagedHandle) storeRange(start int64, data []byte) {
	for o := int64(0); o < int64(len(data)); o += PageSize {
		end := o + PageSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		h.fs.pc.store(h.path, (start+o)/PageSize, data[o:end], h.dedup)
	}
}

// Pread implements FileHandle: serve from pages, fill on miss with one
// page-aligned backend read, then kick sequential readahead. EOF comes
// from short backend reads (reflected as short cached pages), never from
// the open-time size snapshot — the file may have grown since.
//
// A read of a path with buffered write-back state is a barrier: the
// dirty extents flush first, so cross-handle reads observe completed
// writes (POSIX read-after-write), whichever handle buffered them.
func (h *pagedHandle) Pread(off int64, n int, cb func([]byte, abi.Errno)) {
	if h.fs.pc.dirty[h.path] != nil {
		h.fs.flushPath(h.path, func(err abi.Errno) {
			h.fs.recordFlushErr(h.path, err)
			h.preadResolved(off, n, cb)
		})
		return
	}
	h.preadResolved(off, n, cb)
}

func (h *pagedHandle) preadResolved(off int64, n int, cb func([]byte, abi.Errno)) {
	if off < 0 || n <= 0 {
		cb(nil, abi.OK)
		return
	}
	if !h.current() {
		// Stale handle: read straight through its own backend handle.
		h.ensureInner(func(fh FileHandle, err abi.Errno) {
			if err != abi.OK {
				cb(nil, err)
				return
			}
			fh.Pread(off, n, cb)
		})
		return
	}
	end := off + int64(n)
	sequential := off == h.lastEnd
	if data, ok := h.cachedRange(off, end); ok {
		h.fs.pc.hits.Add(1)
		h.adaptWindow(sequential)
		h.lastEnd = off + int64(len(data))
		if sequential {
			h.readahead(end)
		}
		cb(data, abi.OK)
		return
	}
	h.fs.pc.misses.Add(1)
	astart := (off / PageSize) * PageSize
	aend := ((end + PageSize - 1) / PageSize) * PageSize
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(nil, err)
			return
		}
		// backedRead's view is only copied from (into arena slots, into
		// out) before the callback returns, so the slice never escapes.
		backedRead(fh, astart, int(aend-astart), func(data []byte, err abi.Errno) {
			if err != abi.OK {
				cb(nil, err)
				return
			}
			if h.current() { // the path may have been mutated mid-read
				h.storeRange(astart, data)
			}
			lo := off - astart
			if lo > int64(len(data)) {
				lo = int64(len(data))
			}
			hi := end - astart
			if hi > int64(len(data)) {
				hi = int64(len(data))
			}
			out := make([]byte, hi-lo)
			copy(out, data[lo:hi])
			h.adaptWindow(sequential)
			h.lastEnd = off + int64(len(out))
			if sequential {
				h.readahead(end)
			}
			cb(out, abi.OK)
		})
	})
}

// readahead prefetches the next window of pages after end. Completion is
// fire-and-forget: the pages land in the cache whenever the backend
// delivers them. The window is the handle's adaptive one, so with httpfs
// byte-range fetches the transfer unit grows with the sequential streak.
func (h *pagedHandle) readahead(end int64) {
	window := int64(h.raWindow)
	if window <= 0 || h.raBusy || end >= h.st.Size || !h.current() {
		return
	}
	start := ((end + PageSize - 1) / PageSize) * PageSize
	fp := h.fs.pc.file(h.path)
	for start < h.st.Size {
		if _, ok := fp.pages[start/PageSize]; !ok {
			break
		}
		start += PageSize
	}
	if start >= h.st.Size {
		return
	}
	raEnd := start + window*PageSize
	if raEnd > h.st.Size {
		raEnd = h.st.Size
	}
	h.raBusy = true
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			h.raBusy = false
			return
		}
		backedRead(fh, start, int(raEnd-start), func(data []byte, err abi.Errno) {
			h.raBusy = false
			if err != abi.OK || !h.current() {
				return
			}
			h.fs.pc.readaheads.Add(1)
			h.storeRange(start, data)
		})
	})
}

// Preadv implements FileHandle: one cache-assembled (or backend) read,
// returned as a single segment — callers scatter it themselves.
func (h *pagedHandle) Preadv(off int64, lens []int, cb func([][]byte, abi.Errno)) {
	genericPreadv(h, off, lens, cb)
}

// Pwrite implements FileHandle. The handle is read-only in practice, but
// the old layer delegated stray writes to the backend; keep that, and
// drop the pages first so the cache can never serve stale bytes.
func (h *pagedHandle) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(0, err)
			return
		}
		fh.Pwrite(off, data, func(n int, err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(n, err)
		})
	})
}

// Pwritev implements FileHandle.
func (h *pagedHandle) Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(0, err)
			return
		}
		fh.Pwritev(off, bufs, func(n int, err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(n, err)
		})
	})
}

// Stat implements FileHandle: the open-time snapshot (read-only handle).
func (h *pagedHandle) Stat(cb func(abi.Stat, abi.Errno)) {
	if h.inner != nil {
		h.inner.Stat(cb)
		return
	}
	cb(h.st, abi.OK)
}

// Truncate implements FileHandle (delegates; invalidates around it).
func (h *pagedHandle) Truncate(size int64, cb func(abi.Errno)) {
	h.fs.invalidatePath(h.path)
	h.ensureInner(func(fh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		fh.Truncate(size, func(err abi.Errno) {
			h.fs.invalidatePath(h.path)
			cb(err)
		})
	})
}

// Close implements FileHandle.
func (h *pagedHandle) Close(cb func(abi.Errno)) {
	if h.inner != nil {
		inner := h.inner
		h.inner = nil
		inner.Close(cb)
		return
	}
	cb(abi.OK)
}
