package fs

import (
	"archive/zip"
	"bytes"
	"testing"

	"repro/internal/abi"
)

// Overlay copy-up + rename + deletion-log interactions, and error paths
// of the read-only network backends (httpfs, zipfs).

func newOverlayWorld(t *testing.T) (*FileSystem, *OverlayFS, *MemFS, *MemFS) {
	t.Helper()
	lower := NewMemFS(now)
	lfs := NewFileSystem(lower, func() int64 { return clock })
	mustMkdirAll(t, lfs, "/a")
	mustMkdirAll(t, lfs, "/b")
	mustWrite(t, lfs, "/a/f1", "lower-f1")
	mustWrite(t, lfs, "/a/f2", "lower-f2")
	mustWrite(t, lfs, "/b/g", "lower-g")
	lower.SetReadOnly()
	upper := NewMemFS(now)
	ov := NewOverlayFS(upper, lower)
	return NewFileSystem(ov, func() int64 { return clock }), ov, upper, lower
}

func readdirNamesOf(t *testing.T, f *FileSystem, p string) []string {
	t.Helper()
	var names []string
	var err abi.Errno = -1
	f.Readdir(p, func(ents []abi.Dirent, e abi.Errno) {
		err = e
		for _, d := range ents {
			names = append(names, d.Name)
		}
	})
	if err != abi.OK {
		t.Fatalf("readdir(%s): %v", p, err)
	}
	return names
}

func TestOverlayRenameOfLowerFileCopiesUpAndLogsDeletion(t *testing.T) {
	f, ov, upper, lower := newOverlayWorld(t)
	var err abi.Errno
	f.Rename("/a/f1", "/a/r1", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rename lower file: %v", err)
	}
	// New name carries the content; old name is hidden by the log.
	if got := mustRead(t, f, "/a/r1"); got != "lower-f1" {
		t.Fatalf("renamed content: %q", got)
	}
	f.Stat("/a/f1", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("old name still visible after rename")
	}
	if dp := ov.DeletedPaths(); len(dp) != 1 || dp[0] != "/a/f1" {
		t.Fatalf("deletion log = %v, want [/a/f1]", dp)
	}
	// Copy-up happened into the upper layer; the lower layer is pristine.
	upper.Stat("/a/r1", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatal("renamed file not in upper layer")
	}
	lower.Stat("/a/f1", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatal("lower layer mutated by rename")
	}
	names := readdirNamesOf(t, f, "/a")
	if len(names) != 2 || names[0] != "f2" || names[1] != "r1" {
		t.Fatalf("readdir after rename = %v, want [f2 r1]", names)
	}
}

func TestOverlayRenameOntoDeletedPathClearsLog(t *testing.T) {
	f, ov, _, _ := newOverlayWorld(t)
	var err abi.Errno
	f.Unlink("/a/f2", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink: %v", err)
	}
	f.Rename("/b/g", "/a/f2", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rename onto deleted path: %v", err)
	}
	if got := mustRead(t, f, "/a/f2"); got != "lower-g" {
		t.Fatalf("content after rename onto deleted: %q", got)
	}
	// /a/f2's deletion must be cleared; /b/g's must be recorded.
	if dp := ov.DeletedPaths(); len(dp) != 1 || dp[0] != "/b/g" {
		t.Fatalf("deletion log = %v, want [/b/g]", dp)
	}
	f.Stat("/b/g", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("rename source still visible")
	}
}

func TestOverlayUnlinkAfterCopyUpStaysHidden(t *testing.T) {
	f, ov, _, _ := newOverlayWorld(t)
	// Write-open forces a copy-up, then unlink must hide both layers.
	f.Open("/a/f1", abi.O_RDWR, 0, func(h FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open rw: %v", e)
		}
		h.Pwrite(0, []byte("upper-f1"), func(int, abi.Errno) {})
		h.Close(func(abi.Errno) {})
	})
	if got := mustRead(t, f, "/a/f1"); got != "upper-f1" {
		t.Fatalf("after copy-up write: %q", got)
	}
	var err abi.Errno
	f.Unlink("/a/f1", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink copied-up file: %v", err)
	}
	f.Stat("/a/f1", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("unlinked copy-up still visible (lower leaked through)")
	}
	if dp := ov.DeletedPaths(); len(dp) != 1 || dp[0] != "/a/f1" {
		t.Fatalf("deletion log = %v, want [/a/f1]", dp)
	}
	// Re-creating clears the log and shadows the lower file again.
	mustWrite(t, f, "/a/f1", "recreated")
	if got := mustRead(t, f, "/a/f1"); got != "recreated" {
		t.Fatalf("recreated content: %q", got)
	}
	if len(ov.DeletedPaths()) != 0 {
		t.Fatalf("deletion log not cleared: %v", ov.DeletedPaths())
	}
}

func TestOverlayRmdirOfLowerDirLogsAndHides(t *testing.T) {
	f, ov, _, _ := newOverlayWorld(t)
	var err abi.Errno
	// /b still holds g: rmdir must refuse.
	f.Rmdir("/b", func(e abi.Errno) { err = e })
	if err != abi.ENOTEMPTY {
		t.Fatalf("rmdir nonempty = %v, want ENOTEMPTY", err)
	}
	f.Unlink("/b/g", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("unlink: %v", err)
	}
	f.Rmdir("/b", func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("rmdir emptied lower dir: %v", err)
	}
	f.Stat("/b", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatal("removed lower dir still visible")
	}
	found := false
	for _, p := range ov.DeletedPaths() {
		if p == "/b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("deletion log %v missing /b", ov.DeletedPaths())
	}
	names := readdirNamesOf(t, f, "/")
	for _, n := range names {
		if n == "b" {
			t.Fatalf("readdir(/) still lists removed dir: %v", names)
		}
	}
}

func TestSymlinkOverExistingLowerFileIsEEXIST(t *testing.T) {
	// POSIX symlink(2): EEXIST if linkp exists — including when it only
	// exists in the overlay's lower layer, which the backend's own
	// upper-layer check would miss.
	f, _, _, _ := newOverlayWorld(t)
	var err abi.Errno = -1
	f.Symlink("/a/f2", "/a/f1", func(e abi.Errno) { err = e })
	if err != abi.EEXIST {
		t.Fatalf("symlink over lower file = %v, want EEXIST", err)
	}
	if got := mustRead(t, f, "/a/f1"); got != "lower-f1" {
		t.Fatalf("lower file shadowed by refused symlink: %q", got)
	}
}

// --- httpfs error paths ----------------------------------------------------

func TestHTTPFSMissingIndexEntry(t *testing.T) {
	ff := newTexFetcher()
	h := newHTTPFS(t, ff)
	var err abi.Errno = -1
	h.Open("/not/in/index.sty", abi.O_RDONLY, 0, func(_ FileHandle, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("open unindexed = %v, want ENOENT", err)
	}
	if len(ff.fetches) != 0 {
		t.Fatalf("miss caused %d network fetches, want 0 (the index answers)", len(ff.fetches))
	}
	h.Stat("/not/in/index.sty", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("stat unindexed = %v, want ENOENT", err)
	}
	h.Readdir("/cls/article.cls", func(_ []abi.Dirent, e abi.Errno) { err = e })
	if err != abi.ENOTDIR {
		t.Fatalf("readdir of file = %v, want ENOTDIR", err)
	}
	h.Readdir("/nope", func(_ []abi.Dirent, e abi.Errno) { err = e })
	if err != abi.ENOENT {
		t.Fatalf("readdir missing = %v, want ENOENT", err)
	}
}

func TestHTTPFSFetchFailureIsEIO(t *testing.T) {
	// The index promises a file the server cannot deliver (404): EIO, at
	// the backend and through the VFS (where the open is lazy and the
	// error surfaces on first read).
	ff := newTexFetcher()
	idx := map[string]int64{"/cls/article.cls": 15, "/ghost.sty": 99}
	h, err := NewHTTPFS(BuildIndex(idx), ff, func() int64 { return clock })
	if err != nil {
		t.Fatal(err)
	}
	var oerr abi.Errno = -1
	h.Open("/ghost.sty", abi.O_RDONLY, 0, func(_ FileHandle, e abi.Errno) { oerr = e })
	if oerr != abi.EIO {
		t.Fatalf("open of 404 file = %v, want EIO", oerr)
	}

	f := newFS()
	mustMkdirAll(t, f, "/tex")
	f.Mount("/tex", h)
	var rerr abi.Errno = -1
	f.ReadFile("/tex/ghost.sty", func(_ []byte, e abi.Errno) { rerr = e })
	if rerr != abi.EIO {
		t.Fatalf("VFS read of 404 file = %v, want EIO", rerr)
	}
	if got := mustRead(t, f, "/tex/cls/article.cls"); got != "% article class" {
		t.Fatalf("healthy file after failed fetch: %q", got)
	}
}

// --- zipfs error paths -----------------------------------------------------

func buildZip(t *testing.T, files map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for name, content := range files {
		w, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		w.Write([]byte(content))
	}
	zw.Close()
	return buf.Bytes()
}

func TestZipFSGarbageArchiveRejected(t *testing.T) {
	if _, err := NewZipFS([]byte("this is not a zip archive")); err == nil {
		t.Fatal("garbage archive accepted")
	}
	if _, err := NewZipFS(nil); err == nil {
		t.Fatal("empty archive accepted")
	}
}

func TestZipFSTruncatedMemberIsEIO(t *testing.T) {
	// Incompressible payload, so the member's deflate stream is large
	// and the corruption below cannot reach the central directory.
	payload := make([]byte, 16<<10)
	seed := uint32(0x9E3779B9)
	for i := range payload {
		seed = seed*1664525 + 1013904223
		payload[i] = byte(seed >> 24)
	}
	archive := buildZip(t, map[string]string{"data/blob.bin": string(payload)})
	// Corrupt the member's compressed stream without touching the
	// central directory at the end: the index still lists the file, but
	// decompression fails at open.
	corrupted := append([]byte(nil), archive...)
	for i := 100; i < 1000; i++ {
		corrupted[i] ^= 0xFF
	}
	z, err := NewZipFS(corrupted)
	if err != nil {
		t.Fatalf("central directory should still parse: %v", err)
	}
	var st abi.Stat
	var serr abi.Errno
	z.Stat("/data/blob.bin", func(s abi.Stat, e abi.Errno) { st, serr = s, e })
	if serr != abi.OK || st.Size != int64(len(payload)) {
		t.Fatalf("index stat = %v size %d", serr, st.Size)
	}
	var oerr abi.Errno = -1
	z.Open("/data/blob.bin", abi.O_RDONLY, 0, func(_ FileHandle, e abi.Errno) { oerr = e })
	if oerr != abi.EIO {
		t.Fatalf("open of corrupted member = %v, want EIO", oerr)
	}
	// Through the VFS (lazy open: the error surfaces on read).
	f := newFS()
	mustMkdirAll(t, f, "/z")
	f.Mount("/z", z)
	var rerr abi.Errno = -1
	f.ReadFile("/z/data/blob.bin", func(_ []byte, e abi.Errno) { rerr = e })
	if rerr != abi.EIO {
		t.Fatalf("VFS read of corrupted member = %v, want EIO", rerr)
	}
	var uerr abi.Errno = -1
	z.Open("/data/missing.bin", abi.O_RDONLY, 0, func(_ FileHandle, e abi.Errno) { uerr = e })
	if uerr != abi.ENOENT {
		t.Fatalf("open missing member = %v, want ENOENT", uerr)
	}
}
