package fs

import (
	"fmt"
	"testing"

	"repro/internal/abi"
)

// The whole-walk tier is a radix-prefix tree: a TeX-Live-scale tree of
// 10^5 names shares every directory prefix once, so the entire working
// set coexists inside the node budget — the flat map it replaced cleared
// wholesale every 16384 entries and could never keep such a tree warm.
func TestWalkCacheRadixHoldsTexScaleTree(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-name tree build")
	}
	f := newFS()
	const dirs, filesPer = 100, 1000 // 10^5 leaf names
	for d := 0; d < dirs; d++ {
		dir := fmt.Sprintf("/texmf%02d", d)
		mustMkdirAll(t, f, dir)
		for i := 0; i < filesPer; i++ {
			path := fmt.Sprintf("%s/f%05d", dir, i)
			f.WriteFile(path, nil, 0o644, func(err abi.Errno) {
				if err != abi.OK {
					t.Fatalf("write %s: %v", path, err)
				}
			})
		}
	}
	stat := func(p string) {
		var got abi.Errno = -1
		f.Stat(p, func(_ abi.Stat, e abi.Errno) { got = e })
		if got != abi.OK {
			t.Fatalf("stat %s: %v", p, got)
		}
	}
	for d := 0; d < dirs; d++ {
		for i := 0; i < filesPer; i++ {
			stat(fmt.Sprintf("/texmf%02d/f%05d", d, i))
		}
	}
	s := f.CacheStats()
	if s.WalkNodes < dirs*filesPer {
		t.Fatalf("walk tier holds %d nodes, want the whole %d-name tree resident", s.WalkNodes, dirs*filesPer)
	}
	if s.WalkNodes > maxWalkNodes {
		t.Fatalf("walk tier %d nodes exceeds its budget %d", s.WalkNodes, maxWalkNodes)
	}
	// Warm re-stats of recently-walked names must hit the whole-walk
	// tier without any rebuild: hits go up, the node count does not move.
	before := f.CacheStats()
	const reStats = 500
	for i := filesPer - reStats; i < filesPer; i++ {
		stat(fmt.Sprintf("/texmf%02d/f%05d", dirs-1, i))
	}
	after := f.CacheStats()
	if got := after.WalkHits - before.WalkHits; got != reStats {
		t.Errorf("warm re-stats produced %d whole-walk hits, want %d", got, reStats)
	}
	if after.WalkNodes != before.WalkNodes {
		t.Errorf("warm re-stats changed the node count: %d -> %d (tier rebuilt?)", before.WalkNodes, after.WalkNodes)
	}
}

// Distinct spellings of one path share a radix node, and each option
// flavour occupies its own slot on that node.
func TestWalkCacheSpellingAndFlavours(t *testing.T) {
	f := newFS()
	mustMkdirAll(t, f, "/a/b")
	mustWrite(t, f, "/a/b/f", "x")
	stat := func(p string) {
		var got abi.Errno = -1
		f.Stat(p, func(_ abi.Stat, e abi.Errno) { got = e })
		if got != abi.OK {
			t.Fatalf("stat %s: %v", p, got)
		}
	}
	stat("/a/b/f")
	nodes := f.CacheStats().WalkNodes
	before := f.CacheStats().WalkHits
	stat("/a//b/f")
	stat("/a/./b/f")
	s := f.CacheStats()
	if got := s.WalkHits - before; got != 2 {
		t.Errorf("alternate spellings produced %d walk hits, want 2", got)
	}
	if s.WalkNodes != nodes {
		t.Errorf("alternate spellings grew the tree: %d -> %d nodes", nodes, s.WalkNodes)
	}
	// A trailing-slash (requireDir) walk of the directory is a distinct
	// flavour on the same node: first walk populates it, second hits.
	var err abi.Errno = -1
	f.Stat("/a/b/", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("stat /a/b/: %v", err)
	}
	before = f.CacheStats().WalkHits
	f.Stat("/a/b/", func(_ abi.Stat, e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("stat /a/b/ again: %v", err)
	}
	if got := f.CacheStats().WalkHits - before; got != 1 {
		t.Errorf("trailing-slash re-stat produced %d walk hits, want 1", got)
	}
}
