package fs

import (
	"fmt"
	"testing"

	"repro/internal/abi"
)

// rangeFakeFetcher serves a static tree and records every fetch, both
// whole-body and ranged.
type rangeFakeFetcher struct {
	files  map[string][]byte
	whole  []string
	ranges []string // "path:off+n"
}

func (f *rangeFakeFetcher) Fetch(p string, cb func([]byte, int)) {
	body, ok := f.files[p]
	if !ok {
		cb(nil, 404)
		return
	}
	f.whole = append(f.whole, p)
	cb(body, 200)
}

func (f *rangeFakeFetcher) FetchRange(p string, off, n int64, cb func([]byte, int)) {
	body, ok := f.files[p]
	if !ok {
		cb(nil, 404)
		return
	}
	f.ranges = append(f.ranges, fmt.Sprintf("%s:%d+%d", p, off, n))
	end := off + n
	if end > int64(len(body)) {
		end = int64(len(body))
	}
	if off >= end {
		cb(nil, 206)
		return
	}
	cb(body[off:end], 206)
}

func newRangeHTTPFS(t *testing.T, files map[string][]byte) (*HTTPFS, *rangeFakeFetcher) {
	t.Helper()
	idx := map[string]int64{}
	for p, b := range files {
		idx[p] = int64(len(b))
	}
	ff := &rangeFakeFetcher{files: files}
	h, err := NewHTTPFS(BuildIndex(idx), ff, func() int64 { return clock })
	if err != nil {
		t.Fatalf("NewHTTPFS: %v", err)
	}
	return h, ff
}

// TestHTTPFSRangeFetchesWindow: a big file on a range-capable server is
// read with byte-range fetches sized to the requested window; the whole
// body is never transferred.
func TestHTTPFSRangeFetchesWindow(t *testing.T) {
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	h, ff := newRangeHTTPFS(t, map[string][]byte{"/big.bin": big})

	var fh FileHandle
	h.Open("/big.bin", abi.O_RDONLY, 0, func(x FileHandle, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("open: %v", err)
		}
		fh = x
	})
	var got []byte
	fh.Pread(4096, 8192, func(b []byte, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("pread: %v", err)
		}
		got = b
	})
	if len(got) != 8192 || got[0] != big[4096] || got[8191] != big[4096+8191] {
		t.Fatalf("range read returned %d bytes (first/last mismatch)", len(got))
	}
	if len(ff.whole) != 0 {
		t.Fatalf("whole-body fetches for a ranged read: %v", ff.whole)
	}
	if len(ff.ranges) != 1 || ff.ranges[0] != "/big.bin:4096+8192" {
		t.Fatalf("range fetches: %v, want exactly /big.bin:4096+8192", ff.ranges)
	}
	if h.BytesFetched != 8192 || h.RangeFetches != 1 {
		t.Fatalf("BytesFetched=%d RangeFetches=%d", h.BytesFetched, h.RangeFetches)
	}
	// Reads past EOF clamp.
	fh.Pread(1<<20-100, 4096, func(b []byte, err abi.Errno) {
		if err != abi.OK || len(b) != 100 {
			t.Fatalf("tail read: %d bytes err=%v", len(b), err)
		}
	})
}

// ignoreRangeFetcher models a server that answers Range requests with
// 200 + the whole body (legal HTTP).
type ignoreRangeFetcher struct {
	rangeFakeFetcher
	fullFetches int
}

func (f *ignoreRangeFetcher) FetchRange(p string, off, n int64, cb func([]byte, int)) {
	body, ok := f.files[p]
	if !ok {
		cb(nil, 404)
		return
	}
	f.fullFetches++
	cb(body, 200)
}

// TestHTTPFSRangeIgnoredByServer: when the server ignores Range and
// sends 200 + the full body, the handle serves the right window, caches
// the body (later windows cost no traffic), and accounts the full
// transfer.
func TestHTTPFSRangeIgnoredByServer(t *testing.T) {
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 5)
	}
	idx := map[string]int64{"/b": int64(len(big))}
	ff := &ignoreRangeFetcher{rangeFakeFetcher: rangeFakeFetcher{files: map[string][]byte{"/b": big}}}
	h, err := NewHTTPFS(BuildIndex(idx), ff, func() int64 { return clock })
	if err != nil {
		t.Fatalf("NewHTTPFS: %v", err)
	}
	var fh FileHandle
	h.Open("/b", abi.O_RDONLY, 0, func(x FileHandle, e abi.Errno) {
		if e != abi.OK {
			t.Fatalf("open: %v", e)
		}
		fh = x
	})
	fh.Pread(1000, 64, func(b []byte, e abi.Errno) {
		if e != abi.OK || len(b) != 64 || b[0] != big[1000] || b[63] != big[1063] {
			t.Fatalf("window from 200 body wrong: %d bytes err=%v", len(b), e)
		}
	})
	if h.BytesFetched != 1<<20 || h.RangeFetches != 0 {
		t.Fatalf("200 fallback accounting: bytes=%d rangeFetches=%d", h.BytesFetched, h.RangeFetches)
	}
	// Second window: served from the cached body, zero traffic.
	fh.Pread(1<<19, 64, func(b []byte, e abi.Errno) {
		if e != abi.OK || len(b) != 64 || b[0] != big[1<<19] {
			t.Fatalf("cached window wrong")
		}
	})
	if ff.fullFetches != 1 {
		t.Fatalf("whole body fetched %d times, want 1", ff.fullFetches)
	}
}

// TestHTTPFSSmallFileStaysWholeBody: files at or below the threshold
// keep the one-fetch whole-body path (a range round trip per window
// would cost more than it saves).
func TestHTTPFSSmallFileStaysWholeBody(t *testing.T) {
	h, ff := newRangeHTTPFS(t, map[string][]byte{"/small.txt": []byte("tiny body")})
	var fh FileHandle
	h.Open("/small.txt", abi.O_RDONLY, 0, func(x FileHandle, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("open: %v", err)
		}
		fh = x
	})
	fh.Pread(0, 64, func(b []byte, err abi.Errno) {
		if err != abi.OK || string(b) != "tiny body" {
			t.Fatalf("read: %q err=%v", b, err)
		}
	})
	if len(ff.ranges) != 0 || len(ff.whole) != 1 {
		t.Fatalf("small file used ranges=%v whole=%v", ff.ranges, ff.whole)
	}
}

// TestHTTPFSRangeUnderPageCache: mounted behind the VFS page cache, the
// first pages of a big file cost one miss fetch plus one readahead
// fetch — a few windows, not the megabyte body. First-byte latency is
// proportional to the window, not the file.
func TestHTTPFSRangeUnderPageCache(t *testing.T) {
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 13)
	}
	h, ff := newRangeHTTPFS(t, map[string][]byte{"/tree/big.dat": big})
	f := newFS()
	mustMkdirAll(t, f, "/mnt")
	f.Mount("/mnt", h)

	var fh FileHandle
	f.Open("/mnt/tree/big.dat", abi.O_RDONLY, 0, func(x FileHandle, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("open: %v", err)
		}
		fh = x
	})
	var got []byte
	fh.Pread(0, 4096, func(b []byte, err abi.Errno) {
		if err != abi.OK {
			t.Fatalf("pread: %v", err)
		}
		got = b
	})
	if len(got) != 4096 || got[100] != big[100] {
		t.Fatalf("first page read wrong (%d bytes)", len(got))
	}
	// One miss window (a page) + at most one readahead window.
	maxBytes := int64((1 + DefaultReadaheadPages) * PageSize)
	if h.BytesFetched > maxBytes {
		t.Fatalf("first-page read transferred %d bytes, want <= %d (windowed ranges)",
			h.BytesFetched, maxBytes)
	}
	if len(ff.whole) != 0 {
		t.Fatalf("page-cache read triggered whole-body fetches: %v", ff.whole)
	}
	// A second read of the same window is a pure cache hit: no fetches.
	fetches := h.FetchCount
	fh.Pread(0, 4096, func(b []byte, err abi.Errno) {
		if err != abi.OK || len(b) != 4096 {
			t.Fatalf("cached reread failed")
		}
	})
	if h.FetchCount != fetches {
		t.Fatalf("cached reread hit the network (%d -> %d)", fetches, h.FetchCount)
	}
}
