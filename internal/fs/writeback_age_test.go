package fs

import (
	"testing"

	"repro/internal/abi"
)

// Age-based background flusher and per-path flush error reporting.

// fakeTimer is a deterministic stand-in for the simulator's delayed
// post: ticks fire when the test advances the clock.
type fakeTimer struct {
	pending []struct {
		at int64
		fn func()
	}
}

func (ft *fakeTimer) schedule(d int64, fn func()) {
	ft.pending = append(ft.pending, struct {
		at int64
		fn func()
	}{clock + d, fn})
}

// advance moves the clock to at and fires every due tick in order.
func (ft *fakeTimer) advance(at int64) {
	clock = at
	for {
		fired := false
		for i, p := range ft.pending {
			if p.at <= clock {
				ft.pending = append(ft.pending[:i], ft.pending[i+1:]...)
				p.fn()
				fired = true
				break
			}
		}
		if !fired {
			return
		}
	}
}

// TestAgedFlushLandsQuietFiles: a buffered write on a file nobody
// fsyncs lands on the backend once its extents come of age — via the
// virtual-time timer, counted in CacheStats.AgedFlushes.
func TestAgedFlushLandsQuietFiles(t *testing.T) {
	clock = 1000
	mem := NewMemFS(func() int64 { return clock })
	f := NewFileSystem(mem, func() int64 { return clock })
	ft := &fakeTimer{}
	f.SetFlushTimer(ft.schedule)
	f.SetFlushAge(5000)

	h := openWB(t, f, "/quiet.log", abi.O_WRONLY|abi.O_CREAT)
	writesBefore := mem.WriteOps
	pwrite(t, h, 0, "buffered line\n")
	if mem.WriteOps != writesBefore {
		t.Fatalf("write reached the backend immediately (write-back off?)")
	}
	if len(ft.pending) == 0 {
		t.Fatalf("buffering armed no flush timer")
	}

	// Young extents survive an early tick.
	ft.advance(clock + 1000)
	if mem.WriteOps != writesBefore || f.CacheStats().AgedFlushes != 0 {
		t.Fatalf("extent flushed before its age")
	}

	// Past the age, the background flusher lands it — no fsync anywhere.
	ft.advance(clock + 10_000)
	s := f.CacheStats()
	if s.AgedFlushes != 1 {
		t.Fatalf("AgedFlushes = %d, want 1", s.AgedFlushes)
	}
	if mem.WriteOps == writesBefore {
		t.Fatalf("aged flush issued no backend write")
	}
	if s.DirtyBytes != 0 {
		t.Fatalf("DirtyBytes = %d after aged flush", s.DirtyBytes)
	}
	if got := mustRead(t, f, "/quiet.log"); got != "buffered line\n" {
		t.Fatalf("backend content %q", got)
	}

	// The timer quiesces while nothing is dirty, and re-arms on the
	// next buffered write.
	if len(ft.pending) != 0 {
		t.Fatalf("flush timer still armed with nothing dirty")
	}
	pwrite(t, h, 14, "second line\n")
	if len(ft.pending) == 0 {
		t.Fatalf("second write did not re-arm the flush timer")
	}
	ft.advance(clock + 10_000)
	if f.CacheStats().AgedFlushes != 2 {
		t.Fatalf("AgedFlushes = %d after second quiet period", f.CacheStats().AgedFlushes)
	}
	h.Close(func(abi.Errno) {})
}

// failingBackend wraps a backend so opened handles fail writes while
// *fail is set — the backend error a background flush runs into.
type failingBackend struct {
	Backend
	fail *bool
}

func (b *failingBackend) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	b.Backend.Open(p, flags, mode, func(h FileHandle, err abi.Errno) {
		if err == abi.OK {
			h = &failingHandle{FileHandle: h, fail: b.fail}
		}
		cb(h, err)
	})
}

type failingHandle struct {
	FileHandle
	fail *bool
}

func (h *failingHandle) Pwrite(off int64, data []byte, cb func(int, abi.Errno)) {
	if *h.fail {
		cb(0, abi.EIO)
		return
	}
	h.FileHandle.Pwrite(off, data, cb)
}

func (h *failingHandle) Pwritev(off int64, bufs [][]byte, cb func(int, abi.Errno)) {
	if *h.fail {
		cb(0, abi.EIO)
		return
	}
	h.FileHandle.Pwritev(off, bufs, cb)
}

// TestFlushErrorSurfacesAtNextFsync: a failed background (aged) flush is
// recorded per path and reported by the next fsync on that path — not
// silently dropped, and not deferred all the way to close.
func TestFlushErrorSurfacesAtNextFsync(t *testing.T) {
	clock = 1000
	mem := NewMemFS(func() int64 { return clock })
	fail := false
	f := NewFileSystem(&failingBackend{Backend: mem, fail: &fail}, func() int64 { return clock })
	ft := &fakeTimer{}
	f.SetFlushTimer(ft.schedule)
	f.SetFlushAge(5000)

	h := openWB(t, f, "/flaky.log", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "doomed bytes")
	fail = true
	ft.advance(clock + 10_000) // aged background flush fails
	if f.CacheStats().AgedFlushes != 1 {
		t.Fatalf("AgedFlushes = %d", f.CacheStats().AgedFlushes)
	}

	fail = false
	var serr abi.Errno = -1
	h.(Syncer).Sync(func(e abi.Errno) { serr = e })
	if serr != abi.EIO {
		t.Fatalf("first fsync after failed background flush: %v, want EIO", serr)
	}
	// Reported once: the next fsync is clean.
	serr = -1
	h.(Syncer).Sync(func(e abi.Errno) { serr = e })
	if serr != abi.OK {
		t.Fatalf("second fsync: %v, want OK", serr)
	}
	h.Close(func(abi.Errno) {})
}

// TestOpenBarrierFlushErrorSurfacesAtFsync: the Open barrier's flush
// (cross-handle read-your-writes) has no caller to report to either —
// its failure must reach the writer's next fsync like any background
// flush.
func TestOpenBarrierFlushErrorSurfacesAtFsync(t *testing.T) {
	clock = 1000
	mem := NewMemFS(func() int64 { return clock })
	fail := false
	f := NewFileSystem(&failingBackend{Backend: mem, fail: &fail}, func() int64 { return clock })

	h := openWB(t, f, "/barrier.log", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "buffered")
	fail = true
	// A second open of the dirty path runs the flush barrier; the open
	// itself succeeds, the flush failure is recorded.
	h2 := openWB(t, f, "/barrier.log", abi.O_RDONLY)
	h2.Close(func(abi.Errno) {})
	fail = false
	var serr abi.Errno = -1
	h.(Syncer).Sync(func(e abi.Errno) { serr = e })
	if serr != abi.EIO {
		t.Fatalf("fsync after failed open-barrier flush: %v, want EIO", serr)
	}
	h.Close(func(abi.Errno) {})
}

// TestOverflowFlushErrorSurfacesAtFsync: the budget-overflow flush path
// records failures the same way.
func TestOverflowFlushErrorSurfacesAtFsync(t *testing.T) {
	clock = 1000
	mem := NewMemFS(func() int64 { return clock })
	fail := false
	f := NewFileSystem(&failingBackend{Backend: mem, fail: &fail}, func() int64 { return clock })
	f.SetDirtyBudget(64)

	h := openWB(t, f, "/burst.log", abi.O_WRONLY|abi.O_CREAT)
	pwrite(t, h, 0, "0123456789")
	fail = true
	pwrite(t, h, 10, string(make([]byte, 128))) // blows the budget; flush fails
	if f.CacheStats().OverflowFlushes == 0 {
		t.Fatalf("no overflow flush happened")
	}
	fail = false
	var serr abi.Errno = -1
	h.(Syncer).Sync(func(e abi.Errno) { serr = e })
	if serr != abi.EIO {
		t.Fatalf("fsync after failed overflow flush: %v, want EIO", serr)
	}
	h.Close(func(abi.Errno) {})
}
