package fs

import (
	"path"
	"sort"
	"strings"

	"repro/internal/abi"
)

// OverlayFS is BrowserFS's overlay backend with the two Browsix extensions
// from §3.6:
//
//  1. Lazy underlay — the original overlay eagerly read every file from
//     the read-only lower layer at initialization; Browsix made reads lazy
//     (copy-up happens only when a file is first written). The Eager option
//     restores the old behaviour for the ablation benchmark.
//  2. Multi-process locking — operations from different processes must not
//     interleave, so every operation runs under an internal queue lock for
//     the full (possibly asynchronous) span of the operation.
//
// Deletions of lower-layer files are recorded in a deletion log, as in
// BrowserFS.
type OverlayFS struct {
	upper   Backend // writable
	lower   Backend // read-only
	deleted map[string]bool

	lockDepth int
	waiters   []func()

	// LockWaits counts operations that had to queue behind the lock
	// (observability for the locking tests).
	LockWaits int
}

// NewOverlayFS builds an overlay of a writable upper backend over a
// read-only lower backend.
func NewOverlayFS(upper, lower Backend) *OverlayFS {
	return &OverlayFS{upper: upper, lower: lower, deleted: map[string]bool{}}
}

// Name implements Backend.
func (o *OverlayFS) Name() string { return "overlayfs(" + o.upper.Name() + "+" + o.lower.Name() + ")" }

// ReadOnly implements Backend.
func (o *OverlayFS) ReadOnly() bool { return false }

// PageCacheable opts the overlay into the VFS page cache: reads often
// come from a slow lower layer (httpfs), and every write goes through the
// VFS invalidation hooks.
func (o *OverlayFS) PageCacheable() bool { return true }

// PageDedupable opts the overlay into content-addressed page sharing
// even though it is writable: lower-layer pages are immutable, and every
// upper-layer mutation (including copy-up) routes through the VFS
// invalidation hooks, which drop the shared reference before the new
// bytes become visible.
func (o *OverlayFS) PageDedupable() bool { return true }

// lock serializes operations: fn runs when the lock is free and must call
// release exactly once when its (possibly async) work completes.
func (o *OverlayFS) lock(fn func(release func())) {
	run := func() {
		o.lockDepth++
		fn(func() {
			o.lockDepth--
			if len(o.waiters) > 0 {
				next := o.waiters[0]
				o.waiters = o.waiters[1:]
				next()
			}
		})
	}
	if o.lockDepth > 0 {
		o.LockWaits++
		o.waiters = append(o.waiters, run)
		return
	}
	run()
}

// Stat implements Backend.
func (o *OverlayFS) Stat(p string, cb func(abi.Stat, abi.Errno)) { o.Lstat(p, cb) }

// Lstat implements Backend.
func (o *OverlayFS) Lstat(p string, cb func(abi.Stat, abi.Errno)) {
	p = Clean(p)
	if o.deleted[p] {
		cb(abi.Stat{}, abi.ENOENT)
		return
	}
	o.upper.Lstat(p, func(st abi.Stat, err abi.Errno) {
		if err == abi.OK {
			cb(st, abi.OK)
			return
		}
		o.lower.Lstat(p, cb)
	})
}

// ensureUpperDirs creates, in the upper layer, every ancestor directory of
// p that exists in the merged view (needed before a copy-up).
func (o *OverlayFS) ensureUpperDirs(p string, cb func(abi.Errno)) {
	dir := path.Dir(Clean(p))
	if dir == "/" {
		cb(abi.OK)
		return
	}
	parts := strings.Split(strings.TrimPrefix(dir, "/"), "/")
	var step func(i int)
	step = func(i int) {
		if i > len(parts) {
			cb(abi.OK)
			return
		}
		sub := "/" + strings.Join(parts[:i], "/")
		o.upper.Mkdir(sub, 0o755, func(err abi.Errno) {
			if err != abi.OK && err != abi.EEXIST {
				cb(err)
				return
			}
			step(i + 1)
		})
	}
	step(1)
}

// copyUp copies a lower-layer file into the upper layer (lazily: only
// called when a write requires it). The transfer is vectored end to end:
// the lower handle gathers page-sized segments in one Preadv, and the
// upper handle lands them with one Pwritev — no coalescing copy between
// the layers.
func (o *OverlayFS) copyUp(p string, cb func(abi.Errno)) {
	o.lower.Open(p, abi.O_RDONLY, 0, func(lh FileHandle, err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		lh.Stat(func(st abi.Stat, err abi.Errno) {
			if err != abi.OK {
				lh.Close(func(abi.Errno) {})
				cb(err)
				return
			}
			lens := make([]int, 0, st.Size/PageSize+1)
			for left := st.Size; left > 0; left -= PageSize {
				n := left
				if n > PageSize {
					n = PageSize
				}
				lens = append(lens, int(n))
			}
			lh.Preadv(0, lens, func(segs [][]byte, err abi.Errno) {
				lh.Close(func(abi.Errno) {})
				if err != abi.OK {
					cb(err)
					return
				}
				o.ensureUpperDirs(p, func(err abi.Errno) {
					if err != abi.OK {
						cb(err)
						return
					}
					o.upper.Open(p, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, uint32(st.Mode&0o777), func(uh FileHandle, err abi.Errno) {
						if err != abi.OK {
							cb(err)
							return
						}
						uh.Pwritev(0, segs, func(n int, err abi.Errno) {
							uh.Close(func(abi.Errno) {})
							cb(err)
						})
					})
				})
			})
		})
	})
}

// Open implements Backend. Reads are served from whichever layer has the
// file; writes force a copy-up first.
func (o *OverlayFS) Open(p string, flags int, mode uint32, cb func(FileHandle, abi.Errno)) {
	p = Clean(p)
	o.lock(func(release func()) {
		done := func(h FileHandle, err abi.Errno) {
			cb(h, err)
			release()
		}
		wantsWrite := flags&abi.O_ACCMODE != abi.O_RDONLY || flags&(abi.O_CREAT|abi.O_TRUNC) != 0
		if o.deleted[p] {
			if flags&abi.O_CREAT == 0 {
				done(nil, abi.ENOENT)
				return
			}
			delete(o.deleted, p)
			o.ensureUpperDirs(p, func(err abi.Errno) {
				if err != abi.OK {
					done(nil, err)
					return
				}
				o.upper.Open(p, flags, mode, done)
			})
			return
		}
		o.upper.Stat(p, func(_ abi.Stat, uerr abi.Errno) {
			if uerr == abi.OK {
				o.upper.Open(p, flags, mode, done)
				return
			}
			o.lower.Stat(p, func(lst abi.Stat, lerr abi.Errno) {
				switch {
				case lerr == abi.OK && !wantsWrite:
					o.lower.Open(p, flags, mode, done)
				case lerr == abi.OK && wantsWrite:
					if lst.IsDir() {
						done(nil, abi.EISDIR)
						return
					}
					if flags&abi.O_TRUNC != 0 {
						// Content will be discarded: create fresh upper file.
						o.ensureUpperDirs(p, func(err abi.Errno) {
							if err != abi.OK {
								done(nil, err)
								return
							}
							o.upper.Open(p, flags|abi.O_CREAT, mode, done)
						})
						return
					}
					o.copyUp(p, func(err abi.Errno) {
						if err != abi.OK {
							done(nil, err)
							return
						}
						o.upper.Open(p, flags, mode, done)
					})
				case flags&abi.O_CREAT != 0:
					o.ensureUpperDirs(p, func(err abi.Errno) {
						if err != abi.OK {
							done(nil, err)
							return
						}
						o.upper.Open(p, flags, mode, done)
					})
				default:
					done(nil, abi.ENOENT)
				}
			})
		})
	})
}

// Readdir implements Backend: the union of both layers minus deletions.
func (o *OverlayFS) Readdir(p string, cb func([]abi.Dirent, abi.Errno)) {
	p = Clean(p)
	if o.deleted[p] {
		cb(nil, abi.ENOENT)
		return
	}
	o.upper.Readdir(p, func(uents []abi.Dirent, uerr abi.Errno) {
		o.lower.Readdir(p, func(lents []abi.Dirent, lerr abi.Errno) {
			if uerr != abi.OK && lerr != abi.OK {
				cb(nil, uerr)
				return
			}
			merged := map[string]abi.Dirent{}
			if lerr == abi.OK {
				for _, e := range lents {
					if !o.deleted[Clean(p+"/"+e.Name)] {
						merged[e.Name] = e
					}
				}
			}
			if uerr == abi.OK {
				for _, e := range uents {
					merged[e.Name] = e
				}
			}
			out := make([]abi.Dirent, 0, len(merged))
			for _, e := range merged {
				out = append(out, e)
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
			cb(out, abi.OK)
		})
	})
}

// Mkdir implements Backend.
func (o *OverlayFS) Mkdir(p string, mode uint32, cb func(abi.Errno)) {
	p = Clean(p)
	o.lock(func(release func()) {
		done := func(err abi.Errno) { cb(err); release() }
		if o.deleted[p] {
			delete(o.deleted, p)
			o.ensureUpperDirs(p, func(err abi.Errno) {
				if err != abi.OK {
					done(err)
					return
				}
				o.upper.Mkdir(p, mode, done)
			})
			return
		}
		o.Lstat(p, func(_ abi.Stat, err abi.Errno) {
			if err == abi.OK {
				done(abi.EEXIST)
				return
			}
			o.ensureUpperDirs(p, func(err abi.Errno) {
				if err != abi.OK {
					done(err)
					return
				}
				o.upper.Mkdir(p, mode, done)
			})
		})
	})
}

// Rmdir implements Backend.
func (o *OverlayFS) Rmdir(p string, cb func(abi.Errno)) {
	p = Clean(p)
	o.lock(func(release func()) {
		done := func(err abi.Errno) { cb(err); release() }
		o.Readdir(p, func(ents []abi.Dirent, err abi.Errno) {
			if err != abi.OK {
				done(err)
				return
			}
			if len(ents) > 0 {
				done(abi.ENOTEMPTY)
				return
			}
			o.upper.Rmdir(p, func(uerr abi.Errno) {
				o.lower.Stat(p, func(_ abi.Stat, lerr abi.Errno) {
					if lerr == abi.OK {
						o.deleted[p] = true
						done(abi.OK)
						return
					}
					done(uerr)
				})
			})
		})
	})
}

// Unlink implements Backend: removes from the upper layer and/or records a
// deletion hiding the lower-layer file.
func (o *OverlayFS) Unlink(p string, cb func(abi.Errno)) {
	p = Clean(p)
	o.lock(func(release func()) {
		done := func(err abi.Errno) { cb(err); release() }
		if o.deleted[p] {
			done(abi.ENOENT)
			return
		}
		o.upper.Unlink(p, func(uerr abi.Errno) {
			o.lower.Stat(p, func(lst abi.Stat, lerr abi.Errno) {
				if lerr == abi.OK {
					if lst.IsDir() {
						done(abi.EISDIR)
						return
					}
					o.deleted[p] = true
					done(abi.OK)
					return
				}
				done(uerr)
			})
		})
	})
}

// Rename implements Backend (copy-up then rename within the upper
// layer). A directory source is materialized in the upper layer with a
// recursive copy-up, renamed there in one operation, and the lower
// subtree it moved away from is hidden by a subtree whiteout — so
// renaming a lower-layer directory tree is a single overlay op, not a
// per-file dance.
func (o *OverlayFS) Rename(oldp, newp string, cb func(abi.Errno)) {
	oldp, newp = Clean(oldp), Clean(newp)
	o.lock(func(release func()) {
		done := func(err abi.Errno) { cb(err); release() }
		if o.deleted[oldp] {
			done(abi.ENOENT)
			return
		}
		finish := func() {
			// The destination's ancestors may exist only in the lower
			// layer (or nowhere in upper): materialize them before the
			// upper-layer rename.
			o.ensureUpperDirs(newp, func(err abi.Errno) {
				if err != abi.OK {
					done(err)
					return
				}
				o.upper.Rename(oldp, newp, func(err abi.Errno) {
					if err != abi.OK {
						done(err)
						return
					}
					// Deletions shadowing the destination would hide the
					// just-moved entries — but only whiteouts the moved
					// upper tree now covers may be cleared. A whiteout on
					// a lower-only path under newp (a file deleted before
					// the rename, never part of the moved tree) must
					// survive, or the rename resurrects it.
					var cands []string
					for dp := range o.deleted {
						if dp == newp || strings.HasPrefix(dp, newp+"/") {
							cands = append(cands, dp)
						}
					}
					var step func(i int)
					step = func(i int) {
						if i >= len(cands) {
							o.whiteoutLowerTree(oldp, func() { done(abi.OK) })
							return
						}
						dp := cands[i]
						o.upper.Lstat(dp, func(_ abi.Stat, uerr abi.Errno) {
							if uerr == abi.OK {
								delete(o.deleted, dp)
							}
							step(i + 1)
						})
					}
					step(0)
				})
			})
		}
		o.Lstat(oldp, func(ost abi.Stat, oerr abi.Errno) {
			if oerr != abi.OK {
				done(abi.ENOENT)
				return
			}
			if ost.IsDir() {
				o.copyUpTree(oldp, func(err abi.Errno) {
					if err != abi.OK {
						done(err)
						return
					}
					finish()
				})
				return
			}
			o.upper.Stat(oldp, func(_ abi.Stat, uerr abi.Errno) {
				if uerr == abi.OK {
					finish()
					return
				}
				o.copyUp(oldp, func(err abi.Errno) {
					if err != abi.OK {
						done(err)
						return
					}
					finish()
				})
			})
		})
	})
}

// copyUpTree materializes the merged subtree rooted at directory p
// entirely in the upper layer: directories created, regular files copied
// up (vectored, via copyUp), symlinks re-created. The recursive
// extension of copyUp behind directory renames. Runs under the overlay
// lock of its caller.
func (o *OverlayFS) copyUpTree(p string, cb func(abi.Errno)) {
	o.ensureUpperDirs(p, func(err abi.Errno) {
		if err != abi.OK {
			cb(err)
			return
		}
		o.upper.Mkdir(p, 0o755, func(merr abi.Errno) {
			if merr != abi.OK && merr != abi.EEXIST {
				cb(merr)
				return
			}
			o.Readdir(p, func(ents []abi.Dirent, rerr abi.Errno) {
				if rerr != abi.OK {
					cb(rerr)
					return
				}
				var step func(i int)
				step = func(i int) {
					if i >= len(ents) {
						cb(abi.OK)
						return
					}
					child := Clean(p + "/" + ents[i].Name)
					next := func(err abi.Errno) {
						if err != abi.OK {
							cb(err)
							return
						}
						step(i + 1)
					}
					o.Lstat(child, func(st abi.Stat, serr abi.Errno) {
						switch {
						case serr != abi.OK:
							step(i + 1) // vanished mid-walk
						case st.IsDir():
							o.copyUpTree(child, next)
						case st.IsSymlink():
							o.upper.Lstat(child, func(_ abi.Stat, uerr abi.Errno) {
								if uerr == abi.OK {
									step(i + 1)
									return
								}
								o.Readlink(child, func(target string, err abi.Errno) {
									if err != abi.OK {
										cb(err)
										return
									}
									o.upper.Symlink(target, child, func(err abi.Errno) {
										if err == abi.EEXIST {
											err = abi.OK
										}
										next(err)
									})
								})
							})
						default:
							o.upper.Stat(child, func(_ abi.Stat, uerr abi.Errno) {
								if uerr == abi.OK {
									step(i + 1)
									return
								}
								o.copyUp(child, next)
							})
						}
					})
				}
				step(0)
			})
		})
	})
}

// whiteoutLowerTree records deletions for p and every lower-layer path
// beneath it — the subtree whiteout that hides a renamed-away source in
// one pass. Paths absent from the lower layer need no whiteout.
func (o *OverlayFS) whiteoutLowerTree(p string, cb func()) {
	o.lower.Lstat(p, func(st abi.Stat, err abi.Errno) {
		if err != abi.OK {
			cb()
			return
		}
		o.deleted[p] = true
		if !st.IsDir() {
			cb()
			return
		}
		o.lower.Readdir(p, func(ents []abi.Dirent, rerr abi.Errno) {
			if rerr != abi.OK {
				cb()
				return
			}
			var step func(i int)
			step = func(i int) {
				if i >= len(ents) {
					cb()
					return
				}
				o.whiteoutLowerTree(Clean(p+"/"+ents[i].Name), func() { step(i + 1) })
			}
			step(0)
		})
	})
}

// Readlink implements Backend.
func (o *OverlayFS) Readlink(p string, cb func(string, abi.Errno)) {
	p = Clean(p)
	if o.deleted[p] {
		cb("", abi.ENOENT)
		return
	}
	o.upper.Readlink(p, func(t string, err abi.Errno) {
		if err == abi.OK {
			cb(t, abi.OK)
			return
		}
		o.lower.Readlink(p, cb)
	})
}

// Symlink implements Backend.
func (o *OverlayFS) Symlink(target, linkp string, cb func(abi.Errno)) {
	linkp = Clean(linkp)
	o.lock(func(release func()) {
		done := func(err abi.Errno) { cb(err); release() }
		delete(o.deleted, linkp)
		o.ensureUpperDirs(linkp, func(err abi.Errno) {
			if err != abi.OK {
				done(err)
				return
			}
			o.upper.Symlink(target, linkp, done)
		})
	})
}

// Utimes implements Backend: touching a lower-layer file copies it up
// first (make's timestamp dance requires this).
func (o *OverlayFS) Utimes(p string, atime, mtime int64, cb func(abi.Errno)) {
	p = Clean(p)
	o.lock(func(release func()) {
		done := func(err abi.Errno) { cb(err); release() }
		if o.deleted[p] {
			done(abi.ENOENT)
			return
		}
		o.upper.Utimes(p, atime, mtime, func(uerr abi.Errno) {
			if uerr == abi.OK {
				done(abi.OK)
				return
			}
			o.lower.Stat(p, func(_ abi.Stat, lerr abi.Errno) {
				if lerr != abi.OK {
					done(abi.ENOENT)
					return
				}
				o.copyUp(p, func(err abi.Errno) {
					if err != abi.OK {
						done(err)
						return
					}
					o.upper.Utimes(p, atime, mtime, done)
				})
			})
		})
	})
}

// DeletedPaths returns the deletion log (diagnostics/tests).
func (o *OverlayFS) DeletedPaths() []string {
	out := make([]string, 0, len(o.deleted))
	for p := range o.deleted {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
