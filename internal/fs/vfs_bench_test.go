package fs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/abi"
)

// VFS benchmarks: cached vs uncached walks and reads over the realistic
// stack (overlay of memfs over httpfs, mounted three levels deep — the
// LaTeX editor's shape). "cold" flushes the caches before every
// operation; "warm" measures the steady state. The headline numbers are
// warm-over-cold on stat/open (target ≥5x) and on repeated reads.

const benchDeepPath = "/usr/local/texlive/tex/latex/base/article/article.cls"

// newBenchFS stages the deep httpfs tree at /usr/local/texlive — behind
// an overlay (the LaTeX editor's mutable configuration; read-only opens
// eagerly open the backend to keep POSIX fd-survives-unlink semantics)
// or mounted directly (read-only network backend; opens stay lazy and a
// fully cached hot file is reopened with zero backend calls).
func newBenchFS(b *testing.B, overlay bool) *FileSystem {
	b.Helper()
	body := bytes.Repeat([]byte("% LaTeX class "), 1<<14) // 224 KiB
	ff := &fakeFetcher{files: map[string][]byte{
		"/tex/latex/base/article/article.cls": body,
		"/tex/latex/base/size10.clo":          []byte("% size10"),
		"/fonts/tfm/cmr10.tfm":                bytes.Repeat([]byte{7}, 4096),
	}}
	idx := map[string]int64{}
	for p, data := range ff.files {
		idx[p] = int64(len(data))
	}
	h, err := NewHTTPFS(BuildIndex(idx), ff, func() int64 { return clock })
	if err != nil {
		b.Fatal(err)
	}
	var mnt Backend = h
	if overlay {
		mnt = NewOverlayFS(NewMemFS(now), h)
	}
	f := NewFileSystem(NewMemFS(now), func() int64 { return clock })
	var merr abi.Errno = -1
	f.MkdirAll("/usr/local", 0o755, func(e abi.Errno) { merr = e })
	if merr != abi.OK {
		b.Fatalf("mkdirall: %v", merr)
	}
	f.Mount("/usr/local/texlive", mnt)
	return f
}

func benchStat(b *testing.B, f *FileSystem, cold bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if cold {
			f.FlushCaches()
		}
		var err abi.Errno = -1
		f.Stat(benchDeepPath, func(_ abi.Stat, e abi.Errno) { err = e })
		if err != abi.OK {
			b.Fatalf("stat: %v", err)
		}
	}
}

func benchOpen(b *testing.B, f *FileSystem, cold bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if cold {
			f.FlushCaches()
		}
		var err abi.Errno = -1
		f.Open(benchDeepPath, abi.O_RDONLY, 0, func(h FileHandle, e abi.Errno) {
			err = e
			if e == abi.OK {
				h.Close(func(abi.Errno) {})
			}
		})
		if err != abi.OK {
			b.Fatalf("open: %v", err)
		}
	}
}

// BenchmarkVFSWalk measures path resolution of a deep path across three
// mounts and an overlay. Compare stat-cold vs stat-warm (and open-cold vs
// open-warm) for the dentry-cache speedup.
func BenchmarkVFSWalk(b *testing.B) {
	b.Run("stat-cold", func(b *testing.B) {
		f := newBenchFS(b, true)
		b.ResetTimer()
		benchStat(b, f, true)
	})
	b.Run("stat-warm", func(b *testing.B) {
		f := newBenchFS(b, true)
		benchStat(b, f, false) // prime
		b.ResetTimer()
		benchStat(b, f, false)
	})
	b.Run("open-cold", func(b *testing.B) {
		f := newBenchFS(b, false)
		b.ResetTimer()
		benchOpen(b, f, true)
	})
	b.Run("open-warm", func(b *testing.B) {
		f := newBenchFS(b, false)
		benchOpen(b, f, false)
		b.ResetTimer()
		benchOpen(b, f, false)
	})
	// The overlay open pays an eager backend open even when warm: an
	// O_RDONLY descriptor must survive a later unlink (POSIX), and only
	// a read-only backend can rule that out statically.
	b.Run("open-overlay-cold", func(b *testing.B) {
		f := newBenchFS(b, true)
		b.ResetTimer()
		benchOpen(b, f, true)
	})
	b.Run("open-overlay-warm", func(b *testing.B) {
		f := newBenchFS(b, true)
		benchOpen(b, f, false)
		b.ResetTimer()
		benchOpen(b, f, false)
	})
}

// BenchmarkVFSReadCached measures a full open+read of the 224 KiB class
// file. cold flushes all VFS caches per op (every byte re-crosses the
// overlay and the backend); warm serves from the page cache.
func BenchmarkVFSReadCached(b *testing.B) {
	run := func(b *testing.B, cold bool) {
		f := newBenchFS(b, true)
		read := func() {
			var err abi.Errno = -1
			var n int
			f.ReadFile(benchDeepPath, func(data []byte, e abi.Errno) { n, err = len(data), e })
			if err != abi.OK || n == 0 {
				b.Fatalf("read: %v (%d bytes)", err, n)
			}
			b.SetBytes(int64(n))
		}
		read() // prime (and fix SetBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cold {
				f.FlushCaches()
			}
			read()
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, true) })
	b.Run("warm", func(b *testing.B) { run(b, false) })
}

// BenchmarkVFSReadaheadWindow sweeps the sequential-readahead window for
// a cold sequential read in 4 KiB requests (the walker and page cache are
// flushed every iteration). The custom metric page-hit% reports the page
// cache hit rate the window achieves.
func BenchmarkVFSReadaheadWindow(b *testing.B) {
	for _, window := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ra-%d", window), func(b *testing.B) {
			f := newBenchFS(b, true)
			f.SetReadahead(window)
			for i := 0; i < b.N; i++ {
				f.FlushCaches()
				var h FileHandle
				f.Open(benchDeepPath, abi.O_RDONLY, 0, func(fh FileHandle, e abi.Errno) {
					if e != abi.OK {
						b.Fatalf("open: %v", e)
					}
					h = fh
				})
				var total int64
				for {
					var n int
					h.Pread(total, 4096, func(data []byte, e abi.Errno) { n = len(data) })
					if n == 0 {
						break
					}
					total += int64(n)
				}
				h.Close(func(abi.Errno) {})
				b.SetBytes(total)
			}
			s := f.CacheStats()
			if s.PageHits+s.PageMisses > 0 {
				b.ReportMetric(100*float64(s.PageHits)/float64(s.PageHits+s.PageMisses), "page-hit%")
			}
		})
	}
}

// TestVFSCachedSpeedupGuard is the deterministic counterpart of the
// benchmarks: a warm stat+open must reach at least 5x fewer backend
// operations than a cold one (the benchmark's ≥5x wall-clock claim rests
// on exactly this short-circuit).
func TestVFSCachedSpeedupGuard(t *testing.T) {
	img := NewMemFS(now)
	lfs := NewFileSystem(img, func() int64 { return clock })
	mustMkdirAll(t, lfs, "/tex/latex/base/article")
	mustWrite(t, lfs, "/tex/latex/base/article/article.cls", "x")
	img.SetReadOnly()
	counted := &countingBackend{Backend: img}
	f := newFS()
	mustMkdirAll(t, f, "/usr/local")
	f.Mount("/usr/local/texlive", counted)

	statOpen := func() {
		p := "/usr/local/texlive/tex/latex/base/article/article.cls"
		var err abi.Errno = -1
		f.Stat(p, func(_ abi.Stat, e abi.Errno) { err = e })
		if err != abi.OK {
			t.Fatalf("stat: %v", err)
		}
		f.Open(p, abi.O_RDONLY, 0, func(h FileHandle, e abi.Errno) {
			err = e
			if e == abi.OK {
				h.Close(func(abi.Errno) {})
			}
		})
		if err != abi.OK {
			t.Fatalf("open: %v", err)
		}
	}
	statOpen()
	coldOps := counted.lstats + counted.opens + counted.readdirs
	statOpen()
	warmOps := counted.lstats + counted.opens + counted.readdirs - coldOps
	if coldOps < 5*(warmOps+1) {
		t.Fatalf("cold=%d warm=%d backend ops: cached walk not ≥5x cheaper", coldOps, warmOps)
	}
}
