package fs

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"
)

// Tests for the content-addressed dedup tier: N attachments faulting the
// same immutable bytes hold ONE arena copy, quota stays logical (so
// tenant behaviour is identical with dedup on/off), shared slots free
// exactly once after the last reference, and eviction under arena
// pressure prefers private pages.

// newDedupFS builds a FileSystem attached to pool with the given quota,
// with files staged on a read-only memfs mounted at /ro — the immutable
// base image every dedup test tenants share.
func newDedupFS(t *testing.T, pool *PagePool, quota int, files map[string]string) *FileSystem {
	t.Helper()
	img := NewMemFS(now)
	stage := NewFileSystem(img, func() int64 { return clock })
	for p, content := range files {
		if d := p[:strings.LastIndex(p, "/")]; d != "" {
			mustMkdirAll(t, stage, d)
		}
		mustWrite(t, stage, p, content)
	}
	img.SetReadOnly()
	f := newFS()
	f.SetPagePool(pool, quota)
	mustMkdirAll(t, f, "/ro")
	f.Mount("/ro", img)
	return f
}

func pageContent(seed byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%7)
	}
	return string(b)
}

func TestDedupSharesAcrossAttachments(t *testing.T) {
	pool := NewPagePool(64)
	content := pageContent(3, 2*PageSize+100) // 3 pages, short tail
	files := map[string]string{"/tree/hot.txt": content}
	f1 := newDedupFS(t, pool, 0, files)
	f2 := newDedupFS(t, pool, 0, files)

	if got := mustRead(t, f1, "/ro/tree/hot.txt"); got != content {
		t.Fatalf("tenant 1 read %d bytes, want %d", len(got), len(content))
	}
	entries, refs, hits := pool.DedupStats()
	if entries != 3 || refs != 3 || hits != 0 {
		t.Fatalf("after cold fault: entries=%d refs=%d hits=%d, want 3/3/0", entries, refs, hits)
	}

	// Second tenant reads the same bytes: every page is an index hit,
	// no new slot fills.
	if got := mustRead(t, f2, "/ro/tree/hot.txt"); got != content {
		t.Fatalf("tenant 2 read %d bytes, want %d", len(got), len(content))
	}
	entries, refs, hits = pool.DedupStats()
	if entries != 3 || refs != 6 || hits != 3 {
		t.Fatalf("after shared fault: entries=%d refs=%d hits=%d, want 3/6/3", entries, refs, hits)
	}
	cs := f2.CacheStats()
	if cs.DedupHits != 3 || cs.DedupPages != 3 || cs.SharedBytes != int64(len(content)) {
		t.Fatalf("tenant 2 stats: hits=%d pages=%d sharedBytes=%d, want 3/3/%d",
			cs.DedupHits, cs.DedupPages, cs.SharedBytes, len(content))
	}
	if cs.CachedPages != 3 {
		t.Fatalf("tenant 2 resident pages = %d, want 3", cs.CachedPages)
	}

	// Both tenants map the same physical slots.
	pg1 := f1.pc.files["/ro/tree/hot.txt"].pages
	pg2 := f2.pc.files["/ro/tree/hot.txt"].pages
	for idx, p1 := range pg1 {
		if p2 := pg2[idx]; p2.slot != p1.slot {
			t.Fatalf("page %d: tenant slots differ (%d vs %d)", idx, p1.slot, p2.slot)
		}
	}

	// Release order: first flush only drops references, the last frees.
	f1.FlushCaches()
	if entries, refs, _ = pool.DedupStats(); entries != 3 || refs != 3 {
		t.Fatalf("after tenant 1 flush: entries=%d refs=%d, want 3/3", entries, refs)
	}
	f2.FlushCaches()
	if entries, refs, _ = pool.DedupStats(); entries != 0 || refs != 0 {
		t.Fatalf("after last flush: entries=%d refs=%d, want 0/0", entries, refs)
	}
	if free := pool.FreeSlots(); free != pool.Slots() {
		t.Fatalf("free slots after teardown = %d, want %d", free, pool.Slots())
	}
}

func TestDedupQuotaChargedLogically(t *testing.T) {
	pool := NewPagePool(64)
	files := map[string]string{
		"/tree/a": pageContent(5, 2*PageSize),
		"/tree/b": pageContent(9, PageSize),
	}
	f1 := newDedupFS(t, pool, 0, files)
	f2 := newDedupFS(t, pool, 2, files) // room for exactly 2 pages

	mustRead(t, f1, "/ro/tree/a")
	mustRead(t, f2, "/ro/tree/a") // 2 shared refs: f2 now at quota
	if n := pool.pp.sharedBy(f2.pc.att); n != 2 {
		t.Fatalf("tenant 2 charged %d shared refs, want 2", n)
	}
	// The third page must evict /ro/tree/a from f2's own cache first —
	// shared references consume quota exactly like private slots, so
	// f2's eviction sequence is identical to a dedup-off run.
	mustRead(t, f2, "/ro/tree/b")
	cs := f2.CacheStats()
	if cs.CachedPages != 1 {
		t.Fatalf("tenant 2 resident pages = %d, want 1 (quota forced eviction)", cs.CachedPages)
	}
	if f2.pc.files["/ro/tree/a"] != nil {
		t.Fatal("tenant 2 still holds /ro/tree/a past its quota")
	}
	// Tenant 1 is untouched by its neighbour's pressure.
	if cs1 := f1.CacheStats(); cs1.CachedPages != 2 {
		t.Fatalf("tenant 1 resident pages = %d, want 2", cs1.CachedPages)
	}
	entries, refs, _ := pool.DedupStats()
	if entries != 3 || refs != 3 {
		t.Fatalf("entries=%d refs=%d, want 3/3", entries, refs)
	}
}

func TestDedupPublishRaceLoserFrees(t *testing.T) {
	pp := newPagePool(8)
	pp.ensure()
	a := pp.attach(0)
	b := pp.attach(0)
	h := sha256.Sum256([]byte("same content"))

	s1, st := pp.dedupAlloc(a)
	if st != allocOK {
		t.Fatalf("dedupAlloc a: %d", st)
	}
	s2, st := pp.dedupAlloc(b)
	if st != allocOK || s2 == s1 {
		t.Fatalf("dedupAlloc b: slot=%d st=%d", s2, st)
	}
	// Both "tenants" filled their slot with the same content; the second
	// publish loses the race, frees its slot, and adopts the canonical.
	if canon := pp.dedupPublish(s1, h); canon != s1 {
		t.Fatalf("first publish: canon=%d, want %d", canon, s1)
	}
	if canon := pp.dedupPublish(s2, h); canon != s1 {
		t.Fatalf("second publish: canon=%d, want %d", canon, s1)
	}
	if !pp.isFree(s2) {
		t.Fatal("losing slot was not freed")
	}
	if e, r, _ := pp.dedupStats(); e != 1 || r != 2 {
		t.Fatalf("entries=%d refs=%d, want 1/2", e, r)
	}

	pp.dedupDeref(a, s1)
	if !pp.isDedup(s1) || pp.isFree(s1) {
		t.Fatal("slot freed while a reference remains")
	}
	pp.dedupDeref(b, s1)
	if pp.isDedup(s1) || !pp.isFree(s1) {
		t.Fatal("slot not freed after the last reference")
	}
	if pp.sharedBy(a) != 0 || pp.sharedBy(b) != 0 || pp.usedBy(pp.dedupAtt) != 0 {
		t.Fatal("dedup accounting leaked after last deref")
	}
}

func TestDedupSharedSlotFreezesUnderLease(t *testing.T) {
	pp := newPagePool(8)
	pp.ensure()
	a := pp.attach(0)
	h := sha256.Sum256([]byte("leased"))
	slot, st := pp.dedupAlloc(a)
	if st != allocOK {
		t.Fatalf("dedupAlloc: %d", st)
	}
	copy(pp.arena[slot*PageSize:], "leased")
	if canon := pp.dedupPublish(slot, h); canon != slot {
		t.Fatalf("publish: %d", canon)
	}
	pp.pin(slot) // an outstanding grant lease
	pp.dedupDeref(a, slot)
	if !pp.isFrozen(slot) {
		t.Fatal("last deref under lease did not freeze the slot")
	}
	if got := string(pp.arena[slot*PageSize : slot*PageSize+6]); got != "leased" {
		t.Fatalf("frozen bytes changed: %q", got)
	}
	pp.unpin(slot)
	if !pp.isFree(slot) {
		t.Fatal("slot not freed after the last lease returned")
	}
}

func TestDedupImageStoreSharing(t *testing.T) {
	pool := NewPagePool(32)
	store := pool.ImageStore(0)

	// A zeroed heap collapses to one slot, one base pin per occurrence.
	zero := make([]byte, PageSize)
	s1, ok := store.Put(zero)
	if !ok {
		t.Fatal("Put zero page 1")
	}
	s2, ok := store.Put(zero)
	if !ok {
		t.Fatal("Put zero page 2")
	}
	if s1 != s2 {
		t.Fatalf("identical image pages in distinct slots: %d vs %d", s1, s2)
	}
	if n := store.PinCount(s1); n != 2 {
		t.Fatalf("shared image slot holds %d base pins, want 2", n)
	}
	// Short pages zero-pad before hashing: "x" and "x\0..." are the same
	// stored page.
	s3, ok := store.Put([]byte("x"))
	if !ok || s3 == s1 {
		t.Fatalf("Put short page: slot=%d ok=%v", s3, ok)
	}
	s4, _ := store.Put(append([]byte("x"), make([]byte, 100)...))
	if s4 != s3 {
		t.Fatalf("zero-padded equal pages in distinct slots: %d vs %d", s3, s4)
	}

	// Frees drop one base pin + one reference each; the slot survives
	// until the last image page referencing it is freed.
	store.Free(s2)
	if n := store.PinCount(s1); n != 1 {
		t.Fatalf("after one Free: %d pins, want 1", n)
	}
	if !pool.pp.isDedup(s1) {
		t.Fatal("slot unpublished while an image page still references it")
	}
	store.Free(s1)
	if pool.pp.isDedup(s1) || !pool.pp.isFree(s1) {
		t.Fatal("slot not freed after the last image page")
	}
	store.Free(s3)
	store.Free(s4)
	if e, r, _ := pool.DedupStats(); e != 0 || r != 0 {
		t.Fatalf("entries=%d refs=%d after teardown, want 0/0", e, r)
	}
}

func TestDedupImageAndFilePagesShareOneSlot(t *testing.T) {
	pool := NewPagePool(32)
	content := pageContent(11, PageSize) // exactly one full page
	f := newDedupFS(t, pool, 0, map[string]string{"/tree/seg": content})
	mustRead(t, f, "/ro/tree/seg")
	fileSlot := f.pc.files["/ro/tree/seg"].pages[0].slot

	// A snapshot image whose heap page carries the same bytes resolves
	// to the SAME arena slot: fs pages and image pages share one
	// content-addressed mechanism.
	store := pool.ImageStore(0)
	imgSlot, ok := store.Put([]byte(content))
	if !ok {
		t.Fatal("Put")
	}
	if imgSlot != fileSlot {
		t.Fatalf("image page slot %d != file page slot %d", imgSlot, fileSlot)
	}
	if n := store.PinCount(imgSlot); n != 1 {
		t.Fatalf("pins=%d, want 1 (cache references are not pins)", n)
	}
	if e, r, _ := pool.DedupStats(); e != 1 || r != 2 {
		t.Fatalf("entries=%d refs=%d, want 1/2", e, r)
	}
	f.FlushCaches()
	if !pool.pp.isDedup(imgSlot) {
		t.Fatal("image lost its page when the file cache flushed")
	}
	if !bytes.Equal(store.Data(imgSlot), []byte(content)) {
		t.Fatal("image bytes changed after cache flush")
	}
	store.Free(imgSlot)
	if free := pool.FreeSlots(); free != pool.Slots() {
		t.Fatalf("free slots = %d, want %d", free, pool.Slots())
	}
}

func TestDedupEvictionPrefersPrivateUnderArenaPressure(t *testing.T) {
	pool := NewPagePool(4)
	pool.SetSharedBudget(2)
	files := map[string]string{}
	for i := 0; i < 5; i++ {
		files[fmt.Sprintf("/tree/f%d", i)] = pageContent(byte(20+10*i), PageSize/2)
	}
	fA := newDedupFS(t, pool, 0, files)
	fB := newDedupFS(t, pool, 0, files)
	fB.SetDedup(false)

	// Tenant A: f0, f1 land in the shared tier (budget 2), f2 overflows
	// the budget into a private slot. Tenant B pins one more private
	// slot, filling the arena while A still has quota headroom.
	for i := 0; i < 3; i++ {
		mustRead(t, fA, fmt.Sprintf("/ro/tree/f%d", i))
	}
	mustRead(t, fB, "/ro/tree/f3")
	if cs := fA.CacheStats(); cs.CachedPages != 3 || cs.DedupPages != 2 {
		t.Fatalf("tenant A resident=%d shared=%d, want 3/2", cs.CachedPages, cs.DedupPages)
	}
	if free := pool.FreeSlots(); free != 0 {
		t.Fatalf("free slots = %d, want 0 (arena full)", free)
	}
	// A faults f4 under arena exhaustion: eviction must pick A's PRIVATE
	// file (f2) even though the fully shared f0/f1 are older in LRU
	// order — dropping a shared page frees no physical slot while the
	// dedup index still holds it.
	mustRead(t, fA, "/ro/tree/f4")
	for _, want := range []string{"/ro/tree/f0", "/ro/tree/f1", "/ro/tree/f4"} {
		if fA.pc.files[want] == nil {
			t.Errorf("%s evicted from tenant A, want resident", want)
		}
	}
	if fA.pc.files["/ro/tree/f2"] != nil {
		t.Error("/ro/tree/f2 still resident in tenant A, want evicted (only private page)")
	}
	if fB.pc.files["/ro/tree/f3"] == nil {
		t.Error("tenant B lost its page to tenant A's pressure")
	}
}

// dedupStats is a locked triple read for white-box tests.
func (pp *pagePool) dedupStats() (int64, int64, int64) {
	return pp.dedupEntries.Load(), pp.dedupRefsN.Load(), pp.dedupHitsN.Load()
}

func TestDedupOffMatchesPrivatePath(t *testing.T) {
	pool := NewPagePool(64)
	content := pageContent(7, PageSize+64)
	files := map[string]string{"/tree/x": content}
	f1 := newDedupFS(t, pool, 0, files)
	f2 := newDedupFS(t, pool, 0, files)
	f2.SetDedup(false)

	mustRead(t, f1, "/ro/tree/x")
	if got := mustRead(t, f2, "/ro/tree/x"); got != content {
		t.Fatalf("dedup-off read mismatch: %d bytes", len(got))
	}
	// f2's pages are private: same bytes, zero shared references.
	cs := f2.CacheStats()
	if cs.DedupPages != 0 || cs.SharedBytes != 0 || cs.DedupStores != 0 {
		t.Fatalf("dedup-off tenant recorded dedup activity: %+v", cs)
	}
	if cs.CachedPages != 2 {
		t.Fatalf("dedup-off resident pages = %d, want 2", cs.CachedPages)
	}
	if _, refs, _ := pool.DedupStats(); refs != 2 {
		t.Fatalf("pool refs = %d, want 2 (only the dedup-on tenant)", refs)
	}
}
