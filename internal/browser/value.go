// Package browser models the web-platform substrate Browsix is built on:
// single-threaded JavaScript contexts (the main thread and Web Workers),
// asynchronous message passing with structured-clone semantics, Blob URLs,
// timers, and the ECMAScript Shared Memory and Atomics specification
// (SharedArrayBuffer, Atomics.load/store/wait/notify) that Browsix's
// synchronous system calls depend on (§3.2 of the paper).
//
// All costs (postMessage latency, per-byte clone cost, worker spawn time,
// futex wake latency) come from a Profile, so experiments can model
// different browsers — the paper reports different numbers for Chrome and
// Firefox.
package browser

import "fmt"

// Value is a structured-clonable JavaScript value. The allowed dynamic
// types are:
//
//	nil, bool, int64, float64, string, []byte, []Value,
//	map[string]Value, and *SAB (shared, never copied).
//
// Messages between contexts are deep-copied (structured clone), except for
// SharedArrayBuffers which are shared by reference — exactly the browser's
// rules, and the mechanism that makes Browsix's synchronous system calls
// possible.
type Value = any

// Shared marks a host-side object that crosses contexts by reference with
// zero clone cost, like a *SAB. It models transferable/shared platform
// objects the structured-clone algorithm does not copy — the snapshot
// subsystem passes immutable images and per-process dirty trackers through
// init messages this way.
type Shared interface {
	SharedBrowserValue()
}

// Clone deep-copies a Value with structured-clone semantics and returns the
// copy plus the number of bytes copied (used to charge clone cost).
// It panics on a type outside the structured-clone set, mirroring the
// DataCloneError a browser would throw.
func Clone(v Value) (Value, int64) {
	switch x := v.(type) {
	case nil:
		return nil, 0
	case bool:
		return x, 1
	case int:
		// Tolerate untyped ints from call sites; normalize to int64.
		return int64(x), 8
	case int64:
		return x, 8
	case float64:
		return x, 8
	case string:
		return x, int64(len(x)) // strings are immutable; copy cost still paid
	case []byte:
		c := make([]byte, len(x))
		copy(c, x)
		return c, int64(len(x))
	case []Value:
		var n int64
		out := make([]Value, len(x))
		for i, e := range x {
			c, b := Clone(e)
			out[i] = c
			n += b + 8
		}
		return out, n
	case map[string]Value:
		var n int64
		out := make(map[string]Value, len(x))
		for k, e := range x {
			c, b := Clone(e)
			out[k] = c
			n += b + int64(len(k)) + 8
		}
		return out, n
	case *SAB:
		return x, 0 // shared, not cloned
	case Shared:
		return x, 0 // shared platform object, passed by reference
	default:
		panic(fmt.Sprintf("browser: DataCloneError: cannot structured-clone %T", v))
	}
}

// Msg helpers: messages in this codebase are map[string]Value objects, like
// the plain JS objects Browsix sends. These accessors tolerate the int /
// int64 normalization Clone performs.

// GetInt reads an integer field from a message.
func GetInt(m map[string]Value, key string) int64 {
	switch x := m[key].(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case float64:
		return int64(x)
	default:
		return 0
	}
}

// GetString reads a string field from a message.
func GetString(m map[string]Value, key string) string {
	s, _ := m[key].(string)
	return s
}

// GetBytes reads a byte-array field from a message.
func GetBytes(m map[string]Value, key string) []byte {
	b, _ := m[key].([]byte)
	return b
}

// GetArray reads an array field from a message.
func GetArray(m map[string]Value, key string) []Value {
	a, _ := m[key].([]Value)
	return a
}

// GetMap reads an object field from a message.
func GetMap(m map[string]Value, key string) map[string]Value {
	mm, _ := m[key].(map[string]Value)
	return mm
}

// Strings converts a []Value of strings back to []string.
func Strings(a []Value) []string {
	out := make([]string, len(a))
	for i, v := range a {
		out[i], _ = v.(string)
	}
	return out
}

// StringArray converts []string to a message-ready []Value.
func StringArray(ss []string) []Value {
	out := make([]Value, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
