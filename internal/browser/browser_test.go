package browser

import (
	"testing"

	"repro/internal/sched"
)

func newSys() *System {
	sim := sched.New()
	sim.MaxSteps = 1_000_000
	return NewSystem(sim, Chrome())
}

func TestCloneDeepCopies(t *testing.T) {
	orig := map[string]Value{
		"name": "open",
		"args": []Value{int64(3), "path", []byte{1, 2, 3}},
	}
	c, bytes := Clone(orig)
	if bytes <= 0 {
		t.Fatal("clone reported zero bytes")
	}
	cm := c.(map[string]Value)
	// Mutating the clone's byte array must not affect the original.
	cm["args"].([]Value)[2].([]byte)[0] = 99
	if orig["args"].([]Value)[2].([]byte)[0] != 1 {
		t.Fatal("clone aliases original byte slice")
	}
}

func TestCloneSharesSAB(t *testing.T) {
	sab := NewSAB(16)
	c, _ := Clone(map[string]Value{"heap": sab})
	got := c.(map[string]Value)["heap"].(*SAB)
	if got != sab {
		t.Fatal("SAB must be shared by reference, not cloned")
	}
}

func TestCloneRejectsForeignTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected DataCloneError panic")
		}
	}()
	Clone(struct{ x int }{1})
}

func TestWorkerMessageRoundTrip(t *testing.T) {
	s := newSys()
	url := s.CreateObjectURL([]byte("// worker script"))
	var fromWorker, fromParent Value
	var w *Worker
	s.Sim.Post(s.Main.Sched(), 0, func() {
		w = s.NewWorker(s.Main, url, func(w *Worker) {
			w.Ctx.OnMessage = func(v Value) {
				fromParent = v
				w.PostToParent(map[string]Value{"echo": v})
			}
		})
		w.OnMessage = func(v Value) { fromWorker = v }
		w.PostMessage("hello")
	})
	s.Sim.Run()
	if fromParent != "hello" {
		t.Fatalf("worker received %v, want hello", fromParent)
	}
	m, ok := fromWorker.(map[string]Value)
	if !ok || m["echo"] != "hello" {
		t.Fatalf("parent received %v", fromWorker)
	}
}

func TestWorkerStartupCostPrecedesFirstMessage(t *testing.T) {
	s := newSys()
	url := s.CreateObjectURL(make([]byte, 100_000)) // 100 KB runtime
	var workerStart int64
	s.Sim.Post(s.Main.Sched(), 0, func() {
		s.NewWorker(s.Main, url, func(w *Worker) {
			workerStart = w.Ctx.Now()
		})
	})
	s.Sim.Run()
	p := s.Profile
	min := p.WorkerSpawn + int64(float64(100_000)*p.ScriptEvalByteNs)
	if workerStart < min {
		t.Fatalf("worker main ran at %d, want >= %d (spawn+eval cost)", workerStart, min)
	}
}

func TestNestedWorkerPanics(t *testing.T) {
	s := newSys()
	url := s.CreateObjectURL([]byte("w"))
	panicked := false
	s.Sim.Post(s.Main.Sched(), 0, func() {
		s.NewWorker(s.Main, url, func(w *Worker) {
			defer func() { panicked = recover() != nil }()
			s.NewWorker(w.Ctx, url, func(*Worker) {})
		})
	})
	s.Sim.Run()
	if !panicked {
		t.Fatal("nested worker creation must panic (browsers lack nested workers)")
	}
}

func TestTerminateDropsPendingMessages(t *testing.T) {
	s := newSys()
	url := s.CreateObjectURL([]byte("w"))
	delivered := false
	s.Sim.Post(s.Main.Sched(), 0, func() {
		w := s.NewWorker(s.Main, url, func(w *Worker) {
			w.Ctx.OnMessage = func(Value) { delivered = true }
		})
		w.PostMessage("m1")
		w.Terminate()
	})
	s.Sim.Run()
	if delivered {
		t.Fatal("message delivered to terminated worker")
	}
}

func TestFutexWaitNotify(t *testing.T) {
	s := newSys()
	sab := NewSAB(64)
	url := s.CreateObjectURL([]byte("w"))
	var result WaitResult
	var wakeTime int64
	s.Sim.Post(s.Main.Sched(), 0, func() {
		s.NewWorker(s.Main, url, func(w *Worker) {
			g := s.Sim.NewG(w.Ctx.Sched(), "prog", func(any) {
				result = s.FutexWait(w.Ctx, sab, 0, 0, -1)
				wakeTime = w.Ctx.Now()
			})
			s.Sim.ResumeG(g, nil)
		})
	})
	// Kernel-side notify at t=50ms.
	s.Sim.Post(s.Main.Sched(), 50_000_000, func() {
		sab.Store32(0, 1)
		if n := s.FutexNotify(sab, 0, 1); n != 1 {
			t.Errorf("notify woke %d, want 1", n)
		}
	})
	s.Sim.Run()
	if result != WaitOK {
		t.Fatalf("wait result %q, want ok", result)
	}
	if wakeTime < 50_000_000 {
		t.Fatalf("woke at %d, before the notify", wakeTime)
	}
}

func TestFutexWaitNotEqual(t *testing.T) {
	s := newSys()
	sab := NewSAB(8)
	sab.Store32(0, 7)
	url := s.CreateObjectURL([]byte("w"))
	var result WaitResult
	s.Sim.Post(s.Main.Sched(), 0, func() {
		s.NewWorker(s.Main, url, func(w *Worker) {
			g := s.Sim.NewG(w.Ctx.Sched(), "prog", func(any) {
				result = s.FutexWait(w.Ctx, sab, 0, 0, -1)
			})
			s.Sim.ResumeG(g, nil)
		})
	})
	s.Sim.Run()
	if result != WaitNotEqual {
		t.Fatalf("result %q, want not-equal", result)
	}
}

func TestFutexWaitTimeout(t *testing.T) {
	s := newSys()
	sab := NewSAB(8)
	url := s.CreateObjectURL([]byte("w"))
	var result WaitResult
	var start, end int64
	s.Sim.Post(s.Main.Sched(), 0, func() {
		s.NewWorker(s.Main, url, func(w *Worker) {
			g := s.Sim.NewG(w.Ctx.Sched(), "prog", func(any) {
				start = w.Ctx.Now()
				result = s.FutexWait(w.Ctx, sab, 0, 0, 1_000_000)
				end = w.Ctx.Now()
			})
			s.Sim.ResumeG(g, nil)
		})
	})
	s.Sim.Run()
	if result != WaitTimedOut {
		t.Fatalf("result %q, want timed-out", result)
	}
	if end-start < 1_000_000 {
		t.Fatalf("timed out after %dns, want >= 1ms", end-start)
	}
}

func TestFutexWaitOnMainPanics(t *testing.T) {
	s := newSys()
	sab := NewSAB(8)
	panicked := false
	s.Sim.Post(s.Main.Sched(), 0, func() {
		defer func() { panicked = recover() != nil }()
		s.FutexWait(s.Main, sab, 0, 0, -1)
	})
	s.Sim.Run()
	if !panicked {
		t.Fatal("Atomics.wait on main thread must panic")
	}
}

func TestBlockedWorkerDefersMessages(t *testing.T) {
	// A worker blocked in Atomics.wait must not process incoming
	// messages until it wakes — this is the reason fork can't be
	// combined with sync syscalls (§3.2).
	s := newSys()
	sab := NewSAB(8)
	url := s.CreateObjectURL([]byte("w"))
	var trace []string
	s.Sim.Post(s.Main.Sched(), 0, func() {
		w := s.NewWorker(s.Main, url, func(w *Worker) {
			w.Ctx.OnMessage = func(v Value) { trace = append(trace, "msg:"+v.(string)) }
			g := s.Sim.NewG(w.Ctx.Sched(), "prog", func(any) {
				s.FutexWait(w.Ctx, sab, 0, 0, -1)
				trace = append(trace, "woke")
			})
			s.Sim.ResumeG(g, nil)
		})
		// Sent long before the notify below, but must arrive after wake.
		s.Main.SetTimeout(30_000_000, func() { w.PostMessage("early") })
	})
	s.Sim.Post(s.Main.Sched(), 90_000_000, func() {
		s.FutexNotify(sab, 0, -1)
	})
	s.Sim.Run()
	if len(trace) != 2 || trace[0] != "woke" || trace[1] != "msg:early" {
		t.Fatalf("trace = %v, want [woke msg:early]", trace)
	}
}

func TestPostMessageCostScalesWithSize(t *testing.T) {
	s := newSys()
	url := s.CreateObjectURL([]byte("w"))
	var small, large int64
	s.Sim.Post(s.Main.Sched(), 0, func() {
		w := s.NewWorker(s.Main, url, func(w *Worker) {
			w.Ctx.OnMessage = func(Value) {}
		})
		t0 := s.Main.Now()
		w.PostMessage([]byte{1})
		small = s.Main.Now() - t0
		t1 := s.Main.Now()
		w.PostMessage(make([]byte, 1<<20))
		large = s.Main.Now() - t1
	})
	s.Sim.Run()
	if large <= small {
		t.Fatalf("1MB send cost %d <= 1B cost %d; clone cost not charged", large, small)
	}
}

func TestBlobURLs(t *testing.T) {
	s := newSys()
	u1 := s.CreateObjectURL([]byte("abc"))
	u2 := s.CreateObjectURL([]byte("def"))
	if u1 == u2 {
		t.Fatal("blob URLs must be unique")
	}
	b, ok := s.BlobData(u1)
	if !ok || string(b) != "abc" {
		t.Fatalf("BlobData = %q %v", b, ok)
	}
	if _, ok := s.BlobData("blob:nope"); ok {
		t.Fatal("unknown URL resolved")
	}
}

func TestSABAtomicOps(t *testing.T) {
	sab := NewSAB(16)
	sab.Store32(4, 41)
	if v := sab.Add32(4, 1); v != 41 {
		t.Fatalf("Add32 old = %d, want 41", v)
	}
	if v := sab.Load32(4); v != 42 {
		t.Fatalf("Load32 = %d, want 42", v)
	}
}

func TestChromeVsFirefoxMessageLatency(t *testing.T) {
	// The meme-generator experiment depends on Firefox messages being
	// cheaper than Chrome's.
	ch, ff := Chrome(), Firefox()
	if ff.PostMessageLatency >= ch.PostMessageLatency {
		t.Fatal("profile calibration: Firefox postMessage should be faster than Chrome")
	}
	if !ch.SupportsSharedMemory() || ff.SupportsSharedMemory() {
		t.Fatal("only Chrome supported SharedArrayBuffer at paper time")
	}
}

func TestSetTimeout(t *testing.T) {
	s := newSys()
	var firedAt int64
	s.Sim.Post(s.Main.Sched(), 0, func() {
		s.Main.SetTimeout(5_000_000, func() { firedAt = s.Main.Now() })
	})
	s.Sim.Run()
	if firedAt < 5_000_000 {
		t.Fatalf("timer fired at %d, want >= 5ms", firedAt)
	}
}

func TestWorkerPriorityDefault(t *testing.T) {
	s := newSys()
	url := s.CreateObjectURL([]byte("w"))
	var w *Worker
	s.Sim.Post(s.Main.Sched(), 0, func() {
		w = s.NewWorker(s.Main, url, func(*Worker) {})
	})
	s.Sim.Run()
	if w.Ctx.Sched().Nice() != 0 {
		t.Fatal("default priority should be 0")
	}
	w.SetPriority(7)
	if w.Ctx.Sched().Nice() != 7 {
		t.Fatal("SetPriority not applied")
	}
}
