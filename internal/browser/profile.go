package browser

// Profile is the browser cost model: every platform operation the simulator
// charges virtual time for. Two presets model the browsers the paper
// evaluates (Chrome 54-era and Firefox 50-era). The constants are
// calibrated so the reproduction matches the paper's reported shapes; see
// EXPERIMENTS.md for the calibration table.
//
// The paper's §6 observes that message passing is about three orders of
// magnitude slower than a native system call (~0.1 µs); both presets put a
// one-way postMessage in the ~50–100 µs range.
type Profile struct {
	Name string

	// PostMessageSend is charged to the sender when it calls
	// postMessage (serialization entry, task queuing).
	PostMessageSend int64
	// PostMessageLatency is the delay before the receiving context's
	// event fires (queue hop between threads).
	PostMessageLatency int64
	// CloneBytePerNs is the structured-clone copy cost, charged to the
	// sender, in nanoseconds per byte.
	CloneByteNs float64

	// WorkerSpawn is the cost of `new Worker(url)`: thread start, new JS
	// context, parse/compile of the worker script. Charged partly to the
	// parent (WorkerSpawnParent) and mostly to the child before its first
	// event runs.
	WorkerSpawnParent int64
	WorkerSpawn       int64
	// ScriptEvalByteNs models parse/JIT of the worker script per byte of
	// script text (Browsix runtimes are hundreds of KB of JavaScript).
	ScriptEvalByteNs float64

	// FutexWake is the latency between Atomics.notify in one context and
	// the blocked context resuming (thread wake-up).
	FutexWake int64
	// AtomicsOp is the cost of a single Atomics load/store/add.
	AtomicsOp int64

	// TimerMin is the clamp applied to setTimeout(0) (browsers clamp
	// nested timeouts to ~1ms minimum historically, 0 for workers here).
	TimerMin int64

	// BlobURLCreate is the cost of URL.createObjectURL.
	BlobURLCreate int64
}

// Chrome is the Google Chrome profile. Chrome's postMessage was measured
// slower than Firefox's in the paper's meme-generator experiment (9 ms vs
// 6 ms for the same request path), so its message costs are higher; it is
// also the only browser in the paper supporting SharedArrayBuffer (sync
// syscalls), which the simulator does not gate but experiments respect.
func Chrome() Profile {
	return Profile{
		Name:               "chrome",
		PostMessageSend:    35_000,
		PostMessageLatency: 150_000,
		CloneByteNs:        40,
		WorkerSpawnParent:  250_000,
		WorkerSpawn:        12_000_000,
		ScriptEvalByteNs:   33,
		FutexWake:          22_000,
		AtomicsOp:          40,
		TimerMin:           0,
		BlobURLCreate:      30_000,
	}
}

// Firefox is the Mozilla Firefox profile: faster message passing, no
// SharedArrayBuffer support at the paper's time of writing (async syscalls
// only — experiments that need sync syscalls use Chrome).
func Firefox() Profile {
	return Profile{
		Name:               "firefox",
		PostMessageSend:    18_000,
		PostMessageLatency: 55_000,
		CloneByteNs:        30,
		WorkerSpawnParent:  220_000,
		WorkerSpawn:        13_000_000,
		ScriptEvalByteNs:   36,
		FutexWake:          25_000,
		AtomicsOp:          45,
		TimerMin:           0,
		BlobURLCreate:      28_000,
	}
}

// SupportsSharedMemory reports whether the profile's browser implements
// SharedArrayBuffer + Atomics (at the paper's time: Chrome behind flags).
func (p Profile) SupportsSharedMemory() bool { return p.Name == "chrome" }
