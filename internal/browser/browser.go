package browser

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/sched"
)

// System is one simulated browser: a main context, a set of Web Workers,
// a Blob URL store, and a futex table for Atomics.
type System struct {
	Sim     *sched.Sim
	Profile Profile
	Main    *Context

	blobSeq int
	blobs   map[string][]byte

	futexes map[futexKey][]*futexWaiter
}

// Context is a single-threaded JavaScript execution context.
type Context struct {
	sys       *System
	sctx      *sched.Ctx
	isWorker  bool
	OnMessage func(v Value) // message handler (the context's onmessage)
	worker    *Worker       // non-nil if this context belongs to a worker
}

// Worker is the parent-side handle for a Web Worker, like the JS Worker
// object: the parent posts messages to it and receives messages from it.
type Worker struct {
	sys        *System
	parent     *Context
	Ctx        *Context // the worker's own execution context
	OnMessage  func(v Value)
	terminated bool
}

// NewSystem creates a browser with the given cost profile.
func NewSystem(sim *sched.Sim, p Profile) *System {
	s := &System{
		Sim:     sim,
		Profile: p,
		blobs:   map[string][]byte{},
		futexes: map[futexKey][]*futexWaiter{},
	}
	s.Main = &Context{sys: s, sctx: sim.NewCtx("main")}
	return s
}

// Sched returns the scheduler context backing this JS context.
func (c *Context) Sched() *sched.Ctx { return c.sctx }

// System returns the owning browser system.
func (c *Context) System() *System { return c.sys }

// IsWorker reports whether this context belongs to a Web Worker.
func (c *Context) IsWorker() bool { return c.isWorker }

// Now returns the context's virtual clock.
func (c *Context) Now() int64 { return c.sctx.Now() }

// Charge adds CPU cost to the context (must be the running context).
func (c *Context) Charge(d int64) { c.sys.Sim.Charge(d) }

// SetTimeout schedules fn on this context after d nanoseconds, honouring
// the profile's timer clamp.
func (c *Context) SetTimeout(d int64, fn func()) {
	if d < c.sys.Profile.TimerMin {
		d = c.sys.Profile.TimerMin
	}
	c.sys.Sim.PostDelay(c.sctx, d, fn)
}

// post delivers a structured-cloned message to the destination context,
// charging the sender for serialization and the clone and delaying
// delivery by the message-hop latency.
func (s *System) post(from, to *Context, v Value, deliver func(Value)) {
	if to.sctx.Dead() {
		return
	}
	clone, bytes := Clone(v)
	cost := s.Profile.PostMessageSend + int64(float64(bytes)*s.Profile.CloneByteNs)
	s.Sim.Charge(cost)
	s.Sim.PostDelay(to.sctx, s.Profile.PostMessageLatency, func() {
		if deliver != nil {
			deliver(clone)
		}
	})
	_ = from
}

// PostMessage sends a message from the worker's parent to the worker
// (worker.postMessage in JS).
func (w *Worker) PostMessage(v Value) {
	if w.terminated {
		return
	}
	w.sys.post(w.parent, w.Ctx, v, func(c Value) {
		if w.Ctx.OnMessage != nil {
			w.Ctx.OnMessage(c)
		}
	})
}

// PostToParent sends a message from inside the worker to its parent
// (self.postMessage in JS). Delivery invokes the parent-side
// Worker.OnMessage handler.
func (w *Worker) PostToParent(v Value) {
	if w.terminated {
		return
	}
	w.sys.post(w.Ctx, w.parent, v, func(c Value) {
		if w.OnMessage != nil {
			w.OnMessage(c)
		}
	})
}

// NewWorker spawns a Web Worker running the script at url (usually a Blob
// URL). main is the script's top-level code: it runs once on the new
// context before any messages are delivered. The script source bytes are
// fetched from the URL store to charge parse/eval cost, mirroring the cost
// of loading a multi-hundred-KB Browsix runtime.
//
// Nested workers are not supported (Chrome and Safari did not implement
// them, §3.3): calling NewWorker from a worker context panics, forcing the
// kernel — which lives on the main thread — to create all workers, exactly
// as Browsix does.
func (s *System) NewWorker(parent *Context, url string, main func(w *Worker)) *Worker {
	if parent.isWorker {
		panic("browser: nested Workers are not supported (spawn must be proxied via the main thread)")
	}
	script, ok := s.blobs[url]
	if !ok {
		panic(fmt.Sprintf("browser: worker URL %q not found", url))
	}
	s.Sim.Charge(s.Profile.WorkerSpawnParent)
	w := &Worker{sys: s, parent: parent}
	ctx := &Context{sys: s, sctx: s.Sim.NewCtx("worker:" + url), isWorker: true, worker: w}
	w.Ctx = ctx
	startup := s.Profile.WorkerSpawn + int64(float64(len(script))*s.Profile.ScriptEvalByteNs)
	// The worker context begins life busy: thread start + script eval.
	s.Sim.PostDelay(ctx.sctx, parentDelay, func() {
		s.Sim.Charge(startup)
		main(w)
	})
	return w
}

// parentDelay is the small fixed lag between the parent's new Worker()
// call and the worker thread beginning to run.
const parentDelay = 50_000

// SetPriority sets the worker's scheduling niceness — the "Worker
// Priority Control" §6 proposes browsers should offer ("providing this
// facility would let web applications prevent a low-priority
// CPU-intensive worker from interfering with the main browser thread").
// Higher values mean lower priority.
func (w *Worker) SetPriority(nice int) { w.Ctx.sctx.SetNice(nice) }

// Terminate kills the worker immediately (worker.terminate() in JS):
// pending events are dropped, coroutines die, futex waits never return.
func (w *Worker) Terminate() {
	if w.terminated {
		return
	}
	w.terminated = true
	w.sys.Sim.KillCtx(w.Ctx.sctx)
}

// Terminated reports whether Terminate has been called.
func (w *Worker) Terminated() bool { return w.terminated }

// CreateObjectURL stores data and returns a blob: URL for it, like
// URL.createObjectURL(new Blob([data])). Browsix uses this to start
// workers from executables that live only in its file system (§3.3).
func (s *System) CreateObjectURL(data []byte) string {
	s.blobSeq++
	url := fmt.Sprintf("blob:browsix/%d", s.blobSeq)
	cp := make([]byte, len(data))
	copy(cp, data)
	s.blobs[url] = cp
	if s.Sim.Cur() != nil {
		s.Sim.Charge(s.Profile.BlobURLCreate)
	}
	return url
}

// BlobData returns the bytes behind a blob: URL.
func (s *System) BlobData(url string) ([]byte, bool) {
	b, ok := s.blobs[url]
	return b, ok
}

// ---------------------------------------------------------------------------
// SharedArrayBuffer + Atomics (ECMAScript Shared Memory spec, [4] in the
// paper). A SAB passes between contexts by reference; Atomics.wait blocks a
// worker thread on a 32-bit cell; Atomics.notify wakes waiters.
// ---------------------------------------------------------------------------

// SAB is a SharedArrayBuffer: a byte buffer shared (not cloned) across
// contexts.
type SAB struct {
	b       []byte
	id      int
	tracker DirtyTracker
}

// DirtyTracker observes writes into a SAB at page granularity. The
// snapshot subsystem installs one on a cloned process heap so
// copy-on-write faults and soft-dirty bits track which pages diverged
// from the shared image. Bulk writers (memcpy-style helpers) call
// MarkDirty explicitly; Store32 marks automatically.
type DirtyTracker interface {
	MarkDirty(off, n int)
}

// SetDirtyTracker installs (or clears, with nil) the write observer.
func (s *SAB) SetDirtyTracker(t DirtyTracker) { s.tracker = t }

// MarkDirty reports a write of n bytes at off to the installed tracker.
// Callers that write through Bytes() must call it; it is free when no
// tracker is installed.
func (s *SAB) MarkDirty(off, n int) {
	if s.tracker != nil && n > 0 {
		s.tracker.MarkDirty(off, n)
	}
}

// sabSeq is process-wide: SAB ids key futex waits and only need to be
// unique, and an atomic keeps concurrent Instances race-free.
var sabSeq atomic.Int64

// NewSAB allocates a SharedArrayBuffer of n bytes.
func NewSAB(n int) *SAB {
	return &SAB{b: make([]byte, n), id: int(sabSeq.Add(1))}
}

// WrapSAB exposes an existing byte region as a SharedArrayBuffer view —
// how the kernel shares its page-cache arena with worker processes. The
// region must never be reallocated while views of it are outstanding.
func WrapSAB(b []byte) *SAB {
	return &SAB{b: b, id: int(sabSeq.Add(1))}
}

// Len returns the buffer length.
func (s *SAB) Len() int { return len(s.b) }

// Bytes exposes the underlying storage. Within the deterministic simulator
// only one context runs at a time, so direct access is race-free; the cost
// of bulk copies in/out is charged by callers.
func (s *SAB) Bytes() []byte { return s.b }

// Load32 performs Atomics.load on a 32-bit little-endian cell.
func (s *SAB) Load32(off int) uint32 { return binary.LittleEndian.Uint32(s.b[off:]) }

// Store32 performs Atomics.store.
func (s *SAB) Store32(off int, v uint32) {
	binary.LittleEndian.PutUint32(s.b[off:], v)
	if s.tracker != nil {
		s.tracker.MarkDirty(off, 4)
	}
}

// Add32 performs Atomics.add, returning the old value.
func (s *SAB) Add32(off int, delta uint32) uint32 {
	old := s.Load32(off)
	s.Store32(off, old+delta)
	return old
}

type futexKey struct {
	sab int
	off int
}

type futexWaiter struct {
	g   *sched.G
	ctx *Context
}

// WaitResult is the result of Atomics.wait.
type WaitResult string

// Atomics.wait outcomes per the spec.
const (
	WaitOK       WaitResult = "ok"
	WaitNotEqual WaitResult = "not-equal"
	WaitTimedOut WaitResult = "timed-out"
)

// FutexWait implements Atomics.wait(sab, off, expected, timeout): if the
// cell's value differs from expected it returns "not-equal" immediately;
// otherwise the calling coroutine blocks its entire context until
// FutexNotify or the timeout (timeout<0 means wait forever).
//
// Calling it on the main context panics: browsers forbid Atomics.wait on
// the main thread, which is exactly why the Browsix kernel can never block
// and must be written in continuation-passing style.
func (s *System) FutexWait(c *Context, sab *SAB, off int, expected uint32, timeout int64) WaitResult {
	if !c.isWorker {
		panic("browser: Atomics.wait on the main thread is forbidden")
	}
	s.Sim.Charge(s.Profile.AtomicsOp)
	if sab.Load32(off) != expected {
		return WaitNotEqual
	}
	key := futexKey{sab.id, off}
	g := s.Sim.CurG()
	if g == nil {
		panic("browser: FutexWait requires a program coroutine")
	}
	s.futexes[key] = append(s.futexes[key], &futexWaiter{g: g, ctx: c})
	if timeout >= 0 {
		s.Sim.WakeCtx(g, c.Now()+timeout, WaitTimedOut)
	}
	v := s.Sim.BlockCur()
	// Remove ourselves from the wait list if still present (timeout path).
	ws := s.futexes[key]
	for i, w := range ws {
		if w.g == g {
			s.futexes[key] = append(ws[:i:i], ws[i+1:]...)
			break
		}
	}
	if r, ok := v.(WaitResult); ok {
		return r
	}
	return WaitOK
}

// FutexNotify implements Atomics.notify(sab, off, count), waking up to
// count waiters. It returns the number woken. Wake-ups land after the
// profile's FutexWake latency.
func (s *System) FutexNotify(sab *SAB, off int, count int) int {
	s.Sim.Charge(s.Profile.AtomicsOp)
	key := futexKey{sab.id, off}
	ws := s.futexes[key]
	n := 0
	for len(ws) > 0 && (count < 0 || n < count) {
		w := ws[0]
		ws = ws[1:]
		s.Sim.WakeCtx(w.g, s.Sim.Now()+s.Profile.FutexWake, WaitOK)
		n++
	}
	s.futexes[key] = ws
	return n
}
